// Network-condition layer parity and degradation suite: nominal
// profiles must leave crawls byte-identical to the goldens, and the
// impairment profiles must degrade detection monotonically along the
// sweep order, deterministically per seed.
package knockandtalk_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/goldencampaign"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// crawlUnder runs one crawl under a named network profile and returns
// its canonical Save bytes.
func crawlUnder(t *testing.T, crawl groundtruth.CrawlID, profile string) []byte {
	t.Helper()
	st := store.New()
	if _, err := crawler.RunAll(crawler.Config{
		Crawl: crawl, Scale: goldencampaign.Scale, Seed: goldencampaign.Seed,
		RetainLogs: true, NetProfile: profile,
	}, st); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNominalProfileByteIdentity: selecting the nominal profile by name
// must be indistinguishable from not selecting one at all — the
// refactor's central parity guarantee.
func TestNominalProfileByteIdentity(t *testing.T) {
	want, err := goldencampaign.Encoded(groundtruth.CrawlMalicious)
	if err != nil {
		t.Fatal(err)
	}
	got := crawlUnder(t, groundtruth.CrawlMalicious, "nominal")
	if !bytes.Equal(got, want) {
		t.Fatal("NetProfile \"nominal\" crawl differs from the default crawl's bytes")
	}
}

// TestDegradationSweepMonotone reproduces the committed sweep at the
// golden scale: detection never improves as conditions worsen along
// SweepOrder, and the nominal baseline detects everything the scaled
// population contains.
func TestDegradationSweepMonotone(t *testing.T) {
	stores := map[string]*store.Store{}
	nominal, err := goldencampaign.Merged()
	if err != nil {
		t.Fatal(err)
	}
	stores["nominal"] = nominal
	for _, profile := range simnet.SweepOrder[1:] {
		st := store.New()
		for _, crawl := range goldencampaign.Crawls {
			if err := st.Load(bytes.NewReader(crawlUnder(t, crawl, profile))); err != nil {
				t.Fatal(err)
			}
		}
		stores[profile] = st
	}
	outcomes := analysis.Degradation(simnet.SweepOrder, stores, goldencampaign.Crawls)
	if len(outcomes) != len(simnet.SweepOrder) {
		t.Fatalf("outcomes = %d, want %d", len(outcomes), len(simnet.SweepOrder))
	}
	base := outcomes[0]
	if base.Expected == 0 || base.Detected != base.Expected {
		t.Errorf("nominal baseline detected %d/%d — expected full detection", base.Detected, base.Expected)
	}
	for i := 1; i < len(outcomes); i++ {
		prev, cur := outcomes[i-1], outcomes[i]
		if cur.Expected != base.Expected {
			t.Errorf("%s: expected population %d differs from nominal's %d (same targets, same seed)",
				cur.Profile, cur.Expected, base.Expected)
		}
		if cur.DetectionRate() > prev.DetectionRate() {
			t.Errorf("detection improved from %s (%.3f) to %s (%.3f) — sweep is not monotone",
				prev.Profile, prev.DetectionRate(), cur.Profile, cur.DetectionRate())
		}
		if cur.FailedLoads < prev.FailedLoads {
			t.Errorf("load failures fell from %s (%d) to %s (%d)",
				prev.Profile, prev.FailedLoads, cur.Profile, cur.FailedLoads)
		}
	}
	last := outcomes[len(outcomes)-1]
	if last.Detected >= base.Detected {
		t.Errorf("harshest profile %s detected %d/%d — no degradation measured",
			last.Profile, last.Detected, last.Expected)
	}
}

// TestImpairedCrawlDeterministic: an impaired crawl is as reproducible
// as a nominal one — identical store bytes on every run of the same
// (profile, scale, seed).
func TestImpairedCrawlDeterministic(t *testing.T) {
	a := crawlUnder(t, groundtruth.CrawlMalicious, "satellite")
	b := crawlUnder(t, groundtruth.CrawlMalicious, "satellite")
	if !bytes.Equal(a, b) {
		t.Fatal("satellite crawl bytes differ between identical runs")
	}
	if bytes.Equal(a, crawlUnder(t, groundtruth.CrawlMalicious, "mobile-3g")) {
		t.Fatal("different profiles produced identical stores")
	}
}

// TestCommittedDegradationArtifact keeps results/degradation.txt
// honest: the committed full-scale sweep lists the profiles in sweep
// order with the nominal row first.
func TestCommittedDegradationArtifact(t *testing.T) {
	raw, err := os.ReadFile("results/degradation.txt")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	pos := -1
	for _, profile := range simnet.SweepOrder {
		at := strings.Index(text, "\n"+profile)
		if at < 0 {
			t.Fatalf("committed sweep missing profile %q", profile)
		}
		if at < pos {
			t.Fatalf("committed sweep lists %q out of sweep order", profile)
		}
		pos = at
	}
}
