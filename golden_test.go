// Golden parity suite for the canonical visit pipeline and the
// materialized site index: the pinned scaled campaign regenerates
// byte-for-byte, every paper artifact matches the committed
// pre-refactor output, and the index agrees exactly with the per-call
// full-store rescans it replaced (kept here as legacy copies).
package knockandtalk_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/goldencampaign"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func goldenStore(t testing.TB) *store.Store {
	t.Helper()
	st, err := goldencampaign.Merged()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGoldenStores pins the campaign itself: the canonical serialized
// bytes of each crawl's store must hash to the values recorded when the
// goldens were generated. Any drift here invalidates every other golden
// comparison, so it fails first and loudest.
func TestGoldenStores(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden", "stores.sha256"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed stores.sha256 line %q", line)
		}
		want[strings.TrimSuffix(fields[1], ".jsonl")] = fields[0]
	}
	for _, crawl := range goldencampaign.Crawls {
		enc, err := goldencampaign.Encoded(crawl)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%x", sha256.Sum256(enc))
		if got != want[string(crawl)] {
			t.Errorf("%s: store hash %s, want %s — the campaign no longer reproduces the pinned goldens", crawl, got, want[string(crawl)])
		}
	}
}

// TestGoldenReport pins every paper table and figure byte-for-byte
// against the committed pre-refactor knockreport output.
func TestGoldenReport(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	report.WriteAll(&got, goldenStore(t), nil)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("report output drifted from testdata/golden/report.txt (%d bytes, want %d)\n%s",
			got.Len(), len(want), firstDiff(got.Bytes(), want))
	}
}

// TestGoldenCSV pins every figure's CSV export byte-for-byte.
func TestGoldenCSV(t *testing.T) {
	series := report.CSVSeries(goldenStore(t))
	dir := filepath.Join("testdata", "golden", "csv")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(series) {
		t.Errorf("CSV series has %d files, golden dir has %d", len(series), len(entries))
	}
	for name, got := range series {
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got != string(want) {
			t.Errorf("%s drifted from golden\n%s", name, firstDiff([]byte(got), want))
		}
	}
}

func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hi := i + 80
			return fmt.Sprintf("first difference at byte %d:\n got: %q\nwant: %q",
				i, clip(got, lo, hi), clip(want, lo, hi))
		}
	}
	return fmt.Sprintf("outputs agree on the first %d bytes but differ in length", n)
}

func clip(b []byte, lo, hi int) []byte {
	if hi > len(b) {
		hi = len(b)
	}
	return b[lo:hi]
}

// TestSiteIndexMatchesLegacy cross-checks the materialized site index
// against the per-call full-store rescans it replaced: the legacy
// aggregate implementations below are verbatim copies of the
// pre-refactor analysis code, and every aggregate must DeepEqual.
func TestSiteIndexMatchesLegacy(t *testing.T) {
	st := goldenStore(t)
	for _, crawl := range goldencampaign.Crawls {
		for _, dest := range []string{"localhost", "lan"} {
			got := analysis.LocalSites(st, crawl, dest)
			want := legacyLocalSites(st, crawl, dest)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("LocalSites(%s, %s): index disagrees with rescan (%d vs %d sites)", crawl, dest, len(got), len(want))
			}
			if got, want := analysis.ComputeSOPUsage(st, crawl, dest), legacySOPUsage(st, crawl, dest); got != want {
				t.Errorf("ComputeSOPUsage(%s, %s): %+v, want %+v", crawl, dest, got, want)
			}
		}
		for _, osName := range []string{"Windows", "Linux", "Mac"} {
			got := analysis.SchemeRollup(st, crawl, osName, "localhost")
			want := legacySchemeRollup(st, crawl, osName, "localhost")
			if !reflect.DeepEqual(got, want) {
				t.Errorf("SchemeRollup(%s, %s): index disagrees with rescan", crawl, osName)
			}
		}
	}
	if got, want := analysis.CrawlTable(st), legacyCrawlTable(st); !reflect.DeepEqual(got, want) {
		t.Errorf("CrawlTable: index disagrees with rescan\n got %+v\nwant %+v", got, want)
	}
	if got, want := analysis.MaliciousSummary(st), legacyMaliciousSummary(st); !reflect.DeepEqual(got, want) {
		t.Errorf("MaliciousSummary: index disagrees with rescan\n got %+v\nwant %+v", got, want)
	}
}

// BenchmarkReportAll compares regenerating every aggregate a full
// report consumes — with the exact call multiplicity WriteAll makes —
// four ways:
//
//   - rescan: the pre-refactor cost model, one full-store scan (and
//     re-classification) per aggregate call;
//   - indexed: the same battery through the site index with the store
//     unchanged between reports (the steady state of repeated reports
//     and of knockserved's query plane), where every call is a lookup
//     into the materialized snapshot;
//   - delta: a single-visit commit before every report, which the
//     index absorbs incrementally through DeltaSince (the live-ingest
//     steady state);
//   - indexed-cold: the worst case, a forced epoch bump before every
//     report requiring a full snapshot rebuild each iteration.
//
// The index must hold a ≥3× advantage in the indexed configuration.
func BenchmarkReportAll(b *testing.B) {
	st := goldenStore(b)
	b.Run("rescan", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			legacyReportBattery(st)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		indexedReportBattery(st) // warm the snapshot
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			indexedReportBattery(st)
		}
	})
	b.Run("delta", func(b *testing.B) {
		indexedReportBattery(st) // warm the snapshot
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			domain := fmt.Sprintf("delta-%d.example", i)
			var batch store.Batch
			batch.AddPage(store.PageRecord{
				Crawl: string(groundtruth.CrawlTop2020), OS: "Windows",
				Domain: domain, Rank: 90000 + i, URL: "https://" + domain + "/",
			})
			st.AddBatch(&batch)
			indexedReportBattery(st)
		}
	})
	b.Run("indexed-cold", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.BumpGeneration() // invalidate: full rebuild per report
			indexedReportBattery(st)
		}
	})
}

// indexedReportBattery mirrors legacyReportBattery call for call, but
// through the analysis API, which now serves from the site index.
func indexedReportBattery(st *store.Store) {
	t2020, t2021, mal := groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious
	crawls := []groundtruth.CrawlID{t2020, t2021, mal}
	ix := pipeline.IndexFor(st)
	for _, crawl := range crawls { // headline
		analysis.LocalSites(st, crawl, "localhost")
		analysis.LocalSites(st, crawl, "lan")
	}
	analysis.CrawlTable(st)       // table1
	analysis.MaliciousSummary(st) // table2
	for _, c := range []struct {
		crawl groundtruth.CrawlID
		dest  string
	}{
		{t2020, "localhost"}, // table3
		{t2020, "localhost"}, // table5
		{t2020, "lan"},       // table6
		{t2021, "localhost"}, // table7
		{mal, "localhost"},   // table8
		{mal, "lan"},         // table9
		{t2021, "lan"},       // table10
		{t2020, "localhost"}, // figure2a
		{mal, "localhost"},   // figure2b
		{t2020, "localhost"}, // figure3
		{t2020, "localhost"}, // figure5a
		{t2020, "lan"},       // figure5b
		{t2021, "localhost"}, // figure6a
		{t2021, "lan"},       // figure6b
		{mal, "localhost"},   // figure7a
		{mal, "lan"},         // figure7b
		{t2021, "localhost"}, // figure9
	} {
		analysis.LocalSites(st, c.crawl, c.dest)
	}
	for _, c := range []struct { // figures 4 and 8
		crawl groundtruth.CrawlID
		oses  []string
	}{
		{t2020, []string{"Windows", "Linux", "Mac"}},
		{mal, []string{"Windows", "Linux", "Mac"}},
		{t2021, []string{"Windows", "Linux"}},
	} {
		for _, osName := range c.oses {
			analysis.SchemeRollup(st, c.crawl, osName, "localhost")
		}
	}
	for _, crawl := range crawls { // skew
		analysis.LocalSites(st, crawl, "localhost")
		analysis.ComputeSOPUsage(st, crawl, "localhost")
	}
	for _, dest := range []string{"localhost", "lan"} { // longitudinal
		analysis.LocalSites(st, t2020, dest)
		analysis.LocalSites(st, t2021, dest)
		ix.CrawledDomains(t2020)
		ix.CrawledDomains(t2021)
	}
}

// legacyReportBattery performs the aggregate store scans a full
// pre-refactor WriteAll triggered, section by section (rendering
// excluded, which only understates the rescan cost).
func legacyReportBattery(st *store.Store) {
	t2020, t2021, mal := groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious
	crawls := []groundtruth.CrawlID{t2020, t2021, mal}
	for _, crawl := range crawls { // headline
		legacyLocalSites(st, crawl, "localhost")
		legacyLocalSites(st, crawl, "lan")
	}
	legacyCrawlTable(st)       // table1
	legacyMaliciousSummary(st) // table2
	for _, c := range []struct {
		crawl groundtruth.CrawlID
		dest  string
	}{
		{t2020, "localhost"}, // table3
		{t2020, "localhost"}, // table5
		{t2020, "lan"},       // table6
		{t2021, "localhost"}, // table7
		{mal, "localhost"},   // table8
		{mal, "lan"},         // table9
		{t2021, "lan"},       // table10
		{t2020, "localhost"}, // figure2a
		{mal, "localhost"},   // figure2b
		{t2020, "localhost"}, // figure3
		{t2020, "localhost"}, // figure5a
		{t2020, "lan"},       // figure5b
		{t2021, "localhost"}, // figure6a
		{t2021, "lan"},       // figure6b
		{mal, "localhost"},   // figure7a
		{mal, "lan"},         // figure7b
		{t2021, "localhost"}, // figure9
	} {
		legacyLocalSites(st, c.crawl, c.dest)
	}
	for _, c := range []struct { // figures 4 and 8
		crawl groundtruth.CrawlID
		oses  []string
	}{
		{t2020, []string{"Windows", "Linux", "Mac"}},
		{mal, []string{"Windows", "Linux", "Mac"}},
		{t2021, []string{"Windows", "Linux"}},
	} {
		for _, osName := range c.oses {
			legacySchemeRollup(st, c.crawl, osName, "localhost")
		}
	}
	for _, crawl := range crawls { // skew
		legacyLocalSites(st, crawl, "localhost")
		legacySOPUsage(st, crawl, "localhost")
	}
	for _, dest := range []string{"localhost", "lan"} { // longitudinal
		legacyLocalSites(st, t2020, dest)
		legacyLocalSites(st, t2021, dest)
		legacyCrawledDomains(st, t2020)
		legacyCrawledDomains(st, t2021)
	}
}

// --- verbatim pre-refactor aggregate implementations ---

func legacyLocalSites(st *store.Store, crawl groundtruth.CrawlID, dest string) []analysis.SiteActivity {
	reqs := st.Locals(func(l *store.LocalRequest) bool {
		return l.Crawl == string(crawl) && l.Dest == dest
	})
	byDomain := map[string]*analysis.SiteActivity{}
	for _, r := range reqs {
		sa := byDomain[r.Domain]
		if sa == nil {
			sa = &analysis.SiteActivity{
				Domain:     r.Domain,
				Rank:       r.Rank,
				Category:   r.Category,
				FirstDelay: map[groundtruth.OSSet]time.Duration{},
			}
			byDomain[r.Domain] = sa
		}
		bit := analysis.OSSetFromName(r.OS)
		sa.OS |= bit
		if cur, ok := sa.FirstDelay[bit]; !ok || r.Delay < cur {
			sa.FirstDelay[bit] = r.Delay
		}
		sa.Requests = append(sa.Requests, r)
	}
	out := make([]analysis.SiteActivity, 0, len(byDomain))
	for _, sa := range byDomain {
		if dest == "lan" {
			sa.Verdict = classify.LANSite(sa.Requests)
		} else {
			sa.Verdict = classify.Site(sa.Requests)
		}
		out = append(out, *sa)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

func legacySchemeRollup(st *store.Store, crawl groundtruth.CrawlID, osName string, dest string) analysis.Rollup {
	reqs := st.Locals(func(l *store.LocalRequest) bool {
		return l.Crawl == string(crawl) && l.OS == osName && l.Dest == dest
	})
	r := analysis.Rollup{OS: analysis.OSSetFromName(osName), ByScheme: map[string]int{}, Ports: map[string][]uint16{}}
	portSet := map[string]map[uint16]bool{}
	for _, q := range reqs {
		r.Total++
		r.ByScheme[q.Scheme]++
		if portSet[q.Scheme] == nil {
			portSet[q.Scheme] = map[uint16]bool{}
		}
		portSet[q.Scheme][q.Port] = true
	}
	for scheme, ports := range portSet {
		for p := range ports {
			r.Ports[scheme] = append(r.Ports[scheme], p)
		}
		sort.Slice(r.Ports[scheme], func(i, j int) bool { return r.Ports[scheme][i] < r.Ports[scheme][j] })
	}
	return r
}

func legacyCrawlTable(st *store.Store) []analysis.CrawlRow {
	type key struct {
		crawl string
		os    string
	}
	rows := map[key]*analysis.CrawlRow{}
	for _, p := range st.Pages(nil) {
		k := key{p.Crawl, p.OS}
		r := rows[k]
		if r == nil {
			r = &analysis.CrawlRow{Crawl: groundtruth.CrawlID(p.Crawl), OS: p.OS}
			rows[k] = r
		}
		if p.OK() {
			r.Successful++
			continue
		}
		r.Failed++
		switch p.Err {
		case "ERR_NAME_NOT_RESOLVED":
			r.NameNotResolved++
		case "ERR_CONNECTION_REFUSED":
			r.ConnRefused++
		case "ERR_CONNECTION_RESET":
			r.ConnReset++
		case "ERR_CERT_COMMON_NAME_INVALID":
			r.CertCNInvalid++
		default:
			r.Others++
		}
	}
	out := make([]analysis.CrawlRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Crawl != out[j].Crawl {
			return out[i].Crawl < out[j].Crawl
		}
		return legacyOSOrder(out[i].OS) < legacyOSOrder(out[j].OS)
	})
	return out
}

func legacyOSOrder(os string) int {
	switch os {
	case "Windows":
		return 0
	case "Linux":
		return 1
	default:
		return 2
	}
}

func legacyMaliciousSummary(st *store.Store) []analysis.CategoryRow {
	byCat := map[string]*analysis.CategoryRow{}
	attempted := map[[2]string]int{}
	succeeded := map[[2]string]int{}
	for _, p := range st.Pages(func(p *store.PageRecord) bool { return p.Crawl == string(groundtruth.CrawlMalicious) }) {
		r := byCat[p.Category]
		if r == nil {
			r = &analysis.CategoryRow{
				Category:    p.Category,
				SuccessRate: map[string]float64{},
				Localhost:   map[string]int{},
				LAN:         map[string]int{},
			}
			byCat[p.Category] = r
		}
		attempted[[2]string{p.Category, p.OS}]++
		if p.OK() {
			succeeded[[2]string{p.Category, p.OS}]++
		}
	}
	siteSet := map[string]map[string]bool{}
	for _, p := range st.Pages(func(p *store.PageRecord) bool { return p.Crawl == string(groundtruth.CrawlMalicious) }) {
		if siteSet[p.Category] == nil {
			siteSet[p.Category] = map[string]bool{}
		}
		siteSet[p.Category][p.Domain] = true
	}
	for cat, r := range byCat {
		r.Sites = len(siteSet[cat])
		for _, os := range []string{"Windows", "Linux", "Mac"} {
			if n := attempted[[2]string{cat, os}]; n > 0 {
				r.SuccessRate[os] = float64(succeeded[[2]string{cat, os}]) / float64(n)
			}
		}
	}
	for _, dest := range []string{"localhost", "lan"} {
		for _, s := range legacyLocalSites(st, groundtruth.CrawlMalicious, dest) {
			r := byCat[s.Category]
			if r == nil {
				continue
			}
			for osName, bit := range map[string]groundtruth.OSSet{
				"Windows": groundtruth.OSWindows, "Linux": groundtruth.OSLinux, "Mac": groundtruth.OSMac,
			} {
				if s.OS.Has(bit) {
					if dest == "lan" {
						r.LAN[osName]++
					} else {
						r.Localhost[osName]++
					}
				}
			}
		}
	}
	out := make([]analysis.CategoryRow, 0, len(byCat))
	for _, cat := range []string{"malware", "abuse", "phishing"} {
		if r := byCat[cat]; r != nil {
			out = append(out, *r)
		}
	}
	return out
}

func legacySOPUsage(st *store.Store, crawl groundtruth.CrawlID, dest string) analysis.SOPUsage {
	var u analysis.SOPUsage
	siteExempt := map[string]bool{}
	siteSeen := map[string]bool{}
	for _, r := range st.Locals(func(l *store.LocalRequest) bool {
		return l.Crawl == string(crawl) && l.Dest == dest
	}) {
		u.Requests++
		siteSeen[r.Domain] = true
		if r.SOPExempt {
			u.ExemptRequests++
			siteExempt[r.Domain] = true
		}
		if r.Scheme == "wss" {
			u.WSSRequests++
		}
	}
	u.Sites = len(siteSeen)
	u.ExemptSites = len(siteExempt)
	return u
}

func legacyCrawledDomains(st *store.Store, crawl groundtruth.CrawlID) map[string]bool {
	out := map[string]bool{}
	for _, p := range st.Pages(func(p *store.PageRecord) bool { return p.Crawl == string(crawl) }) {
		out[p.Domain] = true
	}
	return out
}
