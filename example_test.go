package knockandtalk_test

import (
	"fmt"

	knockandtalk "github.com/knockandtalk/knockandtalk"
)

// ExampleClassifySite classifies a ThreatMetrix-shaped probe set.
func ExampleClassifySite() {
	var reqs []knockandtalk.LocalRequest
	for _, port := range []uint16{3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040, 7070, 63333} {
		reqs = append(reqs, knockandtalk.LocalRequest{
			Domain: "ebay.com", Scheme: "wss", Host: "localhost",
			Port: port, Path: "/", Dest: "localhost",
		})
	}
	v := knockandtalk.ClassifySite(reqs)
	fmt.Println(v.Class, "via", v.Signature)
	// Output: Fraud Detection via threatmetrix
}

// ExampleRun crawls a deterministic slice of the 2020 population and
// lists the sites knocking on localhost.
func ExampleRun() {
	st := knockandtalk.NewStore()
	_, err := knockandtalk.Run(knockandtalk.Config{
		Crawl:   knockandtalk.CrawlTop2020,
		OS:      knockandtalk.Windows,
		Scale:   0.01, // top 1,000 domains
		Seed:    42,
		Workers: 2,
	}, st)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, site := range knockandtalk.LocalSites(st, knockandtalk.CrawlTop2020, "localhost") {
		fmt.Printf("%d %s: %s\n", site.Rank, site.Domain, site.Verdict.Class)
	}
	// walmart.com (rank 131) stays quiet here: it scans only on its
	// login page (crawl with PagePath: "/login" to see it).
	//
	// Output:
	// 104 ebay.com: Fraud Detection
	// 244 hola.org: Unknown
	// 429 ebay.de: Fraud Detection
	// 536 ebay.co.uk: Fraud Detection
	// 932 ebay.com.au: Fraud Detection
}
