package health

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// Mount wires the health endpoints onto an existing mux (knockserved
// folds them into its -debug-addr listener):
//
//	/status  — JSON progress per crawl leg plus active alerts
//	/healthz — liveness + readiness (200 while ready, 503 otherwise)
//	/metrics — the registry in Prometheus text exposition format
//
// reg nil uses the process-default registry.
func Mount(mux *http.ServeMux, t *Tracker, reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.Default()
	}
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Status())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if t.Ready() {
			w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("not ready\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Handler returns a standalone mux carrying the health endpoints.
func Handler(t *Tracker, reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, t, reg)
	return mux
}

// Serve starts the status listener on addr and returns the bound
// address (addr may use port 0) and a shutdown func. addr "" disables
// the listener: the returned stop is a no-op and the address empty,
// so callers thread the flag through unconditionally.
func Serve(addr string, t *Tracker, reg *telemetry.Registry, logger *slog.Logger) (string, func(), error) {
	if addr == "" {
		return "", func() {}, nil
	}
	if logger == nil {
		logger = slog.Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(t, reg)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("status listener failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	logger.Info("status listener up", "addr", ln.Addr().String())
	stop := func() { srv.Close() }
	return ln.Addr().String(), stop, nil
}
