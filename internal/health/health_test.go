package health

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic rate math.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func trackerWithClock(c *fakeClock) *Tracker {
	return New(Options{HalfLife: 30 * time.Second, Now: c.now})
}

// TestNilSafety exercises every progress method on nil receivers: the
// crawler calls these unconditionally whether or not the health plane
// is enabled, so none may branch or panic.
func TestNilSafety(t *testing.T) {
	var tr *Tracker
	p := tr.StartCrawl("c", "os", 10, 2)
	if p != nil {
		t.Fatal("nil tracker minted a non-nil leg")
	}
	p.VisitStart(0)
	p.VisitDone(0, time.Second, true)
	p.Skipped(1)
	p.ResumeSkip()
	p.RetentionError()
	p.Finish()
	if p.Done() || p.MedianVisit() != 0 {
		t.Error("nil leg reported state")
	}
	tr.SetReady(false)
	if tr.Ready() {
		t.Error("nil tracker ready")
	}
	if s := tr.Status(); len(s.Crawls) != 0 {
		t.Error("nil tracker status non-empty")
	}
	var w *Watchdog
	w.Sweep()
	w.Start()
	w.Stop()
}

// TestProgressCounts verifies the per-visit tallies and the rolling
// median over a deterministic sequence.
func TestProgressCounts(t *testing.T) {
	clk := newFakeClock()
	tr := trackerWithClock(clk)
	p := tr.StartCrawl("top100", "Windows", 100, 3)

	durs := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
		40 * time.Millisecond, 50 * time.Millisecond}
	for i, d := range durs {
		w := i % 3
		p.VisitStart(w)
		clk.advance(d)
		p.VisitDone(w, d, i != 4) // last one fails
	}
	p.Skipped(0)
	p.ResumeSkip()
	p.RetentionError()

	clk.advance(time.Millisecond)
	s := tr.Status()
	if len(s.Crawls) != 1 {
		t.Fatalf("legs = %d, want 1", len(s.Crawls))
	}
	cs := s.Crawls[0]
	if cs.Visited != 5 || cs.Failed != 1 || cs.Skipped != 1 || cs.ResumeSkipped != 1 || cs.RetentionErrors != 1 {
		t.Errorf("counts: %+v", cs)
	}
	if got := cs.RetentionErrorRate; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("retention rate = %v, want 0.2", got)
	}
	if got := p.MedianVisit(); got != 30*time.Millisecond {
		t.Errorf("median = %v, want 30ms", got)
	}
	if len(cs.Workers) != 3 {
		t.Fatalf("workers = %d", len(cs.Workers))
	}
	if cs.Workers[0].Visits != 2 || cs.Workers[1].Visits != 2 || cs.Workers[2].Visits != 1 {
		t.Errorf("worker visit split: %+v", cs.Workers)
	}
}

// TestEWMAAndETA checks the throughput estimate against hand-computed
// EWMA math and the ETA derived from it.
func TestEWMAAndETA(t *testing.T) {
	clk := newFakeClock()
	tr := trackerWithClock(clk)
	p := tr.StartCrawl("c", "Linux", 1000, 1)

	// 10 visits over 10s: first sample is the plain average, 1/s.
	for i := 0; i < 10; i++ {
		clk.advance(time.Second)
		p.VisitDone(0, time.Second, true)
	}
	r1 := p.sample(clk.now())
	if math.Abs(r1-1.0) > 1e-9 {
		t.Fatalf("first sample = %v, want 1.0", r1)
	}

	// 30 more visits over the next 10s: instantaneous rate 3/s. With a
	// 30s half-life, alpha = 1 - exp(-10*ln2/30).
	for i := 0; i < 30; i++ {
		clk.advance(time.Second / 3)
		p.VisitDone(0, time.Second/3, true)
	}
	r2 := p.sample(clk.now())
	alpha := 1 - math.Exp(-10*math.Ln2/30)
	want := r1 + alpha*(3.0-r1)
	if math.Abs(r2-want) > 1e-9 {
		t.Fatalf("ewma = %v, want %v", r2, want)
	}

	// ETA = remaining / rate with 960 of 1000 targets left.
	cs := p.status(clk.now())
	if math.Abs(cs.ETASeconds-960/r2) > 1e-6 {
		t.Errorf("eta = %v, want %v", cs.ETASeconds, 960/r2)
	}

	// Zero-dt resample returns the same estimate (no div-by-zero).
	if r3 := p.sample(clk.now()); r3 != r2 {
		t.Errorf("zero-dt resample changed rate: %v != %v", r3, r2)
	}
}

// TestFinishedRateIsOverallAverage pins the contract the /status-vs-
// Summary agreement test depends on: once a leg finishes, the reported
// rate is total progressed over total elapsed, regardless of EWMA
// history or when /status is scraped afterwards.
func TestFinishedRateIsOverallAverage(t *testing.T) {
	clk := newFakeClock()
	tr := trackerWithClock(clk)
	p := tr.StartCrawl("c", "Linux", 8, 2)
	for i := 0; i < 6; i++ {
		clk.advance(500 * time.Millisecond)
		p.VisitDone(i%2, 500*time.Millisecond, true)
	}
	p.Skipped(0)
	p.ResumeSkip()
	clk.advance(time.Second)
	p.Finish()
	if !p.Done() {
		t.Fatal("leg not done after Finish")
	}

	// 8 targets progressed over 4s of wall time.
	clk.advance(time.Hour) // a late scrape must not decay the rate
	cs := p.status(clk.now())
	if math.Abs(cs.PagesPerSec-2.0) > 1e-9 {
		t.Errorf("finished rate = %v, want 2.0", cs.PagesPerSec)
	}
	if cs.ETASeconds != 0 {
		t.Errorf("finished leg reported ETA %v", cs.ETASeconds)
	}
	if !cs.Done {
		t.Error("status not marked done")
	}
}

// TestMedianWindowWraps fills the duration ring past capacity and
// confirms the median reflects only the window, not all history.
func TestMedianWindowWraps(t *testing.T) {
	clk := newFakeClock()
	tr := trackerWithClock(clk)
	p := tr.StartCrawl("c", "Linux", 0, 1)
	// Old slow history that should be fully evicted...
	for i := 0; i < durRingSize; i++ {
		p.VisitDone(0, time.Minute, true)
	}
	// ...overwritten by a full window of 10ms visits.
	for i := 0; i < durRingSize; i++ {
		p.VisitDone(0, 10*time.Millisecond, true)
	}
	if got := p.MedianVisit(); got != 10*time.Millisecond {
		t.Errorf("median after wrap = %v, want 10ms", got)
	}
}
