// Package health is the live operations plane layered on the
// telemetry registry: a progress tracker fed lock-cheaply from the
// crawler's per-visit completion path (visited/total, EWMA pages/sec,
// ETA, per-worker activity), a watchdog that flags stalled workers and
// telemetry loss, an HTTP status surface (/status, /healthz, and
// /metrics in Prometheus text exposition format), and the structured
// slog setup the cmd binaries share.
//
// Everything here is strictly observation-only: a crawl with the
// health plane fully on produces a byte-identical store to a bare
// crawl (enforced by the crawler's golden-parity test).
package health

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options tune a Tracker; the zero value picks defaults.
type Options struct {
	// HalfLife is the EWMA half-life of the pages/sec throughput
	// estimate (default 30s): after one half-life of wall time the old
	// rate contributes half of the estimate.
	HalfLife time.Duration
	// Now overrides the clock; tests inject a deterministic one.
	Now func() time.Time
}

// Tracker is the root of the health plane: the set of crawl legs in
// flight plus the active alerts the watchdog maintains. One Tracker
// serves one process, whatever mix of crawls it runs.
type Tracker struct {
	opts  Options
	start time.Time
	// ready is the /healthz readiness bit: knockserved clears it while
	// mounting stores and during drain; crawl binaries leave it set.
	ready atomic.Bool

	mu     sync.Mutex
	legs   []*CrawlProgress
	alerts map[string]Alert
}

// New returns a ready Tracker.
func New(opts Options) *Tracker {
	if opts.HalfLife <= 0 {
		opts.HalfLife = 30 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &Tracker{opts: opts, start: opts.Now(), alerts: map[string]Alert{}}
	t.ready.Store(true)
	return t
}

func (t *Tracker) now() time.Time { return t.opts.Now() }

// SetReady flips the /healthz readiness bit (true at construction).
func (t *Tracker) SetReady(ready bool) {
	if t == nil {
		return
	}
	t.ready.Store(ready)
}

// Ready reports the readiness bit.
func (t *Tracker) Ready() bool { return t != nil && t.ready.Load() }

// StartCrawl registers one crawl leg: a (crawl, OS) population of
// total targets crawled by the given number of workers. total 0 means
// open-ended (a live-ingest feed): progress and rate are tracked, ETA
// is not. A nil Tracker returns a nil leg whose methods are all
// no-ops, so call sites never branch on whether the plane is enabled.
func (t *Tracker) StartCrawl(crawl, os string, total, workers int) *CrawlProgress {
	if t == nil {
		return nil
	}
	if workers < 0 {
		workers = 0
	}
	p := &CrawlProgress{
		t: t, crawl: crawl, os: os, total: total,
		start:   t.now(),
		workers: make([]workerSlot, workers),
	}
	p.lastSample = p.start
	t.mu.Lock()
	t.legs = append(t.legs, p)
	t.mu.Unlock()
	return p
}

// durRingSize bounds the rolling window of recent visit durations the
// watchdog's stall median is computed over.
const durRingSize = 512

// CrawlProgress tracks one crawl leg. The write path (VisitStart,
// VisitDone, Skipped, RetentionError) is purely atomic — no locks, no
// allocation — so it rides the crawler's per-visit completion path at
// negligible cost. The EWMA state is touched only by readers
// (Status/watchdog sweeps) under its own small mutex.
type CrawlProgress struct {
	t          *Tracker
	crawl, os  string
	total      int
	start      time.Time
	finishedNS atomic.Int64 // unix nanos of Finish; 0 while running

	visited       atomic.Uint64 // completed visit attempts (ok or failed)
	failed        atomic.Uint64
	skipped       atomic.Uint64 // connectivity-skipped targets
	resumed       atomic.Uint64 // targets skipped by resume
	retentionErrs atomic.Uint64

	// durRing holds the last durRingSize visit durations (nanoseconds)
	// for the watchdog's rolling median; torn reads across slots are
	// acceptable for a health signal.
	durIdx  atomic.Uint64
	durRing [durRingSize]atomic.Int64

	workers []workerSlot

	rateMu     sync.Mutex
	lastSample time.Time
	lastCount  uint64
	ewma       float64 // pages/sec
	sampled    bool
}

// workerSlot is one worker's activity state.
type workerSlot struct {
	busySince atomic.Int64 // unix nanos of the in-flight visit's start; 0 when idle
	lastDone  atomic.Int64 // unix nanos of the last completion
	visits    atomic.Uint64
}

// VisitStart marks worker w busy with a new target.
func (p *CrawlProgress) VisitStart(w int) {
	if p == nil || w < 0 || w >= len(p.workers) {
		return
	}
	p.workers[w].busySince.Store(p.t.now().UnixNano())
}

// VisitDone records one completed visit attempt: duration for the
// rolling median and throughput, outcome for the failure tally, and
// the worker's slot freed. w < 0 skips the per-worker bookkeeping
// (serve's ingest plane has no fixed worker slots).
func (p *CrawlProgress) VisitDone(w int, dur time.Duration, ok bool) {
	if p == nil {
		return
	}
	p.visited.Add(1)
	if !ok {
		p.failed.Add(1)
	}
	if dur < 0 {
		dur = 0
	}
	idx := p.durIdx.Add(1) - 1
	p.durRing[idx%durRingSize].Store(int64(dur))
	if w >= 0 && w < len(p.workers) {
		p.workers[w].visits.Add(1)
		p.workers[w].lastDone.Store(p.t.now().UnixNano())
		p.workers[w].busySince.Store(0)
	}
}

// Skipped records a target abandoned by the connectivity check.
func (p *CrawlProgress) Skipped(w int) {
	if p == nil {
		return
	}
	p.skipped.Add(1)
	if w >= 0 && w < len(p.workers) {
		p.workers[w].busySince.Store(0)
	}
}

// ResumeSkip records a target skipped because a resumed crawl already
// holds its record.
func (p *CrawlProgress) ResumeSkip() {
	if p == nil {
		return
	}
	p.resumed.Add(1)
}

// RetentionError records one NetLog capture that could not be
// retained.
func (p *CrawlProgress) RetentionError() {
	if p == nil {
		return
	}
	p.retentionErrs.Add(1)
}

// Finish marks the leg complete: the watchdog stops stall checks and
// the reported rate becomes the leg's overall average.
func (p *CrawlProgress) Finish() {
	if p == nil {
		return
	}
	p.finishedNS.CompareAndSwap(0, p.t.now().UnixNano())
}

// Done reports whether the leg has finished.
func (p *CrawlProgress) Done() bool { return p != nil && p.finishedNS.Load() != 0 }

// progressed is the number of targets disposed of so far — visited,
// connectivity-skipped, or resume-skipped — the unit the rate and ETA
// are computed in.
func (p *CrawlProgress) progressed() uint64 {
	return p.visited.Load() + p.skipped.Load() + p.resumed.Load()
}

// MedianVisit returns the median of the rolling visit-duration window
// (0 before the first completion) — the baseline the watchdog scales
// to decide a worker has stalled.
func (p *CrawlProgress) MedianVisit() time.Duration {
	if p == nil {
		return 0
	}
	n := p.durIdx.Load()
	if n == 0 {
		return 0
	}
	if n > durRingSize {
		n = durRingSize
	}
	durs := make([]int64, n)
	for i := range durs {
		durs[i] = p.durRing[i].Load()
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return time.Duration(durs[n/2])
}

// sample advances the EWMA throughput estimate to now and returns it.
// The first sample (and every sample of a finished leg) is the
// overall average rate since the leg started, so a completed leg's
// reported throughput agrees with its final summary.
func (p *CrawlProgress) sample(now time.Time) float64 {
	p.rateMu.Lock()
	defer p.rateMu.Unlock()
	if fin := p.finishedNS.Load(); fin != 0 {
		elapsed := time.Unix(0, fin).Sub(p.start).Seconds()
		if elapsed <= 0 {
			return 0
		}
		p.ewma = float64(p.progressed()) / elapsed
		p.sampled = true
		return p.ewma
	}
	n := p.progressed()
	dt := now.Sub(p.lastSample).Seconds()
	if dt <= 0 {
		return p.ewma
	}
	if !p.sampled {
		since := now.Sub(p.start).Seconds()
		if n == 0 || since <= 0 {
			return 0
		}
		p.ewma = float64(n) / since
		p.sampled = true
	} else {
		inst := float64(n-p.lastCount) / dt
		alpha := 1 - math.Exp(-dt*math.Ln2/p.t.opts.HalfLife.Seconds())
		p.ewma += alpha * (inst - p.ewma)
	}
	p.lastSample = now
	p.lastCount = n
	return p.ewma
}

// Status is the /status wire form: whole-process uptime and readiness
// plus every crawl leg and active alert.
type Status struct {
	UptimeSeconds float64       `json:"uptime_seconds"`
	Ready         bool          `json:"ready"`
	Crawls        []CrawlStatus `json:"crawls,omitempty"`
	Alerts        []Alert       `json:"alerts,omitempty"`
}

// CrawlStatus is one leg's live progress.
type CrawlStatus struct {
	Crawl           string `json:"crawl"`
	OS              string `json:"os"`
	Total           int    `json:"total,omitempty"`
	Visited         uint64 `json:"visited"`
	Failed          uint64 `json:"failed,omitempty"`
	Skipped         uint64 `json:"skipped,omitempty"`
	ResumeSkipped   uint64 `json:"resume_skipped,omitempty"`
	RetentionErrors uint64 `json:"retention_errors,omitempty"`
	// RetentionErrorRate is retention errors per completed visit.
	RetentionErrorRate float64 `json:"retention_error_rate,omitempty"`
	// PagesPerSec is the EWMA throughput while the leg runs and the
	// overall average once it finishes.
	PagesPerSec float64 `json:"pages_per_sec"`
	// ETASeconds estimates time to completion from the remaining
	// targets and the current rate (omitted for open-ended legs).
	ETASeconds    float64        `json:"eta_seconds,omitempty"`
	MedianVisitMS float64        `json:"median_visit_ms,omitempty"`
	Done          bool           `json:"done,omitempty"`
	Workers       []WorkerStatus `json:"workers,omitempty"`
}

// WorkerStatus is one worker's activity snapshot.
type WorkerStatus struct {
	Visits uint64 `json:"visits"`
	// BusyMS is the age of the in-flight visit (0 when idle) — the
	// number the watchdog compares against the stall bound.
	BusyMS float64 `json:"busy_ms,omitempty"`
	// IdleMS is the time since the last completion when idle.
	IdleMS float64 `json:"idle_ms,omitempty"`
}

// Alert is one active watchdog finding.
type Alert struct {
	// Type is the alert family: worker_stalled, retention_errors, or
	// trace_drops.
	Type string `json:"type"`
	// Subject names what the alert is about (crawl/os/worker, or the
	// trace sink).
	Subject string    `json:"subject"`
	Detail  string    `json:"detail"`
	Since   time.Time `json:"since"`
}

func alertKey(typ, subject string) string { return typ + "|" + subject }

func sortAlerts(alerts []Alert) {
	sort.Slice(alerts, func(i, j int) bool {
		if alerts[i].Type != alerts[j].Type {
			return alerts[i].Type < alerts[j].Type
		}
		return alerts[i].Subject < alerts[j].Subject
	})
}

// Status snapshots the tracker. Snapshotting samples each running
// leg's EWMA, so a scraper or the watchdog keeps the rate fresh as a
// side effect of looking.
func (t *Tracker) Status() Status {
	if t == nil {
		return Status{}
	}
	now := t.now()
	t.mu.Lock()
	legs := make([]*CrawlProgress, len(t.legs))
	copy(legs, t.legs)
	alerts := make([]Alert, 0, len(t.alerts))
	for _, a := range t.alerts {
		alerts = append(alerts, a)
	}
	t.mu.Unlock()
	sortAlerts(alerts)
	s := Status{
		UptimeSeconds: now.Sub(t.start).Seconds(),
		Ready:         t.Ready(),
		Alerts:        alerts,
	}
	for _, p := range legs {
		s.Crawls = append(s.Crawls, p.status(now))
	}
	return s
}

func (p *CrawlProgress) status(now time.Time) CrawlStatus {
	cs := CrawlStatus{
		Crawl:           p.crawl,
		OS:              p.os,
		Total:           p.total,
		Visited:         p.visited.Load(),
		Failed:          p.failed.Load(),
		Skipped:         p.skipped.Load(),
		ResumeSkipped:   p.resumed.Load(),
		RetentionErrors: p.retentionErrs.Load(),
		PagesPerSec:     p.sample(now),
		MedianVisitMS:   float64(p.MedianVisit()) / float64(time.Millisecond),
		Done:            p.Done(),
	}
	if cs.Visited > 0 {
		cs.RetentionErrorRate = float64(cs.RetentionErrors) / float64(cs.Visited)
	}
	if p.total > 0 && !cs.Done {
		remaining := float64(p.total) - float64(p.progressed())
		if remaining > 0 && cs.PagesPerSec > 0 {
			cs.ETASeconds = remaining / cs.PagesPerSec
		}
	}
	for i := range p.workers {
		w := &p.workers[i]
		ws := WorkerStatus{Visits: w.visits.Load()}
		if busy := w.busySince.Load(); busy != 0 {
			ws.BusyMS = float64(now.Sub(time.Unix(0, busy))) / float64(time.Millisecond)
		} else if last := w.lastDone.Load(); last != 0 {
			ws.IdleMS = float64(now.Sub(time.Unix(0, last))) / float64(time.Millisecond)
		}
		cs.Workers = append(cs.Workers, ws)
	}
	return cs
}

// snapshotLegs returns the current legs (for the watchdog sweep).
func (t *Tracker) snapshotLegs() []*CrawlProgress {
	t.mu.Lock()
	defer t.mu.Unlock()
	legs := make([]*CrawlProgress, len(t.legs))
	copy(legs, t.legs)
	return legs
}
