package health

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// LoggerTo builds a component-labeled slog.Logger writing to w in the
// given format ("text" or "json"). Every cmd binary funnels its
// diagnostics through one of these so a fleet's stderr streams are
// uniformly machine-parseable when -log-format json is set.
func LoggerTo(w io.Writer, format, component string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("health: unknown log format %q (want text or json)", format)
	}
	return slog.New(h).With("component", component), nil
}

// NewLogger is LoggerTo on stderr, installing the result as the
// process-wide slog default so stray slog calls inherit the format.
func NewLogger(format, component string) (*slog.Logger, error) {
	logger, err := LoggerTo(os.Stderr, format, component)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}
