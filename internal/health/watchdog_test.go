package health

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

func testWatchdog(tr *Tracker, opts WatchdogOptions) (*Watchdog, *bytes.Buffer, *telemetry.Registry) {
	var buf bytes.Buffer
	opts.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	opts.Registry = telemetry.NewRegistry()
	return NewWatchdog(tr, opts), &buf, opts.Registry
}

// TestWatchdogStallRaiseResolve drives a worker past the stall bound
// with a fake clock, then completes the visit and confirms the alert
// resolves.
func TestWatchdogStallRaiseResolve(t *testing.T) {
	clk := newFakeClock()
	tr := trackerWithClock(clk)
	p := tr.StartCrawl("top100", "Windows", 10, 2)
	w, logs, reg := testWatchdog(tr, WatchdogOptions{
		StallFactor: 4, MinStall: 100 * time.Millisecond,
	})

	// Seed the median at 50ms: stall bound = max(100ms, 4*50ms) = 200ms.
	for i := 0; i < 5; i++ {
		p.VisitStart(0)
		clk.advance(50 * time.Millisecond)
		p.VisitDone(0, 50*time.Millisecond, true)
	}
	p.VisitStart(1)
	clk.advance(150 * time.Millisecond)
	w.Sweep()
	if alerts := tr.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("alert before stall bound: %+v", alerts)
	}

	clk.advance(100 * time.Millisecond) // in flight 250ms > 200ms bound
	w.Sweep()
	alerts := tr.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Type != AlertWorkerStalled {
		t.Fatalf("stall alert missing: %+v", alerts)
	}
	if got := alerts[0].Subject; got != "top100/Windows/worker-1" {
		t.Errorf("subject = %q", got)
	}
	raisedAt := alerts[0].Since
	if !strings.Contains(logs.String(), "health alert raised") {
		t.Errorf("no raise warning logged:\n%s", logs.String())
	}
	if got := reg.Snapshot().Counters[`health_alerts_total{type=worker_stalled}`]; got != 1 {
		t.Errorf("alert counter = %d, want 1", got)
	}

	// A persisting alert keeps its Since and does not re-count.
	clk.advance(50 * time.Millisecond)
	w.Sweep()
	alerts = tr.ActiveAlerts()
	if len(alerts) != 1 || !alerts[0].Since.Equal(raisedAt) {
		t.Errorf("persisting alert changed Since: %+v", alerts)
	}
	if got := reg.Snapshot().Counters[`health_alerts_total{type=worker_stalled}`]; got != 1 {
		t.Errorf("persisting alert re-counted: %d", got)
	}

	// Completing the visit resolves the alert on the next sweep.
	p.VisitDone(1, 300*time.Millisecond, true)
	w.Sweep()
	if alerts := tr.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("alert not resolved: %+v", alerts)
	}
	if !strings.Contains(logs.String(), "health alert resolved") {
		t.Errorf("no resolve log:\n%s", logs.String())
	}

	// A finished leg never stall-alerts, even with a stuck busy bit.
	p.VisitStart(0)
	p.Finish()
	clk.advance(time.Hour)
	w.Sweep()
	if alerts := tr.ActiveAlerts(); len(alerts) != 0 {
		t.Errorf("finished leg alerted: %+v", alerts)
	}
}

// TestWatchdogRetentionSustained requires the rate to stay hot for
// SustainTicks consecutive sweeps before alerting.
func TestWatchdogRetentionSustained(t *testing.T) {
	clk := newFakeClock()
	tr := trackerWithClock(clk)
	p := tr.StartCrawl("c", "Linux", 0, 1)
	w, logs, _ := testWatchdog(tr, WatchdogOptions{
		RetentionRate: 0.10, SustainTicks: 3,
	})

	for i := 0; i < 10; i++ {
		p.VisitDone(0, time.Millisecond, true)
	}
	for i := 0; i < 2; i++ {
		p.RetentionError()
	}
	// 20% rate, but only hot for two sweeps: no alert yet.
	w.Sweep()
	w.Sweep()
	if alerts := tr.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("alert before sustain window: %+v", alerts)
	}
	w.Sweep()
	alerts := tr.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Type != AlertRetentionErrors {
		t.Fatalf("sustained retention alert missing: %+v", alerts)
	}
	if !strings.Contains(alerts[0].Detail, "20.0%") {
		t.Errorf("detail lacks rate: %q", alerts[0].Detail)
	}

	// Recovery: enough clean visits drop the rate below threshold, the
	// hot streak resets, and the alert resolves.
	for i := 0; i < 90; i++ {
		p.VisitDone(0, time.Millisecond, true)
	}
	w.Sweep()
	if alerts := tr.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("retention alert not resolved: %+v", alerts)
	}
	if !strings.Contains(logs.String(), "retention_errors") {
		t.Errorf("retention alert never logged:\n%s", logs.String())
	}
}

// TestWatchdogTraceDrops alerts on a drop burst between sweeps and
// stays quiet while the cumulative count is flat.
func TestWatchdogTraceDrops(t *testing.T) {
	clk := newFakeClock()
	tr := trackerWithClock(clk)
	var drops uint64
	w, _, reg := testWatchdog(tr, WatchdogOptions{
		DropBurst:  5,
		TraceDrops: func() uint64 { return drops },
	})

	w.Sweep() // seeds the baseline; pre-existing drops are not a burst
	drops = 3
	w.Sweep() // +3 < burst of 5
	if alerts := tr.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("sub-burst drops alerted: %+v", alerts)
	}
	drops = 9
	w.Sweep() // +6 >= 5
	alerts := tr.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Type != AlertTraceDrops {
		t.Fatalf("drop burst alert missing: %+v", alerts)
	}
	if got := reg.Snapshot().Counters[`health_alerts_total{type=trace_drops}`]; got != 1 {
		t.Errorf("alert counter = %d, want 1", got)
	}
	w.Sweep() // flat since last sweep: resolved
	if alerts := tr.ActiveAlerts(); len(alerts) != 0 {
		t.Errorf("flat drop count kept alert: %+v", alerts)
	}
}
