package health

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// WatchdogOptions tune the alerting sweep; the zero value picks
// defaults suitable for a production crawl.
type WatchdogOptions struct {
	// Interval is the sweep period (default 5s).
	Interval time.Duration
	// StallFactor scales the rolling median visit duration into the
	// stall bound: a worker busy longer than StallFactor*median is
	// flagged (default 8).
	StallFactor float64
	// MinStall floors the stall bound so fast crawls with
	// millisecond-scale medians don't alert on scheduler noise
	// (default 30s).
	MinStall time.Duration
	// RetentionRate is the retention-errors-per-visit rate above which
	// a leg alerts, once sustained (default 0.05).
	RetentionRate float64
	// SustainTicks is how many consecutive sweeps the retention rate
	// must exceed RetentionRate before alerting — one bad batch is not
	// an incident (default 3).
	SustainTicks int
	// DropBurst is the number of new trace-sink drops between two
	// sweeps that counts as a burst (default 1: any loss alerts).
	DropBurst uint64
	// TraceDrops reports the trace sink's cumulative drop count;
	// production wires tracer.Dropped. Nil disables the drop check.
	TraceDrops func() uint64
	// Logger receives alert warnings; nil uses slog.Default().
	Logger *slog.Logger
	// Registry receives health_alerts_total counters; nil uses
	// telemetry.Default().
	Registry *telemetry.Registry
}

// Watchdog periodically sweeps a Tracker's crawl legs and maintains
// the tracker's active-alert set. It only observes — it never touches
// the crawl itself.
type Watchdog struct {
	t    *Tracker
	opts WatchdogOptions

	mu         sync.Mutex
	retainHot  map[*CrawlProgress]int // consecutive sweeps above RetentionRate
	lastDrops  uint64
	dropSeeded bool

	stop chan struct{}
	done chan struct{}
}

// Alert type families.
const (
	AlertWorkerStalled   = "worker_stalled"
	AlertRetentionErrors = "retention_errors"
	AlertTraceDrops      = "trace_drops"
)

// NewWatchdog builds a watchdog over t. Call Start to run it on a
// ticker, or Sweep directly for deterministic single steps (tests).
func NewWatchdog(t *Tracker, opts WatchdogOptions) *Watchdog {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.StallFactor <= 0 {
		opts.StallFactor = 8
	}
	if opts.MinStall <= 0 {
		opts.MinStall = 30 * time.Second
	}
	if opts.RetentionRate <= 0 {
		opts.RetentionRate = 0.05
	}
	if opts.SustainTicks <= 0 {
		opts.SustainTicks = 3
	}
	if opts.DropBurst == 0 {
		opts.DropBurst = 1
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.Default()
	}
	return &Watchdog{
		t:         t,
		opts:      opts,
		retainHot: map[*CrawlProgress]int{},
	}
}

// Start runs the sweep loop until Stop.
func (w *Watchdog) Start() {
	if w == nil || w.t == nil {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		tick := time.NewTicker(w.opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				w.Sweep()
			}
		}
	}()
}

// Stop halts the sweep loop and waits for it to exit.
func (w *Watchdog) Stop() {
	if w == nil || w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
	w.stop = nil
}

// Sweep runs one observation pass: it raises and resolves alerts on
// the tracker and logs transitions. Exported so tests can step the
// watchdog deterministically with an injected clock.
func (w *Watchdog) Sweep() {
	if w == nil || w.t == nil {
		return
	}
	now := w.t.now()
	active := map[string]Alert{}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, p := range w.t.snapshotLegs() {
		leg := p.crawl + "/" + p.os
		if !p.Done() {
			w.sweepStalls(p, leg, now, active)
		}
		w.sweepRetention(p, leg, now, active)
	}
	w.sweepDrops(now, active)
	w.t.applyAlerts(active, w.opts.Logger, w.opts.Registry)
}

func (w *Watchdog) sweepStalls(p *CrawlProgress, leg string, now time.Time, active map[string]Alert) {
	bound := time.Duration(w.opts.StallFactor * float64(p.MedianVisit()))
	if bound < w.opts.MinStall {
		bound = w.opts.MinStall
	}
	for i := range p.workers {
		busy := p.workers[i].busySince.Load()
		if busy == 0 {
			continue
		}
		age := now.Sub(time.Unix(0, busy))
		if age <= bound {
			continue
		}
		subject := fmt.Sprintf("%s/worker-%d", leg, i)
		active[alertKey(AlertWorkerStalled, subject)] = Alert{
			Type:    AlertWorkerStalled,
			Subject: subject,
			Detail: fmt.Sprintf("visit in flight for %s (stall bound %s, median %s)",
				age.Round(time.Millisecond), bound.Round(time.Millisecond), p.MedianVisit().Round(time.Millisecond)),
			Since: now,
		}
	}
}

func (w *Watchdog) sweepRetention(p *CrawlProgress, leg string, now time.Time, active map[string]Alert) {
	visited := p.visited.Load()
	errs := p.retentionErrs.Load()
	rate := 0.0
	if visited > 0 {
		rate = float64(errs) / float64(visited)
	}
	if rate > w.opts.RetentionRate {
		w.retainHot[p]++
	} else {
		delete(w.retainHot, p)
	}
	if w.retainHot[p] >= w.opts.SustainTicks {
		active[alertKey(AlertRetentionErrors, leg)] = Alert{
			Type:    AlertRetentionErrors,
			Subject: leg,
			Detail: fmt.Sprintf("retention error rate %.1f%% (%d/%d visits) above %.1f%% for %d sweeps",
				rate*100, errs, visited, w.opts.RetentionRate*100, w.retainHot[p]),
			Since: now,
		}
	}
}

func (w *Watchdog) sweepDrops(now time.Time, active map[string]Alert) {
	if w.opts.TraceDrops == nil {
		return
	}
	drops := w.opts.TraceDrops()
	if !w.dropSeeded {
		w.lastDrops, w.dropSeeded = drops, true
		return
	}
	burst := drops - w.lastDrops
	w.lastDrops = drops
	if burst >= w.opts.DropBurst {
		active[alertKey(AlertTraceDrops, "trace-sink")] = Alert{
			Type:    AlertTraceDrops,
			Subject: "trace-sink",
			Detail:  fmt.Sprintf("trace sink dropped %d records since last sweep (%d total)", burst, drops),
			Since:   now,
		}
	}
}

// applyAlerts reconciles the tracker's alert set against one sweep's
// findings: new alerts are raised (counter + warning), vanished ones
// resolved (info), persisting ones keep their original Since.
func (t *Tracker) applyAlerts(active map[string]Alert, logger *slog.Logger, reg *telemetry.Registry) {
	t.mu.Lock()
	var raised, resolved []Alert
	for key, a := range active {
		if prev, ok := t.alerts[key]; ok {
			a.Since = prev.Since
			active[key] = a
		} else {
			raised = append(raised, a)
		}
	}
	for key, a := range t.alerts {
		if _, ok := active[key]; !ok {
			resolved = append(resolved, a)
		}
	}
	t.alerts = active
	t.mu.Unlock()
	for _, a := range raised {
		reg.Counter("health_alerts_total", "type", a.Type).Inc()
		logger.Warn("health alert raised",
			"type", a.Type, "subject", a.Subject, "detail", a.Detail)
	}
	for _, a := range resolved {
		logger.Info("health alert resolved",
			"type", a.Type, "subject", a.Subject, "active_for", t.now().Sub(a.Since).Round(time.Millisecond).String())
	}
}

// ActiveAlerts returns the current alert set sorted by type then
// subject, without the rate-sampling side effect of a full Status.
func (t *Tracker) ActiveAlerts() []Alert {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	alerts := make([]Alert, 0, len(t.alerts))
	for _, a := range t.alerts {
		alerts = append(alerts, a)
	}
	t.mu.Unlock()
	sortAlerts(alerts)
	return alerts
}
