package health

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// TestHTTPEndpoints exercises the full surface over a real listener:
// /status JSON shape, /healthz readiness flip, and /metrics validated
// by the strict exposition parser.
func TestHTTPEndpoints(t *testing.T) {
	clk := newFakeClock()
	tr := trackerWithClock(clk)
	reg := telemetry.NewRegistry()
	reg.Counter("crawl_visits_total", "os", "Windows").Add(3)
	reg.Histogram("visit_ns", "os", "Windows").Observe(1000)

	p := tr.StartCrawl("top100", "Windows", 10, 2)
	for i := 0; i < 4; i++ {
		clk.advance(time.Second)
		p.VisitDone(i%2, time.Second, i != 3)
	}
	p.RetentionError()
	tr.mu.Lock()
	tr.alerts[alertKey(AlertTraceDrops, "trace-sink")] = Alert{
		Type: AlertTraceDrops, Subject: "trace-sink", Detail: "x", Since: clk.now(),
	}
	tr.mu.Unlock()

	srv := httptest.NewServer(Handler(tr, reg))
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/status content-type = %q", ct)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if len(st.Crawls) != 1 || st.Crawls[0].Visited != 4 || st.Crawls[0].Failed != 1 {
		t.Errorf("/status progress: %+v", st.Crawls)
	}
	if len(st.Alerts) != 1 || st.Alerts[0].Type != AlertTraceDrops {
		t.Errorf("/status alerts: %+v", st.Alerts)
	}
	if !st.Ready {
		t.Error("/status ready = false")
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz ready: %d %q", code, body)
	}
	tr.SetReady(false)
	if code, _, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz not-ready = %d, want 503", code)
	}
	tr.SetReady(true)

	code, body, hdr = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	doc, err := telemetry.ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not pass the strict parser: %v\n%s", err, body)
	}
	if s := doc.Series("crawl_visits_total", "os", "Windows"); s == nil || s.Raw != "3" {
		t.Errorf("counter missing from /metrics: %+v", s)
	}
	if s := doc.Series("visit_ns_count", "os", "Windows"); s == nil || s.Raw != "1" {
		t.Errorf("histogram missing from /metrics: %+v", s)
	}
}

// TestServeLifecycle binds an ephemeral status listener via the cmd
// helper, scrapes it, and shuts it down; the empty-addr path must be
// an inert no-op.
func TestServeLifecycle(t *testing.T) {
	tr := New(Options{})
	reg := telemetry.NewRegistry()
	reg.Counter("up_total").Inc()

	addr, stop, err := Serve("127.0.0.1:0", tr, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	doc, err := telemetry.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("live scrape does not parse: %v", err)
	}
	if s := doc.Series("up_total"); s == nil || s.Raw != strconv.Itoa(1) {
		t.Errorf("live scrape series: %+v", s)
	}
	stop()

	addr, stop, err = Serve("", tr, reg, nil)
	if err != nil || addr != "" {
		t.Fatalf("empty addr: %q %v", addr, err)
	}
	stop()
}
