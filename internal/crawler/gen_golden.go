//go:build ignore

// Generates testdata/golden-top2020-windows-s005.jsonl, the canonical
// Store.Save output for a small reference crawl. The golden file pins
// the store's serialization byte-for-byte: any change to record layout,
// canonical sort order, or crawl determinism shows up as a diff.
//
// Regenerate (only when an output change is intentional) with:
//
//	go run gen_golden.go
package main

import (
	"log/slog"
	"os"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func main() {
	dst := store.New()
	cfg := crawler.Config{
		Crawl: groundtruth.CrawlTop2020, OS: hostenv.Windows,
		Scale: 0.005, Seed: 0xBEEF, Workers: 4,
	}
	if _, err := crawler.Run(cfg, dst); err != nil {
		fatal("crawl failed", err)
	}
	f, err := os.Create("testdata/golden-top2020-windows-s005.jsonl")
	if err != nil {
		fatal("creating golden file", err)
	}
	defer f.Close()
	if err := dst.Save(f); err != nil {
		fatal("saving golden store", err)
	}
	slog.Info("golden store written", "pages", dst.NumPages(), "locals", dst.NumLocals())
}

func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}
