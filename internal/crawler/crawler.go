// Package crawler orchestrates the measurement of Figure 1: build the
// synthetic web for a campaign, start Chrome instances on the chosen
// OS's machine profile, visit every target once with a clean profile
// while checking connectivity, extract local-network findings from each
// visit's telemetry, and store the results.
package crawler

import (
	"fmt"
	"log/slog"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/browser"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// Config selects and sizes a crawl campaign.
type Config struct {
	Crawl groundtruth.CrawlID
	OS    hostenv.OS
	// Scale in (0, 1] shrinks the population; 1 is the full study.
	Scale float64
	// Seed drives every deterministic draw in the synthetic web.
	Seed uint64
	// Workers is the number of concurrent browser instances; 0 means
	// GOMAXPROCS.
	Workers int
	// Window is the per-page observation window; 0 means the study's
	// 20 seconds.
	Window time.Duration
	// PagePath selects which page of each site to visit. Empty means
	// the landing page ("/"), as the study crawled; websim.LoginPath
	// drives the internal-pages extension of §6.
	PagePath string
	// NetProfile names the network-condition profile the leg crawls
	// under (simnet.ProfileByName). Empty or "nominal" runs unimpaired
	// on the OS's own vantage — the byte-identical-to-golden path.
	NetProfile string
	// SkipConnectivityCheck disables the pre-visit ping to 8.8.8.8.
	SkipConnectivityCheck bool
	// RetainLogs keeps the raw NetLog capture for every visit that
	// produced local-network findings (the visits the paper's manual
	// investigation drilled into).
	RetainLogs bool
	// ParseHTML crawls through the browser's real HTML pipeline
	// (tokenize → extract → interpret) instead of the precompiled fast
	// path. Equivalent results, roughly 2× the per-page cost.
	ParseHTML bool
	// Resume skips targets already present in the destination store for
	// this (crawl, OS). The paper's campaigns ran for weeks (July 24 to
	// September 25, 2020); long crawls must survive interruption.
	Resume bool
	// Metrics, when non-nil, registers crawl counters and pipeline
	// stage metrics into the registry.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one per-visit trace (spans for
	// visit, detect, infer, netlog retention, and store commit) per
	// attempted target.
	Tracer *telemetry.Tracer
	// StageTimings collects per-stage busy time into Summary.StageBusy
	// even without a registry or tracer. Setting Metrics or Tracer
	// implies it.
	StageTimings bool
	// Health, when non-nil, registers this crawl as a live progress leg
	// on the operations plane: per-worker activity, throughput, ETA, and
	// retention-error rate become visible on the -status-addr listener.
	// Strictly observation-only — it never changes what gets stored.
	Health *health.Tracker
	// Checkpoint, when non-nil, is called every CheckpointEvery committed
	// visits (and once after the pool drains) to make the crawl durable
	// mid-leg — typically store.Log.Checkpoint on a WAL-backed store. It
	// replaces the old posture of durability only at end-of-leg Save:
	// a killed crawl resumes from the last checkpoint instead of zero.
	// Failures are counted in Summary.CheckpointErrors, never fatal.
	Checkpoint func() error
	// CheckpointEvery is the visit interval between Checkpoint calls;
	// 0 means every 256 visits (when Checkpoint is set).
	CheckpointEvery int
}

// instrumented reports whether the crawl measures per-stage time.
func (c *Config) instrumented() bool {
	return c.Metrics != nil || c.Tracer != nil || c.StageTimings
}

// Summary reports one campaign's crawl statistics — the raw material of
// Table 1.
type Summary struct {
	Crawl groundtruth.CrawlID
	OS    hostenv.OS
	// NetProfile is the network-condition profile the leg ran under;
	// empty for nominal crawls.
	NetProfile string
	Attempted  int
	Successful int
	Failed     int
	// Errors counts failed loads by Chrome net error string.
	Errors map[string]int
	// LocalRequests is the number of local-network requests extracted.
	LocalRequests int
	// Skipped counts targets abandoned because connectivity did not
	// return within the retry budget; they are not recorded as load
	// failures (§3.1: the check differentiates website failures from
	// network issues on the measurement side).
	Skipped int
	// AlreadyDone counts targets skipped by a resumed crawl because the
	// store already holds their page record.
	AlreadyDone int
	// RetentionErrors counts visits whose raw NetLog capture could not be
	// retained (RetainLogs). The page and local-request records for those
	// visits are stored regardless; the count surfaces the telemetry gap
	// instead of silently dropping it.
	RetentionErrors int
	// CheckpointErrors counts failed mid-leg durability checkpoints
	// (Config.Checkpoint). The records stay committed in memory and in
	// the WAL's buffer; the count surfaces the durability gap.
	CheckpointErrors int
	// StageBusy accumulates per-stage busy time across all workers
	// (visit, detect, infer, netlog, commit) when the crawl is
	// instrumented (Metrics, Tracer, or StageTimings set); nil
	// otherwise. Stage keys match the trace span names, and the values
	// are summed from the same measured durations the spans carry.
	StageBusy map[string]time.Duration
	// Elapsed is wall-clock crawl time.
	Elapsed time.Duration
}

// LogValue renders the summary as a structured log group, so the cmd
// binaries emit per-crawl completion events as one typed slog record
// ("crawl complete", summary=...) instead of hand-formatted lines.
func (s *Summary) LogValue() slog.Value {
	attrs := []slog.Attr{
		slog.String("crawl", string(s.Crawl)),
		slog.String("os", s.OS.String()),
		slog.Int("attempted", s.Attempted),
		slog.Int("successful", s.Successful),
		slog.Int("failed", s.Failed),
		slog.Int("local_requests", s.LocalRequests),
		slog.Duration("elapsed", s.Elapsed),
	}
	if s.NetProfile != "" {
		attrs = append(attrs, slog.String("net_profile", s.NetProfile))
	}
	if s.Skipped > 0 {
		attrs = append(attrs, slog.Int("skipped", s.Skipped))
	}
	if s.AlreadyDone > 0 {
		attrs = append(attrs, slog.Int("already_done", s.AlreadyDone))
	}
	if s.RetentionErrors > 0 {
		attrs = append(attrs, slog.Int("retention_errors", s.RetentionErrors))
	}
	if s.CheckpointErrors > 0 {
		attrs = append(attrs, slog.Int("checkpoint_errors", s.CheckpointErrors))
	}
	return slog.GroupValue(attrs...)
}

// ErrOffline is returned when the connectivity pre-check fails.
var ErrOffline = fmt.Errorf("crawler: no Internet connectivity (ping to 8.8.8.8 failed)")

var connectivityTarget = netip.MustParseAddr("8.8.8.8")

// Run executes one campaign: one OS, every target visited exactly once
// (the ethics posture of §3.1). Results are appended to dst.
func Run(cfg Config, dst *store.Store) (*Summary, error) {
	world, err := websim.Build(cfg.Crawl, cfg.OS, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return RunWorld(cfg, world, dst)
}

// RunWorld crawls a pre-built world. Useful when the same world is
// shared across repeated runs (benchmarks) or inspected afterwards.
func RunWorld(cfg Config, world *websim.World, dst *store.Store) (*Summary, error) {
	start := time.Now()
	if !cfg.SkipConnectivityCheck && !world.Net.Ping(connectivityTarget) {
		return nil, ErrOffline
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts := browser.DefaultOptions()
	if cfg.Window > 0 {
		opts.Window = cfg.Window
	}
	opts.ParseHTML = cfg.ParseHTML
	cond, err := simnet.ProfileByName(cfg.NetProfile)
	if err != nil {
		return nil, err
	}
	opts.Conditions = cond

	sum := &Summary{Crawl: cfg.Crawl, OS: cfg.OS, NetProfile: cfg.NetProfile, Errors: make(map[string]int)}
	done := map[string]bool{}
	if cfg.Resume {
		// Keyed on the visited URL, not the domain: a landing-page crawl
		// and a login-page crawl (PagePath) of the same domain are
		// distinct visits, and only the one actually stored may be
		// skipped on resume.
		for _, p := range dst.Pages(func(p *store.PageRecord) bool {
			return p.Crawl == string(cfg.Crawl) && p.OS == cfg.OS.String()
		}) {
			done[p.URL] = true
		}
	}
	dst.Reserve(len(world.Targets))
	instr := cfg.instrumented()
	var cm *crawlMeters
	if cfg.Metrics != nil {
		cm = newCrawlMeters(cfg.Metrics, string(cfg.Crawl), cfg.OS.String(), cfg.NetProfile, cond != nil && cond.Impaired())
	}
	// The health leg is nil-safe: every call below is a no-op when the
	// operations plane is off, so the visit path never branches on it.
	leg := cfg.Health.StartCrawl(string(cfg.Crawl), cfg.OS.String(), len(world.Targets), workers)
	// Mid-leg durability: every CheckpointEvery-th committed visit
	// (across all workers) flushes the WAL. The counter is shared; the
	// flush itself serializes inside the store's log.
	ckptEvery := int64(cfg.CheckpointEvery)
	if ckptEvery <= 0 {
		ckptEvery = defaultCheckpointEvery
	}
	var committed, ckptErrs atomic.Int64
	visitCommitted := func() {
		if cfg.Checkpoint != nil && committed.Add(1)%ckptEvery == 0 {
			if err := cfg.Checkpoint(); err != nil {
				ckptErrs.Add(1)
			}
		}
	}
	var wg sync.WaitGroup
	jobs := make(chan websim.Target, workers*4)
	tallies := make([]tally, workers)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, tl *tally) {
			defer wg.Done()
			tl.errors = make(map[string]int)
			tl.timed = instr
			// Each worker is its own Chrome instance on an identical
			// clean machine (a VM in the paper's setup).
			b := browser.New(hostenv.DefaultProfile(cfg.OS), world.Net, opts)
			var batch store.Batch
			// The pipeline reports each stage's single measured elapsed
			// time to the worker tally, the registry, and the visit
			// trace alike.
			popts := pipeline.Options{}
			if cfg.Metrics != nil {
				popts.Meters = pipeline.NewStageMeters(cfg.Metrics)
			}
			if instr {
				popts.Hooks.OnStage = func(s pipeline.Stage, _ int, elapsed time.Duration) {
					tl.stageNS[stDetect+int(s)] += int64(elapsed)
				}
			}
			for tgt := range jobs {
				leg.VisitStart(w)
				legStart := time.Now()
				// Per-page connectivity check: visit only when the
				// infrastructure can reach the Internet, retrying
				// briefly through an outage.
				if !cfg.SkipConnectivityCheck && !awaitConnectivity(world.Net) {
					tl.skipped++
					if cm != nil {
						cm.skipped.Inc()
					}
					leg.Skipped(w)
					continue
				}
				url := visitURL(tgt.URL, cfg.PagePath)
				vt := cfg.Tracer.StartVisit(string(cfg.Crawl), cfg.OS.String(), tgt.Domain, url, tgt.Rank)
				if vt != nil {
					// Trace identity is derived, not random: the same
					// (seed, crawl, OS, URL) always yields the same
					// trace ID, so identically-seeded runs (and fleet
					// reassignments of the same target) are
					// trace-identical.
					traceID := telemetry.DeriveTraceID(cfg.Seed, string(cfg.Crawl), cfg.OS.String(), url)
					vt.SetSpanContext(telemetry.SpanContext{
						TraceID: traceID,
						SpanID:  telemetry.DeriveSpanID(traceID, "visit"),
					}, telemetry.SpanID{})
				}
				var stepStart time.Time
				if instr {
					stepStart = time.Now()
				}
				res := b.Visit(url)
				if instr {
					d := time.Since(stepStart)
					tl.stageNS[stVisit] += int64(d)
					vt.Add("visit", stepStart, d, res.Log.Len())
					if cm != nil {
						cm.visits.Inc()
						cm.visitNS.ObserveDuration(d)
						if cm.impairedVisits != nil {
							cm.impairedVisits.Inc()
						}
					}
				}
				// The canonical visit pipeline: detection and record
				// construction. Classification stays off — the bulk
				// crawl classifies per site at analysis time.
				popts.Trace = vt
				out := pipeline.Process(res.Log, pipeline.Visit{
					Crawl:       string(cfg.Crawl),
					OS:          cfg.OS.String(),
					Domain:      tgt.Domain,
					Rank:        tgt.Rank,
					Category:    string(tgt.Category),
					URL:         url,
					FinalURL:    res.FinalURL,
					Err:         string(res.Err),
					CommittedAt: res.CommittedAt,
				}, popts)
				if cfg.RetainLogs && len(out.Findings) > 0 {
					if instr {
						stepStart = time.Now()
					}
					err := dst.AddNetLog(string(cfg.Crawl), cfg.OS.String(), tgt.Domain, res.Log)
					if instr {
						d := time.Since(stepStart)
						tl.stageNS[stNetlog] += int64(d)
						if err != nil {
							vt.AddErr("netlog", stepStart, d, 0, "retention failed")
						} else {
							vt.Add("netlog", stepStart, d, 1)
						}
					}
					if err != nil {
						// Retention is best-effort — the summary records
						// proceed regardless — but the gap is counted.
						tl.retentionErrors++
						if cm != nil {
							cm.retentionErrs.Inc()
						}
						leg.RetentionError()
					}
				}
				tl.attempted++
				if res.OK() {
					tl.successful++
				} else {
					tl.failed++
					tl.errors[string(res.Err)]++
					if cm != nil {
						cm.failures.Inc()
					}
				}
				tl.localRequests += len(out.Findings)
				if cm != nil {
					cm.findings.Add(uint64(len(out.Findings)))
				}

				// One visit = one domain = one store shard, so the whole
				// visit commits under a single shard lock.
				out.StageInto(&batch)
				if instr {
					stepStart = time.Now()
				}
				dst.AddBatch(&batch)
				if instr {
					d := time.Since(stepStart)
					tl.stageNS[stCommit] += int64(d)
					vt.Add("commit", stepStart, d, batch.Len())
				}
				batch.Reset()
				visitCommitted()
				outcome := "ok"
				if !res.OK() {
					outcome = string(res.Err)
				}
				vt.End(outcome, res.Log.Len())
				leg.VisitDone(w, time.Since(legStart), res.OK())
				// Extraction and retention are done with the capture;
				// recycle its event buffer for the worker's next visit.
				res.Log.Recycle()
			}
		}(w, &tallies[w])
	}
	for _, tgt := range world.Targets {
		if done[visitURL(tgt.URL, cfg.PagePath)] {
			sum.AlreadyDone++
			leg.ResumeSkip()
			continue
		}
		jobs <- tgt
	}
	close(jobs)
	wg.Wait()
	// End-of-leg checkpoint: whatever the interval left unflushed
	// becomes durable before the leg reports done.
	if cfg.Checkpoint != nil {
		if err := cfg.Checkpoint(); err != nil {
			ckptErrs.Add(1)
		}
	}
	for i := range tallies {
		tallies[i].mergeInto(sum)
	}
	sum.CheckpointErrors = int(ckptErrs.Load())
	sum.Elapsed = time.Since(start)
	leg.Finish()
	return sum, nil
}

// visitURL derives the URL a crawl visits for a target: the landing page,
// or the target's page at cfg.PagePath.
func visitURL(target, pagePath string) string {
	if pagePath == "" || pagePath == "/" {
		return target
	}
	return strings.TrimSuffix(target, "/") + pagePath
}

// tally is one worker's private counters; workers never share counter
// state mid-crawl and the per-worker tallies merge into the Summary once
// after the pool drains.
// Fixed tally slots for per-stage busy time, indexed so the visit hot
// path never touches a map. Pipeline stages map to slots by offset
// (stDetect + int(stage)); the names match the trace span names.
const (
	stVisit = iota
	stDetect
	stInfer
	stClassify
	stNetlog
	stCommit
	numStageTallies
)

var stageTallyName = [numStageTallies]string{"visit", "detect", "infer", "classify", "netlog", "commit"}

type tally struct {
	attempted, successful, failed int
	localRequests                 int
	skipped                       int
	retentionErrors               int
	errors                        map[string]int
	// timed marks an instrumented crawl; stageNS then accumulates
	// per-stage busy nanoseconds in the fixed slots above.
	timed   bool
	stageNS [numStageTallies]int64
}

func (t *tally) mergeInto(sum *Summary) {
	sum.Attempted += t.attempted
	sum.Successful += t.successful
	sum.Failed += t.failed
	sum.LocalRequests += t.localRequests
	sum.Skipped += t.skipped
	sum.RetentionErrors += t.retentionErrors
	for k, v := range t.errors {
		sum.Errors[k] += v
	}
	if t.timed {
		if sum.StageBusy == nil {
			sum.StageBusy = make(map[string]time.Duration, numStageTallies)
		}
		for i, ns := range t.stageNS {
			if ns != 0 {
				sum.StageBusy[stageTallyName[i]] += time.Duration(ns)
			}
		}
	}
}

// crawlMeters are the crawler's pre-resolved registry handles, labeled
// by campaign and OS — plus the network profile when the leg runs under
// a named one, so per-profile stage histograms separate cleanly. The
// impaired-visit counter exists only for legs whose condition chain
// actually impairs flows.
type crawlMeters struct {
	visits, failures, findings *telemetry.Counter
	skipped, retentionErrs     *telemetry.Counter
	impairedVisits             *telemetry.Counter
	visitNS                    *telemetry.Histogram
}

func newCrawlMeters(reg *telemetry.Registry, crawl, os, profile string, impaired bool) *crawlMeters {
	l := []string{"crawl", crawl, "os", os}
	if profile != "" {
		l = append(l, "netprofile", profile)
	}
	cm := &crawlMeters{
		visits:        reg.Counter("crawl_visits_total", l...),
		failures:      reg.Counter("crawl_visit_failures_total", l...),
		findings:      reg.Counter("crawl_findings_total", l...),
		skipped:       reg.Counter("crawl_skipped_total", l...),
		retentionErrs: reg.Counter("crawl_retention_errors_total", l...),
		visitNS:       reg.Histogram("crawl_visit_ns", l...),
	}
	if impaired {
		cm.impairedVisits = reg.Counter("crawl_impaired_visits_total", l...)
	}
	return cm
}

// RunAll executes a campaign on every OS the crawl covers (W/L/M for the
// 2020 and malicious crawls, W/L for 2021), returning per-OS summaries
// in table order.
func RunAll(cfg Config, dst *store.Store) ([]*Summary, error) {
	var out []*Summary
	osSet := groundtruth.OSesFor(cfg.Crawl)
	for _, os := range hostenv.AllOS {
		if !osSet.Has(osBit(os)) {
			continue
		}
		c := cfg
		c.OS = os
		s, err := Run(c, dst)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// connectivityRetries bounds how long a worker waits for an outage to
// clear before abandoning the current target.
const (
	connectivityRetries = 20
	connectivityBackoff = time.Millisecond
)

// defaultCheckpointEvery is the visit interval between durability
// checkpoints when Config.Checkpoint is set without an explicit
// interval: frequent enough that a killed crawl loses minutes, not
// weeks, and cheap next to a browser visit's cost.
const defaultCheckpointEvery = 256

func awaitConnectivity(net pinger) bool {
	for i := 0; i < connectivityRetries; i++ {
		if net.Ping(connectivityTarget) {
			return true
		}
		time.Sleep(connectivityBackoff)
	}
	return false
}

// pinger is the connectivity-probe surface of the network.
type pinger interface {
	Ping(addr netip.Addr) bool
}

func osBit(os hostenv.OS) groundtruth.OSSet {
	switch os {
	case hostenv.Windows:
		return groundtruth.OSWindows
	case hostenv.Linux:
		return groundtruth.OSLinux
	default:
		return groundtruth.OSMac
	}
}
