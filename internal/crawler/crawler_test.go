package crawler

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

const testSeed = 0xBEEF

func smallCfg(crawl groundtruth.CrawlID, os hostenv.OS, scale float64) Config {
	return Config{Crawl: crawl, OS: os, Scale: scale, Seed: testSeed, Workers: 4}
}

func TestCrawlSmallTop2020Windows(t *testing.T) {
	dst := store.New()
	sum, err := Run(smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.01), dst)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Attempted != 1000 {
		t.Fatalf("attempted = %d, want 1000", sum.Attempted)
	}
	rate := float64(sum.Successful) / float64(sum.Attempted)
	if rate < 0.85 || rate > 0.95 {
		t.Errorf("success rate = %.3f, want ~0.90 (Table 1)", rate)
	}
	// DNS failures dominate errors.
	if nx := sum.Errors["ERR_NAME_NOT_RESOLVED"]; nx == 0 || float64(nx)/float64(sum.Failed) < 0.75 {
		t.Errorf("NXDOMAIN errors = %d of %d failures, want ~90%%", nx, sum.Failed)
	}
	if dst.NumPages() != 1000 {
		t.Errorf("stored pages = %d", dst.NumPages())
	}
	// ebay.com (rank 104) is in scope and scans localhost on Windows:
	// 14 WSS probes must be extracted.
	tm := dst.Locals(func(l *store.LocalRequest) bool {
		return l.Domain == "ebay.com" && l.Dest == "localhost"
	})
	if len(tm) != 14 {
		t.Fatalf("ebay.com localhost requests = %d, want 14", len(tm))
	}
	for _, l := range tm {
		if l.Scheme != "wss" || !l.SOPExempt {
			t.Errorf("TM probe not WSS/SOP-exempt: %+v", l)
		}
		if l.Delay < 9*time.Second || l.Delay > 17*time.Second {
			t.Errorf("TM probe delay %v outside the Figure 5 envelope", l.Delay)
		}
		if l.NetError == "" && l.Port != 3389 {
			t.Errorf("probe to closed port %d did not fail", l.Port)
		}
	}
}

func TestCrawlLinuxSeesNoThreatMetrix(t *testing.T) {
	dst := store.New()
	if _, err := Run(smallCfg(groundtruth.CrawlTop2020, hostenv.Linux, 0.01), dst); err != nil {
		t.Fatal(err)
	}
	tm := dst.Locals(func(l *store.LocalRequest) bool { return l.Domain == "ebay.com" })
	if len(tm) != 0 {
		t.Errorf("ebay.com generated %d local requests on Linux, want 0", len(tm))
	}
	// hola.org (rank 244) probes localhost on all OSes.
	hola := dst.Locals(func(l *store.LocalRequest) bool { return l.Domain == "hola.org" })
	if len(hola) != 10 {
		t.Errorf("hola.org localhost requests = %d, want 10 (ports 6880-9)", len(hola))
	}
}

func TestCrawlOfflineFails(t *testing.T) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Linux, 0.001, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	world.Net.SetOnline(false)
	_, err = RunWorld(smallCfg(groundtruth.CrawlTop2020, hostenv.Linux, 0.001), world, store.New())
	if err != ErrOffline {
		t.Fatalf("err = %v, want ErrOffline", err)
	}
	// The check can be disabled.
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Linux, 0.001)
	cfg.SkipConnectivityCheck = true
	if _, err := RunWorld(cfg, world, store.New()); err != nil {
		t.Fatalf("with check skipped: %v", err)
	}
}

func TestCrawlDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Summary {
		cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.005)
		cfg.Workers = workers
		sum, err := Run(cfg, store.New())
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(1), run(8)
	if a.Successful != b.Successful || a.Failed != b.Failed || a.LocalRequests != b.LocalRequests {
		t.Errorf("crawl results depend on worker count: %+v vs %+v", a, b)
	}
}

func TestRunAllCoversCrawlOSes(t *testing.T) {
	sums, err := RunAll(Config{Crawl: groundtruth.CrawlTop2021, Scale: 0.002, Seed: testSeed, Workers: 2}, store.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("2021 crawl covers W and L, got %d summaries", len(sums))
	}
	if sums[0].OS != hostenv.Windows || sums[1].OS != hostenv.Linux {
		t.Errorf("OS order wrong: %v, %v", sums[0].OS, sums[1].OS)
	}
}

func TestMaliciousCrawlDetectsCloners(t *testing.T) {
	dst := store.New()
	sum, err := Run(smallCfg(groundtruth.CrawlMalicious, hostenv.Windows, 0.002), dst)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Attempted < 250 {
		t.Fatalf("attempted = %d", sum.Attempted)
	}
	// The phishing clone of ebay.com carries ThreatMetrix probes.
	clone := dst.Locals(func(l *store.LocalRequest) bool { return l.Domain == "customer-ebay.com" })
	if len(clone) != 14 {
		t.Errorf("customer-ebay.com localhost requests = %d, want 14", len(clone))
	}
	for _, l := range clone {
		if l.Category != "phishing" {
			t.Errorf("clone finding category = %q", l.Category)
		}
	}
}

func TestLANFindingsViaMalware(t *testing.T) {
	dst := store.New()
	if _, err := Run(smallCfg(groundtruth.CrawlMalicious, hostenv.Windows, 0.002), dst); err != nil {
		t.Fatal(err)
	}
	lan := dst.Locals(func(l *store.LocalRequest) bool { return l.Dest == "lan" && l.Domain == "test.laitspa.it" })
	if len(lan) != 1 {
		t.Fatalf("test.laitspa.it LAN findings = %d, want 1", len(lan))
	}
	if lan[0].Host != "10.2.70.15" || lan[0].Port != 80 {
		t.Errorf("LAN finding wrong: %+v", lan[0])
	}
}

func TestOutageMidCrawlSkipsWithoutFalseFailures(t *testing.T) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Linux, 0.002, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Take the network down after the crawl starts; bring it back up
	// shortly afterwards. Targets visited during the outage are skipped
	// but never recorded as website failures.
	go func() {
		time.Sleep(2 * time.Millisecond)
		world.Net.SetOnline(false)
		time.Sleep(5 * time.Millisecond)
		world.Net.SetOnline(true)
	}()
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Linux, 0.002)
	cfg.Workers = 2
	dst := store.New()
	sum, err := RunWorld(cfg, world, dst)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Attempted+sum.Skipped != len(world.Targets) {
		t.Errorf("attempted %d + skipped %d != targets %d", sum.Attempted, sum.Skipped, len(world.Targets))
	}
	if dst.NumPages() != sum.Attempted {
		t.Errorf("pages stored %d != attempted %d (skips must not be recorded)", dst.NumPages(), sum.Attempted)
	}
}

func TestRestrictedPortBlockedButLogged(t *testing.T) {
	// A page step to a Chrome-restricted port (6000, X11) is refused by
	// the browser before any socket opens — but the attempt is logged
	// and thus detectable.
	dst := store.New()
	if _, err := Run(smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.01), dst); err != nil {
		t.Fatal(err)
	}
	// No ground-truth probe uses a restricted port, so nothing in the
	// store should carry ERR_UNSAFE_PORT.
	bad := dst.Locals(func(l *store.LocalRequest) bool { return l.NetError == "ERR_UNSAFE_PORT" })
	if len(bad) != 0 {
		t.Errorf("unexpected unsafe-port blocks: %+v", bad)
	}
}

func TestLoginPageExtension(t *testing.T) {
	// Landing-page crawl of the top 5K on Windows: walmart.com (rank
	// 131) is quiet. Login-page crawl: it scans localhost — the §6
	// lower-bound demonstration.
	landing := store.New()
	if _, err := Run(smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.05), landing); err != nil {
		t.Fatal(err)
	}
	if n := len(landing.Locals(func(l *store.LocalRequest) bool { return l.Domain == "walmart.com" })); n != 0 {
		t.Fatalf("walmart.com landing page generated %d local requests, want 0", n)
	}

	login := store.New()
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.05)
	cfg.PagePath = websim.LoginPath
	if _, err := Run(cfg, login); err != nil {
		t.Fatal(err)
	}
	if n := len(login.Locals(func(l *store.LocalRequest) bool { return l.Domain == "walmart.com" })); n != 14 {
		t.Fatalf("walmart.com login page generated %d local requests, want 14 (ThreatMetrix)", n)
	}
	// Landing-page scanners keep scanning on their login pages too.
	if n := len(login.Locals(func(l *store.LocalRequest) bool { return l.Domain == "ebay.com" })); n != 14 {
		t.Fatalf("ebay.com login page generated %d local requests, want 14", n)
	}
	// And the overall site count strictly grows: landing is a lower bound.
	landSites := map[string]bool{}
	for _, l := range landing.Locals(nil) {
		landSites[l.Domain] = true
	}
	loginSites := map[string]bool{}
	for _, l := range login.Locals(nil) {
		loginSites[l.Domain] = true
	}
	if len(loginSites) <= len(landSites) {
		t.Errorf("login crawl found %d sites, landing %d; expected strictly more", len(loginSites), len(landSites))
	}
}

func TestRetainLogsKeepsCapturesForActiveSites(t *testing.T) {
	dst := store.New()
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.01)
	cfg.RetainLogs = true
	if _, err := Run(cfg, dst); err != nil {
		t.Fatal(err)
	}
	// 5 localhost-active sites in the top 1000 → 5 retained captures.
	if got := dst.NumNetLogs(); got != 5 {
		t.Fatalf("retained captures = %d, want 5", got)
	}
	log, ok, err := dst.NetLog(string(groundtruth.CrawlTop2020), "Windows", "ebay.com")
	if err != nil || !ok {
		t.Fatalf("NetLog(ebay.com) = ok=%v err=%v", ok, err)
	}
	if log.Len() == 0 {
		t.Fatal("retained capture empty")
	}
	// The capture round-trips through the detector identically.
	findings := localnet.FromLog(log)
	if len(findings) != 14 {
		t.Errorf("findings from retained capture = %d, want 14", len(findings))
	}
	if _, ok, _ := dst.NetLog(string(groundtruth.CrawlTop2020), "Windows", "site00000.example"); ok {
		t.Error("quiet site should have no retained capture")
	}
}

func TestRetainedLogsSurviveSaveLoad(t *testing.T) {
	dst := store.New()
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.01)
	cfg.RetainLogs = true
	if _, err := Run(cfg, dst); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dst.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back := store.New()
	if err := back.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if back.NumNetLogs() != dst.NumNetLogs() {
		t.Fatalf("captures lost in round trip: %d vs %d", back.NumNetLogs(), dst.NumNetLogs())
	}
	log, ok, err := back.NetLog(string(groundtruth.CrawlTop2020), "Windows", "hola.org")
	if err != nil || !ok || log.Len() == 0 {
		t.Fatalf("reloaded capture broken: ok=%v err=%v", ok, err)
	}
}

func TestResumeSkipsCompletedTargets(t *testing.T) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.005, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	dst := store.New()
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.005)

	// First pass: crawl only the first 200 targets (simulate an
	// interruption by crawling a truncated world).
	full := world.Targets
	world.Targets = full[:200]
	if _, err := RunWorld(cfg, world, dst); err != nil {
		t.Fatal(err)
	}
	world.Targets = full
	if dst.NumPages() != 200 {
		t.Fatalf("partial crawl stored %d pages", dst.NumPages())
	}

	// Resume over the full world: the 200 finished targets are skipped,
	// the rest crawled, with no duplicate page records.
	cfg.Resume = true
	sum, err := RunWorld(cfg, world, dst)
	if err != nil {
		t.Fatal(err)
	}
	if sum.AlreadyDone != 200 {
		t.Errorf("AlreadyDone = %d, want 200", sum.AlreadyDone)
	}
	if sum.Attempted != len(world.Targets)-200 {
		t.Errorf("resumed attempts = %d, want %d", sum.Attempted, len(world.Targets)-200)
	}
	if dst.NumPages() != len(world.Targets) {
		t.Errorf("total pages = %d, want %d", dst.NumPages(), len(world.Targets))
	}
	seen := map[string]int{}
	for _, p := range dst.Pages(nil) {
		seen[p.Domain]++
		if seen[p.Domain] > 1 {
			t.Fatalf("duplicate page record for %s", p.Domain)
		}
	}
}

func TestParseHTMLCrawlEquivalence(t *testing.T) {
	// The full-HTML pipeline (tokenize → extract → interpret) must find
	// exactly the same local-network activity as the precompiled fast
	// path, across a whole crawl slice.
	run := func(parse bool) *store.Store {
		dst := store.New()
		cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.01)
		cfg.ParseHTML = parse
		if _, err := Run(cfg, dst); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	fast, parsed := run(false), run(true)
	key := func(l *store.LocalRequest) string {
		return l.Domain + "|" + l.URL + "|" + l.Initiator + "|" + l.NetError
	}
	fastSet := map[string]bool{}
	for _, l := range fast.Locals(nil) {
		fastSet[key(&l)] = true
	}
	parsedSet := map[string]bool{}
	for _, l := range parsed.Locals(nil) {
		parsedSet[key(&l)] = true
	}
	if len(fastSet) != len(parsedSet) {
		t.Fatalf("local request sets differ in size: fast %d, parsed %d", len(fastSet), len(parsedSet))
	}
	for k := range fastSet {
		if !parsedSet[k] {
			t.Errorf("fast-path finding missing from HTML path: %s", k)
		}
	}
	// Page-level outcomes agree too.
	if fast.NumPages() != parsed.NumPages() {
		t.Errorf("page counts differ: %d vs %d", fast.NumPages(), parsed.NumPages())
	}
}

func TestSaveBytesMatchGolden(t *testing.T) {
	// The golden file was produced by gen_golden.go against the
	// pre-sharding store: the sharded store and the batched crawl path
	// must reproduce its Save output byte for byte.
	want, err := os.ReadFile("testdata/golden-top2020-windows-s005.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	dst := store.New()
	if _, err := Run(smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.005), dst); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dst.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got := buf.Bytes()
		line := 1
		for i := 0; i < len(got) && i < len(want); i++ {
			if got[i] != want[i] {
				lo := i - 60
				if lo < 0 {
					lo = 0
				}
				hi := i + 60
				if hi > len(got) {
					hi = len(got)
				}
				t.Fatalf("Save output diverges from golden at byte %d (line %d):\n got …%s…\nwant …%s…",
					i, line, got[lo:hi], want[lo:min(hi, len(want))])
			}
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("Save output length %d, golden %d (common prefix identical)", len(got), len(want))
	}
}

func TestResumeRespectsPagePath(t *testing.T) {
	// Regression: the resume done-set used to key on domain alone, so a
	// completed landing-page crawl made a login-page crawl (PagePath) of
	// the same store skip every site as already done.
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.002, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	dst := store.New()
	landing := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.002)
	if _, err := RunWorld(landing, world, dst); err != nil {
		t.Fatal(err)
	}

	login := landing
	login.PagePath = websim.LoginPath
	login.Resume = true
	sum, err := RunWorld(login, world, dst)
	if err != nil {
		t.Fatal(err)
	}
	if sum.AlreadyDone != 0 {
		t.Errorf("login crawl skipped %d targets on landing-page records", sum.AlreadyDone)
	}
	if sum.Attempted != len(world.Targets) {
		t.Errorf("login crawl attempted %d of %d targets", sum.Attempted, len(world.Targets))
	}

	// A second resumed login crawl finds its own records and skips all.
	sum2, err := RunWorld(login, world, dst)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.AlreadyDone != len(world.Targets) || sum2.Attempted != 0 {
		t.Errorf("resumed login crawl: AlreadyDone=%d Attempted=%d, want %d/0",
			sum2.AlreadyDone, sum2.Attempted, len(world.Targets))
	}
}

func TestCrawlManyWorkersSharedStore(t *testing.T) {
	// Exercises the sharded store and per-worker tallies under heavy
	// worker concurrency; run with -race in CI.
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.005, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.005)
	cfg.Workers = 8
	cfg.RetainLogs = true
	dst := store.New()
	sum, err := RunWorld(cfg, world, dst)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Attempted != len(world.Targets) {
		t.Errorf("attempted %d of %d", sum.Attempted, len(world.Targets))
	}
	if dst.NumPages() != sum.Attempted {
		t.Errorf("pages stored %d != attempted %d", dst.NumPages(), sum.Attempted)
	}
}

// TestTracedCrawlMatchesUntracedGolden verifies that full
// instrumentation is observation only: a crawl with the registry,
// tracer, stage timings, AND the live health plane (tracker plus a
// sweeping watchdog) all enabled must produce a byte-identical store,
// and the per-stage busy time must agree between the Summary tally,
// the metrics registry, and the trace file — all three see the same
// single measurement per stage.
func TestTracedCrawlMatchesUntracedGolden(t *testing.T) {
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.01)

	plain := store.New()
	if _, err := Run(cfg, plain); err != nil {
		t.Fatal(err)
	}

	var traceBuf bytes.Buffer
	traced := cfg
	traced.Metrics = telemetry.NewRegistry()
	traced.Tracer = telemetry.NewTracer(&traceBuf, telemetry.TracerOptions{Buffer: 1 << 14})
	traced.Health = health.New(health.Options{})
	wd := health.NewWatchdog(traced.Health, health.WatchdogOptions{
		Interval:   time.Millisecond, // sweep aggressively mid-crawl
		Registry:   traced.Metrics,
		TraceDrops: traced.Tracer.Dropped,
	})
	wd.Start()
	tracedStore := store.New()
	sum, err := Run(traced, tracedStore)
	if err != nil {
		t.Fatal(err)
	}
	wd.Stop()
	if err := traced.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if n := traced.Tracer.Dropped(); n > 0 {
		t.Fatalf("%d trace records dropped; raise the buffer", n)
	}
	// The health plane observed the whole crawl...
	hs := traced.Health.Status()
	if len(hs.Crawls) != 1 || hs.Crawls[0].Visited != uint64(sum.Attempted) || !hs.Crawls[0].Done {
		t.Fatalf("health leg disagrees with summary: %+v vs attempted %d", hs.Crawls, sum.Attempted)
	}

	var want, got bytes.Buffer
	if err := plain.Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := tracedStore.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("instrumented crawl changed the store: %d vs %d bytes", want.Len(), got.Len())
	}

	recs, err := telemetry.ReadTraces(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != sum.Attempted {
		t.Fatalf("trace has %d records, crawl attempted %d", len(recs), sum.Attempted)
	}
	ts := telemetry.Summarize(recs)
	busy := ts.BusySeconds()
	for _, stage := range []string{"visit", "detect", "commit"} {
		fromTrace := fmt.Sprintf("%.9f", busy[stage])
		fromTally := fmt.Sprintf("%.9f", sum.StageBusy[stage].Seconds())
		if fromTrace != fromTally {
			t.Errorf("%s busy: trace %s, tally %s", stage, fromTrace, fromTally)
		}
	}
	// The registry sees the same detect measurement the trace carries.
	regBusy := traced.Metrics.CounterValue("pipeline_stage_busy_ns", "stage", "detect")
	if fmt.Sprintf("%.9f", time.Duration(regBusy).Seconds()) != fmt.Sprintf("%.9f", busy["detect"]) {
		t.Errorf("detect busy: registry %d ns, trace %.9f s", regBusy, busy["detect"])
	}
}

// TestStatusEndpointAgreesWithSummary crawls with the health plane on
// and a live status listener up, then scrapes /status over HTTP: the
// reported progress must match the final crawler.Summary exactly on
// counts, and the throughput must agree with the Summary-derived rate
// within tolerance (the leg's clock starts inside RunWorld, a hair
// after Summary's). /metrics from the same listener must pass the
// strict exposition parser.
func TestStatusEndpointAgreesWithSummary(t *testing.T) {
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.01)
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Health = health.New(health.Options{})
	srv := httptest.NewServer(health.Handler(cfg.Health, cfg.Metrics))
	defer srv.Close()

	dst := store.New()
	sum, err := Run(cfg, dst)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st health.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Crawls) != 1 {
		t.Fatalf("status legs = %d, want 1", len(st.Crawls))
	}
	cs := st.Crawls[0]
	if cs.Crawl != string(sum.Crawl) || cs.OS != sum.OS.String() {
		t.Errorf("leg identity %s/%s, summary %s/%s", cs.Crawl, cs.OS, sum.Crawl, sum.OS)
	}
	if cs.Visited != uint64(sum.Attempted) || cs.Failed != uint64(sum.Failed) ||
		cs.Skipped != uint64(sum.Skipped) || cs.ResumeSkipped != uint64(sum.AlreadyDone) ||
		cs.RetentionErrors != uint64(sum.RetentionErrors) {
		t.Errorf("status counts %+v disagree with summary %+v", cs, sum)
	}
	if !cs.Done || cs.ETASeconds != 0 {
		t.Errorf("finished leg: done=%v eta=%v", cs.Done, cs.ETASeconds)
	}
	wantRate := float64(sum.Attempted+sum.Skipped+sum.AlreadyDone) / sum.Elapsed.Seconds()
	if cs.PagesPerSec <= 0 || math.Abs(cs.PagesPerSec-wantRate)/wantRate > 0.25 {
		t.Errorf("status rate %.2f/s, summary rate %.2f/s (beyond 25%% tolerance)",
			cs.PagesPerSec, wantRate)
	}

	// The same listener's /metrics passes the strict parser and carries
	// the crawl counters the registry recorded.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := telemetry.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics failed strict parse: %v", err)
	}
	s := doc.Series("crawl_visits_total", "crawl", string(sum.Crawl), "os", sum.OS.String())
	if s == nil || s.Raw != fmt.Sprint(sum.Attempted) {
		t.Errorf("crawl_visits_total = %+v, want %d", s, sum.Attempted)
	}
}

// TestCheckpointCadence pins the mid-leg durability contract: a
// WAL-backed crawl checkpoints every CheckpointEvery visits plus once
// at end of leg, and the WAL directory alone reproduces the crawl.
func TestCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	dst, lg, _, err := store.Open(dir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	cfg := smallCfg(groundtruth.CrawlTop2020, hostenv.Windows, 0.001)
	cfg.CheckpointEvery = 10
	cfg.Checkpoint = func() error {
		calls++
		return lg.Checkpoint()
	}
	sum, err := Run(cfg, dst)
	if err != nil {
		t.Fatal(err)
	}
	// attempted/10 interval checkpoints plus the end-of-leg one. The
	// counter increments once per committed visit with no concurrent
	// writers beyond the pool, so the count is exact.
	if want := sum.Attempted/10 + 1; calls != want {
		t.Errorf("checkpoint calls = %d, want %d (%d visits / 10 + final)", calls, want, sum.Attempted)
	}
	if sum.CheckpointErrors != 0 {
		t.Errorf("checkpoint errors = %d", sum.CheckpointErrors)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	back, lg2, rec, err := store.Open(dir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rec.SegmentRecords+rec.WALRecords == 0 || back.NumPages() != dst.NumPages() || back.NumLocals() != dst.NumLocals() {
		t.Errorf("recovery (%d pages / %d locals) != crawl (%d / %d)",
			back.NumPages(), back.NumLocals(), dst.NumPages(), dst.NumLocals())
	}

	// A failing checkpoint is counted, never fatal.
	cfg2 := smallCfg(groundtruth.CrawlTop2020, hostenv.Linux, 0.001)
	cfg2.CheckpointEvery = 25
	cfg2.Checkpoint = func() error { return fmt.Errorf("disk full") }
	sum2, err := Run(cfg2, store.New())
	if err != nil {
		t.Fatal(err)
	}
	if want := sum2.Attempted/25 + 1; sum2.CheckpointErrors != want {
		t.Errorf("checkpoint errors = %d, want %d", sum2.CheckpointErrors, want)
	}
}
