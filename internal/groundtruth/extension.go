package groundtruth

// Extension data — NOT from the paper's tables.
//
// LoginOnlyThreatMetrix parameterizes the §6 future-work experiment on
// internal pages: sites known to deploy ThreatMetrix on their login
// flows (drawn from the BleepingComputer investigation the paper cites
// as [5]) but whose landing pages stay quiet, with plausible 2020
// ranks. A landing-page crawl cannot see them; the login-page crawl
// mode (crawler.Config.PagePath) can, demonstrating that the paper's
// counts are a lower bound.
var LoginOnlyThreatMetrix = map[string]int{
	"walmart.com":     131,
	"sky.com":         1405,
	"gumtree.com":     2353,
	"kijiji.ca":       2519,
	"tdbank.com":      2906,
	"equifax.com":     9462,
	"chick-fil-a.com": 24120,
	"netteller.com":   31200,
}
