package groundtruth

// Tables 5, 11 (localhost) and 6 (LAN) — the 2020 top-100K crawl.
//
// Ranks come from Tables 5/11 directly where printed as single values;
// for grouped rows with rank ranges (e.g. the 18 eBay country domains,
// printed as 105–45156), individual ranks use Table 3 where available and
// deterministic in-range values otherwise.
//
// Per-OS flags reproduce the tables where the column position is
// unambiguous; single-check rows whose column cannot be recovered from
// the text are assigned so that the Figure 2a overlap counts hold
// exactly (W-only 48, L-only 2, M-only 5, WL 3, WM 0, LM 8, WLM 41;
// totals W 92, L 54, M 54). Every such assignment is a plain data edit
// below, greppable by the "assigned" comments.

// threatMetrixPorts are the 14 localhost ports the ThreatMetrix script
// probes over WSS (§4.3.1, Table 5).
var threatMetrixPorts = []uint16{3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040, 7070, 63333}

// bigIPPorts are the 7 localhost ports BIG-IP ASM Bot Defense probes over
// HTTP (§4.3.2, Table 5).
var bigIPPorts = []uint16{4444, 4653, 5555, 7054, 7055, 9515, 17556}

func fraudRow(rank int, domain string, gone bool) LocalhostRow {
	return LocalhostRow{
		Rank: rank, Domain: domain, Class: ClassFraudDetection,
		Probes:   []Probe{{Scheme: "wss", Ports: threatMetrixPorts, Path: "/"}},
		OS:       OSWindows,
		Gone2021: gone,
	}
}

func botRow(rank int, domain string) LocalhostRow {
	return LocalhostRow{
		Rank: rank, Domain: domain, Class: ClassBotDetection,
		Probes:   []Probe{{Scheme: "http", Ports: bigIPPorts, Path: "/"}},
		OS:       OSWindows,
		Gone2021: true, // every bot-detection site stopped by 2021 (§4.3.2)
	}
}

// Top2020Localhost returns the 107 landing pages observed making
// localhost requests in the 2020 top-100K crawl (Tables 5 and 11).
func Top2020Localhost() []LocalhostRow {
	rows := []LocalhostRow{
		// --- Fraud Detection (Table 5): ThreatMetrix, WSS, Windows only ---
		fraudRow(104, "ebay.com", false), // rank from Table 3
		fraudRow(429, "ebay.de", false),
		fraudRow(536, "ebay.co.uk", false),
		fraudRow(932, "ebay.com.au", false),
		fraudRow(1843, "ebay.it", false),
		fraudRow(2200, "ebay.fr", false),
		fraudRow(2394, "ebay.ca", false),
		fraudRow(3100, "ebay.es", false),      // assigned within 105–45156
		fraudRow(3900, "ebay.nl", false),      // assigned
		fraudRow(4200, "ebay.in", false),      // assigned
		fraudRow(5120, "ebay.at", false),      // assigned
		fraudRow(5870, "ebay.ch", false),      // assigned
		fraudRow(6100, "ebay.pl", false),      // assigned
		fraudRow(9800, "ebay.ie", false),      // assigned
		fraudRow(18500, "ebay.com.sg", false), // assigned
		fraudRow(22000, "ebay.com.my", false), // assigned
		fraudRow(28000, "ebay.us", false),     // assigned
		fraudRow(45156, "ebay.ph", false),     // range upper bound
		fraudRow(1251, "fidelity.com", false),
		fraudRow(1289, "citi.com", true),
		fraudRow(2650, "citibank.com", true),       // assigned within 1289–7907
		fraudRow(7907, "citibankonline.com", true), // range upper bound
		fraudRow(5680, "marktplaats.nl", true),
		fraudRow(7441, "betfair.com", false),
		fraudRow(13119, "tiaa.org", true),
		fraudRow(57251, "tiaa-cref.org", true),
		fraudRow(13901, "2dehands.be", true),
		fraudRow(25990, "santanderbank.com", false),
		fraudRow(29104, "ameriprise.com", false),
		fraudRow(34251, "commoncause.org", true),
		fraudRow(45228, "ctfs.com", true),
		fraudRow(50853, "2ememain.be", true),
		fraudRow(90641, "highlow.net", false),
		fraudRow(97182, "metagenics.com", false),

		// --- Bot Detection (Table 5): BIG-IP ASM, HTTP, Windows only ---
		botRow(8608, "sbi.co.in"),
		botRow(25881, "cnes.fr"),
		botRow(27491, "din.de"),
		botRow(32114, "csob.cz"),
		botRow(48803, "anaf.ro"),
		botRow(55267, "data.gov.in"),
		botRow(55852, "allegiantair.com"),
		botRow(58948, "tmdn.org"),
		botRow(65955, "beuth.de"),
		botRow(99638, "bank.sbi"),

		// --- Native Applications (Table 5, Appendix A) ---
		{Rank: 5370, Domain: "faceit.com", Class: ClassNativeApp, OS: OSAll,
			Probes: []Probe{{Scheme: "ws", Ports: []uint16{28337}, Path: "/"}}},
		{Rank: 23219, Domain: "cponline.pw", Class: ClassNativeApp, OS: OSAll, NotInList2021: true,
			Probes: []Probe{{Scheme: "ws", Ports: PortRange(6463, 6472), Path: "/?v=1"}}},
		{Rank: 29301, Domain: "samsungcard.com", Class: ClassNativeApp, OS: OSAll,
			Probes: []Probe{
				{Scheme: "wss", Ports: []uint16{10531, 31027, 31029}, Path: "/"},
				{Scheme: "https", Ports: PortRange(14440, 14449), Path: "/?code=*&dummy=*"},
			}},
		{Rank: 77550, Domain: "samsungcard.co.kr", Class: ClassNativeApp, OS: OSAll,
			Probes: []Probe{
				{Scheme: "wss", Ports: []uint16{10531, 31027, 31029}, Path: "/"},
				{Scheme: "https", Ports: PortRange(14440, 14449), Path: "/?code=*&dummy=*"},
			}},
		{Rank: 36141, Domain: "gamehouse.com", Class: ClassNativeApp, OS: OSAll, Gone2021: true,
			Probes: []Probe{{Scheme: "http", Ports: []uint16{12071, 12072, 17021, 27021}, Path: "/v1/init.json?api_port=*&query_id=*"}}},
		{Rank: 47690, Domain: "games.lol", Class: ClassNativeApp, OS: OSAll,
			Probes: []Probe{{Scheme: "ws", Ports: []uint16{60202}, Path: "/check"}}},
		{Rank: 57008, Domain: "zylom.com", Class: ClassNativeApp, OS: OSAll,
			Probes: []Probe{{Scheme: "http", Ports: []uint16{12071, 17021}, Path: "/v1/init.json?api_port=*&query_id=*"}}},
		// iwin.com is the one native-app site that did not behave
		// uniformly across OSes (§4.3.3).
		{Rank: 74089, Domain: "iwin.com", Class: ClassNativeApp, OS: OSWL,
			Probes: []Probe{{Scheme: "http", Ports: PortRange(2080, 2082), Path: "/version?_=*"}}},
		{Rank: 77134, Domain: "screenleap.com", Class: ClassNativeApp, OS: OSAll, NotInList2021: true,
			Probes: []Probe{{Scheme: "http", Ports: []uint16{5320}, Path: "/status"}}},
		{Rank: 88902, Domain: "acestream.me", Class: ClassNativeApp, OS: OSAll, NotInList2021: true,
			Probes: []Probe{{Scheme: "http", Ports: []uint16{6878}, Path: "/webui/api/service"}}},
		{Rank: 91904, Domain: "trustdice.win", Class: ClassNativeApp, OS: OSAll,
			Probes: []Probe{{Scheme: "http", Ports: []uint16{50005, 51505, 53005, 54505, 56005}, Path: "/socket.io"}}},
		{Rank: 98789, Domain: "runeline.com", Class: ClassNativeApp, OS: OSAll, NotInList2021: true,
			Probes: []Probe{{Scheme: "ws", Ports: PortRange(6463, 6472), Path: "/?v=1"}}},
		// Reconstructed row: the paper's headline (107 sites) and the
		// Figure 2a overlap regions (which sum to 107) require one more
		// all-OS site than the printed tables contain (106 rows). The
		// text of §4.3 and the tables also disagree on class counts, so
		// one row was evidently lost in publication. It is reconstructed
		// here as a third Discord-invite page (the same ws 6463-72
		// signature as cponline.pw and runeline.com), ranked so that it
		// does not perturb the Table 3 top-10 lists. See EXPERIMENTS.md.
		{Rank: 31007, Domain: "weplay.tv", Class: ClassNativeApp, OS: OSAll, Gone2021: true,
			Probes: []Probe{{Scheme: "ws", Ports: PortRange(6463, 6472), Path: "/?v=1"}}},

		// --- Unknown (Table 5, Appendix C) ---
		{Rank: 244, Domain: "hola.org", Class: ClassUnknown, OS: OSAll,
			Probes: []Probe{{Scheme: "http", Ports: PortRange(6880, 6889), Path: "/*.json"}}},
		{Rank: 21246, Domain: "wowreality.info", Class: ClassUnknown, OS: OSAll,
			Probes: []Probe{{Scheme: "http", Path: "/", Ports: []uint16{
				1080, 1194, 2375, 2376, 3000, 3128, 3306, 3479, 4244, 5037, 5242, 5601,
				5938, 6379, 8332, 8333, 8530, 9000, 9050, 9150, 9785, 11211, 15672, 23399, 27017,
			}}}},
		{Rank: 62048, Domain: "svd-cdn.com", Class: ClassUnknown, OS: OSAll,
			Probes: []Probe{{Scheme: "http", Ports: PortRange(6880, 6889), Path: "/*.json"}}},
		{Rank: 78456, Domain: "usaonlineclassifieds.com", Class: ClassUnknown, OS: OSWindows, Gone2021: true,
			Probes: []Probe{{Scheme: "ws", Ports: []uint16{2687, 26876}, Path: "/"}}},
		{Rank: 84569, Domain: "usnetads.com", Class: ClassUnknown, OS: OSWindows, Gone2021: true,
			Probes: []Probe{{Scheme: "ws", Ports: []uint16{2687, 26876}, Path: "/"}}},
	}
	rows = append(rows, top2020DevErrors()...)
	return rows
}

// top2020DevErrors reproduces Table 11: websites whose localhost requests
// are remnants of development and testing.
func top2020DevErrors() []LocalhostRow {
	dev := func(rank int, domain, scheme string, port uint16, path string, os OSSet) LocalhostRow {
		return LocalhostRow{Rank: rank, Domain: domain, Class: ClassDevError, OS: os,
			Probes: []Probe{{Scheme: scheme, Ports: []uint16{port}, Path: path}}}
	}
	mark := func(r LocalhostRow, gone, notInList bool) LocalhostRow {
		r.Gone2021, r.NotInList2021 = gone, notInList
		return r
	}
	return []LocalhostRow{
		// Local file server (25 sites; §B).
		dev(22730, "smartcatdesign.net", "http", 8888, "/wp-content/uploads/2018/06/*.jpg", OSAll),
		dev(36786, "uinsby.ac.id", "http", 80, "/eduma/demo-1/wp-content/uploads/sites/2/2017/11/*.jpg", OSAll),
		mark(dev(38865, "upbasiceduboard.gov.in", "http", 1987, "/TeacherRecruitment2018/images/*.jpg", OSWL), false, true),
		dev(41468, "walisongo.ac.id", "http", 80, "/wordpress/wp-content/uploads/2015/07/*.jpg", OSAll),
		dev(41596, "classera.com", "http", 8080, "/wp-content/uploads/2020/04/*.png", OSAll),
		mark(dev(45177, "weavesilk.com", "http", 80, "/Silk%20Static/*.mp4", OSAll), true, false),
		mark(dev(50390, "upsen.net", "http", 80, "/6/10/*.js", OSAll), false, true),
		mark(dev(51910, "dsb.cn", "http", 80, "/*.jpg", OSWindows), true, false), // assigned W
		mark(dev(56450, "sin-tech.cn", "http", 9999, "/admin/kindeditor/attached/image/20191017/*.jpg", OSAll), false, true),
		mark(dev(56730, "nwolb.com", "https", 36762, "/*.gif", OSAll), true, false),
		mark(dev(57467, "cryptopia.co.nz", "http", 49972, "/*.ico", OSAll), true, false),
		mark(dev(63636, "weijuju.com", "http", 9092, "/image/page/index/*.png", OSAll), true, true),
		mark(dev(63770, "tdk.gov.tr", "http", 80, "/magazon/magazon-wp/wp-content/uploads/2013/02/*.ico", OSAll), true, false),
		mark(dev(65915, "shqilon.com", "http", 80, "/stop/*.html", OSAll), false, true),
		mark(dev(66891, "aau.edu.et", "http", 80, "/graduation/wp-content/uploads/2020/06/*.png", OSWindows), true, false), // assigned W
		dev(67851, "sirrus.com.br", "http", 80, "/sitesirrus/wp-content/uploads/2017/07/*.png", OSAll),
		mark(dev(69708, "unionbankph.com", "http", 8888, "/socket.io/*.js", OSAll), true, false),
		mark(dev(77636, "qubscribe.com", "https", 443, "/wp-content/uploads/2019/03/*.png", OSLM), false, true),          // assigned LM
		mark(dev(77761, "persian-magento.ir", "http", 80, "/graffito/images/sampledata/*.png", OSLM), false, true),       // assigned LM
		mark(dev(86045, "serymark.com", "http", 80, "/sm/wp-content/uploads/2017/06/*.png", OSLM), false, true),          // assigned LM
		mark(dev(88997, "ghana.com", "https", 8080, "/gdc/wp-content/themes/consultix/images/*.png", OSLM), false, true), // assigned LM
		dev(92768, "gomedici.com", "http", 3000, "/assets/*.png", OSWL),
		mark(dev(93798, "xaipe.edu.cn", "http", 80, "/*.html", OSLM), false, true),                                        // assigned LM
		mark(dev(94771, "health.com.kh", "http", 8899, "/newhealth/wp-content/uploads/2018/01/*.png", OSLM), false, true), // assigned LM
		mark(dev(96981, "urkund.com", "http", 4337, "/wp-content/uploads/2019/07/*.png", OSLM), false, true),              // assigned LM

		// Penetration-testing remnant: OWASP Xenotix xook.js (§B).
		mark(dev(17827, "rkn.gov.ru", "http", 5005, "/xook.js", OSAll), false, true),

		// LiveReload.js (5 sites).
		mark(dev(19244, "cruzeirodosulvirtual.com.br", "http", 460, "/livereload.js", OSAll), true, false),
		mark(dev(53124, "melissaanddoug.com", "https", 35729, "/livereload.js", OSAll), true, false),
		mark(dev(53216, "airfind.com", "https", 35729, "/livereload.js", OSAll), true, false),
		dev(58629, "hollins.edu", "https", 35729, "/livereload.js", OSAll),
		mark(dev(59978, "amitriptylineelavilgha.com", "http", 35729, "/livereload.js", OSLM), false, true), // assigned LM

		// Redirects to http://127.0.0.1/ (2 sites).
		mark(dev(51142, "romadecade.org", "http", 80, "/", OSAll), false, true),
		mark(dev(63644, "fincaraiz.com.co", "http", 80, "/", OSLinux), true, false), // assigned L

		// SockJS-node /sockjs-node/info — observed only on Mac (§B).
		dev(49144, "lyfdose.com", "http", 9000, "/sockjs-node/info?t=*", OSMac),
		dev(49990, "klik-mag.com", "https", 9000, "/sockjs-node/info?t=*", OSMac),
		dev(51101, "acedirectory.org", "https", 9000, "/sockjs-node/info?t=*", OSMac),
		dev(57249, "veteranstodayarchives.com", "https", 9000, "/sockjs-node/info?t=*", OSMac),
		dev(66971, "smartsearch.me", "https", 9000, "/sockjs-node/info?t=*", OSMac),

		// Other local services (7 sites).
		mark(dev(7700, "zakupki.gov.ru", "https", 1931, "/record/state", OSAll), false, true),
		dev(24740, "gamezone.com", "http", 8000, "/setuid", OSAll),
		dev(26400, "filemail.com", "http", 56666, "/", OSAll),
		dev(31518, "interbank.pe", "http", 9080, "/avisos-portal", OSAll),
		mark(dev(58708, "fsist.com.br", "http", 28337, "/getCertificados", OSAll), false, true),
		dev(62852, "spaceappschallenge.org", "http", 8000, "/graphql", OSAll),
		mark(dev(90791, "fromhomefitness.com", "https", 8000, "/app/getLicenseKey", OSLinux), false, true), // assigned L
	}
}

// Top2020LAN returns the 9 landing pages observed making LAN requests in
// the 2020 top-100K crawl (Table 6).
func Top2020LAN() []LANRow {
	return []LANRow{
		{Rank: 4381, Domain: "gsis.gr", Gone2021: true, Scheme: "http", Addr: "10.193.31.212", Port: 80, Path: "/system/files/2020-06/*.png", OS: OSAll, DevError: true},
		{Rank: 19523, Domain: "farsroid.com", Gone2021: true, Scheme: "http", Addr: "10.10.34.35", Port: 80, Path: "/", OS: OSWindows},                      // censorship-related iframe (Appendix C)
		{Rank: 35262, Domain: "saddleback.edu", Gone2021: true, Scheme: "https", Addr: "10.156.2.50", Port: 443, Path: "/*.ico", OS: OSMac, DevError: true}, // assigned M
		{Rank: 46972, Domain: "skalvibytte.no", Gone2021: true, Scheme: "http", Addr: "10.0.0.200", Port: 80, Path: "/wordpress/wp-content/uploads/2020/04/*.jpg", OS: OSAll, DevError: true},
		{Rank: 56325, Domain: "unib.ac.id", Scheme: "http", Addr: "192.168.64.160", Port: 80, Path: "/wp-content/uploads/2019/10/*.jpg", OS: OSAll, DevError: true},
		{Rank: 61554, Domain: "adnsolutions.com", Gone2021: true, Scheme: "http", Addr: "10.0.20.16", Port: 80, Path: "/wp-content/uploads/2018/11/*.jpg", OS: OSWindows, DevError: true},               // assigned W
		{Rank: 65302, Domain: "tra97fn35n5brvxki5-sj8x5x34k2t4d67j883fgt.xyz", Gone2021: true, Scheme: "http", Addr: "10.10.34.35", Port: 80, Path: "/", OS: OSLinux},                                   // assigned L
		{Rank: 73062, Domain: "zoom.lk", Gone2021: true, Scheme: "https", Addr: "192.168.0.208", Port: 443, Path: "/wp_011_test_demos/wp-content/uploads/2017/05/*.jpg", OS: OSWindows, DevError: true}, // assigned W
		{Rank: 91632, Domain: "1-movies.ir", Gone2021: true, Scheme: "http", Addr: "10.10.34.35", Port: 80, Path: "/", OS: OSAll},
	}
}
