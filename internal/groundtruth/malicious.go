package groundtruth

import "fmt"

// Tables 8 (localhost) and 9 (LAN) — the crawl of ~145K malicious
// webpages (March–April 2021).
//
// Table 8 prints 59 named rows/groups and omits "79 domains" of
// wp-content developer-error malware sites for brevity. The paper's
// headline count is 151 localhost sites with the per-OS overlap of
// Figure 2b (W-only 14, L-only 41, M-only 8, WL 10, WM 4, LM 4, WLM 70;
// totals W 98, L 124, M 86 — consistent with the figure's printed sum of
// 151 and within 1–2 of the per-OS sums in Table 2). The named rows are
// embedded as printed where unambiguous, and the omitted group is
// synthesized deterministically to satisfy the Figure 2b regions
// exactly. Deviations from ambiguous printed checkmarks are marked
// "assigned".

// MaliciousVenn is the Figure 2b overlap target.
var MaliciousVenn = map[OSSet]int{
	OSWindows: 14,
	OSLinux:   41,
	OSMac:     8,
	OSWL:      10,
	OSWM:      4,
	OSLM:      4,
	OSAll:     70,
}

// tmClonerPhish builds a phishing site that cloned a ThreatMetrix-using
// web interface, inheriting its localhost scanning (§4.3.1).
func tmClonerPhish(domain string) LocalhostRow {
	return LocalhostRow{
		Domain: domain, Category: "phishing", Class: ClassFraudDetection,
		Probes: []Probe{{Scheme: "wss", Ports: threatMetrixPorts, Path: "/"}},
		OS:     OSWindows,
	}
}

func phishDev(domain, scheme string, port uint16, path string, os OSSet) LocalhostRow {
	return LocalhostRow{Domain: domain, Category: "phishing", Class: ClassDevError, OS: os,
		Probes: []Probe{{Scheme: scheme, Ports: []uint16{port}, Path: path}}}
}

func malwareDev(domain, scheme string, port uint16, path string, os OSSet) LocalhostRow {
	return LocalhostRow{Domain: domain, Category: "malware", Class: ClassDevError, OS: os,
		Probes: []Probe{{Scheme: scheme, Ports: []uint16{port}, Path: path}}}
}

// MaliciousLocalhost returns the 151 malicious webpages observed making
// localhost requests (Table 8 plus the synthesized omitted group).
func MaliciousLocalhost() []LocalhostRow {
	rows := []LocalhostRow{
		// --- Malware (named rows) ---
		malwareDev("acffiorentina.ru", "http", 8080, "/socket.io/socket.io.js", OSAll),
		{Domain: "elilaifs.cn", Category: "malware", Class: ClassNativeApp, OS: OSAll,
			// Thunder (Xunlei) download-manager JS library probing its
			// native client (§4.3.3).
			Probes: []Probe{{Scheme: "http", Ports: []uint16{28317, 36759}, Path: "/get_thunder_version"}}},
		malwareDev("boatattorney.com", "https", 35729, "/livereload.js", OSWL),
		malwareDev("jdih.purworejokab.go.id", "http", 80, "/website-bphn-bk/*", OSAll),
		malwareDev("metolegal.com", "http", 80, "/metolegal/wp-includes/js/*", OSAll),
		malwareDev("ppdb.smp1sbw.sch.id", "http", 80, "/ppdbv3/ro-error/*", OSMac), // assigned M
		malwareDev("scopesports.net", "http", 80, "/scope/xpertspanel/*", OSMac),   // assigned M
		malwareDev("tonyhealy.co.za", "http", 80, "/", OSAll),
		malwareDev("oceanos.com.co", "http", 80, "/wp-oceanos/*", OSAll),

		// --- Abuse (4 named rows; wp-content developer errors) ---
		malwareCat("autorizador5.com.br", "abuse"),
		malwareCat("classyfashionbd.com", "abuse"),
		malwareCat("coralive.org", "abuse"),
		malwareCat("saudiwallcovering.com", "abuse"),

		// --- Phishing: ThreatMetrix-cloning sites (13, Windows only) ---
		tmClonerPhish("ebaybuy.com.buying-item-guest.com"),
		tmClonerPhish("100-25-26-254.cprapid.com"),
		tmClonerPhish("advancedlearningdynamics.com"),
		tmClonerPhish("smarturl.it"),
		tmClonerPhish("customer-ebay.com"),
		tmClonerPhish("citibank.gulajawajahe.my.id"),
		tmClonerPhish("o2-billing.org"),
		tmClonerPhish("samarasecrets.com"),
		tmClonerPhish("sic-week.000webhostapp.com"),
		tmClonerPhish("signin01.kauf-eday.de"),
		tmClonerPhish("hotelmontiazzurri.com"),
		tmClonerPhish("mahdistock.com"),
		tmClonerPhish("adesignsovast.com"),

		// --- Phishing: other named rows ---
		phishDev("ag4.gartenbau-olching.de", "http", 80, "/", OSWL),
		phishDev("grp02.id.rakutan-co-jpr.buzz", "http", 80, "/", OSWL),
		phishDev("elmagra.net", "http", 80, "/dashboard-v1/*", OSWL),
		phishDev("etoro-invest.org", "http", 80, "/StudentForum//*", OSAll),
		phishDev("survivalhabits.com", "http", 44056, "/NonExistentImage33090.gif", OSWL),
		phishDev("evolution-postepay.com", "https", 5140, "/NonExistentImage19258.gif", OSWL),
		phishDev("postepaynuovo.com", "https", 62389, "/NonExistentImage55353.gif", OSAll),
		phishDev("sbloccareposte.com", "http", 44938, "/NonExistentImage37362.gif", OSWindows),
		phishDev("verificapostepay.com", "https", 49622, "/NonExistentImage20705.gif", OSWL),
		phishDev("aladdinstar.com", "https", 8443, "/images/*.png", OSAll),
	}

	// Phishing: the rakuten group (8 "rakuten.*" domains plus three
	// explicit hosts), Linux only.
	for i := 1; i <= 8; i++ {
		rows = append(rows, phishDev(fmt.Sprintf("rakuten.co-jp%d.example", i), "http", 80, "/", OSLinux))
	}
	for _, d := range []string{"www.ip.rakuten.1ex.info", "rakuteni.co.jp.ai12.info", "www.ip.rakuten.rbimomro.icu"} {
		rows = append(rows, phishDev(d, "http", 80, "/", OSLinux))
	}
	// Phishing: the amazon.co.jp group (12 domains), /robots.txt, Linux only.
	for i := 1; i <= 12; i++ {
		rows = append(rows, phishDev(fmt.Sprintf("amazon.co.jp.a%02d.example", i), "http", 80, "/robots.txt", OSLinux))
	}

	// The omitted wp-content malware group, synthesized to satisfy the
	// Figure 2b overlap regions exactly.
	deficit := make(map[OSSet]int, len(MaliciousVenn))
	for region, want := range MaliciousVenn {
		deficit[region] = want
	}
	for _, r := range rows {
		deficit[r.OS]--
	}
	i := 0
	for _, region := range []OSSet{OSWindows, OSLinux, OSMac, OSWL, OSWM, OSLM, OSAll} {
		for n := deficit[region]; n > 0; n-- {
			i++
			// Table 8's omitted group is printed as "http(s) 80/443":
			// roughly a quarter of the compromised blogs serve TLS.
			scheme, port := "http", uint16(80)
			if i%4 == 0 {
				scheme, port = "https", 443
			}
			rows = append(rows, malwareDev(
				fmt.Sprintf("wp%03d.compromised-blog.example", i),
				scheme, port, fmt.Sprintf("/wp-content/uploads/2019/%02d/*.jpg", (i%12)+1),
				region))
		}
	}
	return rows
}

func malwareCat(domain, category string) LocalhostRow {
	r := malwareDev(domain, "http", 80, "/"+domain+"/wp-content/*", OSAll)
	r.Category = category
	return r
}

// MaliciousLAN returns the 9 malicious webpages observed making LAN
// requests (Table 9). OS flags are assigned to satisfy the Table 2 LAN
// row (malware 8/7/7, abuse 1/1/1).
func MaliciousLAN() []LANRow {
	return []LANRow{
		{Domain: "test.laitspa.it", Category: "malware", Scheme: "http", Addr: "10.2.70.15", Port: 80, Path: "/*.css", OS: OSAll, DevError: true},
		{Domain: "wangzonghang.cn", Category: "malware", Scheme: "http", Addr: "192.168.0.226", Port: 1080, Path: "/wp-content/themes/*", OS: OSWL, DevError: true},
		{Domain: "crasar.org", Category: "malware", Scheme: "http", Addr: "192.168.1.8", Port: 80, Path: "/crasar/wp-content/themes/*", OS: OSAll, DevError: true},
		{Domain: "www.crasar.org", Category: "malware", Scheme: "http", Addr: "192.168.1.8", Port: 80, Path: "/crasar/wp-content/themes/*", OS: OSAll, DevError: true},
		{Domain: "mihanpajooh.com", Category: "malware", Scheme: "http", Addr: "10.10.34.35", Port: 80, Path: "/", OS: OSWM},                                             // assigned WM; censorship iframe
		{Domain: "ahs.si", Category: "malware", Scheme: "https", Addr: "192.168.33.10", Port: 443, Path: "/wp-content/uploads/2019/12/*.png", OS: OSAll, DevError: true}, // assigned WLM
		{Domain: "fixusgroup.com", Category: "malware", Scheme: "https", Addr: "172.26.6.230", Port: 443, Path: "/wp-content/uploads/2020/02/*.png", OS: OSAll, DevError: true},
		{Domain: "zoom.lk", Category: "malware", Scheme: "http", Addr: "192.168.0.208", Port: 80, Path: "/wp_011_test_demos/wp-content/uploads/2017/05/*.jpg", OS: OSAll, DevError: true},
		{Domain: "001tel.com", Category: "abuse", Scheme: "https", Addr: "172.16.205.110", Port: 443, Path: "/usershare/*.js", OS: OSAll, DevError: true},
	}
}
