package groundtruth

// Tables 7 (new localhost sites) and 10 (LAN sites) — the 2021 top-100K
// crawl, which covered Windows and Linux only (§3.2: logistical issues
// prevented the Mac measurement).
//
// Reconciliation notes (§4.1 reports 82 localhost sites in 2021 = 40 new
// + 42 continuing):
//   - betfair.com appears both in Table 5 (2020, rank 7441) and in
//     Table 7 with a "(+) not previously crawled" marker; the marker is
//     treated as an erratum and betfair is modeled as re-ranked, keeping
//     the Table 7 row.
//   - Two 2020 sites with no printed marker (walisongo.ac.id,
//     classera.com) are modeled as having stopped by 2021 so that the
//     continuing set is exactly 42.
//   - panduit.com is modeled as active on Windows and Linux so the
//     Figure 9 Linux total of 48 holds exactly.

// Top2021NewLocalhost returns the 40 sites newly observed making
// localhost requests in the 2021 crawl (Table 7).
func Top2021NewLocalhost() []LocalhostRow {
	fraud2021 := func(rank int, domain string, isNew bool) LocalhostRow {
		r := fraudRow(rank, domain, false)
		r.New2021 = isNew
		return r
	}
	native := func(rank int, domain, scheme string, ports []uint16, path string, os OSSet, isNew bool) LocalhostRow {
		return LocalhostRow{Rank: rank, Domain: domain, Class: ClassNativeApp, OS: os, New2021: isNew,
			Probes: []Probe{{Scheme: scheme, Ports: ports, Path: path}}}
	}
	dev := func(rank int, domain, scheme string, port uint16, path string, os OSSet, isNew bool) LocalhostRow {
		return LocalhostRow{Rank: rank, Domain: domain, Class: ClassDevError, OS: os, New2021: isNew,
			Probes: []Probe{{Scheme: scheme, Ports: []uint16{port}, Path: path}}}
	}
	iqiyiPorts := []uint16{16422, 16423}
	thunderPorts := []uint16{28317, 36759}
	return []LocalhostRow{
		// --- Fraud Detection: ThreatMetrix (WSS, Windows only) ---
		fraud2021(2912, "cibc.com", false),
		fraud2021(8173, "betfair.com", false), // (+) in Table 7 treated as erratum; see package comment
		fraud2021(10679, "highlow.com", false),
		fraud2021(28370, "moneybookers.com", false),
		fraud2021(31170, "ebay.com.hk", false),
		fraud2021(64012, "marks.com", false),

		// --- Native Applications ---
		native(592, "iqiyi.com", "http", iqiyiPorts, "/get_client_ver?*", OSWL, false),
		native(7664, "qy.net", "http", iqiyiPorts, "/get_client_ver?*", OSWL, false),
		native(10966, "qiyi.com", "http", iqiyiPorts, "/get_client_ver?*", OSWL, false),
		native(12350, "iqiyipic.com", "http", iqiyiPorts, "/get_client_ver?*", OSWL, false),
		native(15581, "ppstream.com", "http", iqiyiPorts, "/get_client_ver?*", OSWL, false),
		native(34989, "ppsimg.com", "http", iqiyiPorts, "/get_client_ver?*", OSWL, true),
		native(44280, "soliqservis.uz", "wss", []uint16{64443}, "/service/cryptapi", OSWL, true),
		native(75083, "nfstar.net", "http", thunderPorts, "/get_thunder_version/", OSWL, true),
		native(80108, "9ekk.com", "http", thunderPorts, "/get_thunder_version/", OSWL, true),
		native(87274, "somode.com", "http", thunderPorts, "/get_thunder_version/", OSWL, true),
		native(82814, "mcgeeandco.com", "https", []uint16{4000}, "/socket.io/?", OSWL, true),
		native(86605, "71.am", "http", iqiyiPorts, "/get_client_ver?*", OSWL, true),
		native(94270, "didox.uz", "wss", []uint16{64443}, "/service/cryptapi", OSWL, true),
		native(96284, "gnway.com", "ws", PortRange(38681, 38687), "/", OSWindows, true),

		// --- Developer Errors ---
		dev(5154, "phonearena.com", "http", 1500, "/floor-domains", OSWL, false),
		dev(5331, "madmimi.com", "http", 5555, "/2.1.2/sockjs.min.js", OSWindows, false),
		dev(14951, "nursingworld.org", "http", 80, "/~4af7b9/globalassets/images/*.jpg", OSWindows, false),
		dev(21280, "ums.ac.id", "http", 80, "/ums-baru/wp-content/*", OSWL, false),
		dev(25940, "zee.co.ao", "http", 80, "/industrialwp/wp-content/*", OSWL, true),
		dev(37323, "raovatnailsalon.com", "https", 443, "/raovatnailsalon/wp-content/*", OSWL, true),
		dev(42107, "panduit.com", "http", 4502, "/apps/panduit/clientlibs/*.js", OSWL, false), // assigned WL; see package comment
		dev(45497, "internetworld.de", "https", 443, "/", OSWL, false),
		dev(47861, "mcknights.com", "https", 9988, "/livereload.js", OSWindows, false),
		dev(50650, "san-servis.com", "http", 80, "/vina/vina_febris/images/*", OSWL, false),
		dev(54756, "postfallsonthego.com", "http", 80, "/magazon/magazon-wp/wp-content/uploads/*", OSWL, true),
		dev(55755, "wealthcareportal.com", "http", 80, "/NonExistentImage48762.gif", OSWL, true),
		dev(55477, "lited.com", "http", 11066, "/getversionjpg?hash=*", OSWindows, false),
		dev(68872, "workpermit.com", "https", 6081, "/news-ticker.json", OSWL, false),
		dev(75989, "ethiopianreporterjobs.co", "https", 443, "/wp-content/uploads/*", OSWL, true),
		dev(77974, "macroaxis.com", "http", 8080, "/img/icons/search.png", OSWL, true),
		dev(83256, "adfontesmedia.com", "http", 8888, "/adfontesmedia/wp-content/uploads/*", OSWL, true),
		dev(84378, "charityvillage.com", "http", 8888, "/core/js/api/web-rules", OSWL, true),
		dev(90632, "showfx.ro", "https", 443, "/wordpress/x-street/wp-content/*", OSWL, true),
		dev(98402, "xaydungtrangtrinoithat.com", "https", 443, "/wp-content/uploads/*", OSWL, true),
	}
}

// reconciledGone2021 lists 2020 sites with no printed marker that are
// modeled as having stopped by 2021 (see package comment).
var reconciledGone2021 = map[string]bool{
	"walisongo.ac.id": true,
	"classera.com":    true,
}

// Top2021ContinuingLocalhost returns the 42 sites from the 2020 crawl
// that continued making localhost requests in 2021. The 2021 crawl had
// no Mac vantage, so Mac-only 2020 sites (the five SockJS ones) cannot
// continue, and continuing rows are restricted to their W/L activity.
func Top2021ContinuingLocalhost() []LocalhostRow {
	var out []LocalhostRow
	for _, r := range Top2020Localhost() {
		if r.Gone2021 || r.NotInList2021 || reconciledGone2021[r.Domain] {
			continue
		}
		if r.Domain == "betfair.com" {
			continue // re-ranked; carried by Table 7 (see package comment)
		}
		wl := r.OS & OSWL
		if wl == OSNone {
			continue // Mac-only sites are unobservable in 2021
		}
		r.OS = wl
		out = append(out, r)
	}
	return out
}

// Top2021Localhost returns all 82 sites observed making localhost
// requests in the 2021 crawl (§4.1).
func Top2021Localhost() []LocalhostRow {
	return append(Top2021ContinuingLocalhost(), Top2021NewLocalhost()...)
}

// Top2021LAN returns the 8 landing pages observed making LAN requests in
// the 2021 crawl (Table 10). unib.ac.id is the only site LAN-active in
// both crawls.
func Top2021LAN() []LANRow {
	return []LANRow{
		{Rank: 4847, Domain: "blogsky.com", Scheme: "http", Addr: "10.10.34.34", Port: 80, Path: "/", OS: OSWL, New2021: true},
		{Rank: 23723, Domain: "jollibeedelivery.qa", Scheme: "http", Addr: "192.168.8.241", Port: 5000, Path: "/MyPhone/c2cinfo", OS: OSWL, DevError: true, New2021: true},
		{Rank: 47356, Domain: "unib.ac.id", Scheme: "https", Addr: "192.168.64.160", Port: 443, Path: "/wp-content/uploads/2019/10/*.jpg", OS: OSWindows, DevError: true}, // assigned W
		{Rank: 61472, Domain: "bahrain.bh", Scheme: "https", Addr: "192.168.110.72", Port: 443, Path: "/matomo/*.js", OS: OSWL, DevError: true, New2021: true},
		{Rank: 69494, Domain: "auda.org.au", Scheme: "https", Addr: "10.50.1.242", Port: 8450, Path: "/libraries/slick/slick/*.gif", OS: OSWL, DevError: true, New2021: true},
		{Rank: 73274, Domain: "mre.gov.br", Scheme: "https", Addr: "192.168.33.187", Port: 443, Path: "/modules/mod_acontece/assets/*", OS: OSLinux, DevError: true, New2021: true}, // assigned L
		{Rank: 95595, Domain: "haiwaihai.cn", Scheme: "http", Addr: "172.16.0.4", Port: 1117, Path: "/UpLoadFile/20160801/*.jpg", OS: OSWL, DevError: true, New2021: true},
		{Rank: 96554, Domain: "techshout.com", Scheme: "https", Addr: "192.168.0.120", Port: 443, Path: "/wp_011_gadgets/wp-content/uploads/*", OS: OSWL, DevError: true, New2021: true},
	}
}
