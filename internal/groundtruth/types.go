// Package groundtruth embeds the per-site observations published in the
// paper's tables (Tables 3, 5–11) and its aggregate statistics (Tables 1
// and 2, Figures 2, 4, 8). This data seeds the synthetic web so that the
// reproduced crawl detects exactly the sites the paper detected, and it
// serves as the oracle that EXPERIMENTS.md compares measured output
// against.
//
// Where the paper's own text and tables disagree slightly (e.g. §4.3
// counts 36 fraud-detection sites while Table 5 lists 34 rows; Table 3
// ranks differ by one from Table 5), the table rows are embedded as
// printed and the discrepancy is noted in EXPERIMENTS.md.
package groundtruth

import (
	"fmt"
	"sort"
	"strings"
)

// OSSet is a bitmask of the OSes on which a behavior was observed.
type OSSet uint8

// OS bits, matching the paper's W/L/M column order.
const (
	OSWindows OSSet = 1 << iota
	OSLinux
	OSMac
)

// Composite sets.
const (
	OSAll  = OSWindows | OSLinux | OSMac
	OSWL   = OSWindows | OSLinux
	OSWM   = OSWindows | OSMac
	OSLM   = OSLinux | OSMac
	OSNone = OSSet(0)
)

// Has reports whether all bits of q are present.
func (s OSSet) Has(q OSSet) bool { return s&q == q }

// OSSetFromLabel maps a store OS label ("Windows", "Linux", "Mac") to
// its bit. Unknown labels return OSNone and an error; callers decide
// whether to tolerate them (live ingest accepts arbitrary labels) or to
// fail loudly (debug and integrity checks).
func OSSetFromLabel(label string) (OSSet, error) {
	switch label {
	case "Windows":
		return OSWindows, nil
	case "Linux":
		return OSLinux, nil
	case "Mac":
		return OSMac, nil
	default:
		return OSNone, fmt.Errorf("groundtruth: unknown OS label %q", label)
	}
}

// Count returns the number of OSes in the set.
func (s OSSet) Count() int {
	n := 0
	for _, b := range []OSSet{OSWindows, OSLinux, OSMac} {
		if s.Has(b) {
			n++
		}
	}
	return n
}

// String renders the set in table notation, e.g. "W L".
func (s OSSet) String() string {
	var parts []string
	if s.Has(OSWindows) {
		parts = append(parts, "W")
	}
	if s.Has(OSLinux) {
		parts = append(parts, "L")
	}
	if s.Has(OSMac) {
		parts = append(parts, "M")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// Class is the paper's behavior taxonomy for localhost activity (§4.3).
type Class int

// Behavior classes.
const (
	ClassFraudDetection Class = iota
	ClassBotDetection
	ClassNativeApp
	ClassDevError
	ClassUnknown
)

// String returns the table heading for the class.
func (c Class) String() string {
	switch c {
	case ClassFraudDetection:
		return "Fraud Detection"
	case ClassBotDetection:
		return "Bot Detection"
	case ClassNativeApp:
		return "Native Application"
	case ClassDevError:
		return "Developer Errors"
	case ClassUnknown:
		return "Unknown"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Probe is one protocol/ports/path pattern a site was observed using
// against localhost. Most sites have one probe; samsungcard has two
// (WSS for AnySign plus HTTPS for nProtect).
type Probe struct {
	Scheme string   // "http", "https", "ws", "wss"
	Ports  []uint16 // distinct localhost ports requested
	Path   string   // representative path (templates use *)
}

// LocalhostRow is one site row from Tables 5, 7, 8, or 11.
type LocalhostRow struct {
	Rank   int // Tranco rank at crawl time; 0 for malicious sites
	Domain string
	Class  Class
	Probes []Probe
	OS     OSSet
	// Gone2021 marks a 2020-crawl domain that no longer made localhost
	// requests in the 2021 crawl (the tables' asterisk).
	Gone2021 bool
	// NotInList2021 marks a 2020-crawl domain absent from the 2021
	// Tranco snapshot (the tables' minus sign).
	NotInList2021 bool
	// New2021 marks a 2021-crawl domain absent from the 2020 snapshot
	// (Table 7's plus sign).
	New2021 bool
	// Category is the blocklist category for malicious rows
	// ("malware", "abuse", "phishing"); empty for top-list rows.
	Category string
}

// Ports returns the union of all probe ports, sorted.
func (r *LocalhostRow) Ports() []uint16 {
	seen := map[uint16]bool{}
	var out []uint16
	for _, p := range r.Probes {
		for _, port := range p.Ports {
			if !seen[port] {
				seen[port] = true
				out = append(out, port)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LANRow is one site row from Tables 6, 9, or 10.
type LANRow struct {
	Rank     int
	Domain   string
	Scheme   string
	Addr     string // RFC1918 destination address
	Port     uint16
	Path     string
	OS       OSSet
	Category string // blocklist category for malicious rows
	// DevError reports the paper's classification: 6 of the 9 sites in
	// Table 6 were developer errors, the rest unknown/censorship.
	DevError bool
	Gone2021 bool
	New2021  bool
}

// PortRange expands an inclusive port range into a slice.
func PortRange(lo, hi uint16) []uint16 {
	if hi < lo {
		lo, hi = hi, lo
	}
	out := make([]uint16, 0, hi-lo+1)
	for p := lo; ; p++ {
		out = append(out, p)
		if p == hi {
			break
		}
	}
	return out
}
