package groundtruth

// Aggregate statistics published in the paper: Table 1 (crawl success and
// error taxonomy), Table 2 (malicious category summary), the Figure 2
// overlap regions, and the Figure 4/8 request rollups. These are the
// oracle values EXPERIMENTS.md compares measured output against, and the
// targets the synthetic web's population shaping aims for.

// CrawlID names one of the three measurement campaigns.
type CrawlID string

// The three crawls.
const (
	CrawlTop2020   CrawlID = "top100k-2020"
	CrawlTop2021   CrawlID = "top100k-2021"
	CrawlMalicious CrawlID = "malicious"
)

// OSesFor returns the OSes covered by a crawl: all three for the 2020
// top-list and malicious crawls, Windows and Linux for 2021 (§3.2).
func OSesFor(c CrawlID) OSSet {
	if c == CrawlTop2021 {
		return OSWL
	}
	return OSAll
}

// CrawlStats is one row of Table 1.
type CrawlStats struct {
	Crawl           CrawlID
	OS              OSSet // a single OS bit
	Successful      int
	Failed          int
	NameNotResolved int
	ConnRefused     int
	ConnReset       int
	CertCNInvalid   int
	Others          int
}

// Total returns the number of pages attempted.
func (s CrawlStats) Total() int { return s.Successful + s.Failed }

// SuccessRate returns the fraction of successful loads.
func (s CrawlStats) SuccessRate() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.Successful) / float64(s.Total())
}

// Table1 returns the paper's crawl statistics as printed. Note the
// malicious rows sum to 146181 attempted URLs while Table 2's site
// counts sum to 144925 (~145K); the reproduction uses the Table 2
// population and compares rates rather than absolute counts for the
// malicious rows.
func Table1() []CrawlStats {
	return []CrawlStats{
		{CrawlTop2020, OSWindows, 89744, 10256, 9179, 355, 248, 236, 238},
		{CrawlTop2021, OSWindows, 91765, 8235, 7287, 239, 230, 251, 228},
		{CrawlTop2020, OSMac, 89819, 10181, 9001, 345, 193, 226, 416},
		{CrawlTop2020, OSLinux, 90175, 9825, 8612, 335, 247, 235, 396},
		{CrawlTop2021, OSLinux, 91719, 8281, 7309, 272, 126, 248, 326},
		{CrawlMalicious, OSWindows, 100317, 45864, 40715, 1475, 530, 1341, 1803},
		{CrawlMalicious, OSMac, 103154, 43027, 37310, 1488, 523, 1314, 2392},
		{CrawlMalicious, OSLinux, 106078, 40103, 34723, 1346, 521, 1313, 2200},
	}
}

// Top2020Venn is the Figure 2a overlap of localhost-active sites across
// OSes for the 2020 top-100K crawl.
var Top2020Venn = map[OSSet]int{
	OSWindows: 48,
	OSLinux:   2,
	OSMac:     5,
	OSWL:      3,
	OSWM:      0,
	OSLM:      8,
	OSAll:     41,
}

// MaliciousCategory is one row of Table 2.
type MaliciousCategory struct {
	Category    string
	Sites       int
	Sources     string // data sources with contribution, as printed
	SuccessRate map[OSSet]float64
	Localhost   map[OSSet]int // sites with localhost activity per OS
	LAN         map[OSSet]int
}

// Table2 returns the malicious crawl summary as printed.
func Table2() []MaliciousCategory {
	return []MaliciousCategory{
		{
			Category: "malware", Sites: 103541, Sources: "Abuse.ch (99%), SURBL (1%)",
			SuccessRate: map[OSSet]float64{OSWindows: 0.61, OSLinux: 0.65, OSMac: 0.65},
			Localhost:   map[OSSet]int{OSWindows: 72, OSLinux: 83, OSMac: 75},
			LAN:         map[OSSet]int{OSWindows: 8, OSLinux: 7, OSMac: 7},
		},
		{
			Category: "abuse", Sites: 24958, Sources: "SURBL (100%)",
			SuccessRate: map[OSSet]float64{OSWindows: 0.95, OSLinux: 0.97, OSMac: 0.93},
			Localhost:   map[OSSet]int{OSWindows: 0, OSLinux: 0, OSMac: 0},
			LAN:         map[OSSet]int{OSWindows: 1, OSLinux: 1, OSMac: 1},
		},
		{
			Category: "phishing", Sites: 16426, Sources: "PhishTank (85%), SURBL (15%)",
			SuccessRate: map[OSSet]float64{OSWindows: 0.73, OSLinux: 0.76, OSMac: 0.69},
			Localhost:   map[OSSet]int{OSWindows: 25, OSLinux: 41, OSMac: 9},
			LAN:         map[OSSet]int{OSWindows: 0, OSLinux: 0, OSMac: 0},
		},
	}
}

// RequestRollup is the protocol/scheme breakdown of localhost requests
// for one OS, as shown in the Figure 4/8 sunbursts.
type RequestRollup struct {
	OS       OSSet
	Total    int
	ByScheme map[string]int
}

// Figure4Top2020 is the published Figure 4a rollup (2020 top-100K crawl).
var Figure4Top2020 = []RequestRollup{
	{OS: OSWindows, Total: 664, ByScheme: map[string]int{"wss": 490, "http": 134, "https": 21, "ws": 19}},
	{OS: OSLinux, Total: 128, ByScheme: map[string]int{"http": 89, "ws": 27, "https": 10, "wss": 2}},
	{OS: OSMac, Total: 177, ByScheme: map[string]int{"http": 87, "https": 38, "ws": 26, "wss": 26}},
}

// Figure4Malicious is the published Figure 4b rollup (malicious crawl).
var Figure4Malicious = []RequestRollup{
	{OS: OSWindows, Total: 366, ByScheme: map[string]int{"wss": 252, "http": 90, "https": 24}},
	{OS: OSLinux, Total: 154, ByScheme: map[string]int{"http": 133, "https": 21}},
	{OS: OSMac, Total: 112, ByScheme: map[string]int{"http": 84, "https": 28}},
}

// Figure8Top2021 is the published Figure 8 rollup (2021 top-100K crawl).
var Figure8Top2021 = []RequestRollup{
	{OS: OSWindows, Total: 512, ByScheme: map[string]int{"wss": 409, "http": 73, "https": 20, "ws": 10}},
	{OS: OSLinux, Total: 118, ByScheme: map[string]int{"http": 89, "https": 21, "ws": 6, "wss": 2}},
}

// Headline holds the §4.1 topline site counts per crawl.
type Headline struct {
	Crawl     CrawlID
	Localhost int
	LAN       int
}

// Headlines returns the published topline counts.
func Headlines() []Headline {
	return []Headline{
		{CrawlTop2020, 107, 9},
		{CrawlTop2021, 82, 8},
		{CrawlMalicious, 151, 9},
	}
}

// Top2021WindowsSites and Top2021LinuxSites are the Figure 9 per-OS
// totals for the 2021 crawl.
const (
	Top2021WindowsSites = 82
	Top2021LinuxSites   = 48
)

// Table3Windows2020 and Table3LinuxMac2020 are the published Table 3
// columns: the ten highest-ranked domains whose landing pages made
// localhost requests in the 2020 crawl, per OS (the Linux and Mac lists
// were identical).
var (
	Table3Windows2020 = []string{
		"ebay.com", "hola.org", "ebay.de", "ebay.co.uk", "ebay.com.au",
		"fidelity.com", "citi.com", "ebay.it", "ebay.fr", "ebay.ca",
	}
	Table3LinuxMac2020 = []string{
		"hola.org", "faceit.com", "zakupki.gov.ru", "rkn.gov.ru",
		"cruzeirodosulvirtual.com.br", "wowreality.info",
		"smartcatdesign.net", "cponline.pw", "gamezone.com", "filemail.com",
	}
)
