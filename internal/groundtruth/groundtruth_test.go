package groundtruth

import (
	"net/netip"
	"sort"
	"strings"
	"testing"
)

func vennOf(rows []LocalhostRow) map[OSSet]int {
	v := make(map[OSSet]int)
	for _, r := range rows {
		v[r.OS]++
	}
	return v
}

func osTotals(rows []LocalhostRow) (w, l, m int) {
	for _, r := range rows {
		if r.OS.Has(OSWindows) {
			w++
		}
		if r.OS.Has(OSLinux) {
			l++
		}
		if r.OS.Has(OSMac) {
			m++
		}
	}
	return
}

func TestTop2020LocalhostHeadline(t *testing.T) {
	rows := Top2020Localhost()
	if len(rows) != 107 {
		t.Fatalf("2020 localhost sites = %d, want 107 (§4.1)", len(rows))
	}
	w, l, m := osTotals(rows)
	if w != 92 || l != 54 || m != 54 {
		t.Errorf("per-OS totals = W%d L%d M%d, want W92 L54 M54 (Figure 2a)", w, l, m)
	}
	venn := vennOf(rows)
	for region, want := range Top2020Venn {
		if venn[region] != want {
			t.Errorf("region %v = %d, want %d", region, venn[region], want)
		}
	}
}

func TestTop2020ClassCounts(t *testing.T) {
	counts := map[Class]int{}
	for _, r := range Top2020Localhost() {
		counts[r.Class]++
	}
	// Table row counts (the section text's 36/10/12/44/5 disagrees with
	// its own tables; the tables sum to exactly 107 as 34/10/13/45/5).
	want := map[Class]int{
		ClassFraudDetection: 34,
		ClassBotDetection:   10,
		ClassNativeApp:      13,
		ClassDevError:       45,
		ClassUnknown:        5,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("%v = %d rows, want %d", c, counts[c], n)
		}
	}
}

func TestTop2020NoDuplicateDomains(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Top2020Localhost() {
		if seen[r.Domain] {
			t.Errorf("duplicate domain %q", r.Domain)
		}
		seen[r.Domain] = true
	}
}

func TestTop2020RanksInRange(t *testing.T) {
	for _, r := range Top2020Localhost() {
		if r.Rank < 1 || r.Rank > 100000 {
			t.Errorf("%s rank %d outside top 100K", r.Domain, r.Rank)
		}
	}
}

func TestFraudRowsShape(t *testing.T) {
	for _, r := range Top2020Localhost() {
		if r.Class != ClassFraudDetection {
			continue
		}
		if r.OS != OSWindows {
			t.Errorf("%s: fraud detection observed beyond Windows: %v", r.Domain, r.OS)
		}
		if len(r.Probes) != 1 || r.Probes[0].Scheme != "wss" || len(r.Probes[0].Ports) != 14 || r.Probes[0].Path != "/" {
			t.Errorf("%s: fraud probe shape wrong: %+v", r.Domain, r.Probes)
		}
	}
}

func TestBotRowsShape(t *testing.T) {
	for _, r := range Top2020Localhost() {
		if r.Class != ClassBotDetection {
			continue
		}
		if r.OS != OSWindows || !r.Gone2021 {
			t.Errorf("%s: bot rows are Windows-only and all stopped by 2021", r.Domain)
		}
		if len(r.Probes) != 1 || r.Probes[0].Scheme != "http" || len(r.Probes[0].Ports) != 7 {
			t.Errorf("%s: bot probe shape wrong: %+v", r.Domain, r.Probes)
		}
	}
}

func TestTop2020LAN(t *testing.T) {
	rows := Top2020LAN()
	if len(rows) != 9 {
		t.Fatalf("2020 LAN sites = %d, want 9 (Table 6)", len(rows))
	}
	dev := 0
	for _, r := range rows {
		addr := netip.MustParseAddr(r.Addr)
		if !addr.IsPrivate() {
			t.Errorf("%s: %s is not RFC1918", r.Domain, r.Addr)
		}
		if r.DevError {
			dev++
		}
	}
	if dev != 6 {
		t.Errorf("LAN dev errors = %d, want 6 (§4.3)", dev)
	}
}

func TestTop2021Headline(t *testing.T) {
	rows := Top2021Localhost()
	if len(rows) != 82 {
		t.Fatalf("2021 localhost sites = %d, want 82 (§4.1)", len(rows))
	}
	if n := len(Top2021NewLocalhost()); n != 40 {
		t.Errorf("new 2021 sites = %d, want 40 (19 + 21, §4.1)", n)
	}
	if n := len(Top2021ContinuingLocalhost()); n != 42 {
		t.Errorf("continuing sites = %d, want 42", n)
	}
	w, l, m := osTotals(rows)
	if w != Top2021WindowsSites || l != Top2021LinuxSites {
		t.Errorf("per-OS totals = W%d L%d, want W%d L%d (Figure 9)", w, l, Top2021WindowsSites, Top2021LinuxSites)
	}
	if m != 0 {
		t.Errorf("2021 crawl had no Mac vantage but %d rows have Mac activity", m)
	}
}

func TestTop2021NoBotDetection(t *testing.T) {
	// "we do not observe sites making bot detection requests during our
	// 2021 top 100K crawl" (§4.3.2).
	for _, r := range Top2021Localhost() {
		if r.Class == ClassBotDetection {
			t.Errorf("%s: bot detection should be absent in 2021", r.Domain)
		}
	}
}

func TestTop2021LAN(t *testing.T) {
	rows := Top2021LAN()
	if len(rows) != 8 {
		t.Fatalf("2021 LAN sites = %d, want 8 (Table 10)", len(rows))
	}
	// Exactly one site continues from 2020 (§4.1): unib.ac.id.
	continuing := 0
	names2020 := map[string]bool{}
	for _, r := range Top2020LAN() {
		if !r.Gone2021 {
			names2020[r.Domain] = true
		}
	}
	for _, r := range rows {
		if names2020[r.Domain] {
			continuing++
			if r.Domain != "unib.ac.id" {
				t.Errorf("unexpected continuing LAN site %s", r.Domain)
			}
		}
		if r.OS.Has(OSMac) {
			t.Errorf("%s: Mac activity impossible in 2021", r.Domain)
		}
	}
	if continuing != 1 {
		t.Errorf("continuing LAN sites = %d, want 1", continuing)
	}
}

func TestMaliciousLocalhostHeadline(t *testing.T) {
	rows := MaliciousLocalhost()
	if len(rows) != 151 {
		t.Fatalf("malicious localhost sites = %d, want 151 (§4.1)", len(rows))
	}
	venn := vennOf(rows)
	for region, want := range MaliciousVenn {
		if venn[region] != want {
			t.Errorf("region %v = %d, want %d (Figure 2b)", region, venn[region], want)
		}
	}
	w, l, m := osTotals(rows)
	if w != 98 || l != 125 || m != 86 {
		t.Errorf("per-OS totals = W%d L%d M%d, want W98 L125 M86", w, l, m)
	}
}

func TestMaliciousCategoriesAndClasses(t *testing.T) {
	byCat := map[string]int{}
	tmCloners := 0
	devErr := 0
	for _, r := range MaliciousLocalhost() {
		if r.Category == "" {
			t.Errorf("%s: malicious row missing category", r.Domain)
		}
		byCat[r.Category]++
		if r.Class == ClassFraudDetection {
			tmCloners++
			if r.Category != "phishing" {
				t.Errorf("%s: ThreatMetrix traffic on malicious sites comes from phishing clones", r.Domain)
			}
		}
		if r.Class == ClassDevError {
			devErr++
		}
	}
	if tmCloners != 13 {
		t.Errorf("ThreatMetrix-cloning phishing sites = %d, want 13 (Table 8)", tmCloners)
	}
	if byCat["abuse"] != 4 {
		t.Errorf("abuse rows = %d, want 4 (Table 8)", byCat["abuse"])
	}
	// "we attribute more than 90% of the localhost activity on malicious
	// webpages to this [developer error] behavior class" (§4.3.4).
	if frac := float64(devErr) / 151; frac <= 0.9 {
		t.Errorf("dev-error fraction = %.2f, want > 0.90", frac)
	}
	// No internal network attacks were found (§6).
	for _, r := range MaliciousLocalhost() {
		if r.Class == ClassBotDetection {
			t.Errorf("%s: no bot detection was observed on malicious pages", r.Domain)
		}
	}
}

func TestMaliciousLAN(t *testing.T) {
	rows := MaliciousLAN()
	if len(rows) != 9 {
		t.Fatalf("malicious LAN sites = %d, want 9 (Table 9)", len(rows))
	}
	var w, l, m int
	for _, r := range rows {
		if r.OS.Has(OSWindows) {
			w++
		}
		if r.OS.Has(OSLinux) {
			l++
		}
		if r.OS.Has(OSMac) {
			m++
		}
	}
	// Table 2 LAN row: malware 8/7/7 plus abuse 1/1/1.
	if w != 9 || l != 8 || m != 8 {
		t.Errorf("LAN per-OS = W%d L%d M%d, want W9 L8 M8 (Table 2)", w, l, m)
	}
}

func TestTable1RowsInternallyConsistent(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("Table 1 has 8 rows, got %d", len(rows))
	}
	for _, r := range rows {
		errSum := r.NameNotResolved + r.ConnRefused + r.ConnReset + r.CertCNInvalid + r.Others
		if errSum != r.Failed {
			t.Errorf("%s/%v: error breakdown sums to %d, failed = %d", r.Crawl, r.OS, errSum, r.Failed)
		}
		if r.Crawl != CrawlMalicious && r.Total() != 100000 {
			t.Errorf("%s/%v: total = %d, want 100000", r.Crawl, r.OS, r.Total())
		}
		if frac := float64(r.NameNotResolved) / float64(r.Failed); frac < 0.85 {
			t.Errorf("%s/%v: DNS failures are ~90%% of errors, got %.2f", r.Crawl, r.OS, frac)
		}
	}
}

func TestTable2Population(t *testing.T) {
	total := 0
	for _, c := range Table2() {
		total += c.Sites
	}
	if total != 144925 {
		t.Errorf("malicious population = %d, want 144925 (~145K)", total)
	}
}

func TestHeadlinesMatchRowData(t *testing.T) {
	for _, h := range Headlines() {
		var gotLH, gotLAN int
		switch h.Crawl {
		case CrawlTop2020:
			gotLH, gotLAN = len(Top2020Localhost()), len(Top2020LAN())
		case CrawlTop2021:
			gotLH, gotLAN = len(Top2021Localhost()), len(Top2021LAN())
		case CrawlMalicious:
			gotLH, gotLAN = len(MaliciousLocalhost()), len(MaliciousLAN())
		}
		if gotLH != h.Localhost || gotLAN != h.LAN {
			t.Errorf("%s: rows (%d, %d) disagree with headline (%d, %d)", h.Crawl, gotLH, gotLAN, h.Localhost, h.LAN)
		}
	}
}

func TestOSSetBasics(t *testing.T) {
	if OSAll.Count() != 3 || OSWL.Count() != 2 || OSNone.Count() != 0 {
		t.Error("OSSet.Count wrong")
	}
	if OSWL.String() != "W L" || OSMac.String() != "M" || OSNone.String() != "-" {
		t.Error("OSSet.String wrong")
	}
	if !OSAll.Has(OSWM) || OSWL.Has(OSMac) {
		t.Error("OSSet.Has wrong")
	}
}

func TestPortRange(t *testing.T) {
	ps := PortRange(6463, 6472)
	if len(ps) != 10 || ps[0] != 6463 || ps[9] != 6472 {
		t.Errorf("PortRange = %v", ps)
	}
	if got := PortRange(5, 5); len(got) != 1 || got[0] != 5 {
		t.Errorf("single-port range = %v", got)
	}
	if got := PortRange(9, 7); len(got) != 3 {
		t.Errorf("reversed range = %v", got)
	}
}

func TestLocalhostRowPorts(t *testing.T) {
	r := LocalhostRow{Probes: []Probe{
		{Scheme: "wss", Ports: []uint16{31029, 10531, 31027}},
		{Scheme: "https", Ports: []uint16{10531, 14440}},
	}}
	ports := r.Ports()
	want := []uint16{10531, 14440, 31027, 31029}
	if len(ports) != len(want) {
		t.Fatalf("Ports() = %v", ports)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("Ports() = %v, want %v", ports, want)
		}
	}
}

func TestProbePortsWithinTable4ForAntiAbuse(t *testing.T) {
	for _, r := range Top2020Localhost() {
		if r.Class != ClassFraudDetection && r.Class != ClassBotDetection {
			continue
		}
		for _, port := range r.Ports() {
			found := false
			for _, p := range append(append([]uint16{}, threatMetrixPorts...), bigIPPorts...) {
				if p == port {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: anti-abuse probe port %d not in Table 4 sets", r.Domain, port)
			}
		}
	}
}

func TestSyntheticFillerNamesAreMarked(t *testing.T) {
	synthetic := 0
	for _, r := range MaliciousLocalhost() {
		if strings.HasSuffix(r.Domain, ".example") && strings.HasPrefix(r.Domain, "wp") {
			synthetic++
			if r.Class != ClassDevError || r.Category != "malware" {
				t.Errorf("%s: synthetic filler must be malware dev-error", r.Domain)
			}
		}
	}
	if synthetic != 92 {
		t.Errorf("synthetic filler rows = %d, want 92 (151 - 59 named)", synthetic)
	}
}

func TestTable3ListsDeriveFromRows(t *testing.T) {
	// The published Table 3 columns must be exactly the ten
	// lowest-ranked rows active on the respective OS.
	type ranked struct {
		rank   int
		domain string
	}
	var win, lin []ranked
	for _, r := range Top2020Localhost() {
		if r.OS.Has(OSWindows) {
			win = append(win, ranked{r.Rank, r.Domain})
		}
		if r.OS.Has(OSLinux) {
			lin = append(lin, ranked{r.Rank, r.Domain})
		}
	}
	sortRanked := func(rs []ranked) {
		sort.Slice(rs, func(i, j int) bool { return rs[i].rank < rs[j].rank })
	}
	sortRanked(win)
	sortRanked(lin)
	for i, want := range Table3Windows2020 {
		if win[i].domain != want {
			t.Errorf("Table 3 Windows[%d] = %s, want %s", i, win[i].domain, want)
		}
	}
	for i, want := range Table3LinuxMac2020 {
		if lin[i].domain != want {
			t.Errorf("Table 3 Linux/Mac[%d] = %s, want %s", i, lin[i].domain, want)
		}
	}
}

func TestLoginExtensionDomainsDisjointFromPaperRows(t *testing.T) {
	// The §6 extension sites must never collide with the paper's own
	// ground truth: they exist precisely because the paper's
	// landing-page crawl could not see them.
	paper := map[string]bool{}
	for _, r := range Top2020Localhost() {
		paper[r.Domain] = true
	}
	for _, r := range Top2021Localhost() {
		paper[r.Domain] = true
	}
	ranks := map[int]bool{}
	for domain, rank := range LoginOnlyThreatMetrix {
		if paper[domain] {
			t.Errorf("%s: extension domain collides with paper ground truth", domain)
		}
		if rank < 1 || rank > 100000 {
			t.Errorf("%s: rank %d outside top 100K", domain, rank)
		}
		if ranks[rank] {
			t.Errorf("duplicate extension rank %d", rank)
		}
		ranks[rank] = true
	}
}
