// Package longitudinal compares the two top-list measurements taken
// half a year apart, reproducing the §4.1 churn analysis: which sites
// kept generating local traffic, which stopped, which started, and
// which could not be compared because they entered or left the Tranco
// list between snapshots.
package longitudinal

import (
	"sort"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// Transition labels one site's trajectory between the crawls.
type Transition int

// Transitions.
const (
	// Continued: active in both measurements.
	Continued Transition = iota
	// Stopped: active in 2020, crawled in 2021, quiet in 2021.
	Stopped
	// Started: crawled in 2020 without activity, active in 2021.
	Started
	// EnteredList: active in 2021 but absent from the 2020 snapshot.
	EnteredList
	// LeftList: active in 2020 but absent from the 2021 snapshot.
	LeftList
)

// String names the transition.
func (t Transition) String() string {
	switch t {
	case Continued:
		return "continued"
	case Stopped:
		return "stopped"
	case Started:
		return "started"
	case EnteredList:
		return "entered-list"
	case LeftList:
		return "left-list"
	default:
		return "unknown"
	}
}

// SiteChurn is one site's longitudinal record.
type SiteChurn struct {
	Domain     string
	Transition Transition
	// Rank2020 and Rank2021 are the Tranco ranks where crawled (0 when
	// the domain was not in that snapshot).
	Rank2020 int
	Rank2021 int
	// Class2020 and Class2021 are the behavior classifications where
	// active.
	Class2020 groundtruth.Class
	Class2021 groundtruth.Class
	has2020   bool
	has2021   bool
}

// Report is the full churn summary for one destination class.
type Report struct {
	Dest  string
	Sites []SiteChurn
	// Counts indexes sites by transition.
	Counts map[Transition]int
}

// Compare builds the longitudinal report for one destination
// ("localhost" or "lan") from a store containing both top-list crawls.
func Compare(st *store.Store, dest string) *Report {
	active2020 := analysis.LocalSites(st, groundtruth.CrawlTop2020, dest)
	active2021 := analysis.LocalSites(st, groundtruth.CrawlTop2021, dest)
	ix := pipeline.IndexFor(st)
	crawled2020 := ix.CrawledDomains(groundtruth.CrawlTop2020)
	crawled2021 := ix.CrawledDomains(groundtruth.CrawlTop2021)

	churn := map[string]*SiteChurn{}
	for _, s := range active2020 {
		churn[s.Domain] = &SiteChurn{
			Domain: s.Domain, Rank2020: s.Rank, Class2020: s.Verdict.Class, has2020: true,
		}
	}
	for _, s := range active2021 {
		c := churn[s.Domain]
		if c == nil {
			c = &SiteChurn{Domain: s.Domain}
			churn[s.Domain] = c
		}
		c.Rank2021 = s.Rank
		c.Class2021 = s.Verdict.Class
		c.has2021 = true
	}

	rep := &Report{Dest: dest, Counts: map[Transition]int{}}
	for _, c := range churn {
		switch {
		case c.has2020 && c.has2021:
			c.Transition = Continued
		case c.has2020 && !crawled2021[c.Domain]:
			c.Transition = LeftList
		case c.has2020:
			c.Transition = Stopped
		case c.has2021 && !crawled2020[c.Domain]:
			c.Transition = EnteredList
		default:
			c.Transition = Started
		}
		rep.Counts[c.Transition]++
		rep.Sites = append(rep.Sites, *c)
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		if rep.Sites[i].Transition != rep.Sites[j].Transition {
			return rep.Sites[i].Transition < rep.Sites[j].Transition
		}
		return rep.Sites[i].Domain < rep.Sites[j].Domain
	})
	return rep
}

// ClassShift tallies class changes among continued sites — e.g. the
// paper's observation that bot detection disappeared entirely between
// the crawls would appear as zero continued bot-detection sites.
func (r *Report) ClassShift() map[[2]groundtruth.Class]int {
	out := map[[2]groundtruth.Class]int{}
	for _, s := range r.Sites {
		if s.Transition == Continued {
			out[[2]groundtruth.Class{s.Class2020, s.Class2021}]++
		}
	}
	return out
}
