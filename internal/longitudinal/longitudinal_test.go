package longitudinal

import (
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// bothCrawls holds a 10K-domain crawl of both top-list snapshots on the
// OSes each covers.
var bothCrawls = func() *store.Store {
	st := store.New()
	for _, crawl := range []groundtruth.CrawlID{groundtruth.CrawlTop2020, groundtruth.CrawlTop2021} {
		if _, err := crawler.RunAll(crawler.Config{
			Crawl: crawl, Scale: 0.1, Seed: 0xD1CE, Workers: 4,
		}, st); err != nil {
			panic(err)
		}
	}
	return st
}()

func TestCompareLocalhostChurn(t *testing.T) {
	rep := Compare(bothCrawls, "localhost")
	if len(rep.Sites) == 0 {
		t.Fatal("no churn records")
	}
	byDomain := map[string]SiteChurn{}
	for _, s := range rep.Sites {
		byDomain[s.Domain] = s
	}

	// ebay.com scans in both years.
	if c, ok := byDomain["ebay.com"]; !ok || c.Transition != Continued {
		t.Errorf("ebay.com churn = %+v, want continued", byDomain["ebay.com"])
	}
	// sbi.co.in (rank 8608, bot detection) stopped by 2021 (§4.3.2).
	if c, ok := byDomain["sbi.co.in"]; !ok || c.Transition != Stopped {
		t.Errorf("sbi.co.in churn = %+v, want stopped", byDomain["sbi.co.in"])
	}
	if c := byDomain["sbi.co.in"]; c.Class2020 != groundtruth.ClassBotDetection {
		t.Errorf("sbi.co.in 2020 class = %v", c.Class2020)
	}
	// cibc.com (rank 2912) started in 2021 after being crawled quietly
	// in 2020 (Table 7, no plus marker).
	if c, ok := byDomain["cibc.com"]; !ok || c.Transition != Started {
		t.Errorf("cibc.com churn = %+v, want started", byDomain["cibc.com"])
	}
	// ppsimg.com was not in the 2020 snapshot but is active in 2021
	// within the top 10K? (rank 34989 — outside this scale; pick
	// soliqservis.uz rank 44280 — also outside.) iqiyi.com (rank 592)
	// was in both lists; qy.net (7664) too. Within the top 10K the
	// entered-list case needs a (+) domain: betfair.com is modeled as
	// re-ranked (8173), so it appears continued here.
	if c, ok := byDomain["betfair.com"]; !ok || c.Transition != Continued {
		t.Errorf("betfair.com churn = %+v, want continued", byDomain["betfair.com"])
	}
	// rkn.gov.ru (rank 17827) left the list... outside 10% top-10K
	// scale. zakupki.gov.ru (rank 7700) is marked not-in-2021-list.
	if c, ok := byDomain["zakupki.gov.ru"]; !ok || c.Transition != LeftList {
		t.Errorf("zakupki.gov.ru churn = %+v, want left-list", byDomain["zakupki.gov.ru"])
	}

	// No bot detection survives into 2021.
	for pair, n := range rep.ClassShift() {
		if pair[1] == groundtruth.ClassBotDetection && n > 0 {
			t.Errorf("bot detection must not continue into 2021: %v × %d", pair, n)
		}
	}
}

func TestCompareCountsConsistent(t *testing.T) {
	rep := Compare(bothCrawls, "localhost")
	total := 0
	for _, n := range rep.Counts {
		total += n
	}
	if total != len(rep.Sites) {
		t.Errorf("counts sum %d != %d sites", total, len(rep.Sites))
	}
	if rep.Counts[Continued] == 0 || rep.Counts[Stopped] == 0 {
		t.Errorf("expected both continued and stopped sites: %v", rep.Counts)
	}
}

func TestTransitionStrings(t *testing.T) {
	want := map[Transition]string{
		Continued: "continued", Stopped: "stopped", Started: "started",
		EnteredList: "entered-list", LeftList: "left-list", Transition(99): "unknown",
	}
	for tr, s := range want {
		if tr.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(tr), tr.String(), s)
		}
	}
}

func TestCompareEmptyStore(t *testing.T) {
	rep := Compare(store.New(), "localhost")
	if len(rep.Sites) != 0 {
		t.Errorf("empty store produced %d records", len(rep.Sites))
	}
}

func TestLANChurnSingleContinuing(t *testing.T) {
	rep := Compare(bothCrawls, "lan")
	continuing := []string{}
	for _, s := range rep.Sites {
		if s.Transition == Continued {
			continuing = append(continuing, s.Domain)
		}
	}
	// §4.1: only unib.ac.id performed LAN requests in both crawls —
	// but at 10% scale its rank (56325/47356) is out of range, so no
	// LAN site should continue here.
	for _, d := range continuing {
		if d != "unib.ac.id" {
			t.Errorf("unexpected continuing LAN site %s", d)
		}
	}
}
