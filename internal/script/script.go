// Package script implements the page-behavior language the synthetic
// web embeds in its documents' inline <script> elements. It is the
// JS-analogue of the code the paper observed: programs that wait for
// page load, branch on the visitor's platform, fetch resources, open
// WebSockets, and run port scans against local addresses.
//
// The language is line-oriented and deterministic:
//
//	# ThreatMetrix profiling blob
//	after 10200ms
//	if os == windows
//	  scan wss localhost 3389,5279,5900-5903,7070 path / gap 60ms as blob:threatmetrix:ebay-us.com
//	endif
//	get https://cdn1.webstatic.example/a.js as parser
//	ws ws://localhost:28337/ as script:native-app
//
// A Program compiles once and evaluates against an environment (the
// visitor's OS) into the scheduled requests (webdoc.Step) the browser
// executes — the same compiled form the fast path uses, which is what
// makes the HTML path's equivalence testable.
package script

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

// Env is the evaluation environment.
type Env struct {
	// OS is the lower-cased platform name: "windows", "linux", "mac".
	OS string
}

// stmtKind discriminates statements.
type stmtKind int

const (
	stmtAfter stmtKind = iota
	stmtWait
	stmtGet
	stmtWS
	stmtScan
	stmtIf
	stmtEndif
)

type stmt struct {
	kind stmtKind
	line int

	dur       time.Duration // after/wait
	url       string        // get/ws
	initiator string

	// scan fields
	scheme string
	host   string
	ports  []uint16
	path   string
	gap    time.Duration

	// if fields
	negate bool
	osName string
}

// Program is a compiled behavior script.
type Program struct {
	stmts []stmt
}

// Parse compiles source text. Errors carry 1-based line numbers.
func Parse(src string) (*Program, error) {
	p := &Program{}
	depth := 0
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		s := stmt{line: lineNo + 1}
		var err error
		switch fields[0] {
		case "after", "wait":
			if len(fields) != 2 {
				return nil, errAt(lineNo, "%s needs a duration", fields[0])
			}
			s.kind = stmtAfter
			if fields[0] == "wait" {
				s.kind = stmtWait
			}
			s.dur, err = time.ParseDuration(fields[1])
			if err != nil || s.dur < 0 {
				return nil, errAt(lineNo, "bad duration %q", fields[1])
			}
		case "get", "ws":
			if len(fields) < 2 {
				return nil, errAt(lineNo, "%s needs a URL", fields[0])
			}
			s.kind = stmtGet
			if fields[0] == "ws" {
				s.kind = stmtWS
			}
			s.url = fields[1]
			if s.initiator, err = parseAs(fields[2:]); err != nil {
				return nil, errAt(lineNo, "%v", err)
			}
		case "scan":
			if err := parseScan(fields[1:], &s); err != nil {
				return nil, errAt(lineNo, "%v", err)
			}
		case "if":
			// if os == windows | if os != mac
			if len(fields) != 4 || fields[1] != "os" || (fields[2] != "==" && fields[2] != "!=") {
				return nil, errAt(lineNo, "if syntax: if os ==|!= <windows|linux|mac>")
			}
			s.kind = stmtIf
			s.negate = fields[2] == "!="
			s.osName = strings.ToLower(fields[3])
			depth++
		case "endif":
			if depth == 0 {
				return nil, errAt(lineNo, "endif without if")
			}
			s.kind = stmtEndif
			depth--
		default:
			return nil, errAt(lineNo, "unknown statement %q", fields[0])
		}
		p.stmts = append(p.stmts, s)
	}
	if depth != 0 {
		return nil, fmt.Errorf("script: unclosed if")
	}
	return p, nil
}

func errAt(lineNo int, format string, args ...any) error {
	return fmt.Errorf("script: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
}

// parseAs handles the optional trailing "as <initiator>".
func parseAs(rest []string) (string, error) {
	if len(rest) == 0 {
		return "", nil
	}
	if rest[0] != "as" || len(rest) != 2 {
		return "", fmt.Errorf("trailing tokens: %v (want `as <initiator>`)", rest)
	}
	return rest[1], nil
}

// parseScan handles: <scheme> <host> <ports> [path <p>] [gap <d>] [as <i>]
func parseScan(fields []string, s *stmt) error {
	if len(fields) < 3 {
		return fmt.Errorf("scan syntax: scan <scheme> <host> <ports> [path /] [gap 50ms] [as x]")
	}
	s.kind = stmtScan
	s.scheme = fields[0]
	switch s.scheme {
	case "http", "https", "ws", "wss":
	default:
		return fmt.Errorf("bad scan scheme %q", s.scheme)
	}
	s.host = fields[1]
	ports, err := ParsePorts(fields[2])
	if err != nil {
		return err
	}
	s.ports = ports
	s.path = "/"
	rest := fields[3:]
	for len(rest) > 0 {
		switch rest[0] {
		case "path":
			if len(rest) < 2 {
				return fmt.Errorf("path needs a value")
			}
			s.path = rest[1]
			rest = rest[2:]
		case "gap":
			if len(rest) < 2 {
				return fmt.Errorf("gap needs a duration")
			}
			d, err := time.ParseDuration(rest[1])
			if err != nil || d < 0 {
				return fmt.Errorf("bad gap %q", rest[1])
			}
			s.gap = d
			rest = rest[2:]
		case "as":
			if len(rest) != 2 {
				return fmt.Errorf("as must be last and take one value")
			}
			s.initiator = rest[1]
			rest = nil
		default:
			return fmt.Errorf("unknown scan option %q", rest[0])
		}
	}
	return nil
}

// ParsePorts parses "3389,5900-5903,7070" into an expanded list.
func ParsePorts(spec string) ([]uint16, error) {
	var out []uint16
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.ParseUint(lo, 10, 16)
			b, err2 := strconv.ParseUint(hi, 10, 16)
			if err1 != nil || err2 != nil || b < a {
				return nil, fmt.Errorf("bad port range %q", part)
			}
			for p := a; p <= b; p++ {
				out = append(out, uint16(p))
			}
			continue
		}
		p, err := strconv.ParseUint(part, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad port %q", part)
		}
		out = append(out, uint16(p))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty port list")
	}
	return out, nil
}

// Run evaluates the program, returning the requests it schedules.
func (p *Program) Run(env Env) []webdoc.Step {
	var out []webdoc.Step
	var clock time.Duration
	skipDepth := 0 // >0 while inside a false branch
	osName := strings.ToLower(env.OS)
	for _, s := range p.stmts {
		switch s.kind {
		case stmtIf:
			if skipDepth > 0 {
				skipDepth++
				continue
			}
			match := osName == s.osName
			if s.negate {
				match = !match
			}
			if !match {
				skipDepth = 1
			}
		case stmtEndif:
			if skipDepth > 0 {
				skipDepth--
			}
		case stmtAfter:
			if skipDepth == 0 {
				clock = s.dur
			}
		case stmtWait:
			if skipDepth == 0 {
				clock += s.dur
			}
		case stmtGet, stmtWS:
			if skipDepth == 0 {
				out = append(out, webdoc.Step{At: clock, URL: s.url, Initiator: s.initiator})
			}
		case stmtScan:
			if skipDepth == 0 {
				at := clock
				for _, port := range s.ports {
					out = append(out, webdoc.Step{
						At:        at,
						URL:       fmt.Sprintf("%s://%s:%d%s", s.scheme, s.host, port, s.path),
						Initiator: s.initiator,
					})
					at += s.gap
				}
			}
		}
	}
	return out
}
