package script

import "testing"

// FuzzParse hardens the page-script parser: arbitrary text must never
// panic, and any accepted program must evaluate deterministically on
// every platform without emitting malformed steps.
func FuzzParse(f *testing.F) {
	f.Add("after 1s\nget http://localhost:80/\n")
	f.Add("if os == windows\nscan wss localhost 1-10 gap 5ms as x\nendif")
	f.Add("wait 10ms\nws ws://127.0.0.1:6463/?v=1 as blob")
	f.Add("if os != linux\nendif\n# comment")
	f.Add("garbage in")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			src = src[:1<<14]
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		for _, os := range []string{"windows", "linux", "mac", "beos"} {
			a := prog.Run(Env{OS: os})
			b := prog.Run(Env{OS: os})
			if len(a) != len(b) {
				t.Fatal("nondeterministic evaluation")
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("nondeterministic step")
				}
				if a[i].URL == "" || a[i].At < 0 {
					t.Fatalf("malformed step: %+v", a[i])
				}
			}
		}
	})
}
