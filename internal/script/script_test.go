package script

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseAndRunThreatMetrixProgram(t *testing.T) {
	src := `
# ThreatMetrix profiling blob
after 10200ms
if os == windows
  scan wss localhost 3389,5900-5903,7070 path / gap 60ms as blob:threatmetrix:ebay-us.com
endif
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	win := prog.Run(Env{OS: "windows"})
	if len(win) != 6 {
		t.Fatalf("windows steps = %d, want 6", len(win))
	}
	if win[0].URL != "wss://localhost:3389/" || win[0].At != 10200*time.Millisecond {
		t.Errorf("first step = %+v", win[0])
	}
	if win[1].At != 10260*time.Millisecond {
		t.Errorf("gap pacing wrong: %+v", win[1])
	}
	if win[5].URL != "wss://localhost:7070/" {
		t.Errorf("last step = %+v", win[5])
	}
	for _, s := range win {
		if s.Initiator != "blob:threatmetrix:ebay-us.com" {
			t.Errorf("initiator = %q", s.Initiator)
		}
	}
	if lin := prog.Run(Env{OS: "linux"}); len(lin) != 0 {
		t.Errorf("linux steps = %d, want 0 (if-gated)", len(lin))
	}
}

func TestRunConditionals(t *testing.T) {
	src := `
if os != mac
  get http://localhost:8000/setuid
endif
if os == mac
  get https://127.0.0.1:9000/sockjs-node/info
endif
wait 500ms
ws ws://localhost:28337/ as script:native-app
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mac := prog.Run(Env{OS: "Mac"})
	if len(mac) != 2 || !strings.Contains(mac[0].URL, "sockjs-node") {
		t.Fatalf("mac steps = %+v", mac)
	}
	win := prog.Run(Env{OS: "windows"})
	if len(win) != 2 || !strings.Contains(win[0].URL, "setuid") {
		t.Fatalf("windows steps = %+v", win)
	}
	// wait accumulates from the (unset) base.
	if win[1].At != 500*time.Millisecond || win[1].Initiator != "script:native-app" {
		t.Errorf("ws step = %+v", win[1])
	}
}

func TestNestedIfSkipping(t *testing.T) {
	src := `
if os == windows
  if os == windows
    get http://localhost:1/a
  endif
endif
if os == linux
  if os == windows
    get http://localhost:1/never
  endif
  get http://localhost:1/linux
endif
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Run(Env{OS: "windows"}); len(got) != 1 || !strings.HasSuffix(got[0].URL, "/a") {
		t.Errorf("windows = %+v", got)
	}
	if got := prog.Run(Env{OS: "linux"}); len(got) != 1 || !strings.HasSuffix(got[0].URL, "/linux") {
		t.Errorf("linux = %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"after",                        // missing duration
		"after xyz",                    // bad duration
		"after -5ms",                   // negative
		"get",                          // missing URL
		"get http://x extra tokens",    // trailing garbage
		"scan",                         // missing everything
		"scan ftp localhost 80",        // bad scheme
		"scan http localhost nope",     // bad ports
		"scan http localhost 80 path",  // dangling option
		"scan http localhost 80 gap x", // bad gap
		"if os > windows",              // bad operator
		"endif",                        // unbalanced
		"if os == windows",             // unclosed
		"launch missiles",              // unknown statement
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", src)
		}
	}
}

func TestParsePorts(t *testing.T) {
	got, err := ParsePorts("3389,5900-5903,7070")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{3389, 5900, 5901, 5902, 5903, 7070}
	if len(got) != len(want) {
		t.Fatalf("ports = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ports = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "5-3", "70000", "1-99999"} {
		if _, err := ParsePorts(bad); err == nil {
			t.Errorf("ParsePorts(%q) accepted invalid input", bad)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	prog, err := Parse("\n# only comments\n\n   \n# more\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Run(Env{OS: "linux"}); len(got) != 0 {
		t.Errorf("comment-only program produced steps: %+v", got)
	}
}

// Property: Run is deterministic and never emits steps before the
// current clock offset implied by the program text.
func TestQuickRunDeterministic(t *testing.T) {
	src := `
after 1s
get http://localhost:8080/a
wait 250ms
get http://localhost:8080/b
scan http 127.0.0.1 80,443 gap 10ms
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := func(osPick uint8) bool {
		env := Env{OS: []string{"windows", "linux", "mac"}[int(osPick)%3]}
		a := prog.Run(env)
		b := prog.Run(env)
		if len(a) != len(b) || len(a) != 4 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if a[i].At < time.Second {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
