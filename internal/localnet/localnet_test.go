package localnet

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/netlog"
)

func TestClassifyHost(t *testing.T) {
	cases := map[string]Dest{
		"localhost":       DestLocalhost,
		"app.localhost":   DestLocalhost,
		"127.0.0.1":       DestLocalhost,
		"127.255.255.254": DestLocalhost,
		"::1":             DestLocalhost,
		"10.0.0.200":      DestLAN,
		"10.193.31.212":   DestLAN,
		"172.16.205.110":  DestLAN,
		"172.31.255.1":    DestLAN,
		"192.168.64.160":  DestLAN,
		"fd00::1":         DestLAN,
		"fe80::1":         DestLAN,
		"172.32.0.1":      DestPublic, // just past 172.16/12
		"192.169.0.1":     DestPublic,
		"11.0.0.1":        DestPublic,
		"8.8.8.8":         DestPublic,
		"ebay.com":        DestPublic,
		"2001:db8::1":     DestPublic,
		"localhost.com":   DestPublic, // suffix must be a label boundary
	}
	for host, want := range cases {
		if got := ClassifyHost(host); got != want {
			t.Errorf("ClassifyHost(%q) = %v, want %v", host, got, want)
		}
	}
}

func TestDestString(t *testing.T) {
	if DestLocalhost.String() != "localhost" || DestLAN.String() != "lan" || DestPublic.String() != "public" {
		t.Error("Dest labels wrong")
	}
}

// buildLog assembles a small visit log.
func buildLog() *netlog.Log {
	r := netlog.NewRecorder()

	// Public landing page — not a finding.
	landing := r.NewSource(netlog.SourceURLRequest)
	r.Begin(0, netlog.TypeRequestAlive, landing, map[string]any{"url": "https://ebay.com/", "initiator": "navigation"})
	r.End(800*time.Millisecond, netlog.TypeRequestAlive, landing, map[string]any{"status_code": 200})

	// ThreatMetrix WSS probe — a localhost finding.
	tm := r.NewSource(netlog.SourceWebSocket)
	r.Begin(10*time.Second, netlog.TypeRequestAlive, tm, map[string]any{"url": "wss://localhost:5939/", "initiator": "blob:threatmetrix", "sop_exempt": true})
	r.Point(10*time.Second+2*time.Millisecond, netlog.TypeURLRequestError, tm, map[string]any{"net_error": "ERR_CONNECTION_REFUSED"})

	// LAN image fetch — a LAN finding.
	lan := r.NewSource(netlog.SourceURLRequest)
	r.Begin(3*time.Second, netlog.TypeRequestAlive, lan, map[string]any{"url": "http://10.193.31.212/system/x.png", "initiator": "img"})
	r.Point(3*time.Second+9*time.Second, netlog.TypeSocketTimeout, lan, nil)

	// Redirect to loopback — a via-redirect finding on a public flow.
	red := r.NewSource(netlog.SourceURLRequest)
	r.Begin(1*time.Second, netlog.TypeRequestAlive, red, map[string]any{"url": "http://romadecade.org/", "initiator": "navigation"})
	r.Point(1200*time.Millisecond, netlog.TypeURLRequestRedirect, red, map[string]any{"location": "http://127.0.0.1/"})

	// Browser-internal loopback ping — must be filtered out.
	bg := r.NewSource(netlog.SourceBrowser)
	r.Begin(500*time.Millisecond, netlog.TypeBrowserBackgroundRequest, bg, map[string]any{"url": "http://127.0.0.1:49152/crashpad/ping"})
	r.End(520*time.Millisecond, netlog.TypeBrowserBackgroundRequest, bg, nil)

	return r.Log()
}

func TestFromLogExtraction(t *testing.T) {
	findings := FromLog(buildLog())
	if len(findings) != 3 {
		t.Fatalf("findings = %d, want 3 (wss probe, LAN image, redirect target)", len(findings))
	}
	byURL := map[string]Finding{}
	for _, f := range findings {
		byURL[f.URL] = f
	}

	tm, ok := byURL["wss://localhost:5939/"]
	if !ok {
		t.Fatal("localhost WSS probe missing")
	}
	if tm.Dest != DestLocalhost || !tm.SOPExempt || tm.Port != 5939 || tm.NetError != "ERR_CONNECTION_REFUSED" {
		t.Errorf("WSS finding wrong: %+v", tm)
	}
	if tm.Initiator != "blob:threatmetrix" || tm.At != 10*time.Second {
		t.Errorf("WSS provenance wrong: %+v", tm)
	}

	lan, ok := byURL["http://10.193.31.212/system/x.png"]
	if !ok {
		t.Fatal("LAN finding missing")
	}
	if lan.Dest != DestLAN || lan.Port != 80 || lan.SOPExempt {
		t.Errorf("LAN finding wrong: %+v", lan)
	}

	red, ok := byURL["http://127.0.0.1/"]
	if !ok {
		t.Fatal("redirect-target finding missing")
	}
	if !red.ViaRedirect || red.Dest != DestLocalhost {
		t.Errorf("redirect finding wrong: %+v", red)
	}
}

func TestFromLogFiltersBrowserTraffic(t *testing.T) {
	for _, f := range FromLog(buildLog()) {
		if f.URL == "http://127.0.0.1:49152/crashpad/ping" {
			t.Fatal("browser-internal loopback traffic must be filtered by source")
		}
	}
}

func TestFromLogEmptyAndPublicOnly(t *testing.T) {
	if got := FromLog(&netlog.Log{}); len(got) != 0 {
		t.Errorf("empty log produced %d findings", len(got))
	}
	r := netlog.NewRecorder()
	src := r.NewSource(netlog.SourceURLRequest)
	r.Begin(0, netlog.TypeRequestAlive, src, map[string]any{"url": "https://cdn0.webstatic.example/a.js"})
	if got := FromLog(r.Log()); len(got) != 0 {
		t.Errorf("public-only log produced %d findings", len(got))
	}
}

func TestParseTargetPortDefaults(t *testing.T) {
	cases := []struct {
		url  string
		port uint16
		path string
	}{
		{"http://127.0.0.1/", 80, "/"},
		{"https://192.168.0.1/x", 443, "/x"},
		{"ws://localhost/", 80, "/"},
		{"wss://localhost/", 443, "/"},
		{"http://localhost:8080/a?b=1", 8080, "/a?b=1"},
	}
	for _, c := range cases {
		_, _, port, path, ok := parseTarget(c.url)
		if !ok || port != c.port || path != c.path {
			t.Errorf("parseTarget(%q) = port %d path %q ok=%v", c.url, port, path, ok)
		}
	}
	if _, _, _, _, ok := parseTarget("not a url\x7f://"); ok {
		t.Error("garbage URL accepted")
	}
	if _, _, _, _, ok := parseTarget("/relative/only"); ok {
		t.Error("schemeless URL accepted")
	}
}

// Property: ClassifyHost over all IPv4 space agrees with the RFC1918 +
// loopback definitions.
func TestQuickClassifyIPv4(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		host := netipString(a, b, c, d)
		got := ClassifyHost(host)
		isLoop := a == 127
		isPriv := a == 10 || (a == 172 && b >= 16 && b <= 31) || (a == 192 && b == 168)
		switch {
		case isLoop:
			return got == DestLocalhost
		case isPriv:
			return got == DestLAN
		default:
			return got == DestPublic
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func netipString(a, b, c, d byte) string {
	return itoa(a) + "." + itoa(b) + "." + itoa(c) + "." + itoa(d)
}

func itoa(b byte) string {
	digits := "0123456789"
	if b < 10 {
		return string(digits[b])
	}
	if b < 100 {
		return string(digits[b/10]) + string(digits[b%10])
	}
	return string(digits[b/100]) + string(digits[(b/10)%10]) + string(digits[b%10])
}

func TestFromLogOptsAblations(t *testing.T) {
	log := buildLog()
	// Ignoring redirect targets drops exactly the via-redirect finding.
	noRedirect := FromLogOpts(log, Options{IgnoreRedirectTargets: true})
	if len(noRedirect) != 2 {
		t.Errorf("IgnoreRedirectTargets: %d findings, want 2", len(noRedirect))
	}
	for _, f := range noRedirect {
		if f.ViaRedirect {
			t.Errorf("redirect finding leaked: %+v", f)
		}
	}
	// Keeping browser traffic admits the crashpad ping.
	withBrowser := FromLogOpts(log, Options{KeepBrowserTraffic: true})
	if len(withBrowser) != 4 {
		t.Errorf("KeepBrowserTraffic: %d findings, want 4", len(withBrowser))
	}
}
