// Package localnet is the study's core detector: given the NetLog
// telemetry of a page visit, it identifies every request destined for
// the visitor's localhost (the localhost domain or loopback addresses,
// 127.0.0.0/8 and ::1) or LAN (the IANA-reserved private ranges of
// RFC1918 for IPv4 and their IPv6 analogues), including requests that
// only appear as redirect targets, while filtering out traffic the
// browser itself generates.
package localnet

import (
	"net/netip"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
)

// Dest classifies a request destination.
type Dest int

// Destination classes.
const (
	DestPublic Dest = iota
	DestLocalhost
	DestLAN
)

// String returns the class label used in reports.
func (d Dest) String() string {
	switch d {
	case DestLocalhost:
		return "localhost"
	case DestLAN:
		return "lan"
	default:
		return "public"
	}
}

// ClassifyHost classifies a URL host component (a name or an IP
// literal).
func ClassifyHost(host string) Dest {
	if host == "localhost" || strings.HasSuffix(host, ".localhost") {
		return DestLocalhost
	}
	ip, err := netip.ParseAddr(strings.Trim(host, "[]"))
	if err != nil {
		return DestPublic
	}
	switch {
	case ip.IsLoopback():
		return DestLocalhost
	case ip.Is4() && ip.IsPrivate():
		return DestLAN
	case ip.Is6() && (ip.IsPrivate() || ip.IsLinkLocalUnicast()):
		// Unique-local (fc00::/7) and link-local (fe80::/10) are the
		// IPv6 LAN analogues. The paper observed no IPv6 local traffic,
		// but the detector covers it.
		return DestLAN
	default:
		return DestPublic
	}
}

// Finding is one local-network request extracted from a visit's
// telemetry.
type Finding struct {
	// URL is the full local request URL.
	URL string
	// Scheme, Host, Port, Path are its components.
	Scheme simnet.Scheme
	Host   string
	Port   uint16
	Path   string
	// Dest is localhost or LAN.
	Dest Dest
	// At is the absolute visit time at which the request began.
	At time.Duration
	// Initiator is the page element that issued the request.
	Initiator string
	// NetError is the transport failure, if any.
	NetError string
	// StatusCode is the response status, if one arrived.
	StatusCode int
	// ViaRedirect marks findings detected as a redirect target rather
	// than a direct request ("websites can send a request to a local
	// resource, even if they can never receive the response", §3.1).
	ViaRedirect bool
	// SOPExempt marks WebSocket traffic, which the Same-Origin Policy
	// does not bind.
	SOPExempt bool
}

// parseTarget destructures a URL into finding components; ok is false
// for unparseable or schemeless URLs.
func parseTarget(raw string) (scheme simnet.Scheme, host string, port uint16, path string, ok bool) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Hostname() == "" {
		return "", "", 0, "", false
	}
	scheme = simnet.Scheme(strings.ToLower(u.Scheme))
	host = u.Hostname()
	port = scheme.DefaultPort()
	if p := u.Port(); p != "" {
		if n, err := strconv.ParseUint(p, 10, 16); err == nil {
			port = uint16(n)
		}
	}
	path = u.RequestURI()
	if path == "" {
		path = "/"
	}
	return scheme, host, port, path, true
}

// Options tune the detector, primarily for ablation studies; the zero
// value disables nothing.
type Options struct {
	// IgnoreRedirectTargets drops findings that appear only as redirect
	// destinations. The paper deliberately includes them (§3.1).
	IgnoreRedirectTargets bool
	// KeepBrowserTraffic retains requests from BROWSER sources. The
	// paper filters them out by event source; keeping them shows the
	// false positives that filter prevents.
	KeepBrowserTraffic bool
}

// FromLog extracts all local-network findings from one visit's NetLog
// with the paper's configuration: browser-generated traffic (BROWSER
// sources) excluded, redirect targets included.
func FromLog(log *netlog.Log) []Finding {
	return FromLogOpts(log, Options{})
}

// FromLogOpts extracts findings under explicit detector options.
func FromLogOpts(log *netlog.Log, opts Options) []Finding {
	var out []Finding
	for _, flow := range log.FlowStats() {
		if flow.Source.Type == netlog.SourceBrowser && !opts.KeepBrowserTraffic {
			continue
		}
		if f, ok := findingFromURL(flow.URL, &flow, false); ok {
			out = append(out, f)
		}
		if opts.IgnoreRedirectTargets {
			continue
		}
		for _, loc := range flow.RedirectedTo {
			if f, ok := findingFromURL(loc, &flow, true); ok {
				out = append(out, f)
			}
		}
	}
	return out
}

func findingFromURL(raw string, flow *netlog.Flow, viaRedirect bool) (Finding, bool) {
	scheme, host, port, path, ok := parseTarget(raw)
	if !ok {
		return Finding{}, false
	}
	dest := ClassifyHost(host)
	if dest == DestPublic {
		return Finding{}, false
	}
	return Finding{
		URL:         raw,
		Scheme:      scheme,
		Host:        host,
		Port:        port,
		Path:        path,
		Dest:        dest,
		At:          flow.Start,
		Initiator:   flow.Initiator,
		NetError:    flow.NetError,
		StatusCode:  flow.StatusCode,
		ViaRedirect: viaRedirect,
		SOPExempt:   scheme.WebSocket(),
	}, true
}
