package pipeline

import (
	"sort"
	"sync"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// SiteActivity aggregates one site's local-network behavior across the
// OSes of a crawl — the unit every per-site table and figure consumes.
type SiteActivity struct {
	Domain   string
	Rank     int
	Category string
	// OS is the set of OSes on which local traffic was observed.
	OS groundtruth.OSSet
	// FirstDelay maps each active OS to the delay between page fetch
	// and the first local request (the Figure 5 observable).
	FirstDelay map[groundtruth.OSSet]time.Duration
	// Requests are all local requests across OSes.
	Requests []store.LocalRequest
	// Verdict is the classified behavior.
	Verdict classify.Verdict
}

// CrawlRow is one measured row of Table 1.
type CrawlRow struct {
	Crawl           groundtruth.CrawlID
	OS              string
	Successful      int
	Failed          int
	NameNotResolved int
	ConnRefused     int
	ConnReset       int
	CertCNInvalid   int
	Others          int
}

// Total returns attempted loads.
func (r CrawlRow) Total() int { return r.Successful + r.Failed }

// CategoryRow is one measured row of Table 2.
type CategoryRow struct {
	Category    string
	Sites       int
	SuccessRate map[string]float64 // by OS name
	Localhost   map[string]int     // localhost-active sites by OS name
	LAN         map[string]int
}

// Rollup is the Figure 4/8 protocol/port breakdown for one OS.
type Rollup struct {
	OS    groundtruth.OSSet
	Total int
	// ByScheme counts requests per scheme; Ports lists the distinct
	// ports seen per scheme, sorted.
	ByScheme map[string]int
	Ports    map[string][]uint16
}

// SOPUsage quantifies the §4.2 Same-Origin-Policy exemption of one
// crawl's local traffic in a destination class.
type SOPUsage struct {
	Requests       int
	ExemptRequests int
	Sites          int
	ExemptSites    int
	// WSSRequests counts the secured-WebSocket subset.
	WSSRequests int
}

// DomainView is one domain's full telemetry across every mounted crawl
// — the /v1/site observable. Record slices preserve store insertion
// order (a domain maps to one shard, so the order is well defined).
type DomainView struct {
	Pages  []store.PageRecord
	Locals []store.LocalRequest
	// Localhost and LAN split Locals by destination class.
	Localhost []store.LocalRequest
	LAN       []store.LocalRequest
	// LocalhostVerdict and LANVerdict are nil when the domain produced
	// no traffic in that class.
	LocalhostVerdict *classify.Verdict
	LANVerdict       *classify.Verdict
}

// SiteIndex is the materialized aggregate view over one store: site
// activity and verdicts per (crawl, destination), the Table 1 and
// Table 2 rows, the Figure 4/8 rollups, SOP usage, crawled-domain
// sets, and per-domain views.
//
// The index is incremental: the first aggregate query builds it in one
// pass over the store, and subsequent queries absorb only the records
// committed since — the store's per-shard high-water delta — so a
// single-visit ingest costs O(delta), not a full O(store) rebuild. A
// BumpGeneration (an out-of-band mutation signal) still forces a full
// rebuild. Everything handed to callers is copy-on-write: an apply
// never mutates a map or a visible slice element a previous accessor
// call may have returned.
//
// All returned aggregates are snapshots to treat as read-only; nested
// maps and slices are shared with the index.
type SiteIndex struct {
	st    *store.Store
	mu    sync.RWMutex
	state *indexState
}

// indices maps each store to its index, so every consumer — report
// CLIs, the query engine, the HTTP service — shares one materialized
// view per store. Entries pin the store and the index until
// ReleaseIndex; long-lived processes that open many stores must
// release the ones they drop.
var indices sync.Map // *store.Store → *SiteIndex

// IndexFor returns the shared site index of a store, creating it on
// first use. The index itself is cheap; building its state is deferred
// until the first aggregate query.
func IndexFor(st *store.Store) *SiteIndex {
	if v, ok := indices.Load(st); ok {
		return v.(*SiteIndex)
	}
	v, _ := indices.LoadOrStore(st, &SiteIndex{st: st})
	return v.(*SiteIndex)
}

// ReleaseIndex drops the shared index of a store, letting both be
// collected. Serving layers and CLIs call it when they unmount a
// store; a subsequent IndexFor simply builds a fresh index.
func ReleaseIndex(st *store.Store) {
	indices.Delete(st)
}

// NewIndex returns a private, unshared index over a store — the same
// machinery as IndexFor without the process-wide registry. Benchmarks
// and one-shot consumers use it to control index lifetime explicitly.
func NewIndex(st *store.Store) *SiteIndex {
	return &SiteIndex{st: st}
}

// siteKey addresses per-(crawl, dest) aggregates.
type siteKey struct {
	crawl string
	dest  string
}

// rollupKey addresses per-(crawl, OS, dest) aggregates.
type rollupKey struct {
	crawl string
	os    string
	dest  string
}

// groupKey addresses one site's activity in one (crawl, dest).
type groupKey struct {
	crawl  string
	dest   string
	domain string
}

type crawlOSKey struct {
	crawl string
	os    string
}

type catOSKey struct {
	cat string
	os  string
}

// rollupAccum is the mutable accumulator behind one materialized
// Rollup. Its maps are never handed out, so applies mutate them freely.
type rollupAccum struct {
	os       groundtruth.OSSet
	total    int
	byScheme map[string]int
	ports    map[string]map[uint16]bool
}

// sopAccum is the mutable accumulator behind one SOPUsage.
type sopAccum struct {
	requests, exemptReqs, wss int
	seen, exempt              map[string]bool
}

// indexState is the index's incremental state: mutable accumulators
// that absorb deltas, plus the materialized views accessors read.
// Accumulator internals are private to the index; materialized views
// may be handed out and are therefore replaced — never mutated — when
// their inputs change.
type indexState struct {
	mark store.Mark

	// Accumulators.
	groups    map[groupKey]*SiteActivity
	perSite   map[siteKey]map[string]*SiteActivity
	rollups   map[rollupKey]*rollupAccum
	sop       map[siteKey]*sopAccum
	crawlRows map[crawlOSKey]*CrawlRow
	attempted map[catOSKey]int
	succeeded map[catOSKey]int
	catSites  map[string]map[string]bool

	// Views (handed out by accessors, possibly kept past the lock).
	sites      map[siteKey][]SiteActivity
	rollupView map[rollupKey]Rollup
	sopView    map[siteKey]SOPUsage
	crawlTable []CrawlRow
	catRows    []CategoryRow
	crawled    map[string]map[string]bool
	domains    map[string]*DomainView
	unknownOS  map[string]int
}

func newIndexState() *indexState {
	return &indexState{
		groups:     map[groupKey]*SiteActivity{},
		perSite:    map[siteKey]map[string]*SiteActivity{},
		rollups:    map[rollupKey]*rollupAccum{},
		sop:        map[siteKey]*sopAccum{},
		crawlRows:  map[crawlOSKey]*CrawlRow{},
		attempted:  map[catOSKey]int{},
		succeeded:  map[catOSKey]int{},
		catSites:   map[string]map[string]bool{},
		sites:      map[siteKey][]SiteActivity{},
		rollupView: map[rollupKey]Rollup{},
		sopView:    map[siteKey]SOPUsage{},
		crawled:    map[string]map[string]bool{},
		domains:    map[string]*DomainView{},
		unknownOS:  map[string]int{},
	}
}

// refresh brings the index current: a no-op when the store's epochs
// match the state's mark, a delta apply when only the generation moved,
// a full rebuild when the force epoch moved (or on first use). At most
// one goroutine rebuilds at a time; readers pay one RLock on the fast
// path.
func (ix *SiteIndex) refresh() {
	gen, force := ix.st.Generation(), ix.st.ForceGeneration()
	ix.mu.RLock()
	current := ix.state != nil && ix.state.mark.Generation() == gen && ix.state.mark.ForceGeneration() == force
	ix.mu.RUnlock()
	if current {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	gen, force = ix.st.Generation(), ix.st.ForceGeneration()
	if ix.state != nil && ix.state.mark.Generation() == gen && ix.state.mark.ForceGeneration() == force {
		return
	}
	if ix.state == nil || ix.state.mark.ForceGeneration() != force {
		ix.state = buildState(ix.st)
		return
	}
	ix.state.applyDelta(ix.st)
}

// LocalSites returns a crawl's local-active sites for one destination
// class ("localhost" or "lan"), classified and sorted by rank then
// domain.
func (ix *SiteIndex) LocalSites(crawl groundtruth.CrawlID, dest string) []SiteActivity {
	ix.refresh()
	ix.mu.RLock()
	sites := ix.state.sites[siteKey{string(crawl), dest}]
	// The outer slice is copied so callers may filter or re-sort;
	// element internals stay shared.
	out := make([]SiteActivity, len(sites))
	copy(out, sites)
	ix.mu.RUnlock()
	return out
}

// SchemeRollup returns the Figure 4/8 breakdown for one (crawl, OS,
// destination).
func (ix *SiteIndex) SchemeRollup(crawl groundtruth.CrawlID, osName, dest string) Rollup {
	ix.refresh()
	ix.mu.RLock()
	r, ok := ix.state.rollupView[rollupKey{string(crawl), osName, dest}]
	ix.mu.RUnlock()
	if ok {
		return r
	}
	set, _ := groundtruth.OSSetFromLabel(osName)
	return Rollup{OS: set, ByScheme: map[string]int{}, Ports: map[string][]uint16{}}
}

// SOPUsage returns the §4.2 exemption summary for one (crawl,
// destination).
func (ix *SiteIndex) SOPUsage(crawl groundtruth.CrawlID, dest string) SOPUsage {
	ix.refresh()
	ix.mu.RLock()
	u := ix.state.sopView[siteKey{string(crawl), dest}]
	ix.mu.RUnlock()
	return u
}

// CrawlTable returns the Table 1 rows in the paper's order.
func (ix *SiteIndex) CrawlTable() []CrawlRow {
	ix.refresh()
	ix.mu.RLock()
	rows := ix.state.crawlTable
	out := make([]CrawlRow, len(rows))
	copy(out, rows)
	ix.mu.RUnlock()
	return out
}

// MaliciousSummary returns the Table 2 rows.
func (ix *SiteIndex) MaliciousSummary() []CategoryRow {
	ix.refresh()
	ix.mu.RLock()
	rows := ix.state.catRows
	out := make([]CategoryRow, len(rows))
	copy(out, rows)
	ix.mu.RUnlock()
	return out
}

// CrawledDomains returns the set of domains with a page record in the
// crawl (the longitudinal denominators). The map is shared; treat it
// as read-only.
func (ix *SiteIndex) CrawledDomains(crawl groundtruth.CrawlID) map[string]bool {
	ix.refresh()
	ix.mu.RLock()
	m, ok := ix.state.crawled[string(crawl)]
	ix.mu.RUnlock()
	if ok {
		return m
	}
	return map[string]bool{}
}

// Site returns one domain's cross-crawl view; the zero view for
// domains the store has never seen.
func (ix *SiteIndex) Site(domain string) DomainView {
	ix.refresh()
	ix.mu.RLock()
	v, ok := ix.state.domains[domain]
	var out DomainView
	if ok {
		out = *v
	}
	ix.mu.RUnlock()
	return out
}

// UnknownOSLabels tallies store records whose OS label maps to no
// known platform — telemetry that would otherwise silently vanish
// from every per-OS aggregate (it still counts toward OS-agnostic
// totals). Keys are the offending labels.
func (ix *SiteIndex) UnknownOSLabels() map[string]int {
	ix.refresh()
	ix.mu.RLock()
	m := ix.state.unknownOS
	ix.mu.RUnlock()
	return m
}

// applyCtx tracks one apply's dirtiness and copy-on-write state. With
// cow set (delta applies), anything a past accessor call may have
// handed out is cloned before its first mutation this apply; a full
// build (no readers can hold prior state) skips the cloning.
type applyCtx struct {
	s   *indexState
	cow bool

	dirtyGroups  map[groupKey]bool
	dirtySites   map[siteKey]bool
	dirtyRollups map[rollupKey]bool
	// dirtyDomains marks destination classes needing a verdict
	// recompute: bit 1 localhost, bit 2 lan.
	dirtyDomains map[string]uint8

	fdCloned      map[groupKey]bool // FirstDelay maps cloned this apply
	crawledCloned map[string]bool   // crawled inner maps cloned this apply
	unknownCloned bool

	pagesTouched     bool
	maliciousTouched bool
}

func newApplyCtx(s *indexState, cow bool) *applyCtx {
	return &applyCtx{
		s: s, cow: cow,
		dirtyGroups:   map[groupKey]bool{},
		dirtySites:    map[siteKey]bool{},
		dirtyRollups:  map[rollupKey]bool{},
		dirtyDomains:  map[string]uint8{},
		fdCloned:      map[groupKey]bool{},
		crawledCloned: map[string]bool{},
	}
}

// noteUnknownOS counts an unmappable OS label, cloning the handed-out
// tally map once per apply.
func (c *applyCtx) noteUnknownOS(label string) {
	if c.cow && !c.unknownCloned {
		clone := make(map[string]int, len(c.s.unknownOS)+1)
		for k, v := range c.s.unknownOS {
			clone[k] = v
		}
		c.s.unknownOS = clone
	}
	c.unknownCloned = true
	c.s.unknownOS[label]++
}

// domainView returns (creating if needed) the mutable view of a
// domain. In-place slice appends on a view are safe: accessor copies
// carry their own lengths and never read past them, and verdicts are
// replaced by pointer, never mutated through one.
func (c *applyCtx) domainView(domain string) *DomainView {
	dv := c.s.domains[domain]
	if dv == nil {
		dv = &DomainView{}
		c.s.domains[domain] = dv
	}
	return dv
}

// applyLocal absorbs one local request into the accumulators.
func (c *applyCtx) applyLocal(rp *store.LocalRequest) {
	s := c.s
	r := *rp
	bit, err := groundtruth.OSSetFromLabel(r.OS)
	if err != nil {
		c.noteUnknownOS(r.OS)
	}

	gk := groupKey{r.Crawl, r.Dest, r.Domain}
	sk := siteKey{r.Crawl, r.Dest}
	sa := s.groups[gk]
	if sa == nil {
		sa = &SiteActivity{
			Domain:     r.Domain,
			Rank:       r.Rank,
			Category:   r.Category,
			FirstDelay: map[groundtruth.OSSet]time.Duration{},
		}
		s.groups[gk] = sa
		if s.perSite[sk] == nil {
			s.perSite[sk] = map[string]*SiteActivity{}
		}
		s.perSite[sk][r.Domain] = sa
		c.fdCloned[gk] = true // a fresh map was never handed out
	}
	sa.OS |= bit
	if cur, ok := sa.FirstDelay[bit]; !ok || r.Delay < cur {
		if c.cow && !c.fdCloned[gk] {
			clone := make(map[groundtruth.OSSet]time.Duration, len(sa.FirstDelay)+1)
			for k, v := range sa.FirstDelay {
				clone[k] = v
			}
			sa.FirstDelay = clone
			c.fdCloned[gk] = true
		}
		sa.FirstDelay[bit] = r.Delay
	}
	sa.Requests = append(sa.Requests, r)
	c.dirtyGroups[gk] = true
	c.dirtySites[sk] = true
	if r.Crawl == string(groundtruth.CrawlMalicious) {
		c.maliciousTouched = true
	}

	rk := rollupKey{r.Crawl, r.OS, r.Dest}
	ru := s.rollups[rk]
	if ru == nil {
		ru = &rollupAccum{os: bit, byScheme: map[string]int{}, ports: map[string]map[uint16]bool{}}
		s.rollups[rk] = ru
	}
	ru.total++
	ru.byScheme[r.Scheme]++
	if ru.ports[r.Scheme] == nil {
		ru.ports[r.Scheme] = map[uint16]bool{}
	}
	ru.ports[r.Scheme][r.Port] = true
	c.dirtyRollups[rk] = true

	u := s.sop[sk]
	if u == nil {
		u = &sopAccum{seen: map[string]bool{}, exempt: map[string]bool{}}
		s.sop[sk] = u
	}
	u.requests++
	u.seen[r.Domain] = true
	if r.SOPExempt {
		u.exemptReqs++
		u.exempt[r.Domain] = true
	}
	if r.Scheme == "wss" {
		u.wss++
	}

	dv := c.domainView(r.Domain)
	dv.Locals = append(dv.Locals, r)
	if r.Dest == "lan" {
		dv.LAN = append(dv.LAN, r)
		c.dirtyDomains[r.Domain] |= 2
	} else {
		dv.Localhost = append(dv.Localhost, r)
		c.dirtyDomains[r.Domain] |= 1
	}
}

// applyPage absorbs one page record into the accumulators.
func (c *applyCtx) applyPage(pp *store.PageRecord) {
	s := c.s
	p := *pp
	if _, err := groundtruth.OSSetFromLabel(p.OS); err != nil {
		c.noteUnknownOS(p.OS)
	}
	c.pagesTouched = true

	ck := crawlOSKey{p.Crawl, p.OS}
	row := s.crawlRows[ck]
	if row == nil {
		row = &CrawlRow{Crawl: groundtruth.CrawlID(p.Crawl), OS: p.OS}
		s.crawlRows[ck] = row
	}
	if p.OK() {
		row.Successful++
	} else {
		row.Failed++
		switch p.Err {
		case "ERR_NAME_NOT_RESOLVED":
			row.NameNotResolved++
		case "ERR_CONNECTION_REFUSED":
			row.ConnRefused++
		case "ERR_CONNECTION_RESET":
			row.ConnReset++
		case "ERR_CERT_COMMON_NAME_INVALID":
			row.CertCNInvalid++
		default:
			row.Others++
		}
	}

	m := s.crawled[p.Crawl]
	if m == nil {
		m = map[string]bool{}
		s.crawled[p.Crawl] = m
		c.crawledCloned[p.Crawl] = true
	}
	if !m[p.Domain] {
		// First sighting of the domain in this crawl: the handed-out
		// set must not grow under a reader iterating it lock-free.
		if c.cow && !c.crawledCloned[p.Crawl] {
			clone := make(map[string]bool, len(m)+1)
			for k := range m {
				clone[k] = true
			}
			m = clone
			s.crawled[p.Crawl] = m
			c.crawledCloned[p.Crawl] = true
		}
		m[p.Domain] = true
	}

	if p.Crawl == string(groundtruth.CrawlMalicious) {
		s.attempted[catOSKey{p.Category, p.OS}]++
		if p.OK() {
			s.succeeded[catOSKey{p.Category, p.OS}]++
		}
		if s.catSites[p.Category] == nil {
			s.catSites[p.Category] = map[string]bool{}
		}
		s.catSites[p.Category][p.Domain] = true
		c.maliciousTouched = true
	}

	dv := c.domainView(p.Domain)
	dv.Pages = append(dv.Pages, p)
}

// finalize re-derives every view whose accumulators this apply dirtied:
// verdicts for touched groups and domains, sorted per-(crawl, dest)
// site slices, rollup and SOP views, and — when pages or malicious
// records moved — the Table 1 and Table 2 rows.
func (c *applyCtx) finalize() {
	s := c.s
	for gk := range c.dirtyGroups {
		sa := s.groups[gk]
		sa.Verdict = Classify(gk.dest, sa.Requests, nil)
	}
	for sk := range c.dirtySites {
		doms := s.perSite[sk]
		sites := make([]SiteActivity, 0, len(doms))
		for _, sa := range doms {
			sites = append(sites, *sa)
		}
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Rank != sites[j].Rank {
				return sites[i].Rank < sites[j].Rank
			}
			return sites[i].Domain < sites[j].Domain
		})
		s.sites[sk] = sites

		if u := s.sop[sk]; u != nil {
			s.sopView[sk] = SOPUsage{
				Requests:       u.requests,
				ExemptRequests: u.exemptReqs,
				Sites:          len(u.seen),
				ExemptSites:    len(u.exempt),
				WSSRequests:    u.wss,
			}
		}
	}
	for rk := range c.dirtyRollups {
		ru := s.rollups[rk]
		view := Rollup{
			OS:       ru.os,
			Total:    ru.total,
			ByScheme: make(map[string]int, len(ru.byScheme)),
			Ports:    make(map[string][]uint16, len(ru.ports)),
		}
		for scheme, n := range ru.byScheme {
			view.ByScheme[scheme] = n
		}
		for scheme, ports := range ru.ports {
			ps := make([]uint16, 0, len(ports))
			for p := range ports {
				ps = append(ps, p)
			}
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
			view.Ports[scheme] = ps
		}
		s.rollupView[rk] = view
	}
	for domain, bits := range c.dirtyDomains {
		dv := s.domains[domain]
		if bits&1 != 0 {
			v := Classify("localhost", dv.Localhost, nil)
			dv.LocalhostVerdict = &v
		}
		if bits&2 != 0 {
			v := Classify("lan", dv.LAN, nil)
			dv.LANVerdict = &v
		}
	}
	if c.pagesTouched {
		rows := make([]CrawlRow, 0, len(s.crawlRows))
		for _, row := range s.crawlRows {
			rows = append(rows, *row)
		}
		sort.Slice(rows, func(i, j int) bool {
			a, b := &rows[i], &rows[j]
			if a.Crawl != b.Crawl {
				return a.Crawl < b.Crawl
			}
			if osOrder(a.OS) != osOrder(b.OS) {
				return osOrder(a.OS) < osOrder(b.OS)
			}
			return a.OS < b.OS
		})
		s.crawlTable = rows
	}
	if c.maliciousTouched {
		s.rebuildCatRows()
	}
}

// rebuildCatRows re-derives the Table 2 rows from the malicious-crawl
// accumulators and the (already re-sorted) malicious site slices.
func (s *indexState) rebuildCatRows() {
	byCat := map[string]*CategoryRow{}
	for cat, sites := range s.catSites {
		byCat[cat] = &CategoryRow{
			Category:    cat,
			Sites:       len(sites),
			SuccessRate: map[string]float64{},
			Localhost:   map[string]int{},
			LAN:         map[string]int{},
		}
		for _, os := range []string{"Windows", "Linux", "Mac"} {
			if n := s.attempted[catOSKey{cat, os}]; n > 0 {
				byCat[cat].SuccessRate[os] = float64(s.succeeded[catOSKey{cat, os}]) / float64(n)
			}
		}
	}
	for _, dest := range []string{"localhost", "lan"} {
		for _, sa := range s.sites[siteKey{string(groundtruth.CrawlMalicious), dest}] {
			row := byCat[sa.Category]
			if row == nil {
				continue
			}
			for osName, bit := range map[string]groundtruth.OSSet{
				"Windows": groundtruth.OSWindows, "Linux": groundtruth.OSLinux, "Mac": groundtruth.OSMac,
			} {
				if sa.OS.Has(bit) {
					if dest == "lan" {
						row.LAN[osName]++
					} else {
						row.Localhost[osName]++
					}
				}
			}
		}
	}
	s.catRows = nil
	for _, cat := range []string{"malware", "abuse", "phishing"} {
		if row := byCat[cat]; row != nil {
			s.catRows = append(s.catRows, *row)
		}
	}
}

// applyDelta absorbs the records committed since the state's mark. The
// caller holds the index write lock.
func (s *indexState) applyDelta(st *store.Store) {
	c := newApplyCtx(s, true)
	s.mark = st.DeltaSince(s.mark, c.applyPage, c.applyLocal, nil)
	c.finalize()
}

// buildState materializes the full index in one delta from the zero
// mark, plus a counting pre-pass that sizes every per-domain slice
// exactly so the build never reallocates (unsized appends there
// dominated rebuild cost).
func buildState(st *store.Store) *indexState {
	s := newIndexState()

	type domainCounts struct{ pages, locals, localhost, lan int }
	counts := map[string]*domainCounts{}
	countFor := func(domain string) *domainCounts {
		c := counts[domain]
		if c == nil {
			c = &domainCounts{}
			counts[domain] = c
		}
		return c
	}
	st.ForEachLocal(func(r *store.LocalRequest) {
		c := countFor(r.Domain)
		c.locals++
		if r.Dest == "lan" {
			c.lan++
		} else {
			c.localhost++
		}
	})
	st.ForEachPage(func(p *store.PageRecord) {
		countFor(p.Domain).pages++
	})
	s.domains = make(map[string]*DomainView, len(counts))
	for domain, c := range counts {
		dv := &DomainView{}
		if c.pages > 0 {
			dv.Pages = make([]store.PageRecord, 0, c.pages)
		}
		if c.locals > 0 {
			dv.Locals = make([]store.LocalRequest, 0, c.locals)
		}
		if c.localhost > 0 {
			dv.Localhost = make([]store.LocalRequest, 0, c.localhost)
		}
		if c.lan > 0 {
			dv.LAN = make([]store.LocalRequest, 0, c.lan)
		}
		s.domains[domain] = dv
	}

	c := newApplyCtx(s, false)
	s.mark = st.DeltaSince(store.Mark{}, c.applyPage, c.applyLocal, nil)
	c.finalize()
	return s
}

func osOrder(os string) int {
	switch os {
	case "Windows":
		return 0
	case "Linux":
		return 1
	default:
		return 2
	}
}
