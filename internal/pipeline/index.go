package pipeline

import (
	"sort"
	"sync"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// SiteActivity aggregates one site's local-network behavior across the
// OSes of a crawl — the unit every per-site table and figure consumes.
type SiteActivity struct {
	Domain   string
	Rank     int
	Category string
	// OS is the set of OSes on which local traffic was observed.
	OS groundtruth.OSSet
	// FirstDelay maps each active OS to the delay between page fetch
	// and the first local request (the Figure 5 observable).
	FirstDelay map[groundtruth.OSSet]time.Duration
	// Requests are all local requests across OSes.
	Requests []store.LocalRequest
	// Verdict is the classified behavior.
	Verdict classify.Verdict
}

// CrawlRow is one measured row of Table 1.
type CrawlRow struct {
	Crawl           groundtruth.CrawlID
	OS              string
	Successful      int
	Failed          int
	NameNotResolved int
	ConnRefused     int
	ConnReset       int
	CertCNInvalid   int
	Others          int
}

// Total returns attempted loads.
func (r CrawlRow) Total() int { return r.Successful + r.Failed }

// CategoryRow is one measured row of Table 2.
type CategoryRow struct {
	Category    string
	Sites       int
	SuccessRate map[string]float64 // by OS name
	Localhost   map[string]int     // localhost-active sites by OS name
	LAN         map[string]int
}

// Rollup is the Figure 4/8 protocol/port breakdown for one OS.
type Rollup struct {
	OS    groundtruth.OSSet
	Total int
	// ByScheme counts requests per scheme; Ports lists the distinct
	// ports seen per scheme, sorted.
	ByScheme map[string]int
	Ports    map[string][]uint16
}

// SOPUsage quantifies the §4.2 Same-Origin-Policy exemption of one
// crawl's local traffic in a destination class.
type SOPUsage struct {
	Requests       int
	ExemptRequests int
	Sites          int
	ExemptSites    int
	// WSSRequests counts the secured-WebSocket subset.
	WSSRequests int
}

// DomainView is one domain's full telemetry across every mounted crawl
// — the /v1/site observable. Record slices preserve store insertion
// order (a domain maps to one shard, so the order is well defined).
type DomainView struct {
	Pages  []store.PageRecord
	Locals []store.LocalRequest
	// Localhost and LAN split Locals by destination class.
	Localhost []store.LocalRequest
	LAN       []store.LocalRequest
	// LocalhostVerdict and LANVerdict are nil when the domain produced
	// no traffic in that class.
	LocalhostVerdict *classify.Verdict
	LANVerdict       *classify.Verdict
}

// SiteIndex is the materialized aggregate view over one store: site
// activity and verdicts per (crawl, destination), the Table 1 and
// Table 2 rows, the Figure 4/8 rollups, SOP usage, crawled-domain
// sets, and per-domain views. It is built in one pass over the store
// and cached until the store's generation counter moves, so a full
// report run — which previously rescanned and reclassified the store
// once per table and figure — touches the raw records exactly once.
//
// All returned aggregates are snapshots to treat as read-only; nested
// maps and slices are shared with the index.
type SiteIndex struct {
	st   *store.Store
	mu   sync.RWMutex
	snap *indexSnapshot
}

// indices maps each store to its index, so every consumer — report
// CLIs, the query engine, the HTTP service — shares one materialized
// view per store. Entries live as long as the process; stores are
// few and long-lived in every production shape.
var indices sync.Map // *store.Store → *SiteIndex

// IndexFor returns the shared site index of a store, creating it on
// first use. The index itself is cheap; building its snapshot is
// deferred until the first aggregate query.
func IndexFor(st *store.Store) *SiteIndex {
	if v, ok := indices.Load(st); ok {
		return v.(*SiteIndex)
	}
	v, _ := indices.LoadOrStore(st, &SiteIndex{st: st})
	return v.(*SiteIndex)
}

// siteKey addresses per-(crawl, dest) aggregates.
type siteKey struct {
	crawl string
	dest  string
}

// rollupKey addresses per-(crawl, OS, dest) aggregates.
type rollupKey struct {
	crawl string
	os    string
	dest  string
}

// indexSnapshot is one immutable build of the aggregates.
type indexSnapshot struct {
	gen       uint64
	sites     map[siteKey][]SiteActivity
	rollups   map[rollupKey]Rollup
	sop       map[siteKey]SOPUsage
	crawlRows []CrawlRow
	catRows   []CategoryRow
	crawled   map[string]map[string]bool
	domains   map[string]*DomainView
	unknownOS map[string]int
}

// snapshot returns the current build, rebuilding if the store has
// mutated since. Reads take the fast path (one atomic load plus an
// RLock); at most one goroutine rebuilds at a time.
func (ix *SiteIndex) snapshot() *indexSnapshot {
	gen := ix.st.Generation()
	ix.mu.RLock()
	snap := ix.snap
	ix.mu.RUnlock()
	if snap != nil && snap.gen == gen {
		return snap
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// The generation is captured before scanning: a record committed
	// after the capture implies a later bump, so the next reader
	// rebuilds even if this build happened to observe the record.
	gen = ix.st.Generation()
	if ix.snap != nil && ix.snap.gen == gen {
		return ix.snap
	}
	ix.snap = buildSnapshot(ix.st, gen)
	return ix.snap
}

// LocalSites returns a crawl's local-active sites for one destination
// class ("localhost" or "lan"), classified and sorted by rank then
// domain.
func (ix *SiteIndex) LocalSites(crawl groundtruth.CrawlID, dest string) []SiteActivity {
	sites := ix.snapshot().sites[siteKey{string(crawl), dest}]
	// The outer slice is copied so callers may filter or re-sort;
	// element internals stay shared.
	out := make([]SiteActivity, len(sites))
	copy(out, sites)
	return out
}

// SchemeRollup returns the Figure 4/8 breakdown for one (crawl, OS,
// destination).
func (ix *SiteIndex) SchemeRollup(crawl groundtruth.CrawlID, osName, dest string) Rollup {
	snap := ix.snapshot()
	if r, ok := snap.rollups[rollupKey{string(crawl), osName, dest}]; ok {
		return r
	}
	set, _ := groundtruth.OSSetFromLabel(osName)
	return Rollup{OS: set, ByScheme: map[string]int{}, Ports: map[string][]uint16{}}
}

// SOPUsage returns the §4.2 exemption summary for one (crawl,
// destination).
func (ix *SiteIndex) SOPUsage(crawl groundtruth.CrawlID, dest string) SOPUsage {
	return ix.snapshot().sop[siteKey{string(crawl), dest}]
}

// CrawlTable returns the Table 1 rows in the paper's order.
func (ix *SiteIndex) CrawlTable() []CrawlRow {
	rows := ix.snapshot().crawlRows
	out := make([]CrawlRow, len(rows))
	copy(out, rows)
	return out
}

// MaliciousSummary returns the Table 2 rows.
func (ix *SiteIndex) MaliciousSummary() []CategoryRow {
	rows := ix.snapshot().catRows
	out := make([]CategoryRow, len(rows))
	copy(out, rows)
	return out
}

// CrawledDomains returns the set of domains with a page record in the
// crawl (the longitudinal denominators). The map is shared; treat it
// as read-only.
func (ix *SiteIndex) CrawledDomains(crawl groundtruth.CrawlID) map[string]bool {
	if m, ok := ix.snapshot().crawled[string(crawl)]; ok {
		return m
	}
	return map[string]bool{}
}

// Site returns one domain's cross-crawl view; the zero view for
// domains the store has never seen.
func (ix *SiteIndex) Site(domain string) DomainView {
	if v, ok := ix.snapshot().domains[domain]; ok {
		return *v
	}
	return DomainView{}
}

// UnknownOSLabels tallies store records whose OS label maps to no
// known platform — telemetry that would otherwise silently vanish
// from every per-OS aggregate (it still counts toward OS-agnostic
// totals). Keys are the offending labels.
func (ix *SiteIndex) UnknownOSLabels() map[string]int {
	return ix.snapshot().unknownOS
}

// buildSnapshot materializes every aggregate in one pass over locals
// and one over pages.
func buildSnapshot(st *store.Store, gen uint64) *indexSnapshot {
	snap := &indexSnapshot{
		gen:       gen,
		sites:     map[siteKey][]SiteActivity{},
		rollups:   map[rollupKey]Rollup{},
		sop:       map[siteKey]SOPUsage{},
		crawled:   map[string]map[string]bool{},
		domains:   map[string]*DomainView{},
		unknownOS: map[string]int{},
	}

	// Counting pass: size every per-domain slice exactly, so the build
	// passes below never reallocate. The per-domain views cover every
	// crawled domain, and unsized appends there dominated rebuild cost.
	type domainCounts struct{ pages, locals, localhost, lan int }
	counts := map[string]*domainCounts{}
	countFor := func(domain string) *domainCounts {
		c := counts[domain]
		if c == nil {
			c = &domainCounts{}
			counts[domain] = c
		}
		return c
	}
	st.ForEachLocal(func(r *store.LocalRequest) {
		c := countFor(r.Domain)
		c.locals++
		if r.Dest == "lan" {
			c.lan++
		} else {
			c.localhost++
		}
	})
	st.ForEachPage(func(p *store.PageRecord) {
		countFor(p.Domain).pages++
	})
	snap.domains = make(map[string]*DomainView, len(counts))
	for domain, c := range counts {
		dv := &DomainView{}
		if c.pages > 0 {
			dv.Pages = make([]store.PageRecord, 0, c.pages)
		}
		if c.locals > 0 {
			dv.Locals = make([]store.LocalRequest, 0, c.locals)
		}
		if c.localhost > 0 {
			dv.Localhost = make([]store.LocalRequest, 0, c.localhost)
		}
		if c.lan > 0 {
			dv.LAN = make([]store.LocalRequest, 0, c.lan)
		}
		snap.domains[domain] = dv
	}

	// Locals pass: per-(crawl, dest) site grouping, rollups, SOP usage,
	// and per-domain views, all in one shard-order scan.
	type groupKey struct {
		crawl  string
		dest   string
		domain string
	}
	groups := map[groupKey]*SiteActivity{}
	type sopSets struct{ seen, exempt map[string]bool }
	sopSites := map[siteKey]*sopSets{}
	portSets := map[rollupKey]map[string]map[uint16]bool{}
	st.ForEachLocal(func(rp *store.LocalRequest) {
		r := *rp
		bit, err := groundtruth.OSSetFromLabel(r.OS)
		if err != nil {
			snap.unknownOS[r.OS]++
		}

		gk := groupKey{r.Crawl, r.Dest, r.Domain}
		sa := groups[gk]
		if sa == nil {
			sa = &SiteActivity{
				Domain:     r.Domain,
				Rank:       r.Rank,
				Category:   r.Category,
				FirstDelay: map[groundtruth.OSSet]time.Duration{},
			}
			groups[gk] = sa
		}
		sa.OS |= bit
		if cur, ok := sa.FirstDelay[bit]; !ok || r.Delay < cur {
			sa.FirstDelay[bit] = r.Delay
		}
		sa.Requests = append(sa.Requests, r)

		rk := rollupKey{r.Crawl, r.OS, r.Dest}
		ru, ok := snap.rollups[rk]
		if !ok {
			ru = Rollup{OS: bit, ByScheme: map[string]int{}, Ports: map[string][]uint16{}}
			portSets[rk] = map[string]map[uint16]bool{}
		}
		ru.Total++
		ru.ByScheme[r.Scheme]++
		if portSets[rk][r.Scheme] == nil {
			portSets[rk][r.Scheme] = map[uint16]bool{}
		}
		portSets[rk][r.Scheme][r.Port] = true
		snap.rollups[rk] = ru

		sk := siteKey{r.Crawl, r.Dest}
		u := snap.sop[sk]
		ss := sopSites[sk]
		if ss == nil {
			ss = &sopSets{seen: map[string]bool{}, exempt: map[string]bool{}}
			sopSites[sk] = ss
		}
		u.Requests++
		ss.seen[r.Domain] = true
		if r.SOPExempt {
			u.ExemptRequests++
			ss.exempt[r.Domain] = true
		}
		if r.Scheme == "wss" {
			u.WSSRequests++
		}
		snap.sop[sk] = u

		// The nil guard covers records committed between the counting
		// and build passes (their slices just grow normally).
		dv := snap.domains[r.Domain]
		if dv == nil {
			dv = &DomainView{}
			snap.domains[r.Domain] = dv
		}
		dv.Locals = append(dv.Locals, r)
		if r.Dest == "lan" {
			dv.LAN = append(dv.LAN, r)
		} else {
			dv.Localhost = append(dv.Localhost, r)
		}
	})
	for rk, schemes := range portSets {
		ru := snap.rollups[rk]
		for scheme, ports := range schemes {
			for p := range ports {
				ru.Ports[scheme] = append(ru.Ports[scheme], p)
			}
			sort.Slice(ru.Ports[scheme], func(i, j int) bool { return ru.Ports[scheme][i] < ru.Ports[scheme][j] })
		}
	}
	for sk, ss := range sopSites {
		u := snap.sop[sk]
		u.Sites = len(ss.seen)
		u.ExemptSites = len(ss.exempt)
		snap.sop[sk] = u
	}

	// Classify each site group (no corroboration: the paper's tables
	// classify by network signature alone) and sort per (crawl, dest).
	for gk, sa := range groups {
		sa.Verdict = Classify(gk.dest, sa.Requests, nil)
		sk := siteKey{gk.crawl, gk.dest}
		snap.sites[sk] = append(snap.sites[sk], *sa)
	}
	for sk, sites := range snap.sites {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Rank != sites[j].Rank {
				return sites[i].Rank < sites[j].Rank
			}
			return sites[i].Domain < sites[j].Domain
		})
		snap.sites[sk] = sites
	}
	for _, dv := range snap.domains {
		if len(dv.Localhost) > 0 {
			v := Classify("localhost", dv.Localhost, nil)
			dv.LocalhostVerdict = &v
		}
		if len(dv.LAN) > 0 {
			v := Classify("lan", dv.LAN, nil)
			dv.LANVerdict = &v
		}
	}

	// Pages pass: Table 1 rows, the Table 2 load/success tallies,
	// crawled-domain sets, and per-domain views.
	type crawlOSKey struct {
		crawl string
		os    string
	}
	crawlRows := map[crawlOSKey]*CrawlRow{}
	type catOSKey struct {
		cat string
		os  string
	}
	attempted := map[catOSKey]int{}
	succeeded := map[catOSKey]int{}
	catSites := map[string]map[string]bool{}
	st.ForEachPage(func(pp *store.PageRecord) {
		p := *pp
		if _, err := groundtruth.OSSetFromLabel(p.OS); err != nil {
			snap.unknownOS[p.OS]++
		}
		ck := crawlOSKey{p.Crawl, p.OS}
		row := crawlRows[ck]
		if row == nil {
			row = &CrawlRow{Crawl: groundtruth.CrawlID(p.Crawl), OS: p.OS}
			crawlRows[ck] = row
		}
		if p.OK() {
			row.Successful++
		} else {
			row.Failed++
			switch p.Err {
			case "ERR_NAME_NOT_RESOLVED":
				row.NameNotResolved++
			case "ERR_CONNECTION_REFUSED":
				row.ConnRefused++
			case "ERR_CONNECTION_RESET":
				row.ConnReset++
			case "ERR_CERT_COMMON_NAME_INVALID":
				row.CertCNInvalid++
			default:
				row.Others++
			}
		}

		if snap.crawled[p.Crawl] == nil {
			snap.crawled[p.Crawl] = map[string]bool{}
		}
		snap.crawled[p.Crawl][p.Domain] = true

		if p.Crawl == string(groundtruth.CrawlMalicious) {
			attempted[catOSKey{p.Category, p.OS}]++
			if p.OK() {
				succeeded[catOSKey{p.Category, p.OS}]++
			}
			if catSites[p.Category] == nil {
				catSites[p.Category] = map[string]bool{}
			}
			catSites[p.Category][p.Domain] = true
		}

		dv := snap.domains[p.Domain]
		if dv == nil {
			dv = &DomainView{}
			snap.domains[p.Domain] = dv
		}
		dv.Pages = append(dv.Pages, p)
	})
	snap.crawlRows = make([]CrawlRow, 0, len(crawlRows))
	for _, row := range crawlRows {
		snap.crawlRows = append(snap.crawlRows, *row)
	}
	sort.Slice(snap.crawlRows, func(i, j int) bool {
		a, b := &snap.crawlRows[i], &snap.crawlRows[j]
		if a.Crawl != b.Crawl {
			return a.Crawl < b.Crawl
		}
		if osOrder(a.OS) != osOrder(b.OS) {
			return osOrder(a.OS) < osOrder(b.OS)
		}
		return a.OS < b.OS
	})

	// Table 2 rows, in the paper's category order.
	byCat := map[string]*CategoryRow{}
	for cat, sites := range catSites {
		byCat[cat] = &CategoryRow{
			Category:    cat,
			Sites:       len(sites),
			SuccessRate: map[string]float64{},
			Localhost:   map[string]int{},
			LAN:         map[string]int{},
		}
		for _, os := range []string{"Windows", "Linux", "Mac"} {
			if n := attempted[catOSKey{cat, os}]; n > 0 {
				byCat[cat].SuccessRate[os] = float64(succeeded[catOSKey{cat, os}]) / float64(n)
			}
		}
	}
	for _, dest := range []string{"localhost", "lan"} {
		for _, s := range snap.sites[siteKey{string(groundtruth.CrawlMalicious), dest}] {
			row := byCat[s.Category]
			if row == nil {
				continue
			}
			for osName, bit := range map[string]groundtruth.OSSet{
				"Windows": groundtruth.OSWindows, "Linux": groundtruth.OSLinux, "Mac": groundtruth.OSMac,
			} {
				if s.OS.Has(bit) {
					if dest == "lan" {
						row.LAN[osName]++
					} else {
						row.Localhost[osName]++
					}
				}
			}
		}
	}
	for _, cat := range []string{"malware", "abuse", "phishing"} {
		if row := byCat[cat]; row != nil {
			snap.catRows = append(snap.catRows, *row)
		}
	}
	return snap
}

func osOrder(os string) int {
	switch os {
	case "Windows":
		return 0
	case "Linux":
		return 1
	default:
		return 2
	}
}
