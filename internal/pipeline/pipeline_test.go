package pipeline

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/portdb"
	"github.com/knockandtalk/knockandtalk/internal/probeinfer"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// visitLog assembles a ThreatMetrix-shaped visit: a public landing
// page, a full localhost WSS port sweep, and one LAN image fetch.
func visitLog() *netlog.Log {
	r := netlog.NewRecorder()

	landing := r.NewSource(netlog.SourceURLRequest)
	r.Begin(0, netlog.TypeRequestAlive, landing, map[string]any{"url": "https://ebay.com/", "initiator": "navigation"})
	r.End(800*time.Millisecond, netlog.TypeRequestAlive, landing, map[string]any{"status_code": 200})

	at := 10 * time.Second
	for _, port := range portdb.ThreatMetrixPorts() {
		src := r.NewSource(netlog.SourceWebSocket)
		r.Begin(at, netlog.TypeRequestAlive, src, map[string]any{
			"url":        fmt.Sprintf("wss://localhost:%d/", port),
			"initiator":  "blob:threatmetrix:h.online-metrix.net",
			"sop_exempt": true,
		})
		r.Point(at+3*time.Millisecond, netlog.TypeURLRequestError, src, map[string]any{"net_error": "ERR_CONNECTION_REFUSED"})
		at += 5 * time.Millisecond
	}

	lan := r.NewSource(netlog.SourceURLRequest)
	r.Begin(3*time.Second, netlog.TypeRequestAlive, lan, map[string]any{"url": "http://192.168.0.10/wp-content/x.png", "initiator": "img"})
	r.Point(12*time.Second, netlog.TypeSocketTimeout, lan, nil)

	return r.Log()
}

func testVisit() Visit {
	return Visit{
		Crawl: "top100k-2020", OS: "Windows", Domain: "ebay.com", Rank: 42,
		URL: "https://ebay.com/", FinalURL: "https://ebay.com/", CommittedAt: time.Second,
	}
}

// TestProcessMatchesDirectCalls pins the pipeline to the underlying
// packages it composes: same findings as localnet, same inferences as
// probeinfer, same verdicts as classify.
func TestProcessMatchesDirectCalls(t *testing.T) {
	log := visitLog()
	v := testVisit()
	out := Process(log, v, Options{InferProbes: true, Classify: true})

	wantFindings := localnet.FromLog(log)
	if !reflect.DeepEqual(out.Findings, wantFindings) {
		t.Errorf("Findings diverge from localnet.FromLog: got %d, want %d", len(out.Findings), len(wantFindings))
	}
	wantInfer := probeinfer.FromLog(log)
	if !reflect.DeepEqual(out.Inferences, wantInfer) {
		t.Errorf("Inferences diverge from probeinfer.FromLog: got %+v, want %+v", out.Inferences, wantInfer)
	}

	if len(out.Locals) != len(out.Findings) {
		t.Fatalf("Locals/Findings length mismatch: %d vs %d", len(out.Locals), len(out.Findings))
	}
	if len(out.Localhost)+len(out.LAN) != len(out.Locals) {
		t.Fatalf("split loses records: %d + %d != %d", len(out.Localhost), len(out.LAN), len(out.Locals))
	}
	for i, rec := range out.Locals {
		f := out.Findings[i]
		if rec.URL != f.URL || rec.Host != f.Host || rec.Port != f.Port || rec.Dest != f.Dest.String() {
			t.Errorf("Locals[%d] does not mirror Findings[%d]: %+v vs %+v", i, i, rec, f)
		}
		if rec.Crawl != v.Crawl || rec.OS != v.OS || rec.Domain != v.Domain || rec.Rank != v.Rank {
			t.Errorf("Locals[%d] missing visit metadata: %+v", i, rec)
		}
		if want := f.At - v.CommittedAt; want >= 0 && rec.Delay != want {
			t.Errorf("Locals[%d].Delay = %v, want %v", i, rec.Delay, want)
		}
		if rec.Delay < 0 {
			t.Errorf("Locals[%d].Delay = %v, negative delays must clamp to zero", i, rec.Delay)
		}
	}

	if out.LocalhostVerdict == nil || out.LANVerdict == nil {
		t.Fatal("both destination classes saw traffic; want verdicts for both")
	}
	if want := classify.Site(out.Localhost); *out.LocalhostVerdict != want {
		t.Errorf("LocalhostVerdict = %+v, want %+v", *out.LocalhostVerdict, want)
	}
	if want := classify.LANSite(out.LAN); *out.LANVerdict != want {
		t.Errorf("LANVerdict = %+v, want %+v", *out.LANVerdict, want)
	}
	if out.LocalhostVerdict.Class != groundtruth.ClassFraudDetection {
		t.Errorf("ThreatMetrix sweep classified as %v, want fraud detection", out.LocalhostVerdict.Class)
	}

	if out.Page.Domain != v.Domain || out.Page.Events != log.Len() {
		t.Errorf("Page record wrong: %+v", out.Page)
	}
}

// TestProcessZeroOptions checks the bulk-crawl configuration: detection
// only, no inference, no verdicts.
func TestProcessZeroOptions(t *testing.T) {
	out := Process(visitLog(), testVisit(), Options{})
	if out.Inferences != nil {
		t.Error("Inferences ran without InferProbes")
	}
	if out.LocalhostVerdict != nil || out.LANVerdict != nil {
		t.Error("verdicts assigned without Classify")
	}
	if len(out.Findings) == 0 {
		t.Error("detection must always run")
	}
}

// TestHooks checks that each enabled stage fires exactly once, in
// order, with the item counts the result reports.
func TestHooks(t *testing.T) {
	type firing struct {
		stage Stage
		items int
	}
	var fired []firing
	out := Process(visitLog(), testVisit(), Options{
		InferProbes: true,
		Classify:    true,
		Hooks: Hooks{OnStage: func(s Stage, items int, elapsed time.Duration) {
			if elapsed < 0 {
				t.Errorf("stage %v reported negative elapsed time", s)
			}
			fired = append(fired, firing{s, items})
		}},
	})
	want := []firing{
		{StageDetect, len(out.Findings)},
		{StageInfer, len(out.Inferences)},
		{StageClassify, 2},
	}
	if !reflect.DeepEqual(fired, want) {
		t.Errorf("hook firings = %+v, want %+v", fired, want)
	}

	fired = nil
	Process(visitLog(), testVisit(), Options{
		Hooks: Hooks{OnStage: func(s Stage, items int, _ time.Duration) { fired = append(fired, firing{s, items}) }},
	})
	if len(fired) != 1 || fired[0].stage != StageDetect {
		t.Errorf("zero options must fire detect only, got %+v", fired)
	}
}

func TestStageString(t *testing.T) {
	names := map[Stage]string{StageDetect: "detect", StageInfer: "infer", StageClassify: "classify", Stage(99): "unknown"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

// TestClassifyRouting pins the destination routing and WHOIS
// corroboration of the shared Classify helper.
func TestClassifyRouting(t *testing.T) {
	tm := []store.LocalRequest{{
		Domain: "ebay.com", Scheme: "wss", Host: "localhost", Port: 5939, Dest: "localhost",
		URL: "wss://localhost:5939/", Initiator: "blob:threatmetrix:h.online-metrix.net",
	}}
	for _, port := range portdb.ThreatMetrixPorts()[:8] {
		tm = append(tm, store.LocalRequest{
			Domain: "ebay.com", Scheme: "wss", Host: "localhost", Port: port, Dest: "localhost",
			URL: fmt.Sprintf("wss://localhost:%d/", port), Initiator: "blob:threatmetrix:h.online-metrix.net",
		})
	}
	lan := []store.LocalRequest{{
		Domain: "x.example", Scheme: "http", Host: "192.168.0.10", Port: 80,
		Path: "/wp-content/x.png", Dest: "lan", URL: "http://192.168.0.10/wp-content/x.png",
	}}

	if got, want := Classify("localhost", tm, nil), classify.Site(tm); got != want {
		t.Errorf("Classify(localhost) = %+v, want classify.Site = %+v", got, want)
	}
	if got, want := Classify("lan", lan, nil), classify.LANSite(lan); got != want {
		t.Errorf("Classify(lan) = %+v, want classify.LANSite = %+v", got, want)
	}

	reg := whois.NewRegistry()
	reg.Add(whois.Record{Domain: "h.online-metrix.net", Registrant: whois.ThreatMetrixOrg})
	got := Classify("localhost", tm, reg)
	if want := classify.Corroborate(classify.Site(tm), tm, reg); got != want {
		t.Errorf("Classify with registry = %+v, want Corroborate = %+v", got, want)
	}
	if got.Corroboration == "" {
		t.Error("fraud-detection verdict with a registry match must carry corroboration")
	}
	if got := Classify("localhost", tm, whois.NewRegistry()); got.Corroboration != "" {
		t.Errorf("empty registry must not corroborate, got %q", got.Corroboration)
	}
}

// TestCommit checks StageInto/Commit: the whole visit lands in the
// store and bumps its generation.
func TestCommit(t *testing.T) {
	out := Process(visitLog(), testVisit(), Options{})
	st := store.New()
	gen := st.Generation()
	out.Commit(st)
	if st.Generation() == gen {
		t.Error("Commit must bump the store generation")
	}
	pages := st.Pages(nil)
	if len(pages) != 1 || pages[0] != out.Page {
		t.Errorf("committed pages = %+v, want exactly the visit's page record", pages)
	}
	locals := st.Locals(nil)
	store.SortLocals(locals)
	want := append([]store.LocalRequest(nil), out.Locals...)
	store.SortLocals(want)
	if !reflect.DeepEqual(locals, want) {
		t.Errorf("committed locals diverge: got %d, want %d", len(locals), len(want))
	}
}

// TestIndexConcurrentRebuild hammers IndexFor accessors while writers
// keep invalidating the index; meant for the race detector, but the
// final consistency check also runs without it.
func TestIndexConcurrentRebuild(t *testing.T) {
	st := store.New()
	out := Process(visitLog(), testVisit(), Options{})
	out.Commit(st)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				v := testVisit()
				v.Domain = fmt.Sprintf("writer%d-%d.example", w, i)
				Process(visitLog(), v, Options{}).Commit(st)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ix := IndexFor(st)
				ix.Site("ebay.com")
				ix.LocalSites("top100k-2020", "localhost")
				ix.CrawledDomains(groundtruth.CrawlTop2020)
				ix.UnknownOSLabels()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	view := IndexFor(st).Site("ebay.com")
	if len(view.Locals) != len(out.Locals) {
		t.Errorf("post-hammer Site(ebay.com) has %d locals, want %d", len(view.Locals), len(out.Locals))
	}
}
