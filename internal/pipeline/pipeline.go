// Package pipeline is the single canonical visit pipeline of Figure 1:
// NetLog telemetry → browser-source filter → localnet detection →
// optional probe-inference side channel (sharing the findings pass) →
// classification (with WHOIS corroboration when a registry is
// available) → store records. Every consumer of the detect→classify
// path — the crawler, the serving layer's ingest plane, the query
// engine, the analysis/report layer, the CLIs, and the examples — runs
// through this package, so the measurement semantics cannot drift
// between the offline crawl and its online and interactive
// counterparts.
//
// The package also materializes the SiteIndex (index.go): the
// O(sites) per-crawl aggregate view behind every paper table and
// figure, built once per store generation instead of rescanned per
// call.
package pipeline

import (
	"time"

	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/probeinfer"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// Registry metric families the pipeline maintains when Options.Metrics
// is set, each labeled by stage name. Busy nanoseconds accumulate the
// exact elapsed values trace spans carry, so a trace file and the
// registry agree on per-stage busy time for identical work.
const (
	MetricStageRuns   = "pipeline_stage_runs_total"
	MetricStageItems  = "pipeline_stage_items_total"
	MetricStageBusyNS = "pipeline_stage_busy_ns"
	MetricStageNS     = "pipeline_stage_ns"
)

// Stage identifies one pipeline stage for hooks and metrics.
type Stage int

// Pipeline stages, in execution order.
const (
	StageDetect Stage = iota
	StageInfer
	StageClassify
)

// String names the stage as it appears in /metrics.
func (s Stage) String() string {
	switch s {
	case StageDetect:
		return "detect"
	case StageInfer:
		return "infer"
	case StageClassify:
		return "classify"
	default:
		return "unknown"
	}
}

// Hooks observe stage execution. All fields are optional.
type Hooks struct {
	// OnStage fires after each executed stage with the number of items
	// the stage produced (findings, inferences, or verdicts) and its
	// wall time. The crawler feeds these into its per-worker stage
	// tallies.
	OnStage func(stage Stage, items int, elapsed time.Duration)
}

// Options compose a pipeline run. The zero value detects with the
// paper's configuration and stops there — exactly what the bulk crawl
// needs, which defers classification to the analysis layer.
type Options struct {
	// Detect tunes the localnet detector (ablations only; the zero
	// value is the paper's configuration).
	Detect localnet.Options
	// InferProbes additionally runs the §4.3.2 timing side channel over
	// the same findings pass.
	InferProbes bool
	// Classify assigns per-visit localhost and LAN verdicts (the live
	// ingest and example paths; the bulk crawl classifies per site at
	// analysis time instead).
	Classify bool
	// Whois corroborates fraud-detection verdicts with registrant
	// evidence (§4.3.1) when non-nil. Applies wherever this pipeline
	// classifies: visit verdicts here and site verdicts via Classify.
	Whois *whois.Registry
	// Hooks observe stage execution.
	Hooks Hooks
	// Metrics, when non-nil, accumulates the MetricStage* families
	// (runs, items, busy nanoseconds, latency histogram per stage)
	// into the registry. Repeat callers should resolve the handles once
	// with NewStageMeters and set Meters instead.
	Metrics *telemetry.Registry
	// Meters are pre-resolved stage handles (NewStageMeters). When set,
	// Metrics is ignored; when only Metrics is set, Process resolves a
	// fresh set per call.
	Meters *StageMeters
	// Trace, when non-nil, records one span per executed stage on the
	// current visit's trace. Every observer of a stage — hook, metric,
	// span — sees the same single measured elapsed time.
	Trace *telemetry.VisitTrace
}

// numStages is the number of observable pipeline stages.
const numStages = int(StageClassify) + 1

// stageMeter is one stage's registry handles.
type stageMeter struct {
	runs, items, busy *telemetry.Counter
	ns                *telemetry.Histogram
}

// StageMeters hold every stage's registry handles, resolved once.
// Handles are permanent and atomic, so one StageMeters may be shared
// by every worker of a crawl — resolving per visit would rebuild
// metric keys on the hot path.
type StageMeters struct {
	m [numStages]stageMeter
}

// NewStageMeters resolves the MetricStage* handles for every stage.
func NewStageMeters(reg *telemetry.Registry) *StageMeters {
	var sm StageMeters
	for s := StageDetect; s <= StageClassify; s++ {
		name := s.String()
		sm.m[s] = stageMeter{
			runs:  reg.Counter(MetricStageRuns, "stage", name),
			items: reg.Counter(MetricStageItems, "stage", name),
			busy:  reg.Counter(MetricStageBusyNS, "stage", name),
			ns:    reg.Histogram(MetricStageNS, "stage", name),
		}
	}
	return &sm
}

// observe records one stage execution with its single measured elapsed
// time. A non-empty traceID tags the latency bucket's exemplar, linking
// the pipeline_stage_ns series back to the trace that produced it.
func (sm *StageMeters) observe(s Stage, items int, elapsed time.Duration, traceID string) {
	m := &sm.m[s]
	m.runs.Inc()
	m.items.Add(uint64(items))
	m.busy.Add(uint64(elapsed))
	m.ns.ObserveDurationExemplar(elapsed, traceID)
}

// observe reports one finished stage to every configured observer. The
// elapsed time is measured once, so the hook tally, the registry's
// busy counter, and the trace span cannot disagree.
func (o *Options) observe(s Stage, items int, started time.Time) {
	if o.Hooks.OnStage == nil && o.Meters == nil && o.Trace == nil {
		return
	}
	elapsed := time.Since(started)
	if o.Hooks.OnStage != nil {
		o.Hooks.OnStage(s, items, elapsed)
	}
	if o.Trace != nil {
		o.Trace.Add(s.String(), started, elapsed, items)
	}
	if o.Meters != nil {
		o.Meters.observe(s, items, elapsed, o.Trace.TraceIDString())
	}
}

// Visit carries the metadata of one page visit — everything the store
// records that is not derived from the telemetry itself.
type Visit struct {
	Crawl    string
	OS       string
	Domain   string
	Rank     int
	Category string
	// URL is the visited URL; FinalURL and Err describe the load
	// outcome; CommittedAt anchors per-request delays.
	URL         string
	FinalURL    string
	Err         string
	CommittedAt time.Duration
}

// Result is one visit's pipeline output.
type Result struct {
	// Page is the visit's page record, ready to commit.
	Page store.PageRecord
	// Findings are the detector's raw extractions, in detection order.
	Findings []localnet.Finding
	// Locals are the corresponding store records (same order), with
	// negative delays clamped as the store would.
	Locals []store.LocalRequest
	// Localhost and LAN split Locals by destination class, preserving
	// order.
	Localhost []store.LocalRequest
	LAN       []store.LocalRequest
	// LocalhostVerdict and LANVerdict are the per-visit classifications
	// (Options.Classify); nil when the class saw no traffic or
	// classification was not requested.
	LocalhostVerdict *classify.Verdict
	LANVerdict       *classify.Verdict
	// Inferences are the probe side-channel verdicts
	// (Options.InferProbes).
	Inferences []probeinfer.Inference
}

// Process runs the pipeline over one visit's telemetry.
func Process(log *netlog.Log, v Visit, opts Options) *Result {
	if opts.Meters == nil && opts.Metrics != nil {
		opts.Meters = NewStageMeters(opts.Metrics)
	}
	res := &Result{Page: store.PageRecord{
		Crawl:       v.Crawl,
		OS:          v.OS,
		Domain:      v.Domain,
		Rank:        v.Rank,
		Category:    v.Category,
		URL:         v.URL,
		FinalURL:    v.FinalURL,
		Err:         v.Err,
		CommittedAt: v.CommittedAt,
		Events:      log.Len(),
	}}

	started := time.Now()
	res.Findings = localnet.FromLogOpts(log, opts.Detect)
	opts.observe(StageDetect, len(res.Findings), started)

	if opts.InferProbes {
		started = time.Now()
		res.Inferences = probeinfer.FromLogFindings(log, res.Findings)
		opts.observe(StageInfer, len(res.Inferences), started)
	}

	if len(res.Findings) > 0 {
		res.Locals = make([]store.LocalRequest, 0, len(res.Findings))
	}
	for _, f := range res.Findings {
		rec := store.LocalRequest{
			Crawl:       v.Crawl,
			OS:          v.OS,
			Domain:      v.Domain,
			Rank:        v.Rank,
			Category:    v.Category,
			URL:         f.URL,
			Scheme:      string(f.Scheme),
			Host:        f.Host,
			Port:        f.Port,
			Path:        f.Path,
			Dest:        f.Dest.String(),
			Delay:       f.At - v.CommittedAt,
			Initiator:   f.Initiator,
			NetError:    f.NetError,
			StatusCode:  f.StatusCode,
			ViaRedirect: f.ViaRedirect,
			SOPExempt:   f.SOPExempt,
		}
		if rec.Delay < 0 {
			rec.Delay = 0
		}
		res.Locals = append(res.Locals, rec)
		if rec.Dest == "lan" {
			res.LAN = append(res.LAN, rec)
		} else {
			res.Localhost = append(res.Localhost, rec)
		}
	}

	if opts.Classify {
		started = time.Now()
		verdicts := 0
		if len(res.Localhost) > 0 {
			v := Classify("localhost", res.Localhost, opts.Whois)
			res.LocalhostVerdict = &v
			verdicts++
		}
		if len(res.LAN) > 0 {
			v := Classify("lan", res.LAN, opts.Whois)
			res.LANVerdict = &v
			verdicts++
		}
		opts.observe(StageClassify, verdicts, started)
	}
	return res
}

// StageInto appends the visit's records to a store batch, so a whole
// visit commits under a single shard lock (all records share the
// domain).
func (r *Result) StageInto(b *store.Batch) {
	b.AddPage(r.Page)
	for _, l := range r.Locals {
		b.AddLocal(l)
	}
}

// Commit writes the visit directly to a store in one sharded batch.
func (r *Result) Commit(st *store.Store) {
	var b store.Batch
	r.StageInto(&b)
	st.AddBatch(&b)
}

// Classify assigns the behavior verdict for one site's (or visit's)
// requests in a destination class, corroborating fraud-detection
// verdicts via WHOIS when a registry is supplied. This helper is the
// single classification call site of the codebase: every consumer —
// index builds, live ingest, the query engine, the examples — funnels
// through it.
func Classify(dest string, reqs []store.LocalRequest, registry *whois.Registry) classify.Verdict {
	var v classify.Verdict
	if dest == "lan" {
		v = classify.LANSite(reqs)
	} else {
		v = classify.Site(reqs)
	}
	if registry != nil {
		v = classify.Corroborate(v, reqs, registry)
	}
	return v
}
