package pipeline

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// deltaPage and deltaLocal build small raw records so the parity tests
// can cover shapes Process never emits (unknown OS labels, odd crawls).
func deltaPage(crawl, os, domain string, rank int, errStr string) store.PageRecord {
	return store.PageRecord{
		Crawl: crawl, OS: os, Domain: domain, Rank: rank,
		Category: "malware", URL: "https://" + domain + "/", Err: errStr,
	}
}

func deltaLocal(crawl, os, domain, dest string, port uint16, delay time.Duration) store.LocalRequest {
	host := "localhost"
	if dest == "lan" {
		host = "192.168.0.7"
	}
	return store.LocalRequest{
		Crawl: crawl, OS: os, Domain: domain, Rank: 7, Category: "malware",
		URL:    fmt.Sprintf("wss://%s:%d/", host, port),
		Scheme: "wss", Host: host, Port: port, Path: "/", Dest: dest,
		Delay: delay, SOPExempt: dest == "localhost",
	}
}

// assertIndexMatchesRebuild compares every accessor of the incremental
// index against a from-scratch rebuild over the same store.
func assertIndexMatchesRebuild(t *testing.T, inc *SiteIndex, st *store.Store, domains []string) {
	t.Helper()
	fresh := NewIndex(st)
	crawls := []groundtruth.CrawlID{groundtruth.CrawlTop2020, groundtruth.CrawlMalicious, "login-2021"}
	oses := []string{"Windows", "Linux", "Mac", "BeOS"}
	dests := []string{"localhost", "lan"}
	for _, crawl := range crawls {
		for _, dest := range dests {
			if got, want := inc.LocalSites(crawl, dest), fresh.LocalSites(crawl, dest); !reflect.DeepEqual(got, want) {
				t.Fatalf("LocalSites(%s, %s) diverged from rebuild:\n got %+v\nwant %+v", crawl, dest, got, want)
			}
			if got, want := inc.SOPUsage(crawl, dest), fresh.SOPUsage(crawl, dest); got != want {
				t.Fatalf("SOPUsage(%s, %s) = %+v, rebuild %+v", crawl, dest, got, want)
			}
			for _, os := range oses {
				if got, want := inc.SchemeRollup(crawl, os, dest), fresh.SchemeRollup(crawl, os, dest); !reflect.DeepEqual(got, want) {
					t.Fatalf("SchemeRollup(%s, %s, %s) diverged:\n got %+v\nwant %+v", crawl, os, dest, got, want)
				}
			}
		}
		if got, want := inc.CrawledDomains(crawl), fresh.CrawledDomains(crawl); !reflect.DeepEqual(got, want) {
			t.Fatalf("CrawledDomains(%s): %d domains vs rebuild %d", crawl, len(got), len(want))
		}
	}
	if got, want := inc.CrawlTable(), fresh.CrawlTable(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CrawlTable diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := inc.MaliciousSummary(), fresh.MaliciousSummary(); !reflect.DeepEqual(got, want) {
		t.Fatalf("MaliciousSummary diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := inc.UnknownOSLabels(), fresh.UnknownOSLabels(); !reflect.DeepEqual(got, want) {
		t.Fatalf("UnknownOSLabels = %v, rebuild %v", got, want)
	}
	for _, d := range domains {
		if got, want := inc.Site(d), fresh.Site(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("Site(%s) diverged:\n got %+v\nwant %+v", d, got, want)
		}
	}
}

// TestIndexDeltaMatchesRebuild commits a varied sequence one step at a
// time and requires the incrementally maintained index to equal a
// from-scratch rebuild at every step — including repeat visits to the
// same site (delay minima, OS set growth), malicious-crawl rows,
// unknown OS labels, and mixed-domain bulk commits.
func TestIndexDeltaMatchesRebuild(t *testing.T) {
	st := store.New()
	ix := NewIndex(st)
	domains := []string{"ebay.com", "wish.com", "evil.example", "printer.example", "unseen.example"}

	steps := []func(){
		func() {
			var b store.Batch
			b.AddPage(deltaPage("top100k-2020", "Windows", "ebay.com", 42, ""))
			b.AddLocal(deltaLocal("top100k-2020", "Windows", "ebay.com", "localhost", 5939, 10*time.Second))
			b.AddLocal(deltaLocal("top100k-2020", "Windows", "ebay.com", "localhost", 5931, 11*time.Second))
			st.AddBatch(&b)
		},
		// The same site again on another OS with a smaller delay: the
		// group's OS set and FirstDelay minimum must both move.
		func() {
			var b store.Batch
			b.AddPage(deltaPage("top100k-2020", "Linux", "ebay.com", 42, ""))
			b.AddLocal(deltaLocal("top100k-2020", "Linux", "ebay.com", "localhost", 5939, 2*time.Second))
			st.AddBatch(&b)
		},
		// A LAN-active site and a failed page load.
		func() {
			var b store.Batch
			b.AddPage(deltaPage("top100k-2020", "Windows", "printer.example", 900, ""))
			b.AddLocal(deltaLocal("top100k-2020", "Windows", "printer.example", "lan", 80, 3*time.Second))
			st.AddBatch(&b)
			st.AddPage(deltaPage("top100k-2020", "Windows", "wish.com", 53, "ERR_CONNECTION_REFUSED"))
		},
		// Malicious crawl: Table 2 rows come alive.
		func() {
			var b store.Batch
			b.AddPage(deltaPage("malicious", "Windows", "evil.example", 0, ""))
			b.AddLocal(deltaLocal("malicious", "Windows", "evil.example", "localhost", 5900, time.Second))
			st.AddBatch(&b)
		},
		// An unknown OS label and a mixed-domain bulk commit.
		func() {
			st.AddLocal(deltaLocal("top100k-2020", "BeOS", "wish.com", "localhost", 9100, 4*time.Second))
			st.AddPages([]store.PageRecord{
				deltaPage("login-2021", "Mac", "ebay.com", 42, ""),
				deltaPage("login-2021", "Mac", "wish.com", 53, ""),
			})
		},
		// Another malicious visit on a second OS of the same site.
		func() {
			var b store.Batch
			b.AddPage(deltaPage("malicious", "Linux", "evil.example", 0, "ERR_NAME_NOT_RESOLVED"))
			b.AddLocal(deltaLocal("malicious", "Linux", "evil.example", "lan", 8080, 6*time.Second))
			st.AddBatch(&b)
		},
	}
	for i, step := range steps {
		step()
		assertIndexMatchesRebuild(t, ix, st, domains)
		if t.Failed() {
			t.Fatalf("diverged after step %d", i)
		}
	}
}

// TestIndexDeltaCopyOnWrite pins the aliasing contract: aggregates
// handed out before a delta apply must not change underneath the
// caller.
func TestIndexDeltaCopyOnWrite(t *testing.T) {
	st := store.New()
	ix := NewIndex(st)
	var b store.Batch
	b.AddPage(deltaPage("top100k-2020", "Windows", "ebay.com", 42, ""))
	b.AddLocal(deltaLocal("top100k-2020", "Windows", "ebay.com", "localhost", 5939, 10*time.Second))
	st.AddBatch(&b)

	before := ix.LocalSites("top100k-2020", "localhost")[0]
	crawledBefore := ix.CrawledDomains("top100k-2020")
	nBefore := len(crawledBefore)

	var b2 store.Batch
	b2.AddPage(deltaPage("top100k-2020", "Linux", "newsite.example", 9, ""))
	b2.AddLocal(deltaLocal("top100k-2020", "Linux", "ebay.com", "localhost", 5939, time.Second))
	st.AddBatch(&b2)
	_ = ix.LocalSites("top100k-2020", "localhost") // force the delta apply

	if len(before.Requests) != 1 {
		t.Errorf("previously returned SiteActivity grew to %d requests", len(before.Requests))
	}
	if d := before.FirstDelay[groundtruth.OSWindows]; d != 10*time.Second {
		t.Errorf("previously returned FirstDelay mutated to %v", d)
	}
	if before.OS.Has(groundtruth.OSLinux) {
		t.Error("previously returned OS set gained Linux")
	}
	if len(crawledBefore) != nBefore {
		t.Errorf("previously returned CrawledDomains grew from %d to %d", nBefore, len(crawledBefore))
	}
	after := ix.LocalSites("top100k-2020", "localhost")[0]
	if len(after.Requests) != 2 || !after.OS.Has(groundtruth.OSLinux) {
		t.Errorf("fresh read missed the delta: %+v", after)
	}
}

// TestIndexForceRebuild pins BumpGeneration's contract under the
// incremental index: it still forces a full rebuild (the force epoch),
// and the rebuilt state matches the store.
func TestIndexForceRebuild(t *testing.T) {
	st := store.New()
	ix := NewIndex(st)
	st.AddPage(deltaPage("top100k-2020", "Windows", "ebay.com", 42, ""))
	_ = ix.CrawlTable()
	st.BumpGeneration()
	assertIndexMatchesRebuild(t, ix, st, []string{"ebay.com"})
}

func TestIndexForRelease(t *testing.T) {
	st := store.New()
	a := IndexFor(st)
	if IndexFor(st) != a {
		t.Fatal("IndexFor did not return the shared index")
	}
	ReleaseIndex(st)
	if IndexFor(st) == a {
		t.Fatal("ReleaseIndex left the old index registered")
	}
	ReleaseIndex(st)
}

// TestIndexDeltaHammer interleaves WAL-journaled commits, incremental
// index applies, and concurrent readers, then checks at several
// quiesce points that the incremental state equals a from-scratch
// rebuild. Run under -race this is the concurrency acceptance test for
// the incremental engine.
func TestIndexDeltaHammer(t *testing.T) {
	dir := t.TempDir()
	st, lg, _, err := store.Open(dir, store.LogOptions{CompactBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	ix := NewIndex(st)

	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					i++
					domain := fmt.Sprintf("r%d-w%d-%d.example", round, w, i)
					var b store.Batch
					b.AddPage(deltaPage("top100k-2020", "Windows", domain, 1000+i, ""))
					b.AddLocal(deltaLocal("top100k-2020", "Windows", domain, "localhost", 5939, time.Duration(i)*time.Millisecond))
					st.AddBatch(&b)
				}
			}(w)
		}
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					ix.LocalSites("top100k-2020", "localhost")
					ix.CrawlTable()
					ix.SOPUsage("top100k-2020", "localhost")
					ix.UnknownOSLabels()
				}
			}()
		}
		time.Sleep(30 * time.Millisecond)
		close(stop)
		wg.Wait()
		// Quiesce point: writers drained; incremental must equal rebuild.
		assertIndexMatchesRebuild(t, ix, st, []string{"r0-w0-1.example"})
	}
	if err := lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
