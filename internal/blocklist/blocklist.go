// Package blocklist models the malicious-URL feeds the study crawled:
// SURBL (abuse, malware, and phishing sites), Abuse.ch URLhaus (malware),
// and PhishTank (phishing). It generates the deterministic ~145K-domain
// population of Table 2, including the blocklists' habit of listing many
// URLs per domain, and implements the study's one-URL-per-domain
// deduplication (§3.1).
package blocklist

import (
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
)

// Category is a malicious-site category from Table 2.
type Category string

// Categories.
const (
	CategoryMalware  Category = "malware"
	CategoryAbuse    Category = "abuse"
	CategoryPhishing Category = "phishing"
)

// Categories lists all categories in Table 2 order.
var Categories = []Category{CategoryMalware, CategoryAbuse, CategoryPhishing}

// Source is a blocklist feed.
type Source string

// Feeds.
const (
	SourceURLhaus   Source = "urlhaus"
	SourceSURBL     Source = "surbl"
	SourcePhishTank Source = "phishtank"
)

// Entry is one blocklist listing: a malicious URL with its category and
// originating feed.
type Entry struct {
	URL      string
	Domain   string
	Category Category
	Source   Source
}

// sizes per Table 2.
const (
	MalwareDomains  = 103541
	AbuseDomains    = 24958
	PhishingDomains = 16426
	TotalDomains    = MalwareDomains + AbuseDomains + PhishingDomains
)

// sourceFor assigns the feed for a synthetic domain, matching Table 2's
// contribution percentages (malware: URLhaus 99% / SURBL 1%; abuse:
// SURBL; phishing: PhishTank 85% / SURBL 15%).
func sourceFor(cat Category, domain string) Source {
	h := fnv.New32a()
	h.Write([]byte(domain))
	pct := h.Sum32() % 100
	switch cat {
	case CategoryMalware:
		if pct < 99 {
			return SourceURLhaus
		}
		return SourceSURBL
	case CategoryAbuse:
		return SourceSURBL
	case CategoryPhishing:
		if pct < 85 {
			return SourcePhishTank
		}
		return SourceSURBL
	default:
		return SourceSURBL
	}
}

// Domains returns the full deduplicated malicious-domain population for a
// category, scaled by the given factor in (0, 1]. Ground-truth domains
// (the sites the paper observed generating local traffic) always appear,
// followed by deterministic filler up to the scaled category size.
func Domains(cat Category, scale float64) []Entry {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	var size int
	switch cat {
	case CategoryMalware:
		size = MalwareDomains
	case CategoryAbuse:
		size = AbuseDomains
	case CategoryPhishing:
		size = PhishingDomains
	}
	size = int(float64(size) * scale)

	var out []Entry
	seen := make(map[string]bool)
	addDomain := func(domain string) {
		if seen[domain] || len(out) >= size {
			return
		}
		seen[domain] = true
		out = append(out, Entry{
			URL:      "http://" + domain + "/",
			Domain:   domain,
			Category: cat,
			Source:   sourceFor(cat, domain),
		})
	}
	for _, r := range groundtruth.MaliciousLocalhost() {
		if Category(r.Category) == cat {
			addDomain(r.Domain)
		}
	}
	for _, r := range groundtruth.MaliciousLAN() {
		if Category(r.Category) == cat {
			addDomain(r.Domain)
		}
	}
	for i := 0; len(out) < size; i++ {
		addDomain(fmt.Sprintf("%s%06d.bad.example", cat, i))
	}
	return out
}

// Population returns the entire deduplicated malicious population across
// all categories, deterministic and sorted by category then insertion
// order. scale in (0, 1] shrinks each category proportionally.
func Population(scale float64) []Entry {
	var out []Entry
	for _, cat := range Categories {
		out = append(out, Domains(cat, scale)...)
	}
	return out
}

// RawListing expands a deduplicated population back into feed-shaped raw
// listings: blocklists often list several URLs per domain, and the study
// kept only one per domain. urlsPerDomain controls the expansion factor
// (hash-varied between 1 and the maximum).
func RawListing(pop []Entry, maxURLsPerDomain int) []Entry {
	if maxURLsPerDomain < 1 {
		maxURLsPerDomain = 1
	}
	var out []Entry
	for _, e := range pop {
		h := fnv.New32a()
		h.Write([]byte("rawcount:" + e.Domain))
		n := int(h.Sum32())%maxURLsPerDomain + 1
		for i := 0; i < n; i++ {
			u := e
			if i > 0 {
				u.URL = fmt.Sprintf("http://%s/payload/%d", e.Domain, i)
			}
			out = append(out, u)
		}
	}
	return out
}

// DedupOnePerDomain selects one URL per domain from a raw listing,
// keeping the first listing seen for each domain (§3.1: "we only select
// one malicious URL per domain to increase our measurement's coverage of
// malicious domains").
func DedupOnePerDomain(raw []Entry) []Entry {
	seen := make(map[string]bool, len(raw))
	var out []Entry
	for _, e := range raw {
		if seen[e.Domain] {
			continue
		}
		seen[e.Domain] = true
		out = append(out, e)
	}
	return out
}

// SourceShare reports, for a category's population, the fraction of
// domains contributed by each feed — the "Data Sources (% Contribution)"
// column of Table 2.
func SourceShare(pop []Entry, cat Category) map[Source]float64 {
	counts := make(map[Source]int)
	total := 0
	for _, e := range pop {
		if e.Category != cat {
			continue
		}
		counts[e.Source]++
		total++
	}
	out := make(map[Source]float64, len(counts))
	if total == 0 {
		return out
	}
	for s, n := range counts {
		out[s] = float64(n) / float64(total)
	}
	return out
}

// SortByDomain orders entries lexicographically by domain, for stable
// output in reports.
func SortByDomain(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Domain < entries[j].Domain })
}
