package blocklist

import (
	"testing"
	"testing/quick"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
)

func TestPopulationSizes(t *testing.T) {
	pop := Population(1)
	if len(pop) != TotalDomains {
		t.Fatalf("population = %d, want %d (~145K, Table 2)", len(pop), TotalDomains)
	}
	counts := map[Category]int{}
	for _, e := range pop {
		counts[e.Category]++
	}
	if counts[CategoryMalware] != MalwareDomains || counts[CategoryAbuse] != AbuseDomains || counts[CategoryPhishing] != PhishingDomains {
		t.Errorf("category sizes = %v", counts)
	}
}

func TestPopulationIncludesGroundTruth(t *testing.T) {
	pop := Population(1)
	have := make(map[string]Category, len(pop))
	for _, e := range pop {
		have[e.Domain] = e.Category
	}
	for _, r := range groundtruth.MaliciousLocalhost() {
		if cat, ok := have[r.Domain]; !ok || cat != Category(r.Category) {
			t.Errorf("%s: in population as %q, want %q", r.Domain, cat, r.Category)
		}
	}
	for _, r := range groundtruth.MaliciousLAN() {
		if cat, ok := have[r.Domain]; !ok || cat != Category(r.Category) {
			t.Errorf("%s (LAN): in population as %q, want %q", r.Domain, cat, r.Category)
		}
	}
}

func TestPopulationNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Population(0.1) {
		if seen[e.Domain] {
			t.Fatalf("duplicate domain %q", e.Domain)
		}
		seen[e.Domain] = true
	}
}

func TestScaledPopulationKeepsGroundTruth(t *testing.T) {
	pop := Population(0.01) // ~1.45K domains
	have := map[string]bool{}
	for _, e := range pop {
		have[e.Domain] = true
	}
	for _, r := range groundtruth.MaliciousLocalhost() {
		if !have[r.Domain] {
			t.Errorf("%s lost at scale 0.01", r.Domain)
		}
	}
}

func TestSourceSharesMatchTable2(t *testing.T) {
	pop := Population(1)
	mal := SourceShare(pop, CategoryMalware)
	if mal[SourceURLhaus] < 0.97 || mal[SourceURLhaus] > 1.0 {
		t.Errorf("malware URLhaus share = %.3f, want ~0.99", mal[SourceURLhaus])
	}
	ab := SourceShare(pop, CategoryAbuse)
	if ab[SourceSURBL] != 1.0 {
		t.Errorf("abuse SURBL share = %.3f, want 1.0", ab[SourceSURBL])
	}
	ph := SourceShare(pop, CategoryPhishing)
	if ph[SourcePhishTank] < 0.82 || ph[SourcePhishTank] > 0.88 {
		t.Errorf("phishing PhishTank share = %.3f, want ~0.85", ph[SourcePhishTank])
	}
}

func TestRawListingAndDedup(t *testing.T) {
	pop := Domains(CategoryPhishing, 0.05)
	raw := RawListing(pop, 5)
	if len(raw) <= len(pop) {
		t.Errorf("raw listing should exceed deduplicated population: %d <= %d", len(raw), len(pop))
	}
	dedup := DedupOnePerDomain(raw)
	if len(dedup) != len(pop) {
		t.Errorf("dedup returned %d entries, want %d", len(dedup), len(pop))
	}
	seen := map[string]bool{}
	for _, e := range dedup {
		if seen[e.Domain] {
			t.Fatalf("dedup kept two URLs for %q", e.Domain)
		}
		seen[e.Domain] = true
	}
}

func TestRawListingDeterministic(t *testing.T) {
	pop := Domains(CategoryAbuse, 0.01)
	a := RawListing(pop, 4)
	b := RawListing(pop, 4)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestSortByDomain(t *testing.T) {
	entries := []Entry{{Domain: "zzz.example"}, {Domain: "aaa.example"}, {Domain: "mmm.example"}}
	SortByDomain(entries)
	if entries[0].Domain != "aaa.example" || entries[2].Domain != "zzz.example" {
		t.Errorf("sort order wrong: %v", entries)
	}
}

// Property: dedup is idempotent and never grows.
func TestQuickDedupIdempotent(t *testing.T) {
	f := func(n uint8) bool {
		pop := Domains(CategoryMalware, float64(n%50+1)/5000)
		raw := RawListing(pop, int(n%7)+1)
		once := DedupOnePerDomain(raw)
		twice := DedupOnePerDomain(once)
		return len(once) == len(twice) && len(once) <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
