package whois

import (
	"net/netip"
	"testing"
)

func TestLookupExactAndParentWalk(t *testing.T) {
	r := NewRegistry()
	r.Add(Record{Domain: "ebay-us.com", Registrant: ThreatMetrixOrg})
	r.Add(Record{Domain: "betfair.com", Registrant: "Betfair Group"})
	r.Add(Record{Domain: "regstat.betfair.com", Registrant: ThreatMetrixOrg})

	// Exact match.
	if rec, ok := r.Lookup("ebay-us.com"); !ok || rec.Registrant != ThreatMetrixOrg {
		t.Errorf("ebay-us.com = %+v, %v", rec, ok)
	}
	// A registered subdomain wins over its parent — the ThreatMetrix
	// pattern the paper observed.
	if rec, ok := r.Lookup("regstat.betfair.com"); !ok || rec.Registrant != ThreatMetrixOrg {
		t.Errorf("regstat.betfair.com = %+v, %v", rec, ok)
	}
	// Unregistered subdomains resolve to the parent's record.
	if rec, ok := r.Lookup("www.betfair.com"); !ok || rec.Registrant != "Betfair Group" {
		t.Errorf("www.betfair.com = %+v, %v", rec, ok)
	}
	// Case-insensitive.
	if _, ok := r.Lookup("EBAY-US.COM"); !ok {
		t.Error("lookup must be case-insensitive")
	}
	// Misses.
	if _, ok := r.Lookup("unknown.example"); ok {
		t.Error("unknown domain should miss")
	}
	if _, ok := r.Lookup("com"); ok {
		t.Error("bare TLD should miss")
	}
}

func TestLookupIP(t *testing.T) {
	r := NewRegistry()
	addr := netip.MustParseAddr("51.0.0.1")
	r.Add(Record{Domain: "ebay-us.com", Registrant: ThreatMetrixOrg}, addr)
	if rec, ok := r.LookupIP(addr); !ok || rec.Registrant != ThreatMetrixOrg {
		t.Errorf("LookupIP = %+v, %v", rec, ok)
	}
	if _, ok := r.LookupIP(netip.MustParseAddr("51.0.0.9")); ok {
		t.Error("unbound address should miss")
	}
}

func TestOwnedBy(t *testing.T) {
	r := NewRegistry()
	r.Add(Record{Domain: "ebay-us.com", Registrant: ThreatMetrixOrg})
	if !r.OwnedBy("ebay-us.com", ThreatMetrixOrg) {
		t.Error("OwnedBy must confirm the registrant")
	}
	if r.OwnedBy("ebay-us.com", "Someone Else") {
		t.Error("OwnedBy must reject a different org")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}
