// Package whois models the WHOIS evidence the paper used to attribute
// localhost scanning to LexisNexis ThreatMetrix (§4.3.1): "Conducting
// WHOIS lookups on these domains and their IP addresses, we find that
// these domains all belong to the ThreatMetrix Inc. organization."
//
// The registry is the offline substitution for the live WHOIS system:
// the synthetic web registers a record for every profiling-script host
// it binds, and the classifier corroborates its network-signature
// verdicts against the registrant organization.
package whois

import (
	"net/netip"
	"strings"
	"sync"
)

// Record is a simplified WHOIS registration record.
type Record struct {
	Domain     string
	Registrant string // organization
	Registrar  string
	Country    string
	Created    string // registration date, YYYY-MM-DD
	NameServer string
}

// ThreatMetrixOrg is the registrant organization of the fraud-detection
// vendor's script-hosting domains.
const ThreatMetrixOrg = "ThreatMetrix Inc."

// Registry answers WHOIS queries for domains and IP addresses.
type Registry struct {
	mu       sync.RWMutex
	byDomain map[string]Record
	byIP     map[netip.Addr]Record
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byDomain: make(map[string]Record),
		byIP:     make(map[netip.Addr]Record),
	}
}

// Add registers a record for a domain, optionally binding addresses to
// the same registrant.
func (r *Registry) Add(rec Record, addrs ...netip.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byDomain[strings.ToLower(rec.Domain)] = rec
	for _, a := range addrs {
		r.byIP[a] = rec
	}
}

// Lookup finds the record for a domain, walking up parent labels the
// way a WHOIS client resolves subdomains to their registered domain
// (regstat.betfair.com → betfair.com unless the subdomain itself is
// registered, as ThreatMetrix's dedicated hosts are).
func (r *Registry) Lookup(domain string) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d := strings.ToLower(domain)
	for {
		if rec, ok := r.byDomain[d]; ok {
			return rec, true
		}
		i := strings.IndexByte(d, '.')
		if i < 0 {
			return Record{}, false
		}
		rest := d[i+1:]
		if !strings.Contains(rest, ".") {
			// Bare TLD: stop.
			return Record{}, false
		}
		d = rest
	}
}

// LookupIP finds the record bound to an address.
func (r *Registry) LookupIP(addr netip.Addr) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.byIP[addr]
	return rec, ok
}

// Len reports the number of registered domains.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byDomain)
}

// OwnedBy reports whether the domain (or its registered parent) belongs
// to the given organization.
func (r *Registry) OwnedBy(domain, org string) bool {
	rec, ok := r.Lookup(domain)
	return ok && rec.Registrant == org
}
