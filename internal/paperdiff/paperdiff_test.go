package paperdiff

import (
	"strings"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func TestCompareEmptyStoreSkipsEverything(t *testing.T) {
	sc := Compare(store.New())
	if len(sc.Rows) != 0 {
		t.Errorf("empty store produced %d rows: %+v", len(sc.Rows), sc.Rows)
	}
}

func TestCompareScaledCrawlReportsFailuresHonestly(t *testing.T) {
	// A 1% crawl cannot reproduce the full-population aggregates: the
	// scorecard must run, cover the crawled campaign only, and fail the
	// absolute-count metrics rather than masking them.
	st := store.New()
	for _, os := range hostenv.AllOS {
		if _, err := crawler.Run(crawler.Config{
			Crawl: groundtruth.CrawlTop2020, OS: os, Scale: 0.01, Seed: 3, Workers: 4,
		}, st); err != nil {
			t.Fatal(err)
		}
	}
	sc := Compare(st)
	if len(sc.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range sc.Rows {
		if !strings.HasPrefix(r.Name, "top100k-2020") && !strings.HasPrefix(r.Name, "2020") && !strings.HasPrefix(r.Name, "Table 3") {
			t.Errorf("row for uncrawled campaign: %+v", r)
		}
	}
	var headline *Row
	for i := range sc.Rows {
		if sc.Rows[i].Name == "top100k-2020 localhost sites" {
			headline = &sc.Rows[i]
		}
	}
	if headline == nil {
		t.Fatal("headline row missing")
	}
	if headline.OK || headline.Measured != "5" {
		t.Errorf("1%% crawl headline should fail with 5 sites: %+v", headline)
	}
	// Rates, by contrast, hold at any scale.
	rateOK := 0
	for _, r := range sc.Rows {
		if r.Metric == Rate && r.OK {
			rateOK++
		}
	}
	if rateOK == 0 {
		t.Error("rate metrics should pass even at 1% scale")
	}
	if sc.Passed()+sc.Failed() != len(sc.Rows) {
		t.Error("pass/fail counts inconsistent")
	}
}

func TestDominant(t *testing.T) {
	top, share := dominant(map[string]int{"wss": 490, "http": 134, "https": 21, "ws": 19}, 664)
	if top != "wss" || share < 0.73 || share > 0.75 {
		t.Errorf("dominant = %s, %.3f", top, share)
	}
	if top, share := dominant(nil, 0); top != "" || share != 0 {
		t.Errorf("empty dominant = %q, %f", top, share)
	}
}

func TestWithin(t *testing.T) {
	if !within(0.897, 0.898, 0.02) || within(0.5, 0.6, 0.05) {
		t.Error("within logic wrong")
	}
}
