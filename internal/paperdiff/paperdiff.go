// Package paperdiff is the reproduction scorecard: it compares a
// measured telemetry store against every aggregate the paper published
// — headline counts, Table 1 rates, Table 2 categories, the Figure 2
// overlap regions, Figure 4/8 protocol totals, Figure 5 timing medians
// — and reports, per metric, the paper's value, the measured value, and
// whether the reproduction holds within its fidelity class.
//
// EXPERIMENTS.md is the narrative form of this package's output;
// cmd/knockdiff prints it from any store.
package paperdiff

import (
	"fmt"
	"math"
	"sort"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// Fidelity classes, from DESIGN.md: exact values, statistical rates, or
// distribution shape.
type Fidelity string

// Fidelity levels.
const (
	Exact Fidelity = "exact"
	Rate  Fidelity = "rate"
	Shape Fidelity = "shape"
)

// Row is one scorecard entry.
type Row struct {
	Metric   Fidelity
	Name     string
	Paper    string
	Measured string
	OK       bool
}

// Scorecard is the full comparison.
type Scorecard struct {
	Rows []Row
}

// Passed and Failed count rows by outcome.
func (s *Scorecard) Passed() int { return s.count(true) }

// Failed counts failing rows.
func (s *Scorecard) Failed() int { return s.count(false) }

func (s *Scorecard) count(ok bool) int {
	n := 0
	for _, r := range s.Rows {
		if r.OK == ok {
			n++
		}
	}
	return n
}

func (s *Scorecard) add(f Fidelity, name, paper, measured string, ok bool) {
	s.Rows = append(s.Rows, Row{Metric: f, Name: name, Paper: paper, Measured: measured, OK: ok})
}

// within reports |a-b| <= tol.
func within(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Compare builds the scorecard from a store holding any subset of the
// three crawls; metrics whose crawl is absent are skipped.
func Compare(st *store.Store) *Scorecard {
	sc := &Scorecard{}
	crawled := map[groundtruth.CrawlID]bool{}
	for _, p := range st.Pages(nil) {
		crawled[groundtruth.CrawlID(p.Crawl)] = true
	}

	// Headline counts (§4.1) — exact.
	for _, h := range groundtruth.Headlines() {
		if !crawled[h.Crawl] {
			continue
		}
		lh := len(analysis.LocalSites(st, h.Crawl, "localhost"))
		lan := len(analysis.LocalSites(st, h.Crawl, "lan"))
		sc.add(Exact, fmt.Sprintf("%s localhost sites", h.Crawl),
			fmt.Sprint(h.Localhost), fmt.Sprint(lh), lh == h.Localhost)
		sc.add(Exact, fmt.Sprintf("%s LAN sites", h.Crawl),
			fmt.Sprint(h.LAN), fmt.Sprint(lan), lan == h.LAN)
	}

	compareVenn(sc, st, groundtruth.CrawlTop2020, groundtruth.Top2020Venn, crawled)
	compareVenn(sc, st, groundtruth.CrawlMalicious, groundtruth.MaliciousVenn, crawled)
	compareTable1(sc, st, crawled)
	compareRollups(sc, st, crawled)
	compareTimings(sc, st, crawled)
	compareTable3(sc, st, crawled)
	compareClassCounts(sc, st, crawled)
	compare2021Totals(sc, st, crawled)
	comparePortRings(sc, st, crawled)
	return sc
}

// comparePortRings checks the Figure 4a Windows WSS port ring: the
// paper's sunburst shows exactly the ThreatMetrix remote-desktop set
// plus the AnySign ports (10531, 31027, 31029) on that arc.
func comparePortRings(sc *Scorecard, st *store.Store, crawled map[groundtruth.CrawlID]bool) {
	if !crawled[groundtruth.CrawlTop2020] {
		return
	}
	want := map[uint16]bool{10531: true, 31027: true, 31029: true}
	for _, p := range []uint16{3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040, 7070, 63333} {
		want[p] = true
	}
	m := analysis.SchemeRollup(st, groundtruth.CrawlTop2020, "Windows", "localhost")
	got := map[uint16]bool{}
	for _, p := range m.Ports["wss"] {
		got[p] = true
	}
	ok := len(got) == len(want)
	for p := range want {
		if !got[p] {
			ok = false
		}
	}
	sc.add(Exact, "2020 Windows WSS port ring (Figure 4a)",
		fmt.Sprintf("%d ports (TM set + AnySign)", len(want)),
		fmt.Sprintf("%d ports", len(got)), ok)
}

// compareClassCounts checks the 2020 behavior-class breakdown against
// the table-derived counts (34/10/13/45/5; see EXPERIMENTS.md on the
// text/table discrepancy).
func compareClassCounts(sc *Scorecard, st *store.Store, crawled map[groundtruth.CrawlID]bool) {
	if !crawled[groundtruth.CrawlTop2020] {
		return
	}
	counts := analysis.ClassCounts(analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost"))
	want := map[groundtruth.Class]int{
		groundtruth.ClassFraudDetection: 34,
		groundtruth.ClassBotDetection:   10,
		groundtruth.ClassNativeApp:      13,
		groundtruth.ClassDevError:       45,
		groundtruth.ClassUnknown:        5,
	}
	for _, class := range []groundtruth.Class{
		groundtruth.ClassFraudDetection, groundtruth.ClassBotDetection,
		groundtruth.ClassNativeApp, groundtruth.ClassDevError, groundtruth.ClassUnknown,
	} {
		sc.add(Exact, fmt.Sprintf("2020 class: %s", class),
			fmt.Sprint(want[class]), fmt.Sprint(counts[class]), counts[class] == want[class])
	}
}

// compare2021Totals checks the Figure 9 per-OS site totals.
func compare2021Totals(sc *Scorecard, st *store.Store, crawled map[groundtruth.CrawlID]bool) {
	if !crawled[groundtruth.CrawlTop2021] {
		return
	}
	totals := analysis.OSTotals(analysis.LocalSites(st, groundtruth.CrawlTop2021, "localhost"))
	sc.add(Exact, "2021 Windows localhost sites (Figure 9)",
		fmt.Sprint(groundtruth.Top2021WindowsSites), fmt.Sprint(totals[groundtruth.OSWindows]),
		totals[groundtruth.OSWindows] == groundtruth.Top2021WindowsSites)
	sc.add(Exact, "2021 Linux localhost sites (Figure 9)",
		fmt.Sprint(groundtruth.Top2021LinuxSites), fmt.Sprint(totals[groundtruth.OSLinux]),
		totals[groundtruth.OSLinux] == groundtruth.Top2021LinuxSites)
}

func compareVenn(sc *Scorecard, st *store.Store, crawl groundtruth.CrawlID, want map[groundtruth.OSSet]int, crawled map[groundtruth.CrawlID]bool) {
	if !crawled[crawl] {
		return
	}
	got := analysis.Venn(analysis.LocalSites(st, crawl, "localhost"))
	regions := make([]groundtruth.OSSet, 0, len(want))
	for r := range want {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, region := range regions {
		sc.add(Exact, fmt.Sprintf("%s overlap region %s", crawl, region),
			fmt.Sprint(want[region]), fmt.Sprint(got[region]), got[region] == want[region])
	}
}

func compareTable1(sc *Scorecard, st *store.Store, crawled map[groundtruth.CrawlID]bool) {
	measured := analysis.CrawlTable(st)
	for _, paper := range groundtruth.Table1() {
		if !crawled[paper.Crawl] {
			continue
		}
		for _, m := range measured {
			if m.Crawl != paper.Crawl || analysis.OSSetFromName(m.OS) != paper.OS {
				continue
			}
			pRate := paper.SuccessRate()
			mRate := float64(m.Successful) / float64(m.Total())
			sc.add(Rate, fmt.Sprintf("%s/%s success rate", paper.Crawl, paper.OS),
				fmt.Sprintf("%.1f%%", 100*pRate), fmt.Sprintf("%.1f%%", 100*mRate),
				within(pRate, mRate, 0.02))
			pNX := float64(paper.NameNotResolved) / float64(paper.Failed)
			mNX := float64(m.NameNotResolved) / float64(max(1, m.Failed))
			sc.add(Rate, fmt.Sprintf("%s/%s NXDOMAIN share of failures", paper.Crawl, paper.OS),
				fmt.Sprintf("%.1f%%", 100*pNX), fmt.Sprintf("%.1f%%", 100*mNX),
				within(pNX, mNX, 0.06))
		}
	}
}

func compareRollups(sc *Scorecard, st *store.Store, crawled map[groundtruth.CrawlID]bool) {
	type rollup struct {
		crawl groundtruth.CrawlID
		rows  []groundtruth.RequestRollup
	}
	for _, r := range []rollup{
		{groundtruth.CrawlTop2020, groundtruth.Figure4Top2020},
		{groundtruth.CrawlMalicious, groundtruth.Figure4Malicious},
		{groundtruth.CrawlTop2021, groundtruth.Figure8Top2021},
	} {
		if !crawled[r.crawl] {
			continue
		}
		for _, paper := range r.rows {
			osName := osNameOf(paper.OS)
			m := analysis.SchemeRollup(st, r.crawl, osName, "localhost")
			// Shape: the dominant scheme must match, and its share must
			// be within 15 points.
			pTop, pShare := dominant(paper.ByScheme, paper.Total)
			mTop, mShare := dominant(m.ByScheme, m.Total)
			sc.add(Shape, fmt.Sprintf("%s/%s dominant localhost scheme", r.crawl, osName),
				fmt.Sprintf("%s (%.0f%%)", pTop, 100*pShare),
				fmt.Sprintf("%s (%.0f%%)", mTop, 100*mShare),
				pTop == mTop && within(pShare, mShare, 0.15))
		}
	}
}

func compareTimings(sc *Scorecard, st *store.Store, crawled map[groundtruth.CrawlID]bool) {
	if !crawled[groundtruth.CrawlTop2020] {
		return
	}
	sites := analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost")
	for _, c := range []struct {
		os     groundtruth.OSSet
		median float64
		tol    float64
	}{
		{groundtruth.OSWindows, 10, 2.5},
		{groundtruth.OSLinux, 5, 2.5},
		{groundtruth.OSMac, 5, 2.5},
	} {
		m := analysis.Quantile(analysis.DelaySeconds(sites, c.os), 0.5)
		sc.add(Shape, fmt.Sprintf("2020 %s median localhost delay", osNameOf(c.os)),
			fmt.Sprintf("~%.0fs", c.median), fmt.Sprintf("%.1fs", m), within(c.median, m, c.tol))
	}
}

func compareTable3(sc *Scorecard, st *store.Store, crawled map[groundtruth.CrawlID]bool) {
	if !crawled[groundtruth.CrawlTop2020] {
		return
	}
	sites := analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost")
	win := analysis.TopN(sites, groundtruth.OSWindows, 10)
	ok := len(win) == len(groundtruth.Table3Windows2020)
	for i := range win {
		if ok && win[i].Domain != groundtruth.Table3Windows2020[i] {
			ok = false
		}
	}
	sc.add(Exact, "Table 3 Windows top-10",
		fmt.Sprint(groundtruth.Table3Windows2020[:3])+"...",
		topDomains(win), ok)
}

func topDomains(sites []analysis.SiteActivity) string {
	var names []string
	for i, s := range sites {
		if i == 3 {
			names = append(names, "...")
			break
		}
		names = append(names, s.Domain)
	}
	return fmt.Sprint(names)
}

func dominant(byScheme map[string]int, total int) (string, float64) {
	top, n := "", 0
	keys := make([]string, 0, len(byScheme))
	for k := range byScheme {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if byScheme[k] > n {
			top, n = k, byScheme[k]
		}
	}
	if total == 0 {
		return top, 0
	}
	return top, float64(n) / float64(total)
}

func osNameOf(os groundtruth.OSSet) string {
	switch os {
	case groundtruth.OSWindows:
		return "Windows"
	case groundtruth.OSLinux:
		return "Linux"
	default:
		return "Mac"
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
