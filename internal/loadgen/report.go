package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// EndpointStats is one endpoint's latency distribution for one run:
// interpolated quantiles over the telemetry log-scale histogram of
// successful responses, plus error tallies. Naive quantiles (measured
// from the actual send instead of the intended arrival) are present in
// open-loop results only; the gap between the two is the latency
// coordinated omission would have hidden.
type EndpointStats struct {
	Requests   uint64 `json:"requests"`
	Errors     uint64 `json:"errors,omitempty"`
	Rejected   uint64 `json:"rejected_429,omitempty"`
	MeanNS     uint64 `json:"mean_ns"`
	P50NS      uint64 `json:"p50_ns"`
	P90NS      uint64 `json:"p90_ns"`
	P99NS      uint64 `json:"p99_ns"`
	P999NS     uint64 `json:"p999_ns"`
	NaiveP50NS uint64 `json:"naive_p50_ns,omitempty"`
	NaiveP99NS uint64 `json:"naive_p99_ns,omitempty"`
}

// Result is one load run: totals, achieved throughput, and the
// per-endpoint plus merged-overall latency distributions.
type Result struct {
	Mode            string                   `json:"mode"` // closed | open
	Workers         int                      `json:"workers"`
	OfferedRate     float64                  `json:"offered_rate_per_sec,omitempty"`
	DurationSeconds float64                  `json:"duration_seconds"`
	Requests        uint64                   `json:"requests"`
	Errors          uint64                   `json:"errors"`
	Rejected        uint64                   `json:"rejected_429"`
	Throughput      float64                  `json:"throughput_per_sec"`
	Overall         EndpointStats            `json:"overall"`
	Endpoints       map[string]EndpointStats `json:"endpoints"`
}

// SweepPoint is one step of the throughput–latency curve: the offered
// open-loop rate against what the server actually absorbed and the
// coordinated-omission-corrected tail it imposed doing so.
type SweepPoint struct {
	OfferedRate float64 `json:"offered_rate_per_sec"`
	Throughput  float64 `json:"throughput_per_sec"`
	P50NS       uint64  `json:"p50_ns"`
	P99NS       uint64  `json:"p99_ns"`
	Errors      uint64  `json:"errors"`
	Rejected    uint64  `json:"rejected_429"`
}

// result condenses one run's registry into a Result.
func (rn *run) result(wall time.Duration, workers int, offered float64) *Result {
	res := &Result{
		Mode:            rn.mode,
		Workers:         workers,
		OfferedRate:     offered,
		DurationSeconds: wall.Seconds(),
		Endpoints:       make(map[string]EndpointStats, len(rn.r.eps)),
	}
	open := rn.mode == "open"
	var overall, overallNaive telemetry.HistogramSnapshot
	for i, ep := range rn.r.eps {
		m := &rn.eps[i]
		lat, naive := m.lat.Snapshot(), m.naive.Snapshot()
		st := statsFrom(lat)
		st.Requests = m.reqs.Value()
		for _, kind := range []string{"network", "request", "http_4xx", "http_5xx"} {
			st.Errors += rn.reg.CounterValue(MetricErrors, "endpoint", ep.Name, "kind", kind)
		}
		st.Rejected = m.rejected.Value()
		if open {
			st.NaiveP50NS = naive.Quantile(0.50)
			st.NaiveP99NS = naive.Quantile(0.99)
		}
		res.Endpoints[ep.Name] = st
		res.Requests += st.Requests
		res.Errors += st.Errors
		res.Rejected += st.Rejected
		overall = overall.Merge(lat)
		overallNaive = overallNaive.Merge(naive)
	}
	res.Overall = statsFrom(overall)
	res.Overall.Requests = res.Requests
	res.Overall.Errors = res.Errors
	res.Overall.Rejected = res.Rejected
	if open {
		res.Overall.NaiveP50NS = overallNaive.Quantile(0.50)
		res.Overall.NaiveP99NS = overallNaive.Quantile(0.99)
	}
	if wall > 0 {
		res.Throughput = float64(res.Requests) / wall.Seconds()
	}
	return res
}

func statsFrom(h telemetry.HistogramSnapshot) EndpointStats {
	st := EndpointStats{
		P50NS:  h.Quantile(0.50),
		P90NS:  h.Quantile(0.90),
		P99NS:  h.Quantile(0.99),
		P999NS: h.Quantile(0.999),
	}
	if h.Count > 0 {
		st.MeanNS = h.Sum / h.Count
	}
	return st
}

// ServerStats is the server-observed half of the comparison: one query
// endpoint's serve_query_ns distribution as scraped from knockserved's
// /metrics query section after the run.
type ServerStats struct {
	Requests uint64            `json:"requests"`
	Cache    map[string]uint64 `json:"cache,omitempty"`
	P50NS    uint64            `json:"p50_ns"`
	P99NS    uint64            `json:"p99_ns"`
}

// SLO is the CI gate's verdict over a bench.
type SLO struct {
	P99NS    uint64 `json:"p99_ns"` // the target
	Pass     bool   `json:"pass"`
	WorstEP  string `json:"worst_endpoint,omitempty"`
	WorstNS  uint64 `json:"worst_p99_ns,omitempty"`
	WorstRun string `json:"worst_mode,omitempty"`
}

// Bench is the whole harness report — the BENCH_load.json shape. Every
// run that executed is present; the build identity ties the numbers to
// a binary so per-PR trajectories are attributable.
type Bench struct {
	BaseURL   string                 `json:"base_url"`
	Version   string                 `json:"version"`
	GoVersion string                 `json:"go_version"`
	Closed    *Result                `json:"closed,omitempty"`
	Open      *Result                `json:"open,omitempty"`
	Sweep     []SweepPoint           `json:"sweep,omitempty"`
	Server    map[string]ServerStats `json:"server,omitempty"`
	SLO       *SLO                   `json:"slo,omitempty"`
}

// Gate evaluates the SLO over the headline runs (closed and open —
// the sweep is a capacity probe and deliberately exempt): every
// endpoint's corrected p99 must be at or under slo. The verdict is
// recorded on the bench and returned.
func (b *Bench) Gate(slo time.Duration) *SLO {
	v := &SLO{P99NS: uint64(slo), Pass: true}
	for _, res := range []*Result{b.Closed, b.Open} {
		if res == nil {
			continue
		}
		for name, st := range res.Endpoints {
			if st.Requests == 0 {
				continue
			}
			if st.P99NS > v.WorstNS {
				v.WorstNS, v.WorstEP, v.WorstRun = st.P99NS, name, res.Mode
			}
			if st.P99NS > uint64(slo) {
				v.Pass = false
			}
		}
	}
	b.SLO = v
	return v
}

// WriteJSON writes the bench as indented JSON (BENCH_load.json).
func (b *Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteText renders the bench as the human table: one block per run
// with per-endpoint quantile rows (knocktrace-style), the sweep curve,
// the server-observed comparison, and the SLO verdict.
func (b *Bench) WriteText(w io.Writer) {
	fmt.Fprintf(w, "knockload — %s (version %s, %s)\n", b.BaseURL, b.Version, b.GoVersion)
	writeRun(w, b.Closed)
	writeRun(w, b.Open)
	if len(b.Sweep) > 0 {
		fmt.Fprintf(w, "\nthroughput–latency sweep (open-loop)\n")
		fmt.Fprintf(w, "%10s %10s %10s %10s %8s %6s\n", "rate", "achieved", "p50", "p99", "errors", "429")
		for _, p := range b.Sweep {
			fmt.Fprintf(w, "%10.1f %10.1f %10s %10s %8d %6d\n",
				p.OfferedRate, p.Throughput, fmtNS(p.P50NS), fmtNS(p.P99NS), p.Errors, p.Rejected)
		}
	}
	if len(b.Server) > 0 {
		fmt.Fprintf(w, "\nserver-observed (serve_query_ns via /metrics)\n")
		fmt.Fprintf(w, "%-22s %9s %6s %10s %10s\n", "endpoint", "reqs", "hit%", "p50", "p99")
		for _, name := range sortedStatKeys(b.Server) {
			st := b.Server[name]
			var hits uint64
			for outcome, n := range st.Cache {
				if outcome == "hit" || outcome == "revalidated" {
					hits += n
				}
			}
			hitRate := 0.0
			if st.Requests > 0 {
				hitRate = 100 * float64(hits) / float64(st.Requests)
			}
			fmt.Fprintf(w, "%-22s %9d %5.1f%% %10s %10s\n",
				name, st.Requests, hitRate, fmtNS(st.P50NS), fmtNS(st.P99NS))
		}
	}
	if b.SLO != nil {
		verdict := "PASS"
		if !b.SLO.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "\nSLO: p99 <= %s — %s (worst %s %s in %s mode)\n",
			fmtNS(b.SLO.P99NS), verdict, b.SLO.WorstEP, fmtNS(b.SLO.WorstNS), b.SLO.WorstRun)
	}
}

func writeRun(w io.Writer, res *Result) {
	if res == nil {
		return
	}
	fmt.Fprintf(w, "\n%s-loop", res.Mode)
	if res.OfferedRate > 0 {
		fmt.Fprintf(w, "  rate=%.1f/s", res.OfferedRate)
	}
	fmt.Fprintf(w, "  workers=%d  duration=%.1fs  requests=%d  throughput=%.1f/s  errors=%d  429=%d\n",
		res.Workers, res.DurationSeconds, res.Requests, res.Throughput, res.Errors, res.Rejected)
	naive := res.Mode == "open"
	header := fmt.Sprintf("%-22s %9s %6s %6s %10s %10s %10s %10s", "endpoint", "reqs", "errs", "429", "p50", "p90", "p99", "p99.9")
	if naive {
		header += fmt.Sprintf(" %10s", "naive-p99")
	}
	fmt.Fprintln(w, header)
	names := make([]string, 0, len(res.Endpoints))
	for name := range res.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	names = append(names, "overall")
	for _, name := range names {
		st, ok := res.Endpoints[name]
		if name == "overall" {
			st, ok = res.Overall, true
		}
		if !ok || st.Requests == 0 {
			continue
		}
		row := fmt.Sprintf("%-22s %9d %6d %6d %10s %10s %10s %10s",
			name, st.Requests, st.Errors, st.Rejected,
			fmtNS(st.P50NS), fmtNS(st.P90NS), fmtNS(st.P99NS), fmtNS(st.P999NS))
		if naive {
			row += fmt.Sprintf(" %10s", fmtNS(st.NaiveP99NS))
		}
		fmt.Fprintln(w, row)
	}
}

func sortedStatKeys(m map[string]ServerStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fmtNS renders nanoseconds the way knocktrace does: the coarsest unit
// that keeps one decimal of precision.
func fmtNS(ns uint64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
