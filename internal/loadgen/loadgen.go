// Package loadgen is the load harness behind cmd/knockload: it drives
// an HTTP service (knockserved's query and ingest planes) with a
// weighted endpoint mix in two modes and reports latency distributions
// through the telemetry registry's log-scale histograms.
//
// Closed-loop mode runs a fixed number of workers, each issuing its
// next request as soon as the previous one completes. It measures the
// service's capacity — the throughput the server sustains at a given
// concurrency — but its latency numbers are self-censoring: a stalled
// server stops receiving requests, so the stall is recorded once
// instead of once per would-be arrival.
//
// Open-loop mode fixes an arrival schedule instead: request i has an
// intended send time of start + i/rate, taken from a shared virtual
// schedule, regardless of how the server is doing. Latency is measured
// from the *intended* send time to response completion — the
// coordinated-omission correction — so when the server stalls, every
// arrival the stall delayed carries the delay it actually imposed on a
// user. The naive (actual-send-to-completion) measurement is recorded
// alongside for comparison; under a stall the two diverge sharply,
// which is exactly the harness's reason to exist.
//
// A stepped-rate sweep chains open-loop runs at increasing rates into
// a throughput–latency curve, locating the knee where queueing starts
// to dominate.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// Metric families the harness records per run (into a fresh private
// registry, so each run's quantiles are its own) and mirrors
// cumulatively into Options.Registry when set (for live /metrics
// watching during long runs).
const (
	MetricLatencyNS      = "load_latency_ns"       // histogram, label: endpoint (+mode on the mirror)
	MetricNaiveLatencyNS = "load_naive_latency_ns" // histogram, open loop: measured from actual send
	MetricRequests       = "load_requests_total"   // label: endpoint
	MetricErrors         = "load_errors_total"     // labels: endpoint, kind (network|request|http_4xx|http_5xx)
	MetricRejected       = "load_rejected_total"   // 429 responses, label: endpoint
)

// Request is one materialized request of an endpoint's stream.
type Request struct {
	Method      string
	URL         string
	Body        []byte // nil for body-less methods
	ContentType string
}

// Endpoint is one member of the load mix. Request is called with a
// monotonically increasing request index so the endpoint can rotate
// query parameters (different domains, different filters) across the
// run; it must be safe for concurrent use.
type Endpoint struct {
	Name    string
	Weight  int // relative share of the mix; <= 0 means 1
	Request func(i uint64) Request
}

// Options tune the harness; the zero value picks usable defaults.
type Options struct {
	// Client issues the requests (default: a dedicated client with a
	// generous connection pool and Timeout as its per-request bound).
	Client *http.Client
	// Timeout bounds one request when the default client is built
	// (default 10s). Ignored when Client is set.
	Timeout time.Duration
	// Registry, when set, receives a cumulative mirror of every
	// observation under a "mode" label — the live view a -status-addr
	// listener exposes while a run is in flight.
	Registry *telemetry.Registry
	// Observer, when set, is called after every completed request (ok
	// reports a 2xx response). knockload feeds the health tracker's
	// load leg through it.
	Observer func(endpoint string, d time.Duration, ok bool)
	// TraceSeed seeds the deterministic per-request trace IDs every
	// request carries as a W3C traceparent header. The server joins
	// them: its serve_query_ns exemplars and server-side request spans
	// link back to individual load requests. Identically-seeded runs
	// send identical trace IDs.
	TraceSeed uint64
}

// Runner drives one endpoint mix against one service.
type Runner struct {
	opts Options
	eps  []Endpoint
	ring []int // weighted round-robin of endpoint indexes
}

// New builds a runner over the endpoint mix.
func New(endpoints []Endpoint, opts Options) (*Runner, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("loadgen: no endpoints")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		}
	}
	r := &Runner{opts: opts, eps: endpoints}
	// The weighted ring makes the mix deterministic and exact: request
	// i always maps to ring[i % len(ring)], independent of worker
	// scheduling.
	for idx, ep := range endpoints {
		if ep.Name == "" {
			return nil, fmt.Errorf("loadgen: endpoint %d has no name", idx)
		}
		if ep.Request == nil {
			return nil, fmt.Errorf("loadgen: endpoint %q has no request builder", ep.Name)
		}
		w := ep.Weight
		if w <= 0 {
			w = 1
		}
		for n := 0; n < w; n++ {
			r.ring = append(r.ring, idx)
		}
	}
	return r, nil
}

// epMeters is one endpoint's pre-resolved metric handles for one run —
// the hot path never rebuilds metric keys.
type epMeters struct {
	lat, naive *telemetry.Histogram
	reqs       *telemetry.Counter
	rejected   *telemetry.Counter
	// mirror handles into Options.Registry; nil when no mirror is set.
	mLat, mNaive *telemetry.Histogram
}

// run is one execution's shared state.
type run struct {
	r    *Runner
	mode string
	reg  *telemetry.Registry
	eps  []epMeters
}

func (r *Runner) newRun(mode string) *run {
	rn := &run{r: r, mode: mode, reg: telemetry.NewRegistry(), eps: make([]epMeters, len(r.eps))}
	for i, ep := range r.eps {
		m := &rn.eps[i]
		m.lat = rn.reg.Histogram(MetricLatencyNS, "endpoint", ep.Name)
		m.naive = rn.reg.Histogram(MetricNaiveLatencyNS, "endpoint", ep.Name)
		m.reqs = rn.reg.Counter(MetricRequests, "endpoint", ep.Name)
		m.rejected = rn.reg.Counter(MetricRejected, "endpoint", ep.Name)
		if mr := r.opts.Registry; mr != nil {
			m.mLat = mr.Histogram(MetricLatencyNS, "endpoint", ep.Name, "mode", mode)
			m.mNaive = mr.Histogram(MetricNaiveLatencyNS, "endpoint", ep.Name, "mode", mode)
		}
	}
	return rn
}

// do issues request i of the schedule. intended is the zero time in
// closed-loop mode (latency measured from the actual send); in open-
// loop mode it is the arrival the schedule assigned, and latency is
// measured from it — the coordinated-omission correction.
func (rn *run) do(i uint64, intended time.Time) {
	epIdx := rn.r.ring[i%uint64(len(rn.r.ring))]
	ep, m := &rn.r.eps[epIdx], &rn.eps[epIdx]
	spec := ep.Request(i)
	method := spec.Method
	if method == "" {
		method = http.MethodGet
	}
	var body io.Reader
	if spec.Body != nil {
		body = bytes.NewReader(spec.Body)
	}
	req, err := http.NewRequest(method, spec.URL, body)
	if err != nil {
		rn.fail(ep, m, "request")
		return
	}
	if spec.ContentType != "" {
		req.Header.Set("Content-Type", spec.ContentType)
	}
	// Every request carries its own deterministic trace context: the
	// harness is the trace root, the server's request span its child.
	trace := telemetry.DeriveTraceID(rn.r.opts.TraceSeed, "load", rn.mode, ep.Name, strconv.FormatUint(i, 10))
	req.Header.Set(telemetry.TraceparentHeader, telemetry.SpanContext{
		TraceID: trace,
		SpanID:  telemetry.DeriveSpanID(trace, "request"),
	}.Traceparent())
	sent := time.Now()
	resp, err := rn.r.opts.Client.Do(req)
	if err != nil {
		rn.fail(ep, m, "network")
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	end := time.Now()
	m.reqs.Inc()
	naive := end.Sub(sent)
	corrected := naive
	if !intended.IsZero() {
		corrected = end.Sub(intended)
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		m.rejected.Inc()
		rn.observe(ep, corrected, false)
	case resp.StatusCode >= 500:
		rn.err(ep, m, "http_5xx", corrected)
	case resp.StatusCode >= 400:
		rn.err(ep, m, "http_4xx", corrected)
	default:
		m.lat.ObserveDuration(corrected)
		m.naive.ObserveDuration(naive)
		if m.mLat != nil {
			m.mLat.ObserveDuration(corrected)
			m.mNaive.ObserveDuration(naive)
		}
		rn.observe(ep, corrected, true)
	}
}

func (rn *run) fail(ep *Endpoint, m *epMeters, kind string) {
	m.reqs.Inc()
	rn.err(ep, m, kind, 0)
}

func (rn *run) err(ep *Endpoint, _ *epMeters, kind string, d time.Duration) {
	rn.reg.Counter(MetricErrors, "endpoint", ep.Name, "kind", kind).Inc()
	if mr := rn.r.opts.Registry; mr != nil {
		mr.Counter(MetricErrors, "endpoint", ep.Name, "kind", kind, "mode", rn.mode).Inc()
	}
	rn.observe(ep, d, false)
}

func (rn *run) observe(ep *Endpoint, d time.Duration, ok bool) {
	if obs := rn.r.opts.Observer; obs != nil {
		obs(ep.Name, d, ok)
	}
}

// Closed runs the closed-loop mode: workers concurrent loops, each
// sending its next request the moment the previous response is read,
// until d elapses (or ctx is canceled). It measures capacity at that
// concurrency; latencies are service times, not user-visible waits.
func (r *Runner) Closed(ctx context.Context, workers int, d time.Duration) (*Result, error) {
	if workers <= 0 {
		workers = 1
	}
	if d <= 0 {
		return nil, fmt.Errorf("loadgen: closed-loop duration must be positive")
	}
	rn := r.newRun("closed")
	start := time.Now()
	deadline := start.Add(d)
	var idx atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) && ctx.Err() == nil {
				rn.do(idx.Add(1)-1, time.Time{})
			}
		}()
	}
	wg.Wait()
	res := rn.result(time.Since(start), workers, 0)
	return res, ctx.Err()
}

// Open runs the open-loop mode: a fixed arrival schedule of rate
// requests per second for duration d, issued by up to inflight
// concurrent senders pulling from the shared virtual schedule. Every
// scheduled arrival is eventually sent even if the server falls behind
// (the run extends past d until the backlog drains), and its latency
// is charged from its intended send time.
func (r *Runner) Open(ctx context.Context, rate float64, inflight int, d time.Duration) (*Result, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop rate must be positive")
	}
	if d <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop duration must be positive")
	}
	if inflight <= 0 {
		inflight = 256
	}
	total := uint64(float64(d) / float64(time.Second) * rate)
	if total == 0 {
		total = 1
	}
	rn := r.newRun("open")
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	var idx atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := idx.Add(1) - 1
				if i >= total {
					return
				}
				intended := start.Add(time.Duration(i) * interval)
				if wait := time.Until(intended); wait > 0 {
					select {
					case <-time.After(wait):
					case <-ctx.Done():
						return
					}
				}
				rn.do(i, intended)
			}
		}()
	}
	wg.Wait()
	res := rn.result(time.Since(start), inflight, rate)
	return res, ctx.Err()
}

// Sweep chains open-loop runs at each offered rate for step seconds
// apiece, producing the throughput–latency curve. Results carry every
// per-endpoint distribution; the condensed curve is in Points.
func (r *Runner) Sweep(ctx context.Context, rates []float64, inflight int, step time.Duration) ([]SweepPoint, []*Result, error) {
	var points []SweepPoint
	var results []*Result
	for _, rate := range rates {
		res, err := r.Open(ctx, rate, inflight, step)
		if err != nil {
			return points, results, err
		}
		results = append(results, res)
		points = append(points, SweepPoint{
			OfferedRate: rate,
			Throughput:  res.Throughput,
			P50NS:       res.Overall.P50NS,
			P99NS:       res.Overall.P99NS,
			Errors:      res.Errors,
			Rejected:    res.Rejected,
		})
	}
	return points, results, nil
}
