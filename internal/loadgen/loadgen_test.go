package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// getEndpoint builds a GET endpoint against base with a fixed path.
func getEndpoint(name, base, path string, weight int) Endpoint {
	return Endpoint{
		Name:   name,
		Weight: weight,
		Request: func(i uint64) Request {
			return Request{URL: base + path}
		},
	}
}

func TestClosedLoopMixAndTotals(t *testing.T) {
	var hitsA, hitsB atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/a":
			hitsA.Add(1)
		case "/b":
			hitsB.Add(1)
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	var observed atomic.Uint64
	reg := telemetry.NewRegistry()
	r, err := New([]Endpoint{
		getEndpoint("a", ts.URL, "/a", 3),
		getEndpoint("b", ts.URL, "/b", 1),
	}, Options{
		Registry: reg,
		Observer: func(string, time.Duration, bool) { observed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Closed(context.Background(), 4, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" || res.Workers != 4 {
		t.Fatalf("result header = %+v", res)
	}
	if res.Requests == 0 || res.Requests != hitsA.Load()+hitsB.Load() {
		t.Fatalf("requests = %d, server saw %d+%d", res.Requests, hitsA.Load(), hitsB.Load())
	}
	if res.Errors != 0 || res.Rejected != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	// The weighted ring keeps the 3:1 mix exact to within one ring lap.
	a, b := res.Endpoints["a"].Requests, res.Endpoints["b"].Requests
	if a != hitsA.Load() || b != hitsB.Load() {
		t.Fatalf("per-endpoint counts diverge from server: %d/%d vs %d/%d", a, b, hitsA.Load(), hitsB.Load())
	}
	if b == 0 || a < 2*b || a > 4*b+4 {
		t.Fatalf("mix off: a=%d b=%d, want ~3:1", a, b)
	}
	if res.Overall.Requests != res.Requests || res.Overall.P50NS == 0 || res.Overall.P999NS < res.Overall.P50NS {
		t.Fatalf("overall stats implausible: %+v", res.Overall)
	}
	// Closed-loop results carry no naive quantiles (they would equal the
	// corrected ones).
	if res.Overall.NaiveP99NS != 0 {
		t.Fatalf("closed-loop result has naive quantiles: %+v", res.Overall)
	}
	if observed.Load() != res.Requests {
		t.Fatalf("observer saw %d of %d requests", observed.Load(), res.Requests)
	}
	// The mirror registry carries the cumulative live view under a mode
	// label.
	fam := reg.HistogramFamily(MetricLatencyNS)
	var mirrored uint64
	for _, s := range fam {
		if s.Labels["mode"] != "closed" {
			t.Fatalf("mirror series lost mode label: %+v", s.Labels)
		}
		mirrored += s.Hist.Count
	}
	if mirrored != res.Requests {
		t.Fatalf("mirror registry has %d observations, want %d", mirrored, res.Requests)
	}
}

func TestOpenLoopSchedule(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	r, err := New([]Endpoint{getEndpoint("a", ts.URL, "/a", 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Open(context.Background(), 500, 32, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The virtual schedule is exact: rate * duration arrivals, every one
	// of them sent.
	if res.Requests != 200 {
		t.Fatalf("requests = %d, want exactly 200", res.Requests)
	}
	if res.Mode != "open" || res.OfferedRate != 500 {
		t.Fatalf("result header = %+v", res)
	}
	// A keeping-up server shows corrected ≈ naive.
	if res.Overall.NaiveP99NS == 0 {
		t.Fatal("open-loop result must carry naive quantiles")
	}
	if res.Overall.P99NS > uint64(100*time.Millisecond) {
		t.Fatalf("unstalled corrected p99 = %s, implausibly high", time.Duration(res.Overall.P99NS))
	}
}

// TestCoordinatedOmissionCorrection is the harness's reason to exist:
// against a server that freezes for stall, the corrected open-loop p99
// must surface approximately the stall duration, while the naive
// send-time measurement — which only charges the stall to the few
// requests actually in flight — stays misleadingly small.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	const stall = 400 * time.Millisecond
	var gate sync.RWMutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gate.RLock()
		gate.RUnlock()
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	// Freeze the server 100ms into the run: every request arriving
	// during the stall window blocks until it lifts.
	timer := time.AfterFunc(100*time.Millisecond, func() {
		gate.Lock()
		time.Sleep(stall)
		gate.Unlock()
	})
	defer timer.Stop()

	r, err := New([]Endpoint{getEndpoint("a", ts.URL, "/a", 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Open(context.Background(), 1000, 8, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1000 || res.Errors != 0 {
		t.Fatalf("run totals: %+v", res)
	}
	corrected := time.Duration(res.Overall.P99NS)
	naive := time.Duration(res.Overall.NaiveP99NS)
	t.Logf("corrected p99 = %v, naive p99 = %v (stall %v)", corrected, naive, stall)
	// Corrected p99 ≈ stall: the ~400 arrivals scheduled during the
	// freeze each carry the wait the freeze imposed on them.
	if corrected < stall/2 {
		t.Errorf("corrected p99 = %v, want >= %v (stall %v not surfaced)", corrected, stall/2, stall)
	}
	if corrected > 3*stall {
		t.Errorf("corrected p99 = %v, implausibly above the stall %v", corrected, stall)
	}
	// Naive p99 hides it: only the 8 in-flight requests ever measured
	// the freeze from their send time — under 1% of the run.
	if naive > stall/4 {
		t.Errorf("naive p99 = %v, want < %v (coordinated omission should hide the stall)", naive, stall/4)
	}
	if corrected < 4*naive {
		t.Errorf("corrected (%v) and naive (%v) tails must diverge under a stall", corrected, naive)
	}
}

func TestErrorAndRejectionTallies(t *testing.T) {
	var n atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 3 {
		case 0:
			w.WriteHeader(http.StatusTooManyRequests)
		case 1:
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.Write([]byte(`{}`))
		}
	}))
	defer ts.Close()
	r, err := New([]Endpoint{getEndpoint("a", ts.URL, "/a", 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Closed(context.Background(), 2, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.Rejected == 0 {
		t.Fatalf("expected 5xx and 429 tallies: %+v", res)
	}
	st := res.Endpoints["a"]
	if st.Errors != res.Errors || st.Rejected != res.Rejected {
		t.Fatalf("per-endpoint tallies diverge: %+v vs %+v", st, res)
	}
	// Only 2xx responses feed the latency histogram.
	okResponses := res.Requests - res.Errors - res.Rejected
	if okResponses == 0 {
		t.Fatal("no successful responses in the mix")
	}
}

func TestSweepCurveAndSLOGate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	r, err := New([]Endpoint{getEndpoint("a", ts.URL, "/a", 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	points, results, err := r.Sweep(context.Background(), []float64{100, 200}, 32, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(results) != 2 {
		t.Fatalf("sweep produced %d points / %d results, want 2/2", len(points), len(results))
	}
	for i, p := range points {
		if p.OfferedRate != []float64{100, 200}[i] || p.Throughput <= 0 || p.P99NS == 0 {
			t.Fatalf("sweep point %d implausible: %+v", i, p)
		}
	}

	bench := &Bench{BaseURL: ts.URL, Version: "test", GoVersion: "go-test", Open: results[1], Sweep: points}
	if v := bench.Gate(time.Nanosecond); v.Pass {
		t.Fatal("1ns SLO must fail against a 2ms server")
	}
	if bench.SLO.WorstEP != "a" || bench.SLO.WorstNS == 0 {
		t.Fatalf("gate verdict lost the offender: %+v", bench.SLO)
	}
	if v := bench.Gate(10 * time.Second); !v.Pass {
		t.Fatalf("10s SLO must pass: %+v", v)
	}

	var text strings.Builder
	bench.WriteText(&text)
	for _, want := range []string{"open-loop", "rate=200.0/s", "endpoint", "overall", "sweep", "SLO: p99 <= 10.00s — PASS", "naive-p99"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	var jsonOut strings.Builder
	if err := bench.WriteJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p99_ns"`, `"offered_rate_per_sec"`, `"mode": "open"`, `"slo"`, `"base_url"`} {
		if !strings.Contains(jsonOut.String(), want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}
