package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/knockandtalk/knockandtalk/internal/store"
)

// The lease journal is the coordinator's crash-replayable record of
// every lease transition, in the store WAL's frame format
// (length-prefixed, CRC32C-checksummed, sequence-numbered records): a
// restarted coordinator replays it to resume mid-campaign instead of
// restarting the fleet from zero. Transitions are rare — per lease, not
// per visit — so every append is flushed and fsynced before the
// coordinator acts on it.

// journalMagic begins every lease journal; a file with a different
// header is not ours to truncate.
const journalMagic = "knockfleet1\n"

// journalName is the journal's file name inside the campaign OutDir.
const journalName = "fleet.journal"

// journalEntry is the JSON payload of one frame.
type journalEntry struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"` // campaign | acquire | expire | complete

	// acquire / expire / complete:
	Lease  string `json:"lease,omitempty"`
	Worker string `json:"worker,omitempty"`

	// complete:
	Attempted  int     `json:"attempted,omitempty"`
	Successful int     `json:"successful,omitempty"`
	Failed     int     `json:"failed,omitempty"`
	Locals     int     `json:"locals,omitempty"`
	Retention  int     `json:"retention_errors,omitempty"`
	Duplicates int     `json:"duplicates,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms,omitempty"`
	UploadMS   float64 `json:"upload_ms,omitempty"`

	// campaign (the header record, always seq 1): the partition
	// parameters, pinned so a resumed coordinator refuses a directory
	// produced by a differently-shaped campaign — its lease IDs would
	// name different target ranges.
	Name         string   `json:"name,omitempty"`
	Scale        float64  `json:"scale,omitempty"`
	Seed         uint64   `json:"seed,omitempty"`
	Crawls       []string `json:"crawls,omitempty"`
	LeaseTargets int      `json:"lease_targets,omitempty"`
	RetainLogs   bool     `json:"retain_logs,omitempty"`
	NetProfile   string   `json:"net_profile,omitempty"`
}

// journal is the append side. Appends are serialized by the
// coordinator's lock; the journal adds no locking of its own.
type journal struct {
	f       *os.File
	nextSeq uint64
	err     error // sticky: durability broke, the campaign continues
}

// openJournal opens (or creates) the journal in dir, replaying every
// valid record into apply — torn tails are truncated, exactly the
// store WAL's recovery contract — and returns the journal positioned
// for appends plus the number of records replayed.
func openJournal(dir string, apply func(journalEntry) error) (*journal, int, error) {
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: opening journal: %w", err)
	}
	j := &journal{f: f, nextSeq: 1}
	var replayErr error
	valid, records, tailErr := store.ReplayFrames(f, journalMagic, func(payload []byte) error {
		var e journalEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return err
		}
		if e.Seq >= j.nextSeq {
			j.nextSeq = e.Seq + 1
		}
		if replayErr == nil {
			replayErr = apply(e)
		}
		return nil
	})
	if tailErr != nil && !errors.Is(tailErr, store.ErrTornFrame) {
		f.Close()
		return nil, 0, fmt.Errorf("fleet: %s: %v", journalName, tailErr)
	}
	if replayErr != nil {
		f.Close()
		return nil, 0, replayErr
	}
	if valid == 0 {
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(journalMagic), 0)
		}
		if err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("fleet: initializing journal: %w", err)
		}
		valid = int64(len(journalMagic))
	} else if tailErr != nil {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("fleet: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("fleet: seeking journal: %w", err)
	}
	return j, records, nil
}

// append journals one transition durably: the frame is written and
// fsynced before return, so a transition the coordinator acts on
// survives a crash. Errors are sticky — the in-memory lease state stays
// authoritative, but a resumed coordinator would see pre-error history.
func (j *journal) append(e journalEntry) error {
	if j.err != nil {
		return j.err
	}
	e.Seq = j.nextSeq
	payload, err := json.Marshal(e)
	if err != nil {
		j.err = fmt.Errorf("fleet: encoding journal entry: %w", err)
		return j.err
	}
	if _, err := store.AppendFrame(j.f, payload); err != nil {
		j.err = fmt.Errorf("fleet: appending journal entry: %w", err)
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("fleet: syncing journal: %w", err)
		return j.err
	}
	j.nextSeq++
	return nil
}

// Err returns the journal's sticky error, if any append has failed.
func (j *journal) Err() error { return j.err }

func (j *journal) close() error {
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	if err != nil && j.err == nil {
		j.err = fmt.Errorf("fleet: closing journal: %w", err)
	}
	return j.err
}
