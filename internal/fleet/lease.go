// Package fleet coordinates a distributed crawl: a coordinator
// partitions a campaign world into leases — contiguous domain ranges
// within one (crawl, OS) leg — and hands them to workers over an HTTP
// control plane. Workers crawl their leased slice of the shared
// deterministic world, heartbeat progress through lease renewals, and
// upload their shard store on completion; the coordinator append-merges
// uploads with idempotent dedup keyed on visited URL, so a lease that
// expires (worker death) can be reassigned and a slow-but-alive worker
// that delivers late cannot corrupt the merge. Every lease transition
// is journaled in the store WAL's frame format, so a restarted
// coordinator resumes the campaign instead of restarting it.
//
// Because every per-site simulation derives from (seed, domain, index)
// alone, the merged store is byte-identical to a single-process run of
// the same campaign — however the fleet sliced, raced, or died.
package fleet

import (
	"fmt"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// Lease is one unit of fleet work: the contiguous target range
// [Lo, Hi) of one (crawl, OS) leg, plus everything a worker needs to
// rebuild exactly the coordinator's world around it.
type Lease struct {
	ID    string `json:"id"`
	Crawl string `json:"crawl"`
	OS    string `json:"os"`
	// Lo and Hi bound the leased slice of the leg's rank-ordered target
	// list: indices [Lo, Hi) into the same deterministic order every
	// fleet member derives from (crawl, scale).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// FirstDomain and LastDomain name the range's endpoints, for humans
	// reading journals and manifests; workers trust the indices.
	FirstDomain string `json:"first_domain"`
	LastDomain  string `json:"last_domain"`

	// World parameters, identical across the fleet. NetProfile names the
	// network-condition profile every worker crawls under (empty =
	// nominal); older journals without it replay as nominal.
	Scale      float64 `json:"scale"`
	Seed       uint64  `json:"seed"`
	RetainLogs bool    `json:"retain_logs"`
	NetProfile string  `json:"net_profile,omitempty"`

	// TTLSeconds is how long the holder has between renewals before the
	// coordinator declares it dead and reassigns the lease.
	TTLSeconds float64 `json:"ttl_seconds"`

	// Traceparent carries the campaign trace's per-lease span in W3C
	// form, so the worker's lease trace parents under the coordinator's
	// campaign root. Coordinator→worker propagation rides the lease JSON
	// (the control plane's response body); worker→coordinator rides the
	// traceparent request header. Empty or malformed values cost
	// nothing: the worker roots its own trace (propagation loss yields a
	// well-formed standalone trace, never a broken one).
	Traceparent string `json:"traceparent,omitempty"`
}

// Targets returns the number of visits the lease covers.
func (l *Lease) Targets() int { return l.Hi - l.Lo }

// legKey identifies one (crawl, OS) leg of the campaign.
type legKey struct {
	crawl groundtruth.CrawlID
	os    hostenv.OS
}

func (k legKey) String() string { return string(k.crawl) + "/" + k.os.String() }

// osBit maps a host OS to its ground-truth coverage bit (mirrors the
// crawler's unexported mapping).
func osBit(os hostenv.OS) groundtruth.OSSet {
	switch os {
	case hostenv.Windows:
		return groundtruth.OSWindows
	case hostenv.Linux:
		return groundtruth.OSLinux
	default:
		return groundtruth.OSMac
	}
}

// legsFor expands the crawl list into (crawl, OS) legs in canonical
// order: crawls as configured, OSes in the paper's table order, 2021
// skipping Mac — the same order crawler.RunAll walks.
func legsFor(crawls []groundtruth.CrawlID) []legKey {
	var legs []legKey
	for _, crawl := range crawls {
		osSet := groundtruth.OSesFor(crawl)
		for _, os := range hostenv.AllOS {
			if !osSet.Has(osBit(os)) {
				continue
			}
			legs = append(legs, legKey{crawl: crawl, os: os})
		}
	}
	return legs
}

// partition slices every leg of the campaign into leases of at most
// leaseTargets visits each, in canonical order. The coordinator and a
// resumed coordinator must derive the identical partition, so it
// depends only on (crawls, scale, leaseTargets) — never on runtime
// state.
func partition(crawls []groundtruth.CrawlID, scale float64, seed uint64, retainLogs bool, netProfile string, leaseTargets int, ttlSeconds float64) ([]*Lease, error) {
	var leases []*Lease
	for _, leg := range legsFor(crawls) {
		n, err := websim.TargetCount(leg.crawl, scale)
		if err != nil {
			return nil, fmt.Errorf("fleet: sizing %s: %w", leg, err)
		}
		for lo, idx := 0, 0; lo < n; lo, idx = lo+leaseTargets, idx+1 {
			hi := lo + leaseTargets
			if hi > n {
				hi = n
			}
			first, err := websim.TargetDomain(leg.crawl, scale, lo)
			if err != nil {
				return nil, err
			}
			last, err := websim.TargetDomain(leg.crawl, scale, hi-1)
			if err != nil {
				return nil, err
			}
			leases = append(leases, &Lease{
				ID:          fmt.Sprintf("%s/%s/%04d", leg.crawl, leg.os.Letter(), idx),
				Crawl:       string(leg.crawl),
				OS:          leg.os.String(),
				Lo:          lo,
				Hi:          hi,
				FirstDomain: first,
				LastDomain:  last,
				Scale:       scale,
				Seed:        seed,
				RetainLogs:  retainLogs,
				NetProfile:  netProfile,
				TTLSeconds:  ttlSeconds,
			})
		}
	}
	return leases, nil
}
