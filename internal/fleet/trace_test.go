package fleet

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

func newTestTracer(t *testing.T, path string) *telemetry.Tracer {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return telemetry.NewTracer(f, telemetry.TracerOptions{})
}

// TestFleetDistributedTrace runs the golden campaign as a traced fleet:
// a coordinator and two workers each write their own trace file, and
// cross-process assembly must stitch them into one campaign tree
// spanning all three processes — while the merged outputs stay
// byte-identical to the single-process golden campaign.
func TestFleetDistributedTrace(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := goldenConfig(t, dir)
	coordPath := filepath.Join(dir, "coord.jsonl")
	coordTracer := newTestTracer(t, coordPath)
	cfg.Tracer = coordTracer
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Run the first lease on alpha and the second on beta directly, so
	// both workers provably contribute records to the campaign trace;
	// alpha then drains the rest of the campaign.
	workerPaths := map[string]string{
		"alpha": filepath.Join(dir, "alpha.jsonl"),
		"beta":  filepath.Join(dir, "beta.jsonl"),
	}
	tracers := map[string]*telemetry.Tracer{}
	for name, path := range workerPaths {
		tracers[name] = newTestTracer(t, path)
	}
	for _, name := range []string{"alpha", "beta"} {
		client := &Client{Base: srv.URL, Worker: name}
		wcfg := WorkerConfig{Coordinator: srv.URL, Name: name, Tracer: tracers[name]}
		lease, done, _, err := client.Acquire(ctx)
		if err != nil || done || lease == nil {
			t.Fatalf("%s acquire: lease=%v done=%v err=%v", name, lease, done, err)
		}
		if _, err := runLease(ctx, wcfg, client, lease, map[legKey]*cachedWorld{}, &WorkerSummary{}); err != nil {
			t.Fatalf("%s lease %s: %v", name, lease.ID, err)
		}
	}
	if _, err := RunWorker(ctx, WorkerConfig{Coordinator: srv.URL, Name: "alpha", Tracer: tracers["alpha"]}); err != nil {
		t.Fatalf("draining worker: %v", err)
	}

	// Tracing must not perturb the science outputs.
	assertGolden(t, c, dir)

	for _, tr := range []*telemetry.Tracer{coordTracer, tracers["alpha"], tracers["beta"]} {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if tr.Dropped() != 0 {
			t.Fatalf("tracer dropped %d records", tr.Dropped())
		}
	}

	visits, err := telemetry.ReadTraceFiles(coordPath, workerPaths["alpha"], workerPaths["beta"])
	if err != nil {
		t.Fatal(err)
	}
	trees := telemetry.AssembleTraces(visits)

	// The campaign trace ID is derived, not random: recompute it the way
	// the coordinator does and look it up exactly.
	parts := []string{"fleet"}
	for _, cr := range cfg.Crawls {
		parts = append(parts, string(cr))
	}
	campaignID := telemetry.DeriveTraceID(cfg.Seed, parts...).String()
	tree, ok := telemetry.FindTrace(trees, campaignID)
	if !ok {
		t.Fatalf("campaign trace %s not assembled (have %d trees)", campaignID, len(trees))
	}
	if got := tree.Processes(); got < 3 {
		t.Fatalf("campaign tree spans %d processes (%v), want >= 3", got, tree.Sources)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("campaign tree has %d roots, want 1", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Orphan || root.Rec.ParentID != "" || root.Rec.Source != coordPath {
		t.Fatalf("campaign root: %+v", root.Rec)
	}
	var orphans int
	var walk func(n *telemetry.TraceNode)
	walk = func(n *telemetry.TraceNode) {
		if n.Orphan {
			orphans++
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, r := range tree.Roots {
		walk(r)
	}
	if orphans != 0 {
		t.Fatalf("campaign tree has %d orphan spans; full propagation must leave none", orphans)
	}

	// Per-visit traces are standalone roots whose IDs re-derive from
	// (seed, crawl, OS, URL) — the determinism identically-seeded fleet
	// runs rely on. Check every traced visit record in the worker files.
	checked := 0
	for _, v := range visits {
		if v.URL == "" || v.TraceID == "" {
			continue
		}
		want := telemetry.DeriveTraceID(cfg.Seed, v.Crawl, v.OS, v.URL)
		if v.TraceID != want.String() {
			t.Fatalf("visit %s trace ID %s, want derived %s", v.URL, v.TraceID, want)
		}
		if v.ParentID != "" {
			t.Fatalf("visit %s is not a root: parent %s", v.URL, v.ParentID)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no per-visit traced records found")
	}
}

// TestWorkerPropagationLoss strips the lease's traceparent before the
// worker runs it: the worker must degrade to a well-formed root trace
// derived from the lease identity — never a malformed or orphaned one.
func TestWorkerPropagationLoss(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c, err := New(goldenConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	tracePath := filepath.Join(dir, "worker.jsonl")
	tracer := newTestTracer(t, tracePath)
	client := &Client{Base: srv.URL, Worker: "stripped"}
	lease, done, _, err := client.Acquire(ctx)
	if err != nil || done || lease == nil {
		t.Fatalf("acquire: lease=%v done=%v err=%v", lease, done, err)
	}
	lease.Traceparent = "" // a middlebox ate the context
	wcfg := WorkerConfig{Coordinator: srv.URL, Name: "stripped", Tracer: tracer}
	if _, err := runLease(ctx, wcfg, client, lease, map[legKey]*cachedWorld{}, &WorkerSummary{}); err != nil {
		t.Fatalf("lease %s: %v", lease.ID, err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	visits, err := telemetry.ReadTraceFiles(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	wantID := telemetry.DeriveTraceID(lease.Seed, "lease", lease.ID).String()
	tree, ok := telemetry.FindTrace(telemetry.AssembleTraces(visits), wantID)
	if !ok {
		t.Fatalf("self-rooted lease trace %s missing", wantID)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("lease trace has %d roots, want 1", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Orphan {
		t.Fatal("self-rooted lease span flagged orphan")
	}
	if root.Rec.Domain != lease.ID || root.Rec.ParentID != "" {
		t.Fatalf("lease root record: %+v", root.Rec)
	}
	if root.Rec.SpanID != telemetry.DeriveSpanID(telemetry.DeriveTraceID(lease.Seed, "lease", lease.ID), "worker/stripped/"+lease.ID).String() {
		t.Fatalf("lease root span ID %s not derived from lease identity", root.Rec.SpanID)
	}
	// A garbage traceparent degrades the same way an absent one does.
	lease2, done, _, err := client.Acquire(ctx)
	if err != nil || done || lease2 == nil {
		t.Fatalf("second acquire: lease=%v done=%v err=%v", lease2, done, err)
	}
	lease2.Traceparent = "00-not-a-real-traceparent"
	trace2Path := filepath.Join(dir, "worker2.jsonl")
	tracer2 := newTestTracer(t, trace2Path)
	wcfg2 := WorkerConfig{Coordinator: srv.URL, Name: "stripped", Tracer: tracer2}
	if _, err := runLease(ctx, wcfg2, client, lease2, map[legKey]*cachedWorld{}, &WorkerSummary{}); err != nil {
		t.Fatalf("lease %s: %v", lease2.ID, err)
	}
	if err := tracer2.Close(); err != nil {
		t.Fatal(err)
	}
	visits2, err := telemetry.ReadTraceFiles(trace2Path)
	if err != nil {
		t.Fatal(err)
	}
	want2 := telemetry.DeriveTraceID(lease2.Seed, "lease", lease2.ID).String()
	tree2, ok := telemetry.FindTrace(telemetry.AssembleTraces(visits2), want2)
	if !ok {
		t.Fatalf("malformed traceparent did not degrade to the self-rooted trace %s", want2)
	}
	if len(tree2.Roots) != 1 || tree2.Roots[0].Orphan || tree2.Roots[0].Rec.ParentID != "" {
		t.Fatalf("degraded lease trace malformed: %+v", tree2.Roots[0].Rec)
	}
}
