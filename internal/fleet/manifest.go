package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/campaign"
)

// Manifest is a fleet campaign's manifest: the single-process campaign
// manifest — same stores map, same per-(crawl, OS) entry rows, so every
// existing consumer (knockreport, the examples) reads it unchanged —
// plus the fleet section recording how the work was distributed.
type Manifest struct {
	campaign.Manifest
	Fleet *Info `json:"fleet,omitempty"`
}

// Info is the distribution record of a fleet campaign.
type Info struct {
	// Workers lists every worker that completed at least one lease.
	Workers []string `json:"workers"`
	// LeaseTargets, TTLSeconds echo the partition parameters.
	LeaseTargets int     `json:"lease_targets"`
	TTLSeconds   float64 `json:"ttl_seconds"`
	// Expiries counts TTL deaths across the campaign; Reassignments
	// counts re-acquisitions after them; DuplicateVisits counts pages
	// dropped by the merge's dedup.
	Expiries        int `json:"expiries,omitempty"`
	Reassignments   int `json:"reassignments,omitempty"`
	DuplicateVisits int `json:"duplicate_visits,omitempty"`
	// Leases records every lease's outcome.
	Leases []LeaseRecord `json:"leases"`
}

// LeaseRecord is one lease's row in the manifest.
type LeaseRecord struct {
	ID          string `json:"id"`
	Crawl       string `json:"crawl"`
	OS          string `json:"os"`
	Targets     int    `json:"targets"`
	FirstDomain string `json:"first_domain"`
	LastDomain  string `json:"last_domain"`
	// Worker completed the lease ("(recovered)" when a coordinator
	// restart recognized an already-merged range).
	Worker   string `json:"worker"`
	Acquires int    `json:"acquires"`
	// Reassignments is acquires beyond the first — each one is a TTL
	// expiry or coordinator restart that put the lease back in the pool.
	Reassignments int `json:"reassignments,omitempty"`
	Duplicates    int `json:"duplicates,omitempty"`
	// UploadMS is the completing worker's measured shard-upload time.
	UploadMS float64 `json:"upload_ms,omitempty"`
}

// WriteOutputs saves the canonical per-crawl stores and the fleet
// manifest into OutDir — the same layout campaign.Run leaves, plus the
// fleet section. Byte-stable: Save's canonical order does not depend on
// how the fleet interleaved deliveries.
func (c *Coordinator) WriteOutputs() (*Manifest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &Manifest{}
	m.Name = c.cfg.Name
	m.Scale = c.cfg.Scale
	m.Seed = c.cfg.Seed
	m.Stores = map[string]string{}
	for _, crawl := range c.cfg.Crawls {
		path := filepath.Join(c.cfg.OutDir, string(crawl)+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := c.stores[crawl].Save(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: saving %s: %w", crawl, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		m.Stores[string(crawl)] = path
	}
	info := &Info{LeaseTargets: c.cfg.LeaseTargets, TTLSeconds: c.cfg.TTL.Seconds()}
	workers := map[string]bool{}
	for _, leg := range c.legs {
		m.Entries = append(m.Entries, campaign.Entry{
			Crawl: string(leg.key.crawl), OS: leg.key.os.String(),
			NetProfile: c.cfg.NetProfile,
			Attempted:  leg.attempted, Successful: leg.successful, Failed: leg.failed,
			LocalRequests: leg.locals, RetentionErrors: leg.retention,
			Elapsed: time.Duration(leg.elapsedMS * float64(time.Millisecond)),
		})
	}
	for _, ls := range c.leases {
		if ls.completedBy != "" && ls.completedBy != "(recovered)" {
			workers[ls.completedBy] = true
		}
		info.Expiries += ls.expiries
		if ls.acquires > 1 {
			info.Reassignments += ls.acquires - 1
		}
		info.DuplicateVisits += ls.duplicates
		info.Leases = append(info.Leases, LeaseRecord{
			ID: ls.ID, Crawl: ls.Crawl, OS: ls.OS, Targets: ls.Targets(),
			FirstDomain: ls.FirstDomain, LastDomain: ls.LastDomain,
			Worker: ls.completedBy, Acquires: ls.acquires,
			Reassignments: max(ls.acquires-1, 0),
			Duplicates:    ls.duplicates, UploadMS: ls.uploadMS,
		})
	}
	info.Workers = make([]string, 0, len(workers))
	for w := range workers {
		info.Workers = append(info.Workers, w)
	}
	sort.Strings(info.Workers)
	m.Fleet = info
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(c.cfg.OutDir, "manifest.json"), raw, 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadManifest reads a manifest from dir. Fleet is nil for manifests
// written by single-process campaigns.
func LoadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("fleet: parsing manifest: %w", err)
	}
	return &m, nil
}
