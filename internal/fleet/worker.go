package fleet

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// WorkerConfig shapes one fleet worker.
type WorkerConfig struct {
	// Coordinator is the control plane's base URL.
	Coordinator string
	// Name identifies this worker to the coordinator.
	Name string
	// Workers is the per-lease browser concurrency (crawler.Config.Workers).
	Workers int
	// WorkDir, when set, makes each lease crawl durable: the lease store
	// runs through a WAL under WorkDir, checkpointed mid-crawl, so a
	// worker restarted with the same WorkDir resumes a half-crawled
	// lease instead of revisiting. Empty means in-memory lease stores.
	WorkDir string
	// Health and Metrics instrument the worker's crawls as usual.
	Health  *health.Tracker
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records this worker's side of the campaign's
	// distributed trace: one span per lease crawled (with crawl and
	// upload child spans), parented under the coordinator's lease grant
	// via the traceparent the lease carried, plus the usual per-visit
	// traces from the crawler. The lease span also rides outbound renew
	// and complete requests as a W3C traceparent header, so the
	// coordinator's server-side spans parent under it.
	Tracer *telemetry.Tracer
	// Logger, when non-nil, narrates lease lifecycle.
	Logger *slog.Logger
	// PollInterval is the idle wait when everything is leased out;
	// 0 means the coordinator's suggestion.
	PollInterval time.Duration
	// UploadRetries is how many times a failed shard upload is retried
	// before the lease is abandoned to expiry; 0 means 3.
	UploadRetries int
}

// WorkerSummary reports what one worker contributed.
type WorkerSummary struct {
	// Leases is the number of leases completed (merged by the
	// coordinator); Visits the page visits crawled for them.
	Leases int
	Visits int
	// Duplicates counts visits the coordinator dropped as already
	// delivered — nonzero after crawling a reassigned lease whose
	// previous holder delivered late.
	Duplicates int
	// UploadBytes is the total size of uploaded shard stores, in
	// canonical (uncompressed) Save bytes.
	UploadBytes int64
}

// cachedWorld is one bound (crawl, OS) world plus its full target
// slice. Worlds are mutexed and cannot be copied, so leases crawl the
// shared world with Targets re-sliced in place; leases run serially per
// worker, so the mutation is single-threaded.
type cachedWorld struct {
	world *websim.World
	full  []websim.Target
}

// RunWorker crawls leases from the coordinator until the campaign is
// done or ctx is canceled. Each lease binds (or reuses) the shared
// deterministic world for its (crawl, OS), crawls exactly the leased
// target range with mid-crawl WAL checkpointing when WorkDir is set,
// heartbeats progress through lease renewals, and uploads the shard
// store gzip-compressed on completion.
func RunWorker(ctx context.Context, cfg WorkerConfig) (*WorkerSummary, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: Coordinator URL is required")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.UploadRetries <= 0 {
		cfg.UploadRetries = 3
	}
	client := &Client{Base: strings.TrimRight(cfg.Coordinator, "/"), Worker: cfg.Name}
	worlds := map[legKey]*cachedWorld{}
	sum := &WorkerSummary{}
	acquireFails := 0
	for {
		if err := ctx.Err(); err != nil {
			return sum, err
		}
		lease, done, retry, err := client.Acquire(ctx)
		if err != nil {
			// Transient control-plane outages (coordinator restarting,
			// network blip) are retried with backoff; leases stay safe —
			// unrenewed ones simply expire and reassign.
			acquireFails++
			if acquireFails > 5 || ctx.Err() != nil {
				return sum, err
			}
			workerLogf(cfg, "acquire failed; retrying", "attempt", acquireFails, "err", err)
			select {
			case <-ctx.Done():
				return sum, ctx.Err()
			case <-time.After(time.Duration(acquireFails) * 500 * time.Millisecond):
			}
			continue
		}
		acquireFails = 0
		if done {
			return sum, nil
		}
		if lease == nil {
			wait := retry
			if cfg.PollInterval > 0 {
				wait = cfg.PollInterval
			}
			select {
			case <-ctx.Done():
				return sum, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		fleetDone, err := runLease(ctx, cfg, client, lease, worlds, sum)
		if err != nil {
			return sum, err
		}
		if fleetDone {
			// This worker's delivery finished the campaign; the
			// coordinator may stop serving at any moment, so don't race
			// it with a farewell acquire.
			return sum, nil
		}
	}
}

func workerLogf(cfg WorkerConfig, msg string, kv ...any) {
	if cfg.Logger != nil {
		cfg.Logger.Info(msg, kv...)
	}
}

// runLease crawls one lease end to end — world bind, crawl with
// heartbeats, shard upload — and reports whether its delivery finished
// the whole campaign.
func runLease(ctx context.Context, cfg WorkerConfig, client *Client, lease *Lease, worlds map[legKey]*cachedWorld, sum *WorkerSummary) (fleetDone bool, err error) {
	osv, err := hostenv.ParseOS(lease.OS)
	if err != nil {
		return false, fmt.Errorf("fleet: lease %s: %w", lease.ID, err)
	}
	crawl := groundtruth.CrawlID(lease.Crawl)
	key := legKey{crawl: crawl, os: osv}
	cw := worlds[key]
	if cw == nil {
		world, err := websim.Build(crawl, osv, lease.Scale, lease.Seed)
		if err != nil {
			return false, fmt.Errorf("fleet: building world for lease %s: %w", lease.ID, err)
		}
		cw = &cachedWorld{world: world, full: world.Targets}
		worlds[key] = cw
	}
	if lease.Lo < 0 || lease.Hi > len(cw.full) || lease.Lo > lease.Hi {
		return false, fmt.Errorf("fleet: lease %s range [%d, %d) exceeds the %d-target world — fleet and worker disagree on scale", lease.ID, lease.Lo, lease.Hi, len(cw.full))
	}

	// The lease store: durable through a WAL when WorkDir is set, so a
	// restarted worker resumes this lease's half-done crawl from the
	// last checkpoint (the crawler skips visits already in the store).
	var st *store.Store
	var lg *store.Log
	var walDir string
	if cfg.WorkDir != "" {
		walDir = filepath.Join(cfg.WorkDir, sanitizeLeaseID(lease.ID)+".wal")
		var rec store.Recovery
		st, lg, rec, err = store.Open(walDir, store.LogOptions{})
		if err != nil {
			return false, fmt.Errorf("fleet: lease %s wal: %w", lease.ID, err)
		}
		if n := rec.SegmentRecords + rec.WALRecords; n > 0 {
			workerLogf(cfg, "lease resumed from wal", "lease", lease.ID, "records", n)
		}
	} else {
		st = store.New()
	}

	// This worker's lease span: parented under the coordinator's lease
	// grant when the lease carried a W3C traceparent; a stripped or
	// malformed value degrades to a root trace derived from the lease
	// identity — propagation loss always yields a well-formed standalone
	// trace, never a broken one. The span context rides the request
	// context, so every renew and complete the client issues carries it
	// as a traceparent header back to the coordinator.
	var leaseParent telemetry.SpanID
	leaseTrace := telemetry.DeriveTraceID(lease.Seed, "lease", lease.ID)
	if sc, ok := telemetry.ParseTraceparent(lease.Traceparent); ok {
		leaseTrace, leaseParent = sc.TraceID, sc.SpanID
	}
	leaseSC := telemetry.SpanContext{
		TraceID: leaseTrace,
		SpanID:  telemetry.DeriveSpanID(leaseTrace, "worker/"+cfg.Name+"/"+lease.ID),
	}
	ctx = telemetry.ContextWithSpan(ctx, leaseSC)
	vt := cfg.Tracer.StartVisit(lease.Crawl, lease.OS, lease.ID, "", 0)
	vt.SetSpanContext(leaseSC, leaseParent)
	defer func() {
		outcome := "ok"
		if err != nil {
			outcome = err.Error()
		}
		vt.End(outcome, st.NumPages())
	}()

	// Heartbeats: renew at TTL/3, reporting the store's page count —
	// every visit commits exactly one page record, so the count is the
	// progress. A lost lease does not stop the crawl: the range may have
	// been reassigned, but finishing and uploading costs nothing extra
	// and dedup absorbs whichever delivery comes second.
	ttl := time.Duration(lease.TTLSeconds * float64(time.Second))
	renewEvery := ttl / 3
	if renewEvery < 50*time.Millisecond {
		renewEvery = 50 * time.Millisecond
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(renewEvery)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := client.Renew(hbCtx, lease.ID, st.NumPages()); err != nil {
					if err == ErrLeaseLost {
						workerLogf(cfg, "lease lost; finishing anyway", "lease", lease.ID)
						return
					}
					workerLogf(cfg, "renew failed", "lease", lease.ID, "err", err)
				}
			}
		}
	}()

	cw.world.Targets = cw.full[lease.Lo:lease.Hi]
	ccfg := crawler.Config{
		Crawl: crawl, OS: osv, Scale: lease.Scale, Seed: lease.Seed,
		Workers: cfg.Workers, RetainLogs: lease.RetainLogs,
		NetProfile: lease.NetProfile,
		Metrics:    cfg.Metrics, Health: cfg.Health, Tracer: cfg.Tracer,
		// Resume skips visits recovered from the lease WAL; harmless on
		// a fresh store.
		Resume: true,
	}
	if lg != nil {
		ccfg.Checkpoint = lg.Checkpoint
	}
	crawlStart := time.Now()
	csum, err := crawler.RunWorld(ccfg, cw.world, st)
	cw.world.Targets = cw.full
	stopHB()
	<-hbDone
	if err != nil {
		if lg != nil {
			lg.Close()
		}
		return false, fmt.Errorf("fleet: crawling lease %s: %w", lease.ID, err)
	}
	vt.Add("crawl", crawlStart, time.Since(crawlStart), csum.Attempted+csum.AlreadyDone)

	// Upload the shard: canonical Save bytes, gzip on the wire. The
	// upload is retried; if it cannot land, the lease is left to expire
	// and the WAL (when durable) still holds the crawl for a future
	// retry by this worker.
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		if lg != nil {
			lg.Close()
		}
		return false, fmt.Errorf("fleet: serializing lease %s: %w", lease.ID, err)
	}
	stats := CompleteStats{
		Attempted: csum.Attempted + csum.AlreadyDone, Successful: csum.Successful,
		Failed: csum.Failed, Locals: csum.LocalRequests,
		RetentionErrors: csum.RetentionErrors, Elapsed: time.Since(crawlStart),
	}
	var resp *CompleteResponse
	uploadStart := time.Now()
	for attempt := 0; ; attempt++ {
		stats.Upload = time.Since(uploadStart)
		resp, err = client.Complete(ctx, lease.ID, stats, buf.Bytes())
		if err == nil {
			break
		}
		if attempt+1 >= cfg.UploadRetries || ctx.Err() != nil {
			if lg != nil {
				lg.Close()
			}
			return false, fmt.Errorf("fleet: uploading lease %s: %w", lease.ID, err)
		}
		workerLogf(cfg, "upload failed; retrying", "lease", lease.ID, "attempt", attempt+1, "err", err)
		select {
		case <-ctx.Done():
			if lg != nil {
				lg.Close()
			}
			return false, ctx.Err()
		case <-time.After(time.Duration(attempt+1) * 200 * time.Millisecond):
		}
	}
	vt.Add("upload", uploadStart, time.Since(uploadStart), resp.Merged)
	if lg != nil {
		// The coordinator holds the merge durably; the lease WAL has
		// nothing left to protect.
		lg.Close()
		os.RemoveAll(walDir)
	}
	sum.Leases++
	sum.Visits += resp.Merged
	sum.Duplicates += resp.Duplicates
	sum.UploadBytes += int64(buf.Len())
	workerLogf(cfg, "lease uploaded", "lease", lease.ID, "merged", resp.Merged, "duplicates", resp.Duplicates)
	return resp.FleetDone, nil
}

// sanitizeLeaseID maps a lease ID to a file-system-safe directory name.
func sanitizeLeaseID(id string) string {
	return strings.NewReplacer("/", "_", "\\", "_", ":", "_").Replace(id)
}
