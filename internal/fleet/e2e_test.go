package fleet

import (
	"bufio"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCoordinatorResume pins the journal's crash-replay contract: a
// coordinator killed mid-campaign resumes with completed leases still
// complete, in-flight leases reverted to the pool, and the finished
// campaign byte-identical to the single-process golden.
func TestCoordinatorResume(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig(t, dir)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	ctx := context.Background()

	// Complete one lease, leave a second one leased, then "crash".
	early := &Client{Base: ts.URL, Worker: "early"}
	first, done, _, err := early.Acquire(ctx)
	if err != nil || done || first == nil {
		t.Fatalf("acquire: %v %v %v", first, done, err)
	}
	if _, err := early.Complete(ctx, first.ID, CompleteStats{Attempted: first.Targets()}, crawlRange(t, first)); err != nil {
		t.Fatal(err)
	}
	second, _, _, err := early.Acquire(ctx)
	if err != nil || second == nil {
		t.Fatalf("second acquire: %v %v", second, err)
	}
	ts.Close()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Without Resume, the journal must refuse the directory.
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "Resume") {
		t.Fatalf("reopening without Resume: err=%v, want a Resume refusal", err)
	}

	cfg.Resume = true
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fs := c2.Status()
	if fs.Leases.Complete != 1 {
		t.Fatalf("resumed fleet has %d complete leases, want 1", fs.Leases.Complete)
	}
	if fs.Leases.Leased != 0 {
		t.Fatalf("resumed fleet still trusts %d leased leases from the dead process", fs.Leases.Leased)
	}
	if fs.Leases.Expiries == 0 {
		t.Fatal("the in-flight lease was not reverted on restart")
	}
	if fs.MergedVisits != first.Targets() {
		t.Fatalf("resumed fleet reports %d merged visits, want %d", fs.MergedVisits, first.Targets())
	}

	ts2 := httptest.NewServer(c2.Handler())
	defer ts2.Close()
	if _, err := RunWorker(ctx, WorkerConfig{Coordinator: ts2.URL, Name: "finisher", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	assertGolden(t, c2, dir)

	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var firstRec *LeaseRecord
	for i := range m.Fleet.Leases {
		if m.Fleet.Leases[i].ID == first.ID {
			firstRec = &m.Fleet.Leases[i]
		}
	}
	if firstRec == nil || firstRec.Worker != "early" {
		t.Fatalf("manifest lost the pre-crash completion: %+v", firstRec)
	}
}

// TestCoordinatorRecoversMergedLeases pins the merge → checkpoint →
// journal crash window from the other side: when the journal is lost
// entirely but the per-crawl WALs hold merged records, a resumed
// coordinator recognizes fully-delivered ranges as complete instead of
// re-crawling them.
func TestCoordinatorRecoversMergedLeases(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig(t, dir)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	ctx := context.Background()
	cl := &Client{Base: ts.URL, Worker: "w"}
	lease, _, _, err := cl.Acquire(ctx)
	if err != nil || lease == nil {
		t.Fatalf("acquire: %v %v", lease, err)
	}
	if _, err := cl.Complete(ctx, lease.ID, CompleteStats{Attempted: lease.Targets()}, crawlRange(t, lease)); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, journalName)); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fs := c2.Status()
	if fs.Leases.Complete != 1 {
		t.Fatalf("journal-less resume found %d complete leases, want the merged range recognized", fs.Leases.Complete)
	}
	m := map[string]bool{}
	for _, lr := range func() []LeaseRecord {
		man, err := c2.WriteOutputs()
		if err != nil {
			t.Fatal(err)
		}
		return man.Fleet.Leases
	}() {
		if lr.Worker != "" {
			m[lr.ID] = true
			if lr.Worker != "(recovered)" {
				t.Fatalf("lease %s completed by %q, want the recovery marker", lr.ID, lr.Worker)
			}
		}
	}
	if !m[lease.ID] {
		t.Fatalf("merged lease %s was not recognized as complete", lease.ID)
	}
}

// TestWorkerKillReassignment is the fleet's crash drill: two workers, a
// real OS process SIGKILLed mid-lease, the lease reassigned after its
// TTL, and the finished campaign still byte-identical to the
// single-process golden. The child process acquires a lease, heartbeats
// once, reports it, and hangs until killed — deterministic mid-lease
// death without racing a fast crawl.
func TestWorkerKillReassignment(t *testing.T) {
	if base := os.Getenv("KNOCKFLEET_CHILD_COORD"); base != "" {
		fleetKillChild(base)
		return // unreachable: the child hangs until SIGKILL
	}
	dir := t.TempDir()
	cfg := goldenConfig(t, dir)
	cfg.TTL = 300 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	cmd := exec.Command(os.Args[0], "-test.run=^TestWorkerKillReassignment$", "-test.v")
	cmd.Env = append(os.Environ(), "KNOCKFLEET_CHILD_COORD="+ts.URL)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The child prints "holding <leaseID>" once its lease is acquired
	// and renewed; then it hangs.
	var victimLease string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "holding "); ok {
			victimLease = rest
			break
		}
	}
	if victimLease == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child never reported a held lease")
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no upload
		t.Fatal(err)
	}
	cmd.Wait()

	// The dead worker's lease must expire and return to the pool.
	deadline := time.Now().Add(10 * time.Second)
	for {
		fs := c.Status()
		if fs.Leases.Expiries >= 1 && fs.Leases.Leased == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease %s never expired after its holder was killed: %+v", victimLease, fs.Leases)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A healthy worker finishes everything, including the orphaned range.
	if _, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: ts.URL, Name: "survivor", Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("fleet not done after the survivor finished")
	}
	assertGolden(t, c, dir)

	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim *LeaseRecord
	for i := range m.Fleet.Leases {
		if m.Fleet.Leases[i].ID == victimLease {
			victim = &m.Fleet.Leases[i]
		}
	}
	if victim == nil {
		t.Fatalf("killed lease %s missing from manifest", victimLease)
	}
	if victim.Worker != "survivor" {
		t.Fatalf("killed lease completed by %q, want the survivor", victim.Worker)
	}
	if victim.Acquires < 2 || victim.Reassignments < 1 {
		t.Fatalf("killed lease records acquires=%d reassignments=%d, want a reassignment", victim.Acquires, victim.Reassignments)
	}
	if m.Fleet.Reassignments < 1 || m.Fleet.Expiries < 1 {
		t.Fatalf("fleet section records reassignments=%d expiries=%d", m.Fleet.Reassignments, m.Fleet.Expiries)
	}
}

// fleetKillChild runs in the forked test process: acquire, renew,
// announce, hang.
func fleetKillChild(base string) {
	ctx := context.Background()
	cl := &Client{Base: base, Worker: "victim"}
	lease, done, _, err := cl.Acquire(ctx)
	if err != nil || done || lease == nil {
		fmt.Fprintf(os.Stderr, "child acquire: lease=%v done=%v err=%v\n", lease, done, err)
		os.Exit(2)
	}
	if err := cl.Renew(ctx, lease.ID, 1); err != nil {
		fmt.Fprintln(os.Stderr, "child renew:", err)
		os.Exit(3)
	}
	fmt.Printf("holding %s\n", lease.ID)
	os.Stdout.Sync()
	select {} // mid-lease forever; the parent SIGKILLs us
}
