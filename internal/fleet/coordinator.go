package fleet

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/serve"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// Config shapes a fleet campaign.
type Config struct {
	// Name labels the campaign in its manifest.
	Name string
	// OutDir receives the lease journal, per-crawl WAL directories, and
	// — at completion — the canonical per-crawl stores and manifest.
	OutDir string
	// Crawls lists the campaigns to run; nil means all three.
	Crawls []groundtruth.CrawlID
	// Scale, Seed, RetainLogs, NetProfile as in crawler.Config —
	// identical across the fleet, pinned into every lease.
	Scale      float64
	Seed       uint64
	RetainLogs bool
	NetProfile string
	// LeaseTargets is the maximum number of targets per lease; 0 means
	// 64. Smaller leases reassign less work on worker death but cost
	// more control-plane round trips.
	LeaseTargets int
	// TTL is how long a worker may go between renewals before its lease
	// is declared dead and reassigned; 0 means 60s.
	TTL time.Duration
	// Resume replays the lease journal and per-crawl WALs in OutDir and
	// continues the campaign; without it, a non-empty OutDir is an
	// error, never silently absorbed.
	Resume bool
	// MaxUploadBytes bounds a shard upload — both the wire bytes and,
	// for gzip uploads, the decompressed stream; 0 means 256 MiB.
	MaxUploadBytes int64
	// Health, when non-nil, carries the fleet's per-leg progress; the
	// coordinator creates a private tracker otherwise, so /v1/fleet/status
	// always has rates and ETAs to report.
	Health *health.Tracker
	// Metrics, when non-nil, receives the fleet counters.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records the campaign's distributed trace:
	// one deterministic campaign root span plus a server-side span per
	// control-plane request (acquire grant, renew, complete), parented
	// under the worker span carried in the request's W3C traceparent
	// header. Workers writing their own trace files then share trace IDs
	// with this coordinator, and knocktrace -assemble joins the files
	// into one cross-process tree.
	Tracer *telemetry.Tracer
	// Logger, when non-nil, narrates lease transitions.
	Logger *slog.Logger
	// Now overrides the clock; tests inject a deterministic one.
	Now func() time.Time
}

// leaseStateCode is a lease's position in the state machine.
type leaseStateCode int

const (
	leaseAvailable leaseStateCode = iota
	leaseLeased
	leaseComplete
)

func (c leaseStateCode) String() string {
	switch c {
	case leaseAvailable:
		return "available"
	case leaseLeased:
		return "leased"
	default:
		return "complete"
	}
}

// leaseState is the coordinator's bookkeeping around one Lease.
type leaseState struct {
	*Lease
	leg      *legState
	state    leaseStateCode
	worker   string    // current holder while leased
	deadline time.Time // renewal deadline while leased
	visited  int       // holder's last heartbeat progress
	reported int       // visits already fed to the health leg
	acquires int
	expiries int
	// completion facts, from the merged (first) delivery:
	completedBy string
	duplicates  int
	uploadMS    float64
}

// legState aggregates one (crawl, OS) leg.
type legState struct {
	key      legKey
	total    int
	leases   []*leaseState
	complete int
	merged   int // visits committed to the campaign store
	health   *health.CrawlProgress
	// entry accumulates the leg's manifest row from lease completions.
	attempted, successful, failed, locals, retention int
	elapsedMS                                        float64
}

// workerState is what the coordinator knows about one worker.
type workerState struct {
	name     string
	lastSeen time.Time
	lease    string // currently held lease, "" when idle
	visited  int
}

// Coordinator owns the fleet control plane: the lease state machine,
// the journal, the campaign stores uploads merge into, and the HTTP
// surface workers talk to.
type Coordinator struct {
	cfg     Config
	mux     *http.ServeMux
	tracker *health.Tracker
	reg     *telemetry.Registry

	mu        sync.Mutex
	leases    []*leaseState
	byID      map[string]*leaseState
	legs      []*legState
	legByName map[string]*legState // "crawl|os"
	stores    map[groundtruth.CrawlID]*store.Store
	logs      map[groundtruth.CrawlID]*store.Log
	delivered map[string]bool // "crawl|os|url" — every merged visit
	dupes     int             // visits dropped by dedup, this process's lifetime
	workers   map[string]*workerState
	journal   *journal
	doneOnce  sync.Once
	doneCh    chan struct{}

	sweeping  bool
	sweepStop chan struct{}
	sweepDone chan struct{}

	mAcquires  *telemetry.Counter
	mExpiries  *telemetry.Counter
	mReassigns *telemetry.Counter
	mCompletes *telemetry.Counter
	mMerged    *telemetry.Counter
	mDupes     *telemetry.Counter
	mUploadB   *telemetry.Counter

	// campaignTrace/campaignRoot identify the campaign's distributed
	// trace; rpcSeq disambiguates repeated control-plane spans (renews,
	// re-acquires) within this process's lifetime.
	campaignTrace telemetry.TraceID
	campaignRoot  telemetry.SpanID
	rpcSeq        atomic.Uint64
}

func pageKey(crawl, os, url string) string   { return crawl + "|" + os + "|" + url }
func legName(crawl, os string) string        { return crawl + "|" + os }
func domainKey(crawl, os, dom string) string { return crawl + "|" + os + "|" + dom }

// New partitions the campaign, opens (or resumes) the journal and the
// per-crawl WAL-backed stores, and returns a coordinator ready to
// serve. The fleet starts paused in the sense that no worker holds
// anything: leases are handed out on demand.
func New(cfg Config) (*Coordinator, error) {
	if cfg.OutDir == "" {
		return nil, fmt.Errorf("fleet: OutDir is required")
	}
	if len(cfg.Crawls) == 0 {
		cfg.Crawls = []groundtruth.CrawlID{
			groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious,
		}
	}
	if cfg.LeaseTargets <= 0 {
		cfg.LeaseTargets = 64
	}
	if cfg.TTL <= 0 {
		cfg.TTL = time.Minute
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 256 << 20
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		tracker:   cfg.Health,
		reg:       cfg.Metrics,
		byID:      map[string]*leaseState{},
		legByName: map[string]*legState{},
		stores:    map[groundtruth.CrawlID]*store.Store{},
		logs:      map[groundtruth.CrawlID]*store.Log{},
		delivered: map[string]bool{},
		workers:   map[string]*workerState{},
		doneCh:    make(chan struct{}),
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	if c.tracker == nil {
		c.tracker = health.New(health.Options{Now: cfg.Now})
	}
	if c.reg == nil {
		c.reg = telemetry.NewRegistry()
	}
	c.mAcquires = c.reg.Counter("fleet_lease_acquires_total")
	c.mExpiries = c.reg.Counter("fleet_lease_expiries_total")
	c.mReassigns = c.reg.Counter("fleet_lease_reassignments_total")
	c.mCompletes = c.reg.Counter("fleet_lease_completes_total")
	c.mMerged = c.reg.Counter("fleet_merged_visits_total")
	c.mDupes = c.reg.Counter("fleet_duplicate_visits_total")
	c.mUploadB = c.reg.Counter("fleet_upload_bytes_total")

	leases, err := partition(cfg.Crawls, cfg.Scale, cfg.Seed, cfg.RetainLogs, cfg.NetProfile, cfg.LeaseTargets, cfg.TTL.Seconds())
	if err != nil {
		return nil, err
	}
	// The campaign trace is derived from (seed, crawl list) alone, so a
	// resumed coordinator — and an identically-seeded re-run — produces
	// the identical trace ID, and every lease's traceparent with it.
	traceParts := make([]string, 0, len(cfg.Crawls)+1)
	traceParts = append(traceParts, "fleet")
	for _, cr := range cfg.Crawls {
		traceParts = append(traceParts, string(cr))
	}
	c.campaignTrace = telemetry.DeriveTraceID(cfg.Seed, traceParts...)
	c.campaignRoot = telemetry.DeriveSpanID(c.campaignTrace, "campaign")
	for _, leg := range legsFor(cfg.Crawls) {
		n, err := websim.TargetCount(leg.crawl, cfg.Scale)
		if err != nil {
			return nil, err
		}
		ls := &legState{key: leg, total: n}
		ls.health = c.tracker.StartCrawl(string(leg.crawl), leg.os.String(), n, 0)
		c.legs = append(c.legs, ls)
		c.legByName[legName(string(leg.crawl), leg.os.String())] = ls
	}
	for _, l := range leases {
		// Each lease carries its own span under the campaign root; the
		// worker that crawls it parents its lease trace here, so the
		// assembled tree reads campaign → lease → worker → RPCs.
		l.Traceparent = telemetry.SpanContext{
			TraceID: c.campaignTrace,
			SpanID:  telemetry.DeriveSpanID(c.campaignTrace, "lease/"+l.ID),
		}.Traceparent()
		st := &leaseState{Lease: l, leg: c.legByName[legName(l.Crawl, l.OS)]}
		st.leg.leases = append(st.leg.leases, st)
		c.leases = append(c.leases, st)
		c.byID[l.ID] = st
		c.reg.Counter("fleet_leases_total", "crawl", l.Crawl, "os", l.OS).Inc()
	}

	// Campaign stores: one WAL-backed store per crawl, exactly the
	// durable-campaign layout, so the merge is crash-resumable at record
	// granularity.
	for _, crawl := range cfg.Crawls {
		walDir := filepath.Join(cfg.OutDir, string(crawl)+".wal")
		st, lg, rec, err := store.Open(walDir, store.LogOptions{})
		if err != nil {
			c.closeStores()
			return nil, fmt.Errorf("fleet: %s: %w", crawl, err)
		}
		if n := rec.SegmentRecords + rec.WALRecords; n > 0 && !cfg.Resume {
			lg.Close()
			c.closeStores()
			return nil, fmt.Errorf("fleet: %s holds %d recovered records; pass Resume or clear it", walDir, n)
		}
		c.stores[crawl] = st
		c.logs[crawl] = lg
	}

	// Journal: replay lease history, verify the campaign header pins the
	// same partition, and append our own header when fresh.
	var headerSeen bool
	var headerErr error
	jr, records, err := openJournal(cfg.OutDir, func(e journalEntry) error {
		switch e.Type {
		case "campaign":
			headerSeen = true
			if e.Scale != cfg.Scale || e.Seed != cfg.Seed ||
				e.LeaseTargets != cfg.LeaseTargets || e.RetainLogs != cfg.RetainLogs ||
				e.NetProfile != cfg.NetProfile ||
				len(e.Crawls) != len(cfg.Crawls) {
				headerErr = fmt.Errorf("fleet: journal in %s describes a different campaign (scale=%v seed=%d lease_targets=%d)", cfg.OutDir, e.Scale, e.Seed, e.LeaseTargets)
			} else {
				for i, cr := range e.Crawls {
					if cr != string(cfg.Crawls[i]) {
						headerErr = fmt.Errorf("fleet: journal in %s describes crawls %v", cfg.OutDir, e.Crawls)
					}
				}
			}
		case "acquire":
			if ls := c.byID[e.Lease]; ls != nil && ls.state != leaseComplete {
				ls.state = leaseLeased
				ls.worker = e.Worker
				ls.acquires++
			}
		case "expire":
			if ls := c.byID[e.Lease]; ls != nil && ls.state != leaseComplete {
				ls.state = leaseAvailable
				ls.worker = ""
				ls.expiries++
			}
		case "complete":
			if ls := c.byID[e.Lease]; ls != nil && ls.state != leaseComplete {
				c.markCompleteLocked(ls, e)
			}
		}
		return nil
	})
	if err != nil {
		c.closeStores()
		return nil, err
	}
	c.journal = jr
	if headerErr != nil {
		c.Close()
		return nil, headerErr
	}
	if records > 0 && !cfg.Resume {
		c.Close()
		return nil, fmt.Errorf("fleet: %s holds %d journaled lease transitions; pass Resume or clear it", filepath.Join(cfg.OutDir, journalName), records)
	}
	if !headerSeen {
		crawls := make([]string, len(cfg.Crawls))
		for i, cr := range cfg.Crawls {
			crawls[i] = string(cr)
		}
		if err := jr.append(journalEntry{
			Type: "campaign", Name: cfg.Name, Scale: cfg.Scale, Seed: cfg.Seed,
			Crawls: crawls, LeaseTargets: cfg.LeaseTargets, RetainLogs: cfg.RetainLogs,
			NetProfile: cfg.NetProfile,
		}); err != nil {
			c.Close()
			return nil, err
		}
	}

	if err := c.recover(); err != nil {
		c.Close()
		return nil, err
	}

	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/v1/lease/acquire", c.handleAcquire)
	c.mux.HandleFunc("/v1/lease/renew", c.handleRenew)
	c.mux.HandleFunc("/v1/lease/complete", c.handleComplete)
	c.mux.HandleFunc("/v1/fleet/status", c.handleStatus)
	health.Mount(c.mux, c.tracker, c.reg)
	c.tracker.SetReady(true)

	// The campaign root anchors the cross-process tree: every
	// control-plane span and worker lease span is (transitively) its
	// child. Emitted once per coordinator life; a resumed coordinator
	// re-emits the identical record and assembly dedupes on span ID.
	if cfg.Tracer != nil {
		name := cfg.Name
		if name == "" {
			name = "campaign"
		}
		cfg.Tracer.Emit(&telemetry.VisitRecord{
			Crawl:   "fleet",
			Domain:  name,
			StartUS: cfg.Now().UnixMicro(),
			Outcome: "ok",
			TraceID: c.campaignTrace.String(),
			SpanID:  c.campaignRoot.String(),
			Spans:   []telemetry.Span{{Name: "campaign", Items: len(c.leases)}},
		})
	}

	c.sweeping = true
	go c.sweepLoop()
	return c, nil
}

// recover reconstructs the delivered set from the recovered stores,
// reverts leases whose holders predate this process, and recognizes
// leases whose full range already landed (merged and checkpointed, but
// crashed before the completion record) — those become complete instead
// of being re-crawled.
func (c *Coordinator) recover() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	deliveredDomains := map[string]bool{}
	for _, st := range c.stores {
		st.ForEachPage(func(p *store.PageRecord) {
			c.delivered[pageKey(p.Crawl, p.OS, p.URL)] = true
			deliveredDomains[domainKey(p.Crawl, p.OS, p.Domain)] = true
			if leg := c.legByName[legName(p.Crawl, p.OS)]; leg != nil {
				leg.merged++
			}
		})
	}
	for _, ls := range c.leases {
		if ls.state == leaseLeased {
			// The journaled holder belonged to a previous coordinator
			// life; whether it is dead or still crawling, this process
			// cannot track its renewals, so the lease goes back in the
			// pool. A still-alive holder's eventual upload deduplicates.
			ls.state = leaseAvailable
			ls.worker = ""
			ls.expiries++
			c.mExpiries.Inc()
			if err := c.journal.append(journalEntry{Type: "expire", Lease: ls.ID, Worker: "(restart)"}); err != nil {
				return err
			}
		}
		if ls.state != leaseComplete {
			n, all := 0, true
			for i := ls.Lo; i < ls.Hi; i++ {
				dom, err := websim.TargetDomain(groundtruth.CrawlID(ls.Crawl), c.cfg.Scale, i)
				if err != nil {
					return err
				}
				if deliveredDomains[domainKey(ls.Crawl, ls.OS, dom)] {
					n++
				} else {
					all = false
				}
			}
			if all && ls.Targets() > 0 {
				e := journalEntry{Type: "complete", Lease: ls.ID, Worker: "(recovered)", Attempted: ls.Targets()}
				if err := c.journal.append(e); err != nil {
					return err
				}
				c.markCompleteLocked(ls, e)
			} else {
				ls.reported = n
			}
		}
		for i := 0; i < ls.reported; i++ {
			ls.leg.health.ResumeSkip()
		}
	}
	c.checkLegsLocked()
	c.checkDoneLocked()
	return nil
}

// markCompleteLocked applies a completion record to the state machine
// and the leg aggregates. Caller holds c.mu (or is inside New).
func (c *Coordinator) markCompleteLocked(ls *leaseState, e journalEntry) {
	ls.state = leaseComplete
	ls.worker = ""
	ls.completedBy = e.Worker
	ls.duplicates = e.Duplicates
	ls.uploadMS = e.UploadMS
	leg := ls.leg
	leg.complete++
	leg.attempted += e.Attempted
	leg.successful += e.Successful
	leg.failed += e.Failed
	leg.locals += e.Locals
	leg.retention += e.Retention
	leg.elapsedMS += e.ElapsedMS
}

// checkLegsLocked finishes the health leg of every fully-complete leg.
func (c *Coordinator) checkLegsLocked() {
	for _, leg := range c.legs {
		if leg.complete == len(leg.leases) && !leg.health.Done() {
			leg.health.Finish()
		}
	}
}

// checkDoneLocked closes the done channel once every lease is complete.
func (c *Coordinator) checkDoneLocked() {
	for _, ls := range c.leases {
		if ls.state != leaseComplete {
			return
		}
	}
	c.doneOnce.Do(func() { close(c.doneCh) })
}

// Handler returns the coordinator's HTTP surface: the lease control
// plane plus the standard operations plane (/status, /healthz,
// /metrics).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Done is closed when every lease has completed and merged.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// sweepLoop expires dead leases in the background; acquire also sweeps
// inline, so the loop only matters when no worker is asking.
func (c *Coordinator) sweepLoop() {
	defer close(c.sweepDone)
	every := c.cfg.TTL / 4
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case <-t.C:
			c.mu.Lock()
			c.sweepLocked(c.cfg.Now())
			c.mu.Unlock()
		}
	}
}

// sweepLocked reverts every leased lease whose renewal deadline has
// passed: the holder is presumed dead and the range goes back in the
// pool for reassignment.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, ls := range c.leases {
		if ls.state != leaseLeased || now.Before(ls.deadline) {
			continue
		}
		c.logf("lease expired", "lease", ls.ID, "worker", ls.worker, "visited", ls.visited)
		if w := c.workers[ls.worker]; w != nil && w.lease == ls.ID {
			w.lease = ""
		}
		c.journal.append(journalEntry{Type: "expire", Lease: ls.ID, Worker: ls.worker})
		ls.state = leaseAvailable
		ls.worker = ""
		ls.visited = 0
		ls.expiries++
		c.mExpiries.Inc()
	}
}

// traceRPC records one server-side control-plane span into the
// coordinator's trace sink: op ("acquire", "renew", "complete") over
// lease ls, started at start. The span parents under the caller's W3C
// traceparent when the request carried one; a stripped or absent
// header degrades to the lease's own grant span as parent, keeping the
// record inside the campaign trace rather than orphaning it. items is
// the op's payload size (targets granted, visits reported, pages
// merged). Safe without a Tracer (no-op).
func (c *Coordinator) traceRPC(op string, ls *leaseState, h http.Header, start time.Time, outcome string, items int) {
	if c.cfg.Tracer == nil {
		return
	}
	trace, parent := c.campaignTrace, telemetry.SpanID{}
	if sc, ok := telemetry.ExtractTraceContext(h); ok {
		trace, parent = sc.TraceID, sc.SpanID
	} else {
		parent = telemetry.DeriveSpanID(trace, "lease/"+ls.ID)
	}
	dur := c.cfg.Now().Sub(start)
	if dur < 0 {
		dur = 0
	}
	span := telemetry.DeriveSpanID(trace, fmt.Sprintf("%s/%s#%d", op, ls.ID, c.rpcSeq.Add(1)))
	c.cfg.Tracer.Emit(&telemetry.VisitRecord{
		Crawl:    ls.Crawl,
		OS:       ls.OS,
		Domain:   ls.ID,
		StartUS:  start.UnixMicro(),
		DurNS:    dur.Nanoseconds(),
		Outcome:  outcome,
		TraceID:  trace.String(),
		SpanID:   span.String(),
		ParentID: parent.String(),
		Spans:    []telemetry.Span{{Name: op, DurNS: dur.Nanoseconds(), Items: items}},
	})
}

// traceGrant records the lease-grant span itself — the span whose ID
// the lease's traceparent names — so worker lease traces always have a
// recorded parent. A re-grant (reassignment after expiry) gets its own
// span under the original grant, keeping every hand-off visible in the
// assembled tree.
func (c *Coordinator) traceGrant(ls *leaseState, start time.Time) {
	if c.cfg.Tracer == nil {
		return
	}
	span := telemetry.DeriveSpanID(c.campaignTrace, "lease/"+ls.ID)
	parent := c.campaignRoot
	if ls.acquires > 1 {
		parent = span
		span = telemetry.DeriveSpanID(c.campaignTrace, fmt.Sprintf("lease/%s#%d", ls.ID, ls.acquires))
	}
	c.cfg.Tracer.Emit(&telemetry.VisitRecord{
		Crawl:    ls.Crawl,
		OS:       ls.OS,
		Domain:   ls.ID,
		StartUS:  start.UnixMicro(),
		Outcome:  "ok",
		TraceID:  c.campaignTrace.String(),
		SpanID:   span.String(),
		ParentID: parent.String(),
		Spans:    []telemetry.Span{{Name: "acquire", Items: ls.Targets()}},
	})
}

func (c *Coordinator) logf(msg string, kv ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info(msg, kv...)
	}
}

// AcquireResponse is the wire form of POST /v1/lease/acquire.
type AcquireResponse struct {
	// Lease is the granted work unit, nil when none is available.
	Lease *Lease `json:"lease,omitempty"`
	// Done reports that the campaign has no work left at all — every
	// lease is complete and the worker should exit.
	Done bool `json:"done,omitempty"`
	// RetryMS asks the worker to poll again later: everything is leased
	// out right now, but reassignment may free work.
	RetryMS int `json:"retry_ms,omitempty"`
}

func (c *Coordinator) handleAcquire(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		httpError(w, http.StatusBadRequest, "worker query parameter is required")
		return
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	c.sweepLocked(now)
	var resp AcquireResponse
	allComplete := true
	for _, ls := range c.leases {
		if ls.state == leaseComplete {
			continue
		}
		allComplete = false
		if ls.state != leaseAvailable {
			continue
		}
		ls.state = leaseLeased
		ls.worker = worker
		ls.deadline = now.Add(c.cfg.TTL)
		ls.visited = 0
		ls.acquires++
		c.mAcquires.Inc()
		if ls.acquires > 1 {
			c.mReassigns.Inc()
		}
		c.journal.append(journalEntry{Type: "acquire", Lease: ls.ID, Worker: worker})
		c.workers[worker].lease = ls.ID
		c.workers[worker].visited = 0
		c.logf("lease acquired", "lease", ls.ID, "worker", worker, "targets", ls.Targets(), "acquires", ls.acquires)
		c.traceGrant(ls, now)
		resp.Lease = ls.Lease
		break
	}
	if resp.Lease == nil {
		if allComplete {
			resp.Done = true
		} else {
			resp.RetryMS = 500
		}
	}
	writeJSON(w, resp)
}

// RenewResponse is the wire form of POST /v1/lease/renew.
type RenewResponse struct {
	// TTLSeconds is the renewed deadline horizon.
	TTLSeconds float64 `json:"ttl_seconds"`
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	q := r.URL.Query()
	leaseID, worker := q.Get("lease"), q.Get("worker")
	visited, _ := strconv.Atoi(q.Get("visited"))
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	ls := c.byID[leaseID]
	if ls == nil {
		httpError(w, http.StatusNotFound, "unknown lease "+strconv.Quote(leaseID))
		return
	}
	if ls.state != leaseLeased || ls.worker != worker {
		// The lease expired (and was possibly reassigned) or already
		// completed. The worker may keep crawling and upload anyway —
		// dedup makes the double delivery harmless — but it must know
		// its renewal bought nothing.
		httpError(w, http.StatusConflict, fmt.Sprintf("lease %s is %s", leaseID, ls.state))
		return
	}
	ls.deadline = now.Add(c.cfg.TTL)
	if visited > ls.visited {
		ls.visited = visited
		c.workers[worker].visited = visited
	}
	// Live progress: heartbeats advance the leg's throughput estimate
	// before any upload lands. reported is a per-lease high-water mark,
	// so a reassigned lease's second worker re-covers ground without
	// double-counting.
	if visited > ls.reported {
		for i := ls.reported; i < visited && i < ls.Targets(); i++ {
			ls.leg.health.VisitDone(-1, 0, true)
		}
		if visited < ls.Targets() {
			ls.reported = visited
		} else {
			ls.reported = ls.Targets()
		}
	}
	c.traceRPC("renew", ls, r.Header, now, "ok", visited)
	writeJSON(w, RenewResponse{TTLSeconds: c.cfg.TTL.Seconds()})
}

func (c *Coordinator) touchWorkerLocked(name string, now time.Time) {
	if name == "" {
		return
	}
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{name: name}
		c.workers[name] = ws
	}
	ws.lastSeen = now
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%s}\n", strconv.Quote(msg))
}

// CompleteResponse is the wire form of POST /v1/lease/complete.
type CompleteResponse struct {
	// Merged is the number of fresh page visits committed; Duplicates is
	// the number dropped because an earlier delivery already covered
	// them (reassignment double-delivery).
	Merged     int `json:"merged"`
	Duplicates int `json:"duplicates"`
	// FleetDone reports that this completion finished the campaign.
	FleetDone bool `json:"fleet_done,omitempty"`
}

// handleComplete ingests a worker's shard store and completes its
// lease. The upload is the worker's full lease store in canonical Save
// form (optionally gzip-compressed); the merge is all-or-nothing and
// idempotent: pages already delivered — by a previous holder of a
// reassigned lease, or by this very upload retried — are dropped, along
// with their locals and retained captures, keyed on the visited URL.
// Ordering is merge → WAL checkpoint → journal completion, so a crash
// at any point leaves either a reassignable lease (dedup absorbs the
// re-delivery) or a durably complete one.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	uploadStart := time.Now()
	q := r.URL.Query()
	leaseID, worker := q.Get("lease"), q.Get("worker")
	body, err := serve.RequestBody(w, r, c.cfg.MaxUploadBytes)
	if err != nil {
		if errors.Is(err, serve.ErrUnsupportedEncoding) {
			httpError(w, http.StatusUnsupportedMediaType, err.Error())
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	scratch := store.New()
	if err := scratch.Load(body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) || errors.Is(err, serve.ErrBodyTooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		httpError(w, http.StatusBadRequest, "parsing shard store: "+err.Error())
		return
	}

	atoi := func(k string) int { n, _ := strconv.Atoi(q.Get(k)); return n }
	elapsedMS, _ := strconv.ParseFloat(q.Get("elapsed_ms"), 64)
	// The worker reports time burned on earlier upload attempts; this
	// attempt's receive-and-parse time is measured here, so a
	// first-attempt success still records a real duration.
	uploadMS, _ := strconv.ParseFloat(q.Get("upload_ms"), 64)
	uploadMS += float64(time.Since(uploadStart).Nanoseconds()) / 1e6

	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	ls := c.byID[leaseID]
	if ls == nil {
		httpError(w, http.StatusNotFound, "unknown lease "+strconv.Quote(leaseID))
		return
	}

	// Partition the upload into fresh and duplicate visits. Locals and
	// netlogs ride with their page: a dropped page drops its domain's
	// dependent records too (every record of a visit shares the domain).
	var pages []store.PageRecord
	var locals []store.LocalRequest
	var netlogs []store.NetLogRecord
	drop := map[string]bool{}
	dupes := 0
	badCrawl := ""
	scratch.DeltaSince(store.Mark{}, func(p *store.PageRecord) {
		if _, ok := c.stores[groundtruth.CrawlID(p.Crawl)]; !ok {
			badCrawl = p.Crawl
			return
		}
		if c.delivered[pageKey(p.Crawl, p.OS, p.URL)] {
			drop[domainKey(p.Crawl, p.OS, p.Domain)] = true
			dupes++
			return
		}
		pages = append(pages, *p)
	}, func(l *store.LocalRequest) {
		if !drop[domainKey(l.Crawl, l.OS, l.Domain)] {
			locals = append(locals, *l)
		}
	}, func(n *store.NetLogRecord) {
		if !drop[domainKey(n.Crawl, n.OS, n.Domain)] {
			netlogs = append(netlogs, *n)
		}
	})
	if badCrawl != "" {
		httpError(w, http.StatusBadRequest, "upload contains records for crawl "+strconv.Quote(badCrawl)+" this fleet does not run")
		return
	}

	// Commit fresh records per crawl, then checkpoint the touched WALs
	// before journaling completion: a journaled complete must imply a
	// durable merge.
	byCrawl := map[string]struct {
		p []store.PageRecord
		l []store.LocalRequest
		n []store.NetLogRecord
	}{}
	for _, p := range pages {
		e := byCrawl[p.Crawl]
		e.p = append(e.p, p)
		byCrawl[p.Crawl] = e
	}
	for _, l := range locals {
		e := byCrawl[l.Crawl]
		e.l = append(e.l, l)
		byCrawl[l.Crawl] = e
	}
	for _, n := range netlogs {
		e := byCrawl[n.Crawl]
		e.n = append(e.n, n)
		byCrawl[n.Crawl] = e
	}
	for crawl, recs := range byCrawl {
		c.stores[groundtruth.CrawlID(crawl)].AddRecords(recs.p, recs.l, recs.n)
	}
	for crawl := range byCrawl {
		if err := c.logs[groundtruth.CrawlID(crawl)].Checkpoint(); err != nil {
			// The merge is committed in memory but not durable; without
			// the completion record the lease stays open, the worker
			// retries, and dedup absorbs the replay.
			httpError(w, http.StatusInternalServerError, "checkpointing merge: "+err.Error())
			return
		}
	}
	for _, p := range pages {
		c.delivered[pageKey(p.Crawl, p.OS, p.URL)] = true
		if leg := c.legByName[legName(p.Crawl, p.OS)]; leg != nil {
			leg.merged++
		}
	}
	c.mMerged.Add(uint64(len(pages)))
	c.mDupes.Add(uint64(dupes))
	c.dupes += dupes
	if r.ContentLength > 0 {
		c.mUploadB.Add(uint64(r.ContentLength))
	}

	resp := CompleteResponse{Merged: len(pages), Duplicates: dupes}
	c.traceRPC("complete", ls, r.Header, now, "ok", len(pages))
	if ls.state == leaseComplete {
		// Late delivery from a previous holder: the merge above already
		// absorbed anything fresh (normally nothing); the lease record
		// stands.
		c.logf("late delivery", "lease", leaseID, "worker", worker, "duplicates", dupes)
		writeJSON(w, resp)
		return
	}
	e := journalEntry{
		Type: "complete", Lease: leaseID, Worker: worker,
		Attempted: atoi("attempted"), Successful: atoi("successful"), Failed: atoi("failed"),
		Locals: atoi("locals"), Retention: atoi("retention_errors"), Duplicates: dupes,
		ElapsedMS: elapsedMS, UploadMS: uploadMS,
	}
	c.journal.append(e)
	if w2 := c.workers[ls.worker]; w2 != nil && w2.lease == leaseID {
		w2.lease = ""
	}
	c.markCompleteLocked(ls, e)
	c.mCompletes.Inc()
	// Health top-off: the lease contributes exactly its target count to
	// the leg's progress, however heartbeats interleaved.
	for i := ls.reported; i < ls.Targets(); i++ {
		ls.leg.health.VisitDone(-1, 0, true)
	}
	ls.reported = ls.Targets()
	c.logf("lease complete", "lease", leaseID, "worker", worker, "merged", len(pages), "duplicates", dupes)
	c.checkLegsLocked()
	c.checkDoneLocked()
	select {
	case <-c.doneCh:
		resp.FleetDone = true
	default:
	}
	writeJSON(w, resp)
}

// Close stops the sweeper and releases the journal and WAL logs. It
// does not write campaign outputs; see WriteOutputs.
func (c *Coordinator) Close() error {
	if c.sweeping {
		select {
		case <-c.sweepStop:
		default:
			close(c.sweepStop)
			<-c.sweepDone
		}
	}
	var err error
	if c.journal != nil {
		if jerr := c.journal.close(); jerr != nil && err == nil {
			err = jerr
		}
		c.journal = nil
	}
	if cerr := c.closeStores(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func (c *Coordinator) closeStores() error {
	var err error
	for crawl, lg := range c.logs {
		if cerr := lg.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("fleet: %s wal: %w", crawl, cerr)
		}
		delete(c.logs, crawl)
	}
	return err
}
