package fleet

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// ErrLeaseLost is returned by Renew when the coordinator no longer
// recognizes this worker as the lease's holder: the lease expired (and
// may be reassigned) or completed. The worker may finish and upload
// anyway — dedup makes the double delivery harmless — but further
// renewals buy nothing.
var ErrLeaseLost = errors.New("fleet: lease lost")

// Client speaks the coordinator's control plane on behalf of one
// worker.
type Client struct {
	// Base is the coordinator's URL, e.g. "http://10.0.0.1:7090".
	Base string
	// Worker names this worker in every request.
	Worker string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post issues one control-plane POST and decodes the JSON response into
// out. Non-2xx responses surface as errors carrying the server's
// message; the status code is returned for callers that branch on it.
func (c *Client) post(ctx context.Context, path string, q url.Values, body io.Reader, gzipped bool, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path+"?"+q.Encode(), body)
	if err != nil {
		return 0, err
	}
	// Propagate the caller's span (the worker's per-lease span) as W3C
	// trace context, so the coordinator's server-side spans join the
	// same distributed trace. A context without a valid span injects
	// nothing.
	telemetry.InjectTraceContext(ctx, req.Header)
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(raw, &e)
		if e.Error == "" {
			e.Error = string(raw)
		}
		return resp.StatusCode, fmt.Errorf("fleet: %s: %s (status %d)", path, e.Error, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Acquire asks for work. Exactly one of the results is meaningful:
// a granted lease, done (the campaign is finished), or a retry delay
// (everything is leased out right now).
func (c *Client) Acquire(ctx context.Context) (*Lease, bool, time.Duration, error) {
	q := url.Values{"worker": {c.Worker}}
	var resp AcquireResponse
	if _, err := c.post(ctx, "/v1/lease/acquire", q, nil, false, &resp); err != nil {
		return nil, false, 0, err
	}
	if resp.Done {
		return nil, true, 0, nil
	}
	if resp.Lease == nil {
		retry := time.Duration(resp.RetryMS) * time.Millisecond
		if retry <= 0 {
			retry = 500 * time.Millisecond
		}
		return nil, false, retry, nil
	}
	return resp.Lease, false, 0, nil
}

// Renew heartbeats the lease with the worker's visit progress.
func (c *Client) Renew(ctx context.Context, leaseID string, visited int) error {
	q := url.Values{
		"worker": {c.Worker}, "lease": {leaseID},
		"visited": {strconv.Itoa(visited)},
	}
	code, err := c.post(ctx, "/v1/lease/renew", q, nil, false, nil)
	if code == http.StatusConflict || code == http.StatusNotFound {
		return ErrLeaseLost
	}
	return err
}

// CompleteStats summarizes the lease crawl for the manifest row.
type CompleteStats struct {
	Attempted, Successful, Failed, Locals, RetentionErrors int
	Elapsed, Upload                                        time.Duration
}

// Complete uploads the lease's shard store (canonical Save bytes,
// gzip-compressed on the wire) and reports the crawl summary. The
// upload is idempotent: on a retried or double delivery the coordinator
// dedups and reports the overlap in the response.
func (c *Client) Complete(ctx context.Context, leaseID string, stats CompleteStats, shard []byte) (*CompleteResponse, error) {
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(shard); err != nil {
		return nil, err
	}
	if err := gw.Close(); err != nil {
		return nil, err
	}
	q := url.Values{
		"worker": {c.Worker}, "lease": {leaseID},
		"attempted":        {strconv.Itoa(stats.Attempted)},
		"successful":       {strconv.Itoa(stats.Successful)},
		"failed":           {strconv.Itoa(stats.Failed)},
		"locals":           {strconv.Itoa(stats.Locals)},
		"retention_errors": {strconv.Itoa(stats.RetentionErrors)},
		"elapsed_ms":       {strconv.FormatFloat(float64(stats.Elapsed.Milliseconds()), 'f', -1, 64)},
		"upload_ms":        {strconv.FormatFloat(float64(stats.Upload.Milliseconds()), 'f', -1, 64)},
	}
	var resp CompleteResponse
	if _, err := c.post(ctx, "/v1/lease/complete", q, bytes.NewReader(buf.Bytes()), true, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// FleetStatus fetches the coordinator's fleet snapshot.
func (c *Client) FleetStatus(ctx context.Context) (*FleetStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/fleet/status", nil)
	if err != nil {
		return nil, err
	}
	telemetry.InjectTraceContext(ctx, req.Header)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: status %d from /v1/fleet/status", resp.StatusCode)
	}
	var fs FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		return nil, err
	}
	return &fs, nil
}
