package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/goldencampaign"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// goldenConfig is the deterministic golden campaign as a fleet: same
// scale, seed, and retention as every other golden artifact, so the
// merged stores must hash identically to testdata/golden/stores.sha256.
func goldenConfig(t testing.TB, dir string) Config {
	t.Helper()
	return Config{
		Name:   "fleet-golden",
		OutDir: dir,
		Crawls: goldencampaign.Crawls,
		Scale:  goldencampaign.Scale,
		Seed:   goldencampaign.Seed, RetainLogs: true,
		LeaseTargets: 64,
		TTL:          time.Minute,
	}
}

// assertGolden verifies the coordinator's written stores byte-match the
// single-process campaign.
func assertGolden(t *testing.T, c *Coordinator, dir string) {
	t.Helper()
	if _, err := c.WriteOutputs(); err != nil {
		t.Fatalf("WriteOutputs: %v", err)
	}
	for _, crawl := range goldencampaign.Crawls {
		want, err := goldencampaign.Encoded(crawl)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir, string(crawl)+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: merged store differs from single-process golden (%d vs %d bytes, sha256 %s vs %s)",
				crawl, len(got), len(want), shortHash(got), shortHash(want))
		}
	}
}

func shortHash(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])[:12]
}

// TestPartitionDeterministic pins that the partition depends only on
// its parameters: two coordinators over the same campaign must hand out
// identical lease tables, or resume would corrupt.
func TestPartitionDeterministic(t *testing.T) {
	a, err := partition(goldencampaign.Crawls, 0.02, 7, true, "", 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := partition(goldencampaign.Crawls, 0.02, 7, true, "", 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("partitions sized %d and %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("lease %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// 2021 has no Mac leg.
	for _, l := range a {
		if l.Crawl == string(groundtruth.CrawlTop2021) && l.OS == "Mac" {
			t.Fatalf("2021 crawl partitioned a Mac leg: %+v", l)
		}
	}
	// Ranges tile each leg exactly.
	covered := map[string]int{}
	for _, l := range a {
		covered[l.Crawl+"|"+l.OS] += l.Targets()
		if l.Targets() <= 0 || l.Targets() > 50 {
			t.Fatalf("lease %s covers %d targets", l.ID, l.Targets())
		}
		if l.FirstDomain == "" || l.LastDomain == "" {
			t.Fatalf("lease %s missing boundary domains", l.ID)
		}
	}
	for leg, n := range covered {
		if n == 0 {
			t.Fatalf("leg %s covered no targets", leg)
		}
	}
}

// TestFleetGoldenParity runs the full distributed campaign — a
// coordinator and two concurrent in-process workers — and requires the
// merged, coordinator-written stores to be byte-identical to the
// single-process golden campaign.
func TestFleetGoldenParity(t *testing.T) {
	dir := t.TempDir()
	c, err := New(goldenConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	sums := make([]*WorkerSummary, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = RunWorker(context.Background(), WorkerConfig{
				Coordinator: ts.URL,
				Name:        []string{"alpha", "beta"}[i],
				Workers:     2,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("workers exited but the fleet is not done")
	}
	if sums[0].Leases+sums[1].Leases == 0 {
		t.Fatal("no leases completed")
	}
	assertGolden(t, c, dir)

	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fleet == nil {
		t.Fatal("manifest has no fleet section")
	}
	if len(m.Fleet.Workers) == 0 {
		t.Fatal("fleet section names no workers")
	}
	for _, w := range m.Fleet.Workers {
		if w != "alpha" && w != "beta" {
			t.Fatalf("unexpected worker %q in manifest", w)
		}
	}
	total := 0
	for _, lr := range m.Fleet.Leases {
		if lr.Worker == "" {
			t.Fatalf("lease %s has no completing worker", lr.ID)
		}
		total += lr.Targets
	}
	var attempted int
	for _, e := range m.Entries {
		attempted += e.Attempted
	}
	if attempted != total {
		t.Fatalf("manifest entries attempted %d visits, leases cover %d", attempted, total)
	}
	fs := c.Status()
	if !fs.Done || fs.Leases.Complete != fs.Leases.Total {
		t.Fatalf("fleet status not done: %+v", fs.Leases)
	}
	if fs.MergedVisits != total {
		t.Fatalf("status reports %d merged visits, leases cover %d", fs.MergedVisits, total)
	}
}

// TestFleetDoubleDelivery pins the dedup contract: delivering the same
// shard twice (the slow-but-alive previous holder of a reassigned
// lease) merges nothing the second time and leaves the store golden.
func TestFleetDoubleDelivery(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig(t, dir)
	cfg.TTL = 100 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	ctx := context.Background()
	slow := &Client{Base: ts.URL, Worker: "slow"}
	lease, done, _, err := slow.Acquire(ctx)
	if err != nil || done || lease == nil {
		t.Fatalf("acquire: lease=%v done=%v err=%v", lease, done, err)
	}

	// Let the lease expire, then have a healthy worker finish the whole
	// campaign — including the reassigned range.
	time.Sleep(250 * time.Millisecond)
	if err := slow.Renew(ctx, lease.ID, 1); err != ErrLeaseLost {
		t.Fatalf("renew after expiry: err=%v, want ErrLeaseLost", err)
	}
	if _, err := RunWorker(ctx, WorkerConfig{Coordinator: ts.URL, Name: "healthy", Workers: 2}); err != nil {
		t.Fatal(err)
	}

	// The slow worker now finishes its lost lease and uploads anyway.
	shard := crawlLease(t, lease)
	resp, err := slow.Complete(ctx, lease.ID, CompleteStats{Attempted: lease.Targets()}, shard)
	if err != nil {
		t.Fatalf("late delivery rejected: %v", err)
	}
	if resp.Merged != 0 {
		t.Fatalf("late delivery merged %d fresh visits, want 0", resp.Merged)
	}
	if resp.Duplicates != lease.Targets() {
		t.Fatalf("late delivery deduped %d visits, want %d", resp.Duplicates, lease.Targets())
	}

	// And a straight re-upload of an already-complete lease's shard by
	// its own completer is equally absorbed.
	resp2, err := slow.Complete(ctx, lease.ID, CompleteStats{Attempted: lease.Targets()}, shard)
	if err != nil || resp2.Merged != 0 {
		t.Fatalf("re-upload: merged=%d err=%v", resp2.Merged, err)
	}

	assertGolden(t, c, dir)
	fs := c.Status()
	if fs.Leases.Expiries == 0 {
		t.Fatal("status records no expiries after a TTL death")
	}
	if fs.DuplicateVisits < lease.Targets() {
		t.Fatalf("status records %d duplicate visits, want at least %d", fs.DuplicateVisits, lease.Targets())
	}
}

// crawlLease produces a lease's shard store bytes exactly as a worker
// would, via an isolated one-lease crawl.
func crawlLease(t *testing.T, lease *Lease) []byte {
	t.Helper()
	dir := t.TempDir()
	c, err := New(Config{
		Name: "shard-helper", OutDir: dir,
		Crawls: []groundtruth.CrawlID{groundtruth.CrawlID(lease.Crawl)},
		Scale:  lease.Scale, Seed: lease.Seed, RetainLogs: lease.RetainLogs,
		LeaseTargets: lease.Targets(), TTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := &Client{Base: ts.URL, Worker: "helper"}
	for {
		got, done, retry, err := client.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("helper fleet finished without producing lease %s", lease.ID)
		}
		if got == nil {
			time.Sleep(retry)
			continue
		}
		shard := crawlRange(t, got)
		if got.Crawl == lease.Crawl && got.OS == lease.OS && got.Lo == lease.Lo && got.Hi == lease.Hi {
			return shard
		}
		if _, err := client.Complete(ctx, got.ID, CompleteStats{Attempted: got.Targets()}, shard); err != nil {
			t.Fatal(err)
		}
	}
}

// crawlRange crawls one lease's exact target range into a fresh store
// and returns its canonical bytes — what a worker uploads.
func crawlRange(t *testing.T, lease *Lease) []byte {
	t.Helper()
	osv, err := hostenv.ParseOS(lease.OS)
	if err != nil {
		t.Fatal(err)
	}
	world, err := websim.Build(groundtruth.CrawlID(lease.Crawl), osv, lease.Scale, lease.Seed)
	if err != nil {
		t.Fatal(err)
	}
	world.Targets = world.Targets[lease.Lo:lease.Hi]
	st := store.New()
	if _, err := crawler.RunWorld(crawler.Config{
		Crawl: groundtruth.CrawlID(lease.Crawl), OS: osv,
		Scale: lease.Scale, Seed: lease.Seed, Workers: 2,
		RetainLogs: lease.RetainLogs,
	}, world, st); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
