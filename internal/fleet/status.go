package fleet

import (
	"encoding/json"
	"net/http"
	"sort"
)

// FleetStatus is the wire form of GET /v1/fleet/status: the lease state
// machine, per-leg progress with live rates pulled from the health
// plane, and the workers the coordinator has heard from.
type FleetStatus struct {
	Name  string  `json:"name"`
	Scale float64 `json:"scale"`
	Seed  uint64  `json:"seed"`
	// Done reports that every lease has completed and merged.
	Done bool `json:"done"`

	Leases  LeaseCounts   `json:"leases"`
	Legs    []LegStatus   `json:"legs"`
	Workers []WorkerState `json:"workers,omitempty"`

	// MergedVisits and DuplicateVisits count pages committed to the
	// campaign stores and pages dropped by dedup, fleet-wide.
	MergedVisits    int `json:"merged_visits"`
	DuplicateVisits int `json:"duplicate_visits,omitempty"`

	// PagesPerSec sums the legs' live rates; ETASeconds divides the
	// remaining targets by it.
	PagesPerSec float64 `json:"pages_per_sec"`
	ETASeconds  float64 `json:"eta_seconds,omitempty"`
}

// LeaseCounts tallies leases by state.
type LeaseCounts struct {
	Total     int `json:"total"`
	Available int `json:"available"`
	Leased    int `json:"leased"`
	Complete  int `json:"complete"`
	// Expiries counts TTL deaths (a lease can expire more than once);
	// Reassignments counts acquisitions after the first.
	Expiries      int `json:"expiries,omitempty"`
	Reassignments int `json:"reassignments,omitempty"`
}

// LegStatus is one (crawl, OS) leg's fleet view.
type LegStatus struct {
	Crawl          string  `json:"crawl"`
	OS             string  `json:"os"`
	Targets        int     `json:"targets"`
	Leases         int     `json:"leases"`
	CompleteLeases int     `json:"complete_leases"`
	MergedVisits   int     `json:"merged_visits"`
	PagesPerSec    float64 `json:"pages_per_sec"`
	ETASeconds     float64 `json:"eta_seconds,omitempty"`
	Done           bool    `json:"done,omitempty"`
}

// WorkerState is one worker as the coordinator last saw it.
type WorkerState struct {
	Name string `json:"name"`
	// Lease is the currently held lease, "" when idle.
	Lease string `json:"lease,omitempty"`
	// Visited is the last heartbeat progress on that lease.
	Visited int `json:"visited,omitempty"`
	// LastSeenMS is the age of the worker's last control-plane contact.
	LastSeenMS float64 `json:"last_seen_ms"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, c.Status())
}

// Status assembles the fleet snapshot. Rates come from the same health
// tracker that serves /status, so the two planes cannot disagree.
func (c *Coordinator) Status() FleetStatus {
	hs := c.tracker.Status()
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := FleetStatus{Name: c.cfg.Name, Scale: c.cfg.Scale, Seed: c.cfg.Seed}
	remaining := 0
	for _, ls := range c.leases {
		fs.Leases.Total++
		fs.Leases.Expiries += ls.expiries
		if ls.acquires > 1 {
			fs.Leases.Reassignments += ls.acquires - 1
		}
		switch ls.state {
		case leaseAvailable:
			fs.Leases.Available++
			remaining += ls.Targets()
		case leaseLeased:
			fs.Leases.Leased++
			if left := ls.Targets() - ls.visited; left > 0 {
				remaining += left
			}
		case leaseComplete:
			fs.Leases.Complete++
		}
	}
	fs.Done = fs.Leases.Complete == fs.Leases.Total
	// Duplicates this process observed; journaled completion records
	// additionally survive restarts in the manifest's per-lease rows.
	fs.DuplicateVisits = c.dupes
	for _, leg := range c.legs {
		st := LegStatus{
			Crawl: string(leg.key.crawl), OS: leg.key.os.String(),
			Targets: leg.total, Leases: len(leg.leases),
			CompleteLeases: leg.complete, MergedVisits: leg.merged,
			Done: leg.complete == len(leg.leases),
		}
		for _, cs := range hs.Crawls {
			if cs.Crawl == st.Crawl && cs.OS == st.OS {
				st.PagesPerSec = cs.PagesPerSec
				st.ETASeconds = cs.ETASeconds
				break
			}
		}
		fs.MergedVisits += leg.merged
		if !st.Done {
			fs.PagesPerSec += st.PagesPerSec
		}
		fs.Legs = append(fs.Legs, st)
	}
	if fs.PagesPerSec > 0 && remaining > 0 {
		fs.ETASeconds = float64(remaining) / fs.PagesPerSec
	}
	for _, ws := range c.workers {
		fs.Workers = append(fs.Workers, WorkerState{
			Name: ws.name, Lease: ws.lease, Visited: ws.visited,
			LastSeenMS: float64(now.Sub(ws.lastSeen).Milliseconds()),
		})
	}
	sort.Slice(fs.Workers, func(i, j int) bool { return fs.Workers[i].Name < fs.Workers[j].Name })
	return fs
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
