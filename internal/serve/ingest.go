package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// IngestResponse is the wire form of POST /v1/ingest: what the offline
// pipeline would have stored for this visit, returned to the uploader.
type IngestResponse struct {
	Crawl  string `json:"crawl"`
	OS     string `json:"os"`
	Domain string `json:"domain"`
	// Events is the number of NetLog events parsed from the stream.
	Events int `json:"events"`
	// Detections are the extracted local-network requests, in the same
	// record form the crawler stores.
	Detections []store.LocalRequest `json:"detections"`
	// LocalhostVerdict and LANVerdict carry the behavior classification
	// of this upload's detections, when any exist in that class.
	LocalhostVerdict *report.JSONVerdict `json:"localhost_verdict,omitempty"`
	LANVerdict       *report.JSONVerdict `json:"lan_verdict,omitempty"`
}

// handleIngest runs the detection pipeline online over one uploaded
// visit: NetLog JSONL events stream in, the localnet detector and the
// classifier run exactly as in the offline crawl, and the resulting
// records are committed to the live store in one sharded batch. The
// upload is all-or-nothing: a malformed line rejects the whole stream
// with its line number and commits nothing.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.metrics.request(r.URL.Path)
	select {
	case s.ingests <- struct{}{}:
		s.metrics.ingestsInflight.Add(1)
		defer func() {
			s.metrics.ingestsInflight.Add(-1)
			<-s.ingests
		}()
	default:
		s.metrics.ingestFailed()
		s.reject(w, "ingest")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.IngestTimeout)
	defer cancel()
	start := time.Now()

	q := r.URL.Query()
	domain := q.Get("domain")
	if domain == "" {
		s.metrics.ingestFailed()
		httpError(w, http.StatusBadRequest, "domain query parameter is required")
		return
	}
	crawl := q.Get("crawl")
	if crawl == "" {
		crawl = "live"
	}
	osName := q.Get("os")
	if osName == "" {
		osName = "Linux"
	}
	rank := 0
	if raw := q.Get("rank"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.metrics.ingestFailed()
			httpError(w, http.StatusBadRequest, "bad rank "+strconv.Quote(raw))
			return
		}
		rank = n
	}
	url := q.Get("url")
	if url == "" {
		url = "https://" + domain + "/"
	}
	var committedAt time.Duration
	if raw := q.Get("committed_at"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			s.metrics.ingestFailed()
			httpError(w, http.StatusBadRequest, "bad committed_at "+strconv.Quote(raw))
			return
		}
		committedAt = d
	}

	// One trace record per upload, in the same form the crawler emits;
	// the deferred End reports the final outcome whichever path returns.
	// An uploader that propagated a W3C trace context parents the ingest
	// record under its span; otherwise the ingest roots its own trace,
	// derived from the visit identity exactly as the crawler derives it,
	// so an ingest replay of a simulated visit shares its trace ID.
	vt := s.opts.Tracer.StartVisit(crawl, osName, domain, url, rank)
	if vt != nil {
		traceID, parent := telemetry.TraceID{}, telemetry.SpanID{}
		if sc, ok := telemetry.ExtractTraceContext(r.Header); ok {
			traceID, parent = sc.TraceID, sc.SpanID
		} else {
			traceID = telemetry.DeriveTraceID(0, crawl, osName, url)
		}
		vt.SetSpanContext(telemetry.SpanContext{
			TraceID: traceID,
			SpanID:  telemetry.DeriveSpanID(traceID, "ingest:"+domain),
		}, parent)
	}
	outcome := "ok"
	log := &netlog.Log{}
	defer func() {
		vt.End(outcome, log.Len())
		// The ingest plane has no fixed worker slots; -1 skips the
		// per-worker bookkeeping while still feeding throughput and
		// failure rate.
		s.ingestLeg.VisitDone(-1, time.Since(start), outcome == "ok")
	}()

	// Parse the stream incrementally: one event per Next call, bounded
	// body (gzip-compressed uploads are decompressed transparently, with
	// the decompressed stream bounded too), periodic deadline checks.
	// Only the decoded events are held; the raw JSONL is never buffered.
	body, err := RequestBody(w, r, s.opts.MaxIngestBytes)
	if err != nil {
		s.metrics.ingestFailed()
		outcome = err.Error()
		if errors.Is(err, ErrUnsupportedEncoding) {
			httpError(w, http.StatusUnsupportedMediaType, err.Error())
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	parseStart := time.Now()
	dec := netlog.NewJSONLReader(body)
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.metrics.ingestFailed()
			outcome = err.Error()
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) || errors.Is(err, ErrBodyTooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge, err.Error())
				return
			}
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		log.Events = append(log.Events, ev)
		if len(log.Events)%1024 == 0 && ctx.Err() != nil {
			s.metrics.ingestFailed()
			outcome = "ingest timed out"
			httpError(w, http.StatusServiceUnavailable, "ingest timed out")
			return
		}
	}
	// Elapsed time is measured once and fed to the span and the stage
	// counters alike — the trace file and /metrics cannot disagree.
	parseElapsed := time.Since(parseStart)
	vt.Add("parse", parseStart, parseElapsed, log.Len())
	s.metrics.stage("parse", log.Len(), parseElapsed, vt.TraceIDString())

	// The offline pipeline, online: the same canonical detect →
	// classify path the crawler and the examples run, with verdicts
	// corroborated via WHOIS when the server mounts a registry, and
	// per-stage timings feeding /metrics and the visit trace.
	out := pipeline.Process(log, pipeline.Visit{
		Crawl: crawl, OS: osName, Domain: domain, Rank: rank,
		Category: q.Get("category"), URL: url, CommittedAt: committedAt,
	}, pipeline.Options{
		Classify: true,
		Whois:    s.opts.Whois,
		Meters:   s.metrics.stages,
		Trace:    vt,
	})
	resp := IngestResponse{Crawl: crawl, OS: osName, Domain: domain, Events: log.Len()}
	resp.Detections = out.Locals
	if resp.Detections == nil {
		resp.Detections = []store.LocalRequest{}
	}

	classCounts := map[string]int{}
	if out.LocalhostVerdict != nil {
		v := report.VerdictJSON(*out.LocalhostVerdict)
		resp.LocalhostVerdict = &v
		classCounts[v.Class] += len(out.Localhost)
	}
	if out.LANVerdict != nil {
		v := report.VerdictJSON(*out.LANVerdict)
		resp.LANVerdict = &v
		classCounts[v.Class] += len(out.LAN)
	}

	// Commit the visit in one sharded batch (all records share the
	// domain, hence the shard) and retain the capture if asked. The
	// store bumps its generation on commit, so cached query responses
	// and the site index go stale on their own.
	st := s.eng.Store()
	var batch store.Batch
	out.StageInto(&batch)
	commitStart := time.Now()
	st.AddBatch(&batch)
	commitElapsed := time.Since(commitStart)
	vt.Add("commit", commitStart, commitElapsed, batch.Len())
	s.metrics.stage("commit", batch.Len(), commitElapsed, vt.TraceIDString())
	if q.Get("retain") == "1" && len(out.Findings) > 0 {
		nlStart := time.Now()
		err := st.AddNetLog(crawl, osName, domain, log)
		nlElapsed := time.Since(nlStart)
		s.metrics.stage("netlog", 1, nlElapsed, vt.TraceIDString())
		if err != nil {
			// Retention is best-effort, as in the crawler; the records
			// are committed regardless.
			vt.AddErr("netlog", nlStart, nlElapsed, 0, "retention failed")
			s.metrics.ingestFailed()
			s.ingestLeg.RetentionError()
		} else {
			vt.Add("netlog", nlStart, nlElapsed, 1)
		}
	}
	s.metrics.ingested(log.Len(), len(resp.Detections), time.Since(start), classCounts)
	writeJSON(w, resp)
}
