// Package serve is the serving side of the architecture: a stdlib-only
// HTTP service exposing crawl telemetry with two planes.
//
// The query plane serves concurrent JSON reads over one or more
// mounted stores — filtered record listings (/v1/locals, /v1/pages),
// per-site classification reports (/v1/site/{domain}), and the corpus
// summary (/v1/summary) — through the shared queryengine, with a
// bounded LRU response cache keyed on the canonical query. Cached
// responses are scope-tagged and revalidated against the store's
// commit-scope journal, so live ingest of one domain invalidates only
// the entries whose filter scope it intersects — not the whole cache.
//
// The ingest plane (/v1/ingest) accepts NetLog event streams as JSONL,
// parses them incrementally (no whole-body buffering), runs the same
// localnet detect → classify pipeline the offline crawler uses, commits
// the results to the live store via the sharded Batch API, and returns
// the detections.
//
// Production posture: per-plane concurrency limits answering 429 when
// saturated, per-plane request timeouts, graceful shutdown that drains
// in-flight ingests, and a /metrics endpoint.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// Options tune the service; the zero value picks production defaults.
type Options struct {
	// QueryConcurrency caps simultaneous query-plane requests
	// (default 64). Excess requests receive 429.
	QueryConcurrency int
	// IngestConcurrency caps simultaneous ingest uploads (default 4).
	IngestConcurrency int
	// QueryTimeout bounds one query request (default 10s).
	QueryTimeout time.Duration
	// IngestTimeout bounds one ingest upload (default 60s).
	IngestTimeout time.Duration
	// CacheEntries bounds the query response cache (default 512 entries;
	// negative disables caching).
	CacheEntries int
	// MaxIngestBytes bounds one upload body (default 64 MiB). The bound
	// applies to the bytes on the wire and, for Content-Encoding: gzip
	// uploads, to the decompressed stream as well.
	MaxIngestBytes int64
	// MaxRows caps rows returned by a single listing query regardless of
	// the requested limit (default 10000; the total match count is
	// always reported).
	MaxRows int
	// Whois corroborates ingest-plane fraud-detection verdicts with
	// registrant evidence (§4.3.1) when non-nil, matching the offline
	// investigation path. Nil leaves verdicts signature-only.
	Whois *whois.Registry
	// Registry receives the service's operational metrics (requests,
	// rejections, cache, ingest, and pipeline-stage counters). Nil uses
	// a private registry; knockserved passes telemetry.Default() so the
	// debug endpoint and /metrics read the same process-wide state.
	Registry *telemetry.Registry
	// Tracer, when non-nil, records one per-visit trace per ingest
	// upload (parse → detect → classify → commit spans), in the same
	// JSONL form the crawler emits.
	Tracer *telemetry.Tracer
	// Health, when non-nil, registers the ingest plane as an open-ended
	// progress leg on the live operations plane: upload throughput and
	// failure rate become visible on /status alongside any crawls the
	// process runs.
	Health *health.Tracker
}

func (o Options) withDefaults() Options {
	if o.QueryConcurrency <= 0 {
		o.QueryConcurrency = 64
	}
	if o.IngestConcurrency <= 0 {
		o.IngestConcurrency = 4
	}
	if o.QueryTimeout <= 0 {
		o.QueryTimeout = 10 * time.Second
	}
	if o.IngestTimeout <= 0 {
		o.IngestTimeout = 60 * time.Second
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 512
	}
	if o.MaxIngestBytes <= 0 {
		o.MaxIngestBytes = 64 << 20
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 10000
	}
	return o
}

// Server is the knockserved HTTP service.
type Server struct {
	eng     *queryengine.Engine
	opts    Options
	cache   *queryengine.Cache
	metrics *metrics
	// ingestLeg is the ingest plane's open-ended health progress leg
	// (nil-safe: a no-op when Options.Health is unset).
	ingestLeg *health.CrawlProgress
	queries   chan struct{} // query-plane semaphore
	ingests   chan struct{} // ingest-plane semaphore
	mux       *http.ServeMux
}

// New builds a server over an engine. Ingested telemetry is committed
// to the engine's store, so queries observe uploads immediately.
func New(eng *queryengine.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		eng:       eng,
		opts:      opts,
		cache:     queryengine.NewCache(opts.CacheEntries),
		metrics:   newMetrics(opts.Registry),
		ingestLeg: opts.Health.StartCrawl("ingest", "live", 0, 0),
		queries:   make(chan struct{}, opts.QueryConcurrency),
		ingests:   make(chan struct{}, opts.IngestConcurrency),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/locals", s.query("/v1/locals", s.handleLocals))
	mux.HandleFunc("GET /v1/pages", s.query("/v1/pages", s.handlePages))
	mux.HandleFunc("GET /v1/site/{domain}", s.query("/v1/site/{domain}", s.handleSite))
	mux.HandleFunc("GET /v1/summary", s.query("/v1/summary", s.handleSummary))
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the underlying query engine.
func (s *Server) Engine() *queryengine.Engine { return s.eng }

// Registry returns the metrics registry the server writes to — the
// one passed in Options.Registry, or the server's private registry.
func (s *Server) Registry() *telemetry.Registry { return s.metrics.reg }

// Close releases derived state the server registered against its
// store (the shared site index). Call it after the HTTP server has
// shut down; the engine and store remain usable.
func (s *Server) Close() { s.eng.Close() }

// query wraps a query-plane endpoint with the plane's backpressure,
// timeout, caching, and metrics. endpoint is the route pattern — the
// low-cardinality label the per-endpoint latency histogram records
// under (never the raw path, which embeds the domain for /v1/site).
// Handlers parse the request and return the canonical cache key, the
// scope of the corpus the response depends on, and a render closure; a
// nil render means the handler already answered (bad request).
func (s *Server) query(endpoint string, h func(w http.ResponseWriter, r *http.Request) (key string, scope queryengine.Scope, render func() (any, error))) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.request(r.URL.Path)
		// Requests arriving with a W3C trace context join the caller's
		// trace: the handler records one server-side request span into
		// the trace sink (child of the propagated span), and the latency
		// histogram tags its bucket exemplar with the trace ID.
		sc, traced := telemetry.ExtractTraceContext(r.Header)
		var traceID string
		outcome := "ok"
		if traced {
			traceID = sc.TraceID.String()
			if vt := s.opts.Tracer.StartVisit("query", "serve", endpoint, r.URL.RequestURI(), 0); vt != nil {
				vt.SetSpanContext(telemetry.SpanContext{
					TraceID: sc.TraceID,
					SpanID:  telemetry.DeriveSpanID(sc.TraceID, "serve:"+endpoint+":"+sc.SpanID.String()),
				}, sc.SpanID)
				defer func() { vt.End(outcome, 0) }()
			}
		}
		select {
		case s.queries <- struct{}{}:
			s.metrics.queriesInflight.Add(1)
			defer func() {
				s.metrics.queriesInflight.Add(-1)
				<-s.queries
			}()
		default:
			outcome = "rejected"
			s.reject(w, "query")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.QueryTimeout)
		defer cancel()
		key, scope, render := h(w, r.WithContext(ctx))
		if render == nil { // handler already answered (bad request)
			outcome = "bad_request"
			return
		}
		// Response cache: canonical query key, scope-tagged. An entry
		// rendered at an older generation survives as long as no commit
		// since intersects its scope (the cache consults the store's
		// commit-scope journal via ChangedSince). The generation is
		// captured BEFORE rendering: a commit racing the render then makes
		// the entry look older than it may be — over-invalidation, never a
		// stale hit.
		gen := s.eng.Generation()
		if body, cacheOutcome := s.cache.Lookup(key, gen, s.eng.ChangedSince); cacheOutcome != queryengine.Miss {
			s.metrics.cacheHit()
			writeJSONBytes(w, body)
			s.metrics.query(endpoint, cacheOutcome.String(), time.Since(start), traceID)
			return
		}
		s.metrics.cacheMiss()
		v, err := render()
		if err != nil {
			outcome = "error"
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if ctx.Err() != nil {
			outcome = "timeout"
			httpError(w, http.StatusServiceUnavailable, "query timed out")
			return
		}
		body, err := json.Marshal(v)
		if err != nil {
			outcome = "error"
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.cache.Put(key, body, gen, scope)
		writeJSONBytes(w, body)
		s.metrics.query(endpoint, queryengine.Miss.String(), time.Since(start), traceID)
	}
}

// reject answers a saturated plane: 429 with a retry hint.
func (s *Server) reject(w http.ResponseWriter, plane string) {
	s.metrics.rejected(plane)
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, plane+" plane saturated")
}

// ListResponse is the wire envelope of /v1/locals and /v1/pages: the
// (possibly truncated) rows plus the total match count.
type ListResponse struct {
	Total int `json:"total"`
	Rows  any `json:"rows"`
}

func (s *Server) handleLocals(w http.ResponseWriter, r *http.Request) (string, queryengine.Scope, func() (any, error)) {
	q := r.URL.Query()
	f := queryengine.LocalsFilter{
		Domain: q.Get("domain"),
		Dest:   q.Get("dest"),
		OS:     q.Get("os"),
		Crawl:  q.Get("crawl"),
	}
	limit, err := parseLimit(q.Get("limit"), s.opts.MaxRows)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return "", queryengine.Scope{}, nil
	}
	f.Limit = limit
	return f.Key(), queryengine.Scope{Crawl: f.Crawl, Domain: f.Domain}, func() (any, error) {
		rows, total := s.eng.Locals(f)
		if rows == nil {
			rows = []store.LocalRequest{}
		}
		return ListResponse{Total: total, Rows: rows}, nil
	}
}

func (s *Server) handlePages(w http.ResponseWriter, r *http.Request) (string, queryengine.Scope, func() (any, error)) {
	q := r.URL.Query()
	f := queryengine.PagesFilter{
		Domain: q.Get("domain"),
		OS:     q.Get("os"),
		Crawl:  q.Get("crawl"),
		Err:    q.Get("err"),
	}
	limit, err := parseLimit(q.Get("limit"), s.opts.MaxRows)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return "", queryengine.Scope{}, nil
	}
	f.Limit = limit
	return f.Key(), queryengine.Scope{Crawl: f.Crawl, Domain: f.Domain}, func() (any, error) {
		rows, total := s.eng.Pages(f)
		if rows == nil {
			rows = []store.PageRecord{}
		}
		return ListResponse{Total: total, Rows: rows}, nil
	}
}

// SiteResponse is the wire form of /v1/site/{domain}.
type SiteResponse struct {
	Domain           string               `json:"domain"`
	Pages            []store.PageRecord   `json:"pages"`
	Locals           []store.LocalRequest `json:"locals"`
	LocalhostVerdict *report.JSONVerdict  `json:"localhost_verdict,omitempty"`
	LANVerdict       *report.JSONVerdict  `json:"lan_verdict,omitempty"`
}

func (s *Server) handleSite(_ http.ResponseWriter, r *http.Request) (string, queryengine.Scope, func() (any, error)) {
	domain := r.PathValue("domain")
	return queryengine.SiteKey(domain), queryengine.Scope{Domain: domain}, func() (any, error) {
		rep := s.eng.Site(domain)
		resp := SiteResponse{Domain: rep.Domain, Pages: rep.Pages, Locals: rep.Locals}
		if resp.Pages == nil {
			resp.Pages = []store.PageRecord{}
		}
		if resp.Locals == nil {
			resp.Locals = []store.LocalRequest{}
		}
		if rep.LocalhostVerdict != nil {
			v := report.VerdictJSON(*rep.LocalhostVerdict)
			resp.LocalhostVerdict = &v
		}
		if rep.LANVerdict != nil {
			v := report.VerdictJSON(*rep.LANVerdict)
			resp.LANVerdict = &v
		}
		return resp, nil
	}
}

// handleSummary declares the empty scope — the summary depends on the
// whole corpus, so every commit invalidates it.
func (s *Server) handleSummary(_ http.ResponseWriter, r *http.Request) (string, queryengine.Scope, func() (any, error)) {
	return "summary", queryengine.Scope{}, func() (any, error) {
		return report.SummaryJSON(s.eng.Store()), nil
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	s.metrics.revalidated(s.cache.Revalidations())
	snap := s.metrics.snapshot(hits, misses, s.cache.Revalidations())
	// Surface store records whose OS label maps to no known platform —
	// they are invisible in every per-OS aggregate otherwise.
	snap.UnknownOSLabels = pipeline.IndexFor(s.eng.Store()).UnknownOSLabels()
	writeJSON(w, snap)
}

// parseLimit parses a ?limit= value, clamping to the server row cap.
// Absent means the cap; 0 would mean unlimited and is clamped too.
func parseLimit(raw string, max int) (int, error) {
	if raw == "" {
		return max, nil
	}
	var n int
	if _, err := fmt.Sscanf(raw, "%d", &n); err != nil || n < 0 {
		return 0, fmt.Errorf("bad limit %q", raw)
	}
	if n == 0 || n > max {
		return max, nil
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSONBytes(w, body)
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	w.Write([]byte("\n"))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
