package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/pipeline"
)

// metrics holds the service's operational counters. Hot-path counters
// are atomics; the low-rate maps (per-endpoint requests, detections by
// class) sit behind a mutex.
type metrics struct {
	start time.Time

	mu        sync.Mutex
	requests  map[string]uint64 // by endpoint path
	rejects   map[string]uint64 // by plane
	byClass   map[string]uint64 // ingest detections by verdict class
	stages    map[string]*stageTally
	// stages tallies ingest-plane pipeline stages (detect, infer,
	// classify) via pipeline.Hooks.
	hits      atomic.Uint64     // cache hits (also mirrored from cache)
	misses    atomic.Uint64
	uploads   atomic.Uint64 // completed ingest uploads
	events    atomic.Uint64 // ingested NetLog events
	found     atomic.Uint64 // local-network detections
	ingestNS  atomic.Uint64 // cumulative ingest wall time
	ingestErr atomic.Uint64 // rejected/failed uploads
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: make(map[string]uint64),
		rejects:  make(map[string]uint64),
		byClass:  make(map[string]uint64),
		stages:   make(map[string]*stageTally),
	}
}

// stageTally accumulates one pipeline stage's runs.
type stageTally struct {
	runs  uint64
	items uint64
	ns    uint64
}

// stage records one pipeline stage execution; it is the OnStage hook
// the ingest plane installs.
func (m *metrics) stage(s pipeline.Stage, items int, elapsed time.Duration) {
	m.mu.Lock()
	t := m.stages[s.String()]
	if t == nil {
		t = &stageTally{}
		m.stages[s.String()] = t
	}
	t.runs++
	t.items += uint64(items)
	t.ns += uint64(elapsed)
	m.mu.Unlock()
}

func (m *metrics) request(path string) {
	m.mu.Lock()
	m.requests[path]++
	m.mu.Unlock()
}

func (m *metrics) rejected(plane string) {
	m.mu.Lock()
	m.rejects[plane]++
	m.mu.Unlock()
}

func (m *metrics) cacheHit()  { m.hits.Add(1) }
func (m *metrics) cacheMiss() { m.misses.Add(1) }

func (m *metrics) ingested(events, detections int, elapsed time.Duration, classes map[string]int) {
	m.uploads.Add(1)
	m.events.Add(uint64(events))
	m.found.Add(uint64(detections))
	m.ingestNS.Add(uint64(elapsed))
	if len(classes) > 0 {
		m.mu.Lock()
		for class, n := range classes {
			m.byClass[class] += uint64(n)
		}
		m.mu.Unlock()
	}
}

func (m *metrics) ingestFailed() { m.ingestErr.Add(1) }

// MetricsSnapshot is the wire form of /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      map[string]uint64 `json:"requests"`
	Rejected      map[string]uint64 `json:"rejected_429,omitempty"`
	Cache         CacheMetrics      `json:"cache"`
	Ingest        IngestMetrics     `json:"ingest"`
	// Pipeline reports ingest-plane stage execution, keyed by stage
	// name (detect, infer, classify).
	Pipeline map[string]StageMetrics `json:"pipeline,omitempty"`
	// UnknownOSLabels tallies store records whose OS label maps to no
	// known platform (they are excluded from per-OS aggregates).
	UnknownOSLabels map[string]int `json:"unknown_os_labels,omitempty"`
}

// StageMetrics reports one pipeline stage's cumulative execution.
type StageMetrics struct {
	Runs        uint64  `json:"runs"`
	Items       uint64  `json:"items"`
	BusySeconds float64 `json:"busy_seconds"`
}

// CacheMetrics reports query-cache effectiveness.
type CacheMetrics struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// IngestMetrics reports ingest-plane throughput.
type IngestMetrics struct {
	Uploads      uint64            `json:"uploads"`
	Failed       uint64            `json:"failed,omitempty"`
	Events       uint64            `json:"events"`
	Detections   uint64            `json:"detections"`
	EventsPerSec float64           `json:"events_per_sec"`
	ByClass      map[string]uint64 `json:"detections_by_class,omitempty"`
	BusySeconds  float64           `json:"busy_seconds"`
}

// snapshot renders the counters. Cache hit/miss totals come from the
// response cache itself so the rate reflects every lookup.
func (m *metrics) snapshot(cacheHits, cacheMisses uint64) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      map[string]uint64{},
		Rejected:      map[string]uint64{},
		Cache:         CacheMetrics{Hits: cacheHits, Misses: cacheMisses},
	}
	if total := cacheHits + cacheMisses; total > 0 {
		snap.Cache.HitRate = float64(cacheHits) / float64(total)
	}
	m.mu.Lock()
	for k, v := range m.requests {
		snap.Requests[k] = v
	}
	for k, v := range m.rejects {
		snap.Rejected[k] = v
	}
	byClass := make(map[string]uint64, len(m.byClass))
	for k, v := range m.byClass {
		byClass[k] = v
	}
	if len(m.stages) > 0 {
		snap.Pipeline = make(map[string]StageMetrics, len(m.stages))
		for k, t := range m.stages {
			snap.Pipeline[k] = StageMetrics{
				Runs:        t.runs,
				Items:       t.items,
				BusySeconds: time.Duration(t.ns).Seconds(),
			}
		}
	}
	m.mu.Unlock()
	busy := time.Duration(m.ingestNS.Load()).Seconds()
	snap.Ingest = IngestMetrics{
		Uploads:     m.uploads.Load(),
		Failed:      m.ingestErr.Load(),
		Events:      m.events.Load(),
		Detections:  m.found.Load(),
		ByClass:     byClass,
		BusySeconds: busy,
	}
	if busy > 0 {
		snap.Ingest.EventsPerSec = float64(snap.Ingest.Events) / busy
	}
	return snap
}
