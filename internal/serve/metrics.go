package serve

import (
	"time"

	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// Registry metric families the service maintains. Per-path and
// per-plane counters are labeled; /metrics renders the whole set as
// MetricsSnapshot, so the wire shape is a registry view.
const (
	MetricRequests         = "serve_requests_total"   // label: path
	MetricRejected         = "serve_rejected_total"   // label: plane
	MetricInflight         = "serve_inflight"         // gauge, label: plane
	MetricCacheHits        = "serve_cache_hits_total" // mirrored from the cache
	MetricCacheMisses      = "serve_cache_misses_total"
	MetricCacheRevalidated = "serve_cache_revalidated_total" // hits fast-forwarded across generations
	MetricIngestUploads    = "serve_ingest_uploads_total"
	MetricIngestFailed     = "serve_ingest_failed_total"
	MetricIngestEvents     = "serve_ingest_events_total"
	MetricIngestDetections = "serve_ingest_detections_total"
	MetricIngestBusyNS     = "serve_ingest_busy_ns"
	MetricIngestNS         = "serve_ingest_ns"                  // histogram
	MetricIngestByClass    = "serve_ingest_detections_by_class" // label: class
	// MetricQueryNS is the query plane's server-observed latency
	// histogram, labeled by endpoint (the route pattern) and cache
	// outcome (hit/miss/revalidated). It is the server-side half of the
	// knockload report: client-observed tails compare against it.
	MetricQueryNS = "serve_query_ns"
)

// metrics holds the service's operational counters, all registered in
// a telemetry.Registry (the server's own by default, or a process-wide
// one the binary passes in Options.Registry). Fixed-name hot-path
// handles are pre-resolved; per-label counters (path, plane, class)
// resolve through the registry's read-locked fast path.
type metrics struct {
	start time.Time
	reg   *telemetry.Registry

	hits, misses    *telemetry.Counter
	reval           *telemetry.Counter
	uploads, failed *telemetry.Counter
	events, found   *telemetry.Counter
	ingestNS        *telemetry.Counter
	ingestHist      *telemetry.Histogram
	queriesInflight *telemetry.Gauge
	ingestsInflight *telemetry.Gauge
	stages          *pipeline.StageMeters
}

func newMetrics(reg *telemetry.Registry) *metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &metrics{
		start:           time.Now(),
		reg:             reg,
		hits:            reg.Counter(MetricCacheHits),
		misses:          reg.Counter(MetricCacheMisses),
		reval:           reg.Counter(MetricCacheRevalidated),
		uploads:         reg.Counter(MetricIngestUploads),
		failed:          reg.Counter(MetricIngestFailed),
		events:          reg.Counter(MetricIngestEvents),
		found:           reg.Counter(MetricIngestDetections),
		ingestNS:        reg.Counter(MetricIngestBusyNS),
		ingestHist:      reg.Histogram(MetricIngestNS),
		queriesInflight: reg.Gauge(MetricInflight, "plane", "query"),
		ingestsInflight: reg.Gauge(MetricInflight, "plane", "ingest"),
		stages:          pipeline.NewStageMeters(reg),
	}
}

// stage records one pipeline-stage execution with a pre-measured
// elapsed time. The ingest handler's extra stages (parse, commit,
// netlog) report through it with the same single measurement their
// trace spans carry, so a trace file and /metrics agree on busy time.
// A non-empty traceID tags the latency bucket's exemplar.
func (m *metrics) stage(name string, items int, elapsed time.Duration, traceID string) {
	m.reg.Counter(pipeline.MetricStageRuns, "stage", name).Inc()
	m.reg.Counter(pipeline.MetricStageItems, "stage", name).Add(uint64(items))
	m.reg.Counter(pipeline.MetricStageBusyNS, "stage", name).Add(uint64(elapsed))
	m.reg.Histogram(pipeline.MetricStageNS, "stage", name).ObserveDurationExemplar(elapsed, traceID)
}

func (m *metrics) request(path string) {
	m.reg.Counter(MetricRequests, "path", path).Inc()
}

// query records one answered query-plane request: full handler time
// (queueing, cache lookup, render, serialization, write) under the
// endpoint's route pattern and the cache outcome that produced the
// response. Requests that arrived with a trace context tag the latency
// bucket's exemplar with their trace ID.
func (m *metrics) query(endpoint, cache string, elapsed time.Duration, traceID string) {
	m.reg.Histogram(MetricQueryNS, "endpoint", endpoint, "cache", cache).ObserveDurationExemplar(elapsed, traceID)
}

func (m *metrics) rejected(plane string) {
	m.reg.Counter(MetricRejected, "plane", plane).Inc()
}

func (m *metrics) cacheHit()  { m.hits.Inc() }
func (m *metrics) cacheMiss() { m.misses.Inc() }

// revalidated syncs the registry's revalidation counter to the cache's
// cumulative total (the cache counts internally; the registry mirrors).
func (m *metrics) revalidated(total uint64) {
	if cur := m.reval.Value(); total > cur {
		m.reval.Add(total - cur)
	}
}

func (m *metrics) ingested(events, detections int, elapsed time.Duration, classes map[string]int) {
	m.uploads.Inc()
	m.events.Add(uint64(events))
	m.found.Add(uint64(detections))
	m.ingestNS.Add(uint64(elapsed))
	m.ingestHist.ObserveDuration(elapsed)
	for class, n := range classes {
		m.reg.Counter(MetricIngestByClass, "class", class).Add(uint64(n))
	}
}

func (m *metrics) ingestFailed() { m.failed.Inc() }

// MetricsSnapshot is the wire form of /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      map[string]uint64 `json:"requests,omitempty"`
	Rejected      map[string]uint64 `json:"rejected_429,omitempty"`
	Cache         CacheMetrics      `json:"cache"`
	Ingest        IngestMetrics     `json:"ingest"`
	// Pipeline reports ingest-plane stage execution, keyed by stage
	// name (parse, detect, infer, classify, commit, netlog).
	Pipeline map[string]StageMetrics `json:"pipeline,omitempty"`
	// Query reports server-observed query-plane latency per endpoint
	// (route pattern), aggregated across cache outcomes, with the
	// per-outcome response counts. Omitted until the first answered
	// query so an idle snapshot's wire shape is unchanged.
	Query map[string]QueryMetrics `json:"query,omitempty"`
	// UnknownOSLabels tallies store records whose OS label maps to no
	// known platform (they are excluded from per-OS aggregates).
	UnknownOSLabels map[string]int `json:"unknown_os_labels,omitempty"`
}

// QueryMetrics reports one query endpoint's server-observed latency
// distribution (interpolated quantiles over the log-scale histogram)
// and the cache outcomes that produced its responses.
type QueryMetrics struct {
	Requests uint64            `json:"requests"`
	Cache    map[string]uint64 `json:"cache,omitempty"` // hit/miss/revalidated → responses
	P50NS    uint64            `json:"p50_ns"`
	P90NS    uint64            `json:"p90_ns"`
	P99NS    uint64            `json:"p99_ns"`
	P999NS   uint64            `json:"p999_ns"`
}

// StageMetrics reports one pipeline stage's cumulative execution.
type StageMetrics struct {
	Runs        uint64  `json:"runs"`
	Items       uint64  `json:"items"`
	BusySeconds float64 `json:"busy_seconds"`
}

// CacheMetrics reports query-cache effectiveness. Revalidated counts
// hits served by fast-forwarding an entry across store generations its
// scope did not intersect — responses the wipe-on-bump scheme would
// have recomputed.
type CacheMetrics struct {
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	Revalidated uint64  `json:"revalidated,omitempty"`
}

// IngestMetrics reports ingest-plane throughput.
type IngestMetrics struct {
	Uploads      uint64            `json:"uploads"`
	Failed       uint64            `json:"failed,omitempty"`
	Events       uint64            `json:"events"`
	Detections   uint64            `json:"detections"`
	EventsPerSec float64           `json:"events_per_sec"`
	ByClass      map[string]uint64 `json:"detections_by_class,omitempty"`
	BusySeconds  float64           `json:"busy_seconds"`
}

// snapshot renders the registry's serve-facing families as the
// /metrics wire form. Cache hit/miss totals come from the response
// cache itself so the rate reflects every lookup. Requests and
// Rejected are nil (omitted from JSON) until the first request or
// rejection — an idle server's snapshot does not fabricate empty maps.
func (m *metrics) snapshot(cacheHits, cacheMisses, cacheRevalidated uint64) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.reg.CounterLabels(MetricRequests, "path"),
		Rejected:      m.reg.CounterLabels(MetricRejected, "plane"),
		Cache:         CacheMetrics{Hits: cacheHits, Misses: cacheMisses, Revalidated: cacheRevalidated},
	}
	if total := cacheHits + cacheMisses; total > 0 {
		snap.Cache.HitRate = float64(cacheHits) / float64(total)
	}
	if runs := m.reg.CounterLabels(pipeline.MetricStageRuns, "stage"); len(runs) > 0 {
		items := m.reg.CounterLabels(pipeline.MetricStageItems, "stage")
		busy := m.reg.CounterLabels(pipeline.MetricStageBusyNS, "stage")
		for stage, n := range runs {
			// Pre-resolved handles mint every stage's counters at
			// registration; only stages that actually ran are reported.
			if n == 0 {
				continue
			}
			if snap.Pipeline == nil {
				snap.Pipeline = make(map[string]StageMetrics, len(runs))
			}
			snap.Pipeline[stage] = StageMetrics{
				Runs:        n,
				Items:       items[stage],
				BusySeconds: time.Duration(busy[stage]).Seconds(),
			}
		}
	}
	if fam := m.reg.HistogramFamily(MetricQueryNS); len(fam) > 0 {
		merged := make(map[string]telemetry.HistogramSnapshot)
		counts := make(map[string]map[string]uint64)
		for _, series := range fam {
			endpoint, cache := series.Labels["endpoint"], series.Labels["cache"]
			if endpoint == "" || series.Hist.Count == 0 {
				continue
			}
			merged[endpoint] = merged[endpoint].Merge(series.Hist)
			if counts[endpoint] == nil {
				counts[endpoint] = make(map[string]uint64)
			}
			counts[endpoint][cache] += series.Hist.Count
		}
		for endpoint, hist := range merged {
			if snap.Query == nil {
				snap.Query = make(map[string]QueryMetrics, len(merged))
			}
			snap.Query[endpoint] = QueryMetrics{
				Requests: hist.Count,
				Cache:    counts[endpoint],
				P50NS:    hist.Quantile(0.50),
				P90NS:    hist.Quantile(0.90),
				P99NS:    hist.Quantile(0.99),
				P999NS:   hist.Quantile(0.999),
			}
		}
	}
	busy := time.Duration(m.ingestNS.Value()).Seconds()
	snap.Ingest = IngestMetrics{
		Uploads:     m.uploads.Value(),
		Failed:      m.failed.Value(),
		Events:      m.events.Value(),
		Detections:  m.found.Value(),
		ByClass:     m.reg.CounterLabels(MetricIngestByClass, "class"),
		BusySeconds: busy,
	}
	if busy > 0 {
		snap.Ingest.EventsPerSec = float64(snap.Ingest.Events) / busy
	}
	return snap
}
