package queryengine

import (
	"fmt"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/portdb"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// testStore builds a small two-crawl store: one ThreatMetrix-probing
// site, one LAN dev remnant, one failed page.
func testStore() *store.Store {
	st := store.New()
	st.AddPage(store.PageRecord{Crawl: "top100k-2020", OS: "Windows", Domain: "ebay.com", Rank: 104, URL: "https://ebay.com/"})
	st.AddPage(store.PageRecord{Crawl: "top100k-2020", OS: "Linux", Domain: "ebay.com", Rank: 104, URL: "https://ebay.com/"})
	st.AddPage(store.PageRecord{Crawl: "top100k-2021", OS: "Windows", Domain: "dead.example", Err: "ERR_NAME_NOT_RESOLVED", URL: "https://dead.example/"})
	for i, p := range portdb.ThreatMetrixPorts() {
		st.AddLocal(store.LocalRequest{
			Crawl: "top100k-2020", OS: "Windows", Domain: "ebay.com", Rank: 104,
			URL: fmt.Sprintf("wss://localhost:%d/", p), Scheme: "wss", Host: "localhost",
			Port: p, Path: "/", Dest: "localhost", Delay: time.Duration(10+i) * time.Second,
			NetError: "ERR_CONNECTION_REFUSED", SOPExempt: true,
		})
	}
	st.AddLocal(store.LocalRequest{
		Crawl: "top100k-2021", OS: "Linux", Domain: "shop.example", Rank: 7001,
		URL: "http://192.168.1.5/wp-content/logo.png", Scheme: "http", Host: "192.168.1.5",
		Port: 80, Path: "/wp-content/logo.png", Dest: "lan", Delay: 2 * time.Second,
	})
	return st
}

func TestLocalsFilterAndLimit(t *testing.T) {
	e := New(testStore())
	all, total := e.Locals(LocalsFilter{})
	if want := len(portdb.ThreatMetrixPorts()) + 1; total != want || len(all) != want {
		t.Fatalf("unfiltered = %d rows, total %d, want %d", len(all), total, want)
	}
	rows, total := e.Locals(LocalsFilter{Dest: "localhost", Limit: 3})
	if len(rows) != 3 || total != len(portdb.ThreatMetrixPorts()) {
		t.Fatalf("limited = %d rows of %d", len(rows), total)
	}
	rows, _ = e.Locals(LocalsFilter{Crawl: "top100k-2021", OS: "Linux"})
	if len(rows) != 1 || rows[0].Domain != "shop.example" {
		t.Fatalf("crawl+os filter = %v", rows)
	}
	if rows, _ := e.Locals(LocalsFilter{Domain: "nosuch.example"}); len(rows) != 0 {
		t.Fatalf("miss returned %v", rows)
	}
}

func TestPagesFilter(t *testing.T) {
	e := New(testStore())
	rows, total := e.Pages(PagesFilter{Err: "ERR_NAME_NOT_RESOLVED"})
	if total != 1 || rows[0].Domain != "dead.example" {
		t.Fatalf("err filter = %v (total %d)", rows, total)
	}
	if _, total := e.Pages(PagesFilter{Domain: "ebay.com"}); total != 2 {
		t.Fatalf("domain filter total = %d, want 2 (one per OS)", total)
	}
}

func TestSiteReportMatchesOfflineClassifier(t *testing.T) {
	e := New(testStore())
	rep := e.Site("ebay.com")
	if rep.LocalhostVerdict == nil {
		t.Fatal("no localhost verdict for a ThreatMetrix-probing site")
	}
	if rep.LocalhostVerdict.Class != groundtruth.ClassFraudDetection || rep.LocalhostVerdict.Signature != "threatmetrix" {
		t.Fatalf("verdict = %+v, want fraud-detection/threatmetrix", rep.LocalhostVerdict)
	}
	if rep.LANVerdict != nil {
		t.Fatalf("spurious LAN verdict: %+v", rep.LANVerdict)
	}
	lan := e.Site("shop.example")
	if lan.LANVerdict == nil || lan.LANVerdict.Class != groundtruth.ClassDevError {
		t.Fatalf("LAN verdict = %+v, want developer error", lan.LANVerdict)
	}
	if empty := e.Site("nosuch.example"); empty.LocalhostVerdict != nil || len(empty.Pages) != 0 {
		t.Fatalf("empty site report not empty: %+v", empty)
	}
}

func TestCanonicalKeys(t *testing.T) {
	a := LocalsFilter{Domain: "ebay.com", Dest: "localhost", Limit: 10}
	b := LocalsFilter{Dest: "localhost", Domain: "ebay.com", Limit: 10}
	if a.Key() != b.Key() {
		t.Errorf("equivalent filters render different keys: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == (LocalsFilter{Domain: "ebay.com", Dest: "lan", Limit: 10}).Key() {
		t.Error("distinct filters share a key")
	}
	if (PagesFilter{Domain: "x"}).Key() == (LocalsFilter{Domain: "x"}).Key() {
		t.Error("pages and locals keys collide")
	}
}

func TestGeneration(t *testing.T) {
	e := New(testStore())
	g := e.Generation()
	e.BumpGeneration()
	if e.Generation() != g+1 {
		t.Errorf("generation did not advance: %d -> %d", g, e.Generation())
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("c", []byte("C")) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order wrong")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted although recently used")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
	// Overwrite keeps a single entry.
	c.Put("a", []byte("A2"))
	if v, _ := c.Get("a"); string(v) != "A2" {
		t.Errorf("overwrite lost: %q", v)
	}
	// A disabled cache never stores.
	d := NewCache(0)
	d.Put("x", []byte("X"))
	if _, ok := d.Get("x"); ok {
		t.Error("disabled cache returned a hit")
	}
}
