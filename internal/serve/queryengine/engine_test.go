package queryengine

import (
	"fmt"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/portdb"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// testStore builds a small two-crawl store: one ThreatMetrix-probing
// site, one LAN dev remnant, one failed page.
func testStore() *store.Store {
	st := store.New()
	st.AddPage(store.PageRecord{Crawl: "top100k-2020", OS: "Windows", Domain: "ebay.com", Rank: 104, URL: "https://ebay.com/"})
	st.AddPage(store.PageRecord{Crawl: "top100k-2020", OS: "Linux", Domain: "ebay.com", Rank: 104, URL: "https://ebay.com/"})
	st.AddPage(store.PageRecord{Crawl: "top100k-2021", OS: "Windows", Domain: "dead.example", Err: "ERR_NAME_NOT_RESOLVED", URL: "https://dead.example/"})
	for i, p := range portdb.ThreatMetrixPorts() {
		st.AddLocal(store.LocalRequest{
			Crawl: "top100k-2020", OS: "Windows", Domain: "ebay.com", Rank: 104,
			URL: fmt.Sprintf("wss://localhost:%d/", p), Scheme: "wss", Host: "localhost",
			Port: p, Path: "/", Dest: "localhost", Delay: time.Duration(10+i) * time.Second,
			NetError: "ERR_CONNECTION_REFUSED", SOPExempt: true,
		})
	}
	st.AddLocal(store.LocalRequest{
		Crawl: "top100k-2021", OS: "Linux", Domain: "shop.example", Rank: 7001,
		URL: "http://192.168.1.5/wp-content/logo.png", Scheme: "http", Host: "192.168.1.5",
		Port: 80, Path: "/wp-content/logo.png", Dest: "lan", Delay: 2 * time.Second,
	})
	return st
}

func TestLocalsFilterAndLimit(t *testing.T) {
	e := New(testStore())
	all, total := e.Locals(LocalsFilter{})
	if want := len(portdb.ThreatMetrixPorts()) + 1; total != want || len(all) != want {
		t.Fatalf("unfiltered = %d rows, total %d, want %d", len(all), total, want)
	}
	rows, total := e.Locals(LocalsFilter{Dest: "localhost", Limit: 3})
	if len(rows) != 3 || total != len(portdb.ThreatMetrixPorts()) {
		t.Fatalf("limited = %d rows of %d", len(rows), total)
	}
	rows, _ = e.Locals(LocalsFilter{Crawl: "top100k-2021", OS: "Linux"})
	if len(rows) != 1 || rows[0].Domain != "shop.example" {
		t.Fatalf("crawl+os filter = %v", rows)
	}
	if rows, _ := e.Locals(LocalsFilter{Domain: "nosuch.example"}); len(rows) != 0 {
		t.Fatalf("miss returned %v", rows)
	}
}

func TestPagesFilter(t *testing.T) {
	e := New(testStore())
	rows, total := e.Pages(PagesFilter{Err: "ERR_NAME_NOT_RESOLVED"})
	if total != 1 || rows[0].Domain != "dead.example" {
		t.Fatalf("err filter = %v (total %d)", rows, total)
	}
	if _, total := e.Pages(PagesFilter{Domain: "ebay.com"}); total != 2 {
		t.Fatalf("domain filter total = %d, want 2 (one per OS)", total)
	}
}

func TestSiteReportMatchesOfflineClassifier(t *testing.T) {
	e := New(testStore())
	rep := e.Site("ebay.com")
	if rep.LocalhostVerdict == nil {
		t.Fatal("no localhost verdict for a ThreatMetrix-probing site")
	}
	if rep.LocalhostVerdict.Class != groundtruth.ClassFraudDetection || rep.LocalhostVerdict.Signature != "threatmetrix" {
		t.Fatalf("verdict = %+v, want fraud-detection/threatmetrix", rep.LocalhostVerdict)
	}
	if rep.LANVerdict != nil {
		t.Fatalf("spurious LAN verdict: %+v", rep.LANVerdict)
	}
	lan := e.Site("shop.example")
	if lan.LANVerdict == nil || lan.LANVerdict.Class != groundtruth.ClassDevError {
		t.Fatalf("LAN verdict = %+v, want developer error", lan.LANVerdict)
	}
	if empty := e.Site("nosuch.example"); empty.LocalhostVerdict != nil || len(empty.Pages) != 0 {
		t.Fatalf("empty site report not empty: %+v", empty)
	}
}

func TestCanonicalKeys(t *testing.T) {
	a := LocalsFilter{Domain: "ebay.com", Dest: "localhost", Limit: 10}
	b := LocalsFilter{Dest: "localhost", Domain: "ebay.com", Limit: 10}
	if a.Key() != b.Key() {
		t.Errorf("equivalent filters render different keys: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == (LocalsFilter{Domain: "ebay.com", Dest: "lan", Limit: 10}).Key() {
		t.Error("distinct filters share a key")
	}
	if (PagesFilter{Domain: "x"}).Key() == (LocalsFilter{Domain: "x"}).Key() {
		t.Error("pages and locals keys collide")
	}
}

func TestGeneration(t *testing.T) {
	e := New(testStore())
	g := e.Generation()
	e.BumpGeneration()
	if e.Generation() != g+1 {
		t.Errorf("generation did not advance: %d -> %d", g, e.Generation())
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"), 1, Scope{})
	c.Put("b", []byte("B"), 1, Scope{})
	if v, ok := c.Get("a", 1, nil); !ok || string(v) != "A" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("c", []byte("C"), 1, Scope{}) // evicts b (a was just used)
	if _, ok := c.Get("b", 1, nil); ok {
		t.Error("b survived eviction; LRU order wrong")
	}
	if _, ok := c.Get("a", 1, nil); !ok {
		t.Error("a evicted although recently used")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
	// Overwrite keeps a single entry.
	c.Put("a", []byte("A2"), 1, Scope{})
	if v, _ := c.Get("a", 1, nil); string(v) != "A2" {
		t.Errorf("overwrite lost: %q", v)
	}
	// A disabled cache never stores.
	d := NewCache(0)
	d.Put("x", []byte("X"), 1, Scope{})
	if _, ok := d.Get("x", 1, nil); ok {
		t.Error("disabled cache returned a hit")
	}
}

// TestCacheScopeRevalidation pins surgical invalidation: an entry
// rendered at an older generation survives when the commits since do
// not intersect its scope, and is evicted when one does — or when the
// journal can no longer account for the span.
func TestCacheScopeRevalidation(t *testing.T) {
	changes := func(scopes ...store.CommitScope) func(uint64) ([]store.CommitScope, bool) {
		return func(uint64) ([]store.CommitScope, bool) { return scopes, true }
	}

	c := NewCache(8)
	c.Put("a", []byte("A"), 1, Scope{Crawl: "live", Domain: "a.example"})
	c.Put("b", []byte("B"), 1, Scope{Crawl: "live", Domain: "b.example"})
	c.Put("sum", []byte("S"), 1, Scope{}) // summary: depends on everything

	// A commit scoped to a.example: a and the summary die, b survives.
	delta := changes(store.CommitScope{Gen: 2, Crawl: "live", Domain: "a.example"})
	if _, ok := c.Get("a", 2, delta); ok {
		t.Error("entry for the ingested domain must be invalidated")
	}
	if _, ok := c.Get("sum", 2, delta); ok {
		t.Error("broad-scope entry must be invalidated by any commit")
	}
	if v, ok := c.Get("b", 2, delta); !ok || string(v) != "B" {
		t.Error("entry for an untouched domain must survive the generation bump")
	}
	if c.Revalidations() != 1 {
		t.Errorf("revalidations = %d, want 1", c.Revalidations())
	}
	// The survivor was fast-forwarded: the same generation is now a
	// plain hit, no journal consultation.
	if _, ok := c.Get("b", 2, nil); !ok {
		t.Error("revalidated entry must carry the new generation")
	}

	// A broad commit (bulk load, BumpGeneration) kills everything.
	c.Put("b2", []byte("B"), 2, Scope{Domain: "b.example"})
	if _, ok := c.Get("b2", 3, changes(store.CommitScope{Gen: 3, Broad: true})); ok {
		t.Error("broad commit must invalidate scoped entries")
	}

	// An incomplete journal (wrapped ring) means anything may have
	// changed: evict.
	c.Put("c", []byte("C"), 1, Scope{Domain: "c.example"})
	wrapped := func(uint64) ([]store.CommitScope, bool) { return nil, false }
	if _, ok := c.Get("c", 9, wrapped); ok {
		t.Error("incomplete change history must evict")
	}

	// A crawl-scoped filter is untouched by commits to another crawl.
	c.Put("crawl", []byte("X"), 1, Scope{Crawl: "top100k-2020"})
	if _, ok := c.Get("crawl", 2, changes(store.CommitScope{Gen: 2, Crawl: "live", Domain: "z.example"})); !ok {
		t.Error("commit in another crawl must not evict a crawl-scoped entry")
	}

	// A racing request that captured an older generation must not move
	// an entry's tag backwards: the entry keeps its newer generation and
	// the next same-generation Get is a plain hit with no journal.
	c.Put("race", []byte("R"), 5, Scope{Domain: "r.example"})
	if _, ok := c.Get("race", 3, changes()); !ok {
		t.Error("older-generation reader should still hit an untouched entry")
	}
	if _, ok := c.Get("race", 5, nil); !ok {
		t.Error("entry generation moved backwards after an older-generation Get")
	}
}
