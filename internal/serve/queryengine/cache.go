package queryengine

import (
	"container/list"
	"sync"

	"github.com/knockandtalk/knockandtalk/internal/store"
)

// Scope declares the slice of the corpus a cached response depends on:
// the crawl and domain its filter pinned, "" for unfiltered. The cache
// compares it against the store's commit-scope journal to decide
// whether a generation bump actually touched the entry.
type Scope struct {
	Crawl  string
	Domain string
}

// Cache is a bounded LRU for rendered query responses keyed on the
// canonical query key. Entries are tagged with the store generation
// they were rendered at and the scope they depend on; a Get under a
// newer generation revalidates the entry surgically — it stays a hit
// unless some commit since its generation intersects its scope (or the
// journal can no longer say). Ingest of one domain therefore evicts
// that domain's entries and broad listings, not the whole cache.
type Cache struct {
	mu            sync.Mutex
	max           int
	ll            *list.List // front = most recently used
	items         map[string]*list.Element
	hits, misses  uint64
	revalidations uint64
}

type cacheEntry struct {
	key   string
	val   []byte
	gen   uint64
	scope Scope
}

// NewCache returns a cache bounded to max entries; max <= 0 disables
// caching (every Get misses, Put is a no-op).
func NewCache(max int) *Cache {
	return &Cache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Outcome classifies one cache lookup: a plain generation-current hit,
// a hit served by revalidating the entry across generations, or a miss.
// It doubles as the `cache` label value on the server's per-endpoint
// latency histogram.
type Outcome uint8

const (
	Miss Outcome = iota
	Hit
	Revalidated
)

// String renders the outcome as its metric label value.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Revalidated:
		return "revalidated"
	default:
		return "miss"
	}
}

// Get returns the cached response for key and whether it is still
// valid at generation gen. An entry rendered at an older generation is
// revalidated through changed — the store's commit-scope journal
// (ScopesSince) — and survives when no commit since intersects its
// scope; otherwise it is evicted and the call misses. The returned
// slice is shared — callers must not modify it.
func (c *Cache) Get(key string, gen uint64, changed func(since uint64) ([]store.CommitScope, bool)) ([]byte, bool) {
	v, outcome := c.Lookup(key, gen, changed)
	return v, outcome != Miss
}

// Lookup is Get with the lookup's classification: whether the entry
// was current (Hit), fast-forwarded across generations its scope did
// not intersect (Revalidated), or absent/evicted (Miss).
func (c *Cache) Lookup(key string, gen uint64, changed func(since uint64) ([]store.CommitScope, bool)) ([]byte, Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, Miss
	}
	outcome := Hit
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		if !c.revalidate(ent, gen, changed) {
			c.ll.Remove(el)
			delete(c.items, key)
			c.misses++
			return nil, Miss
		}
		c.revalidations++
		outcome = Revalidated
	}
	c.hits++
	c.ll.MoveToFront(el)
	return ent.val, outcome
}

// revalidate decides whether an entry rendered at an older generation
// still describes the store, and fast-forwards its generation if so.
func (c *Cache) revalidate(ent *cacheEntry, gen uint64, changed func(since uint64) ([]store.CommitScope, bool)) bool {
	if changed == nil {
		return false
	}
	scopes, complete := changed(ent.gen)
	if !complete {
		return false // journal wrapped: anything may have changed
	}
	for _, sc := range scopes {
		if sc.Intersects(ent.scope.Crawl, ent.scope.Domain) {
			return false
		}
	}
	// Only advance: a racing request that captured an older generation
	// must not move the tag backwards, or the entry would be re-checked
	// (or evicted) for scopes it already covers.
	if gen > ent.gen {
		ent.gen = gen
	}
	return true
}

// Put stores a response rendered at generation gen for the given
// scope, evicting the least recently used entry when the bound is
// exceeded.
func (c *Cache) Put(key string, val []byte, gen uint64, scope Scope) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.val, ent.gen, ent.scope = val, gen, scope
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, gen: gen, scope: scope})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Revalidations reports how many hits were served by fast-forwarding
// an entry across generations its scope did not intersect — each one a
// response the old wipe-on-bump scheme would have recomputed.
func (c *Cache) Revalidations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.revalidations
}
