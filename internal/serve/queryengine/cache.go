package queryengine

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU for rendered query responses, keyed on the
// canonical query key prefixed with the engine generation (the serving
// layer composes keys as "g<generation>|<filter.Key()>"). Entries
// written under an old generation are never read again — their keys no
// longer match — and age out of the LRU naturally, so invalidation
// needs no coordination with the ingest plane.
type Cache struct {
	mu           sync.Mutex
	max          int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache bounded to max entries; max <= 0 disables
// caching (every Get misses, Put is a no-op).
func NewCache(max int) *Cache {
	return &Cache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached response for key and whether it was present.
// The returned slice is shared — callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a response, evicting the least recently used entry when
// the bound is exceeded.
func (c *Cache) Put(key string, val []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
