// Package queryengine is the shared query core over crawl telemetry:
// one implementation of the filter/aggregate surface that both the
// knockquery CLI and the knockserved HTTP service call, so the two
// interrogation paths cannot drift. An Engine wraps a store.Store
// (itself safe for concurrent use) and answers filtered record
// queries, per-site classification reports, and corpus summaries.
//
// Every filter renders to a canonical key (Key methods) that
// identifies a result uniquely within a store generation — the
// contract the serving layer's response cache is built on. The cache
// no longer discards everything on a generation bump: entries carry
// the Scope their filter pinned, and ChangedSince exposes the store's
// commit-scope journal so only entries whose scope intersects a commit
// are invalidated (surgical invalidation).
package queryengine

import (
	"fmt"

	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// Engine answers queries over one mounted store. Safe for concurrent
// use. The mutation epoch is the store's own generation counter, so
// every write path — ingest batches, direct store appends — invalidates
// cached results without explicit coordination.
type Engine struct {
	st *store.Store
}

// New wraps a store (typically populated via store.LoadFiles, possibly
// merging several crawls) in an engine.
func New(st *store.Store) *Engine { return &Engine{st: st} }

// Store exposes the underlying store for writers (the ingest plane)
// and for reports that consume a *store.Store directly.
func (e *Engine) Store() *store.Store { return e.st }

// Generation returns the store's mutation epoch. It changes on every
// store write; results computed at different generations must not be
// conflated.
func (e *Engine) Generation() uint64 { return e.st.Generation() }

// BumpGeneration forces a new mutation epoch. Store writers no longer
// need it (every Add* path bumps on its own); it remains for callers
// that mutate store state out of band.
func (e *Engine) BumpGeneration() { e.st.BumpGeneration() }

// ChangedSince reports the scopes of every commit after generation gen
// from the store's commit-scope journal. ok is false when the journal
// no longer covers that span (the caller must assume anything
// changed). This is the cache's revalidation oracle.
func (e *Engine) ChangedSince(gen uint64) ([]store.CommitScope, bool) {
	return e.st.ScopesSince(gen)
}

// Close releases resources derived from the engine's store — today the
// process-wide site index registered by pipeline.IndexFor. The store
// itself is not owned by the engine and stays usable.
func (e *Engine) Close() { pipeline.ReleaseIndex(e.st) }

// LocalsFilter selects local-request records. Zero-valued fields match
// everything; Limit 0 means unlimited.
type LocalsFilter struct {
	Domain string
	Dest   string
	OS     string
	Crawl  string
	Limit  int
}

// Key renders the filter canonically: fixed field order, so two
// equivalent filters always share a cache entry.
func (f LocalsFilter) Key() string {
	return fmt.Sprintf("locals|crawl=%s|dest=%s|domain=%s|os=%s|limit=%d",
		f.Crawl, f.Dest, f.Domain, f.OS, f.Limit)
}

// Locals returns the matching local requests in canonical store order,
// truncated to Limit, plus the total match count before truncation.
// Sorting keeps listings stable across processes; raw shard iteration
// order depends on a per-process hash seed.
func (e *Engine) Locals(f LocalsFilter) ([]store.LocalRequest, int) {
	rows := e.st.Locals(func(l *store.LocalRequest) bool {
		return (f.Domain == "" || l.Domain == f.Domain) &&
			(f.Dest == "" || l.Dest == f.Dest) &&
			(f.OS == "" || l.OS == f.OS) &&
			(f.Crawl == "" || l.Crawl == f.Crawl)
	})
	store.SortLocals(rows)
	total := len(rows)
	if f.Limit > 0 && total > f.Limit {
		rows = rows[:f.Limit]
	}
	return rows, total
}

// PagesFilter selects page records. Zero-valued fields match
// everything; Limit 0 means unlimited.
type PagesFilter struct {
	Domain string
	OS     string
	Crawl  string
	Err    string
	Limit  int
}

// Key renders the filter canonically.
func (f PagesFilter) Key() string {
	return fmt.Sprintf("pages|crawl=%s|domain=%s|err=%s|os=%s|limit=%d",
		f.Crawl, f.Domain, f.Err, f.OS, f.Limit)
}

// Pages returns the matching page records in canonical store order,
// truncated to Limit, plus the total match count before truncation.
func (e *Engine) Pages(f PagesFilter) ([]store.PageRecord, int) {
	rows := e.st.Pages(func(p *store.PageRecord) bool {
		return (f.Domain == "" || p.Domain == f.Domain) &&
			(f.OS == "" || p.OS == f.OS) &&
			(f.Crawl == "" || p.Crawl == f.Crawl) &&
			(f.Err == "" || p.Err == f.Err)
	})
	store.SortPages(rows)
	total := len(rows)
	if f.Limit > 0 && total > f.Limit {
		rows = rows[:f.Limit]
	}
	return rows, total
}

// SiteReport is one domain's full telemetry: its page visits, its
// local-network requests, and the behavior verdicts the offline
// pipeline assigns to its localhost and LAN traffic.
type SiteReport struct {
	Domain string
	Pages  []store.PageRecord
	Locals []store.LocalRequest
	// LocalhostVerdict and LANVerdict are nil when the site produced no
	// traffic in that destination class.
	LocalhostVerdict *classify.Verdict
	LANVerdict       *classify.Verdict
}

// SiteKey is the canonical cache key for a Site query.
func SiteKey(domain string) string { return "site|domain=" + domain }

// Site assembles one domain's report across all mounted crawls and
// OSes from the store's materialized site index — an O(1) lookup with
// the same records and verdicts the offline pipeline produces, instead
// of a full-store rescan per call.
func (e *Engine) Site(domain string) SiteReport {
	view := pipeline.IndexFor(e.st).Site(domain)
	rep := SiteReport{Domain: domain, Pages: view.Pages, Locals: view.Locals}
	if view.LocalhostVerdict != nil {
		v := *view.LocalhostVerdict
		rep.LocalhostVerdict = &v
	}
	if view.LANVerdict != nil {
		v := *view.LANVerdict
		rep.LANVerdict = &v
	}
	return rep
}

// NetLog retrieves a retained capture, delegating to the store. It
// completes the engine surface so knockquery needs no direct store
// access.
func (e *Engine) NetLog(crawl, os, domain string) (*netlog.Log, bool, error) {
	return e.st.NetLog(crawl, os, domain)
}
