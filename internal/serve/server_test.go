package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// serveStore builds a small corpus: a ThreatMetrix-style localhost
// scanner on Windows/2020 and a LAN prober on Linux/2021.
func serveStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	var b store.Batch
	b.AddPage(store.PageRecord{
		Crawl: "top100k-2020", OS: "Windows", Domain: "scanner.example", Rank: 7,
		URL: "https://scanner.example/", CommittedAt: time.Second, Events: 40,
	})
	for _, port := range []uint16{3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950} {
		b.AddLocal(store.LocalRequest{
			Crawl: "top100k-2020", OS: "Windows", Domain: "scanner.example", Rank: 7,
			URL:    fmt.Sprintf("wss://localhost:%d/", port),
			Scheme: "wss", Host: "localhost", Port: port, Path: "/",
			Dest: "localhost", Delay: 1500 * time.Millisecond,
			Initiator: "blob:threatmetrix", NetError: "ERR_CONNECTION_REFUSED",
			SOPExempt: true,
		})
	}
	b.AddPage(store.PageRecord{
		Crawl: "top100k-2021", OS: "Linux", Domain: "lanprobe.example", Rank: 19,
		URL: "https://lanprobe.example/", CommittedAt: 800 * time.Millisecond, Events: 12,
	})
	b.AddLocal(store.LocalRequest{
		Crawl: "top100k-2021", OS: "Linux", Domain: "lanprobe.example", Rank: 19,
		URL: "http://192.168.1.1/wp-content/t.gif", Scheme: "http",
		Host: "192.168.1.1", Port: 80, Path: "/wp-content/t.gif",
		Dest: "lan", Delay: 2 * time.Second, NetError: "ERR_CONNECTION_TIMED_OUT",
	})
	b.AddPage(store.PageRecord{
		Crawl: "top100k-2021", OS: "Linux", Domain: "dead.example", Rank: 23,
		URL: "https://dead.example/", Err: "ERR_NAME_NOT_RESOLVED",
	})
	st.AddBatch(&b)
	return st
}

func newTestServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(queryengine.New(serveStore(t)), opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// snapshotNow renders the server's in-process metrics snapshot from
// its cache's live counters.
func snapshotNow(srv *Server) MetricsSnapshot {
	hits, misses := srv.cache.Stats()
	return srv.metrics.snapshot(hits, misses, srv.cache.Revalidations())
}

func getJSON(t testing.TB, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp
}

func TestLocalsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var resp struct {
		Total int                  `json:"total"`
		Rows  []store.LocalRequest `json:"rows"`
	}
	getJSON(t, ts.URL+"/v1/locals?domain=scanner.example&dest=localhost", &resp)
	if resp.Total != 10 || len(resp.Rows) != 10 {
		t.Fatalf("total=%d rows=%d, want 10/10", resp.Total, len(resp.Rows))
	}
	getJSON(t, ts.URL+"/v1/locals?domain=scanner.example&limit=3", &resp)
	if resp.Total != 10 || len(resp.Rows) != 3 {
		t.Fatalf("limited: total=%d rows=%d, want 10/3", resp.Total, len(resp.Rows))
	}
	getJSON(t, ts.URL+"/v1/locals?dest=lan", &resp)
	if resp.Total != 1 || resp.Rows[0].Host != "192.168.1.1" {
		t.Fatalf("lan filter: %+v", resp)
	}
	getJSON(t, ts.URL+"/v1/locals?domain=nosuch.example", &resp)
	if resp.Total != 0 || resp.Rows == nil || len(resp.Rows) != 0 {
		t.Fatalf("empty result must be [] with total 0: %+v", resp)
	}
	r, err := http.Get(ts.URL + "/v1/locals?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", r.StatusCode)
	}
}

func TestPagesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var resp struct {
		Total int                `json:"total"`
		Rows  []store.PageRecord `json:"rows"`
	}
	getJSON(t, ts.URL+"/v1/pages", &resp)
	if resp.Total != 3 {
		t.Fatalf("total=%d, want 3", resp.Total)
	}
	getJSON(t, ts.URL+"/v1/pages?err=ERR_NAME_NOT_RESOLVED", &resp)
	if resp.Total != 1 || resp.Rows[0].Domain != "dead.example" {
		t.Fatalf("err filter: %+v", resp)
	}
	getJSON(t, ts.URL+"/v1/pages?os=Windows&crawl=top100k-2020", &resp)
	if resp.Total != 1 || resp.Rows[0].Domain != "scanner.example" {
		t.Fatalf("os+crawl filter: %+v", resp)
	}
}

func TestSiteEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var resp SiteResponse
	getJSON(t, ts.URL+"/v1/site/scanner.example", &resp)
	if len(resp.Pages) != 1 || len(resp.Locals) != 10 {
		t.Fatalf("pages=%d locals=%d, want 1/10", len(resp.Pages), len(resp.Locals))
	}
	if resp.LocalhostVerdict == nil || resp.LocalhostVerdict.Class != "Fraud Detection" ||
		resp.LocalhostVerdict.Signature != "threatmetrix" {
		t.Fatalf("localhost verdict = %+v, want Fraud Detection/threatmetrix", resp.LocalhostVerdict)
	}
	if resp.LANVerdict != nil {
		t.Fatalf("scanner.example has no LAN traffic, got %+v", resp.LANVerdict)
	}
	var lan SiteResponse
	getJSON(t, ts.URL+"/v1/site/lanprobe.example", &lan)
	if lan.LANVerdict == nil {
		t.Fatal("lanprobe.example should carry a LAN verdict")
	}
	var none SiteResponse
	getJSON(t, ts.URL+"/v1/site/unknown.example", &none)
	if len(none.Pages) != 0 || len(none.Locals) != 0 || none.LocalhostVerdict != nil {
		t.Fatalf("unknown site should be empty: %+v", none)
	}
}

func TestSummaryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var resp struct {
		Pages  int `json:"pages"`
		Locals int `json:"locals"`
		Crawls []struct {
			Crawl   string         `json:"crawl"`
			Classes map[string]int `json:"classes,omitempty"`
		} `json:"crawls"`
	}
	getJSON(t, ts.URL+"/v1/summary", &resp)
	if resp.Pages != 3 || resp.Locals != 11 {
		t.Fatalf("pages=%d locals=%d, want 3/11", resp.Pages, resp.Locals)
	}
	if len(resp.Crawls) != 2 || resp.Crawls[0].Crawl != "top100k-2020" {
		t.Fatalf("crawls: %+v", resp.Crawls)
	}
	if resp.Crawls[0].Classes["Fraud Detection"] != 1 {
		t.Fatalf("2020 classes: %+v, want one Fraud Detection site", resp.Crawls[0].Classes)
	}
}

func TestResponseCacheHitMiss(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var resp any
	getJSON(t, ts.URL+"/v1/locals?domain=scanner.example", &resp)  // miss
	getJSON(t, ts.URL+"/v1/locals?domain=scanner.example", &resp)  // hit
	getJSON(t, ts.URL+"/v1/locals?domain=lanprobe.example", &resp) // miss
	hits, misses := srv.cache.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/2", hits, misses)
	}
	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Cache.Hits != 1 || m.Cache.Misses != 2 {
		t.Fatalf("/metrics cache = %+v, want 1 hit / 2 misses", m.Cache)
	}
	if m.Requests["/v1/locals"] != 3 {
		t.Fatalf("/metrics requests = %+v, want 3 locals hits", m.Requests)
	}
}

func TestCacheInvalidatedByIngest(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var before, after struct {
		Total int `json:"total"`
	}
	url := ts.URL + "/v1/locals?domain=smoke.example"
	getJSON(t, url, &before)
	if before.Total != 0 {
		t.Fatalf("pre-ingest total = %d, want 0", before.Total)
	}
	postTestdata(t, ts, "domain=smoke.example&os=Windows")
	getJSON(t, url, &after)
	if after.Total != 14 {
		t.Fatalf("post-ingest total = %d, want 14 (cached empty answer must not survive ingest)", after.Total)
	}
	if srv.eng.Generation() == 0 {
		t.Fatal("ingest must bump the engine generation")
	}
}

// TestCacheSurgicalInvalidation pins the serving half of the delta
// epoch: ingesting one domain must invalidate only cached responses
// whose scope intersects it. Entries for other domains survive the
// generation bump as revalidated hits; unfiltered views (the summary)
// are recomputed.
func TestCacheSurgicalInvalidation(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var scanner struct {
		Total int `json:"total"`
	}
	var summary struct {
		Pages int `json:"pages"`
	}
	scannerURL := ts.URL + "/v1/locals?domain=scanner.example&crawl=top100k-2020"
	getJSON(t, scannerURL, &scanner) // miss, cached
	var site SiteResponse
	getJSON(t, ts.URL+"/v1/site/scanner.example", &site) // miss, cached
	getJSON(t, ts.URL+"/v1/summary", &summary)           // miss, cached
	if summary.Pages != 3 {
		t.Fatalf("pre-ingest summary pages = %d, want 3", summary.Pages)
	}
	genBefore := srv.eng.Generation()

	postTestdata(t, ts, "domain=fresh.example&os=Windows&crawl=live")
	if srv.eng.Generation() == genBefore {
		t.Fatal("ingest must advance the generation")
	}

	// The scanner.example listing and site report were untouched by the
	// commit: both must be served from cache, fast-forwarded across the
	// new generation rather than recomputed.
	getJSON(t, scannerURL, &scanner)
	getJSON(t, ts.URL+"/v1/site/scanner.example", &site)
	if scanner.Total != 10 || len(site.Locals) != 10 {
		t.Fatalf("surviving entries answered wrong: locals=%d site locals=%d", scanner.Total, len(site.Locals))
	}
	if n := srv.cache.Revalidations(); n != 2 {
		t.Fatalf("revalidations = %d, want 2 (scanner listing + site report)", n)
	}
	hits, _ := srv.cache.Stats()
	if hits != 2 {
		t.Fatalf("cache hits = %d, want 2 (both unrelated entries survive ingest)", hits)
	}

	// The summary depends on the whole corpus: it must be recomputed and
	// observe the new visit.
	getJSON(t, ts.URL+"/v1/summary", &summary)
	if summary.Pages != 4 {
		t.Fatalf("post-ingest summary pages = %d, want 4 (broad entry must not survive)", summary.Pages)
	}

	// The ingested domain itself queries fresh.
	var fresh struct {
		Total int `json:"total"`
	}
	getJSON(t, ts.URL+"/v1/locals?domain=fresh.example", &fresh)
	if fresh.Total != 14 {
		t.Fatalf("ingested domain total = %d, want 14", fresh.Total)
	}

	// /metrics reports the revalidations.
	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Cache.Revalidated != 2 {
		t.Fatalf("/metrics revalidated = %d, want 2", m.Cache.Revalidated)
	}
	srv.Close()
}

func postTestdata(t testing.TB, ts *httptest.Server, params string) IngestResponse {
	t.Helper()
	body, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest?"+params, "application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, b)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	return ir
}

// TestIngestMatchesOfflinePipeline is the acceptance check: uploading a
// capture with the ThreatMetrix probe signature must yield exactly the
// records and verdict the offline crawl pipeline produces for the same
// events.
func TestIngestMatchesOfflinePipeline(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ir := postTestdata(t, ts, "domain=smoke.example&os=Windows&crawl=live-test&rank=3&committed_at=1s")

	f, err := os.Open("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := netlog.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	offline := localnet.FromLog(log)

	if ir.Events != log.Len() {
		t.Fatalf("events = %d, want %d", ir.Events, log.Len())
	}
	if len(ir.Detections) != len(offline) {
		t.Fatalf("detections = %d, want %d (offline pipeline)", len(ir.Detections), len(offline))
	}
	for i, want := range offline {
		got := ir.Detections[i]
		if got.URL != want.URL || got.Host != want.Host || got.Port != want.Port ||
			got.Scheme != string(want.Scheme) || got.Dest != want.Dest.String() ||
			got.NetError != want.NetError || got.Initiator != want.Initiator ||
			got.SOPExempt != want.SOPExempt {
			t.Fatalf("detection %d drifted from offline pipeline:\n got %+v\nwant %+v", i, got, want)
		}
		if wantDelay := want.At - time.Second; got.Delay != wantDelay {
			t.Fatalf("detection %d delay = %v, want %v (At - committed_at)", i, got.Delay, wantDelay)
		}
		if got.Crawl != "live-test" || got.OS != "Windows" || got.Domain != "smoke.example" || got.Rank != 3 {
			t.Fatalf("detection %d visit fields: %+v", i, got)
		}
	}
	if ir.LocalhostVerdict == nil || ir.LocalhostVerdict.Class != "Fraud Detection" ||
		ir.LocalhostVerdict.Signature != "threatmetrix" {
		t.Fatalf("verdict = %+v, want Fraud Detection/threatmetrix", ir.LocalhostVerdict)
	}

	// The committed records serve identical verdicts through the query plane.
	var site SiteResponse
	getJSON(t, ts.URL+"/v1/site/smoke.example", &site)
	if site.LocalhostVerdict == nil || *site.LocalhostVerdict != *ir.LocalhostVerdict {
		t.Fatalf("query-plane verdict %+v != ingest verdict %+v", site.LocalhostVerdict, ir.LocalhostVerdict)
	}
	if len(site.Pages) != 1 || site.Pages[0].CommittedAt != time.Second || site.Pages[0].Events != log.Len() {
		t.Fatalf("committed page record: %+v", site.Pages)
	}
}

// TestIngestCorroborationMatchesOffline checks WHOIS parity between the
// two classification paths (§4.3.1): uploading the committed
// ThreatMetrix capture to a server configured with a registry must
// yield the same corroborated verdict — including the registrant
// evidence string — as running the offline pipeline over the same
// events with the same registry.
func TestIngestCorroborationMatchesOffline(t *testing.T) {
	reg := whois.NewRegistry()
	reg.Add(whois.Record{Domain: "content.tmx.example", Registrant: whois.ThreatMetrixOrg})
	_, ts := newTestServer(t, Options{Whois: reg})
	ir := postTestdata(t, ts, "domain=smoke.example&os=Windows&crawl=live&committed_at=1s")

	f, err := os.Open("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := netlog.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	offline := pipeline.Process(log, pipeline.Visit{
		Crawl: "live", OS: "Windows", Domain: "smoke.example", CommittedAt: time.Second,
	}, pipeline.Options{Classify: true, Whois: reg})

	if offline.LocalhostVerdict == nil {
		t.Fatal("offline pipeline produced no localhost verdict")
	}
	if offline.LocalhostVerdict.Corroboration == "" {
		t.Fatal("offline verdict must carry WHOIS corroboration for the registered script host")
	}
	if ir.LocalhostVerdict == nil {
		t.Fatal("ingest produced no localhost verdict")
	}
	if want := report.VerdictJSON(*offline.LocalhostVerdict); *ir.LocalhostVerdict != want {
		t.Fatalf("ingest verdict %+v != offline pipeline verdict %+v", *ir.LocalhostVerdict, want)
	}
	if want := "whois:content.tmx.example=" + whois.ThreatMetrixOrg; ir.LocalhostVerdict.Corroboration != want {
		t.Fatalf("corroboration = %q, want %q", ir.LocalhostVerdict.Corroboration, want)
	}

	// Without a registry the same upload classifies identically but
	// cannot corroborate.
	_, bare := newTestServer(t, Options{})
	ir2 := postTestdata(t, bare, "domain=smoke.example&os=Windows&crawl=live&committed_at=1s")
	if ir2.LocalhostVerdict == nil || ir2.LocalhostVerdict.Corroboration != "" {
		t.Fatalf("registry-free ingest must not corroborate: %+v", ir2.LocalhostVerdict)
	}
}

func TestIngestMalformedAndBadParams(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	seededGen := srv.eng.Generation()

	post := func(params, body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/ingest?"+params, "application/jsonl", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	good := `{"time":"1000","type":"URL_REQUEST_START_JOB","source":{"type":"URL_REQUEST","id":1},"phase":1,"params":{"url":"http://localhost:8000/x"}}`

	cases := []struct {
		name, params, body, wantErr string
	}{
		{"missing domain", "", good, "domain query parameter is required"},
		{"bad rank", "domain=x.example&rank=-2", good, "bad rank"},
		{"bad committed_at", "domain=x.example&committed_at=soon", good, "bad committed_at"},
		{"malformed line", "domain=x.example", good + "\n{broken", "line 2"},
		{"unknown event type", "domain=x.example", `{"time":"1","type":"NO_SUCH","source":{"type":"URL_REQUEST","id":1},"phase":0}`, "unknown event type"},
	}
	for _, tc := range cases {
		resp := post(tc.params, tc.body)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.wantErr) {
			t.Errorf("%s: body %q, want it to mention %q", tc.name, body, tc.wantErr)
		}
	}
	// All-or-nothing: none of the rejected uploads committed anything.
	if n := srv.eng.Store().NumPages(); n != 3 {
		t.Fatalf("rejected uploads committed pages: %d, want the 3 seeded", n)
	}
	if srv.eng.Generation() != seededGen {
		t.Fatal("rejected uploads must not bump the generation")
	}
}

func TestIngestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxIngestBytes: 256})
	long := `{"time":"1000","type":"URL_REQUEST_START_JOB","source":{"type":"URL_REQUEST","id":1},"phase":1,"params":{"url":"http://localhost:8000/` + strings.Repeat("x", 400) + `"}}`
	resp, err := http.Post(ts.URL+"/v1/ingest?domain=x.example", "application/jsonl", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestQueryPlaneSaturationReturns429(t *testing.T) {
	srv, ts := newTestServer(t, Options{QueryConcurrency: 1})
	srv.queries <- struct{}{} // occupy the only query slot
	defer func() { <-srv.queries }()
	resp, err := http.Get(ts.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	// Ingest rides its own semaphore: still available.
	ir := postTestdata(t, ts, "domain=smoke.example")
	if len(ir.Detections) == 0 {
		t.Fatal("ingest plane must not share the query limiter")
	}
	m := snapshotNow(srv)
	if m.Rejected["query"] != 1 {
		t.Fatalf("rejected_429 = %+v, want query:1", m.Rejected)
	}
}

func TestIngestPlaneSaturationReturns429(t *testing.T) {
	srv, ts := newTestServer(t, Options{IngestConcurrency: 1})
	srv.ingests <- struct{}{}
	defer func() { <-srv.ingests }()
	resp, err := http.Post(ts.URL+"/v1/ingest?domain=x.example", "application/jsonl", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// The query plane is unaffected.
	var v any
	getJSON(t, ts.URL+"/v1/summary", &v)
}

// TestGracefulDrain verifies Shutdown waits for an in-flight ingest: the
// upload's body arrives slowly through a pipe while the server drains,
// and the upload must still complete and commit.
func TestGracefulDrain(t *testing.T) {
	srv := New(queryengine.New(serveStore(t)), Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	data, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	pr, pw := io.Pipe()
	started := make(chan struct{})
	go func() {
		for i, line := range lines {
			if i == 1 {
				close(started) // body is mid-flight
			}
			pw.Write(line)
			time.Sleep(2 * time.Millisecond)
		}
		pw.Close()
	}()

	type result struct {
		ir  IngestResponse
		err error
	}
	resc := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest("POST", "http://"+ln.Addr().String()+"/v1/ingest?domain=smoke.example&os=Windows", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var ir IngestResponse
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resc <- result{err: fmt.Errorf("status %d: %s", resp.StatusCode, b)}
			return
		}
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resc <- result{ir: ir, err: err}
	}()

	<-started
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown: %v (drain must outlast the in-flight ingest)", err)
	}
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight ingest failed during drain: %v", res.err)
	}
	if len(res.ir.Detections) != 14 {
		t.Fatalf("drained ingest detections = %d, want 14", len(res.ir.Detections))
	}
	if rows, _ := srv.eng.Locals(queryengine.LocalsFilter{Domain: "smoke.example"}); len(rows) != 14 {
		t.Fatalf("drained ingest committed %d locals, want 14", len(rows))
	}
}

// TestConcurrentQueryIngest exercises both planes at once; run with
// -race this is the subsystem's data-race check.
func TestConcurrentQueryIngest(t *testing.T) {
	_, ts := newTestServer(t, Options{QueryConcurrency: 32, IngestConcurrency: 4})
	body, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	paths := []string{"/v1/locals?dest=localhost", "/v1/pages", "/v1/site/scanner.example", "/v1/summary", "/metrics"}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + paths[(n+j)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, err := http.Post(
					fmt.Sprintf("%s/v1/ingest?domain=live%d-%d.example&os=Windows", ts.URL, n, j),
					"application/jsonl", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("ingest status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
}

// BenchmarkServeQuery measures query-plane throughput; the hit variant
// repeats one query (cache-served), the miss variant cycles distinct
// queries through a cache too small to hold them.
func BenchmarkServeQuery(b *testing.B) {
	b.Run("cache-hit", func(b *testing.B) {
		_, ts := newTestServer(b, Options{})
		url := ts.URL + "/v1/locals?domain=scanner.example"
		warm(b, url)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			warm(b, url)
		}
	})
	b.Run("cache-miss", func(b *testing.B) {
		_, ts := newTestServer(b, Options{CacheEntries: -1})
		url := ts.URL + "/v1/locals?domain=scanner.example"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			warm(b, url)
		}
	})
	b.Run("site", func(b *testing.B) {
		_, ts := newTestServer(b, Options{CacheEntries: -1})
		url := ts.URL + "/v1/site/scanner.example"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			warm(b, url)
		}
	})
}

func warm(b *testing.B, url string) {
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServeIngest measures end-to-end upload throughput: parse,
// detect, classify, commit. events/sec is the headline number.
func BenchmarkServeIngest(b *testing.B) {
	_, ts := newTestServer(b, Options{})
	body, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		b.Fatal(err)
	}
	events := bytes.Count(body, []byte("\n"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(
			fmt.Sprintf("%s/v1/ingest?domain=bench%d.example&os=Windows", ts.URL, i),
			"application/jsonl", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// TestCacheCoherenceUnderIngestHammer races cache-hitting queries
// against concurrent ingest commits, then checks the quiesce-point
// invariant of the whole serving stack: every response the hammered,
// cache-fronted server gives afterwards must be byte-identical to one
// computed by a fresh engine over the same store with caching disabled
// and the shared site index rebuilt from scratch.
func TestCacheCoherenceUnderIngestHammer(t *testing.T) {
	st := serveStore(t)
	srv := New(queryengine.New(st), Options{QueryConcurrency: 32, IngestConcurrency: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{
		"/v1/summary",
		"/v1/locals?domain=scanner.example&crawl=top100k-2020",
		"/v1/pages?crawl=top100k-2021",
		"/v1/site/scanner.example",
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				resp, err := http.Get(ts.URL + paths[(w+j)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, err := http.Post(
					fmt.Sprintf("%s/v1/ingest?domain=hammer%d-%d.example&os=Windows&crawl=live", ts.URL, w, j),
					"application/jsonl", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	hits, _ := srv.cache.Stats()
	if hits == 0 {
		t.Fatal("hammer never hit the cache; the race it exists to test did not happen")
	}

	// Quiesce point: release the shared index so the reference engine
	// materializes a from-scratch rebuild, and front it with no cache.
	pipeline.ReleaseIndex(st)
	ref := New(queryengine.New(st), Options{CacheEntries: -1})
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(rts.Close)
	t.Cleanup(ref.Close)
	t.Cleanup(srv.Close)

	get := func(base, path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return raw
	}
	for _, p := range paths {
		cached := get(ts.URL, p)   // may be a cache hit or revalidation
		rebuilt := get(rts.URL, p) // always recomputed from a fresh index
		if !bytes.Equal(cached, rebuilt) {
			t.Errorf("%s diverged from from-scratch rebuild after hammer:\ncached  %s\nrebuilt %s",
				p, cached, rebuilt)
		}
	}
}
