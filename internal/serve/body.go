package serve

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Request-body negotiation shared by every upload endpoint: the ingest
// plane's NetLog streams and the fleet coordinator's shard uploads both
// accept optionally gzip-compressed bodies, so workers do not ship
// uncompressed JSONL over the wire.

// ErrUnsupportedEncoding reports a Content-Encoding the server does not
// speak; answer it with 415 Unsupported Media Type.
var ErrUnsupportedEncoding = errors.New("unsupported Content-Encoding")

// ErrBodyTooLarge reports a decompressed body that exceeded the
// server's bound; answer it with 413, like http.MaxBytesError.
var ErrBodyTooLarge = errors.New("request body too large")

// RequestBody returns the request body ready for streaming reads:
// bounded to max bytes and transparently decompressed when the client
// declared Content-Encoding: gzip (the decompressed stream is bounded
// by max as well, so a tiny compressed bomb cannot balloon in memory).
// An encoding the server does not speak returns ErrUnsupportedEncoding;
// a body that is not valid gzip despite the declaration returns a plain
// error (answer 400). Reads past the raw bound surface
// http.MaxBytesError; past the decompressed bound, ErrBodyTooLarge.
func RequestBody(w http.ResponseWriter, r *http.Request, max int64) (io.Reader, error) {
	raw := io.Reader(http.MaxBytesReader(w, r.Body, max))
	switch enc := strings.ToLower(strings.TrimSpace(r.Header.Get("Content-Encoding"))); enc {
	case "", "identity":
		return raw, nil
	case "gzip":
		gz, err := gzip.NewReader(raw)
		if err != nil {
			return nil, fmt.Errorf("bad gzip body: %w", err)
		}
		return &boundedReader{r: gz, left: max}, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnsupportedEncoding, enc)
	}
}

// boundedReader caps the decompressed stream: unlike io.LimitReader,
// exceeding the bound is an error, not a silent EOF that would truncate
// an upload mid-record. A body of exactly max bytes still EOFs cleanly:
// the error fires only when a byte past the bound actually arrives.
type boundedReader struct {
	r    io.Reader
	left int64
}

func (b *boundedReader) Read(p []byte) (int, error) {
	if b.left == 0 {
		// At the bound: probe whether the stream truly ended.
		var one [1]byte
		m, err := b.r.Read(one[:])
		if m > 0 {
			return 0, ErrBodyTooLarge
		}
		if err == nil {
			err = io.ErrNoProgress
		}
		return 0, err
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.r.Read(p)
	b.left -= int64(n)
	return n, err
}
