package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// TestEmptyServerSnapshotOmitsRequestMaps pins the wire-shape fix: a
// server that has answered nothing must not render "requests" or
// "rejected_429" as empty objects — the fields are omitted entirely
// until the first request or rejection mints a counter.
func TestEmptyServerSnapshotOmitsRequestMaps(t *testing.T) {
	srv := New(queryengine.New(serveStore(t)), Options{})
	raw, err := json.Marshal(snapshotNow(srv))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"requests"`, `"rejected_429"`, `"pipeline"`, `"query"`} {
		if bytes.Contains(raw, []byte(key)) {
			t.Errorf("empty-server snapshot renders %s: %s", key, raw)
		}
	}
	// Scalar sections stay present even when idle.
	for _, key := range []string{`"uptime_seconds"`, `"cache"`, `"ingest"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Errorf("empty-server snapshot lost %s: %s", key, raw)
		}
	}

	// The first request makes the map appear with that path only.
	ts := newHTTPTestServer(t, srv)
	var v any
	getJSON(t, ts+"/v1/summary", &v)
	snap := snapshotNow(srv)
	if snap.Requests["/v1/summary"] != 1 || len(snap.Requests) != 1 {
		t.Fatalf("requests after one call: %+v", snap.Requests)
	}
	if snap.Rejected != nil {
		t.Fatalf("no rejection occurred, got %+v", snap.Rejected)
	}
}

// TestIngestTraceAgreesWithMetrics is the acceptance check of the
// telemetry subsystem: aggregating per-stage busy time from the trace
// file alone must reproduce exactly what /metrics reports for the same
// ingests — byte-for-byte once both render through the same rounding.
func TestIngestTraceAgreesWithMetrics(t *testing.T) {
	var traceBuf bytes.Buffer
	tr := telemetry.NewTracer(&traceBuf, telemetry.TracerOptions{})
	srv := New(queryengine.New(serveStore(t)), Options{Tracer: tr})
	ts := newHTTPTestServer(t, srv)

	body, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	for i, params := range []string{
		"domain=first.example&os=Windows&crawl=live",
		"domain=second.example&os=Linux&crawl=live&retain=1",
		"domain=third.example&os=Windows&crawl=live&committed_at=1s",
	} {
		resp, err := http.Post(ts+"/v1/ingest?"+params, "application/jsonl", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d records", tr.Dropped())
	}

	visits, err := telemetry.ReadTraces(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 3 {
		t.Fatalf("trace records = %d, want 3", len(visits))
	}
	fromTrace := telemetry.Summarize(visits).BusySeconds()

	var m MetricsSnapshot
	getJSON(t, ts+"/metrics", &m)
	if len(m.Pipeline) == 0 {
		t.Fatal("/metrics reports no pipeline stages after ingest")
	}
	if len(fromTrace) != len(m.Pipeline) {
		t.Fatalf("stage sets differ: trace %v, /metrics %v", keys(fromTrace), m.Pipeline)
	}
	for stage, traceBusy := range fromTrace {
		served, ok := m.Pipeline[stage]
		if !ok {
			t.Fatalf("stage %q in trace but not in /metrics (%v)", stage, m.Pipeline)
		}
		got, want := fmt.Sprintf("%.9f", traceBusy), fmt.Sprintf("%.9f", served.BusySeconds)
		if got != want {
			t.Errorf("stage %q busy seconds: trace %s, /metrics %s", stage, got, want)
		}
	}
	// The retained capture's netlog stage made it into both views.
	if _, ok := fromTrace["netlog"]; !ok {
		t.Fatal("retained upload must trace a netlog span")
	}
	// Item counts agree as well: the detect stage carried 14 findings
	// per upload.
	if m.Pipeline["detect"].Items != 42 {
		t.Fatalf("detect items = %d, want 42", m.Pipeline["detect"].Items)
	}
}

// TestQueryLatencyHistograms pins the query plane's server-observed
// latency surface: per-endpoint serve_query_ns series labeled by the
// route pattern (never the raw /v1/site/<domain> path) and the cache
// outcome, aggregated into the snapshot's query section, and carried
// through the Prometheus exposition.
func TestQueryLatencyHistograms(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(queryengine.New(serveStore(t)), Options{Registry: reg})
	ts := newHTTPTestServer(t, srv)

	var v any
	getJSON(t, ts+"/v1/summary", &v) // miss
	getJSON(t, ts+"/v1/summary", &v) // hit
	getJSON(t, ts+"/v1/site/scanner.example", &v)

	var m MetricsSnapshot
	getJSON(t, ts+"/metrics", &m)
	sum, ok := m.Query["/v1/summary"]
	if !ok {
		t.Fatalf("query section missing /v1/summary: %+v", m.Query)
	}
	if sum.Requests != 2 || sum.Cache["miss"] != 1 || sum.Cache["hit"] != 1 {
		t.Fatalf("summary query metrics = %+v", sum)
	}
	if sum.P50NS == 0 || sum.P999NS < sum.P50NS {
		t.Fatalf("summary quantiles implausible: %+v", sum)
	}
	site, ok := m.Query["/v1/site/{domain}"]
	if !ok {
		t.Fatalf("site latency must be keyed by route pattern, got %v", m.Query)
	}
	if site.Requests != 1 || site.Cache["miss"] != 1 {
		t.Fatalf("site query metrics = %+v", site)
	}
	for key := range m.Query {
		if strings.Contains(key, "scanner.example") {
			t.Fatalf("raw path leaked into endpoint label: %v", m.Query)
		}
	}

	// Ingesting a disjoint domain bumps the generation without touching
	// the site entry's scope: the next site lookup revalidates.
	body, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts+"/v1/ingest?domain=other.example&os=Windows&crawl=live",
		"application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	getJSON(t, ts+"/v1/site/scanner.example", &v)
	getJSON(t, ts+"/metrics", &m)
	if got := m.Query["/v1/site/{domain}"].Cache["revalidated"]; got != 1 {
		t.Fatalf("site revalidated count = %d, want 1 (%+v)", got, m.Query["/v1/site/{domain}"])
	}

	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE serve_query_ns histogram",
		`serve_query_ns_bucket{cache="hit",endpoint="/v1/summary",le="`,
		`serve_query_ns_count{cache="revalidated",endpoint="/v1/site/{domain}"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestMetricsSnapshotUnderLoad hammers snapshotting — HTTP /metrics,
// the in-process snapshot call, and whole-registry snapshots — while
// ingest uploads and query traffic run. Under -race this is the
// registry's serve-side data-race check.
func TestMetricsSnapshotUnderLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(queryengine.New(serveStore(t)), Options{
		Registry: reg, QueryConcurrency: 32, IngestConcurrency: 4,
	})
	ts := newHTTPTestServer(t, srv)
	body, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				resp, err := http.Post(
					fmt.Sprintf("%s/v1/ingest?domain=load%d-%d.example&os=Windows", ts, n, j),
					"application/jsonl", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			paths := []string{"/v1/locals?dest=localhost", "/v1/summary", "/v1/site/scanner.example"}
			for j := 0; j < 12; j++ {
				resp, err := http.Get(ts + paths[(n+j)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			var m MetricsSnapshot
			getJSON(t, ts+"/metrics", &m)
			_ = snapshotNow(srv)
			var buf strings.Builder
			if err := reg.WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	snap := snapshotNow(srv)
	if snap.Ingest.Uploads != 16 || snap.Ingest.Detections != 16*14 {
		t.Fatalf("ingest totals after load: %+v", snap.Ingest)
	}
	if reg.CounterValue(MetricRequests, "path", "/v1/ingest") != 16 {
		t.Fatal("shared registry must carry the request counters")
	}
	// Both planes drained: in-flight gauges read zero.
	s := reg.Snapshot()
	for k, v := range s.Gauges {
		if v != 0 {
			t.Fatalf("gauge %s = %d after drain, want 0", k, v)
		}
	}
}

// newHTTPTestServer mounts an existing Server on a test listener and
// returns its base URL.
func newHTTPTestServer(t testing.TB, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
