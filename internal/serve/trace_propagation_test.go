package serve

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// TestServeTracePropagation pins the serving layer's side of W3C
// context propagation: an uploader or querier that sends a traceparent
// header gets its server-side work recorded as a child span in the
// trace sink, and the query-latency histogram tags its bucket exemplar
// with the caller's trace ID. Requests without the header still trace —
// ingest roots a derived trace, queries go unrecorded.
func TestServeTracePropagation(t *testing.T) {
	var traceBuf bytes.Buffer
	tr := telemetry.NewTracer(&traceBuf, telemetry.TracerOptions{})
	reg := telemetry.NewRegistry()
	srv := New(queryengine.New(serveStore(t)), Options{Tracer: tr, Registry: reg})
	ts := newHTTPTestServer(t, srv)

	body, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	callerTrace := telemetry.DeriveTraceID(11, "caller")
	caller := telemetry.SpanContext{
		TraceID: callerTrace,
		SpanID:  telemetry.DeriveSpanID(callerTrace, "upload"),
	}

	send := func(req *http.Request) {
		t.Helper()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
		}
	}

	// Traced ingest: propagated context wins over derivation.
	req, _ := http.NewRequest("POST", ts+"/v1/ingest?domain=traced.example&os=Windows&crawl=live", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/jsonl")
	req.Header.Set(telemetry.TraceparentHeader, caller.Traceparent())
	send(req)

	// Untraced ingest: roots its own derived trace.
	req, _ = http.NewRequest("POST", ts+"/v1/ingest?domain=plain.example&os=Linux&crawl=live", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/jsonl")
	send(req)

	// Traced query: a server-side request span joins the caller's trace.
	req, _ = http.NewRequest("GET", ts+"/v1/summary", nil)
	req.Header.Set(telemetry.TraceparentHeader, caller.Traceparent())
	send(req)

	// Untraced query: no request span (the sink only records joined
	// traces on the query plane).
	req, _ = http.NewRequest("GET", ts+"/v1/locals", nil)
	send(req)

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	visits, err := telemetry.ReadTraces(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	byDomain := map[string]telemetry.VisitRecord{}
	for _, v := range visits {
		byDomain[v.Domain] = v
	}
	if len(visits) != 3 {
		t.Fatalf("trace records = %d (%v), want 3", len(visits), byDomain)
	}

	traced := byDomain["traced.example"]
	if traced.TraceID != callerTrace.String() || traced.ParentID != caller.SpanID.String() {
		t.Fatalf("traced ingest record: trace=%s parent=%s, want caller's", traced.TraceID, traced.ParentID)
	}
	plain := byDomain["plain.example"]
	wantDerived := telemetry.DeriveTraceID(0, "live", "Linux", "https://plain.example/")
	if plain.TraceID != wantDerived.String() || plain.ParentID != "" {
		t.Fatalf("untraced ingest record: trace=%s parent=%s, want derived root %s", plain.TraceID, plain.ParentID, wantDerived)
	}
	query := byDomain["/v1/summary"]
	if query.Crawl != "query" || query.TraceID != callerTrace.String() || query.ParentID != caller.SpanID.String() {
		t.Fatalf("query request span: %+v", query)
	}

	// Assembled together, the caller's trace spans both planes.
	for i := range visits {
		visits[i].Source = "serve.jsonl"
	}
	tree, ok := telemetry.FindTrace(telemetry.AssembleTraces(visits), callerTrace.String())
	if !ok || tree.Records != 2 {
		t.Fatalf("caller trace tree: ok=%v %+v", ok, tree)
	}

	// The traced query left its trace ID as a bucket exemplar on the
	// per-endpoint latency histogram.
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `# {trace_id="`+callerTrace.String()+`"}`) {
		t.Fatalf("exposition lacks the query exemplar:\n%s", prom.String())
	}
	if _, err := telemetry.ParsePrometheus(strings.NewReader(prom.String())); err != nil {
		t.Fatalf("exemplar-bearing exposition fails strict parse: %v", err)
	}
}
