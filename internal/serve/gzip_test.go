package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

// postEncoded uploads the ThreatMetrix capture with an explicit
// Content-Encoding header and returns the raw response.
func postEncoded(t testing.TB, ts *httptest.Server, encoding string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/ingest?domain=gz.example&os=Windows", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/jsonl")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestIngestGzip pins that a gzip-compressed upload detects exactly
// what the identity upload of the same bytes does.
func TestIngestGzip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	defer ts.Close()

	raw, err := os.ReadFile("testdata/threatmetrix.netlog.jsonl")
	if err != nil {
		t.Fatal(err)
	}

	// Identity path: unchanged behavior.
	plain := postTestdata(t, ts, "domain=plain.example&os=Windows")
	if len(plain.Detections) == 0 {
		t.Fatal("identity upload produced no detections")
	}

	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}

	resp := postEncoded(t, ts, "gzip", buf.Bytes())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("gzip ingest: status %d: %s", resp.StatusCode, b)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Events != plain.Events {
		t.Fatalf("gzip upload parsed %d events, identity parsed %d", ir.Events, plain.Events)
	}
	if len(ir.Detections) != len(plain.Detections) {
		t.Fatalf("gzip upload detected %d, identity detected %d", len(ir.Detections), len(plain.Detections))
	}
	if ir.LocalhostVerdict == nil || plain.LocalhostVerdict == nil ||
		ir.LocalhostVerdict.Class != plain.LocalhostVerdict.Class {
		t.Fatalf("gzip verdict %+v != identity verdict %+v", ir.LocalhostVerdict, plain.LocalhostVerdict)
	}
}

// TestIngestUnknownEncoding pins the 415 on encodings the server does
// not speak, and the 400 on a declared-gzip body that is not gzip.
func TestIngestUnknownEncoding(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	defer ts.Close()

	resp := postEncoded(t, ts, "br", []byte("{}\n"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("br upload: status %d, want 415", resp.StatusCode)
	}

	resp2 := postEncoded(t, ts, "gzip", []byte("this is not gzip"))
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad gzip upload: status %d, want 400", resp2.StatusCode)
	}
}

// TestIngestGzipBomb pins that the decompressed stream is bounded: a
// small compressed body expanding past MaxIngestBytes answers 413
// instead of ballooning in memory.
func TestIngestGzipBomb(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxIngestBytes: 4096})
	defer ts.Close()

	// ~1 MiB of newlines compresses to ~1 KiB, under the raw bound, but
	// decompresses far past it.
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(bytes.Repeat([]byte("\n"), 1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= 4096 {
		t.Fatalf("bomb body is %d bytes, want under the 4096 raw bound", buf.Len())
	}
	resp := postEncoded(t, ts, "gzip", buf.Bytes())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("gzip bomb: status %d, want 413", resp.StatusCode)
	}
}
