package websim

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"

	"github.com/knockandtalk/knockandtalk/internal/blocklist"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/tranco"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// redirect2020 lists the 2020 sites whose landing pages redirect to
// http://127.0.0.1/ (Table 11, "Redirect").
var redirect2020 = map[string]bool{
	"romadecade.org":   true,
	"fincaraiz.com.co": true,
}

// siteSpec gathers everything known about one domain before binding.
type siteSpec struct {
	domain    string
	rank      int
	category  blocklist.Category
	localRows []groundtruth.LocalhostRow
	lanRows   []groundtruth.LANRow
}

// World construction is split into two phases:
//
//   - The spec phase assembles the crawl population (Tranco snapshot or
//     blocklist) joined with the ground-truth row maps. It depends only
//     on (crawl, scale) — not on OS or seed — so it is computed once
//     per process and shared: a tri-OS campaign used to re-parse the
//     100K-domain snapshot and rebuild the row maps once per OS.
//   - The bind phase places each spec into a fresh World (DNS,
//     endpoints, pages, fates), which does depend on OS and seed. It
//     runs across a worker pool; every per-site value derives from
//     (seed, domain, index), so the result is independent of worker
//     interleaving.
type specKey struct {
	crawl groundtruth.CrawlID
	scale float64
}

var specCache sync.Map // specKey → []siteSpec (shared, read-only)

// bindWorkers overrides the bind pool size; 0 means GOMAXPROCS. Tests
// force it up to exercise the parallel path on single-CPU machines.
var bindWorkers int

// specsFor returns the cached crawl-level site specs, computing them on
// first use. The returned slice and its row slices are shared across
// worlds and must not be mutated.
func specsFor(crawl groundtruth.CrawlID, scale float64) ([]siteSpec, error) {
	key := specKey{crawl, scale}
	if v, ok := specCache.Load(key); ok {
		return v.([]siteSpec), nil
	}
	var specs []siteSpec
	switch crawl {
	case groundtruth.CrawlTop2020:
		snap, err := tranco.Snapshot2020(int(scale * tranco.DefaultSize))
		if err != nil {
			return nil, err
		}
		specs = topSpecs(snap, groundtruth.Top2020Localhost(), groundtruth.Top2020LAN())
	case groundtruth.CrawlTop2021:
		snap, err := tranco.Snapshot2021(int(scale * tranco.DefaultSize))
		if err != nil {
			return nil, err
		}
		specs = topSpecs(snap, groundtruth.Top2021Localhost(), groundtruth.Top2021LAN())
	case groundtruth.CrawlMalicious:
		specs = maliciousSpecs(blocklist.Population(scale))
	default:
		return nil, fmt.Errorf("websim: unknown crawl %q", crawl)
	}
	v, _ := specCache.LoadOrStore(key, specs)
	return v.([]siteSpec), nil
}

// TargetCount reports how many targets a crawl has at the given scale
// without binding a world — the fleet coordinator partitions legs into
// leases from counts alone, leaving world construction to the workers.
func TargetCount(crawl groundtruth.CrawlID, scale float64) (int, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	specs, err := specsFor(crawl, scale)
	if err != nil {
		return 0, err
	}
	return len(specs), nil
}

// TargetDomain returns the domain at target index i for a crawl at the
// given scale — the same index Build assigns in World.Targets, so lease
// boundaries can be described by the domains they span.
func TargetDomain(crawl groundtruth.CrawlID, scale float64, i int) (string, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	specs, err := specsFor(crawl, scale)
	if err != nil {
		return "", err
	}
	if i < 0 || i >= len(specs) {
		return "", fmt.Errorf("websim: target index %d out of range [0, %d)", i, len(specs))
	}
	return specs[i].domain, nil
}

// Build constructs the synthetic web for a crawl campaign on one OS.
// scale in (0, 1] shrinks the population proportionally while always
// retaining the ground-truth sites reachable at that scale (top-list
// scaling drops domains ranked beyond the horizon). The 2021 crawl had
// no Mac vantage; requesting it is an error.
func Build(crawl groundtruth.CrawlID, os hostenv.OS, scale float64, seed uint64) (*World, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	if crawl == groundtruth.CrawlTop2021 && os == hostenv.MacOSX {
		return nil, fmt.Errorf("websim: the 2021 crawl has no Mac vantage (§3.2)")
	}
	specs, err := specsFor(crawl, scale)
	if err != nil {
		return nil, err
	}

	w := &World{
		Crawl: crawl, OS: os, Scale: scale,
		Net:   simnet.NewNetwork(seed),
		Whois: whois.NewRegistry(),
		fates: newFateTable(seed, crawl, os),
	}
	bindCDNs(w.Net)
	w.Targets = make([]Target, len(specs))

	workers := bindWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, spec := range specs {
			w.bind(i, spec, seed)
		}
		return w, nil
	}
	var wg sync.WaitGroup
	var next int64
	const chunk = 256 // amortize the shared-counter hit without skewing tail latency
	var mu sync.Mutex
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := int(next)
				next += chunk
				mu.Unlock()
				if lo >= len(specs) {
					return
				}
				hi := lo + chunk
				if hi > len(specs) {
					hi = len(specs)
				}
				for i := lo; i < hi; i++ {
					w.bind(i, specs[i], seed)
				}
			}
		}()
	}
	wg.Wait()
	return w, nil
}

func topSpecs(snap *tranco.Snapshot, localRows []groundtruth.LocalhostRow, lanRows []groundtruth.LANRow) []siteSpec {
	local := make(map[string][]groundtruth.LocalhostRow, len(localRows))
	for _, r := range localRows {
		local[r.Domain] = append(local[r.Domain], r)
	}
	lan := make(map[string][]groundtruth.LANRow, len(lanRows))
	for _, r := range lanRows {
		lan[r.Domain] = append(lan[r.Domain], r)
	}
	domains := snap.Domains()
	specs := make([]siteSpec, 0, len(domains))
	for i, d := range domains {
		specs = append(specs, siteSpec{
			domain:    d,
			rank:      i + 1,
			localRows: local[d],
			lanRows:   lan[d],
		})
	}
	return specs
}

func maliciousSpecs(pop []blocklist.Entry) []siteSpec {
	local := make(map[string][]groundtruth.LocalhostRow)
	for _, r := range groundtruth.MaliciousLocalhost() {
		local[r.Domain] = append(local[r.Domain], r)
	}
	lan := make(map[string][]groundtruth.LANRow)
	for _, r := range groundtruth.MaliciousLAN() {
		lan[r.Domain] = append(lan[r.Domain], r)
	}
	specs := make([]siteSpec, 0, len(pop))
	for _, e := range pop {
		specs = append(specs, siteSpec{
			domain:    e.Domain,
			category:  e.Category,
			localRows: local[e.Domain],
			lanRows:   lan[e.Domain],
		})
	}
	return specs
}

func bindCDNs(net *simnet.Network) {
	for i := 0; i < cdnCount; i++ {
		host, addr := cdnHost(i), cdnAddr(i)
		net.Resolver.Add(host, addr)
		net.BindService(addr, 443, &simnet.TLSInfo{CommonName: host}, staticAsset())
	}
	// The crawler's connectivity check target.
	net.AddHost(mustAddr("8.8.8.8"))
}

// bind places one site into the world: DNS, transport endpoint, and the
// page it serves (or its failure fate). Safe to call from concurrent
// bind workers: every drawn value depends only on (seed, domain, i),
// registration targets are lock-protected, and each call writes its own
// Targets slot.
func (w *World) bind(i int, spec siteSpec, seed uint64) {
	isGT := len(spec.localRows) > 0 || len(spec.lanRows) > 0
	fate := w.fates.fateFor(spec.domain, spec.category, isGT)

	// Landing scheme: anti-abuse deployers serve over HTTPS (a PNA
	// secure-context prerequisite); otherwise hash-assigned, with top
	// sites mostly HTTPS and malicious sites mostly plain HTTP.
	https := hash01(seed, "https", spec.domain) < 0.70
	if spec.category != "" {
		https = hash01(seed, "https", spec.domain) < 0.15
	}
	for _, r := range spec.localRows {
		if r.Class == groundtruth.ClassFraudDetection || r.Class == groundtruth.ClassBotDetection || r.Class == groundtruth.ClassNativeApp {
			https = true
		}
	}
	if fate == FateBadCert || fate == FateSSLError {
		https = true
	}

	scheme, port := "http", uint16(80)
	if https {
		scheme, port = "https", 443
	}
	w.Targets[i] = Target{
		Domain:   spec.domain,
		URL:      fmt.Sprintf("%s://%s/", scheme, spec.domain),
		Rank:     spec.rank,
		Category: spec.category,
	}

	if fate == FateNXDomain {
		return // never registered in DNS
	}
	addr := addrFor(i)
	w.Net.Resolver.Add(spec.domain, addr)

	var tls *simnet.TLSInfo
	if https {
		tls = &simnet.TLSInfo{CommonName: spec.domain, SubjectAltNames: []string{"*." + spec.domain}}
	}
	switch fate {
	case FateRefused:
		w.Net.AddHost(addr)
	case FateReset:
		w.Net.Bind(addr, port, simnet.Endpoint{Outcome: simnet.DialReset, TLS: tls})
	case FateBadCert:
		tls = &simnet.TLSInfo{CommonName: fmt.Sprintf("default-vhost-%04x.hosting.example", hashN(seed, 1<<16, "cert", spec.domain))}
		w.Net.BindService(addr, port, tls, staticAsset())
	case FateSSLError:
		tls = &simnet.TLSInfo{CommonName: spec.domain, Broken: true}
		w.Net.BindService(addr, port, tls, staticAsset())
	case FateEmptyResponse:
		w.Net.BindService(addr, port, tls, rawListener())
	default: // FateOK
		if w.Crawl == groundtruth.CrawlTop2020 && redirect2020[spec.domain] && localActiveHere(spec, w.OS) {
			w.Net.BindService(addr, port, tls, redirectService("http://127.0.0.1/"))
			return
		}
		w.Net.BindService(addr, port, tls, multiPageService(map[string]*webdoc.Page{
			"/":       w.buildPage(spec, scheme, seed),
			LoginPath: w.loginPage(spec, scheme, seed),
		}))
	}
}

// localActiveHere reports whether any ground-truth row for the spec is
// active on the world's OS.
func localActiveHere(spec siteSpec, os hostenv.OS) bool {
	for _, r := range spec.localRows {
		if r.OS.Has(osBit(os)) {
			return true
		}
	}
	for _, r := range spec.lanRows {
		if r.OS.Has(osBit(os)) {
			return true
		}
	}
	return false
}

// buildPage assembles the document a site serves on this OS.
func (w *World) buildPage(spec siteSpec, scheme string, seed uint64) *webdoc.Page {
	page := &webdoc.Page{
		URL:      fmt.Sprintf("%s://%s/", scheme, spec.domain),
		BodySize: 4096 + int(hashN(seed, 120000, "body", spec.domain)),
		Steps:    subresourceSteps(seed, spec.domain),
	}
	for _, row := range spec.localRows {
		if w.Crawl == groundtruth.CrawlTop2020 && redirect2020[row.Domain] {
			continue // modeled as a landing redirect, not a page step
		}
		probes := w.attachThreatMetrix(page, row, localhostSteps(seed, row, w.OS), seed)
		page.Steps = append(page.Steps, probes...)
	}
	for _, row := range spec.lanRows {
		page.Steps = append(page.Steps, lanSteps(seed, row, w.OS)...)
	}
	return page
}

// redirectService answers every request with a 302 to the location.
func redirectService(location string) simnet.Service {
	return simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 302, Location: location}
	})
}

// staticAsset serves a small non-HTML resource.
func staticAsset() simnet.Service {
	return simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 200, ContentType: "application/octet-stream", BodySize: 2048}
	})
}

// rawListener accepts TCP but speaks no HTTP, producing an empty-response
// error at the HTTP layer.
func rawListener() simnet.Service {
	return simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 0}
	})
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
