package websim

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// ThreatMetrix script hosting (§4.3.1). On each protected site, the
// localhost probes are issued by a dynamically generated JavaScript
// blob, which in turn is created by an external script loaded from
// either a vendor-operated subdomain (regstat.betfair.com) or a
// similar-appearing domain (ebay-us.com for ebay.com) — all registered
// to ThreatMetrix Inc. The synthetic web reproduces the whole chain:
// the page fetches the profiling script from the vendor host, the blob
// it generates issues the WSS probes, the probe initiators carry the
// script's provenance, and the WHOIS registry holds the registrant
// evidence the paper's attribution relied on.

// tmScriptHost names the vendor host serving a protected site's
// profiling script.
func tmScriptHost(domain string) string {
	if domain == "ebay.com" || strings.HasPrefix(domain, "ebay.") {
		return "ebay-us.com"
	}
	// Phishing pages cloned the target's interface wholesale, so their
	// script still points at the host for the impersonated site; for
	// everyone else the vendor provisions a first-party-looking
	// subdomain.
	if strings.Contains(domain, "ebay") {
		return "ebay-us.com"
	}
	return "regstat." + domain
}

// tmInitiator labels probe steps with the script's provenance.
func tmInitiator(scriptHost string) string { return "blob:threatmetrix:" + scriptHost }

// tmHostAddr allocates an address for a vendor host inside a dedicated
// /8-ish range. The address is a hash of the host name — not an
// allocation counter — so it is identical no matter which bind worker
// registers the host first.
func tmHostAddr(seed uint64, host string) netip.Addr {
	v := hashN(seed, 1<<24, "tmaddr", host)
	return netip.AddrFrom4([4]byte{51, byte(v >> 16), byte(v >> 8), byte(v)})
}

// registerTMHost binds the vendor host (DNS, HTTPS service, WHOIS
// record) once per world. Safe for concurrent use by bind workers.
func (w *World) registerTMHost(host string, seed uint64) {
	w.tmMu.Lock()
	if w.tmRegistered == nil {
		w.tmRegistered = map[string]bool{}
	}
	if w.tmRegistered[host] {
		w.tmMu.Unlock()
		return
	}
	w.tmRegistered[host] = true
	w.tmMu.Unlock()
	addr := tmHostAddr(seed, host)
	w.Net.Resolver.Add(host, addr)
	w.Net.BindService(addr, 443, &simnet.TLSInfo{CommonName: host}, simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 200, ContentType: "application/javascript", BodySize: 48 * 1024}
	}))
	w.Whois.Add(whois.Record{
		Domain:     host,
		Registrant: whois.ThreatMetrixOrg,
		Registrar:  "MarkMonitor Inc.",
		Country:    "US",
		Created:    "2012-07-19",
		NameServer: fmt.Sprintf("ns%d.threatmetrix.example", 1+hashN(seed, 2, "ns", host)),
	}, addr)
}

// attachThreatMetrix decorates a page's fraud-detection probes with the
// script-loading chain: a public fetch of the vendor script shortly
// before the probes, and provenance-carrying initiators.
func (w *World) attachThreatMetrix(page *webdoc.Page, row groundtruth.LocalhostRow, probes []webdoc.Step, seed uint64) []webdoc.Step {
	if row.Class != groundtruth.ClassFraudDetection || len(probes) == 0 {
		return probes
	}
	host := tmScriptHost(row.Domain)
	w.registerTMHost(host, seed)
	first := probes[0].At
	for _, s := range probes {
		if s.At < first {
			first = s.At
		}
	}
	scriptAt := first - 1500*time.Millisecond
	if scriptAt < 0 {
		scriptAt = 0
	}
	page.Steps = append(page.Steps, webdoc.Step{
		At:        scriptAt,
		URL:       fmt.Sprintf("https://%s/fp/tags.js?org_id=%04x", host, hashN(seed, 1<<16, "tmorg", row.Domain)),
		Initiator: "script",
	})
	for i := range probes {
		probes[i].Initiator = tmInitiator(host)
	}
	return probes
}
