package websim

import (
	"fmt"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

// Login-page extension (§4.3.1 / §6 future work). The paper measured
// landing pages only and notes its counts are therefore a lower bound:
// "ThreatMetrix may be more broadly deployed on the internal pages of
// other websites. Indeed, a recent blog post identified several
// websites using ThreatMetrix specifically on login pages."
//
// The synthetic web models this: a set of additional top-list sites —
// drawn from the BleepingComputer list the paper cites as [5] — deploy
// the ThreatMetrix scan only on /login, so a landing-page crawl misses
// them and a login-page crawl (crawler.Config.PagePath = "/login")
// reveals the difference.

// LoginPath is the internal page the extension crawls.
const LoginPath = "/login"

// LoginOnlyDeployers returns the extension's login-only ThreatMetrix
// sites and their ranks (groundtruth.LoginOnlyThreatMetrix).
func LoginOnlyDeployers() map[string]int {
	out := make(map[string]int, len(groundtruth.LoginOnlyThreatMetrix))
	for d, r := range groundtruth.LoginOnlyThreatMetrix {
		out[d] = r
	}
	return out
}

// loginTMRow builds the synthetic ThreatMetrix row for a login-only
// deployer.
func loginTMRow(domain string) groundtruth.LocalhostRow {
	return groundtruth.LocalhostRow{
		Domain: domain,
		Class:  groundtruth.ClassFraudDetection,
		Probes: []groundtruth.Probe{{Scheme: "wss", Ports: []uint16{
			3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040, 7070, 63333,
		}, Path: "/"}},
		OS: groundtruth.OSWindows,
	}
}

// loginPage assembles the /login document for a site: ordinary
// sub-resources plus, where the site deploys anti-abuse on its login
// flow, the ThreatMetrix scan.
func (w *World) loginPage(spec siteSpec, scheme string, seed uint64) *webdoc.Page {
	page := &webdoc.Page{
		URL:      fmt.Sprintf("%s://%s%s", scheme, spec.domain, LoginPath),
		BodySize: 2048 + int(hashN(seed, 30000, "loginbody", spec.domain)),
		Steps:    subresourceSteps(seed, spec.domain+LoginPath),
	}
	// Sites already scanning on the landing page scan on login too
	// (ThreatMetrix is deployed site-wide on its known customers).
	for _, row := range spec.localRows {
		probes := w.attachThreatMetrix(page, row, localhostSteps(seed, row, w.OS), seed)
		page.Steps = append(page.Steps, probes...)
	}
	if _, ok := groundtruth.LoginOnlyThreatMetrix[spec.domain]; ok {
		row := loginTMRow(spec.domain)
		probes := w.attachThreatMetrix(page, row, localhostSteps(seed, row, w.OS), seed)
		page.Steps = append(page.Steps, probes...)
	}
	return page
}

// RawHTMLHeader asks a site for real markup instead of the precompiled
// document; the browser's HTML-parsing mode sends it. Rendering happens
// on demand, so serving 100K sites does not hold 100K HTML bodies.
const RawHTMLHeader = "X-Knockandtalk-Raw-HTML"

// multiPageService routes requests by path: the landing document at "/",
// the login document at LoginPath, and 404 elsewhere.
func multiPageService(pages map[string]*webdoc.Page) simnet.Service {
	return simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		path := req.Path
		if i := indexAny(path, "?#"); i >= 0 {
			path = path[:i]
		}
		page, ok := pages[path]
		if !ok {
			return &simnet.Response{Status: 404, ContentType: "text/html", BodySize: 512}
		}
		if req.Header[RawHTMLHeader] == "1" {
			raw := RenderHTML(page)
			return &simnet.Response{
				Status:      200,
				ContentType: "text/html",
				BodySize:    len(raw),
				Document:    raw,
			}
		}
		return &simnet.Response{
			Status:      200,
			ContentType: "text/html",
			BodySize:    page.BodySize,
			Document:    page,
		}
	})
}

func indexAny(s, chars string) int {
	for i := 0; i < len(s); i++ {
		for j := 0; j < len(chars); j++ {
			if s[i] == chars[j] {
				return i
			}
		}
	}
	return -1
}
