package websim

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

const testSeed = 0xC0FFEE

func TestAddrForDisjointFromLocalRanges(t *testing.T) {
	for _, i := range []int{0, 1, 99999, 245000} {
		a := addrFor(i)
		if a.IsLoopback() || a.IsPrivate() || !a.IsValid() {
			t.Errorf("addrFor(%d) = %v overlaps local ranges", i, a)
		}
	}
	if addrFor(0) == addrFor(1) {
		t.Error("addresses must be unique")
	}
}

func TestFateDistributionTop2020(t *testing.T) {
	counts := map[Fate]int{}
	ft := newFateTable(testSeed, groundtruth.CrawlTop2020, hostenv.Windows)
	const n = 50000
	for i := 0; i < n; i++ {
		f := ft.fateFor("site"+string(rune(i))+strings.Repeat("x", i%5)+".example", "", false)
		counts[f]++
	}
	failRate := float64(n-counts[FateOK]) / n
	if failRate < 0.08 || failRate > 0.13 {
		t.Errorf("top-2020 Windows failure rate = %.3f, want ~0.103 (Table 1)", failRate)
	}
	nxShare := float64(counts[FateNXDomain]) / float64(n-counts[FateOK])
	if nxShare < 0.83 || nxShare > 0.95 {
		t.Errorf("NXDOMAIN share of failures = %.3f, want ~0.895", nxShare)
	}
}

func TestFateGroundTruthAlwaysLoads(t *testing.T) {
	for _, os := range hostenv.AllOS {
		if f := newFateTable(testSeed, groundtruth.CrawlTop2020, os).fateFor("ebay.com", "", true); f != FateOK {
			t.Errorf("%v: ground-truth site got fate %v", os, f)
		}
	}
}

func TestFateDNSNestsAcrossOSes(t *testing.T) {
	// A domain NXDOMAIN on the OS with the lowest DNS-failure rate must
	// be NXDOMAIN on every OS with a higher rate (the draws share a
	// domain-level hash).
	macFT := newFateTable(testSeed, groundtruth.CrawlTop2020, hostenv.MacOSX)
	winFT := newFateTable(testSeed, groundtruth.CrawlTop2020, hostenv.Windows)
	for i := 0; i < 5000; i++ {
		d := strings.Repeat("q", i%7+1) + string(rune('a'+i%26)) + ".example"
		mac := macFT.fateFor(d, "", false)
		win := winFT.fateFor(d, "", false)
		// 2020 NX rates: Windows 9179/100000 > Mac 9001/100000.
		if mac == FateNXDomain && win != FateNXDomain {
			t.Fatalf("%s: NXDOMAIN on Mac but not on Windows (higher rate)", d)
		}
	}
}

func TestLocalhostStepsThreatMetrix(t *testing.T) {
	var row groundtruth.LocalhostRow
	for _, r := range groundtruth.Top2020Localhost() {
		if r.Domain == "ebay.com" {
			row = r
			break
		}
	}
	steps := localhostSteps(testSeed, row, hostenv.Windows)
	if len(steps) != 14 {
		t.Fatalf("ThreatMetrix issues 14 WSS probes, got %d", len(steps))
	}
	for _, s := range steps {
		if !strings.HasPrefix(s.URL, "wss://localhost:") {
			t.Errorf("probe URL %q not WSS to localhost", s.URL)
		}
		if s.Initiator != "blob:threatmetrix" {
			t.Errorf("initiator = %q", s.Initiator)
		}
		if s.At < 9800*time.Millisecond || s.At > 17*time.Second {
			t.Errorf("probe at %v outside the fraud-detection window", s.At)
		}
	}
	// Windows-only behavior.
	if got := localhostSteps(testSeed, row, hostenv.Linux); got != nil {
		t.Errorf("ThreatMetrix must not run on Linux, got %d steps", len(got))
	}
}

func TestLocalhostStepsDiscordSubset(t *testing.T) {
	var row groundtruth.LocalhostRow
	for _, r := range groundtruth.Top2020Localhost() {
		if r.Domain == "cponline.pw" {
			row = r
			break
		}
	}
	steps := localhostSteps(testSeed, row, hostenv.MacOSX)
	if len(steps) != discordPortWindow {
		t.Fatalf("Discord probe tries %d ports per visit, got %d", discordPortWindow, len(steps))
	}
	for _, s := range steps {
		if !strings.Contains(s.URL, "/?v=1") {
			t.Errorf("Discord probe path wrong: %q", s.URL)
		}
	}
}

func TestLanStepsShape(t *testing.T) {
	var row groundtruth.LANRow
	for _, r := range groundtruth.Top2020LAN() {
		if r.Domain == "gsis.gr" {
			row = r
			break
		}
	}
	steps := lanSteps(testSeed, row, hostenv.Linux)
	if len(steps) != 1 {
		t.Fatalf("LAN rows issue one request, got %d", len(steps))
	}
	if !strings.HasPrefix(steps[0].URL, "http://10.193.31.212/") {
		t.Errorf("LAN URL = %q", steps[0].URL)
	}
	if strings.Contains(steps[0].URL, "*") {
		t.Errorf("wildcard not expanded: %q", steps[0].URL)
	}
}

func TestExpandPathDeterministic(t *testing.T) {
	a := expandPath(testSeed, "x.example", "/wp-content/uploads/*.jpg")
	b := expandPath(testSeed, "x.example", "/wp-content/uploads/*.jpg")
	if a != b {
		t.Errorf("expansion not deterministic: %q vs %q", a, b)
	}
	if strings.Contains(a, "*") {
		t.Errorf("wildcard survived: %q", a)
	}
	if expandPath(testSeed, "x.example", "/plain") != "/plain" {
		t.Error("plain path modified")
	}
}

func TestBuildSmallWorld(t *testing.T) {
	w, err := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, testSeed) // 1000 domains
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Targets) != 1000 {
		t.Fatalf("targets = %d", len(w.Targets))
	}
	// ebay.com (rank 104) must resolve and serve a page with TM steps.
	addrs, nerr := w.Net.Resolver.Resolve("ebay.com")
	if nerr.IsFailure() {
		t.Fatal("ebay.com must resolve")
	}
	ep := w.Net.Locate(addrs[0], 443)
	if ep.Outcome != simnet.DialAccepted || ep.Service == nil {
		t.Fatal("ebay.com must accept on 443")
	}
	if ep.TLS == nil || !ep.TLS.ValidFor("ebay.com") {
		t.Error("ebay.com must present a valid certificate")
	}
	resp := ep.Service.Serve(&simnet.Request{Scheme: simnet.SchemeHTTPS, Host: "ebay.com", Port: 443, Path: "/"})
	page, ok := resp.Document.(*webdoc.Page)
	if !ok {
		t.Fatal("landing response carries no document")
	}
	tm := 0
	for _, s := range page.Steps {
		if strings.HasPrefix(s.URL, "wss://localhost:") {
			tm++
		}
	}
	if tm != 14 {
		t.Errorf("ebay.com page has %d TM probes on Windows, want 14", tm)
	}
}

func TestBuildPerOSDifferences(t *testing.T) {
	win, err := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Build(groundtruth.CrawlTop2020, hostenv.Linux, 0.01, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	pageOf := func(w *World, domain string) *webdoc.Page {
		addrs, nerr := w.Net.Resolver.Resolve(domain)
		if nerr.IsFailure() {
			t.Fatalf("%s must resolve", domain)
		}
		ep := w.Net.Locate(addrs[0], 443)
		if ep.Service == nil {
			t.Fatalf("%s has no service", domain)
		}
		resp := ep.Service.Serve(&simnet.Request{Scheme: simnet.SchemeHTTPS, Host: domain, Port: 443, Path: "/"})
		return resp.Document.(*webdoc.Page)
	}
	countLocal := func(p *webdoc.Page) int {
		n := 0
		for _, s := range p.Steps {
			if strings.Contains(s.URL, "localhost") || strings.Contains(s.URL, "127.0.0.1") {
				n++
			}
		}
		return n
	}
	if n := countLocal(pageOf(win, "ebay.com")); n == 0 {
		t.Error("ebay.com must scan localhost on Windows")
	}
	if n := countLocal(pageOf(lin, "ebay.com")); n != 0 {
		t.Errorf("ebay.com must not scan localhost on Linux, got %d steps", n)
	}
}

func TestBuild2021RejectsMac(t *testing.T) {
	if _, err := Build(groundtruth.CrawlTop2021, hostenv.MacOSX, 0.01, testSeed); err == nil {
		t.Error("2021 crawl on Mac must be rejected")
	}
}

func TestBuildMaliciousScaled(t *testing.T) {
	w, err := Build(groundtruth.CrawlMalicious, hostenv.Linux, 0.002, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Targets) < 250 {
		t.Fatalf("scaled malicious population too small: %d", len(w.Targets))
	}
	// Ground-truth phishing cloners must be present and categorized.
	found := false
	for _, tg := range w.Targets {
		if tg.Domain == "customer-ebay.com" {
			found = true
			if tg.Category != "phishing" {
				t.Errorf("customer-ebay.com category = %q", tg.Category)
			}
		}
	}
	if !found {
		t.Error("customer-ebay.com missing from scaled malicious world")
	}
}

func TestRedirectSitesServeRedirect(t *testing.T) {
	w, err := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.55, testSeed) // romadecade.org is rank 51142
	if err != nil {
		t.Fatal(err)
	}
	addrs, nerr := w.Net.Resolver.Resolve("romadecade.org")
	if nerr.IsFailure() {
		t.Fatal("romadecade.org must resolve")
	}
	var resp *simnet.Response
	for _, port := range []uint16{80, 443} {
		if ep := w.Net.Locate(addrs[0], port); ep.Service != nil {
			resp = ep.Service.Serve(&simnet.Request{Scheme: simnet.SchemeHTTP, Host: "romadecade.org", Port: port, Path: "/"})
			break
		}
	}
	if resp == nil || resp.Status != 302 || resp.Location != "http://127.0.0.1/" {
		t.Fatalf("romadecade.org must 302 to http://127.0.0.1/, got %+v", resp)
	}
}

func TestCDNsBound(t *testing.T) {
	w, err := Build(groundtruth.CrawlTop2020, hostenv.Linux, 0.005, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cdnCount; i++ {
		addrs, nerr := w.Net.Resolver.Resolve(cdnHost(i))
		if nerr.IsFailure() {
			t.Fatalf("%s unresolvable", cdnHost(i))
		}
		if ep := w.Net.Locate(addrs[0], 443); ep.Outcome != simnet.DialAccepted {
			t.Errorf("%s not accepting", cdnHost(i))
		}
	}
	if !w.Net.Ping(netip.MustParseAddr("8.8.8.8")) {
		t.Error("connectivity check target unreachable")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, _ := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.003, testSeed)
	b, _ := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.003, testSeed)
	if len(a.Targets) != len(b.Targets) {
		t.Fatal("target counts differ")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target %d differs: %+v vs %+v", i, a.Targets[i], b.Targets[i])
		}
	}
}

func TestThreatMetrixScriptChain(t *testing.T) {
	w, err := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	addrs, nerr := w.Net.Resolver.Resolve("ebay.com")
	if nerr.IsFailure() {
		t.Fatal("ebay.com must resolve")
	}
	resp := w.Net.Locate(addrs[0], 443).Service.Serve(&simnet.Request{
		Scheme: simnet.SchemeHTTPS, Host: "ebay.com", Port: 443, Path: "/",
	})
	page := resp.Document.(*webdoc.Page)

	var scriptStep *webdoc.Step
	probeInitiators := map[string]bool{}
	var firstProbe time.Duration
	for i := range page.Steps {
		s := &page.Steps[i]
		if strings.Contains(s.URL, "ebay-us.com") {
			scriptStep = s
		}
		if strings.HasPrefix(s.URL, "wss://localhost:") {
			probeInitiators[s.Initiator] = true
			if firstProbe == 0 || s.At < firstProbe {
				firstProbe = s.At
			}
		}
	}
	if scriptStep == nil {
		t.Fatal("profiling script fetch from ebay-us.com missing")
	}
	if scriptStep.At >= firstProbe {
		t.Errorf("script loads at %v, after the first probe at %v", scriptStep.At, firstProbe)
	}
	if len(probeInitiators) != 1 || !probeInitiators["blob:threatmetrix:ebay-us.com"] {
		t.Errorf("probe initiators = %v", probeInitiators)
	}
	// The script host resolves, serves JS, and is WHOIS-registered to
	// ThreatMetrix Inc.
	tmAddrs, nerr := w.Net.Resolver.Resolve("ebay-us.com")
	if nerr.IsFailure() {
		t.Fatal("ebay-us.com must resolve")
	}
	if ep := w.Net.Locate(tmAddrs[0], 443); ep.Outcome != simnet.DialAccepted {
		t.Error("ebay-us.com must accept HTTPS")
	}
	rec, ok := w.Whois.Lookup("ebay-us.com")
	if !ok || rec.Registrant != "ThreatMetrix Inc." {
		t.Errorf("whois(ebay-us.com) = %+v, %v", rec, ok)
	}
	if rec2, ok := w.Whois.LookupIP(tmAddrs[0]); !ok || rec2.Registrant != rec.Registrant {
		t.Error("IP-based whois must agree with the domain record")
	}
}

func TestLoginPageScansForLoginOnlyDeployer(t *testing.T) {
	w, err := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	addrs, nerr := w.Net.Resolver.Resolve("walmart.com")
	if nerr.IsFailure() {
		t.Fatal("walmart.com (rank 131) must resolve")
	}
	svc := w.Net.Locate(addrs[0], 443).Service
	if svc == nil {
		// The extension site may be assigned HTTP by the scheme hash.
		svc = w.Net.Locate(addrs[0], 80).Service
	}
	if svc == nil {
		t.Fatal("walmart.com has no service")
	}
	landing := svc.Serve(&simnet.Request{Scheme: simnet.SchemeHTTPS, Host: "walmart.com", Port: 443, Path: "/"})
	login := svc.Serve(&simnet.Request{Scheme: simnet.SchemeHTTPS, Host: "walmart.com", Port: 443, Path: LoginPath})
	countTM := func(resp *simnet.Response) int {
		page, ok := resp.Document.(*webdoc.Page)
		if !ok {
			return -1
		}
		n := 0
		for _, s := range page.Steps {
			if strings.HasPrefix(s.URL, "wss://localhost:") {
				n++
			}
		}
		return n
	}
	if n := countTM(landing); n != 0 {
		t.Errorf("landing page has %d TM probes, want 0", n)
	}
	if n := countTM(login); n != 14 {
		t.Errorf("login page has %d TM probes, want 14", n)
	}
	// Unknown paths 404 without a document.
	if resp := svc.Serve(&simnet.Request{Scheme: simnet.SchemeHTTPS, Host: "walmart.com", Port: 443, Path: "/nonexistent"}); resp.Status != 404 || resp.Document != nil {
		t.Errorf("unknown path = %+v", resp)
	}
}

func TestRenderHTMLRoundTripShape(t *testing.T) {
	page := &webdoc.Page{
		URL:      "https://x.test/",
		BodySize: 3000,
		Steps: []webdoc.Step{
			{At: 100 * time.Millisecond, URL: "https://cdn0.webstatic.example/a.js", Initiator: "parser"},
			{At: 200 * time.Millisecond, URL: "https://cdn1.webstatic.example/b.css", Initiator: "parser"},
			{At: 300 * time.Millisecond, URL: "http://10.10.34.35/", Initiator: "iframe"},
			{At: 2 * time.Second, URL: "wss://localhost:5939/", Initiator: "blob:threatmetrix:regstat.x.test"},
		},
	}
	raw := RenderHTML(page)
	html := string(raw)
	for _, want := range []string{
		`<script src="https://cdn0.webstatic.example/a.js">`,
		`<link rel="stylesheet" href="https://cdn1.webstatic.example/b.css">`,
		`<iframe src="http://10.10.34.35/">`,
		"after 2000ms",
		"ws wss://localhost:5939/ as blob:threatmetrix:regstat.x.test",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("rendered HTML missing %q", want)
		}
	}
	if len(raw) < page.BodySize {
		t.Errorf("rendered page smaller than nominal body size: %d < %d", len(raw), page.BodySize)
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	// World construction must not depend on the bind pool size: every
	// per-site draw derives from (seed, domain, index), vendor-host
	// addresses are hashes of the host name, and registration targets
	// are lock-protected. Run with -race in CI.
	build := func(workers int) *World {
		t.Helper()
		defer func(old int) { bindWorkers = old }(bindWorkers)
		bindWorkers = workers
		w, err := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	seq, par := build(1), build(8)
	if len(seq.Targets) != len(par.Targets) {
		t.Fatalf("target counts differ: %d vs %d", len(seq.Targets), len(par.Targets))
	}
	for i := range seq.Targets {
		if seq.Targets[i] != par.Targets[i] {
			t.Fatalf("target %d differs: %+v vs %+v", i, seq.Targets[i], par.Targets[i])
		}
	}
	if a, b := seq.Net.Resolver.Len(), par.Net.Resolver.Len(); a != b {
		t.Errorf("resolver sizes differ: %d vs %d", a, b)
	}
	if a, b := seq.Net.NumHosts(), par.Net.NumHosts(); a != b {
		t.Errorf("host counts differ: %d vs %d", a, b)
	}
	// Vendor hosts resolve to the same hash-derived address either way.
	for _, host := range []string{"ebay-us.com", "regstat.betfair.com"} {
		a, errA := seq.Net.Resolver.Resolve(host)
		b, errB := par.Net.Resolver.Resolve(host)
		if errA != errB || len(a) != len(b) || (len(a) > 0 && a[0] != b[0]) {
			t.Errorf("%s resolves differently: %v/%v vs %v/%v", host, a, errA, b, errB)
		}
	}
}

func TestSpecCacheSharedAcrossOSes(t *testing.T) {
	// The crawl-level spec phase is OS-independent and must be computed
	// once: Build for two OSes at the same (crawl, scale) shares the
	// cached specs.
	key := specKey{groundtruth.CrawlTop2020, 0.004}
	specCache.Delete(key)
	if _, err := Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.004, testSeed); err != nil {
		t.Fatal(err)
	}
	v, ok := specCache.Load(key)
	if !ok {
		t.Fatal("Build did not populate the spec cache")
	}
	if _, err := Build(groundtruth.CrawlTop2020, hostenv.Linux, 0.004, testSeed+1); err != nil {
		t.Fatal(err)
	}
	v2, ok := specCache.Load(key)
	if !ok {
		t.Fatal("spec cache entry evicted")
	}
	if &v.([]siteSpec)[0] != &v2.([]siteSpec)[0] {
		t.Error("second Build rebuilt the specs instead of sharing the cache")
	}
}
