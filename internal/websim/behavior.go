package websim

import (
	"fmt"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

// Delay models. The paper's Figure 5 shows when sites issue their first
// local request after the page is fetched: fraud- and bot-detection
// scripts fire late (they wait for page idle before profiling, putting
// the Windows median near 10 s), native-app probes and developer-error
// resource fetches fire during or shortly after render (Linux/Mac median
// under 5 s), and everything lands within the 20-second window with a
// maximum near 17 s.
type delayRange struct{ lo, hi time.Duration }

var classDelays = map[groundtruth.Class]delayRange{
	groundtruth.ClassFraudDetection: {9800 * time.Millisecond, 13400 * time.Millisecond},
	groundtruth.ClassBotDetection:   {9500 * time.Millisecond, 12000 * time.Millisecond},
	groundtruth.ClassNativeApp:      {1000 * time.Millisecond, 6000 * time.Millisecond},
	groundtruth.ClassDevError:       {800 * time.Millisecond, 8500 * time.Millisecond},
	groundtruth.ClassUnknown:        {2000 * time.Millisecond, 16000 * time.Millisecond},
}

// devErrorDelayWindows widens the Windows developer-error window: the
// paper's Figure 5a shows the Windows localhost median at 10 s, which
// requires a long tail beyond the anti-abuse scanners — Windows-specific
// page variants load their leftover resources late.
var devErrorDelayWindows = delayRange{1000 * time.Millisecond, 16500 * time.Millisecond}

// firstProbeDelay draws the deterministic per-(site, OS) start delay for
// a behavior class.
func firstProbeDelay(seed uint64, domain string, os hostenv.OS, class groundtruth.Class) time.Duration {
	r := classDelays[class]
	if class == groundtruth.ClassDevError && os == hostenv.Windows {
		r = devErrorDelayWindows
	}
	span := uint64((r.hi - r.lo) / time.Millisecond)
	off := hashN(seed, span, "delay", domain, os.String())
	return r.lo + time.Duration(off)*time.Millisecond
}

// lanDelay draws the start delay for a LAN request: typically under 5 s
// (LAN fetches are render-time resource loads), with a sparse late tail
// out to ~16 s on Linux and Mac only — Figure 5b shows the Windows
// maximum at 5 s but 15–16 s maxima on the other OSes.
func lanDelay(seed uint64, domain string, os hostenv.OS) time.Duration {
	if os != hostenv.Windows && hashN(seed, 4, "lantail", domain) == 0 {
		off := hashN(seed, 8000, "lanlate", domain, os.String())
		return 8*time.Second + time.Duration(off)*time.Millisecond
	}
	off := hashN(seed, 4400, "lan", domain, os.String())
	return 600*time.Millisecond + time.Duration(off)*time.Millisecond
}

// portGap is the pacing between successive port probes in a scan.
func portGap(seed uint64, domain string, i int) time.Duration {
	return time.Duration(30+hashN(seed, 90, "gap", domain, fmt.Sprint(i)))*time.Millisecond + time.Duration(i)*30*time.Millisecond
}

// initiatorFor labels the page element issuing a class of local request,
// matching what the paper's manual investigation attributed requests to.
func initiatorFor(class groundtruth.Class) string {
	switch class {
	case groundtruth.ClassFraudDetection:
		return "blob:threatmetrix" // dynamically generated JS blob (§4.3.1)
	case groundtruth.ClassBotDetection:
		return "script:/TSPD" // BIG-IP ASM Bot Defense path (§4.3.2)
	case groundtruth.ClassNativeApp:
		return "script:native-app"
	case groundtruth.ClassDevError:
		return "img"
	default:
		return "script"
	}
}

// expandPath replaces the ground-truth tables' * wildcards with a
// deterministic token.
func expandPath(seed uint64, domain, tmpl string) string {
	if !strings.Contains(tmpl, "*") {
		return tmpl
	}
	token := fmt.Sprintf("x%04x", hashN(seed, 1<<16, "path", domain, tmpl))
	return strings.ReplaceAll(tmpl, "*", token)
}

// discordPortWindow is how many of the ten Discord RPC ports (6463-6472)
// a client-discovery probe tries in one visit: the real client library
// walks the range and stops quickly, and the paper's per-OS request
// totals (Figure 4a: 19 ws requests on Windows) imply only a few probes
// per site.
const discordPortWindow = 4

func isDiscordRange(ports []uint16) bool {
	return len(ports) == 10 && ports[0] == 6463 && ports[9] == 6472
}

// localhostHost picks the host literal a behavior uses. Anti-abuse and
// native-app scripts address "localhost"; developer-error remnants embed
// the literal loopback address their test server ran on.
func localhostHost(class groundtruth.Class) string {
	if class == groundtruth.ClassDevError {
		return "127.0.0.1"
	}
	return "localhost"
}

// localhostSteps expands one ground-truth localhost row into the page's
// scheduled requests for the given OS. It returns nil when the behavior
// was not observed on that OS.
func localhostSteps(seed uint64, row groundtruth.LocalhostRow, os hostenv.OS) []webdoc.Step {
	if !row.OS.Has(osBit(os)) {
		return nil
	}
	start := firstProbeDelay(seed, row.Domain, os, row.Class)
	initiator := initiatorFor(row.Class)
	host := localhostHost(row.Class)
	var steps []webdoc.Step
	for _, probe := range row.Probes {
		ports := probe.Ports
		if isDiscordRange(ports) {
			lo := int(hashN(seed, uint64(len(ports)-discordPortWindow+1), "discord", row.Domain, os.String()))
			ports = ports[lo : lo+discordPortWindow]
		}
		path := expandPath(seed, row.Domain, probe.Path)
		for i, port := range ports {
			steps = append(steps, webdoc.Step{
				At:        start + portGap(seed, row.Domain, i),
				URL:       fmt.Sprintf("%s://%s:%d%s", probe.Scheme, host, port, ensureSlash(path)),
				Initiator: initiator,
			})
		}
	}
	return steps
}

// lanSteps expands one ground-truth LAN row into scheduled requests.
func lanSteps(seed uint64, row groundtruth.LANRow, os hostenv.OS) []webdoc.Step {
	if !row.OS.Has(osBit(os)) {
		return nil
	}
	initiator := "img"
	if !row.DevError {
		// The unexplained LAN rows embed an iframe sourced at the local
		// address (the censorship pattern of Appendix C).
		initiator = "iframe"
	}
	hostport := row.Addr
	var scheme = row.Scheme
	defPort := uint16(80)
	if scheme == "https" {
		defPort = 443
	}
	if row.Port != defPort {
		hostport = fmt.Sprintf("%s:%d", row.Addr, row.Port)
	}
	return []webdoc.Step{{
		At:        lanDelay(seed, row.Domain, os),
		URL:       fmt.Sprintf("%s://%s%s", scheme, hostport, ensureSlash(expandPath(seed, row.Domain, row.Path))),
		Initiator: initiator,
	}}
}

func ensureSlash(p string) string {
	if p == "" || p[0] != '/' {
		return "/" + p
	}
	return p
}

// subresourceSteps synthesizes the ordinary public-CDN fetches every
// successful page makes while rendering (scripts, styles, images).
func subresourceSteps(seed uint64, domain string) []webdoc.Step {
	n := int(hashN(seed, 7, "nres", domain)) + 2
	steps := make([]webdoc.Step, 0, n)
	for i := 0; i < n; i++ {
		h := int(hashN(seed, cdnCount, "cdn", domain, fmt.Sprint(i)))
		at := time.Duration(40+hashN(seed, 900, "resat", domain, fmt.Sprint(i))) * time.Millisecond
		steps = append(steps, webdoc.Step{
			At:        at,
			URL:       fmt.Sprintf("https://%s/assets/%05x.js", cdnHost(h), hashN(seed, 1<<20, "asset", domain, fmt.Sprint(i))),
			Initiator: "parser",
		})
	}
	return steps
}
