package websim

import (
	"sync"

	"github.com/knockandtalk/knockandtalk/internal/blocklist"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
)

// Fate is the load outcome assigned to a site for one crawl on one OS.
// The distribution of fates reproduces Table 1's success rates and error
// taxonomy.
type Fate int

// Fates.
const (
	FateOK Fate = iota
	FateNXDomain
	FateRefused
	FateReset
	FateBadCert
	FateEmptyResponse
	FateSSLError
)

// NetError maps the fate to the Chrome error the crawl records.
func (f Fate) NetError() simnet.NetError {
	switch f {
	case FateNXDomain:
		return simnet.ErrNameNotResolved
	case FateRefused:
		return simnet.ErrConnectionRefused
	case FateReset:
		return simnet.ErrConnectionReset
	case FateBadCert:
		return simnet.ErrCertCommonNameBad
	case FateEmptyResponse:
		return simnet.ErrEmptyResponse
	case FateSSLError:
		return simnet.ErrSSLProtocolError
	default:
		return simnet.OK
	}
}

// fateRates holds per-outcome probabilities.
type fateRates struct {
	nx, refused, reset, cert, other float64
}

// ratesFor derives fate probabilities for a (crawl, OS, category) from
// the paper's published statistics: Table 1 for top-list crawls, and the
// Table 2 per-category success rates combined with the Table 1 error mix
// for the malicious crawl (whose absolute counts are internally
// inconsistent with Table 2's population; see groundtruth.Table1).
func ratesFor(crawl groundtruth.CrawlID, os hostenv.OS, category blocklist.Category) fateRates {
	var row groundtruth.CrawlStats
	for _, r := range groundtruth.Table1() {
		if r.Crawl == crawl && r.OS == osBit(os) {
			row = r
			break
		}
	}
	if row.Total() == 0 {
		return fateRates{}
	}
	failRate := float64(row.Failed) / float64(row.Total())
	if crawl == groundtruth.CrawlMalicious {
		// Per-category success rates from Table 2.
		for _, c := range groundtruth.Table2() {
			if c.Category == string(category) {
				failRate = 1 - c.SuccessRate[osBit(os)]
				break
			}
		}
	}
	failed := float64(row.Failed)
	return fateRates{
		nx:      failRate * float64(row.NameNotResolved) / failed,
		refused: failRate * float64(row.ConnRefused) / failed,
		reset:   failRate * float64(row.ConnReset) / failed,
		cert:    failRate * float64(row.CertCNInvalid) / failed,
		other:   failRate * float64(row.Others) / failed,
	}
}

func osBit(os hostenv.OS) groundtruth.OSSet {
	switch os {
	case hostenv.Windows:
		return groundtruth.OSWindows
	case hostenv.Linux:
		return groundtruth.OSLinux
	default:
		return groundtruth.OSMac
	}
}

// fateTable precomputes the per-category fate rates for one (crawl,
// OS). ratesFor walks the groundtruth tables — which are rebuilt on
// every call — so drawing rates once per site bind dominated world
// construction; the table folds that to one computation per category
// per Build.
type fateTable struct {
	seed    uint64
	crawl   groundtruth.CrawlID
	os      hostenv.OS
	byCat   map[blocklist.Category]fateRates
	catMu   sync.Mutex
	topRate fateRates // the "" (top-list) category, kept off the map path
}

func newFateTable(seed uint64, crawl groundtruth.CrawlID, os hostenv.OS) *fateTable {
	return &fateTable{
		seed: seed, crawl: crawl, os: os,
		byCat:   make(map[blocklist.Category]fateRates),
		topRate: ratesFor(crawl, os, ""),
	}
}

// rates returns the cached fate rates for a category, computing them on
// first use. Safe for concurrent use by bind workers.
func (t *fateTable) rates(category blocklist.Category) fateRates {
	if category == "" {
		return t.topRate
	}
	t.catMu.Lock()
	defer t.catMu.Unlock()
	r, ok := t.byCat[category]
	if !ok {
		r = ratesFor(t.crawl, t.os, category)
		t.byCat[category] = r
	}
	return r
}

// fateFor assigns a deterministic fate to a domain. DNS fate is drawn
// from a domain-level hash (a dead name is dead for every OS, modulo the
// small per-OS threshold difference reflecting the crawls' different
// dates); connection-level fates are drawn per OS. Ground-truth domains
// (observed active by the paper) always load.
func (t *fateTable) fateFor(domain string, category blocklist.Category, groundTruth bool) Fate {
	if groundTruth {
		return FateOK
	}
	seed, crawl, os := t.seed, t.crawl, t.os
	r := t.rates(category)
	// DNS draw: OS-independent hash compared against the per-OS rate, so
	// the failing sets on different OSes nest rather than scatter.
	if hash01(seed, "dns", string(crawl), domain) < r.nx {
		return FateNXDomain
	}
	conn := hash01(seed, "conn", string(crawl), os.String(), domain)
	switch {
	case conn < r.refused:
		return FateRefused
	case conn < r.refused+r.reset:
		return FateReset
	case conn < r.refused+r.reset+r.cert:
		return FateBadCert
	case conn < r.refused+r.reset+r.cert+r.other:
		if hashN(seed, 2, "other", domain) == 0 {
			return FateEmptyResponse
		}
		return FateSSLError
	default:
		return FateOK
	}
}
