package websim

import (
	"fmt"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

// RenderHTML serializes a page into real markup: static sub-resources
// become resource-bearing tags (script/link/img/iframe) and scheduled
// behaviors become an inline program in the page-script language
// (internal/script), with exact `after` offsets. A browser in
// HTML-parsing mode recovers the same behavior steps the fast path uses
// (see browser.compileHTML); static tag fetches are scheduled at parse
// order rather than the fast path's synthetic offsets, as in a real
// browser.
func RenderHTML(page *webdoc.Page) []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", page.URL)
	var script strings.Builder
	for _, s := range page.SortedSteps() {
		switch s.Initiator {
		case "parser":
			switch {
			case strings.HasSuffix(pathOf(s.URL), ".js"):
				fmt.Fprintf(&b, "<script src=\"%s\"></script>\n", s.URL)
			case strings.HasSuffix(pathOf(s.URL), ".css"):
				fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s\">\n", s.URL)
			default:
				fmt.Fprintf(&b, "<img src=\"%s\">\n", s.URL)
			}
		case "iframe":
			fmt.Fprintf(&b, "<iframe src=\"%s\"></iframe>\n", s.URL)
		default:
			fmt.Fprintf(&script, "after %dms\n", s.At.Milliseconds())
			cmd := "get"
			if strings.HasPrefix(s.URL, "ws://") || strings.HasPrefix(s.URL, "wss://") {
				cmd = "ws"
			}
			if s.Initiator != "" {
				fmt.Fprintf(&script, "%s %s as %s\n", cmd, s.URL, sanitizeInitiator(s.Initiator))
			} else {
				fmt.Fprintf(&script, "%s %s\n", cmd, s.URL)
			}
		}
	}
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", page.URL)
	if script.Len() > 0 {
		b.WriteString("<script type=\"text/x-knockscript\">\n")
		b.WriteString(script.String())
		b.WriteString("</script>\n")
	}
	// Pad the body to the page's nominal size.
	if pad := page.BodySize - b.Len(); pad > 0 {
		b.WriteString("<p>")
		b.WriteString(strings.Repeat("x", min(pad, 1<<20)))
		b.WriteString("</p>\n")
	}
	b.WriteString("</body>\n</html>\n")
	return []byte(b.String())
}

func pathOf(raw string) string {
	rest := raw
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[i:]
	} else {
		rest = "/"
	}
	if i := strings.IndexAny(rest, "?#"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// sanitizeInitiator keeps initiators single-token for the line-oriented
// script syntax.
func sanitizeInitiator(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
