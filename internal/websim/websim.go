// Package websim builds the synthetic web the crawls run against: a
// deterministic population of websites (the Tranco top-100K snapshots
// and the ~145K-domain malicious set) bound into a simnet.Network, each
// site serving a webdoc.Page whose scheduled requests reproduce the
// local-network behaviors the paper observed.
//
// A World is built per (crawl, OS): the paper crawled each OS at a
// different time, and sites branch on the visitor's platform, so the web
// each OS saw differs both in which sites were up (failure fate) and in
// which local-network scripts ran (ground-truth OS flags).
//
// This package is the paper's central substitution: the live Internet is
// replaced by a population seeded from the paper's published per-site
// tables (internal/groundtruth) plus rate-shaped filler, so the
// detection/classification/analysis pipeline downstream sees event
// streams with the same observable structure the authors measured.
package websim

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sync"

	"github.com/knockandtalk/knockandtalk/internal/blocklist"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// Target is one crawl destination.
type Target struct {
	Domain   string
	URL      string
	Rank     int                // Tranco rank; 0 for malicious targets
	Category blocklist.Category // "" for top-list targets
}

// World is a fully built synthetic web for one crawl campaign on one OS.
type World struct {
	Crawl   groundtruth.CrawlID
	OS      hostenv.OS
	Scale   float64
	Net     *simnet.Network
	Targets []Target
	// Whois holds registration records for the vendor hosts serving
	// profiling scripts (the §4.3.1 attribution evidence).
	Whois *whois.Registry

	fates *fateTable

	tmMu         sync.Mutex // guards tmRegistered across bind workers
	tmRegistered map[string]bool
}

// hash01 derives a deterministic value in [0, 1) from the seed and parts.
func hash01(seed uint64, parts ...string) float64 {
	return float64(hashN(seed, 1<<30, parts...)) / float64(1<<30)
}

// hashN derives a deterministic value in [0, n) from the seed and parts.
func hashN(seed uint64, n uint64, parts ...string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return h.Sum64() % n
}

// addrFor allocates a deterministic public IPv4 address for the i-th
// site, inside 60.0.0.0/6 — far from loopback and the RFC1918 ranges.
func addrFor(i int) netip.Addr {
	if i < 0 || i > 0x03FFFFFF {
		panic(fmt.Sprintf("websim: address index %d out of range", i))
	}
	v := 0x3C000000 + uint32(i) // 60.0.0.0 + i
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// cdnCount is the number of shared CDN hosts public sub-resources load
// from.
const cdnCount = 8

func cdnHost(i int) string { return fmt.Sprintf("cdn%d.webstatic.example", i) }

func cdnAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{50, 0, 0, byte(i + 1)})
}
