package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func TestRunCampaignAndManifest(t *testing.T) {
	dir := t.TempDir()
	m, err := Run(Spec{
		Name: "test", OutDir: dir, Scale: 0.002, Seed: 11, Workers: 4,
		Crawls: []groundtruth.CrawlID{groundtruth.CrawlTop2020, groundtruth.CrawlTop2021},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2020 covers three OSes, 2021 two.
	if len(m.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(m.Entries))
	}
	for _, e := range m.Entries {
		if e.Attempted == 0 || e.Successful == 0 {
			t.Errorf("empty entry: %+v", e)
		}
	}
	// Stores exist and load.
	for crawl, path := range m.Stores {
		st := store.New()
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s store missing: %v", crawl, err)
		}
		if err := st.Load(f); err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		f.Close()
		if st.NumPages() == 0 {
			t.Errorf("%s store empty", crawl)
		}
	}
	// Manifest round-trips.
	back, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "test" || len(back.Entries) != len(m.Entries) {
		t.Errorf("manifest round trip: %+v", back)
	}
}

func TestCampaignResumeIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{
		Name: "resume", OutDir: dir, Scale: 0.002, Seed: 12, Workers: 4,
		Crawls: []groundtruth.CrawlID{groundtruth.CrawlTop2020},
	}
	first, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Resume = true
	second, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed run finds everything done.
	for _, e := range second.Entries {
		if e.Attempted != 0 {
			t.Errorf("resumed run re-crawled %d targets on %s", e.Attempted, e.OS)
		}
		if e.AlreadyDone == 0 {
			t.Errorf("resumed run reports no prior work on %s", e.OS)
		}
	}
	// The store is unchanged in size.
	stFirst, stSecond := store.New(), store.New()
	loadInto := func(st *store.Store) {
		f, err := os.Open(filepath.Join(dir, string(groundtruth.CrawlTop2020)+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := st.Load(f); err != nil {
			t.Fatal(err)
		}
	}
	loadInto(stSecond)
	_ = first
	_ = stFirst
	if stSecond.NumPages() != 200*3 {
		t.Errorf("resumed store pages = %d, want 600 (200 domains × 3 OSes)", stSecond.NumPages())
	}
}

// TestCampaignWALDurableAndResumable pins the durable campaign mode:
// records commit through a per-crawl WAL directory, the canonical
// .jsonl export is still written and byte-loadable, a rerun resumes
// from the WAL without revisiting anything, and a WAL holding prior
// records refuses to run without Resume.
func TestCampaignWALDurableAndResumable(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{
		Name: "durable", OutDir: dir, Scale: 0.002, Seed: 13, Workers: 4,
		Crawls: []groundtruth.CrawlID{groundtruth.CrawlTop2020},
		WAL:    true, CheckpointEvery: 16,
	}
	first, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	attempted := 0
	for _, e := range first.Entries {
		attempted += e.Attempted
	}
	if attempted == 0 {
		t.Fatal("WAL campaign crawled nothing")
	}

	// The WAL directory is the durable copy: reopening it alone yields
	// the same records the canonical export holds.
	walDir := filepath.Join(dir, string(groundtruth.CrawlTop2020)+".wal")
	st, lg, rec, err := store.Open(walDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SegmentRecords+rec.WALRecords == 0 {
		t.Fatal("WAL directory recovered no records")
	}
	exported := store.New()
	f, err := os.Open(filepath.Join(dir, string(groundtruth.CrawlTop2020)+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := exported.Load(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if st.NumPages() != exported.NumPages() || st.NumLocals() != exported.NumLocals() {
		t.Fatalf("WAL recovery (%d pages / %d locals) != export (%d / %d)",
			st.NumPages(), st.NumLocals(), exported.NumPages(), exported.NumLocals())
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	// Without Resume, the populated WAL is refused rather than silently
	// double-committed.
	if _, err := Run(spec); err == nil {
		t.Fatal("populated WAL without Resume must be refused")
	}

	// With Resume, the rerun finds every visit done.
	spec.Resume = true
	second, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range second.Entries {
		if e.Attempted != 0 {
			t.Errorf("WAL resume re-crawled %d targets on %s", e.Attempted, e.OS)
		}
		if e.AlreadyDone == 0 {
			t.Errorf("WAL resume reports no prior work on %s", e.OS)
		}
	}
}

// TestCampaignWALUpgradesFromExport seeds an empty WAL from an older
// non-durable campaign's .jsonl export on the first Resume run.
func TestCampaignWALUpgradesFromExport(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{
		Name: "upgrade", OutDir: dir, Scale: 0.002, Seed: 14, Workers: 4,
		Crawls: []groundtruth.CrawlID{groundtruth.CrawlTop2020},
	}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	spec.WAL = true
	spec.Resume = true
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Entries {
		if e.Attempted != 0 {
			t.Errorf("upgraded run re-crawled %d targets on %s", e.Attempted, e.OS)
		}
	}
	// The WAL now carries the export's records on its own.
	st, lg, rec, err := store.Open(filepath.Join(dir, string(groundtruth.CrawlTop2020)+".wal"), store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if rec.SegmentRecords+rec.WALRecords == 0 || st.NumPages() != 200*3 {
		t.Fatalf("upgraded WAL holds %d pages (recovered %d records), want 600",
			st.NumPages(), rec.SegmentRecords+rec.WALRecords)
	}
}

func TestRunRejectsMissingOutDir(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Error("empty OutDir must be rejected")
	}
}

func TestRunRejectsCorruptResumeStore(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, string(groundtruth.CrawlTop2020)+".jsonl")
	if err := os.WriteFile(bad, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Spec{
		OutDir: dir, Scale: 0.001, Seed: 1, Resume: true,
		Crawls: []groundtruth.CrawlID{groundtruth.CrawlTop2020},
	})
	if err == nil {
		t.Error("corrupt resume store must be rejected")
	}
}

func TestLoadManifestMissingAndCorrupt(t *testing.T) {
	if _, err := LoadManifest(t.TempDir()); err == nil {
		t.Error("missing manifest must error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Error("corrupt manifest must error")
	}
}
