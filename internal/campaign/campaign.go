// Package campaign orchestrates the full measurement operation of
// Figure 1: all three crawl populations, each visited once per OS with
// no concurrent visits to the same site (the §3.1 ethics posture, which
// sequential per-OS runs guarantee), telemetry persisted per campaign,
// and a manifest recording what ran. Campaigns are resumable: the
// paper's crawls spanned weeks, so interruption is the normal case, not
// the exception.
package campaign

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// Spec configures a campaign.
type Spec struct {
	// Name labels the campaign in its manifest.
	Name string
	// OutDir receives one JSONL store per crawl plus manifest.json.
	OutDir string
	// Crawls lists the campaigns to run; nil means all three.
	Crawls []groundtruth.CrawlID
	// Scale, Seed, Workers, RetainLogs as in crawler.Config.
	Scale      float64
	Seed       uint64
	Workers    int
	RetainLogs bool
	// NetProfile names the network-condition profile every leg crawls
	// under (simnet.ProfileByName); empty or "nominal" is unimpaired.
	NetProfile string
	// Resume loads existing per-crawl stores from OutDir and skips
	// already-visited targets.
	Resume bool
	// WAL makes each crawl durable mid-leg: records commit through a
	// write-ahead log in OutDir/<crawl>.wal/, checkpointed every
	// CheckpointEvery visits, so a killed campaign resumes from its last
	// checkpoint instead of the last completed leg. With Resume, the WAL
	// directory — not the .jsonl export — is the source of truth; an
	// empty WAL falls back to the export once, so an older campaign can
	// be upgraded in place. The canonical <crawl>.jsonl is still written
	// at end of leg, byte-stable as before.
	WAL bool
	// CheckpointEvery overrides the WAL checkpoint interval in visits
	// (see crawler.Config.CheckpointEvery); 0 uses the default.
	CheckpointEvery int
	// Metrics and Tracer instrument every crawl in the campaign (see
	// crawler.Config); either also fills Entry.StageBusySeconds.
	Metrics *telemetry.Registry
	Tracer  *telemetry.Tracer
	// StageTimings collects per-stage busy time into the manifest even
	// without a registry or tracer.
	StageTimings bool
	// Health registers every crawl in the campaign as a progress leg on
	// the live operations plane (see crawler.Config.Health).
	Health *health.Tracker
	// Logger, when non-nil, emits a typed completion event per (crawl,
	// OS) leg as the campaign progresses.
	Logger *slog.Logger
}

// Entry is one (crawl, OS) manifest row.
type Entry struct {
	Crawl string `json:"crawl"`
	OS    string `json:"os"`
	// NetProfile records the network-condition profile the leg ran
	// under; omitted for nominal legs, keeping older manifests
	// byte-stable.
	NetProfile    string `json:"net_profile,omitempty"`
	Attempted     int    `json:"attempted"`
	Successful    int    `json:"successful"`
	Failed        int    `json:"failed"`
	LocalRequests int    `json:"local_requests"`
	AlreadyDone   int    `json:"already_done,omitempty"`
	// RetentionErrors counts visits whose NetLog capture failed to
	// retain (see crawler.Summary.RetentionErrors).
	RetentionErrors int           `json:"retention_errors,omitempty"`
	Elapsed         time.Duration `json:"elapsed"`
	// StageBusySeconds breaks busy time down by pipeline stage when the
	// campaign was instrumented (Spec.Metrics, Tracer, or StageTimings).
	StageBusySeconds map[string]float64 `json:"stage_busy_seconds,omitempty"`
}

// Manifest summarizes a finished campaign.
type Manifest struct {
	Name    string            `json:"name"`
	Scale   float64           `json:"scale"`
	Seed    uint64            `json:"seed"`
	Stores  map[string]string `json:"stores"` // crawl → file
	Entries []Entry           `json:"entries"`
}

// Run executes the campaign and returns its manifest. Per-crawl stores
// land in OutDir as <crawl>.jsonl.
func Run(spec Spec) (*Manifest, error) {
	if spec.OutDir == "" {
		return nil, fmt.Errorf("campaign: OutDir is required")
	}
	if err := os.MkdirAll(spec.OutDir, 0o755); err != nil {
		return nil, err
	}
	crawls := spec.Crawls
	if len(crawls) == 0 {
		crawls = []groundtruth.CrawlID{
			groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious,
		}
	}
	m := &Manifest{Name: spec.Name, Scale: spec.Scale, Seed: spec.Seed, Stores: map[string]string{}}
	for _, crawl := range crawls {
		path := filepath.Join(spec.OutDir, string(crawl)+".jsonl")
		var st *store.Store
		var lg *store.Log
		if spec.WAL {
			walDir := filepath.Join(spec.OutDir, string(crawl)+".wal")
			var rec store.Recovery
			var err error
			st, lg, rec, err = store.Open(walDir, store.LogOptions{})
			if err != nil {
				return nil, fmt.Errorf("campaign: %s: %w", crawl, err)
			}
			recovered := rec.SegmentRecords + rec.WALRecords
			if recovered > 0 && !spec.Resume {
				lg.Close()
				return nil, fmt.Errorf("campaign: %s holds %d recovered records; pass Resume or clear it", walDir, recovered)
			}
			// First durable run over an older campaign: seed the empty WAL
			// from the canonical export (the load is journaled, so the WAL
			// becomes self-contained).
			if spec.Resume && recovered == 0 {
				if err := loadExport(st, path); err != nil {
					lg.Close()
					return nil, err
				}
				// The seed is only in the WAL's write buffer so far; make
				// it durable before the crawl starts, or a crash before the
				// first mid-leg checkpoint would leave a partial journal
				// that the next resume prefers over the full export.
				if err := lg.Checkpoint(); err != nil {
					lg.Close()
					return nil, fmt.Errorf("campaign: %s: checkpointing seeded wal: %w", crawl, err)
				}
			}
		} else {
			st = store.New()
			if spec.Resume {
				if err := loadExport(st, path); err != nil {
					return nil, err
				}
			}
		}
		cfg := crawler.Config{
			Crawl: crawl, Scale: spec.Scale, Seed: spec.Seed,
			Workers: spec.Workers, RetainLogs: spec.RetainLogs, Resume: spec.Resume,
			NetProfile: spec.NetProfile,
			Metrics:    spec.Metrics, Tracer: spec.Tracer, StageTimings: spec.StageTimings,
			Health: spec.Health,
		}
		if lg != nil {
			cfg.Checkpoint = lg.Checkpoint
			cfg.CheckpointEvery = spec.CheckpointEvery
			// A WAL-backed campaign always skips completed visits on
			// rerun; revisiting would double-commit the replayed records.
			cfg.Resume = true
		}
		sums, err := crawler.RunAll(cfg, st)
		if err != nil {
			if lg != nil {
				lg.Close()
			}
			return nil, fmt.Errorf("campaign: %s: %w", crawl, err)
		}
		for _, s := range sums {
			if spec.Logger != nil {
				spec.Logger.Info("crawl complete", "summary", s)
			}
			e := Entry{
				Crawl: string(s.Crawl), OS: s.OS.String(), NetProfile: s.NetProfile,
				Attempted: s.Attempted, Successful: s.Successful, Failed: s.Failed,
				LocalRequests: s.LocalRequests, AlreadyDone: s.AlreadyDone,
				RetentionErrors: s.RetentionErrors, Elapsed: s.Elapsed,
			}
			if len(s.StageBusy) > 0 {
				e.StageBusySeconds = make(map[string]float64, len(s.StageBusy))
				for stage, d := range s.StageBusy {
					e.StageBusySeconds[stage] = d.Seconds()
				}
			}
			m.Entries = append(m.Entries, e)
		}
		f, err := os.Create(path)
		if err != nil {
			if lg != nil {
				lg.Close()
			}
			return nil, err
		}
		if err := st.Save(f); err != nil {
			f.Close()
			if lg != nil {
				lg.Close()
			}
			return nil, err
		}
		if err := f.Close(); err != nil {
			if lg != nil {
				lg.Close()
			}
			return nil, err
		}
		if lg != nil {
			// Close flushes and fsyncs whatever the last checkpoint left;
			// the WAL directory stays behind as the crash-resume source.
			if err := lg.Close(); err != nil {
				return nil, fmt.Errorf("campaign: %s wal: %w", crawl, err)
			}
		}
		m.Stores[string(crawl)] = path
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(spec.OutDir, "manifest.json"), raw, 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// loadExport loads a canonical .jsonl export into st if it exists; a
// missing file is a fresh campaign, not an error.
func loadExport(st *store.Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	if err := st.Load(f); err != nil {
		return fmt.Errorf("campaign: resuming from %s: %w", path, err)
	}
	return nil
}

// LoadManifest reads a campaign manifest back.
func LoadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("campaign: parsing manifest: %w", err)
	}
	return &m, nil
}
