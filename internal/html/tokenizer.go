// Package html is a minimal HTML tokenizer and resource extractor for
// the simulated browser: enough of the language to parse the synthetic
// web's documents — tags, attributes, text, comments, raw-text elements
// (script/style) — and to pull out the resource-bearing references
// (img/src, script/src, link/href, iframe/src, source/src) that drive
// sub-resource fetches, plus inline script bodies for the behavior
// interpreter.
//
// It is not a spec-complete HTML5 parser; it covers the constructs the
// synthetic web emits and the error tolerance a crawler needs (unclosed
// tags, attribute quoting variants, case-insensitive names).
package html

import (
	"strings"
)

// TokenType discriminates tokenizer output.
type TokenType int

// Token types.
const (
	TokenText TokenType = iota
	TokenStartTag
	TokenEndTag
	TokenSelfClosing
	TokenComment
	TokenDoctype
)

// Token is one lexical unit.
type Token struct {
	Type TokenType
	// Name is the lower-cased tag name for tag tokens.
	Name string
	// Attrs holds tag attributes, keys lower-cased, in document order.
	Attrs []Attr
	// Data is the text content for text/comment tokens, or the raw
	// body for raw-text elements delivered with their start tag.
	Data string
}

// Attr is one tag attribute.
type Attr struct {
	Key   string
	Value string
}

// Get returns the first value of the named attribute (case-insensitive
// key, already lower-cased by the tokenizer).
func (t *Token) Get(key string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextElements capture their content verbatim until the matching end
// tag.
var rawTextElements = map[string]bool{"script": true, "style": true, "title": true, "textarea": true}

// Tokenizer walks an HTML document.
type Tokenizer struct {
	src []byte
	pos int
	// pendingRaw is set after a raw-text start tag was returned; the
	// next token is its body.
	pendingRaw string
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src []byte) *Tokenizer { return &Tokenizer{src: src} }

// Next returns the next token, or false at end of input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pendingRaw != "" {
		name := z.pendingRaw
		z.pendingRaw = ""
		body := z.readRawText(name)
		return Token{Type: TokenText, Name: name, Data: body}, true
	}
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.src[z.pos] == '<' {
		return z.readTag()
	}
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TokenText, Data: string(z.src[start:z.pos])}, true
}

// readRawText consumes until </name> (case-insensitive), returning the
// body. The closing tag itself is consumed.
func (z *Tokenizer) readRawText(name string) string {
	lower := strings.ToLower(string(z.src[z.pos:]))
	end := strings.Index(lower, "</"+name)
	if end < 0 {
		body := string(z.src[z.pos:])
		z.pos = len(z.src)
		return body
	}
	body := string(z.src[z.pos : z.pos+end])
	z.pos += end
	// Consume through the '>' of the end tag.
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++
	}
	return body
}

func (z *Tokenizer) readTag() (Token, bool) {
	// z.src[z.pos] == '<'
	if strings.HasPrefix(string(z.src[z.pos:]), "<!--") {
		end := strings.Index(string(z.src[z.pos+4:]), "-->")
		if end < 0 {
			data := string(z.src[z.pos+4:])
			z.pos = len(z.src)
			return Token{Type: TokenComment, Data: data}, true
		}
		data := string(z.src[z.pos+4 : z.pos+4+end])
		z.pos += 4 + end + 3
		return Token{Type: TokenComment, Data: data}, true
	}
	if z.pos+1 < len(z.src) && z.src[z.pos+1] == '!' {
		end := z.indexByteFrom('>', z.pos)
		if end < 0 {
			z.pos = len(z.src)
			return Token{Type: TokenDoctype}, true
		}
		data := string(z.src[z.pos+2 : end])
		z.pos = end + 1
		return Token{Type: TokenDoctype, Data: data}, true
	}
	end := z.indexByteFrom('>', z.pos)
	if end < 0 {
		// Malformed trailing '<...': treat as text.
		data := string(z.src[z.pos:])
		z.pos = len(z.src)
		return Token{Type: TokenText, Data: data}, true
	}
	inner := strings.TrimSpace(string(z.src[z.pos+1 : end]))
	z.pos = end + 1
	if inner == "" {
		return Token{Type: TokenText, Data: "<>"}, true
	}
	if inner[0] == '/' {
		return Token{Type: TokenEndTag, Name: strings.ToLower(strings.TrimSpace(inner[1:]))}, true
	}
	selfClosing := strings.HasSuffix(inner, "/")
	if selfClosing {
		inner = strings.TrimSpace(inner[:len(inner)-1])
	}
	name, attrs := parseTagBody(inner)
	tok := Token{Name: name, Attrs: attrs}
	if selfClosing {
		tok.Type = TokenSelfClosing
	} else {
		tok.Type = TokenStartTag
		if rawTextElements[name] {
			z.pendingRaw = name
		}
	}
	return tok, true
}

func (z *Tokenizer) indexByteFrom(c byte, from int) int {
	for i := from; i < len(z.src); i++ {
		if z.src[i] == c {
			return i
		}
	}
	return -1
}

// parseTagBody splits "img src='x' async" into name and attributes.
func parseTagBody(s string) (string, []Attr) {
	i := 0
	for i < len(s) && !isSpace(s[i]) {
		i++
	}
	name := strings.ToLower(s[:i])
	var attrs []Attr
	for i < len(s) {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			break
		}
		// Key.
		ks := i
		for i < len(s) && s[i] != '=' && !isSpace(s[i]) {
			i++
		}
		key := strings.ToLower(s[ks:i])
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			if key != "" {
				attrs = append(attrs, Attr{Key: key}) // bare attribute
			}
			continue
		}
		i++ // skip '='
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		var val string
		if i < len(s) && (s[i] == '"' || s[i] == '\'') {
			q := s[i]
			i++
			vs := i
			for i < len(s) && s[i] != q {
				i++
			}
			val = s[vs:i]
			if i < len(s) {
				i++ // closing quote
			}
		} else {
			vs := i
			for i < len(s) && !isSpace(s[i]) {
				i++
			}
			val = s[vs:i]
		}
		attrs = append(attrs, Attr{Key: key, Value: decodeEntities(val)})
	}
	return name, attrs
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// decodeEntities resolves the handful of named character references that
// appear in attribute values in the wild, plus numeric references. It is
// deliberately small: unknown entities pass through verbatim, as
// browsers' forgiving parsers effectively do for unterminated ones.
func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	named := map[string]string{
		"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'", "nbsp": " ",
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 || end > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		name := s[i+1 : i+end]
		if rep, ok := named[name]; ok {
			b.WriteString(rep)
			i += end + 1
			continue
		}
		if len(name) > 1 && name[0] == '#' {
			digits := name[1:]
			baseVal := 0
			ok := true
			if digits[0] == 'x' || digits[0] == 'X' {
				for _, c := range digits[1:] {
					v := hexVal(byte(c))
					if v < 0 {
						ok = false
						break
					}
					baseVal = baseVal*16 + v
				}
			} else {
				for _, c := range digits {
					if c < '0' || c > '9' {
						ok = false
						break
					}
					baseVal = baseVal*10 + int(c-'0')
				}
			}
			if ok && baseVal > 0 && baseVal <= 0x10FFFF {
				b.WriteRune(rune(baseVal))
				i += end + 1
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}

// Tokens tokenizes the whole document.
func Tokens(src []byte) []Token {
	z := NewTokenizer(src)
	var out []Token
	for {
		t, ok := z.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}
