package html

import "testing"

// FuzzParse hardens the tokenizer and extractor: arbitrary bytes must
// never panic or hang, and extracted resources must have absolute URLs.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`<html><img src="/a.png"><script>x</script></html>`))
	f.Add([]byte(`<script src=//cdn/x.js>`))
	f.Add([]byte(`<<<<>>>>`))
	f.Add([]byte(`<iframe src='http://10.10.34.35/'>`))
	f.Add([]byte(`<img src="data:;base64,x"><a href="#f">`))
	f.Add([]byte("<script>never closed"))
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<16 {
			src = src[:1<<16]
		}
		doc := Parse(src, "https://base.test/dir/")
		for _, r := range doc.Resources {
			if r.URL == "" {
				t.Fatal("empty resource URL extracted")
			}
		}
	})
}
