package html

import (
	"net/url"
	"strings"
)

// ResourceKind labels what a reference loads.
type ResourceKind string

// Resource kinds the extractor recognizes.
const (
	KindImage      ResourceKind = "img"
	KindScript     ResourceKind = "script"
	KindStylesheet ResourceKind = "stylesheet"
	KindIframe     ResourceKind = "iframe"
	KindMedia      ResourceKind = "media"
)

// Resource is one external reference found in a document.
type Resource struct {
	Kind ResourceKind
	// URL is the absolute URL after resolution against the document
	// base.
	URL string
}

// InlineScript is the body of a <script> element without a src.
type InlineScript struct {
	// Type is the script element's type attribute ("" for default).
	Type string
	Body string
}

// Document is the parsed view the browser consumes.
type Document struct {
	BaseURL   string
	Title     string
	Resources []Resource
	Scripts   []InlineScript
}

// Parse extracts resources and inline scripts from an HTML document.
// Unresolvable or non-network references (data:, javascript:, fragments)
// are dropped.
func Parse(src []byte, baseURL string) *Document {
	doc := &Document{BaseURL: baseURL}
	base, err := url.Parse(baseURL)
	if err != nil {
		base = nil
	}
	toks := Tokens(src)
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch t.Type {
		case TokenStartTag, TokenSelfClosing:
			switch t.Name {
			case "img", "source", "video", "audio", "embed":
				if src, ok := t.Get("src"); ok {
					kind := KindImage
					if t.Name != "img" {
						kind = KindMedia
					}
					doc.addResource(base, kind, src)
				}
			case "script":
				if srcAttr, ok := t.Get("src"); ok {
					doc.addResource(base, KindScript, srcAttr)
					break
				}
				// Inline script: the body arrives as the next raw-text
				// token (only for non-self-closing tags).
				if t.Type == TokenStartTag && i+1 < len(toks) && toks[i+1].Type == TokenText && toks[i+1].Name == "script" {
					typ, _ := t.Get("type")
					body := strings.TrimSpace(toks[i+1].Data)
					if body != "" {
						doc.Scripts = append(doc.Scripts, InlineScript{Type: typ, Body: body})
					}
					i++
				}
			case "link":
				rel, _ := t.Get("rel")
				if strings.EqualFold(rel, "stylesheet") {
					if href, ok := t.Get("href"); ok {
						doc.addResource(base, KindStylesheet, href)
					}
				}
			case "iframe", "frame":
				if src, ok := t.Get("src"); ok {
					doc.addResource(base, KindIframe, src)
				}
			case "title":
				if t.Type == TokenStartTag && i+1 < len(toks) && toks[i+1].Type == TokenText && toks[i+1].Name == "title" {
					doc.Title = strings.TrimSpace(toks[i+1].Data)
					i++
				}
			}
		}
	}
	return doc
}

func (d *Document) addResource(base *url.URL, kind ResourceKind, ref string) {
	ref = strings.TrimSpace(ref)
	if ref == "" || strings.HasPrefix(ref, "#") ||
		strings.HasPrefix(strings.ToLower(ref), "data:") ||
		strings.HasPrefix(strings.ToLower(ref), "javascript:") {
		return
	}
	u, err := url.Parse(ref)
	if err != nil {
		return
	}
	if base != nil {
		u = base.ResolveReference(u)
	}
	if u.Scheme == "" || u.Host == "" {
		return
	}
	d.Resources = append(d.Resources, Resource{Kind: kind, URL: u.String()})
}
