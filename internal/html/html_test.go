package html

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizerBasics(t *testing.T) {
	src := []byte(`<!DOCTYPE html><html><head><title>Hi</title></head>` +
		`<body class="main" data-x='1' async>text<!-- note --><img src="/a.png"/></body></html>`)
	toks := Tokens(src)
	// Doctype, start html, start head, start title, raw title text
	// (which consumes its own end tag), end head, start body, text,
	// comment, self-closing img, end body, end html.
	if len(toks) != 12 {
		t.Fatalf("token count = %d: %+v", len(toks), toks)
	}
	if toks[0].Type != TokenDoctype {
		t.Error("missing doctype")
	}
	body := toks[6]
	if body.Type != TokenStartTag || body.Name != "body" {
		t.Fatalf("body token = %+v", body)
	}
	if v, ok := body.Get("class"); !ok || v != "main" {
		t.Errorf("class attr = %q, %v", v, ok)
	}
	if v, ok := body.Get("data-x"); !ok || v != "1" {
		t.Errorf("single-quoted attr = %q, %v", v, ok)
	}
	if _, ok := body.Get("async"); !ok {
		t.Error("bare attribute lost")
	}
	if toks[8].Type != TokenComment || strings.TrimSpace(toks[8].Data) != "note" {
		t.Errorf("comment = %+v", toks[8])
	}
	if toks[9].Type != TokenSelfClosing || toks[9].Name != "img" {
		t.Errorf("img = %+v", toks[9])
	}
}

func TestTokenizerRawScript(t *testing.T) {
	src := []byte(`<script>if (a < b) { x = "</div>"; }</script>`)
	// Note: a real raw-text scanner stops at the first "</script"; the
	// inner string above contains "</div>", which must NOT end it.
	toks := Tokens(src)
	if len(toks) < 2 || toks[0].Name != "script" || toks[1].Type != TokenText {
		t.Fatalf("tokens = %+v", toks)
	}
	if !strings.Contains(toks[1].Data, `if (a < b)`) {
		t.Errorf("script body mangled: %q", toks[1].Data)
	}
}

func TestTokenizerMalformedTolerance(t *testing.T) {
	cases := []string{
		"<unclosed",
		"text < not a tag",
		"<>",
		"<img src=>",
		"<a href='unterminated>",
		"<!-- unterminated",
		"<script>never closed",
	}
	for _, c := range cases {
		// Must not panic or loop forever.
		_ = Tokens([]byte(c))
	}
}

func TestParseExtractsResources(t *testing.T) {
	src := []byte(`<html><head>
		<title>T</title>
		<link rel="stylesheet" href="/main.css">
		<link rel="icon" href="/fav.ico">
		<script src="https://cdn0.webstatic.example/lib.js"></script>
		<script>after 100ms</script>
	</head><body>
		<img src="img/banner.jpg">
		<img src="data:image/png;base64,xyz">
		<iframe src="http://10.10.34.35/"></iframe>
		<video><source src="/clip.mp4"></video>
		<a href="#frag">x</a>
	</body></html>`)
	doc := Parse(src, "https://site.test/sub/")
	if doc.Title != "T" {
		t.Errorf("title = %q", doc.Title)
	}
	want := map[string]ResourceKind{
		"https://site.test/main.css":            KindStylesheet,
		"https://cdn0.webstatic.example/lib.js": KindScript,
		"https://site.test/sub/img/banner.jpg":  KindImage,
		"http://10.10.34.35/":                   KindIframe,
		"https://site.test/clip.mp4":            KindMedia,
	}
	if len(doc.Resources) != len(want) {
		t.Fatalf("resources = %+v", doc.Resources)
	}
	for _, r := range doc.Resources {
		if want[r.URL] != r.Kind {
			t.Errorf("resource %q kind %q unexpected", r.URL, r.Kind)
		}
	}
	if len(doc.Scripts) != 1 || doc.Scripts[0].Body != "after 100ms" {
		t.Errorf("inline scripts = %+v", doc.Scripts)
	}
	// rel=icon, data: URI, and fragments are all excluded.
}

func TestParseRelativeResolution(t *testing.T) {
	doc := Parse([]byte(`<img src="../up.png"><img src="//cdn.example/x.png">`), "https://a.test/d/e/")
	if len(doc.Resources) != 2 {
		t.Fatalf("resources = %+v", doc.Resources)
	}
	if doc.Resources[0].URL != "https://a.test/d/up.png" {
		t.Errorf("relative = %q", doc.Resources[0].URL)
	}
	if doc.Resources[1].URL != "https://cdn.example/x.png" {
		t.Errorf("protocol-relative = %q", doc.Resources[1].URL)
	}
}

// Property: the tokenizer terminates and consumes all input for any
// byte string.
func TestQuickTokenizerTotal(t *testing.T) {
	f := func(src []byte) bool {
		if len(src) > 4096 {
			src = src[:4096]
		}
		toks := Tokens(src)
		return len(toks) <= len(src)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEntityDecodingInAttributes(t *testing.T) {
	doc := Parse([]byte(`<img src="/x?a=1&amp;b=2"><img src="/y&#47;z.png">`), "http://h.test/")
	if len(doc.Resources) != 2 {
		t.Fatalf("resources = %+v", doc.Resources)
	}
	if doc.Resources[0].URL != "http://h.test/x?a=1&b=2" {
		t.Errorf("named entity: %q", doc.Resources[0].URL)
	}
	if doc.Resources[1].URL != "http://h.test/y/z.png" {
		t.Errorf("numeric entity: %q", doc.Resources[1].URL)
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"plain":         "plain",
		"a&amp;b":       "a&b",
		"&lt;x&gt;":     "<x>",
		"&quot;q&quot;": `"q"`,
		"&#65;&#x42;":   "AB",
		"&unknown;":     "&unknown;",
		"&amp":          "&amp", // unterminated
		"&#xZZ;":        "&#xZZ;",
		"tail&":         "tail&",
		"&#0;":          "&#0;", // NUL rejected
	}
	for in, want := range cases {
		if got := decodeEntities(in); got != want {
			t.Errorf("decodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}
