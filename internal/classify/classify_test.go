package classify

import (
	"fmt"
	"strings"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// reqsFromRow synthesizes the request set a crawl would observe for a
// ground-truth localhost row (all probes, all ports, wildcards
// expanded), the same expansion websim performs.
func reqsFromRow(row groundtruth.LocalhostRow) []store.LocalRequest {
	var out []store.LocalRequest
	for _, probe := range row.Probes {
		path := strings.ReplaceAll(probe.Path, "*", "x1f3a")
		for _, port := range probe.Ports {
			out = append(out, store.LocalRequest{
				Domain: row.Domain,
				URL:    fmt.Sprintf("%s://localhost:%d%s", probe.Scheme, port, path),
				Scheme: probe.Scheme,
				Host:   "localhost",
				Port:   port,
				Path:   path,
				Dest:   "localhost",
				ViaRedirect: row.Class == groundtruth.ClassDevError &&
					(row.Domain == "romadecade.org" || row.Domain == "fincaraiz.com.co"),
			})
		}
	}
	return out
}

func reqsFromLANRow(row groundtruth.LANRow) []store.LocalRequest {
	path := strings.ReplaceAll(row.Path, "*", "x1f3a")
	return []store.LocalRequest{{
		Domain: row.Domain,
		URL:    fmt.Sprintf("%s://%s:%d%s", row.Scheme, row.Addr, row.Port, path),
		Scheme: row.Scheme,
		Host:   row.Addr,
		Port:   row.Port,
		Path:   path,
		Dest:   "lan",
	}}
}

// TestClassifierMatchesGroundTruth is the classifier's acceptance test:
// every per-site row the paper published must classify into the class
// the paper assigned.
func TestClassifierMatchesGroundTruth(t *testing.T) {
	var rows []groundtruth.LocalhostRow
	rows = append(rows, groundtruth.Top2020Localhost()...)
	rows = append(rows, groundtruth.Top2021NewLocalhost()...)
	rows = append(rows, groundtruth.MaliciousLocalhost()...)
	for _, row := range rows {
		got := Site(reqsFromRow(row))
		if got.Class != row.Class {
			t.Errorf("%s: classified %v (%s), paper says %v", row.Domain, got.Class, got.Signature, row.Class)
		}
	}
}

func TestLANClassifierMatchesGroundTruth(t *testing.T) {
	var rows []groundtruth.LANRow
	rows = append(rows, groundtruth.Top2020LAN()...)
	rows = append(rows, groundtruth.Top2021LAN()...)
	rows = append(rows, groundtruth.MaliciousLAN()...)
	for _, row := range rows {
		got := LANSite(reqsFromLANRow(row))
		wantDev := row.DevError
		if (got.Class == groundtruth.ClassDevError) != wantDev {
			t.Errorf("%s: classified %v (%s), paper dev-error=%v", row.Domain, got.Class, got.Signature, wantDev)
		}
	}
}

func TestThreatMetrixSignature(t *testing.T) {
	var tmRow groundtruth.LocalhostRow
	for _, r := range groundtruth.Top2020Localhost() {
		if r.Domain == "ebay.com" {
			tmRow = r
		}
	}
	v := Site(reqsFromRow(tmRow))
	if v.Class != groundtruth.ClassFraudDetection || v.Signature != "threatmetrix" {
		t.Errorf("ebay.com = %+v", v)
	}
	// A partial observation (half the ports) still matches.
	partial := reqsFromRow(tmRow)[:8]
	if v := Site(partial); v.Signature != "threatmetrix" {
		t.Errorf("partial TM scan = %+v", v)
	}
	// A tiny overlap does not.
	if v := Site(reqsFromRow(tmRow)[:2]); v.Signature == "threatmetrix" {
		t.Error("2-port WSS probe should not match ThreatMetrix")
	}
}

func TestBigIPSignature(t *testing.T) {
	var botRow groundtruth.LocalhostRow
	for _, r := range groundtruth.Top2020Localhost() {
		if r.Class == groundtruth.ClassBotDetection {
			botRow = r
			break
		}
	}
	v := Site(reqsFromRow(botRow))
	if v.Class != groundtruth.ClassBotDetection || v.Signature != "bigip-asm-bot-defense" {
		t.Errorf("bot row = %+v", v)
	}
}

func TestDevErrorHeuristics(t *testing.T) {
	cases := []struct {
		path, wantSig string
	}{
		{"/wp-content/uploads/2018/06/img.jpg", "dev-remnant"},
		{"/livereload.js", "dev-remnant"},
		{"/sockjs-node/info?t=123", "dev-remnant"},
		{"/xook.js", "dev-remnant"},
		{"/NonExistentImage48762.gif", "dev-remnant"},
		{"/Silk%20Static/clip.mp4", "local-file-fetch"},
		{"/getversionjpg?hash=abc", "local-service-remnant"},
		{"/record/state", "local-service-remnant"},
		{"/", "absolute-local-url"},
	}
	for _, c := range cases {
		v := Site([]store.LocalRequest{{
			Domain: "x.example", Scheme: "http", Host: "127.0.0.1", Port: 8080,
			Path: c.path, Dest: "localhost",
		}})
		if v.Class != groundtruth.ClassDevError || v.Signature != c.wantSig {
			t.Errorf("path %q = %+v, want dev error via %s", c.path, v, c.wantSig)
		}
	}
}

func TestUnknownHeuristics(t *testing.T) {
	// A bare WS probe to unlisted ports stays unknown.
	v := Site([]store.LocalRequest{
		{Domain: "usnetads.com", Scheme: "ws", Host: "localhost", Port: 2687, Path: "/", Dest: "localhost"},
		{Domain: "usnetads.com", Scheme: "ws", Host: "localhost", Port: 26876, Path: "/", Dest: "localhost"},
	})
	if v.Class != groundtruth.ClassUnknown || v.Signature != "ws-probe" {
		t.Errorf("ws probe = %+v", v)
	}
	// A wide port scan with no known signature is unknown profiling.
	var scan []store.LocalRequest
	for p := uint16(7000); p < 7020; p++ {
		scan = append(scan, store.LocalRequest{Domain: "scan.example", Scheme: "http", Host: "localhost", Port: p, Path: "/", Dest: "localhost"})
	}
	if v := Site(scan); v.Signature != "port-scan" {
		t.Errorf("wide scan = %+v", v)
	}
}

func TestRedirectHeuristic(t *testing.T) {
	v := Site([]store.LocalRequest{{
		Domain: "romadecade.org", Scheme: "http", Host: "127.0.0.1", Port: 80,
		Path: "/", Dest: "localhost", ViaRedirect: true,
	}})
	if v.Class != groundtruth.ClassDevError || v.Signature != "redirect-to-loopback" {
		t.Errorf("redirect = %+v", v)
	}
}

func TestEmptyInput(t *testing.T) {
	if v := Site(nil); v.Signature != "no-traffic" {
		t.Errorf("Site(nil) = %+v", v)
	}
	if v := LANSite(nil); v.Signature != "no-traffic" {
		t.Errorf("LANSite(nil) = %+v", v)
	}
}

func TestByDomainSplitsDests(t *testing.T) {
	reqs := []store.LocalRequest{
		{Domain: "a.example", Scheme: "wss", Host: "localhost", Port: 5939, Path: "/", Dest: "localhost"},
		{Domain: "b.example", Scheme: "http", Host: "10.0.0.5", Port: 80, Path: "/wp-content/x.jpg", Dest: "lan"},
	}
	got := ByDomain(reqs)
	if len(got) != 2 {
		t.Fatalf("ByDomain = %v", got)
	}
	if got["b.example"].Class != groundtruth.ClassDevError {
		t.Errorf("LAN site = %+v", got["b.example"])
	}
}

func TestClassifierStableUnderOrder(t *testing.T) {
	var tmRow groundtruth.LocalhostRow
	for _, r := range groundtruth.Top2020Localhost() {
		if r.Domain == "samsungcard.com" {
			tmRow = r
		}
	}
	reqs := reqsFromRow(tmRow)
	a := Site(reqs)
	// Reverse order.
	rev := make([]store.LocalRequest, len(reqs))
	for i, r := range reqs {
		rev[len(reqs)-1-i] = r
	}
	b := Site(rev)
	if a != b {
		t.Errorf("verdict depends on request order: %+v vs %+v", a, b)
	}
	if a.Class != groundtruth.ClassNativeApp {
		t.Errorf("samsungcard = %+v", a)
	}
}

func TestCorroborateWithWhois(t *testing.T) {
	reg := whois.NewRegistry()
	reg.Add(whois.Record{Domain: "ebay-us.com", Registrant: whois.ThreatMetrixOrg})

	var tmRow groundtruth.LocalhostRow
	for _, r := range groundtruth.Top2020Localhost() {
		if r.Domain == "ebay.com" {
			tmRow = r
		}
	}
	reqs := reqsFromRow(tmRow)
	for i := range reqs {
		reqs[i].Initiator = "blob:threatmetrix:ebay-us.com"
	}
	v := Corroborate(Site(reqs), reqs, reg)
	if v.Corroboration != "whois:ebay-us.com=ThreatMetrix Inc." {
		t.Errorf("corroboration = %q", v.Corroboration)
	}
	// Unregistered host: no corroboration, verdict otherwise unchanged.
	reg2 := whois.NewRegistry()
	v2 := Corroborate(Site(reqs), reqs, reg2)
	if v2.Corroboration != "" || v2.Class != groundtruth.ClassFraudDetection {
		t.Errorf("uncorroborated verdict = %+v", v2)
	}
	// Non-fraud verdicts pass through.
	dev := Site([]store.LocalRequest{{Domain: "x", Scheme: "http", Host: "127.0.0.1", Port: 80, Path: "/wp-content/a.jpg", Dest: "localhost"}})
	if got := Corroborate(dev, nil, reg); got != dev {
		t.Errorf("non-fraud verdict modified: %+v", got)
	}
	// Nil registry is safe.
	if got := Corroborate(v, reqs, nil); got.Corroboration != v.Corroboration {
		t.Error("nil registry mishandled")
	}
}
