// Package classify reproduces the behavioral taxonomy of §4.3: given the
// local-network requests one site generated (across all OSes it was
// crawled on), it decides why the site is talking to the local network —
// fraud detection (ThreatMetrix), bot detection (BIG-IP ASM Bot
// Defense), native-application communication, developer error, or
// unknown.
//
// The classifier works the way the paper's manual investigation did,
// mechanized: a catalogue of known third-party and native-application
// signatures (port sets, paths, and schemes) is checked first, then
// generic heuristics (port-scan shape, development-remnant paths,
// redirects to loopback) decide the rest.
package classify

import (
	"sort"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/portdb"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// Verdict is the classification of one site's local traffic.
type Verdict struct {
	Class groundtruth.Class
	// Signature names the matched rule (e.g. "threatmetrix",
	// "discord-rpc", "wp-remnant").
	Signature string
	// Corroboration carries independent attribution evidence, e.g. the
	// WHOIS registrant of the script host (set by Corroborate).
	Corroboration string
}

// evidence is the classifier's digested view of a site's requests.
type evidence struct {
	ports     map[uint16]bool
	schemes   map[string]bool
	paths     []string
	redirect  bool // any finding arrived via redirect
	wsOnly    bool
	httpRoots bool // http(s) request(s) to the root path
}

func digest(reqs []store.LocalRequest) evidence {
	ev := evidence{ports: map[uint16]bool{}, schemes: map[string]bool{}, wsOnly: len(reqs) > 0}
	seenPath := map[string]bool{}
	for _, r := range reqs {
		ev.ports[r.Port] = true
		ev.schemes[r.Scheme] = true
		if !seenPath[r.Path] {
			seenPath[r.Path] = true
			ev.paths = append(ev.paths, r.Path)
		}
		if r.ViaRedirect {
			ev.redirect = true
		}
		if r.Scheme != "ws" && r.Scheme != "wss" {
			ev.wsOnly = false
		}
		if (r.Scheme == "http" || r.Scheme == "https") && rootish(r.Path) {
			ev.httpRoots = true
		}
	}
	sort.Strings(ev.paths)
	return ev
}

func rootish(path string) bool {
	return path == "/" || path == "" || strings.HasPrefix(path, "/?")
}

func (ev evidence) portsWithin(set []uint16) bool {
	allowed := map[uint16]bool{}
	for _, p := range set {
		allowed[p] = true
	}
	for p := range ev.ports {
		if !allowed[p] {
			return false
		}
	}
	return true
}

func (ev evidence) portOverlap(set []uint16) int {
	n := 0
	for _, p := range set {
		if ev.ports[p] {
			n++
		}
	}
	return n
}

func (ev evidence) anyPathContains(substrs ...string) bool {
	for _, p := range ev.paths {
		for _, s := range substrs {
			if strings.Contains(p, s) {
				return true
			}
		}
	}
	return false
}

func (ev evidence) anyPathHasExt(exts ...string) bool {
	for _, p := range ev.paths {
		clean := p
		if i := strings.IndexAny(clean, "?#"); i >= 0 {
			clean = clean[:i]
		}
		for _, e := range exts {
			if strings.HasSuffix(clean, e) {
				return true
			}
		}
	}
	return false
}

// signature is one catalogue entry.
type signature struct {
	name  string
	class groundtruth.Class
	match func(ev evidence) bool
}

// portsIn reports whether every probed port lies in the set and at least
// min of them were seen.
func portSetSig(name string, class groundtruth.Class, scheme string, set []uint16, min int) signature {
	return signature{name: name, class: class, match: func(ev evidence) bool {
		return ev.schemes[scheme] && ev.portsWithin(set) && ev.portOverlap(set) >= min
	}}
}

// catalogue lists the known signatures, most specific first. It is the
// mechanized form of the paper's §4.3 attributions and Appendix A.
var catalogue = []signature{
	// LexisNexis ThreatMetrix: WSS scan of the remote-desktop port set
	// on path "/" (§4.3.1). Phishing pages that cloned a protected site
	// match the same signature.
	portSetSig("threatmetrix", groundtruth.ClassFraudDetection, "wss", portdb.ThreatMetrixPorts(), 8),

	// F5 BIG-IP ASM Bot Defense: HTTP scan of malware/automation ports
	// (§4.3.2).
	portSetSig("bigip-asm-bot-defense", groundtruth.ClassBotDetection, "http", portdb.BigIPPorts(), 4),

	// INCA nProtect Online Security + Hancom AnySign (samsungcard):
	// HTTPS to 14440-9 and WSS to the AnySign ports (Appendix A).
	{name: "nprotect-anysign", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		anySign := []uint16{10531, 31027, 31029}
		nProtect := groundtruth.PortRange(14440, 14449)
		return ev.portOverlap(nProtect) >= 3 || (ev.schemes["wss"] && ev.portsWithin(append(anySign, nProtect...)) && ev.portOverlap(anySign) >= 2)
	}},

	// Discord RPC port walk: ws on 6463-6472, path /?v=1 (cponline.pw,
	// runeline.com).
	{name: "discord-rpc", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.schemes["ws"] && ev.portsWithin(groundtruth.PortRange(6463, 6472)) && ev.anyPathContains("?v=1")
	}},

	// FACEIT anti-cheat client (ws 28337) vs. the fsist.com.br local
	// certificate service on the same port (path decides).
	{name: "faceit-client", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.schemes["ws"] && ev.portsWithin([]uint16{28337}) && !ev.anyPathContains("getCertificados")
	}},

	// GameHouse/Zylom game manager: /v1/init.json on 12071-2/17021/27021.
	{name: "gamehouse-manager", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.anyPathContains("/v1/init.json")
	}},

	// iWin games client: /version on 2080-2082.
	{name: "iwin-client", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.portsWithin(groundtruth.PortRange(2080, 2082)) && ev.anyPathContains("/version")
	}},

	// Screenleap screen-sharing client.
	{name: "screenleap-client", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.portsWithin([]uint16{5320}) && ev.anyPathContains("/status")
	}},

	// Ace Stream media client.
	{name: "acestream-client", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.anyPathContains("/webui/api/service")
	}},

	// trustdice.win local client: /socket.io handshakes on 50005-56005.
	{name: "trustdice-client", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.portsWithin([]uint16{50005, 51505, 53005, 54505, 56005}) && ev.anyPathContains("/socket.io")
	}},

	// games.lol launcher check.
	{name: "gameslol-launcher", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.schemes["ws"] && ev.portsWithin([]uint16{60202}) && ev.anyPathContains("/check")
	}},

	// iQIYI/PPS video client probe (2021 crawl).
	{name: "iqiyi-client", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.anyPathContains("/get_client_ver")
	}},

	// Uzbek e-signature middleware (soliqservis.uz, didox.uz).
	{name: "cryptapi-esign", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.portsWithin([]uint16{64443}) && ev.anyPathContains("/service/cryptapi")
	}},

	// Thunder (Xunlei) download manager JS library (§4.3.3).
	{name: "thunder-client", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.anyPathContains("/get_thunder_version")
	}},

	// GNWay remote-access client (ws 38681-38687).
	{name: "gnway-client", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.schemes["ws"] && ev.portsWithin(groundtruth.PortRange(38681, 38687)) && ev.portOverlap(groundtruth.PortRange(38681, 38687)) >= 2
	}},

	// Local socket.io handshake endpoints that are not file fetches
	// (trustdice-style native bridges, e.g. mcgeeandco.com).
	{name: "socketio-bridge", class: groundtruth.ClassNativeApp, match: func(ev evidence) bool {
		return ev.anyPathContains("/socket.io") && !ev.anyPathHasExt(".js")
	}},

	// BitTorrent/Hola-style local client range 6880-6889: the paper
	// could not determine the purpose (Appendix C).
	{name: "local-6880-range", class: groundtruth.ClassUnknown, match: func(ev evidence) bool {
		return ev.portsWithin(groundtruth.PortRange(6880, 6889))
	}},
}

// Site classifies one site's localhost traffic. reqs must be non-empty
// and belong to a single domain (any mix of OSes and crawls).
func Site(reqs []store.LocalRequest) Verdict {
	if len(reqs) == 0 {
		return Verdict{Class: groundtruth.ClassUnknown, Signature: "no-traffic"}
	}
	ev := digest(reqs)
	for _, sig := range catalogue {
		if sig.match(ev) {
			return Verdict{Class: sig.class, Signature: sig.name}
		}
	}

	// Generic port-scan shape: many distinct ports, root path, no known
	// signature — profiling of unknown purpose (wowreality.info).
	if len(ev.ports) >= 15 && !ev.anyPathHasExt(".jpg", ".png", ".gif", ".js", ".css") {
		return Verdict{Class: groundtruth.ClassUnknown, Signature: "port-scan"}
	}

	// Development remnants: files and tooling endpoints left pointing at
	// the developer's machine (§4.3.4, Appendix B).
	devMarkers := []string{
		"/wp-content/", "/wp-includes/", "livereload.js", "/sockjs-node/",
		"sockjs.min.js", "xook.js", "NonExistentImage", "/node_modules/",
	}
	if ev.anyPathContains(devMarkers...) {
		return Verdict{Class: groundtruth.ClassDevError, Signature: "dev-remnant"}
	}
	if ev.anyPathHasExt(".jpg", ".jpeg", ".png", ".gif", ".ico", ".css", ".js", ".json",
		".html", ".mp4", ".ogg", ".svg", ".woff", ".txt") {
		return Verdict{Class: groundtruth.ClassDevError, Signature: "local-file-fetch"}
	}
	if ev.redirect {
		return Verdict{Class: groundtruth.ClassDevError, Signature: "redirect-to-loopback"}
	}

	// WebSocket probes to unknown ports with no path information remain
	// unexplained (usaonlineclassifieds.com, usnetads.com).
	if ev.wsOnly {
		return Verdict{Class: groundtruth.ClassUnknown, Signature: "ws-probe"}
	}

	// HTTP(S) to a non-root path on localhost: a local service endpoint
	// left in production code (zakupki, interbank, phonearena, ...).
	if !ev.httpRoots || len(ev.paths) > 1 {
		return Verdict{Class: groundtruth.ClassDevError, Signature: "local-service-remnant"}
	}

	// Bare HTTP(S) fetch of the localhost root: an absolute local URL
	// shipped to production (tonyhealy.co.za, filemail.com, the rakuten
	// clones).
	return Verdict{Class: groundtruth.ClassDevError, Signature: "absolute-local-url"}
}

// LANSite classifies one site's LAN traffic: developer error for
// resource fetches from private addresses, unknown for the bare-root
// iframe pattern (which Appendix C links to censorship infrastructure in
// the 10.10.34.0/24 range).
func LANSite(reqs []store.LocalRequest) Verdict {
	if len(reqs) == 0 {
		return Verdict{Class: groundtruth.ClassUnknown, Signature: "no-traffic"}
	}
	ev := digest(reqs)
	censorship := false
	for _, r := range reqs {
		if strings.HasPrefix(r.Host, "10.10.34.") {
			censorship = true
		}
	}
	if censorship && ev.httpRoots {
		return Verdict{Class: groundtruth.ClassUnknown, Signature: "censorship-iframe"}
	}
	if ev.httpRoots && len(ev.paths) == 1 {
		return Verdict{Class: groundtruth.ClassUnknown, Signature: "lan-root-fetch"}
	}
	return Verdict{Class: groundtruth.ClassDevError, Signature: "lan-dev-remnant"}
}

// ByDomain groups requests by domain and classifies each group,
// splitting localhost and LAN destinations as the paper does (no site
// overlapped both sets in either crawl).
func ByDomain(reqs []store.LocalRequest) map[string]Verdict {
	localhost := map[string][]store.LocalRequest{}
	lan := map[string][]store.LocalRequest{}
	for _, r := range reqs {
		if r.Dest == "lan" {
			lan[r.Domain] = append(lan[r.Domain], r)
		} else {
			localhost[r.Domain] = append(localhost[r.Domain], r)
		}
	}
	out := make(map[string]Verdict, len(localhost)+len(lan))
	for d, rs := range localhost {
		out[d] = Site(rs)
	}
	for d, rs := range lan {
		if _, dup := out[d]; !dup {
			out[d] = LANSite(rs)
		}
	}
	return out
}
