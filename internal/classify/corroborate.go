package classify

import (
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/whois"
)

// tmInitiatorPrefix matches the provenance tag the browser records for
// probes issued by a vendor-script-generated blob.
const tmInitiatorPrefix = "blob:threatmetrix:"

// Corroborate augments a fraud-detection verdict with registrant
// evidence, the way the paper's §4.3.1 investigation did: the probes'
// initiating script loads from an external host, and a WHOIS lookup on
// that host reveals the ThreatMetrix Inc. organization. Verdicts of
// other classes pass through unchanged.
func Corroborate(v Verdict, reqs []store.LocalRequest, registry *whois.Registry) Verdict {
	if v.Class != groundtruth.ClassFraudDetection || registry == nil {
		return v
	}
	for _, r := range reqs {
		host, ok := strings.CutPrefix(r.Initiator, tmInitiatorPrefix)
		if !ok {
			continue
		}
		if rec, found := registry.Lookup(host); found {
			v.Corroboration = "whois:" + host + "=" + rec.Registrant
			return v
		}
	}
	return v
}
