package report

import (
	"fmt"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
)

// DegradationTable renders the detection-degradation sweep: one row per
// network-condition profile, detection and classification rates side by
// side with the nominal baseline (the first row) so the decay under
// impairment reads straight down the columns.
func DegradationTable(outcomes []analysis.ProfileOutcome) string {
	t := newTable("Detection degradation under network impairment")
	t.row("Profile", "Visits", "Load fail", "Localhost det.", "LAN det.", "Classified", "vs nominal")
	var base float64
	for i, o := range outcomes {
		if i == 0 {
			base = o.DetectionRate()
		}
		delta := "-"
		if i > 0 && base > 0 {
			delta = fmt.Sprintf("%+.1fpp", 100*(o.DetectionRate()-base))
		}
		t.row(o.Profile,
			fmt.Sprint(o.Visits),
			pct(o.FailedLoads, o.Visits),
			fmt.Sprintf("%d/%d (%s)", o.Detected, o.Expected, pct(o.Detected, o.Expected)),
			fmt.Sprintf("%d/%d (%s)", o.LANDetected, o.LANExpected, pct(o.LANDetected, o.LANExpected)),
			fmt.Sprintf("%d/%d (%s)", o.ClassMatched, o.Detected, pct(o.ClassMatched, o.Detected)),
			delta,
		)
	}
	return t.String()
}
