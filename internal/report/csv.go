package report

import (
	"fmt"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// CSV exports of the figure series, for replotting with external tools.

// RankCDFCSV emits "os,rank,cdf" rows for Figure 3/9.
func RankCDFCSV(st *store.Store, crawl groundtruth.CrawlID) string {
	sites := analysis.LocalSites(st, crawl, "localhost")
	var b strings.Builder
	b.WriteString("os,rank,cdf\n")
	for _, os := range osRows(crawl) {
		for _, p := range analysis.RankCDF(sites, os.set) {
			fmt.Fprintf(&b, "%s,%.0f,%.6f\n", os.name, p.X, p.Y)
		}
	}
	return b.String()
}

// DelayCDFCSV emits "os,delay_seconds,cdf" rows for Figures 5-7.
func DelayCDFCSV(st *store.Store, crawl groundtruth.CrawlID, dest string) string {
	sites := analysis.LocalSites(st, crawl, dest)
	var b strings.Builder
	b.WriteString("os,delay_seconds,cdf\n")
	for _, os := range osRows(crawl) {
		for _, p := range analysis.DelayCDF(sites, os.set) {
			fmt.Fprintf(&b, "%s,%.3f,%.6f\n", os.name, p.X, p.Y)
		}
	}
	return b.String()
}

// RollupCSV emits "os,scheme,requests,ports" rows for Figures 4/8, in
// the same deterministic scheme order the figure prints (request count
// descending, then scheme name).
func RollupCSV(st *store.Store, crawl groundtruth.CrawlID) string {
	var b strings.Builder
	b.WriteString("os,scheme,requests,ports\n")
	for _, os := range osRows(crawl) {
		r := analysis.SchemeRollup(st, crawl, os.name, "localhost")
		for _, scheme := range schemesByCount(r.ByScheme) {
			fmt.Fprintf(&b, "%s,%s,%d,%s\n", os.name, scheme, r.ByScheme[scheme], strings.ReplaceAll(portsCompact(r.Ports[scheme]), ",", ";"))
		}
	}
	return b.String()
}

// VennCSV emits "region,sites" rows for Figure 2.
func VennCSV(st *store.Store, crawl groundtruth.CrawlID) string {
	venn := analysis.Venn(analysis.LocalSites(st, crawl, "localhost"))
	var b strings.Builder
	b.WriteString("region,sites\n")
	for _, r := range []struct {
		label string
		set   groundtruth.OSSet
	}{
		{"windows-only", groundtruth.OSWindows},
		{"linux-only", groundtruth.OSLinux},
		{"mac-only", groundtruth.OSMac},
		{"windows-linux", groundtruth.OSWL},
		{"windows-mac", groundtruth.OSWM},
		{"linux-mac", groundtruth.OSLM},
		{"all", groundtruth.OSAll},
	} {
		fmt.Fprintf(&b, "%s,%d\n", r.label, venn[r.set])
	}
	return b.String()
}
