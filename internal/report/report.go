// Package report renders the reproduced tables and figures as text, one
// function per table/figure of the paper. Figures (overlap diagrams,
// CDFs, protocol/port sunbursts) are rendered as the data series behind
// them: region counts, quantile grids, and scheme/port rollups.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/portdb"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// table is a small helper around tabwriter.
type table struct {
	b  strings.Builder
	tw *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	fmt.Fprintf(&t.b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	t.tw = tabwriter.NewWriter(&t.b, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.tw, strings.Join(cells, "\t"))
}

func (t *table) String() string {
	t.tw.Flush()
	return t.b.String()
}

func pct(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// Table1 renders the crawl statistics.
func Table1(st *store.Store) string {
	t := newTable("Table 1: Web crawl statistics")
	t.row("Crawl", "OS", "# success", "# failed", "NAME_NOT_RESOLVED", "CONN_REFUSED", "CONN_RESET", "CERT_CN_INVALID", "Others")
	for _, r := range analysis.CrawlTable(st) {
		t.row(string(r.Crawl), r.OS,
			fmt.Sprintf("%d (%s)", r.Successful, pct(r.Successful, r.Total())),
			fmt.Sprintf("%d (%s)", r.Failed, pct(r.Failed, r.Total())),
			fmt.Sprintf("%d (%s)", r.NameNotResolved, pct(r.NameNotResolved, r.Failed)),
			fmt.Sprintf("%d (%s)", r.ConnRefused, pct(r.ConnRefused, r.Failed)),
			fmt.Sprintf("%d (%s)", r.ConnReset, pct(r.ConnReset, r.Failed)),
			fmt.Sprintf("%d (%s)", r.CertCNInvalid, pct(r.CertCNInvalid, r.Failed)),
			fmt.Sprintf("%d (%s)", r.Others, pct(r.Others, r.Failed)),
		)
	}
	return t.String()
}

// Table2 renders the malicious category summary.
func Table2(st *store.Store) string {
	t := newTable("Table 2: Localhost and LAN requests for malicious webpages")
	t.row("Category", "# Sites", "Success W/L/M", "Localhost W/L/M", "LAN W/L/M")
	for _, r := range analysis.MaliciousSummary(st) {
		t.row(r.Category,
			fmt.Sprint(r.Sites),
			fmt.Sprintf("%.0f%%/%.0f%%/%.0f%%", 100*r.SuccessRate["Windows"], 100*r.SuccessRate["Linux"], 100*r.SuccessRate["Mac"]),
			fmt.Sprintf("%d/%d/%d", r.Localhost["Windows"], r.Localhost["Linux"], r.Localhost["Mac"]),
			fmt.Sprintf("%d/%d/%d", r.LAN["Windows"], r.LAN["Linux"], r.LAN["Mac"]),
		)
	}
	return t.String()
}

// Table3 renders the top-10 localhost-active domains per OS for a crawl.
func Table3(st *store.Store, crawl groundtruth.CrawlID) string {
	sites := analysis.LocalSites(st, crawl, "localhost")
	t := newTable(fmt.Sprintf("Table 3: Top domains making localhost requests (%s)", crawl))
	t.row("Rank (W)", "Windows", "Rank (L/M)", "Linux and Mac")
	win := analysis.TopN(sites, groundtruth.OSWindows, 10)
	lin := analysis.TopN(sites, groundtruth.OSLinux, 10)
	for i := 0; i < 10; i++ {
		var c [4]string
		if i < len(win) {
			c[0], c[1] = fmt.Sprint(win[i].Rank), win[i].Domain
		}
		if i < len(lin) {
			c[2], c[3] = fmt.Sprint(lin[i].Rank), lin[i].Domain
		}
		t.row(c[0], c[1], c[2], c[3])
	}
	return t.String()
}

// Table4 renders the port-to-service registry.
func Table4() string {
	t := newTable("Table 4: Services on localhost ports scanned for fraud and bot detection")
	t.row("Port", "Service/App", "Use Case")
	for _, e := range portdb.All() {
		t.row(fmt.Sprint(e.Port), e.Service, e.UseCase.String())
	}
	return t.String()
}

func osCols(os groundtruth.OSSet) string { return os.String() }

func portsCompact(ports []uint16) string {
	if len(ports) == 0 {
		return "-"
	}
	sorted := make([]uint16, len(ports))
	copy(sorted, ports)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var parts []string
	lo, hi := sorted[0], sorted[0]
	flush := func() {
		if lo == hi {
			parts = append(parts, fmt.Sprint(lo))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", lo, hi))
		}
	}
	for _, p := range sorted[1:] {
		if p == hi || p == hi+1 {
			hi = p
			continue
		}
		flush()
		lo, hi = p, p
	}
	flush()
	return strings.Join(parts, ",")
}

// siteSummary compacts one site's request set for a table row.
func siteSummary(s analysis.SiteActivity) (schemes, ports, paths string) {
	schemeSet := map[string]bool{}
	portSet := map[uint16]bool{}
	pathSet := map[string]bool{}
	for _, r := range s.Requests {
		schemeSet[r.Scheme] = true
		portSet[r.Port] = true
		pathSet[r.Path] = true
	}
	var ss []string
	for k := range schemeSet {
		ss = append(ss, k)
	}
	sort.Strings(ss)
	var pl []uint16
	for p := range portSet {
		pl = append(pl, p)
	}
	var ps []string
	for p := range pathSet {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	if len(ps) > 2 {
		ps = append(ps[:2], "...")
	}
	return strings.Join(ss, ","), portsCompact(pl), strings.Join(ps, " ")
}

// LocalhostTable renders a Table 5/7/8-style per-site listing for a
// crawl, grouped by behavior class. For the malicious crawl the group
// label is the blocklist category column instead of a rank.
func LocalhostTable(st *store.Store, crawl groundtruth.CrawlID, title string) string {
	sites := analysis.LocalSites(st, crawl, "localhost")
	t := newTable(title)
	t.row("Reason", "Rank", "Domain", "Protocol", "Ports", "Paths", "OS")
	classes := []groundtruth.Class{
		groundtruth.ClassFraudDetection, groundtruth.ClassBotDetection,
		groundtruth.ClassNativeApp, groundtruth.ClassDevError, groundtruth.ClassUnknown,
	}
	for _, class := range classes {
		for _, s := range sites {
			if s.Verdict.Class != class {
				continue
			}
			rank := "-"
			if s.Rank > 0 {
				rank = fmt.Sprint(s.Rank)
			} else if s.Category != "" {
				rank = s.Category
			}
			schemes, ports, paths := siteSummary(s)
			t.row(class.String(), rank, s.Domain, schemes, ports, paths, osCols(s.OS))
		}
	}
	return t.String()
}

// LANTable renders a Table 6/9/10-style LAN listing.
func LANTable(st *store.Store, crawl groundtruth.CrawlID, title string) string {
	sites := analysis.LocalSites(st, crawl, "lan")
	t := newTable(title)
	t.row("Rank", "Domain", "Protocol", "Local IP", "Port", "Paths", "OS", "Class")
	for _, s := range sites {
		rank := "-"
		if s.Rank > 0 {
			rank = fmt.Sprint(s.Rank)
		} else if s.Category != "" {
			rank = s.Category
		}
		host := "-"
		var port uint16
		if len(s.Requests) > 0 {
			host = s.Requests[0].Host
			port = s.Requests[0].Port
		}
		schemes, _, paths := siteSummary(s)
		t.row(rank, s.Domain, schemes, host, fmt.Sprint(port), paths, osCols(s.OS), s.Verdict.Class.String())
	}
	return t.String()
}

// Figure2 renders the OS-overlap regions.
func Figure2(st *store.Store, crawl groundtruth.CrawlID) string {
	sites := analysis.LocalSites(st, crawl, "localhost")
	venn := analysis.Venn(sites)
	totals := analysis.OSTotals(sites)
	t := newTable(fmt.Sprintf("Figure 2: OS overlap of localhost-active sites (%s)", crawl))
	t.row("Region", "# Sites")
	for _, r := range []struct {
		label string
		set   groundtruth.OSSet
	}{
		{"Windows only", groundtruth.OSWindows},
		{"Linux only", groundtruth.OSLinux},
		{"Mac only", groundtruth.OSMac},
		{"Windows+Linux", groundtruth.OSWL},
		{"Windows+Mac", groundtruth.OSWM},
		{"Linux+Mac", groundtruth.OSLM},
		{"All three", groundtruth.OSAll},
	} {
		t.row(r.label, fmt.Sprint(venn[r.set]))
	}
	t.row("", "")
	t.row("Total Windows", fmt.Sprint(totals[groundtruth.OSWindows]))
	t.row("Total Linux", fmt.Sprint(totals[groundtruth.OSLinux]))
	t.row("Total Mac", fmt.Sprint(totals[groundtruth.OSMac]))
	t.row("Total sites", fmt.Sprint(len(sites)))
	return t.String()
}

// cdfGrid samples a CDF at fixed fractions for compact textual output.
func cdfGrid(points []analysis.CDFPoint, xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		y := 0.0
		for _, p := range points {
			if p.X <= x {
				y = p.Y
			} else {
				break
			}
		}
		out[i] = y
	}
	return out
}

// RankCDFFigure renders Figure 3/9: rank CDFs per OS.
func RankCDFFigure(st *store.Store, crawl groundtruth.CrawlID, title string) string {
	sites := analysis.LocalSites(st, crawl, "localhost")
	t := newTable(title)
	grid := []float64{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000, 90000, 100000}
	header := []string{"OS (total)"}
	for _, x := range grid {
		header = append(header, fmt.Sprintf("≤%dk", int(x/1000)))
	}
	t.row(header...)
	for _, os := range osRows(crawl) {
		cdf := analysis.RankCDF(sites, os.set)
		cells := []string{fmt.Sprintf("%s (%d)", os.name, len(cdf))}
		for _, y := range cdfGrid(cdf, grid) {
			cells = append(cells, fmt.Sprintf("%.2f", y))
		}
		t.row(cells...)
	}
	return t.String()
}

// DelayCDFFigure renders Figure 5/6/7: first-local-request delay CDFs.
func DelayCDFFigure(st *store.Store, crawl groundtruth.CrawlID, dest, title string) string {
	sites := analysis.LocalSites(st, crawl, dest)
	t := newTable(title)
	grid := []float64{2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20}
	header := []string{"OS", "median", "max"}
	for _, x := range grid {
		header = append(header, fmt.Sprintf("≤%.1fs", x))
	}
	t.row(header...)
	for _, os := range osRows(crawl) {
		delays := analysis.DelaySeconds(sites, os.set)
		if len(delays) == 0 {
			continue
		}
		cdf := analysis.CDF(delays)
		cells := []string{
			os.name,
			fmt.Sprintf("%.1fs", analysis.Quantile(delays, 0.5)),
			fmt.Sprintf("%.1fs", analysis.Quantile(delays, 1)),
		}
		for _, y := range cdfGrid(cdf, grid) {
			cells = append(cells, fmt.Sprintf("%.2f", y))
		}
		t.row(cells...)
	}
	return t.String()
}

// SchemeRollupFigure renders Figure 4/8: the protocol/port breakdown.
func SchemeRollupFigure(st *store.Store, crawl groundtruth.CrawlID, title string) string {
	t := newTable(title)
	t.row("OS (total)", "Scheme", "# Requests", "Ports")
	for _, os := range osRows(crawl) {
		r := analysis.SchemeRollup(st, crawl, os.name, "localhost")
		if r.Total == 0 {
			continue
		}
		for i, s := range schemesByCount(r.ByScheme) {
			label := ""
			if i == 0 {
				label = fmt.Sprintf("%s (%d)", os.name, r.Total)
			}
			t.row(label, s, fmt.Sprint(r.ByScheme[s]), portsCompact(r.Ports[s]))
		}
	}
	return t.String()
}

// schemesByCount orders a rollup's schemes deterministically: request
// count descending, ties broken by scheme name. Map iteration order
// must never leak into rendered output (the golden-pinned parity tests
// depend on byte stability).
func schemesByCount(byScheme map[string]int) []string {
	schemes := make([]string, 0, len(byScheme))
	for s := range byScheme {
		schemes = append(schemes, s)
	}
	sort.Slice(schemes, func(i, j int) bool {
		if byScheme[schemes[i]] != byScheme[schemes[j]] {
			return byScheme[schemes[i]] > byScheme[schemes[j]]
		}
		return schemes[i] < schemes[j]
	})
	return schemes
}

type osRow struct {
	name string
	set  groundtruth.OSSet
}

func osRows(crawl groundtruth.CrawlID) []osRow {
	rows := []osRow{
		{"Windows", groundtruth.OSWindows},
		{"Linux", groundtruth.OSLinux},
		{"Mac", groundtruth.OSMac},
	}
	if crawl == groundtruth.CrawlTop2021 {
		return rows[:2]
	}
	return rows
}

// Headline renders the §4.1 topline counts for a crawl.
func Headline(st *store.Store, crawl groundtruth.CrawlID) string {
	lh := analysis.LocalSites(st, crawl, "localhost")
	lan := analysis.LocalSites(st, crawl, "lan")
	counts := analysis.ClassCounts(lh)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d sites making localhost requests, %d sites making LAN requests\n", crawl, len(lh), len(lan))
	for _, c := range []groundtruth.Class{
		groundtruth.ClassFraudDetection, groundtruth.ClassBotDetection,
		groundtruth.ClassNativeApp, groundtruth.ClassDevError, groundtruth.ClassUnknown,
	} {
		if counts[c] > 0 {
			fmt.Fprintf(&b, "  %-20s %d\n", c.String()+":", counts[c])
		}
	}
	return b.String()
}
