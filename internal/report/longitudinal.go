package report

import (
	"fmt"

	"github.com/knockandtalk/knockandtalk/internal/longitudinal"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// Longitudinal renders the §4.1 churn analysis between the 2020 and
// 2021 top-list crawls for one destination class.
func Longitudinal(st *store.Store, dest string) string {
	rep := longitudinal.Compare(st, dest)
	t := newTable(fmt.Sprintf("Longitudinal churn 2020→2021 (%s)", dest))
	t.row("Transition", "# Sites")
	for _, tr := range []longitudinal.Transition{
		longitudinal.Continued, longitudinal.Stopped, longitudinal.Started,
		longitudinal.EnteredList, longitudinal.LeftList,
	} {
		t.row(tr.String(), fmt.Sprint(rep.Counts[tr]))
	}
	t.row("", "")
	t.row("Domain", "Transition", "Rank 20→21", "Class 20→21")
	for _, s := range rep.Sites {
		classes := "-"
		switch s.Transition {
		case longitudinal.Continued:
			classes = s.Class2020.String()
			if s.Class2021 != s.Class2020 {
				classes += " → " + s.Class2021.String()
			}
		case longitudinal.Stopped, longitudinal.LeftList:
			classes = s.Class2020.String()
		case longitudinal.Started, longitudinal.EnteredList:
			classes = s.Class2021.String()
		}
		t.row(s.Domain, s.Transition.String(),
			fmt.Sprintf("%s→%s", rankStr(s.Rank2020), rankStr(s.Rank2021)), classes)
	}
	return t.String()
}

func rankStr(r int) string {
	if r == 0 {
		return "-"
	}
	return fmt.Sprint(r)
}
