package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/pna"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// WriteAll renders every table, figure, and auxiliary section of the
// paper in knockreport's order. only selects a subset by section key
// (table1..table11, figure2..figure9, headline, longitudinal, skew,
// pna); empty or nil means everything. This is the single rendering
// path shared by cmd/knockreport, the golden parity tests, and
// BenchmarkReportAll, so the regenerated artifacts cannot drift
// between the CLI and the test suite.
func WriteAll(w io.Writer, st *store.Store, only map[string]bool) {
	show := func(key string) bool { return len(only) == 0 || only[key] }
	section := func(key, body string) {
		if show(key) && body != "" {
			fmt.Fprintln(w, body)
		}
	}

	t2020, t2021, mal := groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious

	if show("headline") {
		for _, crawl := range []groundtruth.CrawlID{t2020, t2021, mal} {
			fmt.Fprint(w, Headline(st, crawl))
		}
		fmt.Fprintln(w)
	}
	section("table1", Table1(st))
	section("table2", Table2(st))
	section("table3", Table3(st, t2020))
	section("table4", Table4())
	section("table5", LocalhostTable(st, t2020, "Table 5+11: Website localhost requests, 2020 top-100K crawl"))
	section("table6", LANTable(st, t2020, "Table 6: Website LAN requests, 2020 top-100K crawl"))
	section("table7", LocalhostTable(st, t2021, "Table 7: Website localhost requests, 2021 top-100K crawl"))
	section("table8", LocalhostTable(st, mal, "Table 8: Localhost requests, malicious webpages"))
	section("table9", LANTable(st, mal, "Table 9: LAN requests, malicious webpages"))
	section("table10", LANTable(st, t2021, "Table 10: Website LAN requests, 2021 top-100K crawl"))
	section("figure2", Figure2(st, t2020)+"\n"+Figure2(st, mal))
	section("figure3", RankCDFFigure(st, t2020, "Figure 3: Rank CDF of localhost-active domains (2020)"))
	section("figure4", SchemeRollupFigure(st, t2020, "Figure 4a: Localhost protocols/ports (2020 top-100K)")+
		"\n"+SchemeRollupFigure(st, mal, "Figure 4b: Localhost protocols/ports (malicious)"))
	section("figure5", DelayCDFFigure(st, t2020, "localhost", "Figure 5a: Delay to first localhost request (2020)")+
		"\n"+DelayCDFFigure(st, t2020, "lan", "Figure 5b: Delay to first LAN request (2020)"))
	section("figure6", DelayCDFFigure(st, t2021, "localhost", "Figure 6a: Delay to first localhost request (2021)")+
		"\n"+DelayCDFFigure(st, t2021, "lan", "Figure 6b: Delay to first LAN request (2021)"))
	section("figure7", DelayCDFFigure(st, mal, "localhost", "Figure 7a: Delay to first localhost request (malicious)")+
		"\n"+DelayCDFFigure(st, mal, "lan", "Figure 7b: Delay to first LAN request (malicious)"))
	section("figure8", SchemeRollupFigure(st, t2021, "Figure 8: Localhost protocols/ports (2021 top-100K)"))
	section("figure9", RankCDFFigure(st, t2021, "Figure 9: Rank CDF of localhost-active domains (2021)"))

	if show("skew") {
		for _, crawl := range []groundtruth.CrawlID{t2020, t2021, mal} {
			fmt.Fprintln(w, OSSkewAndSOP(st, crawl))
		}
	}
	if show("longitudinal") {
		fmt.Fprintln(w, Longitudinal(st, "localhost"))
		fmt.Fprintln(w, Longitudinal(st, "lan"))
	}
	if show("pna") {
		fmt.Fprintln(w, "PNA defense audit (§5.3, WICG draft)")
		fmt.Fprintln(w, "====================================")
		for _, crawl := range []groundtruth.CrawlID{t2020, t2021, mal} {
			rows := pna.Audit(st, crawl, pna.WICGDraft)
			if len(rows) == 0 {
				continue
			}
			fmt.Fprintf(w, "%s:\n", crawl)
			for _, r := range rows {
				fmt.Fprintf(w, "  %-20s sites=%-4d requests=%-5d allowed=%-5d blocked(insecure)=%-4d blocked(no-opt-in)=%d\n",
					r.Class, r.Sites, r.Requests, r.Allowed, r.BlockedInsecure, r.BlockedNoOptIn)
			}
		}
	}
}

// ParseSections turns knockreport's -only flag value into the section
// filter WriteAll consumes.
func ParseSections(only string) map[string]bool {
	want := map[string]bool{}
	for _, k := range strings.Split(only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	return want
}

// CSVSeries returns every figure's CSV export keyed by its canonical
// file name — the set knockreport -csvdir writes.
func CSVSeries(st *store.Store) map[string]string {
	return map[string]string{
		"figure2-2020-venn.csv":             VennCSV(st, groundtruth.CrawlTop2020),
		"figure2-malicious-venn.csv":        VennCSV(st, groundtruth.CrawlMalicious),
		"figure3-rank-cdf-2020.csv":         RankCDFCSV(st, groundtruth.CrawlTop2020),
		"figure9-rank-cdf-2021.csv":         RankCDFCSV(st, groundtruth.CrawlTop2021),
		"figure4-rollup-2020.csv":           RollupCSV(st, groundtruth.CrawlTop2020),
		"figure4-rollup-malicious.csv":      RollupCSV(st, groundtruth.CrawlMalicious),
		"figure8-rollup-2021.csv":           RollupCSV(st, groundtruth.CrawlTop2021),
		"figure5-delay-2020-local.csv":      DelayCDFCSV(st, groundtruth.CrawlTop2020, "localhost"),
		"figure5-delay-2020-lan.csv":        DelayCDFCSV(st, groundtruth.CrawlTop2020, "lan"),
		"figure6-delay-2021-local.csv":      DelayCDFCSV(st, groundtruth.CrawlTop2021, "localhost"),
		"figure6-delay-2021-lan.csv":        DelayCDFCSV(st, groundtruth.CrawlTop2021, "lan"),
		"figure7-delay-malicious-local.csv": DelayCDFCSV(st, groundtruth.CrawlMalicious, "localhost"),
		"figure7-delay-malicious-lan.csv":   DelayCDFCSV(st, groundtruth.CrawlMalicious, "lan"),
	}
}
