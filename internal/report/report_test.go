package report

import (
	"strings"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

var reportStore = func() *store.Store {
	st := store.New()
	for _, os := range hostenv.AllOS {
		if _, err := crawler.Run(crawler.Config{
			Crawl: groundtruth.CrawlTop2020, OS: os, Scale: 0.01, Seed: 5, Workers: 4,
		}, st); err != nil {
			panic(err)
		}
	}
	return st
}()

func TestTable1Rendering(t *testing.T) {
	out := Table1(reportStore)
	for _, want := range []string{"Table 1", "NAME_NOT_RESOLVED", "Windows", "Linux", "Mac"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Rendering(t *testing.T) {
	out := Table3(reportStore, groundtruth.CrawlTop2020)
	if !strings.Contains(out, "ebay.com") || !strings.Contains(out, "hola.org") {
		t.Errorf("Table 3 missing expected leaders:\n%s", out)
	}
}

func TestTable4Rendering(t *testing.T) {
	out := Table4()
	for _, want := range []string{"3389", "Windows Remote Desktop", "Fraud Detection", "17556", "Bot Detection"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestLocalhostTableRendering(t *testing.T) {
	out := LocalhostTable(reportStore, groundtruth.CrawlTop2020, "Table 5 test")
	if !strings.Contains(out, "Fraud Detection") || !strings.Contains(out, "ebay.com") {
		t.Errorf("localhost table missing fraud rows:\n%s", out)
	}
	if !strings.Contains(out, "wss") {
		t.Error("localhost table missing protocol column content")
	}
	// Compact port ranges: the TM set includes 5900-5903.
	if !strings.Contains(out, "5900-5903") {
		t.Errorf("ports not compacted:\n%s", out)
	}
}

func TestFigure2Rendering(t *testing.T) {
	out := Figure2(reportStore, groundtruth.CrawlTop2020)
	if !strings.Contains(out, "Windows only") || !strings.Contains(out, "Total sites") {
		t.Errorf("Figure 2 incomplete:\n%s", out)
	}
}

func TestDelayCDFRendering(t *testing.T) {
	out := DelayCDFFigure(reportStore, groundtruth.CrawlTop2020, "localhost", "Figure 5 test")
	if !strings.Contains(out, "median") || !strings.Contains(out, "Windows") {
		t.Errorf("delay CDF incomplete:\n%s", out)
	}
	// The final grid column covers the full window, so it must read 1.00
	// for any OS with data.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Windows") && !strings.Contains(line, "1.00") {
			t.Errorf("CDF does not reach 1.0 within the window: %s", line)
		}
	}
}

func TestSchemeRollupRendering(t *testing.T) {
	out := SchemeRollupFigure(reportStore, groundtruth.CrawlTop2020, "Figure 4 test")
	if !strings.Contains(out, "wss") || !strings.Contains(out, "Windows") {
		t.Errorf("rollup incomplete:\n%s", out)
	}
}

func TestHeadlineRendering(t *testing.T) {
	out := Headline(reportStore, groundtruth.CrawlTop2020)
	if !strings.Contains(out, "localhost requests") || !strings.Contains(out, "Fraud Detection") {
		t.Errorf("headline incomplete:\n%s", out)
	}
}

func TestPortsCompact(t *testing.T) {
	cases := []struct {
		in   []uint16
		want string
	}{
		{nil, "-"},
		{[]uint16{80}, "80"},
		{[]uint16{5900, 5901, 5902, 5903}, "5900-5903"},
		{[]uint16{3389, 5900, 5901, 7070}, "3389,5900-5901,7070"},
		{[]uint16{9, 7, 8, 1}, "1,7-9"},
		{[]uint16{5, 5, 6}, "5-6"},
	}
	for _, c := range cases {
		if got := portsCompact(c.in); got != c.want {
			t.Errorf("portsCompact(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCDFGridSampling(t *testing.T) {
	cdf := []analysis.CDFPoint{{X: 1, Y: 0.25}, {X: 2, Y: 0.5}, {X: 3, Y: 0.75}, {X: 4, Y: 1}}
	got := cdfGrid(cdf, []float64{0.5, 2.5, 10})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cdfGrid[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLANTableEmpty(t *testing.T) {
	// The top-1000 slice has no LAN sites; the table must still render.
	out := LANTable(reportStore, groundtruth.CrawlTop2020, "Table 6 test")
	if !strings.Contains(out, "Table 6 test") {
		t.Errorf("empty LAN table broken:\n%s", out)
	}
}
