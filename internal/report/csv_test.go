package report

import (
	"strings"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
)

func TestRankCDFCSV(t *testing.T) {
	out := RankCDFCSV(reportStore, groundtruth.CrawlTop2020)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "os,rank,cdf" {
		t.Fatalf("header = %q", lines[0])
	}
	// 5 Windows sites + 1 Linux + 1 Mac in the top-1000 slice.
	if len(lines) != 1+5+1+1 {
		t.Fatalf("rows = %d: %v", len(lines)-1, lines)
	}
	if !strings.HasPrefix(lines[1], "Windows,104,") {
		t.Errorf("first row = %q", lines[1])
	}
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, "1.000000") {
		t.Errorf("per-OS CDF must end at 1: %q", last)
	}
}

func TestDelayCDFCSV(t *testing.T) {
	out := DelayCDFCSV(reportStore, groundtruth.CrawlTop2020, "localhost")
	if !strings.HasPrefix(out, "os,delay_seconds,cdf\n") {
		t.Fatalf("header wrong: %q", out[:40])
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 3 {
			t.Fatalf("malformed row %q", line)
		}
	}
}

func TestRollupCSVEscapesPorts(t *testing.T) {
	out := RollupCSV(reportStore, groundtruth.CrawlTop2020)
	for i, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if i == 0 {
			continue
		}
		if strings.Count(line, ",") != 3 {
			t.Errorf("port lists must not introduce extra commas: %q", line)
		}
	}
	if !strings.Contains(out, "Windows,wss,56,") {
		t.Errorf("wss rollup missing:\n%s", out)
	}
}

func TestVennCSV(t *testing.T) {
	out := VennCSV(reportStore, groundtruth.CrawlTop2020)
	if !strings.Contains(out, "windows-only,4\n") || !strings.Contains(out, "all,1\n") {
		t.Errorf("venn csv wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 { // header + 7 regions
		t.Errorf("rows = %d", len(lines))
	}
}

func TestOSSkewAndSOPRendering(t *testing.T) {
	out := OSSkewAndSOP(reportStore, groundtruth.CrawlTop2020)
	for _, want := range []string{"Windows-exclusive", "4 (80%)", "SOP-exempt", "56"} {
		if !strings.Contains(out, want) {
			t.Errorf("skew report missing %q:\n%s", want, out)
		}
	}
}

func TestLongitudinalRendering(t *testing.T) {
	// reportStore only holds the 2020 crawl: everything is "left-list"
	// or "stopped" relative to an empty 2021 crawl — rendering must not
	// fail, and the summary header must be present.
	out := Longitudinal(reportStore, "localhost")
	for _, want := range []string{"Longitudinal churn", "continued", "ebay.com"} {
		if !strings.Contains(out, want) {
			t.Errorf("longitudinal report missing %q", want)
		}
	}
}
