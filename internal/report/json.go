package report

import (
	"sort"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// JSON renderers: the same aggregates the text tables print, shaped for
// machine consumers — the knockserved query plane serves these types
// verbatim. Field order and map keys are deterministic so responses are
// cacheable and diffable.

// JSONVerdict is the wire form of a classify.Verdict.
type JSONVerdict struct {
	Class         string `json:"class"`
	Signature     string `json:"signature"`
	Corroboration string `json:"corroboration,omitempty"`
}

// VerdictJSON converts a classifier verdict to its wire form.
func VerdictJSON(v classify.Verdict) JSONVerdict {
	return JSONVerdict{
		Class:         v.Class.String(),
		Signature:     v.Signature,
		Corroboration: v.Corroboration,
	}
}

// JSONCrawlStats is one Table 1 row in wire form.
type JSONCrawlStats struct {
	Crawl           string `json:"crawl"`
	OS              string `json:"os"`
	Successful      int    `json:"successful"`
	Failed          int    `json:"failed"`
	NameNotResolved int    `json:"name_not_resolved,omitempty"`
	ConnRefused     int    `json:"conn_refused,omitempty"`
	ConnReset       int    `json:"conn_reset,omitempty"`
	CertCNInvalid   int    `json:"cert_cn_invalid,omitempty"`
	Others          int    `json:"others,omitempty"`
}

// JSONCrawlSummary aggregates one crawl: its per-OS load statistics and
// the §4.1 headline numbers (localhost/LAN-active sites, behavior-class
// counts).
type JSONCrawlSummary struct {
	Crawl          string           `json:"crawl"`
	Stats          []JSONCrawlStats `json:"stats"`
	LocalhostSites int              `json:"localhost_sites"`
	LANSites       int              `json:"lan_sites"`
	// Classes counts localhost-active sites per behavior class, keyed by
	// the class label used in the paper's tables.
	Classes map[string]int `json:"classes,omitempty"`
}

// JSONSummary is the corpus-wide summary the /v1/summary endpoint
// serves.
type JSONSummary struct {
	Pages   int                `json:"pages"`
	Locals  int                `json:"locals"`
	NetLogs int                `json:"netlogs"`
	Crawls  []JSONCrawlSummary `json:"crawls"`
}

// SummaryJSON computes the corpus summary from stored telemetry.
func SummaryJSON(st *store.Store) JSONSummary {
	out := JSONSummary{
		Pages:   st.NumPages(),
		Locals:  st.NumLocals(),
		NetLogs: st.NumNetLogs(),
	}
	// Crawl set: whatever the mounted stores hold — committed campaign
	// crawls and live-ingested ones alike.
	crawlSet := map[string]bool{}
	statRows := analysis.CrawlTable(st)
	for _, r := range statRows {
		crawlSet[string(r.Crawl)] = true
	}
	for _, l := range st.Locals(nil) {
		crawlSet[l.Crawl] = true
	}
	crawls := make([]string, 0, len(crawlSet))
	for c := range crawlSet {
		crawls = append(crawls, c)
	}
	sort.Strings(crawls)
	for _, crawl := range crawls {
		cs := JSONCrawlSummary{Crawl: crawl}
		for _, r := range statRows {
			if string(r.Crawl) != crawl {
				continue
			}
			cs.Stats = append(cs.Stats, JSONCrawlStats{
				Crawl: string(r.Crawl), OS: r.OS,
				Successful: r.Successful, Failed: r.Failed,
				NameNotResolved: r.NameNotResolved, ConnRefused: r.ConnRefused,
				ConnReset: r.ConnReset, CertCNInvalid: r.CertCNInvalid, Others: r.Others,
			})
		}
		lh := analysis.LocalSites(st, groundtruth.CrawlID(crawl), "localhost")
		lan := analysis.LocalSites(st, groundtruth.CrawlID(crawl), "lan")
		cs.LocalhostSites, cs.LANSites = len(lh), len(lan)
		if counts := analysis.ClassCounts(lh); len(counts) > 0 {
			cs.Classes = make(map[string]int, len(counts))
			for class, n := range counts {
				cs.Classes[class.String()] = n
			}
		}
		out.Crawls = append(out.Crawls, cs)
	}
	return out
}
