package report

import (
	"fmt"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// OSSkewAndSOP renders the §4.1/§4.2 textual findings as a table:
// per-OS exclusivity of localhost-active sites and Same-Origin-Policy
// exemption of their traffic.
func OSSkewAndSOP(st *store.Store, crawl groundtruth.CrawlID) string {
	sites := analysis.LocalSites(st, crawl, "localhost")
	skew := analysis.ComputeOSSkew(sites, groundtruth.OSesFor(crawl))
	usage := analysis.ComputeSOPUsage(st, crawl, "localhost")

	t := newTable(fmt.Sprintf("OS targeting and SOP exemption (%s)", crawl))
	t.row("Metric", "Value")
	t.row("Localhost-active sites", fmt.Sprint(skew.Sites))
	for _, r := range []struct {
		label string
		bit   groundtruth.OSSet
	}{
		{"Windows-exclusive", groundtruth.OSWindows},
		{"Linux-exclusive", groundtruth.OSLinux},
		{"Mac-exclusive", groundtruth.OSMac},
	} {
		n := skew.ExclusiveCounts[r.bit]
		t.row(r.label, fmt.Sprintf("%d (%.0f%%)", n, 100*skew.ExclusiveShare[r.bit]))
	}
	t.row("Uniform across crawl OSes", fmt.Sprint(skew.UniformCount))
	t.row("", "")
	t.row("Local requests", fmt.Sprint(usage.Requests))
	t.row("SOP-exempt (WebSocket)", fmt.Sprintf("%d (%s)", usage.ExemptRequests, pct(usage.ExemptRequests, usage.Requests)))
	t.row("Secured WebSocket (WSS)", fmt.Sprint(usage.WSSRequests))
	t.row("Sites using WebSockets", fmt.Sprintf("%d of %d", usage.ExemptSites, usage.Sites))
	return t.String()
}
