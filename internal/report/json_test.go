package report

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/portdb"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func TestSummaryJSON(t *testing.T) {
	st := store.New()
	st.AddPage(store.PageRecord{Crawl: "top100k-2020", OS: "Windows", Domain: "ebay.com", Rank: 104, URL: "https://ebay.com/"})
	st.AddPage(store.PageRecord{Crawl: "top100k-2020", OS: "Windows", Domain: "dead.example", Err: "ERR_NAME_NOT_RESOLVED", URL: "https://dead.example/"})
	for _, p := range portdb.ThreatMetrixPorts() {
		st.AddLocal(store.LocalRequest{
			Crawl: "top100k-2020", OS: "Windows", Domain: "ebay.com", Rank: 104,
			URL: fmt.Sprintf("wss://localhost:%d/", p), Scheme: "wss", Host: "localhost",
			Port: p, Path: "/", Dest: "localhost",
		})
	}
	// A crawl that exists only as local requests (a live-ingest store).
	st.AddLocal(store.LocalRequest{
		Crawl: "live", OS: "Linux", Domain: "shop.example",
		URL: "http://192.168.1.5/", Scheme: "http", Host: "192.168.1.5",
		Port: 80, Path: "/", Dest: "lan",
	})

	s := SummaryJSON(st)
	if s.Pages != 2 || s.Locals != len(portdb.ThreatMetrixPorts())+1 {
		t.Fatalf("totals = %d pages, %d locals", s.Pages, s.Locals)
	}
	if len(s.Crawls) != 2 || s.Crawls[0].Crawl != "live" || s.Crawls[1].Crawl != "top100k-2020" {
		t.Fatalf("crawl rows = %+v, want sorted [live top100k-2020]", s.Crawls)
	}
	top := s.Crawls[1]
	if top.LocalhostSites != 1 || top.Classes["Fraud Detection"] != 1 {
		t.Fatalf("2020 summary = %+v, want one fraud-detection localhost site", top)
	}
	if len(top.Stats) != 1 || top.Stats[0].Successful != 1 || top.Stats[0].NameNotResolved != 1 {
		t.Fatalf("2020 stats = %+v", top.Stats)
	}
	if live := s.Crawls[0]; live.LANSites != 1 || len(live.Stats) != 0 {
		t.Fatalf("live summary = %+v, want one LAN site and no page stats", live)
	}

	// Renders deterministically (map keys sorted by encoding/json).
	a, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(SummaryJSON(st))
	if string(a) != string(b) {
		t.Error("summary JSON is not deterministic")
	}
}

func TestVerdictJSON(t *testing.T) {
	v := VerdictJSON(classify.Verdict{Class: groundtruth.ClassFraudDetection, Signature: "threatmetrix"})
	if v.Class != "Fraud Detection" || v.Signature != "threatmetrix" || v.Corroboration != "" {
		t.Fatalf("VerdictJSON = %+v", v)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"class":"Fraud Detection","signature":"threatmetrix"}` {
		t.Errorf("wire form = %s", raw)
	}
}
