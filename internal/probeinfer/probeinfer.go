// Package probeinfer implements the timing side channel the paper
// hypothesizes behind BIG-IP ASM's bot defense (§4.3.2): even when the
// Same-Origin Policy makes a response unreadable, a script can deduce
// whether a localhost port is active, because "a request to an active
// localhost port returns quickly (even if the response cannot be read),
// while a request to an inactive port will time out" — and on loopback,
// an inactive port refuses instantly while a filtered one hangs.
//
// Given the flows of a probe run, the inferencer assigns each
// destination port a state with the evidence used, exactly what the
// scanning script (or an analyst reconstructing its view) can learn.
package probeinfer

import (
	"fmt"
	"sort"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
)

// State is the inferred disposition of a probed port.
type State int

// Port states.
const (
	StateUnknown State = iota
	StateOpen
	StateClosed
	StateFiltered
)

// String labels the state.
func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateClosed:
		return "closed"
	case StateFiltered:
		return "filtered"
	default:
		return "unknown"
	}
}

// fastThreshold separates an immediate local answer (SYN-ACK or RST)
// from a hang. Loopback and LAN answers land in microseconds to
// milliseconds; connect timeouts take seconds.
const fastThreshold = 500 * time.Millisecond

// Inference is the verdict for one probed destination.
type Inference struct {
	Host     string
	Port     uint16
	State    State
	Evidence string
	Elapsed  time.Duration
}

// Key returns "host:port".
func (i Inference) Key() string { return fmt.Sprintf("%s:%d", i.Host, i.Port) }

// FromFindings infers port states from detected local requests. The
// input is what localnet extracts from a visit's NetLog; only local
// destinations are considered (the side channel is about the visitor's
// own network).
func FromFindings(findings []localnet.Finding, elapsed func(f localnet.Finding) time.Duration) []Inference {
	var out []Inference
	for _, f := range findings {
		inf := Inference{Host: f.Host, Port: f.Port}
		d := time.Duration(0)
		if elapsed != nil {
			d = elapsed(f)
		}
		inf.Elapsed = d
		switch {
		case f.StatusCode != 0:
			// Any response — even an opaque or failed handshake with a
			// status — proves a listener.
			inf.State = StateOpen
			inf.Evidence = fmt.Sprintf("response status %d", f.StatusCode)
		case f.NetError == "ERR_SSL_PROTOCOL_ERROR" || f.NetError == "ERR_INVALID_HTTP_RESPONSE" || f.NetError == "ERR_EMPTY_RESPONSE":
			// The connection was accepted and then the protocol failed:
			// something non-HTTP is listening (the remote-desktop case).
			inf.State = StateOpen
			inf.Evidence = "accepted then " + f.NetError
		case f.NetError == "ERR_CONNECTION_REFUSED":
			inf.State = StateClosed
			inf.Evidence = "immediate refusal"
		case f.NetError == "ERR_CONNECTION_TIMED_OUT":
			inf.State = StateFiltered
			inf.Evidence = "connect timeout"
		case f.NetError == "" && elapsed != nil && d > 0 && d < fastThreshold:
			inf.State = StateOpen
			inf.Evidence = fmt.Sprintf("fast completion (%v)", d.Round(time.Microsecond))
		default:
			inf.State = StateUnknown
			inf.Evidence = orDash(f.NetError)
		}
		out = append(out, inf)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// FromLogFindings infers port states for findings already extracted
// from log, using each flow's own duration as the timing signal. It is
// the entry point for callers that have run detection themselves — the
// visit pipeline runs localnet once and feeds both the store records
// and this side channel from the same findings pass.
func FromLogFindings(log *netlog.Log, findings []localnet.Finding) []Inference {
	durations := map[string]time.Duration{}
	for _, flow := range log.Flows() {
		durations[flow.URL] = flow.Duration()
	}
	return FromFindings(findings, func(f localnet.Finding) time.Duration {
		return durations[f.URL]
	})
}

// FromLog runs detection and inference over a visit's NetLog. It is a
// convenience wrapper for callers holding only the raw capture; when
// the findings are already in hand, use FromLogFindings and skip the
// second detection pass.
func FromLog(log *netlog.Log) []Inference {
	return FromLogFindings(log, localnet.FromLog(log))
}

// Profile summarizes an inference run the way an anti-abuse backend
// would consume it: which ports answered.
type Profile struct {
	Open     []uint16
	Closed   []uint16
	Filtered []uint16
}

// Summarize folds inferences into a host profile.
func Summarize(infs []Inference) Profile {
	var p Profile
	for _, inf := range infs {
		switch inf.State {
		case StateOpen:
			p.Open = append(p.Open, inf.Port)
		case StateClosed:
			p.Closed = append(p.Closed, inf.Port)
		case StateFiltered:
			p.Filtered = append(p.Filtered, inf.Port)
		}
	}
	return p
}

// Suspicious reports whether the profile matches what the anti-abuse
// vendors treat as a remote-control indicator: any of the probed
// remote-desktop or malware ports answering.
func (p Profile) Suspicious() bool { return len(p.Open) > 0 }

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
