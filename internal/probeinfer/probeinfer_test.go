package probeinfer

import (
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/browser"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

func TestInferenceFromRealProbeRun(t *testing.T) {
	// A Windows machine with RDP on 3389 (the default profile) visited
	// by a ThreatMetrix deployer: 3389 must infer open, the other 13
	// scanned ports closed.
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	b := browser.New(hostenv.DefaultProfile(hostenv.Windows), world.Net, browser.DefaultOptions())
	res := b.Visit("https://ebay.com/")
	infs := FromLog(res.Log)
	if len(infs) != 14 {
		t.Fatalf("inferences = %d, want 14", len(infs))
	}
	byPort := map[uint16]Inference{}
	for _, inf := range infs {
		byPort[inf.Port] = inf
	}
	if got := byPort[3389]; got.State != StateOpen {
		t.Errorf("port 3389 = %v (%s), want open", got.State, got.Evidence)
	}
	for _, port := range []uint16{5279, 5900, 5939, 7070, 63333} {
		if got := byPort[port]; got.State != StateClosed {
			t.Errorf("port %d = %v (%s), want closed", port, got.State, got.Evidence)
		}
	}
	profile := Summarize(infs)
	if !profile.Suspicious() {
		t.Error("an answering remote-desktop port must flag the host")
	}
	if len(profile.Open) != 1 || len(profile.Closed) != 13 {
		t.Errorf("profile = open %v closed %v", profile.Open, profile.Closed)
	}
}

func TestCleanHostIsNotSuspicious(t *testing.T) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	clean := hostenv.NewProfile(hostenv.Windows, "10", simnet.VantageCampus)
	b := browser.New(clean, world.Net, browser.DefaultOptions())
	res := b.Visit("https://ebay.com/")
	profile := Summarize(FromLog(res.Log))
	if profile.Suspicious() {
		t.Errorf("clean host flagged: open = %v", profile.Open)
	}
	if len(profile.Closed) != 14 {
		t.Errorf("closed = %v, want all 14", profile.Closed)
	}
}

func TestInferenceRules(t *testing.T) {
	cases := []struct {
		finding localnet.Finding
		elapsed time.Duration
		want    State
	}{
		{localnet.Finding{Host: "localhost", Port: 1, StatusCode: 200}, 0, StateOpen},
		{localnet.Finding{Host: "localhost", Port: 2, StatusCode: 101}, 0, StateOpen},
		{localnet.Finding{Host: "localhost", Port: 3, NetError: "ERR_SSL_PROTOCOL_ERROR"}, 0, StateOpen},
		{localnet.Finding{Host: "localhost", Port: 4, NetError: "ERR_INVALID_HTTP_RESPONSE"}, 0, StateOpen},
		{localnet.Finding{Host: "localhost", Port: 5, NetError: "ERR_CONNECTION_REFUSED"}, time.Millisecond, StateClosed},
		{localnet.Finding{Host: "10.0.0.9", Port: 6, NetError: "ERR_CONNECTION_TIMED_OUT"}, 9 * time.Second, StateFiltered},
		{localnet.Finding{Host: "localhost", Port: 7}, 3 * time.Millisecond, StateOpen}, // fast, no error
		{localnet.Finding{Host: "localhost", Port: 8, NetError: "ERR_ABORTED"}, 0, StateUnknown},
	}
	for _, c := range cases {
		c := c
		infs := FromFindings([]localnet.Finding{c.finding}, func(localnet.Finding) time.Duration { return c.elapsed })
		if infs[0].State != c.want {
			t.Errorf("port %d: state = %v (%s), want %v", c.finding.Port, infs[0].State, infs[0].Evidence, c.want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{StateOpen: "open", StateClosed: "closed", StateFiltered: "filtered", StateUnknown: "unknown"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestInferenceSortedAndKeyed(t *testing.T) {
	infs := FromFindings([]localnet.Finding{
		{Host: "localhost", Port: 9000, NetError: "ERR_CONNECTION_REFUSED"},
		{Host: "127.0.0.1", Port: 80, NetError: "ERR_CONNECTION_REFUSED"},
		{Host: "localhost", Port: 80, NetError: "ERR_CONNECTION_REFUSED"},
	}, nil)
	if infs[0].Host != "127.0.0.1" || infs[1].Port != 80 || infs[2].Port != 9000 {
		t.Errorf("order wrong: %+v", infs)
	}
	if infs[0].Key() != "127.0.0.1:80" {
		t.Errorf("Key = %q", infs[0].Key())
	}
}
