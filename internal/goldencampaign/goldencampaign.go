// Package goldencampaign pins the deterministic scaled campaign the
// golden and parity tests are built on: a 2% population at a fixed
// seed, all three crawls, NetLog retention on. Every golden artifact in
// testdata/golden (store hashes, the full report, the CSV series, the
// knockquery transcripts) was produced from exactly this campaign, so
// any test package can regenerate the pre-refactor inputs byte-for-byte
// and compare.
//
// The campaign runs once per process (~1s) and is cached as each
// crawl's canonical Save bytes; consumers that mutate their store get a
// fresh Load of those bytes, never a shared *store.Store.
package goldencampaign

import (
	"bytes"
	"sync"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// The campaign's fixed parameters. Changing either invalidates every
// committed golden artifact.
const (
	Scale = 0.02
	Seed  = 20210603
)

// Crawls is the canonical crawl order — the order the golden store
// files were produced and loaded in (knockquery and knockreport mount
// files in argument order, and the goldens were generated with the
// top-list crawls first).
var Crawls = []groundtruth.CrawlID{
	groundtruth.CrawlTop2020,
	groundtruth.CrawlTop2021,
	groundtruth.CrawlMalicious,
}

var (
	once     sync.Once
	encoded  map[groundtruth.CrawlID][]byte
	buildErr error
)

func build() {
	once.Do(func() {
		encoded = make(map[groundtruth.CrawlID][]byte, len(Crawls))
		for _, crawl := range Crawls {
			st := store.New()
			if _, err := crawler.RunAll(crawler.Config{
				Crawl: crawl, Scale: Scale, Seed: Seed, RetainLogs: true,
			}, st); err != nil {
				buildErr = err
				return
			}
			var buf bytes.Buffer
			if err := st.Save(&buf); err != nil {
				buildErr = err
				return
			}
			encoded[crawl] = buf.Bytes()
		}
	})
}

// Encoded returns one crawl's canonical serialized store — the bytes
// `knockcrawl`/campaign.Run would have written to <crawl>.jsonl.
func Encoded(crawl groundtruth.CrawlID) ([]byte, error) {
	build()
	if buildErr != nil {
		return nil, buildErr
	}
	return encoded[crawl], nil
}

// Merged returns a fresh store holding all three crawls, loaded in the
// canonical order. Each call returns an independent store, so callers
// may mutate (ingest into) theirs freely.
func Merged() (*store.Store, error) {
	build()
	if buildErr != nil {
		return nil, buildErr
	}
	st := store.New()
	for _, crawl := range Crawls {
		if err := st.Load(bytes.NewReader(encoded[crawl])); err != nil {
			return nil, err
		}
	}
	return st, nil
}
