// Package simnet provides the virtual network substrate for the crawl
// simulation: a deterministic discrete-event clock, a DNS resolver with
// the failure modes observed in the paper's crawls, a latency model, and
// message-level dial/request semantics for HTTP(S) and WebSocket
// endpoints.
//
// The paper's substrate was the live Internet observed through Chrome's
// network stack; this package is the offline substitution. Everything is
// deterministic: all jitter derives from seeded hashes and all time is
// virtual, so a full tri-OS crawl of 100K domains reproduces bit-for-bit.
package simnet

import (
	"container/heap"
	"time"
)

// Scheduler is a single-threaded discrete-event scheduler over virtual
// time. Callbacks run in timestamp order (ties broken by scheduling
// order); a callback may schedule further events, including at the
// current instant.
type Scheduler struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
}

type schedEvent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*schedEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*schedEvent)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// NewScheduler returns a scheduler positioned at virtual time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at the given absolute virtual time. Times in the
// past are clamped to the present.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &schedEvent{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run after the given delay from the present.
func (s *Scheduler) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// RunUntil executes all events scheduled at or before the deadline,
// advancing the clock as it goes, then sets the clock to the deadline.
// Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		e := heap.Pop(&s.queue).(*schedEvent)
		s.now = e.at
		e.fn()
	}
	if deadline > s.now {
		s.now = deadline
	}
}

// Run executes all queued events to exhaustion.
func (s *Scheduler) Run() {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*schedEvent)
		s.now = e.at
		e.fn()
	}
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Reset discards queued events and rewinds the clock to zero, allowing a
// scheduler to be reused across page visits.
func (s *Scheduler) Reset() {
	s.now = 0
	s.seq = 0
	s.queue = s.queue[:0]
}
