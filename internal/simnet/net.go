package simnet

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Scheme is the URL scheme of a request. WebSocket schemes matter to the
// study: WS/WSS requests are exempt from the Same-Origin Policy and the
// paper observed extensive WSS use for localhost scanning.
type Scheme string

// Supported schemes.
const (
	SchemeHTTP  Scheme = "http"
	SchemeHTTPS Scheme = "https"
	SchemeWS    Scheme = "ws"
	SchemeWSS   Scheme = "wss"
)

// Secure reports whether the scheme is TLS-protected.
func (s Scheme) Secure() bool { return s == SchemeHTTPS || s == SchemeWSS }

// WebSocket reports whether the scheme is a WebSocket scheme.
func (s Scheme) WebSocket() bool { return s == SchemeWS || s == SchemeWSS }

// DefaultPort returns the scheme's default port.
func (s Scheme) DefaultPort() uint16 {
	if s.Secure() {
		return 443
	}
	return 80
}

// Request is a message-level network request as seen by a service.
type Request struct {
	Method    string // GET or POST
	Scheme    Scheme
	Host      string // host component as written in the URL
	Addr      netip.Addr
	Port      uint16
	Path      string // path plus query
	UserAgent string
	Origin    string // requesting page origin, for CORS/preflight modeling
	Preflight bool   // CORS preflight (OPTIONS) — used by the pna package
	Header    map[string]string
}

// URL reconstructs the full request URL.
func (r *Request) URL() string {
	hostport := r.Host
	if r.Port != r.Scheme.DefaultPort() {
		hostport = fmt.Sprintf("%s:%d", r.Host, r.Port)
	}
	path := r.Path
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return fmt.Sprintf("%s://%s%s", r.Scheme, hostport, path)
}

// Response is a message-level service response.
type Response struct {
	Status      int
	Location    string // redirect target when Status is 3xx
	ContentType string
	BodySize    int
	// WebSocketAccept reports a successful WebSocket upgrade (101).
	WebSocketAccept bool
	// ServeDelay is extra server-side processing time before the
	// response headers are available.
	ServeDelay time.Duration
	// ResetAfterHeaders models a server that sends headers then resets.
	ResetAfterHeaders bool
	// Header carries response headers relevant to the study (e.g.
	// Access-Control-Allow-Private-Network for the PNA defense).
	Header map[string]string
	// Document is the parsed page for HTML responses, as an opaque
	// value (the browser asserts it to its page model). Transport-level
	// packages never inspect it.
	Document any
}

// Service handles message-level requests for one (address, port) binding.
type Service interface {
	Serve(req *Request) *Response
}

// ServiceFunc adapts a function to the Service interface.
type ServiceFunc func(req *Request) *Response

// Serve implements Service.
func (f ServiceFunc) Serve(req *Request) *Response { return f(req) }

// DialOutcome is the transport-level result of a connection attempt.
type DialOutcome int

// Dial outcomes.
const (
	DialAccepted DialOutcome = iota // a listener accepted the connection
	DialRefused                     // active refusal (RST to SYN)
	DialReset                       // connection established then reset
	DialTimeout                     // silently dropped; times out
)

// String returns a short name for the outcome.
func (d DialOutcome) String() string {
	switch d {
	case DialAccepted:
		return "accepted"
	case DialRefused:
		return "refused"
	case DialReset:
		return "reset"
	case DialTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("outcome(%d)", int(d))
	}
}

// NetError maps the outcome to its Chrome net error, or OK for accepted.
func (d DialOutcome) NetError() NetError {
	switch d {
	case DialRefused:
		return ErrConnectionRefused
	case DialReset:
		return ErrConnectionReset
	case DialTimeout:
		return ErrConnectionTimedOut
	default:
		return OK
	}
}

// TLSInfo describes the certificate presented on a TLS port.
type TLSInfo struct {
	// CommonName is the certificate subject CN.
	CommonName string
	// SubjectAltNames lists additional valid names; a leading "*." entry
	// is a wildcard for one label.
	SubjectAltNames []string
	// Broken models a server whose TLS handshake fails outright.
	Broken bool
}

// ValidFor reports whether the certificate matches the given host name.
// A "*." name matches exactly one leading label, per RFC 6125.
func (t *TLSInfo) ValidFor(host string) bool {
	names := make([]string, 0, 1+len(t.SubjectAltNames))
	names = append(names, t.CommonName)
	names = append(names, t.SubjectAltNames...)
	for _, n := range names {
		if n == host {
			return true
		}
		if rest, ok := strings.CutPrefix(n, "*."); ok {
			if i := strings.IndexByte(host, '.'); i > 0 && host[i+1:] == rest {
				return true
			}
		}
	}
	return false
}

// Endpoint is what a dialer finds at an (address, port): a transport
// outcome, the TLS configuration if any, and the service behind it.
type Endpoint struct {
	Outcome DialOutcome
	TLS     *TLSInfo
	Service Service
}

// Locator answers the question "what is listening at addr:port from this
// machine's point of view". The public Internet (Network), the crawling
// machine's localhost table, and its LAN inventory all implement it.
type Locator interface {
	Locate(addr netip.Addr, port uint16) Endpoint
}

type endpointKey struct {
	addr netip.Addr
	port uint16
}

// Network is the public Internet: a set of bound endpoints plus DNS and
// latency models. Dialing a known host on an unbound port is refused;
// dialing an unknown address times out (unroutable).
//
// Binding (Bind/BindService/AddHost) is mutex-guarded so world
// construction can register sites from a worker pool. Locate is
// lock-free by the same freeze contract as Resolver.Resolve: the
// endpoint tables are immutable once the world is built, and the
// per-request dial path stays free of synchronization (measured faster
// than read-locking on every dial, and cheaper than merging per-worker
// endpoint shards at 100K-site scale). Do not Locate concurrently with
// binding.
type Network struct {
	Resolver *Resolver
	// Seed feeds every deterministic draw the Conditions chain makes for
	// flows on this network.
	Seed uint64
	// online gates the crawler's connectivity checks (§3.1: "we first
	// check for network connectivity by pinging Google's DNS server").
	// It is atomic so tests can inject outages mid-crawl.
	online atomic.Bool

	mu        sync.Mutex // guards writes to endpoints/hosts during build
	endpoints map[endpointKey]Endpoint
	hosts     map[netip.Addr]bool
}

// NewNetwork returns an empty, online network with a fresh resolver; the
// seed drives every deterministic timing draw made against it.
func NewNetwork(seed uint64) *Network {
	n := &Network{
		Resolver:  NewResolver(),
		Seed:      seed,
		endpoints: make(map[endpointKey]Endpoint),
		hosts:     make(map[netip.Addr]bool),
	}
	n.online.Store(true)
	return n
}

// Bind attaches an endpoint at addr:port, implicitly registering the
// host. Safe for concurrent use during world construction.
func (n *Network) Bind(addr netip.Addr, port uint16, ep Endpoint) {
	n.mu.Lock()
	n.hosts[addr] = true
	n.endpoints[endpointKey{addr, port}] = ep
	n.mu.Unlock()
}

// BindService is shorthand for binding an accepting endpoint.
func (n *Network) BindService(addr netip.Addr, port uint16, tls *TLSInfo, svc Service) {
	n.Bind(addr, port, Endpoint{Outcome: DialAccepted, TLS: tls, Service: svc})
}

// AddHost registers a routable host with no listeners (all ports refuse).
func (n *Network) AddHost(addr netip.Addr) {
	n.mu.Lock()
	n.hosts[addr] = true
	n.mu.Unlock()
}

// NumHosts reports the number of registered hosts.
func (n *Network) NumHosts() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.hosts)
}

// Locate implements Locator for public destinations.
func (n *Network) Locate(addr netip.Addr, port uint16) Endpoint {
	if ep, ok := n.endpoints[endpointKey{addr, port}]; ok {
		return ep
	}
	if n.hosts[addr] {
		return Endpoint{Outcome: DialRefused}
	}
	return Endpoint{Outcome: DialTimeout}
}

// Ping models the crawler's connectivity check against a well-known
// public address (8.8.8.8).
func (n *Network) Ping(addr netip.Addr) bool { return n.online.Load() }

// SetOnline injects or clears a network outage. Safe to call while a
// crawl is running.
func (n *Network) SetOnline(v bool) { n.online.Store(v) }
