package simnet

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v", order)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", s.Now())
	}
}

func TestSchedulerTieBreakFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	ran := map[int]bool{}
	s.At(5*time.Second, func() { ran[5] = true })
	s.At(25*time.Second, func() { ran[25] = true })
	s.RunUntil(20 * time.Second)
	if !ran[5] || ran[25] {
		t.Errorf("RunUntil executed wrong events: %v", ran)
	}
	if s.Now() != 20*time.Second {
		t.Errorf("clock = %v, want 20s (deadline)", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var hits []time.Duration
	s.At(time.Second, func() {
		hits = append(hits, s.Now())
		s.After(2*time.Second, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 3*time.Second {
		t.Errorf("hits = %v", hits)
	}
}

func TestSchedulerPastClamped(t *testing.T) {
	s := NewScheduler()
	var at time.Duration = -1
	s.At(2*time.Second, func() {
		s.At(time.Second, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 2*time.Second {
		t.Errorf("past event ran at %v, want clamped to 2s", at)
	}
}

func TestSchedulerReset(t *testing.T) {
	s := NewScheduler()
	s.At(time.Second, func() {})
	s.RunUntil(500 * time.Millisecond)
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 {
		t.Errorf("Reset left now=%v pending=%d", s.Now(), s.Pending())
	}
}

func TestResolverLocalhost(t *testing.T) {
	r := NewResolver()
	addrs, err := r.Resolve("localhost")
	if err.IsFailure() {
		t.Fatalf("localhost failed: %v", err)
	}
	if len(addrs) != 2 || addrs[0] != netip.MustParseAddr("127.0.0.1") || addrs[1] != netip.IPv6Loopback() {
		t.Errorf("localhost = %v", addrs)
	}
}

func TestResolverIPLiteral(t *testing.T) {
	r := NewResolver()
	addrs, err := r.Resolve("10.193.31.212")
	if err.IsFailure() || len(addrs) != 1 || addrs[0] != netip.MustParseAddr("10.193.31.212") {
		t.Errorf("IP literal: %v, %v", addrs, err)
	}
}

func TestResolverNXDomain(t *testing.T) {
	r := NewResolver()
	if _, err := r.Resolve("no-such-host.example"); err != ErrNameNotResolved {
		t.Errorf("err = %v, want ERR_NAME_NOT_RESOLVED", err)
	}
}

func TestResolverAddRemove(t *testing.T) {
	r := NewResolver()
	ip := netip.MustParseAddr("203.0.113.7")
	r.Add("ebay.com", ip)
	addrs, err := r.Resolve("ebay.com")
	if err.IsFailure() || len(addrs) != 1 || addrs[0] != ip {
		t.Fatalf("resolve after Add: %v, %v", addrs, err)
	}
	// Returned slice must be a copy.
	addrs[0] = netip.MustParseAddr("198.51.100.1")
	again, _ := r.Resolve("ebay.com")
	if again[0] != ip {
		t.Error("Resolve returned aliased storage")
	}
	r.Remove("ebay.com")
	if _, err := r.Resolve("ebay.com"); !err.IsFailure() {
		t.Error("Remove did not take effect")
	}
}

// nominalRTT is the convenience the old LatencyModel.RTT provided,
// rebuilt on the Conditions chain.
func nominalRTT(seed uint64, v Vantage, dst netip.Addr) time.Duration {
	c := Nominal(v)
	return c.Path(seed, Flow{Vantage: v.Name, Dst: dst}).RTT
}

func TestLatencyDeterministicAndClassed(t *testing.T) {
	lo := netip.MustParseAddr("127.0.0.1")
	lan := netip.MustParseAddr("192.168.1.8")
	pub := netip.MustParseAddr("203.0.113.9")

	if a, b := nominalRTT(42, VantageCampus, pub), nominalRTT(42, VantageCampus, pub); a != b {
		t.Errorf("RTT not deterministic: %v != %v", a, b)
	}
	rttLo := nominalRTT(42, VantageCampus, lo)
	rttLAN := nominalRTT(42, VantageCampus, lan)
	rttPub := nominalRTT(42, VantageCampus, pub)
	if !(rttLo < rttLAN && rttLAN < rttPub) {
		t.Errorf("latency ordering violated: lo=%v lan=%v pub=%v", rttLo, rttLAN, rttPub)
	}
	if rttLo > time.Millisecond {
		t.Errorf("loopback RTT %v too slow", rttLo)
	}
	if rttPub < VantageCampus.BaseRTT {
		t.Errorf("public RTT %v under base", rttPub)
	}
}

func TestLatencySeedSensitivity(t *testing.T) {
	pub := netip.MustParseAddr("203.0.113.9")
	a := nominalRTT(1, VantageCampus, pub)
	b := nominalRTT(2, VantageCampus, pub)
	if a == b {
		t.Error("different seeds produced identical jitter (possible, but suspicious for this pair)")
	}
}

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s       Scheme
		secure  bool
		ws      bool
		defPort uint16
	}{
		{SchemeHTTP, false, false, 80},
		{SchemeHTTPS, true, false, 443},
		{SchemeWS, false, true, 80},
		{SchemeWSS, true, true, 443},
	}
	for _, c := range cases {
		if c.s.Secure() != c.secure || c.s.WebSocket() != c.ws || c.s.DefaultPort() != c.defPort {
			t.Errorf("scheme %q properties wrong", c.s)
		}
	}
}

func TestRequestURL(t *testing.T) {
	r := &Request{Scheme: SchemeWSS, Host: "localhost", Port: 5939, Path: "/"}
	if got := r.URL(); got != "wss://localhost:5939/" {
		t.Errorf("URL = %q", got)
	}
	r2 := &Request{Scheme: SchemeHTTPS, Host: "ebay.com", Port: 443, Path: "/"}
	if got := r2.URL(); got != "https://ebay.com/" {
		t.Errorf("URL = %q (default port must be elided)", got)
	}
	r3 := &Request{Scheme: SchemeHTTP, Host: "a.b", Port: 80, Path: "x"}
	if got := r3.URL(); got != "http://a.b/x" {
		t.Errorf("URL = %q (missing slash must be added)", got)
	}
}

func TestDialOutcomeNetError(t *testing.T) {
	cases := map[DialOutcome]NetError{
		DialAccepted: OK,
		DialRefused:  ErrConnectionRefused,
		DialReset:    ErrConnectionReset,
		DialTimeout:  ErrConnectionTimedOut,
	}
	for d, want := range cases {
		if d.NetError() != want {
			t.Errorf("%v.NetError() = %v, want %v", d, d.NetError(), want)
		}
	}
}

func TestTLSValidFor(t *testing.T) {
	info := &TLSInfo{CommonName: "ebay.com", SubjectAltNames: []string{"*.ebay.com"}}
	cases := map[string]bool{
		"ebay.com":      true,
		"www.ebay.com":  true,
		"a.b.ebay.com":  false, // wildcard is single-label
		"evilebay.com":  false,
		"ebay.com.evil": false,
	}
	for host, want := range cases {
		if got := info.ValidFor(host); got != want {
			t.Errorf("ValidFor(%q) = %v, want %v", host, got, want)
		}
	}
}

func TestNetworkLocate(t *testing.T) {
	n := NewNetwork(7)
	addr := netip.MustParseAddr("203.0.113.5")
	n.BindService(addr, 443, &TLSInfo{CommonName: "x.test"}, ServiceFunc(func(*Request) *Response {
		return &Response{Status: 200}
	}))

	if ep := n.Locate(addr, 443); ep.Outcome != DialAccepted || ep.Service == nil {
		t.Error("bound endpoint not found")
	}
	if ep := n.Locate(addr, 8080); ep.Outcome != DialRefused {
		t.Errorf("known host, unbound port: %v, want refused", ep.Outcome)
	}
	if ep := n.Locate(netip.MustParseAddr("203.0.113.250"), 80); ep.Outcome != DialTimeout {
		t.Errorf("unknown host: %v, want timeout", ep.Outcome)
	}
}

func TestNetworkOnlineGate(t *testing.T) {
	n := NewNetwork(1)
	dns := netip.MustParseAddr("8.8.8.8")
	if !n.Ping(dns) {
		t.Error("fresh network should be online")
	}
	n.SetOnline(false)
	if n.Ping(dns) {
		t.Error("offline network answered ping")
	}
}

// Property: RTT is always within the documented envelope for its class.
func TestQuickLatencyEnvelope(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		ip := netip.AddrFrom4([4]byte{a, b, c, d})
		rtt := nominalRTT(99, VantageCampus, ip)
		switch {
		case ip.IsLoopback():
			return rtt >= 150*time.Microsecond && rtt < 400*time.Microsecond
		case ip.IsPrivate():
			return rtt >= time.Millisecond && rtt < 5*time.Millisecond
		case ip.IsLinkLocalUnicast():
			return rtt >= time.Millisecond && rtt < 3*time.Millisecond
		default:
			return rtt >= VantageCampus.BaseRTT && rtt < VantageCampus.BaseRTT+VantageCampus.Jitter
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
