package simnet

import "time"

// Vantage describes where the crawling machine sits on the network. The
// paper crawled from two vantages: Windows/Linux VMs on Georgia Tech's
// academic ISP and a MacBook Air on Comcast's residential network in
// Atlanta (Figure 1). A vantage carries only the nominal figures; the
// full timing behavior of a crawl lives in Conditions, which turns a
// vantage into the base-latency and jitter stages of its chain.
type Vantage struct {
	Name    string
	BaseRTT time.Duration // median RTT to public hosts
	Jitter  time.Duration // maximum deterministic jitter added per host
}

// The two vantages of the paper's measurement setup.
var (
	VantageCampus      = Vantage{Name: "gatech-isp", BaseRTT: 22 * time.Millisecond, Jitter: 38 * time.Millisecond}
	VantageResidential = Vantage{Name: "comcast-residential", BaseRTT: 31 * time.Millisecond, Jitter: 55 * time.Millisecond}
)

// ConnectTimeout is the nominal time a connection attempt to a silently
// dropping destination takes to fail; ConnectTimeoutPolicy stages
// override it per profile.
const ConnectTimeout = 9 * time.Second
