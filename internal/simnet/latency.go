package simnet

import (
	"hash/fnv"
	"net/netip"
	"time"
)

// Vantage describes where the crawling machine sits on the network. The
// paper crawled from two vantages: Windows/Linux VMs on Georgia Tech's
// academic ISP and a MacBook Air on Comcast's residential network in
// Atlanta (Figure 1).
type Vantage struct {
	Name    string
	BaseRTT time.Duration // median RTT to public hosts
	Jitter  time.Duration // maximum deterministic jitter added per host
}

// The two vantages of the paper's measurement setup.
var (
	VantageCampus      = Vantage{Name: "gatech-isp", BaseRTT: 22 * time.Millisecond, Jitter: 38 * time.Millisecond}
	VantageResidential = Vantage{Name: "comcast-residential", BaseRTT: 31 * time.Millisecond, Jitter: 55 * time.Millisecond}
)

// LatencyModel produces deterministic per-destination round-trip times.
// Jitter is a hash of (seed, vantage, destination), so the same crawl
// configuration always observes the same timings.
type LatencyModel struct {
	Seed uint64
}

// RTT returns the round-trip time from a vantage to a destination
// address. Loopback destinations answer in microseconds, RFC1918
// destinations in low single-digit milliseconds, and public destinations
// at vantage base plus stable jitter.
func (m *LatencyModel) RTT(v Vantage, dst netip.Addr) time.Duration {
	switch {
	case dst.IsLoopback():
		return 150*time.Microsecond + m.jitter(v, dst, 250*time.Microsecond)
	case dst.Is4() && dst.IsPrivate():
		return 1*time.Millisecond + m.jitter(v, dst, 4*time.Millisecond)
	case dst.IsLinkLocalUnicast():
		return 1*time.Millisecond + m.jitter(v, dst, 2*time.Millisecond)
	default:
		return v.BaseRTT + m.jitter(v, dst, v.Jitter)
	}
}

// ConnectTimeout is how long a connection attempt to a silently dropping
// destination takes to fail.
const ConnectTimeout = 9 * time.Second

func (m *LatencyModel) jitter(v Vantage, dst netip.Addr, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(m.Seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(v.Name))
	b, _ := dst.MarshalBinary()
	h.Write(b)
	return time.Duration(h.Sum64() % uint64(max))
}
