package simnet

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"
)

// Conditions is the composable network-condition layer: an ordered chain
// of impairment stages applied to every flow the browser opens. It
// subsumes the old LatencyModel (base latency + deterministic jitter)
// and extends it with the tc/netem-style axes — packet/connection loss,
// bandwidth-induced transfer delay, DNS slowdown and resolver failure,
// and connect-timeout policy. Every stage draws from (seed, flow) hashes
// only, so a crawl under any profile reproduces bit-for-bit.
//
// The nominal chain (Nominal) produces exactly the timings the old
// model did, keeping unimpaired crawls byte-identical to the goldens.
type Conditions struct {
	// Name is the profile name recorded in manifests and telemetry.
	Name string
	// FlowVantage is the identity mixed into per-flow hashes. Nominal
	// conditions use the machine's vantage name (so per-OS crawls keep
	// their historical timings); impaired profiles use their own name,
	// making the impairment pattern independent of the crawling OS.
	FlowVantage string
	// Stages is the impairment chain, applied in order.
	Stages []Stage
}

// Flow identifies one network interaction from the crawling machine's
// point of view. Dst is unset for DNS lookups (the address is not known
// yet); Host is empty for flows addressed by IP literal.
type Flow struct {
	Vantage string
	Dst     netip.Addr
	Port    uint16
	Host    string
}

// Path is the effective per-flow network behavior after the chain has
// been applied: what the browser uses for every timing decision.
type Path struct {
	// RTT is the round-trip time to the destination.
	RTT time.Duration
	// ConnectTimeout is how long a silently-dropped dial takes to fail.
	ConnectTimeout time.Duration
	// Drop marks a connection the link loses: the dial times out even if
	// a listener would have accepted it.
	Drop bool
	// DNSResolve and DNSFailure are the successful-lookup and NXDOMAIN
	// latencies; DNSTimeout marks a lookup that dies at the resolver
	// (ERR_DNS_TIMED_OUT after DNSTimeoutAfter), a failure mode distinct
	// from NXDOMAIN.
	DNSResolve      time.Duration
	DNSFailure      time.Duration
	DNSTimeout      bool
	DNSTimeoutAfter time.Duration
	// BytesPerSec caps the link's transfer rate; zero means unshaped.
	BytesPerSec int64
}

// TransferDelay is the body-read time for a response of the given size:
// the nominal RTT-scaled read (capped as before) plus the serialization
// delay a shaped link adds on top.
func (p *Path) TransferDelay(bytes int) time.Duration {
	d := p.RTT/2 + time.Duration(bytes/1200)*p.RTT/10
	if d > 3*time.Second {
		d = 3 * time.Second
	}
	if p.BytesPerSec > 0 && bytes > 0 {
		d += time.Duration(bytes) * time.Second / time.Duration(p.BytesPerSec)
	}
	return d
}

// Stage is one link in the impairment chain. Implementations must be
// pure functions of (seed, flow): no shared state, no wall clock.
type Stage interface {
	Apply(seed uint64, f Flow, p *Path)
}

// DNSTimeoutDelay is the default time a resolver-timeout lookup spends
// before giving up (several retransmits to a dead resolver).
const DNSTimeoutDelay = 4 * time.Second

// Path applies the chain to one flow, starting from the package's
// nominal defaults (ConnectTimeout, ResolutionDelay, FailureDelay).
func (c *Conditions) Path(seed uint64, f Flow) Path {
	p := Path{
		ConnectTimeout:  ConnectTimeout,
		DNSResolve:      ResolutionDelay,
		DNSFailure:      FailureDelay,
		DNSTimeoutAfter: DNSTimeoutDelay,
	}
	for _, st := range c.Stages {
		st.Apply(seed, f, &p)
	}
	return p
}

// Impaired reports whether the chain contains any stage beyond nominal
// latency and jitter — the condition under which the crawler counts
// visits into crawl_impaired_visits_total.
func (c *Conditions) Impaired() bool {
	for _, st := range c.Stages {
		switch st.(type) {
		case BaseLatency, Jitter:
		default:
			return true
		}
	}
	return false
}

// linkClass buckets destinations the way the old LatencyModel did:
// loopback, RFC1918 IPv4, link-local, everything else public. Flows with
// no destination yet (DNS lookups) ride the public link.
type linkClass uint8

const (
	linkLoopback linkClass = iota
	linkLAN
	linkLinkLocal
	linkPublic
)

func classify(dst netip.Addr) linkClass {
	switch {
	case !dst.IsValid():
		return linkPublic
	case dst.IsLoopback():
		return linkLoopback
	case dst.Is4() && dst.IsPrivate():
		return linkLAN
	case dst.IsLinkLocalUnicast():
		return linkLinkLocal
	default:
		return linkPublic
	}
}

// Scope selects which destination classes a stage affects, so a lossy
// wifi link can hurt LAN and public flows while loopback stays perfect.
type Scope uint8

// Scope bits.
const (
	ScopeLoopback Scope = 1 << iota
	ScopeLAN
	ScopeLinkLocal
	ScopePublic

	// ScopeRemote is everything that leaves the machine.
	ScopeRemote = ScopeLAN | ScopeLinkLocal | ScopePublic
	// ScopeAll covers every destination class.
	ScopeAll = ScopeLoopback | ScopeRemote
)

func (s Scope) has(c linkClass) bool {
	switch c {
	case linkLoopback:
		return s&ScopeLoopback != 0
	case linkLAN:
		return s&ScopeLAN != 0
	case linkLinkLocal:
		return s&ScopeLinkLocal != 0
	default:
		return s&ScopePublic != 0
	}
}

// BaseLatency adds the class base RTT for the destination.
type BaseLatency struct {
	Loopback, LAN, LinkLocal, Public time.Duration
}

// Apply implements Stage.
func (s BaseLatency) Apply(seed uint64, f Flow, p *Path) {
	switch classify(f.Dst) {
	case linkLoopback:
		p.RTT += s.Loopback
	case linkLAN:
		p.RTT += s.LAN
	case linkLinkLocal:
		p.RTT += s.LinkLocal
	default:
		p.RTT += s.Public
	}
}

// Jitter adds deterministic per-destination jitter, up to the class
// maximum, hashed from (seed, vantage, destination) exactly as the old
// LatencyModel did — the hash must stay byte-compatible or nominal
// crawls drift from the goldens.
type Jitter struct {
	Loopback, LAN, LinkLocal, Public time.Duration
}

// Apply implements Stage.
func (s Jitter) Apply(seed uint64, f Flow, p *Path) {
	var max time.Duration
	switch classify(f.Dst) {
	case linkLoopback:
		max = s.Loopback
	case linkLAN:
		max = s.LAN
	case linkLinkLocal:
		max = s.LinkLocal
	default:
		max = s.Public
	}
	p.RTT += flowJitter(seed, f.Vantage, f.Dst, max)
}

func flowJitter(seed uint64, vantage string, dst netip.Addr, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	h := fnv.New64a()
	var sb [8]byte
	for i := 0; i < 8; i++ {
		sb[i] = byte(seed >> (8 * i))
	}
	h.Write(sb[:])
	h.Write([]byte(vantage))
	b, _ := dst.MarshalBinary()
	h.Write(b)
	return time.Duration(h.Sum64() % uint64(max))
}

// flowDraw returns a deterministic uniform draw in [0, 1) for one flow
// and purpose label.
func flowDraw(seed uint64, label, vantage string, dst netip.Addr, port uint16, host string) float64 {
	h := fnv.New64a()
	var sb [8]byte
	for i := 0; i < 8; i++ {
		sb[i] = byte(seed >> (8 * i))
	}
	h.Write(sb[:])
	h.Write([]byte(label))
	h.Write([]byte(vantage))
	b, _ := dst.MarshalBinary()
	h.Write(b)
	h.Write([]byte{byte(port), byte(port >> 8)})
	h.Write([]byte(host))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Loss drops a fraction of connections: a dropped dial times out (after
// Path.ConnectTimeout) even on a listening port. The draw is keyed per
// (seed, vantage, destination, port), so a given link is consistently
// bad within a crawl — individual port knocks drop independently of one
// another, but deterministically across runs.
type Loss struct {
	Rate  float64
	Scope Scope
}

// Apply implements Stage.
func (s Loss) Apply(seed uint64, f Flow, p *Path) {
	if s.Rate <= 0 || !s.Scope.has(classify(f.Dst)) {
		return
	}
	if flowDraw(seed, "loss", f.Vantage, f.Dst, f.Port, "") < s.Rate {
		p.Drop = true
	}
}

// Bandwidth caps the link's transfer rate, adding serialization delay to
// body reads (Path.TransferDelay). The tightest cap in the chain wins.
type Bandwidth struct {
	BytesPerSec int64
	Scope       Scope
}

// Apply implements Stage.
func (s Bandwidth) Apply(seed uint64, f Flow, p *Path) {
	if s.BytesPerSec <= 0 || !s.Scope.has(classify(f.Dst)) {
		return
	}
	if p.BytesPerSec == 0 || s.BytesPerSec < p.BytesPerSec {
		p.BytesPerSec = s.BytesPerSec
	}
}

// DNSImpairment slows lookups and makes a fraction of them die at the
// resolver: a timed-out lookup fails with ERR_DNS_TIMED_OUT after
// TimeoutAfter, distinguishable in the NetLog from NXDOMAIN. Timeouts
// are keyed per (seed, host), so the same names fail on every run.
type DNSImpairment struct {
	ResolveDelay time.Duration // replaces the nominal ResolutionDelay when > 0
	FailureDelay time.Duration // replaces the nominal FailureDelay when > 0
	TimeoutRate  float64
	TimeoutAfter time.Duration // replaces DNSTimeoutDelay when > 0
}

// Apply implements Stage.
func (s DNSImpairment) Apply(seed uint64, f Flow, p *Path) {
	if s.ResolveDelay > 0 {
		p.DNSResolve = s.ResolveDelay
	}
	if s.FailureDelay > 0 {
		p.DNSFailure = s.FailureDelay
	}
	if s.TimeoutAfter > 0 {
		p.DNSTimeoutAfter = s.TimeoutAfter
	}
	if s.TimeoutRate > 0 && f.Host != "" &&
		flowDraw(seed, "dns-timeout", f.Vantage, netip.Addr{}, 0, f.Host) < s.TimeoutRate {
		p.DNSTimeout = true
	}
}

// ConnectTimeoutPolicy overrides how long a silently-dropped dial takes
// to fail; the package ConnectTimeout constant is the nominal default.
type ConnectTimeoutPolicy struct {
	Timeout time.Duration
}

// Apply implements Stage.
func (s ConnectTimeoutPolicy) Apply(seed uint64, f Flow, p *Path) {
	if s.Timeout > 0 {
		p.ConnectTimeout = s.Timeout
	}
}

// Nominal returns the unimpaired conditions for a vantage: exactly the
// timings the pre-Conditions LatencyModel produced, stage by stage.
func Nominal(v Vantage) *Conditions {
	return &Conditions{
		Name:        "nominal",
		FlowVantage: v.Name,
		Stages: []Stage{
			BaseLatency{Loopback: 150 * time.Microsecond, LAN: time.Millisecond, LinkLocal: time.Millisecond, Public: v.BaseRTT},
			Jitter{Loopback: 250 * time.Microsecond, LAN: 4 * time.Millisecond, LinkLocal: 2 * time.Millisecond, Public: v.Jitter},
		},
	}
}

// nominalFor builds a named nominal profile pinned to one vantage. Its
// FlowVantage stays the vantage name, so a Windows crawl under
// "nominal-campus" is byte-identical to a default Windows crawl.
func nominalFor(name string, v Vantage) *Conditions {
	c := Nominal(v)
	c.Name = name
	return c
}

// The named impairment profiles. Base/jitter figures follow the shaping
// recipes netem deployments use for these link types; loss and DNS rates
// rise with severity so the detection-degradation sweep decays
// monotonically along SweepOrder.
func residentialCongested() *Conditions {
	return &Conditions{
		Name:        "residential-congested",
		FlowVantage: "residential-congested",
		Stages: []Stage{
			BaseLatency{Loopback: 150 * time.Microsecond, LAN: 2 * time.Millisecond, LinkLocal: time.Millisecond, Public: 85 * time.Millisecond},
			Jitter{Loopback: 250 * time.Microsecond, LAN: 6 * time.Millisecond, LinkLocal: 2 * time.Millisecond, Public: 110 * time.Millisecond},
			Loss{Rate: 0.02, Scope: ScopePublic},
			Bandwidth{BytesPerSec: 750_000, Scope: ScopePublic},
			DNSImpairment{ResolveDelay: 45 * time.Millisecond, FailureDelay: 300 * time.Millisecond, TimeoutRate: 0.01},
		},
	}
}

func mobile3G() *Conditions {
	return &Conditions{
		Name:        "mobile-3g",
		FlowVantage: "mobile-3g",
		Stages: []Stage{
			BaseLatency{Loopback: 150 * time.Microsecond, LAN: time.Millisecond, LinkLocal: time.Millisecond, Public: 180 * time.Millisecond},
			Jitter{Loopback: 250 * time.Microsecond, LAN: 4 * time.Millisecond, LinkLocal: 2 * time.Millisecond, Public: 220 * time.Millisecond},
			Loss{Rate: 0.05, Scope: ScopePublic},
			Bandwidth{BytesPerSec: 48_000, Scope: ScopePublic},
			DNSImpairment{ResolveDelay: 90 * time.Millisecond, FailureDelay: 500 * time.Millisecond, TimeoutRate: 0.03, TimeoutAfter: 5 * time.Second},
		},
	}
}

func satellite() *Conditions {
	return &Conditions{
		Name:        "satellite",
		FlowVantage: "satellite",
		Stages: []Stage{
			BaseLatency{Loopback: 150 * time.Microsecond, LAN: time.Millisecond, LinkLocal: time.Millisecond, Public: 600 * time.Millisecond},
			Jitter{Loopback: 250 * time.Microsecond, LAN: 4 * time.Millisecond, LinkLocal: 2 * time.Millisecond, Public: 160 * time.Millisecond},
			Loss{Rate: 0.09, Scope: ScopePublic},
			Bandwidth{BytesPerSec: 135_000, Scope: ScopePublic},
			DNSImpairment{ResolveDelay: 650 * time.Millisecond, FailureDelay: 1200 * time.Millisecond, TimeoutRate: 0.05, TimeoutAfter: 6 * time.Second},
		},
	}
}

func lossyWifi() *Conditions {
	return &Conditions{
		Name:        "lossy-wifi",
		FlowVantage: "lossy-wifi",
		Stages: []Stage{
			BaseLatency{Loopback: 150 * time.Microsecond, LAN: 3 * time.Millisecond, LinkLocal: 2 * time.Millisecond, Public: 35 * time.Millisecond},
			Jitter{Loopback: 250 * time.Microsecond, LAN: 8 * time.Millisecond, LinkLocal: 4 * time.Millisecond, Public: 48 * time.Millisecond},
			Loss{Rate: 0.08, Scope: ScopeRemote},
		},
	}
}

// SweepOrder is the severity chain the detection-degradation sweep
// asserts monotone decay over: each profile is strictly harsher than the
// one before it on every axis it shares.
var SweepOrder = []string{"nominal", "residential-congested", "mobile-3g", "satellite"}

// ProfileNames lists every named profile ProfileByName accepts.
func ProfileNames() []string {
	return []string{
		"nominal", "nominal-campus", "nominal-residential",
		"lossy-wifi", "residential-congested", "mobile-3g", "satellite",
	}
}

// ProfileByName resolves a named profile. The empty string and "nominal"
// return nil: run under the crawling machine's own vantage, unimpaired —
// the byte-identical-to-golden configuration.
func ProfileByName(name string) (*Conditions, error) {
	switch name {
	case "", "nominal":
		return nil, nil
	case "nominal-campus":
		return nominalFor("nominal-campus", VantageCampus), nil
	case "nominal-residential":
		return nominalFor("nominal-residential", VantageResidential), nil
	case "residential-congested":
		return residentialCongested(), nil
	case "mobile-3g":
		return mobile3G(), nil
	case "satellite":
		return satellite(), nil
	case "lossy-wifi":
		return lossyWifi(), nil
	default:
		return nil, fmt.Errorf("simnet: unknown network profile %q (have %v)", name, ProfileNames())
	}
}
