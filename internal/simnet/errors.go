package simnet

// NetError mirrors Chrome's net error taxonomy for the failure modes that
// appear in the paper's crawl statistics (Table 1) and telemetry.
type NetError string

// Net errors, named as Chrome names them.
const (
	OK                      NetError = ""
	ErrNameNotResolved      NetError = "ERR_NAME_NOT_RESOLVED"
	ErrDNSTimedOut          NetError = "ERR_DNS_TIMED_OUT"
	ErrConnectionRefused    NetError = "ERR_CONNECTION_REFUSED"
	ErrConnectionReset      NetError = "ERR_CONNECTION_RESET"
	ErrConnectionTimedOut   NetError = "ERR_CONNECTION_TIMED_OUT"
	ErrCertCommonNameBad    NetError = "ERR_CERT_COMMON_NAME_INVALID"
	ErrSSLProtocolError     NetError = "ERR_SSL_PROTOCOL_ERROR"
	ErrEmptyResponse        NetError = "ERR_EMPTY_RESPONSE"
	ErrAborted              NetError = "ERR_ABORTED"
	ErrInternetDisconnected NetError = "ERR_INTERNET_DISCONNECTED"
	ErrBlockedByClient      NetError = "ERR_BLOCKED_BY_CLIENT"
	ErrTooManyRedirects     NetError = "ERR_TOO_MANY_REDIRECTS"
	ErrInvalidHTTPResponse  NetError = "ERR_INVALID_HTTP_RESPONSE"
	ErrUnsafePort           NetError = "ERR_UNSAFE_PORT"
)

// Error implements the error interface; OK must not be treated as an
// error value (IsFailure reports usability).
func (e NetError) Error() string { return string(e) }

// IsFailure reports whether the value denotes a failure.
func (e NetError) IsFailure() bool { return e != OK }
