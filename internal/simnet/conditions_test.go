package simnet

import (
	"fmt"
	"net/netip"
	"testing"
	"time"
)

// TestNominalMatchesLegacyFormula pins the nominal chain to the old
// LatencyModel's arithmetic: class base plus the byte-compatible
// per-destination jitter hash, and untouched package defaults for
// everything else. Breaking this breaks golden byte-parity.
func TestNominalMatchesLegacyFormula(t *testing.T) {
	c := Nominal(VantageCampus)
	cases := []struct {
		dst        netip.Addr
		base, jmax time.Duration
	}{
		{netip.MustParseAddr("127.0.0.1"), 150 * time.Microsecond, 250 * time.Microsecond},
		{netip.MustParseAddr("192.168.1.20"), time.Millisecond, 4 * time.Millisecond},
		{netip.MustParseAddr("169.254.3.3"), time.Millisecond, 2 * time.Millisecond},
		{netip.MustParseAddr("203.0.113.50"), VantageCampus.BaseRTT, VantageCampus.Jitter},
	}
	for _, tc := range cases {
		p := c.Path(99, Flow{Vantage: c.FlowVantage, Dst: tc.dst, Port: 443})
		want := tc.base + flowJitter(99, VantageCampus.Name, tc.dst, tc.jmax)
		if p.RTT != want {
			t.Errorf("%v: RTT = %v, want %v", tc.dst, p.RTT, want)
		}
		if p.ConnectTimeout != ConnectTimeout || p.DNSResolve != ResolutionDelay ||
			p.DNSFailure != FailureDelay || p.Drop || p.DNSTimeout || p.BytesPerSec != 0 {
			t.Errorf("%v: nominal path carries impairment: %+v", tc.dst, p)
		}
	}
	if c.Impaired() {
		t.Error("nominal chain reports Impaired")
	}
}

// TestStageScopeAndOrder checks scope gating and chain semantics: a
// public-scoped loss stage never touches loopback, the tightest
// bandwidth cap wins, and the connect-timeout policy overrides the
// package default.
func TestStageScopeAndOrder(t *testing.T) {
	c := &Conditions{
		Name: "test", FlowVantage: "test",
		Stages: []Stage{
			Loss{Rate: 1, Scope: ScopePublic},
			Bandwidth{BytesPerSec: 500_000, Scope: ScopeAll},
			Bandwidth{BytesPerSec: 100_000, Scope: ScopeAll},
			Bandwidth{BytesPerSec: 900_000, Scope: ScopeAll},
			ConnectTimeoutPolicy{Timeout: 2 * time.Second},
		},
	}
	pub := c.Path(1, Flow{Vantage: "test", Dst: netip.MustParseAddr("203.0.113.1"), Port: 80})
	if !pub.Drop {
		t.Error("public flow survived a rate-1 loss stage")
	}
	loop := c.Path(1, Flow{Vantage: "test", Dst: netip.MustParseAddr("127.0.0.1"), Port: 80})
	if loop.Drop {
		t.Error("loopback flow dropped by a public-scoped loss stage")
	}
	if pub.BytesPerSec != 100_000 {
		t.Errorf("BytesPerSec = %d, want tightest cap 100000", pub.BytesPerSec)
	}
	if pub.ConnectTimeout != 2*time.Second {
		t.Errorf("ConnectTimeout = %v, want policy override 2s", pub.ConnectTimeout)
	}
	if !c.Impaired() {
		t.Error("impaired chain reports nominal")
	}
}

// TestLossDeterministicAndRateBounded: the loss draw is a pure function
// of (seed, flow) — identical across calls, different across seeds —
// and the empirical drop rate tracks the configured rate.
func TestLossDeterministicAndRateBounded(t *testing.T) {
	c, err := ProfileByName("satellite")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	drops := 0
	for i := 0; i < n; i++ {
		dst := netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)})
		f := Flow{Vantage: c.FlowVantage, Dst: dst, Port: uint16(8000 + i%100)}
		a := c.Path(42, f)
		b := c.Path(42, f)
		if a != b {
			t.Fatalf("flow %d: non-deterministic path: %+v vs %+v", i, a, b)
		}
		if a.Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.05 || rate > 0.14 {
		t.Errorf("empirical drop rate %.3f far from configured 0.09", rate)
	}
	diff := 0
	for i := 0; i < n; i++ {
		dst := netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)})
		f := Flow{Vantage: c.FlowVantage, Dst: dst, Port: uint16(8000 + i%100)}
		if c.Path(42, f).Drop != c.Path(43, f).Drop {
			diff++
		}
	}
	if diff == 0 {
		t.Error("changing the seed changed no loss outcomes")
	}
}

// TestDNSTimeoutKeyedOnHost: resolver timeouts are drawn per host name —
// stable across repeated lookups and across destination details, with
// the empirical rate near the configured one.
func TestDNSTimeoutKeyedOnHost(t *testing.T) {
	c, err := ProfileByName("satellite")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	timeouts := 0
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("site-%d.example", i)
		f := Flow{Vantage: c.FlowVantage, Host: host}
		a := c.Path(7, f)
		if a.DNSTimeout != c.Path(7, f).DNSTimeout {
			t.Fatalf("host %s: non-deterministic DNS timeout", host)
		}
		if a.DNSTimeout {
			timeouts++
			if a.DNSTimeoutAfter != 6*time.Second {
				t.Errorf("DNSTimeoutAfter = %v, want profile's 6s", a.DNSTimeoutAfter)
			}
		}
	}
	rate := float64(timeouts) / n
	if rate < 0.025 || rate > 0.08 {
		t.Errorf("empirical DNS-timeout rate %.3f far from configured 0.05", rate)
	}
	// Lookups with no host (IP-literal navigation) never time out.
	if c.Path(7, Flow{Vantage: c.FlowVantage, Dst: netip.MustParseAddr("203.0.113.9")}).DNSTimeout {
		t.Error("hostless flow drew a DNS timeout")
	}
}

// TestProfileRegistry walks every named profile through ProfileByName
// and checks the nominal/impaired split.
func TestProfileRegistry(t *testing.T) {
	for _, name := range []string{"", "nominal"} {
		c, err := ProfileByName(name)
		if err != nil || c != nil {
			t.Errorf("ProfileByName(%q) = %v, %v; want nil, nil", name, c, err)
		}
	}
	impaired := map[string]bool{
		"nominal-campus": false, "nominal-residential": false,
		"lossy-wifi": true, "residential-congested": true, "mobile-3g": true, "satellite": true,
	}
	for _, name := range ProfileNames() {
		if name == "nominal" {
			continue
		}
		c, err := ProfileByName(name)
		if err != nil || c == nil {
			t.Fatalf("ProfileByName(%q): %v, %v", name, c, err)
		}
		if c.Name != name {
			t.Errorf("profile %q carries Name %q", name, c.Name)
		}
		if got := c.Impaired(); got != impaired[name] {
			t.Errorf("profile %q: Impaired = %v, want %v", name, got, impaired[name])
		}
	}
	if _, err := ProfileByName("adsl-1999"); err == nil {
		t.Error("unknown profile name accepted")
	}
}

// TestTransferDelayShaping: an unshaped path keeps the legacy body-read
// formula (capped at 3s); a shaped one adds serialization time on top.
func TestTransferDelayShaping(t *testing.T) {
	p := Path{RTT: 40 * time.Millisecond}
	legacy := p.RTT/2 + time.Duration(6000/1200)*p.RTT/10
	if got := p.TransferDelay(6000); got != legacy {
		t.Errorf("unshaped TransferDelay = %v, want %v", got, legacy)
	}
	if got := p.TransferDelay(100 << 20); got != 3*time.Second {
		t.Errorf("unshaped cap = %v, want 3s", got)
	}
	p.BytesPerSec = 50_000
	want := legacy + time.Duration(6000)*time.Second/50_000
	if got := p.TransferDelay(6000); got != want {
		t.Errorf("shaped TransferDelay = %v, want %v", got, want)
	}
}
