package simnet

import (
	"net/netip"
	"sync"
	"time"
)

// Resolver is a virtual DNS resolver. Names are registered into a flat
// zone; unregistered names fail with ERR_NAME_NOT_RESOLVED, the dominant
// failure class in the paper's crawls (~90% of load failures).
//
// Registration (Add/Remove) is mutex-guarded so world construction can
// bind sites from a worker pool. Resolution is deliberately lock-free:
// the zone is frozen once the world is built, and keeping the crawl's
// per-request lookup path free of synchronization benchmarked faster
// than an RWMutex (reader-count cache-line traffic on every request)
// and far cheaper than merging per-worker zone shards (a full map copy
// of the 100K-domain population). Do not resolve concurrently with
// registration.
type Resolver struct {
	mu   sync.Mutex // guards writes to zone; reads are lock-free post-build
	zone map[string][]netip.Addr
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{zone: make(map[string][]netip.Addr)}
}

// Add registers addresses for a name, appending to any existing records.
// Safe for concurrent use during world construction.
func (r *Resolver) Add(name string, addrs ...netip.Addr) {
	r.mu.Lock()
	r.zone[name] = append(r.zone[name], addrs...)
	r.mu.Unlock()
}

// Remove deletes all records for a name.
func (r *Resolver) Remove(name string) {
	r.mu.Lock()
	delete(r.zone, name)
	r.mu.Unlock()
}

// Len reports the number of registered names.
func (r *Resolver) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.zone)
}

// Resolve looks up a name. Following Chrome's behavior, "localhost"
// always resolves to the loopback addresses without consulting DNS, and
// IP literals resolve to themselves.
func (r *Resolver) Resolve(name string) ([]netip.Addr, NetError) {
	if name == "localhost" {
		return []netip.Addr{netip.MustParseAddr("127.0.0.1"), netip.IPv6Loopback()}, OK
	}
	if ip, err := netip.ParseAddr(name); err == nil {
		return []netip.Addr{ip}, OK
	}
	if addrs, ok := r.zone[name]; ok && len(addrs) > 0 {
		out := make([]netip.Addr, len(addrs))
		copy(out, addrs)
		return out, OK
	}
	return nil, ErrNameNotResolved
}

// ResolutionDelay is the virtual time a successful lookup takes; failures
// take FailureDelay (a full search through the configured servers).
const (
	ResolutionDelay = 18 * time.Millisecond
	FailureDelay    = 120 * time.Millisecond
)
