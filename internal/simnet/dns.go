package simnet

import (
	"net/netip"
	"time"
)

// Resolver is a virtual DNS resolver. Names are registered into a flat
// zone; unregistered names fail with ERR_NAME_NOT_RESOLVED, the dominant
// failure class in the paper's crawls (~90% of load failures).
type Resolver struct {
	zone map[string][]netip.Addr
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{zone: make(map[string][]netip.Addr)}
}

// Add registers addresses for a name, appending to any existing records.
func (r *Resolver) Add(name string, addrs ...netip.Addr) {
	r.zone[name] = append(r.zone[name], addrs...)
}

// Remove deletes all records for a name.
func (r *Resolver) Remove(name string) { delete(r.zone, name) }

// Len reports the number of registered names.
func (r *Resolver) Len() int { return len(r.zone) }

// Resolve looks up a name. Following Chrome's behavior, "localhost"
// always resolves to the loopback addresses without consulting DNS, and
// IP literals resolve to themselves.
func (r *Resolver) Resolve(name string) ([]netip.Addr, NetError) {
	if name == "localhost" {
		return []netip.Addr{netip.MustParseAddr("127.0.0.1"), netip.IPv6Loopback()}, OK
	}
	if ip, err := netip.ParseAddr(name); err == nil {
		return []netip.Addr{ip}, OK
	}
	if addrs, ok := r.zone[name]; ok && len(addrs) > 0 {
		out := make([]netip.Addr, len(addrs))
		copy(out, addrs)
		return out, OK
	}
	return nil, ErrNameNotResolved
}

// ResolutionDelay is the virtual time a successful lookup takes; failures
// take FailureDelay (a full search through the configured servers).
const (
	ResolutionDelay = 18 * time.Millisecond
	FailureDelay    = 120 * time.Millisecond
)
