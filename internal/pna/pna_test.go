package pna

import (
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func TestPolicyEvaluate(t *testing.T) {
	cases := []struct {
		policy      Policy
		secure, opt bool
		wantAllowed bool
		wantReason  string
	}{
		{WICGDraft, true, true, true, ""},
		{WICGDraft, false, true, false, "insecure-context"},
		{WICGDraft, true, false, false, "no-opt-in"},
		{WICGDraft, false, false, false, "insecure-context"},
		{Policy{}, false, false, true, ""},
		{Policy{RequireSecureContext: true}, true, false, true, ""},
		{Policy{RequirePreflight: true}, false, true, true, ""},
	}
	for i, c := range cases {
		d := c.policy.Evaluate(c.secure, c.opt)
		if d.Allowed != c.wantAllowed || d.Reason != c.wantReason {
			t.Errorf("case %d: %+v, want allowed=%v reason=%q", i, d, c.wantAllowed, c.wantReason)
		}
	}
}

func TestPreflightExchange(t *testing.T) {
	plain := simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 200}
	})
	req := &simnet.Request{Scheme: simnet.SchemeHTTP, Host: "127.0.0.1", Port: 28337, Path: "/"}
	if Preflight(plain, req) {
		t.Error("plain service must not pass the preflight")
	}
	if Preflight(nil, req) {
		t.Error("nil service must not pass the preflight")
	}
	opted := OptIn(plain)
	if !Preflight(opted, req) {
		t.Error("opted-in service must pass the preflight")
	}
	// Non-preflight traffic still reaches the wrapped service.
	if resp := opted.Serve(req); resp.Status != 200 {
		t.Errorf("wrapped service response = %+v", resp)
	}
	// The preflight request carries the draft's request header.
	inspect := simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		if req.Method != "OPTIONS" || req.Header[RequestHeader] != "true" {
			t.Errorf("malformed preflight: %+v", req)
		}
		return &simnet.Response{Status: 204, Header: map[string]string{AllowHeader: "true"}}
	})
	if !Preflight(inspect, req) {
		t.Error("inspecting service should opt in")
	}
}

func TestAuditSmallCrawl(t *testing.T) {
	st := store.New()
	if _, err := crawler.Run(crawler.Config{
		Crawl: groundtruth.CrawlTop2020, OS: hostenv.Windows, Scale: 0.01, Seed: 7, Workers: 4,
	}, st); err != nil {
		t.Fatal(err)
	}
	rows := Audit(st, groundtruth.CrawlTop2020, WICGDraft)
	if len(rows) == 0 {
		t.Fatal("audit produced no rows")
	}
	var fraud, unknown *AuditRow
	for i := range rows {
		switch rows[i].Class {
		case groundtruth.ClassFraudDetection:
			fraud = &rows[i]
		case groundtruth.ClassUnknown:
			unknown = &rows[i]
		}
	}
	// The top-1000 slice contains 4 eBay TM sites and hola.org.
	if fraud == nil || fraud.Sites != 4 {
		t.Fatalf("fraud rows = %+v", fraud)
	}
	// ThreatMetrix pages are HTTPS, so the block reason is the missing
	// opt-in, not the context — host profiling dies under the draft.
	if fraud.Allowed != 0 || fraud.BlockedNoOptIn != fraud.Requests {
		t.Errorf("fraud audit = %+v; the draft should block all scans via no-opt-in", fraud)
	}
	if unknown == nil || unknown.Blocked() != unknown.Requests {
		t.Errorf("unknown audit = %+v", unknown)
	}
}

func TestAuditPreservesNativeApps(t *testing.T) {
	// Build a store by hand: one native-app site on a secure page.
	st := store.New()
	st.AddPage(store.PageRecord{Crawl: string(groundtruth.CrawlTop2020), OS: "Windows", Domain: "faceit.com", URL: "https://faceit.com/"})
	st.AddLocal(store.LocalRequest{
		Crawl: string(groundtruth.CrawlTop2020), OS: "Windows", Domain: "faceit.com",
		URL: "ws://localhost:28337/", Scheme: "ws", Host: "localhost", Port: 28337, Path: "/", Dest: "localhost",
	})
	rows := Audit(st, groundtruth.CrawlTop2020, WICGDraft)
	if len(rows) != 1 || rows[0].Class != groundtruth.ClassNativeApp {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Allowed != 1 {
		t.Errorf("native-app traffic should survive the draft with opt-in: %+v", rows[0])
	}
	// Under an insecure page it is still blocked.
	st2 := store.New()
	st2.AddPage(store.PageRecord{Crawl: string(groundtruth.CrawlTop2020), OS: "Windows", Domain: "faceit.com", URL: "http://faceit.com/"})
	st2.AddLocal(store.LocalRequest{
		Crawl: string(groundtruth.CrawlTop2020), OS: "Windows", Domain: "faceit.com",
		URL: "ws://localhost:28337/", Scheme: "ws", Host: "localhost", Port: 28337, Path: "/", Dest: "localhost",
	})
	rows = Audit(st2, groundtruth.CrawlTop2020, WICGDraft)
	if rows[0].BlockedInsecure != 1 {
		t.Errorf("insecure-context block missing: %+v", rows[0])
	}
}
