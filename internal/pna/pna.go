// Package pna implements the defense discussed in §5.3: the WICG
// Private Network Access proposal (draft, March 2021), under which a
// resource loaded from public IP space may fetch from private/local IP
// space only if (1) the public resource was loaded over a secure channel
// and (2) a CORS preflight to the local-network origin succeeds, carrying
// Access-Control-Request-Private-Network: true and answered with
// Access-Control-Allow-Private-Network: true.
//
// The package provides both the mechanics (preflight exchange against a
// simnet service) and a policy auditor that replays a crawl's observed
// local traffic under the proposal, reporting what would be blocked and
// which legitimate use cases survive.
package pna

import (
	"sort"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// Headers of the proposal.
const (
	RequestHeader = "Access-Control-Request-Private-Network"
	AllowHeader   = "Access-Control-Allow-Private-Network"
)

// Policy is a configurable variant of the proposal, so ablations can
// evaluate the two requirements independently.
type Policy struct {
	// RequireSecureContext blocks local fetches from pages not loaded
	// over https/wss.
	RequireSecureContext bool
	// RequirePreflight blocks local fetches whose target did not
	// affirmatively opt in via the preflight exchange.
	RequirePreflight bool
}

// WICGDraft is the full proposal.
var WICGDraft = Policy{RequireSecureContext: true, RequirePreflight: true}

// Decision is the policy outcome for one request.
type Decision struct {
	Allowed bool
	// Reason explains a block: "insecure-context" or "no-opt-in".
	Reason string
}

// Evaluate applies the policy to one observed local request.
// pageSecure is whether the requesting page was loaded over a secure
// channel; serverOptsIn whether the local target answers the preflight
// affirmatively.
func (p Policy) Evaluate(pageSecure, serverOptsIn bool) Decision {
	if p.RequireSecureContext && !pageSecure {
		return Decision{Reason: "insecure-context"}
	}
	if p.RequirePreflight && !serverOptsIn {
		return Decision{Reason: "no-opt-in"}
	}
	return Decision{Allowed: true}
}

// Preflight performs the CORS preflight exchange against a local
// service, returning whether it opted in.
func Preflight(svc simnet.Service, req *simnet.Request) bool {
	if svc == nil {
		return false
	}
	pf := *req
	pf.Method = "OPTIONS"
	pf.Preflight = true
	if pf.Header == nil {
		pf.Header = map[string]string{}
	}
	pf.Header[RequestHeader] = "true"
	resp := svc.Serve(&pf)
	return resp != nil && resp.Header != nil && strings.EqualFold(resp.Header[AllowHeader], "true")
}

// OptIn wraps a service so that it answers Private Network Access
// preflights affirmatively — what a native application adopting the
// proposal would ship.
func OptIn(svc simnet.Service) simnet.Service {
	return simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		if req.Preflight {
			return &simnet.Response{Status: 204, Header: map[string]string{AllowHeader: "true"}}
		}
		return svc.Serve(req)
	})
}

// AuditRow summarizes the policy outcome for one behavior class.
type AuditRow struct {
	Class           groundtruth.Class
	Sites           int
	Requests        int
	Allowed         int
	BlockedInsecure int
	BlockedNoOptIn  int
}

// Blocked returns the total blocked requests.
func (r AuditRow) Blocked() int { return r.BlockedInsecure + r.BlockedNoOptIn }

// Audit replays a crawl's observed local traffic under the policy. The
// adoption model follows §5.3's reasoning: native applications are the
// legitimate use case expected to opt in, so requests classified as
// native-application communication find an opted-in server; anti-abuse
// scanners, developer-error remnants, and unknown probes do not.
func Audit(st *store.Store, crawl groundtruth.CrawlID, policy Policy) []AuditRow {
	// Page security context per (os, domain).
	secure := map[[2]string]bool{}
	for _, p := range st.Pages(func(p *store.PageRecord) bool { return p.Crawl == string(crawl) }) {
		secure[[2]string{p.OS, p.Domain}] = strings.HasPrefix(p.URL, "https://")
	}
	rows := map[groundtruth.Class]*AuditRow{}
	for _, dest := range []string{"localhost", "lan"} {
		for _, site := range analysis.LocalSites(st, crawl, dest) {
			var verdict classify.Verdict = site.Verdict
			row := rows[verdict.Class]
			if row == nil {
				row = &AuditRow{Class: verdict.Class}
				rows[verdict.Class] = row
			}
			row.Sites++
			optIn := verdict.Class == groundtruth.ClassNativeApp
			for _, req := range site.Requests {
				row.Requests++
				d := policy.Evaluate(secure[[2]string{req.OS, req.Domain}], optIn)
				switch {
				case d.Allowed:
					row.Allowed++
				case d.Reason == "insecure-context":
					row.BlockedInsecure++
				default:
					row.BlockedNoOptIn++
				}
			}
		}
	}
	out := make([]AuditRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
