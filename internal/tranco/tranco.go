// Package tranco models the Tranco research-oriented top-sites ranking
// used to select the study's popular-site population. It generates the
// two deterministic 100K snapshots the crawls used (June 3, 2020 and
// March 11, 2021, with the ~75% domain overlap the paper reports),
// parses and serializes the standard "rank,domain" CSV form, and answers
// rank lookups.
package tranco

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
)

// Snapshot is one dated top-list: an ordered list of domains, rank 1
// first.
type Snapshot struct {
	Label   string
	domains []string
	rank    map[string]int
}

// Size returns the number of ranked domains.
func (s *Snapshot) Size() int { return len(s.domains) }

// Domain returns the domain at the given 1-based rank.
func (s *Snapshot) Domain(rank int) (string, bool) {
	if rank < 1 || rank > len(s.domains) {
		return "", false
	}
	return s.domains[rank-1], true
}

// Rank returns the 1-based rank of a domain.
func (s *Snapshot) Rank(domain string) (int, bool) {
	r, ok := s.rank[domain]
	return r, ok
}

// Contains reports whether the domain is ranked.
func (s *Snapshot) Contains(domain string) bool {
	_, ok := s.rank[domain]
	return ok
}

// Domains returns the ranked domains in rank order. The caller must not
// modify the returned slice.
func (s *Snapshot) Domains() []string { return s.domains }

// Overlap returns the fraction of this snapshot's domains also present
// in other.
func (s *Snapshot) Overlap(other *Snapshot) float64 {
	if len(s.domains) == 0 {
		return 0
	}
	n := 0
	for _, d := range s.domains {
		if other.Contains(d) {
			n++
		}
	}
	return float64(n) / float64(len(s.domains))
}

// fromDomains builds a snapshot, verifying uniqueness.
func fromDomains(label string, domains []string) (*Snapshot, error) {
	s := &Snapshot{Label: label, domains: domains, rank: make(map[string]int, len(domains))}
	for i, d := range domains {
		if d == "" {
			return nil, fmt.Errorf("tranco: empty domain at rank %d", i+1)
		}
		if _, dup := s.rank[d]; dup {
			return nil, fmt.Errorf("tranco: duplicate domain %q", d)
		}
		s.rank[d] = i + 1
	}
	return s, nil
}

// pinned is a domain that must appear at a specific rank.
type pinned struct {
	rank   int
	domain string
}

// build places pinned domains at their ranks and fills the remaining
// slots from the filler naming function, in order.
func build(label string, size int, pins []pinned, filler func(i int) string) (*Snapshot, error) {
	domains := make([]string, size)
	used := make(map[string]bool, size)
	sort.Slice(pins, func(i, j int) bool { return pins[i].rank < pins[j].rank })
	for _, p := range pins {
		if p.rank < 1 || p.rank > size {
			return nil, fmt.Errorf("tranco: pinned rank %d out of range for %q", p.rank, p.domain)
		}
		if used[p.domain] {
			return nil, fmt.Errorf("tranco: domain %q pinned twice", p.domain)
		}
		if domains[p.rank-1] != "" {
			return nil, fmt.Errorf("tranco: rank %d pinned twice (%q, %q)", p.rank, domains[p.rank-1], p.domain)
		}
		domains[p.rank-1] = p.domain
		used[p.domain] = true
	}
	next := 0
	for i := range domains {
		if domains[i] != "" {
			continue
		}
		for {
			d := filler(next)
			next++
			if !used[d] {
				domains[i] = d
				used[d] = true
				break
			}
		}
	}
	return fromDomains(label, domains)
}

// DefaultSize is the population size of the paper's top-list crawls.
const DefaultSize = 100000

// keep2021 deterministically selects the ~75% of filler indices retained
// between the 2020 and 2021 snapshots.
func keep2021(i int) bool {
	h := fnv.New32a()
	fmt.Fprintf(h, "tranco-churn-%d", i)
	return h.Sum32()%4 != 0
}

func filler2020(i int) string { return fmt.Sprintf("site%05d.example", i) }

func filler2021(i int) string {
	if keep2021(i) {
		return filler2020(i)
	}
	return fmt.Sprintf("new2021-%05d.example", i)
}

// Snapshot2020 generates the June 3, 2020 snapshot at the given size: the
// paper's 2020 ground-truth domains pinned at their published ranks, the
// rest deterministic filler. Sizes below DefaultSize drop pins beyond the
// horizon (useful for scaled-down experiments).
func Snapshot2020(size int) (*Snapshot, error) {
	var pins []pinned
	pinnedSet := make(map[string]bool)
	add := func(rank int, domain string) {
		if rank >= 1 && rank <= size && !pinnedSet[domain] {
			pins = append(pins, pinned{rank, domain})
			pinnedSet[domain] = true
		}
	}
	for _, r := range groundtruth.Top2020Localhost() {
		add(r.Rank, r.Domain)
	}
	for _, r := range groundtruth.Top2020LAN() {
		add(r.Rank, r.Domain)
	}
	// Sites that first showed localhost activity in 2021 without a "(+)
	// not previously crawled" marker were ranked (and quiet) in 2020;
	// their 2021 rank stands in for the unpublished 2020 one.
	for _, r := range groundtruth.Top2021NewLocalhost() {
		if !r.New2021 {
			add(r.Rank, r.Domain)
		}
	}
	for _, r := range groundtruth.Top2021LAN() {
		if !r.New2021 {
			add(r.Rank, r.Domain)
		}
	}
	for domain, rank := range groundtruth.LoginOnlyThreatMetrix {
		add(rank, domain)
	}
	return build("2020-06-03", size, pins, filler2020)
}

// Snapshot2021 generates the March 11, 2021 snapshot: 2021 ground-truth
// domains pinned at their 2021 ranks, 2020 domains absent from the 2021
// list excluded, ~75% filler overlap with the 2020 snapshot.
func Snapshot2021(size int) (*Snapshot, error) {
	var pins []pinned
	pinnedSet := make(map[string]bool)
	add := func(rank int, domain string) {
		if rank >= 1 && rank <= size && !pinnedSet[domain] {
			pins = append(pins, pinned{rank, domain})
			pinnedSet[domain] = true
		}
	}
	for _, r := range groundtruth.Top2021NewLocalhost() {
		add(r.Rank, r.Domain)
	}
	for _, r := range groundtruth.Top2021LAN() {
		add(r.Rank, r.Domain)
	}
	// Continuing 2020 domains stay listed at their 2020 ranks unless
	// re-ranked by a 2021 table above; domains marked "not in the 2021
	// list" are simply never pinned and thus excluded.
	for _, r := range groundtruth.Top2020Localhost() {
		if r.NotInList2021 {
			continue
		}
		add(r.Rank, r.Domain)
	}
	for _, r := range groundtruth.Top2020LAN() {
		add(r.Rank, r.Domain)
	}
	for domain, rank := range groundtruth.LoginOnlyThreatMetrix {
		add(rank, domain)
	}
	return build("2021-03-11", size, pins, filler2021)
}

// WriteCSV serializes the snapshot in the Tranco "rank,domain" form.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, d := range s.domains {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", i+1, d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseCSV reads a "rank,domain" list. Ranks must be contiguous from 1.
func ParseCSV(label string, r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var domains []string
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rank, domain, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("tranco: line %d: missing comma", line)
		}
		n, err := strconv.Atoi(rank)
		if err != nil {
			return nil, fmt.Errorf("tranco: line %d: bad rank %q", line, rank)
		}
		if n != len(domains)+1 {
			return nil, fmt.Errorf("tranco: line %d: rank %d out of sequence", line, n)
		}
		domains = append(domains, strings.TrimSpace(domain))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fromDomains(label, domains)
}
