package tranco

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseCSV hardens the list reader: arbitrary input must never
// panic, and any accepted snapshot must round-trip through WriteCSV.
func FuzzParseCSV(f *testing.F) {
	f.Add("1,ebay.com\n2,hola.org\n")
	f.Add("1,a\n\n2,b\n")
	f.Add("x,y")
	f.Add("1,a\n1,a")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("writing accepted snapshot: %v", err)
		}
		back, err := ParseCSV("fuzz2", &buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Size() != s.Size() {
			t.Fatal("round trip changed size")
		}
	})
}
