package tranco

import (
	"bytes"
	"strings"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
)

func mustSnap(t *testing.T, gen func(int) (*Snapshot, error), size int) *Snapshot {
	t.Helper()
	s, err := gen(size)
	if err != nil {
		t.Fatalf("snapshot generation failed: %v", err)
	}
	return s
}

func TestSnapshot2020PinsGroundTruth(t *testing.T) {
	s := mustSnap(t, Snapshot2020, DefaultSize)
	if s.Size() != DefaultSize {
		t.Fatalf("size = %d", s.Size())
	}
	for _, r := range groundtruth.Top2020Localhost() {
		rank, ok := s.Rank(r.Domain)
		if !ok || rank != r.Rank {
			t.Errorf("%s: rank = %d, %v; want %d", r.Domain, rank, ok, r.Rank)
		}
	}
	for _, r := range groundtruth.Top2020LAN() {
		if rank, ok := s.Rank(r.Domain); !ok || rank != r.Rank {
			t.Errorf("%s: LAN rank = %d, %v; want %d", r.Domain, rank, ok, r.Rank)
		}
	}
	if d, _ := s.Domain(104); d != "ebay.com" {
		t.Errorf("rank 104 = %q, want ebay.com", d)
	}
}

func TestSnapshot2021Membership(t *testing.T) {
	s := mustSnap(t, Snapshot2021, DefaultSize)
	// New 2021 sites are ranked.
	for _, r := range groundtruth.Top2021NewLocalhost() {
		if rank, ok := s.Rank(r.Domain); !ok || rank != r.Rank {
			t.Errorf("%s: rank = %d, %v; want %d", r.Domain, rank, ok, r.Rank)
		}
	}
	// Sites marked "not in 2021 list" are absent.
	for _, r := range groundtruth.Top2020Localhost() {
		if r.NotInList2021 && s.Contains(r.Domain) {
			t.Errorf("%s: present in 2021 snapshot despite (-) marker", r.Domain)
		}
		if !r.NotInList2021 && !s.Contains(r.Domain) {
			t.Errorf("%s: missing from 2021 snapshot", r.Domain)
		}
	}
}

func TestSnapshotOverlapRoughly75Percent(t *testing.T) {
	a := mustSnap(t, Snapshot2020, DefaultSize)
	b := mustSnap(t, Snapshot2021, DefaultSize)
	ov := a.Overlap(b)
	if ov < 0.72 || ov > 0.78 {
		t.Errorf("2020∩2021 overlap = %.3f, want ~0.75 (§3.2)", ov)
	}
}

func TestSnapshotsDeterministic(t *testing.T) {
	a := mustSnap(t, Snapshot2020, 5000)
	b := mustSnap(t, Snapshot2020, 5000)
	for i := 1; i <= 5000; i += 777 {
		da, _ := a.Domain(i)
		db, _ := b.Domain(i)
		if da != db {
			t.Fatalf("rank %d differs across generations: %q vs %q", i, da, db)
		}
	}
}

func TestScaledSnapshotDropsDeepPins(t *testing.T) {
	s := mustSnap(t, Snapshot2020, 1000)
	if s.Size() != 1000 {
		t.Fatalf("size = %d", s.Size())
	}
	if !s.Contains("ebay.com") { // rank 104
		t.Error("ebay.com should survive a 1000-domain scale-down")
	}
	if s.Contains("metagenics.com") { // rank 97182
		t.Error("metagenics.com should be beyond a 1000-domain horizon")
	}
}

func TestDomainRankInverses(t *testing.T) {
	s := mustSnap(t, Snapshot2020, 2000)
	for i := 1; i <= 2000; i += 97 {
		d, ok := s.Domain(i)
		if !ok {
			t.Fatalf("Domain(%d) missing", i)
		}
		if r, ok := s.Rank(d); !ok || r != i {
			t.Fatalf("Rank(Domain(%d)) = %d, %v", i, r, ok)
		}
	}
	if _, ok := s.Domain(0); ok {
		t.Error("Domain(0) should miss")
	}
	if _, ok := s.Domain(2001); ok {
		t.Error("Domain(size+1) should miss")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := mustSnap(t, Snapshot2020, 500)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != s.Size() {
		t.Fatalf("round trip size %d != %d", back.Size(), s.Size())
	}
	for i := 1; i <= s.Size(); i += 41 {
		a, _ := s.Domain(i)
		b, _ := back.Domain(i)
		if a != b {
			t.Fatalf("rank %d: %q != %q", i, a, b)
		}
	}
}

func TestParseCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"1 example.com",    // no comma
		"x,example.com",    // bad rank
		"2,example.com",    // out of sequence
		"1,a.com\n3,b.com", // gap
		"1,a.com\n2,a.com", // duplicate domain
	}
	for i, in := range cases {
		if _, err := ParseCSV("bad", strings.NewReader(in)); err == nil {
			t.Errorf("case %d: accepted malformed CSV", i)
		}
	}
}

func TestParseCSVSkipsBlankLines(t *testing.T) {
	s, err := ParseCSV("ok", strings.NewReader("1,a.com\n\n2,b.com\n"))
	if err != nil || s.Size() != 2 {
		t.Fatalf("got %v, size %d", err, s.Size())
	}
}
