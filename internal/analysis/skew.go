package analysis

import (
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// OSSkew quantifies the §4.1 targeting observation: localhost activity
// is not uniform across OSes, skewing heavily toward Windows-only
// behavior ("48 sites (45%) did so [exclusively] on Windows 10, which
// suggests a degree of targeting towards Windows users").
type OSSkew struct {
	Sites int
	// ExclusiveCounts maps each single OS to the number of sites active
	// on it alone.
	ExclusiveCounts map[groundtruth.OSSet]int
	// ExclusiveShare is ExclusiveCounts normalized by Sites.
	ExclusiveShare map[groundtruth.OSSet]float64
	// UniformCount is the number of sites behaving identically on every
	// OS the crawl covered.
	UniformCount int
}

// ComputeOSSkew summarizes per-OS exclusivity for a set of local-active
// sites. allOS is the OS set the crawl covered (OSAll for 2020 and
// malicious, OSWL for 2021).
func ComputeOSSkew(sites []SiteActivity, allOS groundtruth.OSSet) OSSkew {
	skew := OSSkew{
		Sites:           len(sites),
		ExclusiveCounts: map[groundtruth.OSSet]int{},
		ExclusiveShare:  map[groundtruth.OSSet]float64{},
	}
	for _, s := range sites {
		if s.OS == allOS {
			skew.UniformCount++
		}
		for _, bit := range []groundtruth.OSSet{groundtruth.OSWindows, groundtruth.OSLinux, groundtruth.OSMac} {
			if s.OS == bit {
				skew.ExclusiveCounts[bit]++
			}
		}
	}
	if skew.Sites > 0 {
		for bit, n := range skew.ExclusiveCounts {
			skew.ExclusiveShare[bit] = float64(n) / float64(skew.Sites)
		}
	}
	return skew
}

// SOPUsage quantifies the §4.2 WebSocket observation: WS/WSS traffic is
// exempt from the Same-Origin Policy, and the paper found it used
// extensively for localhost scanning.
type SOPUsage = pipeline.SOPUsage

// ComputeSOPUsage summarizes Same-Origin-Policy exemption across a
// crawl's local requests on one destination class, from the
// materialized index.
func ComputeSOPUsage(st *store.Store, crawl groundtruth.CrawlID, dest string) SOPUsage {
	return pipeline.IndexFor(st).SOPUsage(crawl, dest)
}
