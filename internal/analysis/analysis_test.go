package analysis

import (
	"math"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// crawl2020Small runs a 1K-domain crawl of the 2020 population on all
// three OSes, once per test binary.
var small2020 = func() *store.Store {
	st := store.New()
	for _, os := range hostenv.AllOS {
		_, err := crawler.Run(crawler.Config{
			Crawl: groundtruth.CrawlTop2020, OS: os, Scale: 0.01, Seed: 0xA11CE, Workers: 4,
		}, st)
		if err != nil {
			panic(err)
		}
	}
	return st
}()

func TestLocalSitesFromSmallCrawl(t *testing.T) {
	sites := LocalSites(small2020, groundtruth.CrawlTop2020, "localhost")
	// Ground truth within the top 1000: ebay.com (104, W), hola.org
	// (244, WLM), ebay.de (429, W), ebay.co.uk (536, W),
	// ebay.com.au (932, W).
	if len(sites) != 5 {
		t.Fatalf("localhost sites = %d, want 5", len(sites))
	}
	if sites[0].Domain != "ebay.com" || sites[0].Rank != 104 {
		t.Errorf("sites not rank-sorted: %+v", sites[0])
	}
	totals := OSTotals(sites)
	if totals[groundtruth.OSWindows] != 5 || totals[groundtruth.OSLinux] != 1 || totals[groundtruth.OSMac] != 1 {
		t.Errorf("OS totals = %v, want W5 L1 M1", totals)
	}
	venn := Venn(sites)
	if venn[groundtruth.OSWindows] != 4 || venn[groundtruth.OSAll] != 1 {
		t.Errorf("venn = %v, want W-only 4, all-three 1", venn)
	}
	// Classification: the eBay sites are fraud detection, hola unknown.
	counts := ClassCounts(sites)
	if counts[groundtruth.ClassFraudDetection] != 4 || counts[groundtruth.ClassUnknown] != 1 {
		t.Errorf("class counts = %v", counts)
	}
}

func TestDelaysWithinWindow(t *testing.T) {
	sites := LocalSites(small2020, groundtruth.CrawlTop2020, "localhost")
	for _, os := range []groundtruth.OSSet{groundtruth.OSWindows, groundtruth.OSLinux, groundtruth.OSMac} {
		for _, d := range DelaySeconds(sites, os) {
			if d < 0 || d > 20 {
				t.Errorf("delay %v outside the 20s observation window", d)
			}
		}
	}
	// Fraud detection fires late on Windows.
	win := DelaySeconds(sites, groundtruth.OSWindows)
	if med := Quantile(win, 0.5); med < 8 {
		t.Errorf("Windows median delay = %.1fs; fraud-detection sites should dominate and fire late", med)
	}
}

func TestCrawlTableFromStore(t *testing.T) {
	rows := CrawlTable(small2020)
	if len(rows) != 3 {
		t.Fatalf("crawl rows = %d, want 3 (one per OS)", len(rows))
	}
	for _, r := range rows {
		if r.Total() != 1000 {
			t.Errorf("%s: total = %d", r.OS, r.Total())
		}
		if sum := r.NameNotResolved + r.ConnRefused + r.ConnReset + r.CertCNInvalid + r.Others; sum != r.Failed {
			t.Errorf("%s: error sum %d != failed %d", r.OS, sum, r.Failed)
		}
		rate := float64(r.Successful) / float64(r.Total())
		if rate < 0.85 || rate > 0.95 {
			t.Errorf("%s: success rate %.3f", r.OS, rate)
		}
	}
	if rows[0].OS != "Windows" || rows[1].OS != "Linux" || rows[2].OS != "Mac" {
		t.Errorf("row order: %v %v %v", rows[0].OS, rows[1].OS, rows[2].OS)
	}
}

func TestSchemeRollupWindows(t *testing.T) {
	r := SchemeRollup(small2020, groundtruth.CrawlTop2020, "Windows", "localhost")
	// 4 TM sites × 14 WSS probes + hola's 10 HTTP fetches.
	if r.ByScheme["wss"] != 56 {
		t.Errorf("wss requests = %d, want 56", r.ByScheme["wss"])
	}
	if r.ByScheme["http"] != 10 {
		t.Errorf("http requests = %d, want 10", r.ByScheme["http"])
	}
	if r.Total != 66 {
		t.Errorf("total = %d, want 66", r.Total)
	}
	if len(r.Ports["wss"]) != 14 {
		t.Errorf("distinct wss ports = %d, want 14", len(r.Ports["wss"]))
	}
}

func TestRankCDFMonotone(t *testing.T) {
	sites := LocalSites(small2020, groundtruth.CrawlTop2020, "localhost")
	cdf := RankCDF(sites, groundtruth.OSWindows)
	if len(cdf) != 5 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].Y <= cdf[i-1].Y {
			t.Errorf("CDF not monotone at %d: %+v %+v", i, cdf[i-1], cdf[i])
		}
	}
	if last := cdf[len(cdf)-1]; last.Y != 1 {
		t.Errorf("CDF must end at 1, got %f", last.Y)
	}
}

func TestCDFAndQuantileBasics(t *testing.T) {
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
	vals := []float64{3, 1, 2}
	cdf := CDF(vals)
	if cdf[0].X != 1 || cdf[2].X != 3 || math.Abs(cdf[1].Y-2.0/3) > 1e-9 {
		t.Errorf("CDF = %+v", cdf)
	}
	// CDF must not mutate its input.
	if vals[0] != 3 {
		t.Error("CDF mutated input")
	}
	if q := Quantile([]float64{5, 1, 3}, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile([]float64{5, 1, 3}, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile([]float64{5, 1, 3}, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestTopN(t *testing.T) {
	sites := LocalSites(small2020, groundtruth.CrawlTop2020, "localhost")
	top3 := TopN(sites, groundtruth.OSWindows, 3)
	if len(top3) != 3 || top3[0].Domain != "ebay.com" || top3[1].Domain != "hola.org" {
		t.Errorf("top3 = %+v", top3)
	}
	all := TopN(sites, groundtruth.OSLinux, 10)
	if len(all) != 1 || all[0].Domain != "hola.org" {
		t.Errorf("Linux top = %+v", all)
	}
}

func TestMaliciousSummarySmall(t *testing.T) {
	st := store.New()
	for _, os := range hostenv.AllOS {
		if _, err := crawler.Run(crawler.Config{
			Crawl: groundtruth.CrawlMalicious, OS: os, Scale: 0.002, Seed: 0xA11CE, Workers: 4,
		}, st); err != nil {
			t.Fatal(err)
		}
	}
	rows := MaliciousSummary(st)
	if len(rows) != 3 {
		t.Fatalf("categories = %d", len(rows))
	}
	if rows[0].Category != "malware" || rows[1].Category != "abuse" || rows[2].Category != "phishing" {
		t.Errorf("category order wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.Sites == 0 {
			t.Errorf("%s: zero sites", r.Category)
		}
	}
	// All ground-truth phishing sites are in even a scaled population;
	// the 13 ThreatMetrix cloners are Windows-only.
	ph := rows[2]
	if ph.Localhost["Windows"] < 13 {
		t.Errorf("phishing localhost on Windows = %d, want ≥ 13", ph.Localhost["Windows"])
	}
	// Abuse succeeds far more often than malware (Table 2).
	if rows[1].SuccessRate["Linux"] <= rows[0].SuccessRate["Linux"] {
		t.Errorf("abuse success (%f) should exceed malware success (%f)",
			rows[1].SuccessRate["Linux"], rows[0].SuccessRate["Linux"])
	}
}

func TestOSSetFromName(t *testing.T) {
	if OSSetFromName("Windows") != groundtruth.OSWindows ||
		OSSetFromName("Linux") != groundtruth.OSLinux ||
		OSSetFromName("Mac") != groundtruth.OSMac ||
		OSSetFromName("BeOS") != groundtruth.OSNone {
		t.Error("OSSetFromName mapping wrong")
	}
}

// TestCorruptedOSLabel pins the two failure modes for a store record
// whose OS label is outside the study's three platforms: strict mode
// panics at the first per-OS aggregate touching it, and the default
// lenient mode keeps the record out of per-OS aggregates while the
// site index tallies it so the gap is visible instead of silent.
func TestCorruptedOSLabel(t *testing.T) {
	st := store.New()
	good := store.LocalRequest{
		Crawl: string(groundtruth.CrawlTop2020), OS: "Windows", Domain: "x.example",
		URL: "wss://localhost:5939/", Scheme: "wss", Host: "localhost", Port: 5939,
		Path: "/", Dest: "localhost", Delay: time.Second,
	}
	st.AddLocal(good)
	corrupt := good
	corrupt.OS = "BeOS"
	corrupt.URL = "wss://localhost:5944/"
	corrupt.Port = 5944
	st.AddLocal(corrupt)
	st.AddPage(store.PageRecord{
		Crawl: string(groundtruth.CrawlTop2020), OS: "BeOS", Domain: "x.example",
		URL: "https://x.example/",
	})

	// Lenient (default): the record vanishes from per-OS sets but the
	// index reports the label with its record count.
	sites := LocalSites(st, groundtruth.CrawlTop2020, "localhost")
	if len(sites) != 1 {
		t.Fatalf("got %d sites, want 1", len(sites))
	}
	if sites[0].OS != groundtruth.OSWindows {
		t.Errorf("OS set = %v, want the corrupted record folded out, leaving Windows", sites[0].OS)
	}
	unknown := pipeline.IndexFor(st).UnknownOSLabels()
	if unknown["BeOS"] != 2 {
		t.Errorf("UnknownOSLabels = %v, want BeOS:2 (one local, one page)", unknown)
	}

	// Strict: the same lookup panics.
	prev := SetDebugOSLabels(true)
	defer SetDebugOSLabels(prev)
	defer func() {
		if recover() == nil {
			t.Error("strict mode must panic on a corrupted OS label")
		}
	}()
	OSSetFromName("BeOS")
}

func TestFirstDelayIsMinimum(t *testing.T) {
	st := store.New()
	add := func(delay time.Duration) {
		st.AddLocal(store.LocalRequest{
			Crawl: string(groundtruth.CrawlTop2020), OS: "Windows", Domain: "x.example",
			URL: "wss://localhost:5939/", Scheme: "wss", Host: "localhost", Port: 5939,
			Path: "/", Dest: "localhost", Delay: delay,
		})
	}
	add(10 * time.Second)
	add(9 * time.Second)
	add(12 * time.Second)
	sites := LocalSites(st, groundtruth.CrawlTop2020, "localhost")
	if len(sites) != 1 {
		t.Fatal("grouping failed")
	}
	if d := sites[0].FirstDelay[groundtruth.OSWindows]; d != 9*time.Second {
		t.Errorf("first delay = %v, want 9s", d)
	}
}

func TestComputeOSSkew(t *testing.T) {
	sites := LocalSites(small2020, groundtruth.CrawlTop2020, "localhost")
	skew := ComputeOSSkew(sites, groundtruth.OSAll)
	// Top-1000 slice: 4 eBay sites Windows-only, hola.org uniform.
	if skew.Sites != 5 || skew.ExclusiveCounts[groundtruth.OSWindows] != 4 || skew.UniformCount != 1 {
		t.Errorf("skew = %+v", skew)
	}
	if share := skew.ExclusiveShare[groundtruth.OSWindows]; share < 0.79 || share > 0.81 {
		t.Errorf("Windows-exclusive share = %.2f", share)
	}
	if got := ComputeOSSkew(nil, groundtruth.OSAll); got.Sites != 0 || len(got.ExclusiveShare) != 0 {
		t.Errorf("empty skew = %+v", got)
	}
}

func TestComputeSOPUsage(t *testing.T) {
	u := ComputeSOPUsage(small2020, groundtruth.CrawlTop2020, "localhost")
	// 4 TM sites × 14 WSS probes per OS crawl (Windows only) = 56
	// exempt requests; hola's 30 HTTP fetches (3 OSes × 10) are bound.
	if u.ExemptRequests != 56 || u.WSSRequests != 56 {
		t.Errorf("usage = %+v", u)
	}
	if u.Sites != 5 || u.ExemptSites != 4 {
		t.Errorf("site counts = %+v", u)
	}
	if u.Requests <= u.ExemptRequests {
		t.Errorf("HTTP traffic missing: %+v", u)
	}
}
