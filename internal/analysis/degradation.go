package analysis

import (
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// The detection-degradation sweep: the same campaign crawled under
// several network-condition profiles, each store scored against the
// embedded ground truth. The paper crawled from two nominal vantages
// and could not ask how its detection and classification rates decay on
// bad networks; this surface answers exactly that.

// ProfileOutcome scores one profile's store against ground truth,
// aggregated across the crawls it holds.
type ProfileOutcome struct {
	// Profile is the network-condition profile the store was crawled
	// under ("nominal" for the baseline).
	Profile string
	// Visits and FailedLoads count page records and load failures.
	Visits, FailedLoads int
	// Expected counts ground-truth localhost sites present in the
	// crawled population (and active on an OS the crawl covers);
	// Detected those the pipeline actually surfaced.
	Expected, Detected int
	// LANExpected and LANDetected score the LAN-destination tables.
	LANExpected, LANDetected int
	// ClassMatched counts detected localhost sites whose classified
	// verdict matches the ground-truth behavior class.
	ClassMatched int
}

// DetectionRate is the fraction of expected localhost sites detected.
func (o *ProfileOutcome) DetectionRate() float64 { return ratio(o.Detected, o.Expected) }

// LANDetectionRate is the fraction of expected LAN sites detected.
func (o *ProfileOutcome) LANDetectionRate() float64 { return ratio(o.LANDetected, o.LANExpected) }

// ClassificationRate is the fraction of detected localhost sites whose
// verdict matches ground truth.
func (o *ProfileOutcome) ClassificationRate() float64 { return ratio(o.ClassMatched, o.Detected) }

// FailureRate is the fraction of visits that failed to load.
func (o *ProfileOutcome) FailureRate() float64 { return ratio(o.FailedLoads, o.Visits) }

func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// localhostTruth returns the crawl's localhost ground-truth rows.
func localhostTruth(crawl groundtruth.CrawlID) []groundtruth.LocalhostRow {
	switch crawl {
	case groundtruth.CrawlTop2020:
		return groundtruth.Top2020Localhost()
	case groundtruth.CrawlTop2021:
		return groundtruth.Top2021Localhost()
	case groundtruth.CrawlMalicious:
		return groundtruth.MaliciousLocalhost()
	default:
		return nil
	}
}

// lanTruth returns the crawl's LAN ground-truth rows.
func lanTruth(crawl groundtruth.CrawlID) []groundtruth.LANRow {
	switch crawl {
	case groundtruth.CrawlTop2020:
		return groundtruth.Top2020LAN()
	case groundtruth.CrawlTop2021:
		return groundtruth.Top2021LAN()
	case groundtruth.CrawlMalicious:
		return groundtruth.MaliciousLAN()
	default:
		return nil
	}
}

// ScoreStore scores one store against ground truth across the given
// crawls. Expected counts only ground-truth sites the store actually
// crawled (scaled populations truncate the tables) whose OS set
// intersects the crawl's coverage.
func ScoreStore(profile string, st *store.Store, crawls []groundtruth.CrawlID) ProfileOutcome {
	out := ProfileOutcome{Profile: profile}
	for _, crawl := range crawls {
		crawled := map[string]bool{}
		for _, p := range st.Pages(func(p *store.PageRecord) bool { return p.Crawl == string(crawl) }) {
			crawled[p.Domain] = true
			out.Visits++
			if !p.OK() {
				out.FailedLoads++
			}
		}
		if len(crawled) == 0 {
			continue
		}
		osSet := groundtruth.OSesFor(crawl)

		detected := map[string]bool{}
		verdicts := map[string]groundtruth.Class{}
		for _, s := range LocalSites(st, crawl, "localhost") {
			detected[s.Domain] = true
			verdicts[s.Domain] = s.Verdict.Class
		}
		seen := map[string]bool{}
		for _, row := range localhostTruth(crawl) {
			if seen[row.Domain] || !crawled[row.Domain] || row.OS&osSet == 0 || len(row.Probes) == 0 {
				continue
			}
			seen[row.Domain] = true
			out.Expected++
			if detected[row.Domain] {
				out.Detected++
				if verdicts[row.Domain] == row.Class {
					out.ClassMatched++
				}
			}
		}

		lanDetected := map[string]bool{}
		for _, s := range LocalSites(st, crawl, "lan") {
			lanDetected[s.Domain] = true
		}
		lanSeen := map[string]bool{}
		for _, row := range lanTruth(crawl) {
			if lanSeen[row.Domain] || !crawled[row.Domain] || row.OS&osSet == 0 {
				continue
			}
			lanSeen[row.Domain] = true
			out.LANExpected++
			if lanDetected[row.Domain] {
				out.LANDetected++
			}
		}
	}
	return out
}

// Degradation scores one store per profile, in the given order — the
// rows of the detection-degradation table.
func Degradation(profiles []string, stores map[string]*store.Store, crawls []groundtruth.CrawlID) []ProfileOutcome {
	out := make([]ProfileOutcome, 0, len(profiles))
	for _, p := range profiles {
		st, ok := stores[p]
		if !ok {
			continue
		}
		out = append(out, ScoreStore(p, st, crawls))
	}
	return out
}
