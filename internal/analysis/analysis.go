// Package analysis computes the paper's aggregate results from stored
// crawl telemetry: crawl statistics (Table 1), the malicious-category
// summary (Table 2), per-OS site sets and their overlap (Figure 2), rank
// CDFs (Figures 3 and 9), protocol/port rollups (Figures 4 and 8),
// request-timing CDFs (Figures 5–7), and the per-class site breakdowns
// behind Tables 3, 5–11.
//
// Since PR 3 the store-scanning aggregates are materialized by the
// pipeline's SiteIndex (one build per store generation, shared with the
// query engine and the HTTP service); this package keeps the stable
// signatures the report layer consumes and the pure, slice-level
// helpers (CDFs, Venn regions, class counts).
package analysis

import (
	"sort"
	"sync/atomic"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// debugOSLabels makes OSSetFromName panic on labels outside the
// study's three platforms instead of folding them to OSNone.
var debugOSLabels atomic.Bool

// SetDebugOSLabels toggles strict OS-label handling and reports the
// previous setting. In the default lenient mode an unknown label maps
// to OSNone — it vanishes from every per-OS aggregate (Figure 2, the
// delay CDFs) while still counting toward OS-agnostic totals; the
// pipeline's SiteIndex tallies such records (UnknownOSLabels) so the
// gap is visible. Strict mode turns the same condition into a panic,
// for debugging corrupted stores.
func SetDebugOSLabels(on bool) bool { return debugOSLabels.Swap(on) }

// OSSetFromName maps a store OS label to its groundtruth bit. Unknown
// labels fold to OSNone (live ingest accepts arbitrary labels) unless
// SetDebugOSLabels enabled strict mode, in which case they panic.
func OSSetFromName(name string) groundtruth.OSSet {
	set, err := groundtruth.OSSetFromLabel(name)
	if err != nil && debugOSLabels.Load() {
		panic(err)
	}
	return set
}

// SiteActivity aggregates one site's local-network behavior across the
// OSes of a crawl.
type SiteActivity = pipeline.SiteActivity

// LocalSites groups a crawl's local requests by site for one destination
// class ("localhost" or "lan"), classifies each site, and returns the
// sites sorted by rank then domain. The result comes from the store's
// materialized site index; treat element internals as read-only.
func LocalSites(st *store.Store, crawl groundtruth.CrawlID, dest string) []SiteActivity {
	return pipeline.IndexFor(st).LocalSites(crawl, dest)
}

// Venn computes the OS-overlap regions of Figure 2: how many sites were
// active on exactly each OS combination.
func Venn(sites []SiteActivity) map[groundtruth.OSSet]int {
	out := map[groundtruth.OSSet]int{}
	for _, s := range sites {
		out[s.OS]++
	}
	return out
}

// OSTotals counts sites active on each single OS (a site active on
// several OSes counts toward each).
func OSTotals(sites []SiteActivity) map[groundtruth.OSSet]int {
	out := map[groundtruth.OSSet]int{}
	for _, s := range sites {
		for _, bit := range []groundtruth.OSSet{groundtruth.OSWindows, groundtruth.OSLinux, groundtruth.OSMac} {
			if s.OS.Has(bit) {
				out[bit]++
			}
		}
	}
	return out
}

// ClassCounts tallies sites per behavior class.
func ClassCounts(sites []SiteActivity) map[groundtruth.Class]int {
	out := map[groundtruth.Class]int{}
	for _, s := range sites {
		out[s.Verdict.Class]++
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	Y float64
}

// CDF builds the empirical CDF of the values.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{X: v, Y: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the values, using the
// nearest-rank method. It returns 0 for empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RankCDF is Figure 3/9: the CDF of Tranco ranks for sites active on one
// OS.
func RankCDF(sites []SiteActivity, os groundtruth.OSSet) []CDFPoint {
	var ranks []float64
	for _, s := range sites {
		if s.OS.Has(os) && s.Rank > 0 {
			ranks = append(ranks, float64(s.Rank))
		}
	}
	return CDF(ranks)
}

// DelayCDF is Figure 5/6/7: the CDF of per-site first-request delays in
// seconds, for sites active on one OS.
func DelayCDF(sites []SiteActivity, os groundtruth.OSSet) []CDFPoint {
	return CDF(DelaySeconds(sites, os))
}

// DelaySeconds extracts the per-site first-request delays in seconds for
// one OS.
func DelaySeconds(sites []SiteActivity, os groundtruth.OSSet) []float64 {
	var out []float64
	for _, s := range sites {
		if d, ok := s.FirstDelay[os]; ok {
			out = append(out, d.Seconds())
		}
	}
	return out
}

// Rollup is the Figure 4/8 protocol/port breakdown for one OS.
type Rollup = pipeline.Rollup

// SchemeRollup aggregates a crawl's local requests on one OS by scheme
// and port, from the materialized index.
func SchemeRollup(st *store.Store, crawl groundtruth.CrawlID, osName string, dest string) Rollup {
	return pipeline.IndexFor(st).SchemeRollup(crawl, osName, dest)
}

// CrawlRow is one measured row of Table 1.
type CrawlRow = pipeline.CrawlRow

// CrawlTable computes Table 1 from stored page records, in the paper's
// row order (by crawl, then OS as W/M/L where present).
func CrawlTable(st *store.Store) []CrawlRow {
	return pipeline.IndexFor(st).CrawlTable()
}

// CategoryRow is one measured row of Table 2.
type CategoryRow = pipeline.CategoryRow

// MaliciousSummary computes Table 2 from stored records.
func MaliciousSummary(st *store.Store) []CategoryRow {
	return pipeline.IndexFor(st).MaliciousSummary()
}

// TopN returns the N highest-ranked sites active on the given OS
// (Table 3).
func TopN(sites []SiteActivity, os groundtruth.OSSet, n int) []SiteActivity {
	var filtered []SiteActivity
	for _, s := range sites {
		if s.OS.Has(os) && s.Rank > 0 {
			filtered = append(filtered, s)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Rank < filtered[j].Rank })
	if len(filtered) > n {
		filtered = filtered[:n]
	}
	return filtered
}
