// Package analysis computes the paper's aggregate results from stored
// crawl telemetry: crawl statistics (Table 1), the malicious-category
// summary (Table 2), per-OS site sets and their overlap (Figure 2), rank
// CDFs (Figures 3 and 9), protocol/port rollups (Figures 4 and 8),
// request-timing CDFs (Figures 5–7), and the per-class site breakdowns
// behind Tables 3, 5–11.
package analysis

import (
	"sort"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// OSSetFromName maps a store OS label to its groundtruth bit.
func OSSetFromName(name string) groundtruth.OSSet {
	switch name {
	case "Windows":
		return groundtruth.OSWindows
	case "Linux":
		return groundtruth.OSLinux
	case "Mac":
		return groundtruth.OSMac
	default:
		return groundtruth.OSNone
	}
}

// SiteActivity aggregates one site's local-network behavior across the
// OSes of a crawl.
type SiteActivity struct {
	Domain   string
	Rank     int
	Category string
	// OS is the set of OSes on which local traffic was observed.
	OS groundtruth.OSSet
	// FirstDelay maps each active OS to the delay between page fetch
	// and the first local request (the Figure 5 observable).
	FirstDelay map[groundtruth.OSSet]time.Duration
	// Requests are all local requests across OSes.
	Requests []store.LocalRequest
	// Verdict is the classified behavior.
	Verdict classify.Verdict
}

// LocalSites groups a crawl's local requests by site for one destination
// class ("localhost" or "lan"), classifies each site, and returns the
// sites sorted by rank then domain.
func LocalSites(st *store.Store, crawl groundtruth.CrawlID, dest string) []SiteActivity {
	reqs := st.Locals(func(l *store.LocalRequest) bool {
		return l.Crawl == string(crawl) && l.Dest == dest
	})
	byDomain := map[string]*SiteActivity{}
	for _, r := range reqs {
		sa := byDomain[r.Domain]
		if sa == nil {
			sa = &SiteActivity{
				Domain:     r.Domain,
				Rank:       r.Rank,
				Category:   r.Category,
				FirstDelay: map[groundtruth.OSSet]time.Duration{},
			}
			byDomain[r.Domain] = sa
		}
		bit := OSSetFromName(r.OS)
		sa.OS |= bit
		if cur, ok := sa.FirstDelay[bit]; !ok || r.Delay < cur {
			sa.FirstDelay[bit] = r.Delay
		}
		sa.Requests = append(sa.Requests, r)
	}
	out := make([]SiteActivity, 0, len(byDomain))
	for _, sa := range byDomain {
		if dest == "lan" {
			sa.Verdict = classify.LANSite(sa.Requests)
		} else {
			sa.Verdict = classify.Site(sa.Requests)
		}
		out = append(out, *sa)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// Venn computes the OS-overlap regions of Figure 2: how many sites were
// active on exactly each OS combination.
func Venn(sites []SiteActivity) map[groundtruth.OSSet]int {
	out := map[groundtruth.OSSet]int{}
	for _, s := range sites {
		out[s.OS]++
	}
	return out
}

// OSTotals counts sites active on each single OS (a site active on
// several OSes counts toward each).
func OSTotals(sites []SiteActivity) map[groundtruth.OSSet]int {
	out := map[groundtruth.OSSet]int{}
	for _, s := range sites {
		for _, bit := range []groundtruth.OSSet{groundtruth.OSWindows, groundtruth.OSLinux, groundtruth.OSMac} {
			if s.OS.Has(bit) {
				out[bit]++
			}
		}
	}
	return out
}

// ClassCounts tallies sites per behavior class.
func ClassCounts(sites []SiteActivity) map[groundtruth.Class]int {
	out := map[groundtruth.Class]int{}
	for _, s := range sites {
		out[s.Verdict.Class]++
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	Y float64
}

// CDF builds the empirical CDF of the values.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{X: v, Y: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the values, using the
// nearest-rank method. It returns 0 for empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RankCDF is Figure 3/9: the CDF of Tranco ranks for sites active on one
// OS.
func RankCDF(sites []SiteActivity, os groundtruth.OSSet) []CDFPoint {
	var ranks []float64
	for _, s := range sites {
		if s.OS.Has(os) && s.Rank > 0 {
			ranks = append(ranks, float64(s.Rank))
		}
	}
	return CDF(ranks)
}

// DelayCDF is Figure 5/6/7: the CDF of per-site first-request delays in
// seconds, for sites active on one OS.
func DelayCDF(sites []SiteActivity, os groundtruth.OSSet) []CDFPoint {
	return CDF(DelaySeconds(sites, os))
}

// DelaySeconds extracts the per-site first-request delays in seconds for
// one OS.
func DelaySeconds(sites []SiteActivity, os groundtruth.OSSet) []float64 {
	var out []float64
	for _, s := range sites {
		if d, ok := s.FirstDelay[os]; ok {
			out = append(out, d.Seconds())
		}
	}
	return out
}

// Rollup is the Figure 4/8 protocol/port breakdown for one OS.
type Rollup struct {
	OS    groundtruth.OSSet
	Total int
	// ByScheme counts requests per scheme; Ports lists the distinct
	// ports seen per scheme, sorted.
	ByScheme map[string]int
	Ports    map[string][]uint16
}

// SchemeRollup aggregates a crawl's local requests on one OS by scheme
// and port.
func SchemeRollup(st *store.Store, crawl groundtruth.CrawlID, osName string, dest string) Rollup {
	reqs := st.Locals(func(l *store.LocalRequest) bool {
		return l.Crawl == string(crawl) && l.OS == osName && l.Dest == dest
	})
	r := Rollup{OS: OSSetFromName(osName), ByScheme: map[string]int{}, Ports: map[string][]uint16{}}
	portSet := map[string]map[uint16]bool{}
	for _, q := range reqs {
		r.Total++
		r.ByScheme[q.Scheme]++
		if portSet[q.Scheme] == nil {
			portSet[q.Scheme] = map[uint16]bool{}
		}
		portSet[q.Scheme][q.Port] = true
	}
	for scheme, ports := range portSet {
		for p := range ports {
			r.Ports[scheme] = append(r.Ports[scheme], p)
		}
		sort.Slice(r.Ports[scheme], func(i, j int) bool { return r.Ports[scheme][i] < r.Ports[scheme][j] })
	}
	return r
}

// CrawlRow is one measured row of Table 1.
type CrawlRow struct {
	Crawl           groundtruth.CrawlID
	OS              string
	Successful      int
	Failed          int
	NameNotResolved int
	ConnRefused     int
	ConnReset       int
	CertCNInvalid   int
	Others          int
}

// Total returns attempted loads.
func (r CrawlRow) Total() int { return r.Successful + r.Failed }

// CrawlTable computes Table 1 from stored page records, in the paper's
// row order (by crawl, then OS as W/M/L where present).
func CrawlTable(st *store.Store) []CrawlRow {
	type key struct {
		crawl string
		os    string
	}
	rows := map[key]*CrawlRow{}
	for _, p := range st.Pages(nil) {
		k := key{p.Crawl, p.OS}
		r := rows[k]
		if r == nil {
			r = &CrawlRow{Crawl: groundtruth.CrawlID(p.Crawl), OS: p.OS}
			rows[k] = r
		}
		if p.OK() {
			r.Successful++
			continue
		}
		r.Failed++
		switch p.Err {
		case "ERR_NAME_NOT_RESOLVED":
			r.NameNotResolved++
		case "ERR_CONNECTION_REFUSED":
			r.ConnRefused++
		case "ERR_CONNECTION_RESET":
			r.ConnReset++
		case "ERR_CERT_COMMON_NAME_INVALID":
			r.CertCNInvalid++
		default:
			r.Others++
		}
	}
	out := make([]CrawlRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Crawl != out[j].Crawl {
			return out[i].Crawl < out[j].Crawl
		}
		return osOrder(out[i].OS) < osOrder(out[j].OS)
	})
	return out
}

func osOrder(os string) int {
	switch os {
	case "Windows":
		return 0
	case "Linux":
		return 1
	default:
		return 2
	}
}

// CategoryRow is one measured row of Table 2.
type CategoryRow struct {
	Category    string
	Sites       int
	SuccessRate map[string]float64 // by OS name
	Localhost   map[string]int     // localhost-active sites by OS name
	LAN         map[string]int
}

// MaliciousSummary computes Table 2 from stored records.
func MaliciousSummary(st *store.Store) []CategoryRow {
	byCat := map[string]*CategoryRow{}
	attempted := map[[2]string]int{} // (category, os) → attempts
	succeeded := map[[2]string]int{}
	for _, p := range st.Pages(func(p *store.PageRecord) bool { return p.Crawl == string(groundtruth.CrawlMalicious) }) {
		r := byCat[p.Category]
		if r == nil {
			r = &CategoryRow{
				Category:    p.Category,
				SuccessRate: map[string]float64{},
				Localhost:   map[string]int{},
				LAN:         map[string]int{},
			}
			byCat[p.Category] = r
		}
		attempted[[2]string{p.Category, p.OS}]++
		if p.OK() {
			succeeded[[2]string{p.Category, p.OS}]++
		}
	}
	// Distinct sites per category (attempts divided across OSes).
	siteSet := map[string]map[string]bool{}
	for _, p := range st.Pages(func(p *store.PageRecord) bool { return p.Crawl == string(groundtruth.CrawlMalicious) }) {
		if siteSet[p.Category] == nil {
			siteSet[p.Category] = map[string]bool{}
		}
		siteSet[p.Category][p.Domain] = true
	}
	for cat, r := range byCat {
		r.Sites = len(siteSet[cat])
		for _, os := range []string{"Windows", "Linux", "Mac"} {
			if n := attempted[[2]string{cat, os}]; n > 0 {
				r.SuccessRate[os] = float64(succeeded[[2]string{cat, os}]) / float64(n)
			}
		}
	}
	for _, dest := range []string{"localhost", "lan"} {
		for _, s := range LocalSites(st, groundtruth.CrawlMalicious, dest) {
			r := byCat[s.Category]
			if r == nil {
				continue
			}
			for osName, bit := range map[string]groundtruth.OSSet{
				"Windows": groundtruth.OSWindows, "Linux": groundtruth.OSLinux, "Mac": groundtruth.OSMac,
			} {
				if s.OS.Has(bit) {
					if dest == "lan" {
						r.LAN[osName]++
					} else {
						r.Localhost[osName]++
					}
				}
			}
		}
	}
	out := make([]CategoryRow, 0, len(byCat))
	for _, cat := range []string{"malware", "abuse", "phishing"} {
		if r := byCat[cat]; r != nil {
			out = append(out, *r)
		}
	}
	return out
}

// TopN returns the N highest-ranked sites active on the given OS
// (Table 3).
func TopN(sites []SiteActivity, os groundtruth.OSSet, n int) []SiteActivity {
	var filtered []SiteActivity
	for _, s := range sites {
		if s.OS.Has(os) && s.Rank > 0 {
			filtered = append(filtered, s)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Rank < filtered[j].Rank })
	if len(filtered) > n {
		filtered = filtered[:n]
	}
	return filtered
}
