package netlog

// Event types observed on the simulated Chrome network stack. The set
// mirrors the subset of Chrome's NetLog event catalogue that the Knock
// and Talk pipeline consumes: request lifecycle, DNS resolution, socket
// connection, TLS, HTTP transaction, WebSocket, and redirects.
const (
	// Request lifecycle.
	TypeRequestAlive       EventType = "REQUEST_ALIVE"
	TypeURLRequestStartJob EventType = "URL_REQUEST_START_JOB"
	TypeURLRequestRedirect EventType = "URL_REQUEST_REDIRECTED"
	TypeURLRequestError    EventType = "URL_REQUEST_ERROR"

	// DNS.
	TypeHostResolverJob EventType = "HOST_RESOLVER_IMPL_JOB"

	// Transport.
	TypeTCPConnect    EventType = "TCP_CONNECT"
	TypeSocketAlive   EventType = "SOCKET_ALIVE"
	TypeSSLConnect    EventType = "SSL_CONNECT"
	TypeSocketClosed  EventType = "SOCKET_CLOSED"
	TypeSocketError   EventType = "SOCKET_ERROR"
	TypeSocketInUse   EventType = "SOCKET_IN_USE"
	TypeSocketTimeout EventType = "SOCKET_TIMEOUT"

	// HTTP transaction.
	TypeHTTPTransactionSendRequest        EventType = "HTTP_TRANSACTION_SEND_REQUEST"
	TypeHTTPTransactionSendRequestHeaders EventType = "HTTP_TRANSACTION_SEND_REQUEST_HEADERS"
	TypeHTTPTransactionReadHeaders        EventType = "HTTP_TRANSACTION_READ_HEADERS"
	TypeHTTPTransactionReadBody           EventType = "HTTP_TRANSACTION_READ_BODY"

	// WebSocket.
	TypeWebSocketSendHandshakeRequest  EventType = "WEB_SOCKET_SEND_HANDSHAKE_REQUEST"
	TypeWebSocketReadHandshakeResponse EventType = "WEB_SOCKET_READ_RESPONSE_HEADERS"
	TypeWebSocketInvalidHandshake      EventType = "WEB_SOCKET_INVALID_RESPONSE"
	TypeWebSocketSendFrame             EventType = "WEB_SOCKET_SENT_FRAME"
	TypeWebSocketRecvFrame             EventType = "WEB_SOCKET_RECEIVED_FRAME"

	// Browser-internal activity (Safe Browsing pings, variations fetches,
	// extension update checks). Generated with SourceBrowser sources and
	// filtered out by the analysis layer.
	TypeBrowserBackgroundRequest EventType = "BROWSER_BACKGROUND_REQUEST"
)

// eventTypeCodes assigns stable integer codes for the JSON export, in the
// spirit of Chrome's generated logging constants. Codes are part of the
// on-disk format; do not renumber.
var eventTypeCodes = map[EventType]int{
	TypeRequestAlive:                      1,
	TypeURLRequestStartJob:                2,
	TypeURLRequestRedirect:                3,
	TypeURLRequestError:                   4,
	TypeHostResolverJob:                   10,
	TypeTCPConnect:                        20,
	TypeSocketAlive:                       21,
	TypeSSLConnect:                        22,
	TypeSocketClosed:                      23,
	TypeSocketError:                       24,
	TypeSocketInUse:                       25,
	TypeSocketTimeout:                     26,
	TypeHTTPTransactionSendRequest:        30,
	TypeHTTPTransactionSendRequestHeaders: 31,
	TypeHTTPTransactionReadHeaders:        32,
	TypeHTTPTransactionReadBody:           33,
	TypeWebSocketSendHandshakeRequest:     40,
	TypeWebSocketReadHandshakeResponse:    41,
	TypeWebSocketInvalidHandshake:         42,
	TypeWebSocketSendFrame:                43,
	TypeWebSocketRecvFrame:                44,
	TypeBrowserBackgroundRequest:          90,
}

var eventTypeByCode = func() map[int]EventType {
	m := make(map[int]EventType, len(eventTypeCodes))
	for t, c := range eventTypeCodes {
		m[c] = t
	}
	return m
}()

var sourceTypeCodes = map[SourceType]int{
	SourceNone:          0,
	SourceURLRequest:    1,
	SourceSocket:        2,
	SourceHostResolver:  3,
	SourceWebSocket:     4,
	SourceHTTPStreamJob: 5,
	SourceBrowser:       6,
}

var sourceTypeByCode = func() map[int]SourceType {
	m := make(map[int]SourceType, len(sourceTypeCodes))
	for t, c := range sourceTypeCodes {
		m[c] = t
	}
	return m
}()

// EventTypeCode returns the stable integer code for an event type, and
// whether the type is registered.
func EventTypeCode(t EventType) (int, bool) {
	c, ok := eventTypeCodes[t]
	return c, ok
}

// RegisteredEventTypes returns all registered event types. The order is
// unspecified.
func RegisteredEventTypes() []EventType {
	out := make([]EventType, 0, len(eventTypeCodes))
	for t := range eventTypeCodes {
		out = append(out, t)
	}
	return out
}
