package netlog

import (
	"sync"
	"time"
)

// Recorder accumulates NetLog events for one page visit. It allocates
// serial source IDs (as Chrome does: "when a new network request is
// initiated, it is assigned a new source ID (in serial order)") and is
// safe for concurrent use by the browser's fetch workers.
type Recorder struct {
	mu     sync.Mutex
	nextID uint32
	events []Event
	// limit bounds the capture, as Chrome's bounded NetLog modes do;
	// 0 means unbounded. Events beyond the limit are counted, not kept.
	limit   int
	dropped int
}

// eventBufPool recycles event backing arrays between visits: a crawl
// allocates one capture per page, and recycling the buffers (see
// Log.Recycle) keeps that churn out of the garbage collector.
var eventBufPool = sync.Pool{
	New: func() any {
		s := make([]Event, 0, 128) // pre-sized for a typical page visit
		return &s
	},
}

// NewRecorder returns an empty, unbounded recorder. Source IDs start at
// 1; ID 0 is reserved for the unattributed source.
func NewRecorder() *Recorder {
	buf := eventBufPool.Get().(*[]Event)
	return &Recorder{nextID: 1, events: (*buf)[:0]}
}

// NewBoundedRecorder returns a recorder that retains at most limit
// events, mirroring Chrome's bounded capture modes. Further events are
// dropped and counted (Dropped).
func NewBoundedRecorder(limit int) *Recorder {
	return &Recorder{nextID: 1, limit: limit}
}

// Dropped reports how many events were discarded by the bound.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// NewSource allocates the next serial source ID for the given type.
func (r *Recorder) NewSource(t SourceType) Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Source{Type: t, ID: r.nextID}
	r.nextID++
	return s
}

// Add appends a fully formed event, unless the capture bound is
// reached.
func (r *Recorder) Add(e Event) {
	r.mu.Lock()
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

// Emit appends an event assembled from its parts. A nil params map is
// permitted.
func (r *Recorder) Emit(at time.Duration, t EventType, src Source, phase Phase, params map[string]any) {
	r.Add(Event{Time: at, Type: t, Source: src, Phase: phase, Params: params})
}

// Begin emits a PHASE_BEGIN event.
func (r *Recorder) Begin(at time.Duration, t EventType, src Source, params map[string]any) {
	r.Emit(at, t, src, PhaseBegin, params)
}

// End emits a PHASE_END event.
func (r *Recorder) End(at time.Duration, t EventType, src Source, params map[string]any) {
	r.Emit(at, t, src, PhaseEnd, params)
}

// Point emits a PHASE_NONE (instantaneous) event.
func (r *Recorder) Point(at time.Duration, t EventType, src Source, params map[string]any) {
	r.Emit(at, t, src, PhaseNone, params)
}

// Len reports the number of events recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Log snapshots the recorded events into a Log. The returned log shares no
// state with the recorder and further recording does not affect it.
func (r *Recorder) Log() *Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	events := make([]Event, len(r.events))
	copy(events, r.events)
	return &Log{Events: events}
}

// TakeLog moves the recorded events into a Log without copying, leaving
// the recorder empty. Use it when the recorder is done for (the end of a
// visit): it avoids duplicating the capture, which for a crawl means one
// less full event-stream allocation per page.
func (r *Recorder) TakeLog() *Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	events := r.events
	r.events = nil
	return &Log{Events: events}
}

// Recycle returns the log's event buffer to the recorder pool and empties
// the log. Call it only when nothing else references the log or slices of
// its events (e.g. at the end of a crawl visit, after extraction and
// retention are done); the buffer is reused by later recorders.
func (l *Log) Recycle() {
	if cap(l.Events) > 0 {
		buf := l.Events[:0]
		eventBufPool.Put(&buf)
	}
	l.Events = nil
}
