package netlog

import (
	"sort"
	"time"
)

// Flow is a logical network request reconstructed from the events sharing
// one source ID: the paper's unit of analysis ("allowing the events within
// a network flow to be logically grouped together").
type Flow struct {
	Source Source
	// URL is the full request URL, taken from the first event that
	// carries a "url" parameter.
	URL string
	// Start is the timestamp of the earliest event in the flow.
	Start time.Duration
	// End is the timestamp of the latest event in the flow.
	End time.Duration
	// NetError is the Chrome-style net error string (e.g.
	// "ERR_CONNECTION_REFUSED") if the flow failed, else "".
	NetError string
	// StatusCode is the HTTP status of the final response, or 0.
	StatusCode int
	// RedirectedTo lists redirect target URLs, in order, if any.
	RedirectedTo []string
	// Initiator names the page element or script that initiated the
	// request (propagated by the browser; e.g. "blob:threatmetrix").
	Initiator string
	// Events are the underlying events, in time order.
	Events []Event
}

// Flows reconstructs logical flows from the log, one per source that
// carries at least one request-bearing event. Sources of type
// SourceBrowser are included (callers that need webpage-only traffic
// filter on Source.Type; see localnet.FromLog).
func (l *Log) Flows() []Flow {
	n := len(l.Events)
	if n == 0 {
		return nil
	}
	// Recorder source IDs are serial, so grouping can index by ID into a
	// single backing array instead of growing a map of per-source slices
	// (the detector runs Flows on every retained visit, and that map
	// churn dominated its allocations). Logs with sparse IDs or an ID
	// shared across source types — never produced by a Recorder, but
	// representable in hand-built or parsed logs — fall back to the
	// map-based grouping.
	maxID := uint32(0)
	for i := range l.Events {
		if id := l.Events[i].Source.ID; id > maxID {
			maxID = id
		}
	}
	if uint64(maxID) >= uint64(4*n+64) {
		return flowsFromGroups(l.BySource())
	}
	counts := make([]int32, maxID+1)
	types := make([]SourceType, maxID+1)
	for i := range l.Events {
		e := &l.Events[i]
		id := e.Source.ID
		if counts[id] == 0 {
			types[id] = e.Source.Type
		} else if types[id] != e.Source.Type {
			return flowsFromGroups(l.BySource())
		}
		counts[id]++
	}
	backing := make([]Event, n)
	fill := make([]int32, maxID+1)
	next := int32(0)
	for id := range counts {
		fill[id] = next
		next += counts[id]
	}
	for i := range l.Events {
		id := l.Events[i].Source.ID
		backing[fill[id]] = l.Events[i]
		fill[id]++
	}
	flows := make([]Flow, 0, maxID+1)
	start := int32(0)
	for id := uint32(0); id <= maxID; id++ {
		c := counts[id]
		if c == 0 {
			continue
		}
		src := Source{Type: types[id], ID: id}
		if f, ok := buildFlow(src, backing[start:start+c:start+c]); ok {
			flows = append(flows, f)
		}
		start += c
	}
	sortFlows(flows)
	return flows
}

// FlowStats reconstructs the same flows as Flows but leaves Flow.Events
// nil, folding each source's aggregates in a single pass over the log
// with no per-flow event copies. The detector runs on every visit and
// needs only the aggregate fields, so this is its path; use Flows when
// the underlying events matter.
func (l *Log) FlowStats() []Flow {
	n := len(l.Events)
	if n == 0 {
		return nil
	}
	maxID := uint32(0)
	for i := range l.Events {
		if id := l.Events[i].Source.ID; id > maxID {
			maxID = id
		}
	}
	if uint64(maxID) >= uint64(4*n+64) {
		return stripEvents(flowsFromGroups(l.BySource()))
	}
	acc := make([]Flow, maxID+1)
	seen := make([]bool, maxID+1)
	for i := range l.Events {
		e := &l.Events[i]
		id := e.Source.ID
		f := &acc[id]
		if !seen[id] {
			seen[id] = true
			f.Source = e.Source
			f.Start, f.End = e.Time, e.Time
		} else if f.Source.Type != e.Source.Type {
			return stripEvents(flowsFromGroups(l.BySource()))
		}
		foldEvent(f, e)
	}
	// Compact the kept flows to the front of acc: the write index never
	// passes the read index, so no extra output slice is needed.
	flows := acc[:0]
	for id := uint32(0); id <= maxID; id++ {
		if !seen[id] {
			continue
		}
		if f := &acc[id]; f.URL != "" || f.Source.Type == SourceBrowser {
			flows = append(flows, *f)
		}
	}
	sortFlows(flows)
	return flows
}

func stripEvents(flows []Flow) []Flow {
	for i := range flows {
		flows[i].Events = nil
	}
	return flows
}

// flowsFromGroups is the map-based grouping path.
func flowsFromGroups(grouped map[Source][]Event) []Flow {
	flows := make([]Flow, 0, len(grouped))
	for src, events := range grouped {
		if f, ok := buildFlow(src, events); ok {
			flows = append(flows, f)
		}
	}
	sortFlows(flows)
	return flows
}

// buildFlow folds one source's events into a Flow. It reports false for
// sources that are transport detail rather than logical requests.
func buildFlow(src Source, events []Event) (Flow, bool) {
	f := Flow{Source: src, Events: events}
	f.Start, f.End = events[0].Time, events[0].Time
	for i := range events {
		foldEvent(&f, &events[i])
	}
	if f.URL == "" && src.Type != SourceBrowser {
		// Sources with no request URL (bare sockets, resolver jobs)
		// are transport detail, not logical requests.
		return Flow{}, false
	}
	return f, true
}

// foldEvent accumulates one event into its flow's aggregate fields.
// f.Start and f.End must be initialized from the flow's first event.
func foldEvent(f *Flow, e *Event) {
	if e.Time < f.Start {
		f.Start = e.Time
	}
	if e.Time > f.End {
		f.End = e.Time
	}
	if f.URL == "" {
		if u := e.ParamString("url"); u != "" {
			f.URL = u
		}
	}
	if f.Initiator == "" {
		if in := e.ParamString("initiator"); in != "" {
			f.Initiator = in
		}
	}
	switch e.Type {
	case TypeURLRequestRedirect:
		if loc := e.ParamString("location"); loc != "" {
			f.RedirectedTo = append(f.RedirectedTo, loc)
		}
	case TypeURLRequestError, TypeSocketError:
		if ne := e.ParamString("net_error"); ne != "" {
			f.NetError = ne
		}
	case TypeHTTPTransactionReadHeaders, TypeWebSocketReadHandshakeResponse:
		if sc, ok := e.ParamInt("status_code"); ok {
			f.StatusCode = sc
		}
	}
}

func sortFlows(flows []Flow) {
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Start != flows[j].Start {
			return flows[i].Start < flows[j].Start
		}
		return flows[i].Source.ID < flows[j].Source.ID
	})
}

// Duration is the elapsed time between the first and last event of the flow.
func (f *Flow) Duration() time.Duration { return f.End - f.Start }

// Failed reports whether the flow ended in a network error.
func (f *Flow) Failed() bool { return f.NetError != "" }
