package netlog

import (
	"sort"
	"time"
)

// Flow is a logical network request reconstructed from the events sharing
// one source ID: the paper's unit of analysis ("allowing the events within
// a network flow to be logically grouped together").
type Flow struct {
	Source Source
	// URL is the full request URL, taken from the first event that
	// carries a "url" parameter.
	URL string
	// Start is the timestamp of the earliest event in the flow.
	Start time.Duration
	// End is the timestamp of the latest event in the flow.
	End time.Duration
	// NetError is the Chrome-style net error string (e.g.
	// "ERR_CONNECTION_REFUSED") if the flow failed, else "".
	NetError string
	// StatusCode is the HTTP status of the final response, or 0.
	StatusCode int
	// RedirectedTo lists redirect target URLs, in order, if any.
	RedirectedTo []string
	// Initiator names the page element or script that initiated the
	// request (propagated by the browser; e.g. "blob:threatmetrix").
	Initiator string
	// Events are the underlying events, in time order.
	Events []Event
}

// Flows reconstructs logical flows from the log, one per source that
// carries at least one request-bearing event. Sources of type
// SourceBrowser are included (callers that need webpage-only traffic
// filter on Source.Type; see localnet.FromLog).
func (l *Log) Flows() []Flow {
	grouped := l.BySource()
	flows := make([]Flow, 0, len(grouped))
	for src, events := range grouped {
		f := Flow{Source: src, Events: events}
		first := true
		for i := range events {
			e := &events[i]
			if first || e.Time < f.Start {
				f.Start = e.Time
			}
			if first || e.Time > f.End {
				f.End = e.Time
			}
			first = false
			if f.URL == "" {
				if u := e.ParamString("url"); u != "" {
					f.URL = u
				}
			}
			if f.Initiator == "" {
				if in := e.ParamString("initiator"); in != "" {
					f.Initiator = in
				}
			}
			switch e.Type {
			case TypeURLRequestRedirect:
				if loc := e.ParamString("location"); loc != "" {
					f.RedirectedTo = append(f.RedirectedTo, loc)
				}
			case TypeURLRequestError, TypeSocketError:
				if ne := e.ParamString("net_error"); ne != "" {
					f.NetError = ne
				}
			case TypeHTTPTransactionReadHeaders, TypeWebSocketReadHandshakeResponse:
				if sc, ok := e.ParamInt("status_code"); ok {
					f.StatusCode = sc
				}
			}
		}
		if f.URL == "" && src.Type != SourceBrowser {
			// Sources with no request URL (bare sockets, resolver jobs)
			// are transport detail, not logical requests.
			continue
		}
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Start != flows[j].Start {
			return flows[i].Start < flows[j].Start
		}
		return flows[i].Source.ID < flows[j].Source.ID
	})
	return flows
}

// Duration is the elapsed time between the first and last event of the flow.
func (f *Flow) Duration() time.Duration { return f.End - f.Start }

// Failed reports whether the flow ended in a network error.
func (f *Flow) Failed() bool { return f.NetError != "" }
