package netlog

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzParseJSON hardens the NetLog reader: arbitrary input must never
// panic, and anything it accepts must re-serialize and re-parse to the
// same event stream.
func FuzzParseJSON(f *testing.F) {
	r := NewRecorder()
	src := r.NewSource(SourceURLRequest)
	r.Begin(time.Millisecond, TypeRequestAlive, src, map[string]any{"url": "wss://localhost:5939/"})
	r.Point(2*time.Millisecond, TypeURLRequestError, src, map[string]any{"net_error": "ERR_CONNECTION_REFUSED"})
	var buf bytes.Buffer
	if err := r.Log().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"constants":{},"events":[]}`)
	f.Add(`{"constants":{"logEventTypes":{"REQUEST_ALIVE":1},"logSourceType":{"URL_REQUEST":1},"logEventPhase":{}},"events":[{"phase":1,"source":{"id":1,"type":1},"time":"9","type":1}]}`)
	f.Add(`not json at all`)
	f.Add(`{"events":[{"time":"99999999999999999999"}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		log, err := ParseJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := log.WriteJSON(&out); err != nil {
			// Accepted logs may contain event types from the input's own
			// constants table that our writer does not register; that is
			// the only legitimate write failure.
			if !strings.Contains(err.Error(), "unregistered event type") {
				t.Fatalf("re-serialize failed: %v", err)
			}
			return
		}
		back, err := ParseJSON(&out)
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v", err)
		}
		if back.Len() != log.Len() {
			t.Fatalf("round trip changed event count: %d != %d", back.Len(), log.Len())
		}
	})
}
