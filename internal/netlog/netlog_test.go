package netlog

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPhaseString(t *testing.T) {
	cases := map[Phase]string{
		PhaseNone:  "PHASE_NONE",
		PhaseBegin: "PHASE_BEGIN",
		PhaseEnd:   "PHASE_END",
		Phase(9):   "PHASE_UNKNOWN(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestSourceTypeRoundTrip(t *testing.T) {
	for st := range sourceTypeNames {
		name := st.String()
		back, ok := SourceTypeFromString(name)
		if !ok || back != st {
			t.Errorf("SourceTypeFromString(%q) = %v, %v; want %v, true", name, back, ok, st)
		}
	}
	if _, ok := SourceTypeFromString("NOT_A_SOURCE"); ok {
		t.Error("SourceTypeFromString accepted an unknown name")
	}
}

func TestRecorderSerialSourceIDs(t *testing.T) {
	r := NewRecorder()
	a := r.NewSource(SourceURLRequest)
	b := r.NewSource(SourceSocket)
	c := r.NewSource(SourceURLRequest)
	if a.ID != 1 || b.ID != 2 || c.ID != 3 {
		t.Errorf("source IDs not serial: got %d, %d, %d", a.ID, b.ID, c.ID)
	}
	if a.Type != SourceURLRequest || b.Type != SourceSocket {
		t.Error("source types not preserved")
	}
}

func TestRecorderConcurrentSafety(t *testing.T) {
	r := NewRecorder()
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src := r.NewSource(SourceURLRequest)
				r.Begin(time.Duration(i)*time.Millisecond, TypeRequestAlive, src, nil)
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != workers*perWorker {
		t.Fatalf("recorded %d events, want %d", got, workers*perWorker)
	}
	// All source IDs must be distinct.
	seen := make(map[uint32]bool)
	for _, e := range r.Log().Events {
		if seen[e.Source.ID] {
			t.Fatalf("duplicate source ID %d", e.Source.ID)
		}
		seen[e.Source.ID] = true
	}
}

func TestLogSnapshotIsolation(t *testing.T) {
	r := NewRecorder()
	src := r.NewSource(SourceURLRequest)
	r.Begin(0, TypeRequestAlive, src, nil)
	snap := r.Log()
	r.End(time.Second, TypeRequestAlive, src, nil)
	if snap.Len() != 1 {
		t.Errorf("snapshot grew after further recording: len = %d", snap.Len())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	req := r.NewSource(SourceURLRequest)
	sock := r.NewSource(SourceSocket)
	r.Begin(0, TypeRequestAlive, req, map[string]any{"url": "http://127.0.0.1:8080/x"})
	r.Begin(1500*time.Microsecond, TypeTCPConnect, sock, map[string]any{"address": "127.0.0.1:8080"})
	r.Point(2*time.Millisecond, TypeSocketError, sock, map[string]any{"net_error": "ERR_CONNECTION_REFUSED"})
	r.End(3*time.Millisecond, TypeRequestAlive, req, nil)
	log := r.Log()

	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ParseJSON(&buf)
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if got.Len() != log.Len() {
		t.Fatalf("round trip changed event count: %d != %d", got.Len(), log.Len())
	}
	for i := range log.Events {
		a, b := log.Events[i], got.Events[i]
		if a.Time != b.Time || a.Type != b.Type || a.Source != b.Source || a.Phase != b.Phase {
			t.Errorf("event %d changed: %+v != %+v", i, a, b)
		}
	}
	if got.Events[2].ParamString("net_error") != "ERR_CONNECTION_REFUSED" {
		t.Error("params lost in round trip")
	}
}

func TestJSONSubMillisecondPrecision(t *testing.T) {
	r := NewRecorder()
	src := r.NewSource(SourceURLRequest)
	r.Begin(137*time.Microsecond, TypeRequestAlive, src, map[string]any{"url": "http://localhost/"})
	var buf bytes.Buffer
	if err := r.Log().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events[0].Time != 137*time.Microsecond {
		t.Errorf("time = %v, want 137µs", got.Events[0].Time)
	}
}

func TestParseJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"constants":{"logEventTypes":{},"logSourceType":{},"logEventPhase":{}},"events":[{"phase":0,"source":{"id":1,"type":0},"time":"0","type":999}]}`,
		`{"constants":{"logEventTypes":{"REQUEST_ALIVE":1},"logSourceType":{"BOGUS":9},"logEventPhase":{}},"events":[]}`,
		`{"constants":{"logEventTypes":{"REQUEST_ALIVE":1},"logSourceType":{"URL_REQUEST":1},"logEventPhase":{}},"events":[{"phase":0,"source":{"id":1,"type":1},"time":"abc","type":1}]}`,
		`{"constants":{"logEventTypes":{"REQUEST_ALIVE":1},"logSourceType":{"URL_REQUEST":1},"logEventPhase":{}},"events":[{"phase":7,"source":{"id":1,"type":1},"time":"0","type":1}]}`,
	}
	for i, in := range cases {
		if _, err := ParseJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: ParseJSON accepted malformed input", i)
		}
	}
}

func TestWriteJSONRejectsUnregisteredType(t *testing.T) {
	l := &Log{Events: []Event{{Type: EventType("MADE_UP"), Source: Source{Type: SourceURLRequest, ID: 1}}}}
	if err := l.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("WriteJSON accepted an unregistered event type")
	}
}

func TestEventTypeCodesBijective(t *testing.T) {
	seen := make(map[int]EventType)
	for typ, code := range eventTypeCodes {
		if prev, dup := seen[code]; dup {
			t.Errorf("code %d assigned to both %q and %q", code, prev, typ)
		}
		seen[code] = typ
	}
	if len(eventTypeByCode) != len(eventTypeCodes) {
		t.Error("eventTypeByCode size mismatch")
	}
}

func TestBySourceGrouping(t *testing.T) {
	r := NewRecorder()
	a := r.NewSource(SourceURLRequest)
	b := r.NewSource(SourceURLRequest)
	r.Begin(0, TypeRequestAlive, a, nil)
	r.Begin(1, TypeRequestAlive, b, nil)
	r.End(2, TypeRequestAlive, a, nil)
	groups := r.Log().BySource()
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if len(groups[a]) != 2 || len(groups[b]) != 1 {
		t.Errorf("group sizes wrong: a=%d b=%d", len(groups[a]), len(groups[b]))
	}
}

func TestFlowsReconstruction(t *testing.T) {
	r := NewRecorder()
	req := r.NewSource(SourceURLRequest)
	r.Begin(5*time.Millisecond, TypeRequestAlive, req, map[string]any{"url": "wss://localhost:5939/", "initiator": "blob:threatmetrix"})
	r.Point(6*time.Millisecond, TypeWebSocketReadHandshakeResponse, req, map[string]any{"status_code": 101})
	r.End(9*time.Millisecond, TypeRequestAlive, req, nil)

	bare := r.NewSource(SourceSocket) // transport-only source: no URL, dropped
	r.Begin(1*time.Millisecond, TypeTCPConnect, bare, nil)

	flows := r.Log().Flows()
	if len(flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(flows))
	}
	f := flows[0]
	if f.URL != "wss://localhost:5939/" {
		t.Errorf("URL = %q", f.URL)
	}
	if f.Start != 5*time.Millisecond || f.End != 9*time.Millisecond {
		t.Errorf("span = [%v, %v]", f.Start, f.End)
	}
	if f.Duration() != 4*time.Millisecond {
		t.Errorf("Duration = %v", f.Duration())
	}
	if f.StatusCode != 101 {
		t.Errorf("StatusCode = %d", f.StatusCode)
	}
	if f.Initiator != "blob:threatmetrix" {
		t.Errorf("Initiator = %q", f.Initiator)
	}
	if f.Failed() {
		t.Error("flow reported as failed")
	}
}

func TestFlowErrorAndRedirect(t *testing.T) {
	r := NewRecorder()
	req := r.NewSource(SourceURLRequest)
	r.Begin(0, TypeRequestAlive, req, map[string]any{"url": "http://fincaraiz.com.co/"})
	r.Point(time.Millisecond, TypeURLRequestRedirect, req, map[string]any{"location": "http://127.0.0.1/"})
	r.Point(2*time.Millisecond, TypeURLRequestError, req, map[string]any{"net_error": "ERR_CONNECTION_REFUSED"})
	flows := r.Log().Flows()
	if len(flows) != 1 {
		t.Fatalf("got %d flows", len(flows))
	}
	f := flows[0]
	if !f.Failed() || f.NetError != "ERR_CONNECTION_REFUSED" {
		t.Errorf("error not captured: %+v", f)
	}
	if len(f.RedirectedTo) != 1 || f.RedirectedTo[0] != "http://127.0.0.1/" {
		t.Errorf("redirects = %v", f.RedirectedTo)
	}
}

func TestFlowsSortedByStart(t *testing.T) {
	r := NewRecorder()
	late := r.NewSource(SourceURLRequest)
	early := r.NewSource(SourceURLRequest)
	r.Begin(10*time.Millisecond, TypeRequestAlive, late, map[string]any{"url": "http://b/"})
	r.Begin(1*time.Millisecond, TypeRequestAlive, early, map[string]any{"url": "http://a/"})
	flows := r.Log().Flows()
	if len(flows) != 2 || flows[0].URL != "http://a/" {
		t.Errorf("flows not time-ordered: %+v", flows)
	}
}

func TestSortByTimeStable(t *testing.T) {
	l := &Log{Events: []Event{
		{Time: 3, Source: Source{ID: 2}, Type: TypeRequestAlive},
		{Time: 1, Source: Source{ID: 9}, Type: TypeRequestAlive},
		{Time: 3, Source: Source{ID: 1}, Type: TypeRequestAlive},
	}}
	l.SortByTime()
	if l.Events[0].Time != 1 || l.Events[1].Source.ID != 1 || l.Events[2].Source.ID != 2 {
		t.Errorf("sort order wrong: %+v", l.Events)
	}
}

func TestParamAccessors(t *testing.T) {
	e := Event{Params: map[string]any{"s": "x", "i": 42, "f": 7.0, "i64": int64(5)}}
	if e.ParamString("s") != "x" || e.ParamString("missing") != "" || e.ParamString("i") != "" {
		t.Error("ParamString wrong")
	}
	for key, want := range map[string]int{"i": 42, "f": 7, "i64": 5} {
		if got, ok := e.ParamInt(key); !ok || got != want {
			t.Errorf("ParamInt(%q) = %d, %v; want %d, true", key, got, ok, want)
		}
	}
	if _, ok := e.ParamInt("s"); ok {
		t.Error("ParamInt accepted a string")
	}
	var empty Event
	if empty.ParamString("x") != "" {
		t.Error("nil params not handled")
	}
}

// Property: any log built from registered types survives a JSON round trip
// with times, sources, types, and phases intact.
func TestQuickJSONRoundTrip(t *testing.T) {
	types := RegisteredEventTypes()
	f := func(seed int64, n uint8) bool {
		r := NewRecorder()
		// Deterministic pseudo-events from the seed.
		s := seed
		next := func() int64 { s = s*6364136223846793005 + 1442695040888963407; return s }
		for i := 0; i < int(n%40)+1; i++ {
			src := r.NewSource(SourceType(int(uint64(next())%6) + 1))
			typ := types[int(uint64(next())%uint64(len(types)))]
			at := time.Duration(uint64(next())%20_000_000) * time.Microsecond
			r.Emit(at, typ, src, Phase(uint64(next())%3), map[string]any{"k": "v"})
		}
		log := r.Log()
		var buf bytes.Buffer
		if err := log.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ParseJSON(&buf)
		if err != nil || got.Len() != log.Len() {
			return false
		}
		for i := range log.Events {
			a, b := log.Events[i], got.Events[i]
			if a.Time != b.Time || a.Type != b.Type || a.Source != b.Source || a.Phase != b.Phase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoundedRecorder(t *testing.T) {
	r := NewBoundedRecorder(3)
	src := r.NewSource(SourceURLRequest)
	for i := 0; i < 10; i++ {
		r.Point(time.Duration(i), TypeRequestAlive, src, nil)
	}
	if r.Len() != 3 {
		t.Errorf("retained = %d, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", r.Dropped())
	}
	// Unbounded recorder never drops.
	u := NewRecorder()
	for i := 0; i < 10; i++ {
		u.Point(time.Duration(i), TypeRequestAlive, src, nil)
	}
	if u.Dropped() != 0 || u.Len() != 10 {
		t.Errorf("unbounded recorder dropped events: %d/%d", u.Dropped(), u.Len())
	}
}

func TestFlowStatsMatchesFlows(t *testing.T) {
	// FlowStats must produce exactly the flows of Flows, aggregate field
	// for aggregate field, with only Events left nil.
	r := NewRecorder()
	for i := 0; i < 40; i++ {
		src := r.NewSource(SourceURLRequest)
		url := "http://site" + string(rune('a'+i%7)) + ".example/"
		r.Begin(time.Duration(40-i)*time.Millisecond, TypeRequestAlive, src, map[string]any{"url": url, "initiator": "nav"})
		switch i % 4 {
		case 0:
			r.Point(time.Duration(41-i)*time.Millisecond, TypeURLRequestRedirect, src, map[string]any{"location": "http://127.0.0.1/"})
		case 1:
			r.Point(time.Duration(41-i)*time.Millisecond, TypeURLRequestError, src, map[string]any{"net_error": "ERR_CONNECTION_REFUSED"})
		case 2:
			r.Point(time.Duration(41-i)*time.Millisecond, TypeHTTPTransactionReadHeaders, src, map[string]any{"status_code": 200})
		}
		r.End(time.Duration(42-i)*time.Millisecond, TypeRequestAlive, src, nil)
	}
	bare := r.NewSource(SourceSocket)
	r.Begin(0, TypeTCPConnect, bare, nil)
	br := r.NewSource(SourceBrowser)
	r.Begin(time.Millisecond, TypeRequestAlive, br, nil)

	log := r.Log()
	full, lite := log.Flows(), log.FlowStats()
	if len(full) != len(lite) {
		t.Fatalf("flow counts differ: Flows %d, FlowStats %d", len(full), len(lite))
	}
	for i := range full {
		a, b := full[i], lite[i]
		if b.Events != nil {
			t.Fatalf("FlowStats[%d].Events not nil", i)
		}
		a.Events = nil
		if a.Source != b.Source || a.URL != b.URL || a.Start != b.Start || a.End != b.End ||
			a.NetError != b.NetError || a.StatusCode != b.StatusCode || a.Initiator != b.Initiator ||
			len(a.RedirectedTo) != len(b.RedirectedTo) {
			t.Errorf("flow %d differs:\nFlows:     %+v\nFlowStats: %+v", i, a, b)
		}
		for j := range a.RedirectedTo {
			if a.RedirectedTo[j] != b.RedirectedTo[j] {
				t.Errorf("flow %d redirect %d differs", i, j)
			}
		}
	}
}

func TestRecycleReturnsBufferWithoutCorruption(t *testing.T) {
	r := NewRecorder()
	src := r.NewSource(SourceURLRequest)
	r.Begin(0, TypeRequestAlive, src, map[string]any{"url": "http://a/"})
	log := r.TakeLog()
	if log.Len() != 1 {
		t.Fatalf("log has %d events", log.Len())
	}
	log.Recycle()
	if log.Events != nil {
		t.Error("Recycle must empty the log")
	}
	// A fresh recorder (possibly reusing the buffer) starts clean.
	r2 := NewRecorder()
	if r2.Len() != 0 {
		t.Errorf("recycled recorder starts with %d events", r2.Len())
	}
	r2.Begin(0, TypeRequestAlive, r2.NewSource(SourceURLRequest), map[string]any{"url": "http://b/"})
	if got := r2.Log().Events[0].ParamString("url"); got != "http://b/" {
		t.Errorf("event corrupted after recycle: %q", got)
	}
}
