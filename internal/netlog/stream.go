package netlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The JSONL encoding is the streaming sibling of the export format in
// json.go: one event per line, self-describing (type and source names
// instead of the export's constants-relative integer codes), so a
// consumer can parse a capture as it arrives over a socket without
// waiting for — or buffering — the whole document. Times stay
// microsecond strings as in the export.

// jsonlSource mirrors Source with the type spelled by name.
type jsonlSource struct {
	Type string `json:"type"`
	ID   uint32 `json:"id"`
}

// jsonlEvent is the one-line wire form of an Event.
type jsonlEvent struct {
	Time   string         `json:"time"`
	Type   string         `json:"type"`
	Source jsonlSource    `json:"source"`
	Phase  int            `json:"phase"`
	Params map[string]any `json:"params,omitempty"`
}

// WriteJSONL serializes the log as JSONL, one event per line in log
// order. The output round-trips through JSONLReader and ReadJSONL.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for i := range l.Events {
		e := &l.Events[i]
		if _, ok := eventTypeCodes[e.Type]; !ok {
			return fmt.Errorf("netlog: unregistered event type %q", e.Type)
		}
		je := jsonlEvent{
			Time:   strconv.FormatInt(e.Time.Microseconds(), 10),
			Type:   string(e.Type),
			Source: jsonlSource{Type: e.Source.Type.String(), ID: e.Source.ID},
			Phase:  int(e.Phase),
			Params: e.Params,
		}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxJSONLLine bounds a single event line. Params are request metadata
// (URLs, error strings), not payloads; a line beyond this is corrupt
// input, not telemetry.
const maxJSONLLine = 1 << 20

// JSONLReader parses a JSONL event stream incrementally: each Next call
// decodes exactly one line, so arbitrarily long captures are consumed
// in constant memory and a malformed line is reported with its line
// number without discarding the events before it.
type JSONLReader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewJSONLReader returns a reader over r.
func NewJSONLReader(r io.Reader) *JSONLReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxJSONLLine)
	return &JSONLReader{sc: sc}
}

// Line reports the line number of the most recently returned event or
// error (1-based; 0 before the first Next).
func (d *JSONLReader) Line() int { return d.line }

// Next returns the next event. It returns io.EOF once the stream is
// exhausted and a descriptive error (carrying the line number) for
// malformed, unregistered, or out-of-range lines; after any non-EOF
// error the reader is poisoned and keeps returning it.
func (d *JSONLReader) Next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	for {
		if !d.sc.Scan() {
			if err := d.sc.Err(); err != nil {
				d.err = fmt.Errorf("netlog: line %d: %w", d.line+1, err)
				return Event{}, d.err
			}
			d.err = io.EOF
			return Event{}, io.EOF
		}
		d.line++
		raw := d.sc.Bytes()
		if len(trimSpace(raw)) == 0 {
			continue // blank lines separate uploads harmlessly
		}
		ev, err := decodeJSONLEvent(raw)
		if err != nil {
			// A truncated stream (read error mid-line) surfaces as a
			// decode failure of the partial final token; report the
			// transport error, which is the actual cause.
			if rerr := d.sc.Err(); rerr != nil {
				err = rerr
			}
			d.err = fmt.Errorf("netlog: line %d: %w", d.line, err)
			return Event{}, d.err
		}
		return ev, nil
	}
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

func decodeJSONLEvent(raw []byte) (Event, error) {
	var je jsonlEvent
	if err := json.Unmarshal(raw, &je); err != nil {
		return Event{}, err
	}
	// Names are validated against the registries so corrupt captures
	// surface loudly rather than silently dropping telemetry, matching
	// ParseJSON's posture.
	t := EventType(je.Type)
	if _, ok := eventTypeCodes[t]; !ok {
		return Event{}, fmt.Errorf("unknown event type %q", je.Type)
	}
	st, ok := SourceTypeFromString(je.Source.Type)
	if !ok {
		return Event{}, fmt.Errorf("unknown source type %q", je.Source.Type)
	}
	if je.Phase < int(PhaseNone) || je.Phase > int(PhaseEnd) {
		return Event{}, fmt.Errorf("bad phase %d", je.Phase)
	}
	us, err := strconv.ParseInt(je.Time, 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad time %q: %w", je.Time, err)
	}
	return Event{
		Time:   microseconds(us),
		Type:   t,
		Source: Source{Type: st, ID: je.Source.ID},
		Phase:  Phase(je.Phase),
		Params: je.Params,
	}, nil
}

// ReadJSONL consumes an entire JSONL stream into a Log. The serving
// ingest path uses JSONLReader directly; this convenience is for tests
// and tools that want the whole capture.
func ReadJSONL(r io.Reader) (*Log, error) {
	d := NewJSONLReader(r)
	log := &Log{}
	for {
		ev, err := d.Next()
		if err == io.EOF {
			return log, nil
		}
		if err != nil {
			return nil, err
		}
		log.Events = append(log.Events, ev)
	}
}
