// Package netlog implements a model of Chrome's network logging system
// (NetLog), the telemetry source used by the Knock and Talk measurement
// pipeline. The paper records "all network events (i.e., any network
// requests sent and responses received) on Chrome's network stack" and
// later parses those logs; this package provides the event model, a
// recorder for producing event streams, a JSON encoding compatible in
// shape with Chrome's NetLog export format, and utilities for grouping
// events into logical network flows by source ID.
//
// Each event carries four fields mirroring Chrome's design document:
//
//   - time:   a timestamp on the crawl's virtual clock
//   - type:   the kind of network event (e.g. URL_REQUEST_START_JOB)
//   - source: the entity that generated the event; a new network request
//     is assigned a fresh serial source ID and dependent events share it
//   - phase:  BEGIN, END, or NONE
//
// Events additionally carry a parameter map with event-specific details
// (URLs, error codes, byte counts, and so on).
package netlog

import (
	"fmt"
	"time"
)

// Phase indicates whether an event marks the start or end of an activity,
// or is instantaneous. The integer values match Chrome's NetLog export.
type Phase int

// Phases, numbered as in Chrome's logging constants.
const (
	PhaseNone  Phase = 0
	PhaseBegin Phase = 1
	PhaseEnd   Phase = 2
)

// String returns the Chrome constant name for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "PHASE_NONE"
	case PhaseBegin:
		return "PHASE_BEGIN"
	case PhaseEnd:
		return "PHASE_END"
	default:
		return fmt.Sprintf("PHASE_UNKNOWN(%d)", int(p))
	}
}

// SourceType identifies the class of entity that generated an event.
type SourceType int

// Source types mirroring the subset of Chrome's NetLog source types that
// the measurement pipeline observes.
const (
	SourceNone SourceType = iota
	SourceURLRequest
	SourceSocket
	SourceHostResolver
	SourceWebSocket
	SourceHTTPStreamJob
	SourceBrowser // browser-internal traffic (filtered out by analysis)
)

var sourceTypeNames = map[SourceType]string{
	SourceNone:          "NONE",
	SourceURLRequest:    "URL_REQUEST",
	SourceSocket:        "SOCKET",
	SourceHostResolver:  "HOST_RESOLVER_IMPL_JOB",
	SourceWebSocket:     "WEB_SOCKET",
	SourceHTTPStreamJob: "HTTP_STREAM_JOB",
	SourceBrowser:       "BROWSER",
}

// String returns the Chrome constant name for the source type.
func (t SourceType) String() string {
	if s, ok := sourceTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("SOURCE_TYPE_UNKNOWN(%d)", int(t))
}

// SourceTypeFromString reverses String; it reports false for unknown names.
func SourceTypeFromString(s string) (SourceType, bool) {
	for t, name := range sourceTypeNames {
		if name == s {
			return t, true
		}
	}
	return SourceNone, false
}

// Source identifies the entity that generated an event. When a new network
// request is initiated it is assigned a new serial ID; subsequent dependent
// events (responses, reads) carry the same ID, allowing the events within a
// network flow to be logically grouped together.
type Source struct {
	Type SourceType `json:"type"`
	ID   uint32     `json:"id"`
}

// EventType is the kind of network event, e.g. URL_REQUEST_START_JOB.
// Types are interned strings; see constants.go for the registry.
type EventType string

// Event is a single NetLog entry.
type Event struct {
	// Time is the event timestamp relative to the start of the page
	// visit, measured on the crawl's virtual clock.
	Time time.Duration
	// Type is the event type.
	Type EventType
	// Source identifies the generating entity.
	Source Source
	// Phase is BEGIN, END, or NONE.
	Phase Phase
	// Params holds event-specific parameters (e.g. "url", "net_error").
	// It may be nil. Values must be JSON-encodable.
	Params map[string]any
}

// ParamString returns the string value of the named parameter, or "" if it
// is absent or not a string.
func (e *Event) ParamString(key string) string {
	if e.Params == nil {
		return ""
	}
	s, _ := e.Params[key].(string)
	return s
}

// ParamInt returns the integer value of the named parameter. JSON decoding
// produces float64 values, so both int and float64 are accepted.
func (e *Event) ParamInt(key string) (int, bool) {
	if e.Params == nil {
		return 0, false
	}
	switch v := e.Params[key].(type) {
	case int:
		return v, true
	case int64:
		return int(v), true
	case float64:
		return int(v), true
	default:
		return 0, false
	}
}

// Log is a complete NetLog capture: a flat, time-ordered event stream.
type Log struct {
	Events []Event
}

// Len returns the number of events in the log.
func (l *Log) Len() int { return len(l.Events) }

// Sources returns the distinct sources appearing in the log, in order of
// first appearance.
func (l *Log) Sources() []Source {
	seen := make(map[Source]bool, len(l.Events)/4+1)
	var out []Source
	for i := range l.Events {
		s := l.Events[i].Source
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// BySource groups events by their source, preserving event order within
// each group.
func (l *Log) BySource() map[Source][]Event {
	out := make(map[Source][]Event)
	for _, e := range l.Events {
		out[e.Source] = append(out[e.Source], e)
	}
	return out
}
