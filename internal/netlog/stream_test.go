package netlog

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

func jsonlSampleLog(t testing.TB) *Log {
	t.Helper()
	r := NewRecorder()
	ws := r.NewSource(SourceWebSocket)
	r.Begin(5*time.Second, TypeWebSocketSendHandshakeRequest, ws, map[string]any{
		"url": "wss://localhost:5900/", "initiator": "blob:threatmetrix:regstat.example.com",
	})
	r.Point(5*time.Second+40*time.Millisecond, TypeSocketError, ws, map[string]any{"net_error": "ERR_CONNECTION_REFUSED"})
	req := r.NewSource(SourceURLRequest)
	r.Begin(6*time.Second, TypeURLRequestStartJob, req, map[string]any{"url": "http://127.0.0.1:8080/status"})
	r.Point(6*time.Second+10*time.Millisecond, TypeHTTPTransactionReadHeaders, req, map[string]any{"status_code": 200})
	return r.Log()
}

func TestJSONLRoundTrip(t *testing.T) {
	log := jsonlSampleLog(t)
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != log.Len() {
		t.Fatalf("JSONL has %d lines, want one per event (%d)", n, log.Len())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != log.Len() {
		t.Fatalf("round trip changed event count: %d != %d", back.Len(), log.Len())
	}
	for i := range log.Events {
		a, b := log.Events[i], back.Events[i]
		// Params survive as generic JSON values (ints come back float64),
		// so compare them through a JSON-normalizing detour.
		if a.Time != b.Time || a.Type != b.Type || a.Source != b.Source || a.Phase != b.Phase {
			t.Fatalf("event %d changed: %+v != %+v", i, a, b)
		}
		if fmt.Sprint(normalizeParams(a.Params)) != fmt.Sprint(normalizeParams(b.Params)) {
			t.Fatalf("event %d params changed: %v != %v", i, a.Params, b.Params)
		}
	}
}

func normalizeParams(p map[string]any) map[string]any {
	out := make(map[string]any, len(p))
	for k, v := range p {
		switch n := v.(type) {
		case int:
			out[k] = float64(n)
		default:
			out[k] = v
		}
	}
	return out
}

// TestJSONLReaderStreams verifies the reader yields events one at a time
// from a partially consumed stream (the ingest plane's contract) and
// tolerates blank separator lines.
func TestJSONLReaderStreams(t *testing.T) {
	log := jsonlSampleLog(t)
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	text := strings.Replace(buf.String(), "\n", "\n\n", 1) // inject a blank line
	d := NewJSONLReader(strings.NewReader(text))
	var got []Event
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after %d events: %v", len(got), err)
		}
		got = append(got, ev)
	}
	if len(got) != log.Len() {
		t.Fatalf("streamed %d events, want %d", len(got), log.Len())
	}
	if !reflect.DeepEqual(got[0].Source, log.Events[0].Source) {
		t.Fatalf("first event source changed: %+v != %+v", got[0].Source, log.Events[0].Source)
	}
}

func TestJSONLReaderMalformedLine(t *testing.T) {
	good := `{"time":"1000","type":"REQUEST_ALIVE","source":{"type":"URL_REQUEST","id":1},"phase":1}`
	cases := []struct {
		name string
		bad  string
		want string
	}{
		{"broken json", `{"time":`, "line 2"},
		{"unknown type", `{"time":"1","type":"NOPE","source":{"type":"URL_REQUEST","id":1},"phase":0}`, `unknown event type "NOPE"`},
		{"unknown source", `{"time":"1","type":"REQUEST_ALIVE","source":{"type":"NOPE","id":1},"phase":0}`, `unknown source type "NOPE"`},
		{"bad phase", `{"time":"1","type":"REQUEST_ALIVE","source":{"type":"URL_REQUEST","id":1},"phase":7}`, "bad phase 7"},
		{"bad time", `{"time":"soon","type":"REQUEST_ALIVE","source":{"type":"URL_REQUEST","id":1},"phase":0}`, `bad time "soon"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewJSONLReader(strings.NewReader(good + "\n" + tc.bad + "\n" + good + "\n"))
			if _, err := d.Next(); err != nil {
				t.Fatalf("first good line rejected: %v", err)
			}
			_, err := d.Next()
			if err == nil {
				t.Fatal("malformed line accepted")
			}
			if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not carry line number and cause %q", err, tc.want)
			}
			// The reader stays poisoned: corrupt captures must not be
			// partially ingested past the first bad line.
			if _, err2 := d.Next(); err2 == nil || err2 == io.EOF {
				t.Fatalf("reader resumed after malformed line: %v", err2)
			}
		})
	}
}

func TestJSONLLineTooLong(t *testing.T) {
	huge := `{"time":"1","type":"REQUEST_ALIVE","source":{"type":"URL_REQUEST","id":1},"phase":0,"params":{"url":"` +
		strings.Repeat("a", maxJSONLLine) + `"}}`
	d := NewJSONLReader(strings.NewReader(huge))
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Fatalf("oversized line accepted: %v", err)
	}
}

// FuzzReadJSONL hardens the streaming reader: arbitrary input must never
// panic, and anything accepted must round-trip through WriteJSONL.
func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	log := jsonlSampleLog(f)
	if err := log.WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"time":"1000","type":"REQUEST_ALIVE","source":{"type":"URL_REQUEST","id":1},"phase":1}`)
	f.Add("\n\n")
	f.Add(`{"time":`)
	f.Add(`{"time":"99999999999999999999","type":"REQUEST_ALIVE","source":{"type":"URL_REQUEST","id":0},"phase":0}`)
	f.Add(`not json at all`)

	f.Fuzz(func(t *testing.T, input string) {
		log, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := log.WriteJSONL(&out); err != nil {
			t.Fatalf("re-serialize of accepted input failed: %v", err)
		}
		back, err := ReadJSONL(&out)
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v", err)
		}
		if back.Len() != log.Len() {
			t.Fatalf("round trip changed event count: %d != %d", back.Len(), log.Len())
		}
	})
}
