package netlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// The JSON encoding follows the shape of Chrome's NetLog export: a
// top-level object with a "constants" dictionary (mapping event type,
// source type, and phase names to the integer codes used in the event
// records) followed by an "events" array. One divergence is documented:
// Chrome's time ticks are milliseconds; ours are microseconds (declared
// in constants as tickUnit) so that sub-millisecond localhost timings
// survive a round trip.

type jsonConstants struct {
	LogEventTypes  map[string]int `json:"logEventTypes"`
	LogSourceType  map[string]int `json:"logSourceType"`
	LogEventPhase  map[string]int `json:"logEventPhase"`
	TimeTickOffset string         `json:"timeTickOffset"`
	TickUnit       string         `json:"tickUnit"`
}

type jsonSource struct {
	ID   uint32 `json:"id"`
	Type int    `json:"type"`
}

type jsonEvent struct {
	Phase  int            `json:"phase"`
	Source jsonSource     `json:"source"`
	Time   string         `json:"time"`
	Type   int            `json:"type"`
	Params map[string]any `json:"params,omitempty"`
}

type jsonLog struct {
	Constants jsonConstants `json:"constants"`
	Events    []jsonEvent   `json:"events"`
}

func buildConstants() jsonConstants {
	c := jsonConstants{
		LogEventTypes:  make(map[string]int, len(eventTypeCodes)),
		LogSourceType:  make(map[string]int, len(sourceTypeCodes)),
		LogEventPhase:  map[string]int{"PHASE_NONE": 0, "PHASE_BEGIN": 1, "PHASE_END": 2},
		TimeTickOffset: "0",
		TickUnit:       "us",
	}
	for t, code := range eventTypeCodes {
		c.LogEventTypes[string(t)] = code
	}
	for t, code := range sourceTypeCodes {
		c.LogSourceType[t.String()] = code
	}
	return c
}

// WriteJSON serializes the log to w in NetLog export shape.
func (l *Log) WriteJSON(w io.Writer) error {
	out := jsonLog{Constants: buildConstants(), Events: make([]jsonEvent, 0, len(l.Events))}
	for i := range l.Events {
		e := &l.Events[i]
		code, ok := eventTypeCodes[e.Type]
		if !ok {
			return fmt.Errorf("netlog: unregistered event type %q", e.Type)
		}
		out.Events = append(out.Events, jsonEvent{
			Phase:  int(e.Phase),
			Source: jsonSource{ID: e.Source.ID, Type: sourceTypeCodes[e.Source.Type]},
			Time:   strconv.FormatInt(e.Time.Microseconds(), 10),
			Type:   code,
			Params: e.Params,
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&out); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseJSON reads a log previously written by WriteJSON (or any NetLog
// export following the same shape and constants). Unknown event or source
// codes are rejected so that corrupt captures surface loudly rather than
// silently dropping telemetry.
func ParseJSON(r io.Reader) (*Log, error) {
	var in jsonLog
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("netlog: decoding export: %w", err)
	}
	// Build code→name maps from the file's own constants section, as a
	// real NetLog parser must: codes are only meaningful relative to the
	// constants the writer declared.
	typeByCode := make(map[int]EventType, len(in.Constants.LogEventTypes))
	for name, code := range in.Constants.LogEventTypes {
		typeByCode[code] = EventType(name)
	}
	srcByCode := make(map[int]SourceType, len(in.Constants.LogSourceType))
	for name, code := range in.Constants.LogSourceType {
		t, ok := SourceTypeFromString(name)
		if !ok {
			return nil, fmt.Errorf("netlog: unknown source type %q in constants", name)
		}
		srcByCode[code] = t
	}
	log := &Log{Events: make([]Event, 0, len(in.Events))}
	for i, je := range in.Events {
		t, ok := typeByCode[je.Type]
		if !ok {
			return nil, fmt.Errorf("netlog: event %d has unknown type code %d", i, je.Type)
		}
		st, ok := srcByCode[je.Source.Type]
		if !ok {
			return nil, fmt.Errorf("netlog: event %d has unknown source type code %d", i, je.Source.Type)
		}
		us, err := strconv.ParseInt(je.Time, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netlog: event %d has bad time %q: %w", i, je.Time, err)
		}
		if je.Phase < int(PhaseNone) || je.Phase > int(PhaseEnd) {
			return nil, fmt.Errorf("netlog: event %d has bad phase %d", i, je.Phase)
		}
		log.Events = append(log.Events, Event{
			Time:   microseconds(us),
			Type:   t,
			Source: Source{Type: st, ID: je.Source.ID},
			Phase:  Phase(je.Phase),
			Params: je.Params,
		})
	}
	return log, nil
}

func microseconds(us int64) time.Duration { return time.Duration(us) * time.Microsecond }

// SortByTime sorts events by timestamp, then by source ID, stably. Useful
// after merging logs from concurrent fetch workers.
func (l *Log) SortByTime() {
	sort.SliceStable(l.Events, func(i, j int) bool {
		if l.Events[i].Time != l.Events[j].Time {
			return l.Events[i].Time < l.Events[j].Time
		}
		return l.Events[i].Source.ID < l.Events[j].Source.ID
	})
}
