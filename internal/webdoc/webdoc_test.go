package webdoc

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSortedStepsStableAndNonMutating(t *testing.T) {
	p := &Page{Steps: []Step{
		{At: 3 * time.Second, URL: "c"},
		{At: 1 * time.Second, URL: "a1"},
		{At: 1 * time.Second, URL: "a2"},
		{At: 2 * time.Second, URL: "b"},
	}}
	got := p.SortedSteps()
	wantOrder := []string{"a1", "a2", "b", "c"}
	for i, w := range wantOrder {
		if got[i].URL != w {
			t.Fatalf("order[%d] = %q, want %q (ties must be stable)", i, got[i].URL, w)
		}
	}
	if p.Steps[0].URL != "c" {
		t.Error("SortedSteps mutated the page")
	}
}

func TestMaxStepAt(t *testing.T) {
	if (&Page{}).MaxStepAt() != 0 {
		t.Error("empty page MaxStepAt != 0")
	}
	p := &Page{Steps: []Step{{At: 5 * time.Second}, {At: 15 * time.Second}, {At: time.Second}}}
	if p.MaxStepAt() != 15*time.Second {
		t.Errorf("MaxStepAt = %v", p.MaxStepAt())
	}
}

// Property: SortedSteps returns a permutation of Steps in ascending At.
func TestQuickSortedSteps(t *testing.T) {
	f := func(ats []uint16) bool {
		p := &Page{}
		for _, a := range ats {
			p.Steps = append(p.Steps, Step{At: time.Duration(a) * time.Millisecond})
		}
		got := p.SortedSteps()
		if len(got) != len(p.Steps) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].At < got[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
