// Package webdoc is the document model exchanged between the synthetic
// web (websim) and the browser: a loaded page is a set of scheduled
// requests — static sub-resources fetched while rendering, plus the
// requests issued later by the page's scripts (the JS-analogue of
// dynamically generated fetch/WebSocket/XHR calls).
//
// The model is deliberately request-centric: the Knock and Talk pipeline
// observes pages through Chrome's network log, so the document's only
// observable behavior is the requests it generates and when.
package webdoc

import (
	"sort"
	"time"
)

// Step is one request a page will issue after it commits.
type Step struct {
	// At is the offset from page commit at which the request starts.
	At time.Duration
	// URL is the absolute request URL. WebSocket requests use ws/wss
	// schemes.
	URL string
	// Initiator names the element or script issuing the request, as a
	// NetLog-visible provenance hint (e.g. "blob:threatmetrix",
	// "script:/TSPD", "img").
	Initiator string
}

// Page is a loaded document.
type Page struct {
	// URL is the page's final URL.
	URL string
	// BodySize is the approximate HTML size in bytes.
	BodySize int
	// Steps are the requests the page will issue, in any order; the
	// browser executes them by ascending At.
	Steps []Step
}

// SortedSteps returns the steps ordered by At (stable). The page itself
// is not modified.
func (p *Page) SortedSteps() []Step {
	out := make([]Step, len(p.Steps))
	copy(out, p.Steps)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MaxStepAt returns the latest step offset, or zero for a page with no
// steps.
func (p *Page) MaxStepAt() time.Duration {
	var max time.Duration
	for _, s := range p.Steps {
		if s.At > max {
			max = s.At
		}
	}
	return max
}
