// Package hostenv models the crawling machines: the three desktop
// operating systems the paper measured on (Windows 10, Ubuntu 20.04,
// Mac OS X 10.15.6), each with its own user agent, localhost service
// table, and LAN device inventory.
//
// OS differences are the mechanism behind the paper's central OS-skew
// finding: websites branch on the user agent (serving Windows-only
// scanning scripts), and connection attempts to local ports succeed or
// fail depending on what the host is actually running.
package hostenv

import (
	"fmt"
	"net/netip"

	"github.com/knockandtalk/knockandtalk/internal/simnet"
)

// OS identifies a desktop operating system.
type OS int

// The three measured OSes.
const (
	Windows OS = iota
	Linux
	MacOSX
)

// AllOS lists the OSes in the paper's table order (W, L, M).
var AllOS = []OS{Windows, Linux, MacOSX}

// String returns the short label used in the paper's tables.
func (o OS) String() string {
	switch o {
	case Windows:
		return "Windows"
	case Linux:
		return "Linux"
	case MacOSX:
		return "Mac"
	default:
		return fmt.Sprintf("OS(%d)", int(o))
	}
}

// Letter returns the single-letter column label (W/L/M).
func (o OS) Letter() string {
	switch o {
	case Windows:
		return "W"
	case Linux:
		return "L"
	case MacOSX:
		return "M"
	default:
		return "?"
	}
}

// ParseOS reverses String and Letter.
func ParseOS(s string) (OS, error) {
	switch s {
	case "Windows", "W", "windows":
		return Windows, nil
	case "Linux", "L", "linux":
		return Linux, nil
	case "Mac", "M", "mac", "MacOSX", "macos":
		return MacOSX, nil
	default:
		return 0, fmt.Errorf("hostenv: unknown OS %q", s)
	}
}

// User agents for Chrome v84 (the crawler's browser) on each OS.
var userAgents = map[OS]string{
	Windows: "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/84.0.4147.89 Safari/537.36",
	Linux:   "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/84.0.4147.89 Safari/537.36",
	MacOSX:  "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_6) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/84.0.4147.89 Safari/537.36",
}

// UserAgent returns the Chrome v84 user agent string for the OS.
func (o OS) UserAgent() string { return userAgents[o] }

// Profile is one crawling machine: an OS plus its local network view.
// It implements simnet.Locator for loopback and RFC1918 destinations.
type Profile struct {
	OS      OS
	Version string
	Vantage simnet.Vantage

	localhost map[uint16]simnet.Endpoint
	lanHosts  map[netip.Addr]bool
	lan       map[lanKey]simnet.Endpoint
}

type lanKey struct {
	addr netip.Addr
	port uint16
}

// NewProfile returns a machine with empty local tables: every localhost
// port refuses (clean VM) and every LAN address is unreachable.
func NewProfile(os OS, version string, vantage simnet.Vantage) *Profile {
	return &Profile{
		OS:        os,
		Version:   version,
		Vantage:   vantage,
		localhost: make(map[uint16]simnet.Endpoint),
		lanHosts:  make(map[netip.Addr]bool),
		lan:       make(map[lanKey]simnet.Endpoint),
	}
}

// ListenLocal binds an endpoint on a localhost port.
func (p *Profile) ListenLocal(port uint16, ep simnet.Endpoint) {
	p.localhost[port] = ep
}

// ListenLocalService binds an accepting service on a localhost port.
func (p *Profile) ListenLocalService(port uint16, svc simnet.Service) {
	p.ListenLocal(port, simnet.Endpoint{Outcome: simnet.DialAccepted, Service: svc})
}

// LocalPorts returns the number of bound localhost ports.
func (p *Profile) LocalPorts() int { return len(p.localhost) }

// AddLANDevice registers a live LAN host; ports without bindings refuse.
func (p *Profile) AddLANDevice(addr netip.Addr) { p.lanHosts[addr] = true }

// BindLAN attaches an endpoint on a LAN device's port, registering the
// device if needed.
func (p *Profile) BindLAN(addr netip.Addr, port uint16, ep simnet.Endpoint) {
	p.lanHosts[addr] = true
	p.lan[lanKey{addr, port}] = ep
}

// Locate implements simnet.Locator for destinations local to this
// machine. Loopback ports with no listener are actively refused (the OS
// answers with RST immediately); LAN addresses with no device silently
// time out (nothing answers ARP); live LAN devices refuse unbound ports.
func (p *Profile) Locate(addr netip.Addr, port uint16) simnet.Endpoint {
	if addr.IsLoopback() {
		if ep, ok := p.localhost[port]; ok {
			return ep
		}
		return simnet.Endpoint{Outcome: simnet.DialRefused}
	}
	if ep, ok := p.lan[lanKey{addr, port}]; ok {
		return ep
	}
	if p.lanHosts[addr] {
		return simnet.Endpoint{Outcome: simnet.DialRefused}
	}
	return simnet.Endpoint{Outcome: simnet.DialTimeout}
}

// IsLocalDestination reports whether this machine considers the address
// local (loopback or private); such dials route to the profile rather
// than the public network.
func IsLocalDestination(addr netip.Addr) bool {
	return addr.IsLoopback() || addr.IsPrivate() || addr.IsLinkLocalUnicast()
}

// DefaultProfile builds the measurement-VM profile the paper used for
// each OS: clean incognito machines with only stock OS services
// listening, on the vantage that OS was crawled from (Windows and Linux
// VMs on Georgia Tech's network, the Mac laptop on residential Comcast).
func DefaultProfile(os OS) *Profile {
	var p *Profile
	switch os {
	case Windows:
		p = NewProfile(os, "10", simnet.VantageCampus)
		// Remote Desktop is enabled on the Windows VMs (VM management);
		// it accepts TCP but speaks RDP, so WebSocket handshakes fail.
		p.ListenLocal(3389, simnet.Endpoint{Outcome: simnet.DialAccepted, Service: rawTCPService("ms-wbt-server")})
	case Linux:
		p = NewProfile(os, "Ubuntu 20.04", simnet.VantageCampus)
		// CUPS listens on 631 by default on desktop Ubuntu.
		p.ListenLocalService(631, httpStub("CUPS/2.3", 200))
	case MacOSX:
		p = NewProfile(os, "10.15.6", simnet.VantageResidential)
		p.ListenLocalService(631, httpStub("CUPS/2.3", 200))
	default:
		panic(fmt.Sprintf("hostenv: unknown OS %d", int(os)))
	}
	// Every vantage has a gateway answering HTTP on the LAN.
	gw := netip.MustParseAddr("192.168.1.1")
	p.BindLAN(gw, 80, simnet.Endpoint{Outcome: simnet.DialAccepted, Service: httpStub("router-admin", 401)})
	return p
}

// rawTCPService accepts connections but is not an HTTP or WebSocket
// server: any HTTP-level exchange yields an empty-response error, which
// is what Chrome reports when a non-HTTP listener answers.
func rawTCPService(name string) simnet.Service {
	return simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 0, ContentType: "raw/" + name}
	})
}

// httpStub is a minimal HTTP responder with a fixed status.
func httpStub(server string, status int) simnet.Service {
	return simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: status, ContentType: "text/html", BodySize: 512, Header: map[string]string{"Server": server}}
	})
}
