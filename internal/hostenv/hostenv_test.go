package hostenv

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"github.com/knockandtalk/knockandtalk/internal/simnet"
)

func TestOSLabels(t *testing.T) {
	cases := []struct {
		os     OS
		str    string
		letter string
	}{
		{Windows, "Windows", "W"},
		{Linux, "Linux", "L"},
		{MacOSX, "Mac", "M"},
	}
	for _, c := range cases {
		if c.os.String() != c.str || c.os.Letter() != c.letter {
			t.Errorf("%v labels wrong: %q %q", c.os, c.os.String(), c.os.Letter())
		}
		back, err := ParseOS(c.str)
		if err != nil || back != c.os {
			t.Errorf("ParseOS(%q) = %v, %v", c.str, back, err)
		}
		back, err = ParseOS(c.letter)
		if err != nil || back != c.os {
			t.Errorf("ParseOS(%q) = %v, %v", c.letter, back, err)
		}
	}
	if _, err := ParseOS("BeOS"); err == nil {
		t.Error("ParseOS accepted unknown OS")
	}
}

func TestUserAgentsDistinguishOSes(t *testing.T) {
	for _, os := range AllOS {
		ua := os.UserAgent()
		if !strings.Contains(ua, "Chrome/84") {
			t.Errorf("%v UA missing Chrome/84: %q", os, ua)
		}
	}
	if !strings.Contains(Windows.UserAgent(), "Windows NT 10.0") {
		t.Error("Windows UA missing platform token")
	}
	if !strings.Contains(Linux.UserAgent(), "Linux x86_64") {
		t.Error("Linux UA missing platform token")
	}
	if !strings.Contains(MacOSX.UserAgent(), "Mac OS X 10_15_6") {
		t.Error("Mac UA missing platform token")
	}
}

func TestProfileLocalhostLocate(t *testing.T) {
	p := NewProfile(Windows, "10", simnet.VantageCampus)
	p.ListenLocalService(6463, simnet.ServiceFunc(func(*simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 200}
	}))
	lo := netip.MustParseAddr("127.0.0.1")

	if ep := p.Locate(lo, 6463); ep.Outcome != simnet.DialAccepted {
		t.Errorf("bound local port: %v", ep.Outcome)
	}
	// Closed localhost ports refuse immediately — the timing side channel
	// BIG-IP's bot defense relies on.
	if ep := p.Locate(lo, 4444); ep.Outcome != simnet.DialRefused {
		t.Errorf("closed local port: %v, want refused", ep.Outcome)
	}
}

func TestProfileLANLocate(t *testing.T) {
	p := DefaultProfile(Linux)
	gw := netip.MustParseAddr("192.168.1.1")
	if ep := p.Locate(gw, 80); ep.Outcome != simnet.DialAccepted {
		t.Errorf("gateway HTTP: %v", ep.Outcome)
	}
	if ep := p.Locate(gw, 8080); ep.Outcome != simnet.DialRefused {
		t.Errorf("gateway closed port: %v, want refused", ep.Outcome)
	}
	// Absent devices time out — nothing answers ARP.
	if ep := p.Locate(netip.MustParseAddr("10.193.31.212"), 80); ep.Outcome != simnet.DialTimeout {
		t.Errorf("absent LAN device: %v, want timeout", ep.Outcome)
	}
}

func TestDefaultProfiles(t *testing.T) {
	w := DefaultProfile(Windows)
	if w.Vantage != simnet.VantageCampus {
		t.Error("Windows VMs crawl from the campus vantage")
	}
	if ep := w.Locate(netip.MustParseAddr("127.0.0.1"), 3389); ep.Outcome != simnet.DialAccepted {
		t.Error("Windows profile should accept on 3389 (RDP)")
	}
	m := DefaultProfile(MacOSX)
	if m.Vantage != simnet.VantageResidential {
		t.Error("Mac crawls from the residential vantage")
	}
	l := DefaultProfile(Linux)
	if ep := l.Locate(netip.MustParseAddr("127.0.0.1"), 3389); ep.Outcome != simnet.DialRefused {
		t.Error("Linux profile must not expose RDP")
	}
}

func TestIsLocalDestination(t *testing.T) {
	cases := map[string]bool{
		"127.0.0.1":      true,
		"127.8.8.8":      true,
		"::1":            true,
		"10.0.0.200":     true,
		"172.16.205.110": true,
		"192.168.64.160": true,
		"169.254.4.4":    true,
		"8.8.8.8":        false,
		"203.0.113.1":    false,
		"172.32.0.1":     false, // just past 172.16/12
	}
	for s, want := range cases {
		if got := IsLocalDestination(netip.MustParseAddr(s)); got != want {
			t.Errorf("IsLocalDestination(%s) = %v, want %v", s, got, want)
		}
	}
}

// Property: Locate never returns an accepting endpoint without a service
// for loopback, and absent LAN hosts always time out.
func TestQuickLocateConsistency(t *testing.T) {
	p := DefaultProfile(Windows)
	f := func(port uint16, b byte) bool {
		lo := netip.MustParseAddr("127.0.0.1")
		ep := p.Locate(lo, port)
		if ep.Outcome == simnet.DialAccepted && ep.Service == nil {
			return false
		}
		absent := netip.AddrFrom4([4]byte{10, 99, b, 7})
		return p.Locate(absent, port).Outcome == simnet.DialTimeout
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
