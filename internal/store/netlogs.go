package store

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/knockandtalk/knockandtalk/internal/netlog"
)

// NetLogRecord retains a visit's raw NetLog capture. The paper kept 11
// TB of raw telemetry; this store keeps captures only where the crawler
// chose to retain them (visits with local-network activity), in the
// NetLog JSON export form.
type NetLogRecord struct {
	Crawl  string          `json:"crawl"`
	OS     string          `json:"os"`
	Domain string          `json:"domain"`
	Log    json.RawMessage `json:"log"`
}

// AddNetLog retains a raw capture for one visit.
func (s *Store) AddNetLog(crawl, os, domain string, log *netlog.Log) error {
	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		return fmt.Errorf("store: serializing netlog for %s: %w", domain, err)
	}
	s.commit(nil, nil, []NetLogRecord{{
		Crawl: crawl, OS: os, Domain: domain, Log: json.RawMessage(buf.Bytes()),
	}})
	return nil
}

// NumNetLogs reports the number of retained captures.
func (s *Store) NumNetLogs() int {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	return len(s.netlogs)
}

// NetLog retrieves and parses a retained capture.
func (s *Store) NetLog(crawl, os, domain string) (*netlog.Log, bool, error) {
	s.nmu.Lock()
	var raw json.RawMessage
	for i := range s.netlogs {
		r := &s.netlogs[i]
		if r.Crawl == crawl && r.OS == os && r.Domain == domain {
			raw = r.Log
			break
		}
	}
	s.nmu.Unlock()
	if raw == nil {
		return nil, false, nil
	}
	log, err := netlog.ParseJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, true, fmt.Errorf("store: parsing retained netlog for %s: %w", domain, err)
	}
	return log, true, nil
}

// NetLogDomains lists (os, domain) pairs with retained captures for a
// crawl.
func (s *Store) NetLogDomains(crawl string) [][2]string {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	var out [][2]string
	for i := range s.netlogs {
		if s.netlogs[i].Crawl == crawl {
			out = append(out, [2]string{s.netlogs[i].OS, s.netlogs[i].Domain})
		}
	}
	return out
}
