// Package store is the telemetry database of the pipeline's step 4
// ("parsing the logs and storing the network events"). It holds one
// PageRecord per page visit and one LocalRequest per extracted local
// finding, offers the query surface the analysis layer needs, and
// persists to a line-delimited JSON format.
//
// The paper retained 11 TB of raw NetLogs; this store keeps the full
// event stream only where it matters (visits with local activity can be
// retained verbatim) and compact summaries everywhere else.
//
// Writes are sharded: records land in one of several append buffers
// selected by a hash of the record's domain, each behind its own mutex,
// so concurrent crawl workers do not serialize on a single lock. Shard
// assignment is an internal detail — queries see every record, and Save
// merges the shards into a canonical order (by crawl, OS, rank, domain,
// then record-specific tie-breaks) that is byte-for-byte independent of
// worker interleaving and shard count.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/maphash"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// PageRecord summarizes one page visit.
type PageRecord struct {
	Crawl    string `json:"crawl"`
	OS       string `json:"os"`
	Domain   string `json:"domain"`
	Rank     int    `json:"rank,omitempty"`
	Category string `json:"category,omitempty"`
	URL      string `json:"url"`
	FinalURL string `json:"final_url,omitempty"`
	// Err is the Chrome net error for failed loads, "" for successes.
	Err string `json:"err,omitempty"`
	// CommittedAt is when the landing document finished loading.
	CommittedAt time.Duration `json:"committed_at,omitempty"`
	// Events is the telemetry volume of the visit.
	Events int `json:"events,omitempty"`
}

// OK reports whether the page loaded.
func (p *PageRecord) OK() bool { return p.Err == "" }

// LocalRequest is one local-network request observed during a visit.
type LocalRequest struct {
	Crawl    string `json:"crawl"`
	OS       string `json:"os"`
	Domain   string `json:"domain"`
	Rank     int    `json:"rank,omitempty"`
	Category string `json:"category,omitempty"`

	URL    string `json:"url"`
	Scheme string `json:"scheme"`
	Host   string `json:"host"`
	Port   uint16 `json:"port"`
	Path   string `json:"path"`
	// Dest is "localhost" or "lan".
	Dest string `json:"dest"`
	// Delay is the time from page commit to the request (the Figure 5
	// observable). Negative values are clamped to zero.
	Delay       time.Duration `json:"delay"`
	Initiator   string        `json:"initiator,omitempty"`
	NetError    string        `json:"net_error,omitempty"`
	StatusCode  int           `json:"status_code,omitempty"`
	ViaRedirect bool          `json:"via_redirect,omitempty"`
	SOPExempt   bool          `json:"sop_exempt,omitempty"`
}

// numShards is the write-side fan-out. Sharding is by domain hash, so
// one visit's records (always a single domain) land in one shard and a
// batch commit takes exactly one lock.
const numShards = 64

// shardSeed makes the domain→shard assignment stable for the lifetime
// of the process (it does not need to be stable across processes:
// shard layout is never serialized).
var shardSeed = maphash.MakeSeed()

func shardIndex(domain string) int {
	return int(maphash.String(shardSeed, domain) % numShards)
}

// shard is one append buffer with its own lock.
type shard struct {
	mu     sync.Mutex
	pages  []PageRecord
	locals []LocalRequest
}

// Store accumulates crawl output. It is safe for concurrent use.
type Store struct {
	shards [numShards]shard

	// gen counts mutation epochs: it advances at least once per write
	// call (not per record, keeping the hot crawl path to one atomic add
	// per bulk commit). Derived views — the pipeline's site index, the
	// serving layer's response cache — compare generations to decide
	// whether their snapshot is still current.
	gen atomic.Uint64

	// force counts out-of-band invalidations (BumpGeneration). Ordinary
	// commits move only gen, which delta-aware views absorb
	// incrementally; a force bump tells them their accumulated state may
	// no longer describe the store and they must rebuild from scratch.
	force atomic.Uint64

	// journal remembers the (crawl, domain) scope of recent commits so
	// cached query responses can be revalidated surgically instead of
	// discarded wholesale on every generation bump.
	journal scopeJournal

	// wal, when non-nil, is the write-ahead log every commit appends to
	// before touching the shard buffers. Set once by Open before the
	// store is shared; plain field reads are safe afterwards.
	wal *Log

	// netlogs are low-volume (only visits with local findings retain a
	// capture) and stay behind a single lock.
	nmu     sync.Mutex
	netlogs []NetLogRecord

	// meters, when set via Instrument, counts commits into a telemetry
	// registry. An atomic pointer so Instrument is safe against
	// concurrent writers; nil (the default) costs one load per bulk
	// write.
	meters atomic.Pointer[storeMeters]
}

// storeMeters holds pre-resolved registry handles so the write path
// never takes the registry's map lock.
type storeMeters struct {
	pages, locals, netlogs, commits *telemetry.Counter
	// scopeWraps counts ScopesSince calls the journal could no longer
	// answer (the ring wrapped past the requested generation), each of
	// which degrades a caller to full cache invalidation.
	scopeWraps *telemetry.Counter
}

// Instrument registers the store's write counters into reg
// (store_pages_total, store_locals_total, store_netlogs_total,
// store_commits_total, store_scope_journal_wraps_total) and starts
// counting subsequent writes.
func (s *Store) Instrument(reg *telemetry.Registry) {
	s.meters.Store(&storeMeters{
		pages:      reg.Counter("store_pages_total"),
		locals:     reg.Counter("store_locals_total"),
		netlogs:    reg.Counter("store_netlogs_total"),
		commits:    reg.Counter("store_commits_total"),
		scopeWraps: reg.Counter("store_scope_journal_wraps_total"),
	})
}

// New returns an empty store.
func New() *Store { return &Store{} }

// Generation returns the store's mutation epoch. Two reads separated by
// any write observe different values; snapshots computed at different
// generations must not be conflated.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// ForceGeneration returns the out-of-band invalidation epoch; see
// BumpGeneration.
func (s *Store) ForceGeneration() uint64 { return s.force.Load() }

// BumpGeneration advances the mutation epoch without writing a record,
// forcing derived views to rebuild. Writers need not call it — every
// Add* path bumps on its own. Unlike an ordinary commit, a bump also
// advances the force epoch: it signals that store state may have
// changed out of band, so delta-applied views cannot trust their
// accumulated state and must rebuild in full.
func (s *Store) BumpGeneration() {
	s.force.Add(1)
	s.journal.append(&s.gen, CommitScope{Broad: true})
}

// Reserve pre-sizes the shard buffers for a crawl expected to append
// about nPages page records, so the append path does not repeatedly
// regrow slices mid-crawl.
func (s *Store) Reserve(nPages int) {
	if nPages <= 0 {
		return
	}
	perShard := nPages/numShards + 1
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if cap(sh.pages)-len(sh.pages) < perShard {
			grown := make([]PageRecord, len(sh.pages), len(sh.pages)+perShard)
			copy(grown, sh.pages)
			sh.pages = grown
		}
		sh.mu.Unlock()
	}
}

// commit is the single write path every public mutator lands on. It
// clamps delays, appends the records to the attached WAL (when one is
// attached) and to the shard buffers — both under the WAL lock, so
// compaction always observes the log as an exact prefix of the shards —
// then advances the generation, journals the commit's scope, and counts
// meters. Negative local delays are clamped in place, so callers see
// the records exactly as stored.
func (s *Store) commit(ps []PageRecord, ls []LocalRequest, nls []NetLogRecord) {
	if len(ps) == 0 && len(ls) == 0 && len(nls) == 0 {
		return
	}
	for i := range ls {
		if ls[i].Delay < 0 {
			ls[i].Delay = 0
		}
	}
	if l := s.wal; l != nil {
		l.mu.Lock()
		l.appendCommit(ps, ls, nls)
		s.apply(ps, ls, nls)
		l.mu.Unlock()
		l.maybeCompact()
	} else {
		s.apply(ps, ls, nls)
	}
	s.journal.append(&s.gen, commitScopeOf(ps, ls, nls))
	if m := s.meters.Load(); m != nil {
		if len(ps) > 0 {
			m.pages.Add(uint64(len(ps)))
		}
		if len(ls) > 0 {
			m.locals.Add(uint64(len(ls)))
		}
		if len(nls) > 0 {
			m.netlogs.Add(uint64(len(nls)))
		}
		m.commits.Inc()
	}
}

// apply lands committed records in the shard buffers, acquiring each
// touched shard's lock once per consecutive same-shard run rather than
// once per record.
func (s *Store) apply(ps []PageRecord, ls []LocalRequest, nls []NetLogRecord) {
	for i := 0; i < len(ps); {
		idx := shardIndex(ps[i].Domain)
		j := i + 1
		for j < len(ps) && shardIndex(ps[j].Domain) == idx {
			j++
		}
		sh := &s.shards[idx]
		sh.mu.Lock()
		sh.pages = append(sh.pages, ps[i:j]...)
		sh.mu.Unlock()
		i = j
	}
	for i := 0; i < len(ls); {
		idx := shardIndex(ls[i].Domain)
		j := i + 1
		for j < len(ls) && shardIndex(ls[j].Domain) == idx {
			j++
		}
		sh := &s.shards[idx]
		sh.mu.Lock()
		sh.locals = append(sh.locals, ls[i:j]...)
		sh.mu.Unlock()
		i = j
	}
	if len(nls) > 0 {
		s.nmu.Lock()
		s.netlogs = append(s.netlogs, nls...)
		s.nmu.Unlock()
	}
}

// AddPage records a page visit.
func (s *Store) AddPage(p PageRecord) {
	s.commit([]PageRecord{p}, nil, nil)
}

// AddLocal records a local-network request.
func (s *Store) AddLocal(l LocalRequest) {
	s.commit(nil, []LocalRequest{l}, nil)
}

// AddPages bulk-appends page records as one commit.
func (s *Store) AddPages(ps []PageRecord) {
	s.commit(ps, nil, nil)
}

// AddLocals bulk-appends local requests as one commit. Negative delays
// are clamped to zero, in the caller's slice.
func (s *Store) AddLocals(ls []LocalRequest) {
	s.commit(nil, ls, nil)
}

// Batch accumulates one worker's records locally so a whole visit can be
// committed to the store in a single lock acquisition (all records of a
// visit share the visited domain and therefore a shard). A Batch is not
// safe for concurrent use; give each worker its own and Reset between
// visits.
type Batch struct {
	pages  []PageRecord
	locals []LocalRequest
}

// AddPage stages a page record.
func (b *Batch) AddPage(p PageRecord) { b.pages = append(b.pages, p) }

// AddLocal stages a local request.
func (b *Batch) AddLocal(l LocalRequest) { b.locals = append(b.locals, l) }

// Len reports the number of staged records.
func (b *Batch) Len() int { return len(b.pages) + len(b.locals) }

// Reset empties the batch, retaining capacity for reuse.
func (b *Batch) Reset() { b.pages = b.pages[:0]; b.locals = b.locals[:0] }

// AddBatch commits the staged records as a single commit (one WAL
// record, one generation bump, one scope journal entry). The batch may
// be Reset and reused afterwards; the store keeps copies.
func (s *Store) AddBatch(b *Batch) {
	s.commit(b.pages, b.locals, nil)
}

// AddRecords commits already-materialized records of all three kinds as
// one commit. It is the merge path of consumers that move records
// between stores wholesale — the fleet coordinator folding a worker's
// uploaded shard into the campaign store — where netlog captures must
// transfer byte-identically (AddNetLog would re-serialize them).
func (s *Store) AddRecords(ps []PageRecord, ls []LocalRequest, nls []NetLogRecord) {
	s.commit(ps, ls, nls)
}

// Pages returns a filtered snapshot of page records; a nil filter keeps
// everything. Order is unspecified (crawl workers interleave anyway);
// records of one domain appear in insertion order relative to each
// other.
func (s *Store) Pages(keep func(*PageRecord) bool) []PageRecord {
	var out []PageRecord
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j := range sh.pages {
			if keep == nil || keep(&sh.pages[j]) {
				out = append(out, sh.pages[j])
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// ForEachPage visits every page record in the same shard order Pages
// uses, under the shard locks, without materializing a snapshot. The
// callback must copy anything it keeps and must not call back into the
// store.
func (s *Store) ForEachPage(fn func(*PageRecord)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j := range sh.pages {
			fn(&sh.pages[j])
		}
		sh.mu.Unlock()
	}
}

// ForEachLocal visits every local request in the same shard order
// Locals uses, with ForEachPage's contract.
func (s *Store) ForEachLocal(fn func(*LocalRequest)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j := range sh.locals {
			fn(&sh.locals[j])
		}
		sh.mu.Unlock()
	}
}

// Locals returns a filtered snapshot of local requests; a nil filter
// keeps everything. Ordering follows the same rules as Pages.
func (s *Store) Locals(keep func(*LocalRequest) bool) []LocalRequest {
	var out []LocalRequest
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j := range sh.locals {
			if keep == nil || keep(&sh.locals[j]) {
				out = append(out, sh.locals[j])
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// NumPages and NumLocals report record counts.
func (s *Store) NumPages() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.pages)
		sh.mu.Unlock()
	}
	return n
}

func (s *Store) NumLocals() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.locals)
		sh.mu.Unlock()
	}
	return n
}

// snapshotAll gathers merged copies of every shard's buffers.
func (s *Store) snapshotAll() (pages []PageRecord, locals []LocalRequest) {
	pages = make([]PageRecord, 0, s.NumPages())
	locals = make([]LocalRequest, 0, s.NumLocals())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		pages = append(pages, sh.pages...)
		locals = append(locals, sh.locals...)
		sh.mu.Unlock()
	}
	return pages, locals
}

// sortAll brings records into the canonical serialization order: pages
// and netlogs by (crawl, OS, rank, domain), locals additionally by
// delay then URL. The order is a total one for any single crawl (one
// record per domain per visit URL), making Save deterministic
// regardless of crawl worker interleaving or shard assignment.
func sortAll(pages []PageRecord, locals []LocalRequest, netlogs []NetLogRecord) {
	SortPages(pages)
	sort.Slice(netlogs, func(i, j int) bool {
		a, b := &netlogs[i], &netlogs[j]
		if a.Crawl != b.Crawl {
			return a.Crawl < b.Crawl
		}
		if a.OS != b.OS {
			return a.OS < b.OS
		}
		return a.Domain < b.Domain
	})
	SortLocals(locals)
}

// SortPages sorts page records into the canonical serialization order.
// Shard iteration order is seed-dependent per process, so any consumer
// that shows a snapshot to a user should sort it first.
func SortPages(pages []PageRecord) {
	sort.Slice(pages, func(i, j int) bool {
		a, b := &pages[i], &pages[j]
		if a.Crawl != b.Crawl {
			return a.Crawl < b.Crawl
		}
		if a.OS != b.OS {
			return a.OS < b.OS
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		// Same site visited at different paths (the login-page
		// extension appends to the same store).
		return a.URL < b.URL
	})
}

// SortLocals sorts local requests into the canonical serialization
// order; see SortPages.
func SortLocals(locals []LocalRequest) {
	sort.Slice(locals, func(i, j int) bool {
		a, b := &locals[i], &locals[j]
		if a.Crawl != b.Crawl {
			return a.Crawl < b.Crawl
		}
		if a.OS != b.OS {
			return a.OS < b.OS
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.Delay != b.Delay {
			return a.Delay < b.Delay
		}
		return a.URL < b.URL
	})
}

// envelope is the JSONL line format: a type tag plus one payload.
type envelope struct {
	T      string        `json:"t"`
	Page   *PageRecord   `json:"page,omitempty"`
	Local  *LocalRequest `json:"local,omitempty"`
	NetLog *NetLogRecord `json:"netlog,omitempty"`
}

// Save writes the store as deterministic JSONL in canonical order.
func (s *Store) Save(w io.Writer) error {
	pages, locals := s.snapshotAll()
	s.nmu.Lock()
	netlogs := make([]NetLogRecord, len(s.netlogs))
	copy(netlogs, s.netlogs)
	s.nmu.Unlock()
	sortAll(pages, locals, netlogs)
	return encodeJSONL(w, pages, locals, netlogs)
}

// encodeJSONL writes records in the Save line format, in the order
// given. Save and the WAL compactor (whose segments are canonical
// Save-format slices) share it, so segment bytes stay load-compatible
// with the golden-pinned export format.
func encodeJSONL(w io.Writer, pages []PageRecord, locals []LocalRequest, netlogs []NetLogRecord) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for i := range pages {
		if err := enc.Encode(envelope{T: "page", Page: &pages[i]}); err != nil {
			return err
		}
	}
	for i := range locals {
		if err := enc.Encode(envelope{T: "local", Local: &locals[i]}); err != nil {
			return err
		}
	}
	for i := range netlogs {
		if err := enc.Encode(envelope{T: "netlog", NetLog: &netlogs[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads JSONL previously written by Save, appending to the store.
//
// Loading into an already-populated store is append-merge: the incoming
// records join the resident ones, so several saved crawls (as in
// `knockquery -in a.jsonl,b.jsonl` or a server mounting multiple
// stores) become one queryable snapshot. Records are facts about
// individual visits — no deduplication is attempted, and loading the
// same file twice doubles its records. Saving the merged store yields
// the same canonical bytes regardless of load order, because Save sorts
// into the canonical (crawl, OS, rank, domain, ...) order.
//
// A decode error aborts the load mid-file: records before the corrupt
// line are already appended. Callers that need all-or-nothing mounting
// should load into a scratch store first.
func (s *Store) Load(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	line := 0
	for dec.More() {
		line++
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return fmt.Errorf("store: record %d: %w", line, err)
		}
		switch env.T {
		case "page":
			if env.Page == nil {
				return fmt.Errorf("store: record %d: page tag without payload", line)
			}
			s.AddPage(*env.Page)
		case "local":
			if env.Local == nil {
				return fmt.Errorf("store: record %d: local tag without payload", line)
			}
			s.AddLocal(*env.Local)
		case "netlog":
			if env.NetLog == nil {
				return fmt.Errorf("store: record %d: netlog tag without payload", line)
			}
			s.commit(nil, nil, []NetLogRecord{*env.NetLog})
		default:
			return fmt.Errorf("store: record %d: unknown tag %q", line, env.T)
		}
	}
	return nil
}

// LoadFiles append-merges the stores saved at the given paths, in
// order, with Load's semantics. It is the shared mount path of the CLI
// tools and the serving layer.
func (s *Store) LoadFiles(paths ...string) error {
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		err = s.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("store: loading %s: %w", path, err)
		}
	}
	return nil
}
