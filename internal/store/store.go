// Package store is the telemetry database of the pipeline's step 4
// ("parsing the logs and storing the network events"). It holds one
// PageRecord per page visit and one LocalRequest per extracted local
// finding, offers the query surface the analysis layer needs, and
// persists to a line-delimited JSON format.
//
// The paper retained 11 TB of raw NetLogs; this store keeps the full
// event stream only where it matters (visits with local activity can be
// retained verbatim) and compact summaries everywhere else.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// PageRecord summarizes one page visit.
type PageRecord struct {
	Crawl    string `json:"crawl"`
	OS       string `json:"os"`
	Domain   string `json:"domain"`
	Rank     int    `json:"rank,omitempty"`
	Category string `json:"category,omitempty"`
	URL      string `json:"url"`
	FinalURL string `json:"final_url,omitempty"`
	// Err is the Chrome net error for failed loads, "" for successes.
	Err string `json:"err,omitempty"`
	// CommittedAt is when the landing document finished loading.
	CommittedAt time.Duration `json:"committed_at,omitempty"`
	// Events is the telemetry volume of the visit.
	Events int `json:"events,omitempty"`
}

// OK reports whether the page loaded.
func (p *PageRecord) OK() bool { return p.Err == "" }

// LocalRequest is one local-network request observed during a visit.
type LocalRequest struct {
	Crawl    string `json:"crawl"`
	OS       string `json:"os"`
	Domain   string `json:"domain"`
	Rank     int    `json:"rank,omitempty"`
	Category string `json:"category,omitempty"`

	URL    string `json:"url"`
	Scheme string `json:"scheme"`
	Host   string `json:"host"`
	Port   uint16 `json:"port"`
	Path   string `json:"path"`
	// Dest is "localhost" or "lan".
	Dest string `json:"dest"`
	// Delay is the time from page commit to the request (the Figure 5
	// observable). Negative values are clamped to zero.
	Delay       time.Duration `json:"delay"`
	Initiator   string        `json:"initiator,omitempty"`
	NetError    string        `json:"net_error,omitempty"`
	StatusCode  int           `json:"status_code,omitempty"`
	ViaRedirect bool          `json:"via_redirect,omitempty"`
	SOPExempt   bool          `json:"sop_exempt,omitempty"`
}

// Store accumulates crawl output. It is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	pages   []PageRecord
	locals  []LocalRequest
	netlogs []NetLogRecord
}

// New returns an empty store.
func New() *Store { return &Store{} }

// AddPage records a page visit.
func (s *Store) AddPage(p PageRecord) {
	s.mu.Lock()
	s.pages = append(s.pages, p)
	s.mu.Unlock()
}

// AddLocal records a local-network request.
func (s *Store) AddLocal(l LocalRequest) {
	if l.Delay < 0 {
		l.Delay = 0
	}
	s.mu.Lock()
	s.locals = append(s.locals, l)
	s.mu.Unlock()
}

// Pages returns a filtered snapshot of page records; a nil filter keeps
// everything.
func (s *Store) Pages(keep func(*PageRecord) bool) []PageRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []PageRecord
	for i := range s.pages {
		if keep == nil || keep(&s.pages[i]) {
			out = append(out, s.pages[i])
		}
	}
	return out
}

// Locals returns a filtered snapshot of local requests; a nil filter
// keeps everything.
func (s *Store) Locals(keep func(*LocalRequest) bool) []LocalRequest {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []LocalRequest
	for i := range s.locals {
		if keep == nil || keep(&s.locals[i]) {
			out = append(out, s.locals[i])
		}
	}
	return out
}

// NumPages and NumLocals report record counts.
func (s *Store) NumPages() int  { s.mu.Lock(); defer s.mu.Unlock(); return len(s.pages) }
func (s *Store) NumLocals() int { s.mu.Lock(); defer s.mu.Unlock(); return len(s.locals) }

// sortAll brings records into a canonical order for deterministic
// serialization regardless of crawl worker interleaving.
func (s *Store) sortAll() {
	sort.Slice(s.pages, func(i, j int) bool {
		a, b := &s.pages[i], &s.pages[j]
		if a.Crawl != b.Crawl {
			return a.Crawl < b.Crawl
		}
		if a.OS != b.OS {
			return a.OS < b.OS
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Domain < b.Domain
	})
	sort.Slice(s.netlogs, func(i, j int) bool {
		a, b := &s.netlogs[i], &s.netlogs[j]
		if a.Crawl != b.Crawl {
			return a.Crawl < b.Crawl
		}
		if a.OS != b.OS {
			return a.OS < b.OS
		}
		return a.Domain < b.Domain
	})
	sort.Slice(s.locals, func(i, j int) bool {
		a, b := &s.locals[i], &s.locals[j]
		if a.Crawl != b.Crawl {
			return a.Crawl < b.Crawl
		}
		if a.OS != b.OS {
			return a.OS < b.OS
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.Delay != b.Delay {
			return a.Delay < b.Delay
		}
		return a.URL < b.URL
	})
}

// envelope is the JSONL line format: a type tag plus one payload.
type envelope struct {
	T      string        `json:"t"`
	Page   *PageRecord   `json:"page,omitempty"`
	Local  *LocalRequest `json:"local,omitempty"`
	NetLog *NetLogRecord `json:"netlog,omitempty"`
}

// Save writes the store as deterministic JSONL.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortAll()
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for i := range s.pages {
		if err := enc.Encode(envelope{T: "page", Page: &s.pages[i]}); err != nil {
			return err
		}
	}
	for i := range s.locals {
		if err := enc.Encode(envelope{T: "local", Local: &s.locals[i]}); err != nil {
			return err
		}
	}
	for i := range s.netlogs {
		if err := enc.Encode(envelope{T: "netlog", NetLog: &s.netlogs[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads JSONL previously written by Save, appending to the store.
func (s *Store) Load(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	line := 0
	for dec.More() {
		line++
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return fmt.Errorf("store: record %d: %w", line, err)
		}
		switch env.T {
		case "page":
			if env.Page == nil {
				return fmt.Errorf("store: record %d: page tag without payload", line)
			}
			s.AddPage(*env.Page)
		case "local":
			if env.Local == nil {
				return fmt.Errorf("store: record %d: local tag without payload", line)
			}
			s.AddLocal(*env.Local)
		case "netlog":
			if env.NetLog == nil {
				return fmt.Errorf("store: record %d: netlog tag without payload", line)
			}
			s.mu.Lock()
			s.netlogs = append(s.netlogs, *env.NetLog)
			s.mu.Unlock()
		default:
			return fmt.Errorf("store: record %d: unknown tag %q", line, env.T)
		}
	}
	return nil
}
