package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame IO is the record framing the store's WAL writes: each record is
// a little-endian uint32 payload length, a CRC32C (Castagnoli) checksum
// of the payload, then the payload bytes, appended after a
// file-identifying magic line. The framing is exported so other
// crash-replayable journals — the fleet coordinator's lease journal —
// share the exact format and recovery semantics instead of inventing a
// second one: a torn or corrupt tail is detected, the valid prefix
// stands, and the tail is dropped.

// ErrTornFrame tags tail damage that frame replay tolerates (the
// expected shape of a crash mid-append): the valid prefix stands, the
// tail goes. Match with errors.Is.
var ErrTornFrame = errors.New("torn tail")

// errWALTorn is the historical internal name; the WAL replays through
// the same frame layer, so the two are one error.
var errWALTorn = ErrTornFrame

func tornf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTornFrame, fmt.Sprintf(format, args...))
}

// maxFramePayload bounds a single frame's payload so a corrupt length
// prefix cannot trigger a giant allocation during replay.
const maxFramePayload = 256 << 20

// AppendFrame writes one framed record to w and returns the bytes
// written (header plus payload). Callers serialize their own appends;
// the frame layer adds no locking.
func AppendFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, walCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return 8 + len(payload), nil
}

// ReplayFrames reads framed records from r — first checking the
// file-identifying magic line — calling apply for each fully valid
// payload, and returns the byte length of the valid prefix, the number
// of records applied, and the tail damage if any. Errors wrapping
// ErrTornFrame are recoverable (truncate to the valid prefix and
// continue); anything else means r is not a journal of this magic at
// all. An apply error also stops replay as a torn tail: the record's
// bytes were intact, but the journal's own decoder rejected them, so
// nothing after it can be trusted either. It never panics on arbitrary
// input.
func ReplayFrames(r io.Reader, magic string, apply func(payload []byte) error) (valid int64, records int, tailErr error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(magic))
	n, err := io.ReadFull(br, head)
	if err != nil {
		if n == 0 {
			return 0, 0, nil // empty file: a fresh journal
		}
		if bytes.Equal(head[:n], []byte(magic)[:n]) {
			return 0, 0, tornf("truncated header (%d bytes)", n)
		}
		return 0, 0, fmt.Errorf("bad header")
	}
	if string(head) != magic {
		return 0, 0, fmt.Errorf("bad header")
	}
	valid = int64(len(magic))
	var hdr [8]byte
	for {
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return valid, records, nil // clean end at a record boundary
		}
		if err != nil {
			return valid, records, tornf("truncated record header (%d bytes)", n)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxFramePayload {
			return valid, records, tornf("implausible record length %d", length)
		}
		payload := make([]byte, length)
		if n, err := io.ReadFull(br, payload); err != nil {
			return valid, records, tornf("truncated payload (%d of %d bytes)", n, length)
		}
		if got := crc32.Checksum(payload, walCRC); got != sum {
			return valid, records, tornf("checksum mismatch at offset %d", valid)
		}
		if apply != nil {
			if err := apply(payload); err != nil {
				return valid, records, tornf("undecodable record at offset %d: %v", valid, err)
			}
		}
		valid += 8 + int64(length)
		records++
	}
}
