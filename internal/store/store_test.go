package store

import (
	"bytes"

	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func samplePage(domain string, rank int) PageRecord {
	return PageRecord{
		Crawl: "top100k-2020", OS: "Windows", Domain: domain, Rank: rank,
		URL: "https://" + domain + "/", FinalURL: "https://" + domain + "/",
		CommittedAt: 900 * time.Millisecond, Events: 25,
	}
}

func sampleLocal(domain string) LocalRequest {
	return LocalRequest{
		Crawl: "top100k-2020", OS: "Windows", Domain: domain, Rank: 104,
		URL: "wss://localhost:5939/", Scheme: "wss", Host: "localhost",
		Port: 5939, Path: "/", Dest: "localhost", Delay: 10 * time.Second,
		Initiator: "blob:threatmetrix", NetError: "ERR_CONNECTION_REFUSED", SOPExempt: true,
	}
}

func TestAddAndQuery(t *testing.T) {
	s := New()
	s.AddPage(samplePage("ebay.com", 104))
	s.AddPage(PageRecord{Crawl: "top100k-2020", OS: "Windows", Domain: "dead.example", Err: "ERR_NAME_NOT_RESOLVED"})
	s.AddLocal(sampleLocal("ebay.com"))

	if s.NumPages() != 2 || s.NumLocals() != 1 {
		t.Fatalf("counts = %d pages, %d locals", s.NumPages(), s.NumLocals())
	}
	ok := s.Pages(func(p *PageRecord) bool { return p.OK() })
	if len(ok) != 1 || ok[0].Domain != "ebay.com" {
		t.Errorf("OK filter = %v", ok)
	}
	wss := s.Locals(func(l *LocalRequest) bool { return l.Scheme == "wss" })
	if len(wss) != 1 {
		t.Errorf("wss filter = %v", wss)
	}
	if all := s.Locals(nil); len(all) != 1 {
		t.Errorf("nil filter should keep everything")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	l := sampleLocal("x.example")
	l.Delay = -5 * time.Second
	s.AddLocal(l)
	if got := s.Locals(nil)[0].Delay; got != 0 {
		t.Errorf("Delay = %v, want clamped to 0", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	s.AddPage(samplePage("ebay.com", 104))
	s.AddPage(samplePage("hola.org", 244))
	s.AddLocal(sampleLocal("ebay.com"))

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := back.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if back.NumPages() != 2 || back.NumLocals() != 1 {
		t.Fatalf("round trip lost records: %d pages, %d locals", back.NumPages(), back.NumLocals())
	}
	got := back.Locals(nil)[0]
	want := sampleLocal("ebay.com")
	if got != want {
		t.Errorf("local changed in round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestSaveDeterministicAcrossInsertOrder(t *testing.T) {
	a, b := New(), New()
	pages := []PageRecord{samplePage("b.example", 2), samplePage("a.example", 1), samplePage("c.example", 3)}
	for _, p := range pages {
		a.AddPage(p)
	}
	for i := len(pages) - 1; i >= 0; i-- {
		b.AddPage(pages[i])
	}
	var ba, bb bytes.Buffer
	if err := a.Save(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Error("serialization depends on insert order")
	}
}

// TestLoadAppendMerge pins the semantics of loading into a populated
// store: records from every file join one snapshot, duplicates are
// kept, netlogs merge too, and the merged store saves to the same
// canonical bytes no matter the load order.
func TestLoadAppendMerge(t *testing.T) {
	a, b := New(), New()
	a.AddPage(samplePage("ebay.com", 104))
	a.AddLocal(sampleLocal("ebay.com"))
	if err := a.AddNetLog("top100k-2020", "Windows", "ebay.com", sampleNetLog(t)); err != nil {
		t.Fatal(err)
	}
	p21 := samplePage("hola.org", 244)
	p21.Crawl = "top100k-2021"
	b.AddPage(p21)
	b.AddLocal(sampleLocal("ebay.com")) // same record as in a: kept, not deduped

	var fa, fb bytes.Buffer
	if err := a.Save(&fa); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&fb); err != nil {
		t.Fatal(err)
	}

	merged := New()
	if err := merged.Load(bytes.NewReader(fa.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := merged.Load(bytes.NewReader(fb.Bytes())); err != nil {
		t.Fatal(err)
	}
	if merged.NumPages() != 2 || merged.NumLocals() != 2 || merged.NumNetLogs() != 1 {
		t.Fatalf("merge = %d pages, %d locals, %d netlogs; want 2/2/1",
			merged.NumPages(), merged.NumLocals(), merged.NumNetLogs())
	}
	if got := merged.Pages(func(p *PageRecord) bool { return p.Crawl == "top100k-2021" }); len(got) != 1 {
		t.Fatalf("merged store lost the second crawl: %v", got)
	}

	reversed := New()
	if err := reversed.Load(bytes.NewReader(fb.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := reversed.Load(bytes.NewReader(fa.Bytes())); err != nil {
		t.Fatal(err)
	}
	var sm, sr bytes.Buffer
	if err := merged.Save(&sm); err != nil {
		t.Fatal(err)
	}
	if err := reversed.Save(&sr); err != nil {
		t.Fatal(err)
	}
	if sm.String() != sr.String() {
		t.Error("canonical serialization depends on load order")
	}
}

func TestLoadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, fill func(*Store)) string {
		s := New()
		fill(s)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pa := write("a.jsonl", func(s *Store) { s.AddPage(samplePage("ebay.com", 104)) })
	pb := write("b.jsonl", func(s *Store) { s.AddLocal(sampleLocal("ebay.com")) })

	st := New()
	if err := st.LoadFiles(pa, pb); err != nil {
		t.Fatal(err)
	}
	if st.NumPages() != 1 || st.NumLocals() != 1 {
		t.Fatalf("LoadFiles = %d pages, %d locals", st.NumPages(), st.NumLocals())
	}
	if err := New().LoadFiles(dir + "/missing.jsonl"); err == nil {
		t.Error("missing file not reported")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"t":"alien"}`,
		`{"t":"page"}`,
		`{"t":"local"}`,
		`{nonsense`,
	}
	for i, in := range cases {
		if err := New().Load(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: Load accepted malformed input", i)
		}
	}
	if err := New().Load(strings.NewReader("")); err != nil {
		t.Errorf("empty input should be fine: %v", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.AddPage(samplePage("x.example", w*1000+i))
				s.AddLocal(sampleLocal("x.example"))
			}
		}(w)
	}
	wg.Wait()
	if s.NumPages() != 1600 || s.NumLocals() != 1600 {
		t.Errorf("lost records under concurrency: %d/%d", s.NumPages(), s.NumLocals())
	}
}

func sampleNetLog(t testing.TB) *netlog.Log {
	t.Helper()
	r := netlog.NewRecorder()
	src := r.NewSource(netlog.SourceURLRequest)
	r.Begin(0, netlog.TypeRequestAlive, src, map[string]any{"url": "wss://localhost:5939/"})
	r.Point(2*time.Millisecond, netlog.TypeURLRequestError, src, map[string]any{"net_error": "ERR_CONNECTION_REFUSED"})
	return r.Log()
}

func TestNetLogRetention(t *testing.T) {
	s := New()
	if err := s.AddNetLog("top100k-2020", "Windows", "ebay.com", sampleNetLog(t)); err != nil {
		t.Fatal(err)
	}
	if s.NumNetLogs() != 1 {
		t.Fatalf("NumNetLogs = %d", s.NumNetLogs())
	}
	log, ok, err := s.NetLog("top100k-2020", "Windows", "ebay.com")
	if err != nil || !ok || log.Len() != 2 {
		t.Fatalf("NetLog = ok=%v err=%v len=%d", ok, err, log.Len())
	}
	if _, ok, _ := s.NetLog("top100k-2020", "Linux", "ebay.com"); ok {
		t.Error("wrong-OS lookup should miss")
	}
	doms := s.NetLogDomains("top100k-2020")
	if len(doms) != 1 || doms[0] != [2]string{"Windows", "ebay.com"} {
		t.Errorf("NetLogDomains = %v", doms)
	}
	if got := s.NetLogDomains("malicious"); got != nil {
		t.Errorf("other-crawl domains = %v", got)
	}
}

func TestNetLogRecordsSortedInSave(t *testing.T) {
	s := New()
	for _, d := range []string{"zeta.example", "alpha.example"} {
		if err := s.AddNetLog("c", "Windows", d, sampleNetLog(t)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "alpha.example") > strings.Index(out, "zeta.example") {
		t.Error("netlog records not canonically sorted")
	}
	// And the reloaded capture parses.
	back := New()
	if err := back.Load(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	if log, ok, err := back.NetLog("c", "Windows", "alpha.example"); err != nil || !ok || log.Len() != 2 {
		t.Fatalf("reload: ok=%v err=%v", ok, err)
	}
}

func TestNetLogCorruptPayload(t *testing.T) {
	s := New()
	if err := s.Load(strings.NewReader(`{"t":"netlog","netlog":{"crawl":"c","os":"Windows","domain":"d","log":["not","a","netlog"]}}`)); err != nil {
		t.Fatal(err) // the envelope itself is well-formed JSON
	}
	if _, ok, err := s.NetLog("c", "Windows", "d"); !ok || err == nil {
		t.Errorf("corrupt capture should surface a parse error: ok=%v err=%v", ok, err)
	}
}

func TestConcurrentBatchesAndReads(t *testing.T) {
	// Hammers the sharded write path (AddPage/AddLocal/AddBatch/bulk
	// appends) while readers snapshot concurrently; run with -race in CI.
	s := New()
	s.Reserve(4096)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var b Batch
			for i := 0; i < perWriter; i++ {
				d := "w" + strings.Repeat("x", w) + "-" + strings.Repeat("i", i%17) + ".example"
				switch i % 3 {
				case 0:
					s.AddPage(samplePage(d, i))
					s.AddLocal(sampleLocal(d))
				case 1:
					s.AddPages([]PageRecord{samplePage(d, i)})
					s.AddLocals([]LocalRequest{sampleLocal(d)})
				default:
					b.Reset()
					b.AddPage(samplePage(d, i))
					b.AddLocal(sampleLocal(d))
					s.AddBatch(&b)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Pages(func(p *PageRecord) bool { return p.Rank%2 == 0 })
				s.Locals(nil)
				s.NumPages()
				s.NumLocals()
			}
		}()
	}
	wg.Wait()
	if got := s.NumPages(); got != writers*perWriter {
		t.Errorf("pages = %d, want %d", got, writers*perWriter)
	}
	if got := s.NumLocals(); got != writers*perWriter {
		t.Errorf("locals = %d, want %d", got, writers*perWriter)
	}
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Save is not deterministic over a concurrently filled store")
	}
}
