package store

import (
	"fmt"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

// TestScopeJournalWrapCounter pins the journal-wrap fallback: once more
// commits than the ring holds have landed, ScopesSince for an old
// generation answers ok=false (the caller must assume anything changed)
// and the wrap is counted into the instrumented registry — previously
// the degradation to full cache invalidation was silent.
func TestScopeJournalWrapCounter(t *testing.T) {
	st := New()
	reg := telemetry.NewRegistry()
	st.Instrument(reg)
	gen0 := st.Generation()

	for i := 0; i < journalSize+10; i++ {
		st.AddPage(PageRecord{
			Crawl: "c", OS: "Linux",
			Domain: fmt.Sprintf("d%d.example", i),
			URL:    fmt.Sprintf("https://d%d.example/", i),
		})
	}

	scopes, ok := st.ScopesSince(gen0)
	if ok {
		t.Fatalf("ScopesSince(%d) after %d commits = ok, want wrapped", gen0, journalSize+10)
	}
	if scopes != nil {
		t.Fatalf("wrapped ScopesSince returned %d scopes, want none", len(scopes))
	}
	if got := reg.CounterValue("store_scope_journal_wraps_total"); got != 1 {
		t.Fatalf("store_scope_journal_wraps_total = %d, want 1", got)
	}

	// A generation the ring still covers answers normally and does not
	// count a wrap.
	recent := st.Generation() - 5
	scopes, ok = st.ScopesSince(recent)
	if !ok || len(scopes) != 5 {
		t.Fatalf("ScopesSince(recent) = %d scopes, ok=%v; want 5, true", len(scopes), ok)
	}
	if got := reg.CounterValue("store_scope_journal_wraps_total"); got != 1 {
		t.Fatalf("store_scope_journal_wraps_total after covered query = %d, want still 1", got)
	}

	// An uninstrumented store degrades identically, just uncounted.
	bare := New()
	for i := 0; i < journalSize+2; i++ {
		bare.AddPage(PageRecord{Crawl: "c", OS: "Linux", Domain: "a.example", URL: "https://a.example/"})
	}
	if _, ok := bare.ScopesSince(0); ok {
		t.Fatal("uninstrumented wrapped ScopesSince = ok, want wrapped")
	}
}
