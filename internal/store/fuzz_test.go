package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

// FuzzLoad hardens the JSONL reader: arbitrary input must never panic,
// and anything accepted must survive a Save/Load round trip with counts
// intact.
func FuzzLoad(f *testing.F) {
	good := New()
	good.AddPage(samplePage("ebay.com", 104))
	good.AddLocal(sampleLocal("ebay.com"))
	var buf bytes.Buffer
	if err := good.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"t":"page","page":{"crawl":"x","os":"Windows","domain":"a","url":"http://a/"}}`)
	f.Add(`{"t":"alien"}`)
	f.Add(`{`)
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		s := New()
		if err := s.Load(strings.NewReader(input)); err != nil {
			return
		}
		var out bytes.Buffer
		if err := s.Save(&out); err != nil {
			t.Fatalf("saving accepted store: %v", err)
		}
		back := New()
		if err := back.Load(&out); err != nil {
			t.Fatalf("reloading saved store: %v", err)
		}
		if back.NumPages() != s.NumPages() || back.NumLocals() != s.NumLocals() || back.NumNetLogs() != s.NumNetLogs() {
			t.Fatal("round trip changed record counts")
		}
	})
}

// fuzzWALRecord frames one payload in the WAL record format, with an
// optionally wrong checksum.
func fuzzWALRecord(payload []byte, breakCRC bool) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	sum := crc32.Checksum(payload, walCRC)
	if breakCRC {
		sum ^= 0xff
	}
	binary.LittleEndian.PutUint32(hdr[4:8], sum)
	return append(hdr[:], payload...)
}

// FuzzWALReplay hardens crash recovery: arbitrary bytes must never
// panic the replayer, the reported valid prefix must actually be a
// prefix of the input, and re-replaying exactly that prefix must be
// clean — same record count, no tail damage. That last property is what
// lets Open truncate to the prefix and keep appending.
func FuzzWALReplay(f *testing.F) {
	rec1 := fuzzWALRecord([]byte(`{"s":1,"p":[{"crawl":"x","os":"Windows","domain":"a.example","url":"http://a/"}]}`), false)
	rec2 := fuzzWALRecord([]byte(`{"l":[{"crawl":"x","os":"Windows","domain":"a.example","url":"http://localhost/","scheme":"http","host":"localhost","port":80,"path":"/","dest":"localhost","delay":5}]}`), false)
	valid := append([]byte(walMagic), append(append([]byte(nil), rec1...), rec2...)...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                                   // torn payload
	f.Add(valid[:len(walMagic)+4])                                // torn header
	f.Add(append([]byte(walMagic), fuzzWALRecord(rec1, true)...)) // flipped checksum
	f.Add(append(append([]byte(nil), valid...), fuzzWALRecord([]byte(`{"n":[]}`), false)...))
	f.Add([]byte(walMagic))
	f.Add([]byte(walMagic[:4]))
	f.Add([]byte{})
	f.Add([]byte("junk that is not a wal at all, longer than the magic"))
	f.Fuzz(func(t *testing.T, input []byte) {
		records := 0
		validLen, n, tailErr := replayWAL(bytes.NewReader(input), func(walPayload) { records++ })
		if n != records {
			t.Fatalf("reported %d records, applied %d", n, records)
		}
		if validLen < 0 || validLen > int64(len(input)) {
			t.Fatalf("valid prefix %d outside input of %d bytes", validLen, len(input))
		}
		if tailErr != nil && !errors.Is(tailErr, errWALTorn) {
			return // not a WAL at all; nothing to re-replay
		}
		again := 0
		revalid, rn, rerr := replayWAL(bytes.NewReader(input[:validLen]), func(walPayload) { again++ })
		if rerr != nil {
			t.Fatalf("re-replaying the valid prefix reported damage: %v", rerr)
		}
		if revalid != validLen || rn != n {
			t.Fatalf("prefix replay = (%d bytes, %d records), want (%d, %d)", revalid, rn, validLen, n)
		}
	})
}
