package store

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad hardens the JSONL reader: arbitrary input must never panic,
// and anything accepted must survive a Save/Load round trip with counts
// intact.
func FuzzLoad(f *testing.F) {
	good := New()
	good.AddPage(samplePage("ebay.com", 104))
	good.AddLocal(sampleLocal("ebay.com"))
	var buf bytes.Buffer
	if err := good.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"t":"page","page":{"crawl":"x","os":"Windows","domain":"a","url":"http://a/"}}`)
	f.Add(`{"t":"alien"}`)
	f.Add(`{`)
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		s := New()
		if err := s.Load(strings.NewReader(input)); err != nil {
			return
		}
		var out bytes.Buffer
		if err := s.Save(&out); err != nil {
			t.Fatalf("saving accepted store: %v", err)
		}
		back := New()
		if err := back.Load(&out); err != nil {
			t.Fatalf("reloading saved store: %v", err)
		}
		if back.NumPages() != s.NumPages() || back.NumLocals() != s.NumLocals() || back.NumNetLogs() != s.NumNetLogs() {
			t.Fatal("round trip changed record counts")
		}
	})
}
