package store

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// walVisit builds the deterministic i-th commit of the test sequence,
// shared with the kill-and-recover crash child so the parent can
// reconstruct the exact expected prefix.
func walVisit(i int) *Batch {
	var b Batch
	domain := fmt.Sprintf("site-%03d.example", i)
	b.AddPage(samplePage(domain, 100+i))
	l := sampleLocal(domain)
	b.AddLocal(l)
	return &b
}

// walReference builds an in-memory store holding the first n commits of
// the deterministic sequence.
func walReference(n int) *Store {
	st := New()
	for i := 0; i < n; i++ {
		st.AddBatch(walVisit(i))
	}
	return st
}

func saveBytes(t testing.TB, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWALOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, l, rec, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Segments != 0 || rec.WALRecords != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	for i := 0; i < 5; i++ {
		st.AddBatch(walVisit(i))
	}
	if err := st.AddNetLog("top100k-2020", "Windows", "site-000.example", sampleNetLog(t)); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, st)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st2, l2, rec2, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.WALRecords != 6 || rec2.Truncated {
		t.Fatalf("recovery = %+v, want 6 clean WAL records", rec2)
	}
	if got := saveBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("recovered store's canonical Save differs from pre-close store")
	}
	if st2.NumNetLogs() != 1 {
		t.Fatalf("NumNetLogs = %d after recovery", st2.NumNetLogs())
	}
}

// TestWALTornTailRecovery damages the log at assorted points — mid
// record, flipped checksum byte, trailing garbage — and requires
// recovery to replay exactly the intact prefix, matching the canonical
// Save of a store holding those commits. This is the crash-recovery
// acceptance test: a torn WAL replays to the exact pre-crash results.
func TestWALTornTailRecovery(t *testing.T) {
	build := t.TempDir()
	st, l, _, err := Open(build, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	const commits = 6
	// boundary[k] is the WAL length after k commits.
	boundary := []int64{l.WALBytes()}
	for i := 0; i < commits; i++ {
		st.AddBatch(walVisit(i))
		boundary = append(boundary, l.WALBytes())
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(filepath.Join(build, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}

	damage := []struct {
		name string
		mut  func([]byte) []byte
		want int // commits surviving recovery
		torn bool
	}{
		{"cut at record boundary", func(b []byte) []byte { return b[:boundary[4]] }, 4, false},
		{"cut mid header", func(b []byte) []byte { return b[:boundary[3]+5] }, 3, true},
		{"cut mid payload", func(b []byte) []byte { return b[:boundary[2]+20] }, 2, true},
		{"flipped payload byte in last record", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[boundary[5]+9+4] ^= 0xff
			return out
		}, 5, true},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xde, 0xad, 0xbe) }, commits, true},
		{"torn before first record", func(b []byte) []byte { return b[:3] }, 0, true},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "wal.log"), d.mut(clean), 0o644); err != nil {
				t.Fatal(err)
			}
			got, lg, rec, err := Open(dir, LogOptions{CompactBytes: -1})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer lg.Close()
			if rec.Truncated != d.torn {
				t.Errorf("Truncated = %v (tail %q), want %v", rec.Truncated, rec.TailErr, d.torn)
			}
			if rec.WALRecords != d.want {
				t.Errorf("replayed %d records, want %d", rec.WALRecords, d.want)
			}
			if !bytes.Equal(saveBytes(t, got), saveBytes(t, walReference(d.want))) {
				t.Error("recovered store does not match the intact-prefix reference")
			}
			// The truncated log must keep accepting appends and survive
			// another cycle.
			got.AddBatch(walVisit(d.want))
			if err := lg.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := lg.Close(); err != nil {
				t.Fatal(err)
			}
			again, lg2, rec2, err := Open(dir, LogOptions{CompactBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer lg2.Close()
			if rec2.Truncated {
				t.Errorf("second recovery still torn: %+v", rec2)
			}
			if !bytes.Equal(saveBytes(t, again), saveBytes(t, walReference(d.want+1))) {
				t.Error("post-recovery append lost on the next open")
			}
		})
	}
}

func TestWALRefusesForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("definitely not a wal file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir, LogOptions{}); err == nil {
		t.Fatal("Open accepted a non-WAL file instead of refusing to truncate it")
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	st, l, _, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		st.AddBatch(walVisit(i))
	}
	if err := st.AddNetLog("top100k-2020", "Windows", "site-001.example", sampleNetLog(t)); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 1 {
		t.Fatalf("Segments = %d after first compaction", l.Segments())
	}
	if l.WALBytes() != int64(len(walMagic)) {
		t.Fatalf("WAL not truncated after compaction: %d bytes", l.WALBytes())
	}
	// More commits after the cut land in the fresh WAL.
	for i := 4; i < 8; i++ {
		st.AddBatch(walVisit(i))
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 2 {
		t.Fatalf("Segments = %d after second compaction", l.Segments())
	}
	// An empty compaction is a no-op, not an empty segment.
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 2 {
		t.Fatalf("empty compaction created a segment: %d", l.Segments())
	}
	want := saveBytes(t, st)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st2, l2, rec, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Segments != 2 || rec.WALRecords != 0 {
		t.Fatalf("recovery = %+v, want 2 segments and an empty WAL", rec)
	}
	if got := saveBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("store recovered from segments differs from pre-close store")
	}
	if st2.NumNetLogs() != 1 {
		t.Fatalf("netlog lost through compaction: %d", st2.NumNetLogs())
	}
}

// TestWALCompactionCrashIdempotent reconstructs the exact crash window
// inside Compact — segment and MANIFEST durable, WAL truncation never
// reached disk — and requires replay to be idempotent: the WAL's copies
// of the compacted records (their sequence numbers are at or below the
// manifest's CompactedSeq) must be skipped, not double-applied.
func TestWALCompactionCrashIdempotent(t *testing.T) {
	dir := t.TempDir()
	st, l, _, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	const commits = 5
	for i := 0; i < commits; i++ {
		st.AddBatch(walVisit(i))
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	preCompact, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash: manifest and segment landed, the truncation did not.
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), preCompact, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, l2, rec, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Segments != 1 || rec.WALSkipped != commits || rec.WALRecords != 0 {
		t.Fatalf("recovery = %+v, want 1 segment and %d skipped WAL records", rec, commits)
	}
	if got, want := st2.NumPages(), commits; got != want {
		t.Fatalf("recovered %d pages, want %d — compacted records were double-applied", got, want)
	}
	if !bytes.Equal(saveBytes(t, st2), saveBytes(t, walReference(commits))) {
		t.Fatal("post-crash recovery does not match the pre-crash reference")
	}

	// Life goes on: sequence numbers must continue past the skipped
	// records so the next compaction covers only genuinely new commits.
	st2.AddBatch(walVisit(commits))
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, l3, rec3, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rec3.WALSkipped != 0 {
		t.Errorf("second recovery skipped %d records from a cleanly truncated WAL", rec3.WALSkipped)
	}
	if !bytes.Equal(saveBytes(t, st3), saveBytes(t, walReference(commits+1))) {
		t.Fatal("store after post-crash append + compaction does not match the reference")
	}
}

// TestWALCompactionCrashBeforeManifest covers the other half of the
// window: the segment file was renamed into place but the manifest
// install never happened. The orphan segment is ignored and the WAL —
// still the only registered copy — replays everything.
func TestWALCompactionCrashBeforeManifest(t *testing.T) {
	dir := t.TempDir()
	st, l, _, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	const commits = 5
	for i := 0; i < commits; i++ {
		st.AddBatch(walVisit(i))
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	preCompact, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash: the segment exists, but neither the manifest install
	// nor the WAL truncation happened.
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), preCompact, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, l2, rec, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Segments != 0 || rec.WALRecords != commits || rec.WALSkipped != 0 {
		t.Fatalf("recovery = %+v, want %d WAL records and no segments", rec, commits)
	}
	if !bytes.Equal(saveBytes(t, st2), saveBytes(t, walReference(commits))) {
		t.Fatal("recovery from the un-manifested WAL lost records")
	}
}

// TestWALConcurrentCommits hammers commits from many goroutines with
// background compaction triggering aggressively, then proves the
// reopened store is record-for-record identical (canonical Save bytes)
// to a single-threaded reference.
func TestWALConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	st, l, _, err := Open(dir, LogOptions{CompactBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.AddBatch(walVisit(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st2, l2, rec, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Segments == 0 {
		t.Error("aggressive threshold never triggered background compaction")
	}
	if got, want := st2.NumPages(), workers*per; got != want {
		t.Fatalf("recovered %d pages, want %d", got, want)
	}
	if !bytes.Equal(saveBytes(t, st2), saveBytes(t, walReference(workers*per))) {
		t.Fatal("recovered store differs from single-threaded reference")
	}
}

// TestWALKillAndRecover spawns a child process that commits and
// checkpoints a known sequence — compacting partway through, so the
// recovered state spans a segment plus a live WAL — scribbles a partial
// record on the log (a crash mid-append), and SIGKILLs itself. The
// parent then recovers the directory and requires the exact
// checkpointed prefix.
func TestWALKillAndRecover(t *testing.T) {
	if dir := os.Getenv("KNOCKWAL_CRASH_DIR"); dir != "" {
		walCrashChild(dir)
		return // unreachable: the child kills itself
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWALKillAndRecover$", "-test.v")
	cmd.Env = append(os.Environ(), "KNOCKWAL_CRASH_DIR="+dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("crash child exited cleanly:\n%s", out)
	}

	st, l, rec, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		t.Fatalf("recovery after kill: %v", err)
	}
	defer l.Close()
	if !rec.Truncated {
		t.Errorf("recovery = %+v, want a truncated torn tail", rec)
	}
	if rec.Segments != 1 {
		t.Errorf("recovered %d segments, want the child's mid-sequence compaction", rec.Segments)
	}
	if want := walCrashCommits - walCrashCompactAt; rec.WALRecords != want {
		t.Errorf("replayed %d WAL records, want %d", rec.WALRecords, want)
	}
	if !bytes.Equal(saveBytes(t, st), saveBytes(t, walReference(walCrashCommits))) {
		t.Fatal("post-kill recovery does not match the pre-crash reference")
	}
}

const (
	walCrashCommits   = 7
	walCrashCompactAt = 4 // commits captured in a segment before the kill
)

// walCrashChild runs in the forked test process: commit, checkpoint,
// compact partway, tear the log, die.
func walCrashChild(dir string) {
	st, l, _, err := Open(dir, LogOptions{CompactBytes: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child open:", err)
		os.Exit(2)
	}
	for i := 0; i < walCrashCommits; i++ {
		st.AddBatch(walVisit(i))
		if err := l.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "crash child checkpoint:", err)
			os.Exit(3)
		}
		if i == walCrashCompactAt-1 {
			if err := l.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "crash child compact:", err)
				os.Exit(4)
			}
		}
	}
	// A record header that promises more bytes than will ever arrive.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err == nil {
		f.Write([]byte{0x40, 0x01, 0x00, 0x00, 0xde, 0xad})
		f.Sync()
		f.Close()
	}
	p, _ := os.FindProcess(os.Getpid())
	p.Kill()
	select {} // wait for the signal
}
