package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
)

// This file is the store's durability engine. A directory opened with
// Open holds three kinds of files:
//
//	wal.log          append-only write-ahead log of commits
//	seg-NNNNNN.jsonl immutable sorted segments (canonical Save format)
//	MANIFEST         JSON list of live segments with checksums
//
// Every commit appends one WAL record — a length-prefixed, CRC32C
// checksummed JSON batch carrying a monotonic sequence number — before
// landing in the shard buffers, both under the log's lock so the log is
// always an exact prefix-complete journal of the in-memory state.
// Compaction cuts the store's delta since the last cut into a new
// sorted segment (written to a temp file, fsynced, renamed), registers
// it in the MANIFEST together with the last sequence number the
// segments now cover, and only then truncates the WAL. Replay is
// idempotent against a crash anywhere in that sequence: records whose
// sequence number is <= the manifest's CompactedSeq are already inside
// a segment and are skipped, so a WAL left untruncated by a crash
// between the manifest install and the truncate never double-applies.
// The manifest and segment fsyncs (file and directory) are checked —
// a failed sync aborts the compaction before the truncate, so the WAL
// is never shortened while it is still the only durable copy.
// Recovery on Open loads the manifest's segments, then replays the
// WAL, tolerating a torn or corrupt tail: the valid prefix is applied
// and the tail is dropped, exactly the contract a crash mid-append
// requires. Appends are buffered; Checkpoint flushes and fsyncs, which
// is the crawler's periodic durability point. The canonical Save export
// is untouched by any of this — segments merely reuse its line format.

// walMagic begins every WAL file. A file that is shorter than the magic
// but matches its prefix is treated as a torn empty log; a file whose
// first bytes differ is refused outright (it is not ours to truncate).
const walMagic = "knockwal1\n"

// walCRC is the CRC32C (Castagnoli) table used for record checksums.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walPayload is the JSON body of one WAL record: the records of one
// commit, in commit order. Seq is the record's monotonic sequence
// number, starting at 1 per log; replay skips records whose Seq the
// manifest says are already captured in segments. Seq 0 marks an
// unsequenced record (direct replayWAL input, e.g. the fuzz target)
// and is always applied.
type walPayload struct {
	Seq     uint64         `json:"s,omitempty"`
	Pages   []PageRecord   `json:"p,omitempty"`
	Locals  []LocalRequest `json:"l,omitempty"`
	NetLogs []NetLogRecord `json:"n,omitempty"`
}

// LogOptions configures a durable store directory.
type LogOptions struct {
	// CompactBytes is the WAL size that triggers background compaction
	// into a segment. 0 means the 4 MiB default; negative disables
	// automatic compaction (explicit Compact still works).
	CompactBytes int64
}

// DefaultCompactBytes is the WAL size that triggers compaction when
// LogOptions does not say otherwise.
const DefaultCompactBytes = 4 << 20

func (o LogOptions) compactThreshold() int64 {
	switch {
	case o.CompactBytes < 0:
		return 0
	case o.CompactBytes == 0:
		return DefaultCompactBytes
	default:
		return o.CompactBytes
	}
}

// Recovery reports what Open found and replayed.
type Recovery struct {
	// Segments and SegmentRecords count the manifest's segment files
	// and the records loaded from them.
	Segments       int
	SegmentRecords int
	// WALRecords and WALBytes describe the replayed valid WAL prefix.
	WALRecords int
	WALBytes   int64
	// WALSkipped counts valid WAL records that were not applied because
	// the manifest says a segment already holds them — the footprint of
	// a crash between a compaction's manifest install and its WAL
	// truncation. They are part of the valid prefix but never replayed.
	WALSkipped int
	// Truncated reports that the WAL had a torn or corrupt tail, which
	// was dropped; TailErr describes the damage.
	Truncated bool
	TailErr   string
}

// Log is the write-ahead log and segment set attached to a store. All
// methods are safe for concurrent use with store writers.
type Log struct {
	dir  string
	st   *Store
	opts LogOptions

	// mu serializes WAL appends together with their shard commits, and
	// compaction cuts. Lock order is mu before shard locks; nothing
	// that holds a shard lock ever takes mu.
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	closed   bool
	err      error  // first append/IO error, sticky
	segMark  Mark   // store records already captured in segments
	nextSeq  uint64 // sequence number of the next WAL record
	manifest walManifest

	walBytes atomic.Int64

	compactReq chan struct{}
	done       chan struct{}
	wg         sync.WaitGroup
}

type walManifest struct {
	Segments []walSegment `json:"segments"`
	// CompactedSeq is the highest WAL sequence number whose record is
	// captured in the segments above. Replay skips WAL records at or
	// below it, making recovery idempotent when a crash lands between a
	// compaction's manifest install and its WAL truncation.
	CompactedSeq uint64 `json:"compacted_seq,omitempty"`
}

type walSegment struct {
	Name    string `json:"name"`
	CRC32C  uint32 `json:"crc32c"`
	Pages   int    `json:"pages"`
	Locals  int    `json:"locals"`
	NetLogs int    `json:"netlogs"`
}

// Open opens (or creates) a durable store directory: it loads the
// manifest's segments, replays the WAL's valid prefix — dropping a torn
// or corrupt tail — and returns the recovered store with the log
// attached, so every subsequent commit is journaled. The returned store
// must be written only by this process; close the log before reopening
// the directory.
func Open(dir string, opts LogOptions) (*Store, *Log, Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, Recovery{}, fmt.Errorf("store: opening wal dir: %w", err)
	}
	st := New()
	l := &Log{
		dir:        dir,
		st:         st,
		opts:       opts,
		compactReq: make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	var rec Recovery

	// Segments first: they hold everything compacted out of the WAL.
	if err := l.loadManifest(); err != nil {
		return nil, nil, rec, err
	}
	for _, seg := range l.manifest.Segments {
		n, err := loadSegment(st, filepath.Join(dir, seg.Name), seg.CRC32C)
		if err != nil {
			return nil, nil, rec, fmt.Errorf("store: segment %s: %w", seg.Name, err)
		}
		rec.Segments++
		rec.SegmentRecords += n
	}
	l.segMark = st.Mark()

	// Then the WAL: replay the valid prefix on top of the segments.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, rec, fmt.Errorf("store: opening wal: %w", err)
	}
	compacted := l.manifest.CompactedSeq
	var maxSeq uint64
	valid, nrec, tailErr := replayWAL(f, func(p walPayload) {
		if p.Seq > maxSeq {
			maxSeq = p.Seq
		}
		if p.Seq != 0 && p.Seq <= compacted {
			// A compaction made this record durable in a segment but
			// crashed before truncating the WAL; applying it again would
			// duplicate it.
			rec.WALSkipped++
			return
		}
		// The log is not yet attached, so this applies to the shards
		// and journals scopes without re-appending to the WAL.
		st.commit(p.Pages, p.Locals, p.NetLogs)
	})
	if tailErr != nil && !errors.Is(tailErr, errWALTorn) {
		f.Close()
		return nil, nil, rec, fmt.Errorf("store: wal.log: %v", tailErr)
	}
	rec.WALRecords = nrec - rec.WALSkipped
	rec.WALBytes = valid
	l.nextSeq = compacted + 1
	if maxSeq >= l.nextSeq {
		l.nextSeq = maxSeq + 1
	}
	if tailErr != nil {
		rec.Truncated = true
		rec.TailErr = tailErr.Error()
	}
	if valid == 0 {
		// Fresh (or fully torn) log: start it with the magic.
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(walMagic), 0)
		}
		if err != nil {
			f.Close()
			return nil, nil, rec, fmt.Errorf("store: initializing wal: %w", err)
		}
		valid = int64(len(walMagic))
	} else if rec.Truncated {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, rec, fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, rec, fmt.Errorf("store: seeking wal: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<20)
	l.walBytes.Store(valid)

	st.wal = l
	l.wg.Add(1)
	go l.compactLoop()
	return st, l, rec, nil
}

func (l *Log) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(l.dir, "MANIFEST"))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading manifest: %w", err)
	}
	if err := json.Unmarshal(data, &l.manifest); err != nil {
		return fmt.Errorf("store: parsing manifest: %w", err)
	}
	return nil
}

// loadSegment streams one immutable segment into the store, verifying
// its checksum. Segments are fsynced before they enter the manifest, so
// damage here is disk corruption, not a crash artifact — it fails the
// open rather than being silently dropped.
func loadSegment(st *Store, path string, want uint32) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	crc := crc32.New(walCRC)
	before := st.NumPages() + st.NumLocals() + st.NumNetLogs()
	if err := st.Load(io.TeeReader(f, crc)); err != nil {
		return 0, err
	}
	// The JSON decoder reads to EOF deciding there are no more records,
	// so the tee has seen the whole file by now.
	if got := crc.Sum32(); got != want {
		return 0, fmt.Errorf("checksum mismatch: manifest %08x, file %08x", want, got)
	}
	return st.NumPages() + st.NumLocals() + st.NumNetLogs() - before, nil
}

// replayWAL reads WAL records from r through the shared frame layer,
// calling apply for each fully valid one, and returns the byte length
// of the valid prefix, the number of records applied, and the tail
// damage if any. Errors wrapping ErrTornFrame are recoverable (truncate
// to the valid prefix and continue); anything else means r is not a WAL
// at all. It never panics on arbitrary input.
func replayWAL(r io.Reader, apply func(walPayload)) (valid int64, records int, tailErr error) {
	valid, records, tailErr = ReplayFrames(r, walMagic, func(payload []byte) error {
		var p walPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return err
		}
		if apply != nil {
			apply(p)
		}
		return nil
	})
	if tailErr != nil && !errors.Is(tailErr, ErrTornFrame) {
		tailErr = fmt.Errorf("not a WAL: %v", tailErr)
	}
	return valid, records, tailErr
}

// appendCommit journals one commit. Called by Store.commit with l.mu
// held; errors are sticky (the in-memory store stays authoritative, but
// Checkpoint/Close will report the log as broken).
func (l *Log) appendCommit(ps []PageRecord, ls []LocalRequest, nls []NetLogRecord) {
	if l.err != nil {
		return
	}
	if l.closed {
		l.err = errors.New("store: append to closed wal")
		return
	}
	payload, err := json.Marshal(walPayload{Seq: l.nextSeq, Pages: ps, Locals: ls, NetLogs: nls})
	if err != nil {
		l.err = fmt.Errorf("store: encoding wal record: %w", err)
		return
	}
	l.nextSeq++
	n, err := AppendFrame(l.bw, payload)
	if err != nil {
		l.err = fmt.Errorf("store: appending wal record: %w", err)
		return
	}
	l.walBytes.Add(int64(n))
}

// maybeCompact nudges the background compactor when the WAL has grown
// past the threshold. Non-blocking; called after every commit.
func (l *Log) maybeCompact() {
	t := l.opts.compactThreshold()
	if t == 0 || l.walBytes.Load() < t {
		return
	}
	select {
	case l.compactReq <- struct{}{}:
	default:
	}
}

func (l *Log) compactLoop() {
	defer l.wg.Done()
	for {
		select {
		case <-l.done:
			return
		case <-l.compactReq:
			l.Compact() // sticky error; visible via Err/Checkpoint/Close
		}
	}
}

// Compact cuts everything not yet in a segment — the WAL's contents —
// into a new sorted immutable segment, registers it in the manifest,
// and truncates the WAL. Commits stall for the duration of the cut
// (the WAL lock is held), which is bounded by the compaction threshold.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errors.New("store: compacting closed wal")
	}
	var pages []PageRecord
	var locals []LocalRequest
	var netlogs []NetLogRecord
	mark := l.st.DeltaSince(l.segMark,
		func(p *PageRecord) { pages = append(pages, *p) },
		func(lr *LocalRequest) { locals = append(locals, *lr) },
		func(n *NetLogRecord) { netlogs = append(netlogs, *n) },
	)
	if len(pages) == 0 && len(locals) == 0 && len(netlogs) == 0 {
		l.segMark = mark
		return nil
	}
	sortAll(pages, locals, netlogs)

	name := fmt.Sprintf("seg-%06d.jsonl", len(l.manifest.Segments)+1)
	crc, err := writeSegment(l.dir, name, pages, locals, netlogs)
	if err != nil {
		l.err = err
		return err
	}
	next := l.manifest
	next.Segments = append(append([]walSegment(nil), l.manifest.Segments...), walSegment{
		Name: name, CRC32C: crc,
		Pages: len(pages), Locals: len(locals), NetLogs: len(netlogs),
	})
	// Appends hold l.mu, so every WAL record written so far — exactly
	// the delta just cut — has a sequence number below l.nextSeq.
	next.CompactedSeq = l.nextSeq - 1
	if err := writeManifest(l.dir, next); err != nil {
		// The WAL is still the only durable registered copy; leave it
		// untouched.
		l.err = err
		return err
	}
	l.manifest = next

	// The segment is durable and registered, and CompactedSeq makes
	// replay skip the WAL's copies even if the truncation below never
	// reaches disk: the records are now redundant and the log restarts
	// empty.
	err = l.bw.Flush()
	if err == nil {
		err = l.f.Truncate(int64(len(walMagic)))
	}
	if err == nil {
		_, err = l.f.Seek(int64(len(walMagic)), io.SeekStart)
	}
	if err != nil {
		l.err = fmt.Errorf("store: truncating wal after compaction: %w", err)
		return l.err
	}
	l.bw.Reset(l.f)
	l.walBytes.Store(int64(len(walMagic)))
	l.segMark = mark
	return nil
}

// writeSegment writes one immutable sorted segment via temp file +
// fsync + rename, returning its CRC32C.
func writeSegment(dir, name string, pages []PageRecord, locals []LocalRequest, netlogs []NetLogRecord) (uint32, error) {
	tmp := filepath.Join(dir, ".tmp-"+name)
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("store: writing segment: %w", err)
	}
	crc := crc32.New(walCRC)
	err = encodeJSONL(io.MultiWriter(f, crc), pages, locals, netlogs)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, name))
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: writing segment %s: %w", name, err)
	}
	if err := syncDir(dir); err != nil {
		// The rename may not be durable; the caller must not treat the
		// segment as a safe copy (the orphaned file is harmless — it is
		// not in the manifest).
		return 0, fmt.Errorf("store: syncing dir after segment %s: %w", name, err)
	}
	return crc.Sum32(), nil
}

// writeManifest atomically replaces the manifest. It returns only after
// the new manifest and the rename are fsynced: compaction truncates the
// WAL on success, so a manifest that might not survive a crash must be
// reported as a failure.
func writeManifest(dir string, m walManifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, ".tmp-MANIFEST")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	_, err = f.Write(append(data, '\n'))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, "MANIFEST"))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing manifest: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("store: syncing dir after manifest: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable. A
// filesystem that does not support directory fsync (EINVAL/ENOTSUP) is
// treated as success — there is nothing more we can do there — but a
// real I/O failure is reported so compaction does not truncate a WAL
// whose replacement may not survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// Checkpoint flushes buffered WAL appends and fsyncs the log: on
// return, every commit made before the call survives a crash. This is
// the crawler's periodic durability point and the serving layer's
// drain step.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errors.New("store: checkpointing closed wal")
	}
	if err := l.bw.Flush(); err != nil {
		l.err = fmt.Errorf("store: flushing wal: %w", err)
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("store: syncing wal: %w", err)
		return l.err
	}
	return nil
}

// Err returns the log's sticky error, if any I/O has failed. The
// in-memory store remains usable; durability is what broke.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// WALBytes reports the current WAL length, including the header.
func (l *Log) WALBytes() int64 { return l.walBytes.Load() }

// Segments reports how many immutable segments the manifest holds.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.manifest.Segments)
}

// Dir returns the durable directory.
func (l *Log) Dir() string { return l.dir }

// Close stops the background compactor, flushes and fsyncs the WAL,
// and closes it. Callers must quiesce writers first; commits after
// Close are applied in memory but not journaled (and set the sticky
// error). The directory can then be reopened.
func (l *Log) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.closed = true
	err := l.bw.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err != nil && l.err == nil {
		l.err = fmt.Errorf("store: closing wal: %w", err)
	}
	return l.err
}

// WAL returns the log attached to the store by Open, or nil for a
// purely in-memory store.
func (s *Store) WAL() *Log { return s.wal }
