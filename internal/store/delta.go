package store

import (
	"sync"
	"sync/atomic"
)

// This file is the store's incremental-consumption surface. Records are
// append-only, so each shard's buffer length is a monotonic high-water
// mark; a Mark freezes one length per shard and DeltaSince streams
// exactly the records appended past a mark. Derived views (the
// pipeline's site index, WAL compaction) use it to pay O(delta) per
// refresh instead of O(store). The scope journal rides along: it
// remembers which (crawl, domain) each recent commit touched, so the
// serving layer can revalidate cached responses instead of discarding
// them wholesale.

// Mark is a consistency point in the store's append-only record
// streams: per-shard high-water marks plus the generation and force
// epochs observed when it was taken. The zero Mark precedes every
// record.
type Mark struct {
	gen     uint64
	force   uint64
	pages   [numShards]int
	locals  [numShards]int
	netlogs int
}

// Generation returns the mutation epoch captured by the mark. It is a
// staleness hint only: a view is certainly current when the store's
// generation still equals the mark's, while the reverse (a moved
// generation) at worst triggers a delta scan that finds nothing new.
func (m Mark) Generation() uint64 { return m.gen }

// ForceGeneration returns the out-of-band invalidation epoch captured
// by the mark. When the store's force epoch has moved past it,
// incremental consumers must discard accumulated state and rebuild.
func (m Mark) ForceGeneration() uint64 { return m.force }

// Mark captures the store's current high-water marks.
func (s *Store) Mark() Mark {
	var m Mark
	m.force = s.force.Load()
	m.gen = s.gen.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		m.pages[i] = len(sh.pages)
		m.locals[i] = len(sh.locals)
		sh.mu.Unlock()
	}
	s.nmu.Lock()
	m.netlogs = len(s.netlogs)
	s.nmu.Unlock()
	return m
}

// DeltaSince streams every record appended after m — in the same shard
// order ForEachPage/ForEachLocal use, under the shard locks — and
// returns the mark covering everything delivered. A nil callback skips
// that stream while still advancing its mark.
//
// The returned mark's generation is captured before any scanning, so a
// commit that lands mid-scan in an already-visited shard (and is
// therefore not delivered) leaves the store's generation ahead of the
// mark and triggers another delta; the per-shard lengths recorded at
// scan time guarantee it is delivered exactly once then. Callbacks must
// copy anything they keep and must not call back into the store.
func (s *Store) DeltaSince(m Mark, page func(*PageRecord), local func(*LocalRequest), netlog func(*NetLogRecord)) Mark {
	next := m
	next.force = s.force.Load()
	next.gen = s.gen.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if page != nil {
			for j := m.pages[i]; j < len(sh.pages); j++ {
				page(&sh.pages[j])
			}
		}
		if local != nil {
			for j := m.locals[i]; j < len(sh.locals); j++ {
				local(&sh.locals[j])
			}
		}
		next.pages[i] = len(sh.pages)
		next.locals[i] = len(sh.locals)
		sh.mu.Unlock()
	}
	s.nmu.Lock()
	if netlog != nil {
		for j := m.netlogs; j < len(s.netlogs); j++ {
			netlog(&s.netlogs[j])
		}
	}
	next.netlogs = len(s.netlogs)
	s.nmu.Unlock()
	return next
}

// CommitScope describes which slice of the corpus one commit touched.
// Broad scopes (mixed-domain bulk loads, out-of-band BumpGeneration)
// intersect everything.
type CommitScope struct {
	// Gen is the generation the commit advanced the store to.
	Gen uint64
	// Crawl and Domain are the single crawl and domain the commit
	// touched; either may be "" when the commit's records did not agree
	// on one (then Broad is set).
	Crawl  string
	Domain string
	// Broad marks a commit whose effects cannot be scoped to one
	// (crawl, domain) — it must be assumed to intersect every query.
	Broad bool
}

// Intersects reports whether a cached result computed for the given
// crawl/domain filter could be affected by the commit. Empty filter
// fields mean "unfiltered" and match every commit (an unfiltered
// listing legitimately goes stale on any write).
func (c CommitScope) Intersects(crawl, domain string) bool {
	if c.Broad {
		return true
	}
	if crawl != "" && c.Crawl != "" && crawl != c.Crawl {
		return false
	}
	if domain != "" && c.Domain != "" && domain != c.Domain {
		return false
	}
	return true
}

// commitScopeOf derives the journal scope of one commit: precise when
// every record agrees on a single (crawl, domain) — the shape of a
// visit batch or a live ingest — broad otherwise.
func commitScopeOf(ps []PageRecord, ls []LocalRequest, nls []NetLogRecord) CommitScope {
	sc := CommitScope{}
	first := true
	merge := func(crawl, domain string) {
		if sc.Broad {
			return
		}
		if first {
			sc.Crawl, sc.Domain, first = crawl, domain, false
			return
		}
		if sc.Crawl != crawl || sc.Domain != domain {
			sc = CommitScope{Broad: true}
		}
	}
	for i := range ps {
		merge(ps[i].Crawl, ps[i].Domain)
	}
	for i := range ls {
		merge(ls[i].Crawl, ls[i].Domain)
	}
	for i := range nls {
		merge(nls[i].Crawl, nls[i].Domain)
	}
	return sc
}

// journalSize bounds the scope journal. At one commit per visit, 4096
// entries cover far more history than any cached response survives;
// consumers that fall off the tail get a conservative "incomplete"
// answer and fall back to invalidating.
const journalSize = 4096

// scopeJournal is a bounded ring of recent commit scopes. The
// generation counter is advanced inside the journal lock, which makes
// ring order identical to generation order and guarantees that once
// Generation() returns G, the scopes of all commits up to G are visible
// to ScopesSince.
type scopeJournal struct {
	mu  sync.Mutex
	buf []CommitScope // allocated to journalSize on first append
	n   uint64        // total scopes ever appended
}

// append assigns the commit its generation and journals its scope
// atomically.
func (j *scopeJournal) append(gen *atomic.Uint64, sc CommitScope) {
	j.mu.Lock()
	if j.buf == nil {
		j.buf = make([]CommitScope, journalSize)
	}
	sc.Gen = gen.Add(1)
	j.buf[j.n%journalSize] = sc
	j.n++
	j.mu.Unlock()
}

// ScopesSince returns the scopes of every commit after generation gen,
// oldest first. ok is false when the journal has already wrapped past
// gen — the caller saw less than the full history and must treat the
// answer as "anything may have changed". Wraps are counted into the
// instrumented registry (store_scope_journal_wraps_total): each one
// silently degrades a caller to full cache invalidation, which is
// invisible without the counter.
func (s *Store) ScopesSince(gen uint64) (scopes []CommitScope, ok bool) {
	scopes, ok = s.scopesSince(gen)
	if !ok {
		if m := s.meters.Load(); m != nil {
			m.scopeWraps.Inc()
		}
	}
	return scopes, ok
}

func (s *Store) scopesSince(gen uint64) (scopes []CommitScope, ok bool) {
	j := &s.journal
	j.mu.Lock()
	defer j.mu.Unlock()
	start := uint64(0)
	if j.n > journalSize {
		start = j.n - journalSize
	}
	// Entries are in generation order; find the first one past gen.
	for i := start; i < j.n; i++ {
		sc := j.buf[i%journalSize]
		if sc.Gen <= gen {
			continue
		}
		// If the oldest retained entry is already past gen+1, commits
		// between gen and it were evicted: history is incomplete.
		if i == start && sc.Gen > gen+1 && start > 0 {
			return nil, false
		}
		scopes = append(scopes, sc)
	}
	return scopes, true
}
