package store

import (
	"testing"
)

func TestMarkDeltaSince(t *testing.T) {
	s := New()
	s.AddPage(samplePage("ebay.com", 104))
	s.AddLocal(sampleLocal("ebay.com"))
	m := s.Mark()
	if m.Generation() != s.Generation() {
		t.Fatalf("mark gen %d, store gen %d", m.Generation(), s.Generation())
	}

	// Nothing new: the delta is empty and the mark is stable.
	var pages, locals, netlogs int
	count := func() (func(*PageRecord), func(*LocalRequest), func(*NetLogRecord)) {
		pages, locals, netlogs = 0, 0, 0
		return func(*PageRecord) { pages++ }, func(*LocalRequest) { locals++ }, func(*NetLogRecord) { netlogs++ }
	}
	p, l, n := count()
	m2 := s.DeltaSince(m, p, l, n)
	if pages != 0 || locals != 0 || netlogs != 0 {
		t.Fatalf("empty delta delivered %d/%d/%d records", pages, locals, netlogs)
	}

	s.AddPage(samplePage("wish.com", 53))
	s.AddLocal(sampleLocal("wish.com"))
	s.AddLocal(sampleLocal("ebay.com"))
	if err := s.AddNetLog("top100k-2020", "Windows", "wish.com", sampleNetLog(t)); err != nil {
		t.Fatal(err)
	}
	p, l, n = count()
	var gotDomains []string
	m3 := s.DeltaSince(m2, func(pr *PageRecord) { pages++; gotDomains = append(gotDomains, pr.Domain) }, l, n)
	if pages != 1 || locals != 2 || netlogs != 1 {
		t.Fatalf("delta delivered %d/%d/%d records, want 1/2/1", pages, locals, netlogs)
	}
	if len(gotDomains) != 1 || gotDomains[0] != "wish.com" {
		t.Fatalf("delta pages = %v", gotDomains)
	}
	if m3.Generation() != s.Generation() {
		t.Fatalf("final mark gen %d, store gen %d", m3.Generation(), s.Generation())
	}

	// A nil callback skips the stream but still advances its mark.
	s.AddPage(samplePage("skipped.example", 9))
	m4 := s.DeltaSince(m3, nil, nil, nil)
	p, l, n = count()
	s.DeltaSince(m4, p, l, n)
	if pages != 0 {
		t.Fatalf("nil-callback delta did not advance the page mark (redelivered %d)", pages)
	}
}

func TestDeltaFromZeroMarkSeesEverything(t *testing.T) {
	s := New()
	s.AddPage(samplePage("ebay.com", 104))
	s.AddLocal(sampleLocal("ebay.com"))
	var pages, locals int
	s.DeltaSince(Mark{}, func(*PageRecord) { pages++ }, func(*LocalRequest) { locals++ }, nil)
	if pages != 1 || locals != 1 {
		t.Fatalf("zero-mark delta = %d/%d, want 1/1", pages, locals)
	}
}

func TestBumpGenerationMovesForceEpoch(t *testing.T) {
	s := New()
	f0, g0 := s.ForceGeneration(), s.Generation()
	s.AddPage(samplePage("ebay.com", 104))
	if s.ForceGeneration() != f0 {
		t.Fatal("ordinary commit moved the force epoch")
	}
	s.BumpGeneration()
	if s.ForceGeneration() != f0+1 {
		t.Fatalf("ForceGeneration = %d, want %d", s.ForceGeneration(), f0+1)
	}
	if s.Generation() <= g0+1 {
		t.Fatal("BumpGeneration did not advance the generation")
	}
	m := s.Mark()
	if m.ForceGeneration() != s.ForceGeneration() {
		t.Fatal("mark did not capture the force epoch")
	}
}

func TestScopesSince(t *testing.T) {
	s := New()
	g0 := s.Generation()

	// A visit-shaped batch journals a precise scope.
	var b Batch
	b.AddPage(samplePage("ebay.com", 104))
	b.AddLocal(sampleLocal("ebay.com"))
	s.AddBatch(&b)

	// A mixed-domain bulk load journals a broad scope.
	s.AddPages([]PageRecord{samplePage("wish.com", 53), samplePage("aliexpress.com", 60)})

	// An out-of-band bump is broad too.
	s.BumpGeneration()

	scopes, ok := s.ScopesSince(g0)
	if !ok {
		t.Fatal("journal reported incomplete history without wrapping")
	}
	if len(scopes) != 3 {
		t.Fatalf("ScopesSince = %d scopes, want 3: %+v", len(scopes), scopes)
	}
	if scopes[0].Broad || scopes[0].Crawl != "top100k-2020" || scopes[0].Domain != "ebay.com" {
		t.Errorf("visit scope = %+v, want precise ebay.com", scopes[0])
	}
	if !scopes[1].Broad || !scopes[2].Broad {
		t.Errorf("bulk and bump scopes should be broad: %+v %+v", scopes[1], scopes[2])
	}
	for i := 1; i < len(scopes); i++ {
		if scopes[i].Gen <= scopes[i-1].Gen {
			t.Fatalf("scopes out of generation order: %+v", scopes)
		}
	}

	// Asking from the current generation yields nothing.
	if got, ok := s.ScopesSince(s.Generation()); !ok || len(got) != 0 {
		t.Fatalf("ScopesSince(now) = %v ok=%v", got, ok)
	}
}

func TestScopesSinceWraps(t *testing.T) {
	s := New()
	s.AddPage(samplePage("first.example", 1))
	g := s.Generation()
	for i := 0; i < journalSize+8; i++ {
		s.AddPage(samplePage("ebay.com", 104))
	}
	if _, ok := s.ScopesSince(g); ok {
		t.Fatal("journal should report incomplete history after wrapping past gen")
	}
	recent := s.Generation() - 4
	scopes, ok := s.ScopesSince(recent)
	if !ok || len(scopes) != 4 {
		t.Fatalf("recent ScopesSince = %d scopes ok=%v, want 4 true", len(scopes), ok)
	}
}

func TestCommitScopeIntersects(t *testing.T) {
	precise := CommitScope{Crawl: "top100k-2020", Domain: "ebay.com"}
	broad := CommitScope{Broad: true}
	cases := []struct {
		sc            CommitScope
		crawl, domain string
		want          bool
	}{
		{precise, "top100k-2020", "ebay.com", true},
		{precise, "top100k-2020", "wish.com", false},
		{precise, "malicious", "ebay.com", false},
		{precise, "", "", true},             // unfiltered query sees every commit
		{precise, "top100k-2020", "", true}, // crawl-only filter
		{precise, "", "wish.com", false},
		{broad, "malicious", "wish.com", true},
		{broad, "", "", true},
	}
	for _, c := range cases {
		if got := c.sc.Intersects(c.crawl, c.domain); got != c.want {
			t.Errorf("%+v.Intersects(%q, %q) = %v, want %v", c.sc, c.crawl, c.domain, got, c.want)
		}
	}
}
