// Package browser simulates the measurement browser: a Google Chrome v84
// instance with a clean incognito profile, driven for one 20-second page
// visit at a time, recording every network event on its (virtual)
// network stack in NetLog form.
//
// The browser runs on a machine (hostenv.Profile) attached to the public
// synthetic web (simnet.Network). Requests to loopback and RFC1918
// destinations route to the machine's own localhost table and LAN
// inventory — the mechanism that makes a website's local probes succeed
// or fail depending on what the visitor's host is running.
//
// Fidelity notes, mirroring §3.1 of the paper:
//   - Safe Browsing is a toggle and is disabled during crawls so that
//     malicious pages load.
//   - Cross-origin HTTP(S) requests are sent regardless of the
//     Same-Origin Policy (the response is merely opaque to the page);
//     WebSocket requests are exempt from SOP entirely. Both facts are
//     recorded as flow parameters.
//   - The browser itself generates background traffic (update checks,
//     variations fetches) under a BROWSER source, which the analysis
//     layer must filter out by source type.
package browser

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

// Options configures a browser instance.
type Options struct {
	// Window is how long a page visit is monitored after navigation
	// starts. The study used 20 seconds (§3.1).
	Window time.Duration
	// MaxRedirects bounds redirect chains, as Chrome does (20).
	MaxRedirects int
	// SafeBrowsing enables the Safe Browsing interstitial. The study
	// disables it so malicious pages are reachable.
	SafeBrowsing bool
	// SafeBrowsingList is the blocked-domain set consulted when
	// SafeBrowsing is on.
	SafeBrowsingList map[string]bool
	// Background enables browser-internal traffic emission.
	Background bool
	// MaxLogEvents bounds the per-visit NetLog capture (0 = unbounded),
	// mirroring Chrome's bounded capture modes.
	MaxLogEvents int
	// ParseHTML requests real markup from the synthetic web and runs
	// the full tokenize→extract→interpret pipeline instead of the
	// precompiled fast path. Slower; equivalence-tested.
	ParseHTML bool
	// Conditions is the active network-condition chain. Nil means the
	// nominal (unimpaired) conditions of the machine's vantage.
	Conditions *simnet.Conditions
}

// DefaultOptions returns the crawl configuration of §3.1.
func DefaultOptions() Options {
	return Options{
		Window:       20 * time.Second,
		MaxRedirects: 20,
		SafeBrowsing: false,
		Background:   true,
	}
}

// Browser is one Chrome instance bound to a machine and a network.
type Browser struct {
	Profile *hostenv.Profile
	Net     *simnet.Network
	Opts    Options

	// cond is the resolved condition chain (never nil) and flowVantage
	// the identity its per-flow hashes key on.
	cond        *simnet.Conditions
	flowVantage string
}

// New returns a browser on the given machine, attached to the given
// public network.
func New(profile *hostenv.Profile, net *simnet.Network, opts Options) *Browser {
	if opts.Window <= 0 {
		opts.Window = 20 * time.Second
	}
	if opts.MaxRedirects <= 0 {
		opts.MaxRedirects = 20
	}
	cond := opts.Conditions
	if cond == nil {
		cond = simnet.Nominal(profile.Vantage)
	}
	vantage := cond.FlowVantage
	if vantage == "" {
		vantage = profile.Vantage.Name
	}
	return &Browser{Profile: profile, Net: net, Opts: opts, cond: cond, flowVantage: vantage}
}

// VisitResult is the outcome of one page visit.
type VisitResult struct {
	// URL is the requested URL; FinalURL the post-redirect destination.
	URL      string
	FinalURL string
	// Err is the page-level load error, or OK.
	Err simnet.NetError
	// CommittedAt is when the landing document finished loading on the
	// visit clock; zero if the load failed.
	CommittedAt time.Duration
	// Log is the complete NetLog capture for the visit.
	Log *netlog.Log
}

// OK reports whether the landing page loaded successfully.
func (v *VisitResult) OK() bool { return !v.Err.IsFailure() }

// Visit loads a URL with a fresh profile and returns the telemetry
// captured over the observation window. Each visit runs on its own
// virtual clock starting at zero.
func (b *Browser) Visit(rawURL string) *VisitResult {
	res := &VisitResult{URL: rawURL, FinalURL: rawURL, Err: simnet.OK}
	rec := netlog.NewRecorder()
	if b.Opts.MaxLogEvents > 0 {
		rec = netlog.NewBoundedRecorder(b.Opts.MaxLogEvents)
	}
	sched := simnet.NewScheduler()

	v := &visit{b: b, rec: rec, sched: sched, res: res}
	if b.Opts.Background {
		v.emitBackground()
	}

	if b.Opts.SafeBrowsing && b.Opts.SafeBrowsingList != nil {
		if host := hostOf(rawURL); b.Opts.SafeBrowsingList[host] {
			res.Err = simnet.ErrBlockedByClient
			src := rec.NewSource(netlog.SourceURLRequest)
			rec.Point(0, netlog.TypeURLRequestError, src, map[string]any{
				"url": rawURL, "net_error": string(simnet.ErrBlockedByClient),
			})
			res.Log = rec.TakeLog()
			return res
		}
	}

	v.fetch(request{rawURL: rawURL, initiator: "navigation", navigation: true}, func(out fetchOutcome) {
		res.Err = out.err
		res.FinalURL = out.finalURL
		if out.err.IsFailure() {
			return
		}
		res.CommittedAt = sched.Now()
		var page *webdoc.Page
		switch doc := out.document.(type) {
		case *webdoc.Page:
			page = doc
		case []byte:
			// Raw HTML: the real pipeline — tokenize, extract, run
			// inline page scripts.
			page = compileHTML(doc, out.finalURL, b.Profile.OS.String())
		}
		if page != nil {
			base := res.CommittedAt
			for _, step := range page.SortedSteps() {
				step := step
				sched.At(base+step.At, func() {
					v.fetch(request{rawURL: step.URL, initiator: step.Initiator}, func(fetchOutcome) {})
				})
			}
		}
	})
	sched.RunUntil(b.Opts.Window)
	res.Log = rec.TakeLog()
	return res
}

// visit carries the per-visit state shared by the fetch pipeline.
type visit struct {
	b     *Browser
	rec   *netlog.Recorder
	sched *simnet.Scheduler
	res   *VisitResult
	// pool tracks established connections per host:port for keep-alive
	// reuse, keyed by scheme to keep TLS and cleartext sockets apart.
	pool map[string]netlog.Source
}

// poolKey identifies a reusable connection.
func poolKey(scheme simnet.Scheme, hostport string) string {
	tls := "tcp"
	if scheme.Secure() {
		tls = "tls"
	}
	return tls + "/" + hostport
}

// emitBackground produces the browser-internal traffic every Chrome
// instance generates regardless of the page: an update check and a field
// trials fetch, attributed to BROWSER sources so analysis can filter
// them. One of them targets a loopback-looking URL on purpose — Chrome's
// own crash handler endpoint — exercising the pipeline's source filter.
func (v *visit) emitBackground() {
	internal := []struct {
		at  time.Duration
		url string
	}{
		{120 * time.Millisecond, "https://update.googleapis.chrome.internal/service/update2"},
		{340 * time.Millisecond, "https://clientservices.googleapis.chrome.internal/chrome-variations/seed"},
		{500 * time.Millisecond, "http://127.0.0.1:49152/crashpad/ping"},
	}
	for _, bg := range internal {
		src := v.rec.NewSource(netlog.SourceBrowser)
		v.rec.Begin(bg.at, netlog.TypeBrowserBackgroundRequest, src, map[string]any{"url": bg.url})
		v.rec.End(bg.at+25*time.Millisecond, netlog.TypeBrowserBackgroundRequest, src, nil)
	}
}

// request is a fetch pipeline input.
type request struct {
	rawURL     string
	initiator  string
	navigation bool
	redirects  int
	source     netlog.Source // reused across a redirect chain; zero for new
}

// fetchOutcome is the pipeline result delivered to the continuation.
type fetchOutcome struct {
	err      simnet.NetError
	status   int
	finalURL string
	document any
}

// parsedURL holds the destructured request target.
type parsedURL struct {
	scheme simnet.Scheme
	host   string
	port   uint16
	path   string
}

func parseURL(raw string) (parsedURL, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return parsedURL{}, err
	}
	scheme := simnet.Scheme(strings.ToLower(u.Scheme))
	switch scheme {
	case simnet.SchemeHTTP, simnet.SchemeHTTPS, simnet.SchemeWS, simnet.SchemeWSS:
	default:
		return parsedURL{}, fmt.Errorf("browser: unsupported scheme %q", u.Scheme)
	}
	host := u.Hostname()
	if host == "" {
		return parsedURL{}, fmt.Errorf("browser: no host in %q", raw)
	}
	port := scheme.DefaultPort()
	if p := u.Port(); p != "" {
		n, err := strconv.ParseUint(p, 10, 16)
		if err != nil {
			return parsedURL{}, fmt.Errorf("browser: bad port %q", p)
		}
		port = uint16(n)
	}
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	return parsedURL{scheme: scheme, host: host, port: port, path: path}, nil
}

func hostOf(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Hostname()
}
