package browser

import (
	"fmt"
	"net/netip"
	"sort"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// buildEbayWorlds returns the same Windows world twice: once served via
// the fast path (compiled webdoc.Page) and once as rendered HTML bytes
// pushed through the tokenizer and page-script interpreter.
func fetchEbayBothWays(t *testing.T) (fast, parsed *VisitResult) {
	t.Helper()
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Background = false
	b := New(hostenv.DefaultProfile(hostenv.Windows), world.Net, opts)
	fast = b.Visit("https://ebay.com/")
	if !fast.OK() {
		t.Fatalf("fast path failed: %v", fast.Err)
	}

	// Grab the compiled page, render it to HTML, and serve the bytes
	// from a fresh endpoint.
	addrs, _ := world.Net.Resolver.Resolve("ebay.com")
	resp := world.Net.Locate(addrs[0], 443).Service.Serve(&simnet.Request{
		Scheme: simnet.SchemeHTTPS, Host: "ebay.com", Port: 443, Path: "/",
		UserAgent: hostenv.Windows.UserAgent(),
	})
	page := resp.Document.(*webdoc.Page)
	raw := websim.RenderHTML(page)

	htmlAddr := netip.MustParseAddr("203.0.113.77")
	world.Net.Resolver.Add("ebay-html.test", htmlAddr)
	world.Net.BindService(htmlAddr, 443, &simnet.TLSInfo{CommonName: "ebay-html.test"}, simnet.ServiceFunc(func(*simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 200, ContentType: "text/html", BodySize: len(raw), Document: raw}
	}))
	parsed = b.Visit("https://ebay-html.test/")
	if !parsed.OK() {
		t.Fatalf("HTML path failed: %v", parsed.Err)
	}
	return fast, parsed
}

type probeKey struct {
	url       string
	initiator string
	netError  string
}

func localProbes(res *VisitResult) []probeKey {
	var out []probeKey
	for _, f := range localnet.FromLog(res.Log) {
		out = append(out, probeKey{url: f.URL, initiator: f.Initiator, netError: f.NetError})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].url < out[j].url })
	return out
}

// TestHTMLPathEquivalence is the two-pipeline equivalence check: the
// precompiled fast path and the tokenize-extract-interpret path must
// produce identical local-network detections (URLs, provenance,
// outcomes) and identical behavior timing.
func TestHTMLPathEquivalence(t *testing.T) {
	fast, parsed := fetchEbayBothWays(t)
	a, b := localProbes(fast), localProbes(parsed)
	if len(a) == 0 {
		t.Fatal("fast path detected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("probe counts differ: fast %d, parsed %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("probe %d differs:\n fast   %+v\n parsed %+v", i, a[i], b[i])
		}
	}
	// Behavior timing is exact: the script carries the same offsets the
	// compiled page had (relative to each page's own commit).
	fastFinds, parsedFinds := localnet.FromLog(fast.Log), localnet.FromLog(parsed.Log)
	sort.Slice(fastFinds, func(i, j int) bool { return fastFinds[i].URL < fastFinds[j].URL })
	sort.Slice(parsedFinds, func(i, j int) bool { return parsedFinds[i].URL < parsedFinds[j].URL })
	for i := range fastFinds {
		da := fastFinds[i].At - fast.CommittedAt
		db := parsedFinds[i].At - parsed.CommittedAt
		diff := da - db
		if diff < 0 {
			diff = -diff
		}
		// Script offsets are serialized in milliseconds.
		if diff > time.Millisecond {
			t.Errorf("%s: behavior offset differs: fast %v, parsed %v", fastFinds[i].URL, da, db)
		}
	}
}

func TestCompileHTMLStaticsAndScripts(t *testing.T) {
	body := []byte(fmt.Sprintf(`<html><head>
		<script src="https://cdn0.webstatic.example/a.js"></script>
		<link rel="stylesheet" href="/style.css">
	</head><body>
		<img src="/banner.png">
		<iframe src="http://10.10.34.35/"></iframe>
		<script type="text/x-knockscript">
after 2s
if os == windows
  ws ws://localhost:28337/ as script:native-app
endif
		</script>
	</body></html>`))
	page := compileHTML(body, "https://site.test/", "Windows")
	if len(page.Steps) != 5 {
		t.Fatalf("steps = %+v", page.Steps)
	}
	byURL := map[string]webdoc.Step{}
	for _, s := range page.Steps {
		byURL[s.URL] = s
	}
	if s, ok := byURL["http://10.10.34.35/"]; !ok || s.Initiator != "iframe" {
		t.Errorf("iframe step = %+v", s)
	}
	if s, ok := byURL["ws://localhost:28337/"]; !ok || s.At != 2*time.Second || s.Initiator != "script:native-app" {
		t.Errorf("script step = %+v", s)
	}
	if s, ok := byURL["https://site.test/style.css"]; !ok || s.Initiator != "parser" {
		t.Errorf("stylesheet step = %+v", s)
	}
	// On Linux the gated WebSocket disappears.
	if linux := compileHTML(body, "https://site.test/", "Linux"); len(linux.Steps) != 4 {
		t.Errorf("linux steps = %d, want 4", len(linux.Steps))
	}
}

func TestCompileHTMLToleratesBrokenScript(t *testing.T) {
	body := []byte(`<html><body>
		<script>this is not knockscript at all { } ;</script>
		<img src="/ok.png">
	</body></html>`)
	page := compileHTML(body, "http://site.test/", "Linux")
	if len(page.Steps) != 1 || page.Steps[0].URL != "http://site.test/ok.png" {
		t.Errorf("steps = %+v", page.Steps)
	}
}
