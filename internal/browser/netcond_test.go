package browser

import (
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

// condBrowser builds a browser over net with an explicit impairment
// chain.
func condBrowser(net *simnet.Network, stages ...simnet.Stage) *Browser {
	opts := DefaultOptions()
	opts.Background = false
	opts.Conditions = &simnet.Conditions{Name: "test", FlowVantage: "test", Stages: stages}
	return New(hostenv.DefaultProfile(hostenv.Linux), net, opts)
}

// TestDNSTimeoutDistinctFromNXDOMAIN: the two resolver failure modes
// must be distinguishable in the NetLog — a resolvable name that dies
// at an impaired resolver reports ERR_DNS_TIMED_OUT, while a genuinely
// unregistered name still reports ERR_NAME_NOT_RESOLVED.
func TestDNSTimeoutDistinctFromNXDOMAIN(t *testing.T) {
	page := &webdoc.Page{URL: "https://site.test/"}
	b := condBrowser(testWorld(page),
		simnet.DNSImpairment{TimeoutRate: 1, TimeoutAfter: 5 * time.Second})

	res := b.Visit("https://site.test/")
	if res.Err != simnet.ErrDNSTimedOut {
		t.Fatalf("err = %v, want ERR_DNS_TIMED_OUT", res.Err)
	}
	var sawTimeout bool
	for _, e := range res.Log.Events {
		if e.Type == netlog.TypeHostResolverJob && e.ParamString("net_error") == "ERR_DNS_TIMED_OUT" {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Error("resolver job did not log ERR_DNS_TIMED_OUT")
	}

	// An unregistered name on the same impaired network must stay
	// NXDOMAIN. The impairment slows the failure but must not relabel it.
	nx := condBrowser(simnet.NewNetwork(1),
		simnet.DNSImpairment{FailureDelay: 900 * time.Millisecond})
	res = nx.Visit("http://unregistered.test/")
	if res.Err != simnet.ErrNameNotResolved {
		t.Fatalf("err = %v, want ERR_NAME_NOT_RESOLVED", res.Err)
	}
}

// TestDNSTimeoutDeterministicAcrossSeeds: with a partial timeout rate,
// which hosts die at the resolver is a pure function of the network
// seed — the same set on every run, a different set under a different
// seed.
func TestDNSTimeoutDeterministicAcrossSeeds(t *testing.T) {
	hosts := []string{
		"alpha.test", "bravo.test", "charlie.test", "delta.test", "echo.test",
		"foxtrot.test", "golf.test", "hotel.test", "india.test", "juliett.test",
		"kilo.test", "lima.test", "mike.test", "november.test", "oscar.test",
	}
	outcomes := func(seed uint64) []bool {
		net := simnet.NewNetwork(seed)
		out := make([]bool, len(hosts))
		for i, h := range hosts {
			b := condBrowser(net, simnet.DNSImpairment{TimeoutRate: 0.4})
			res := b.Visit("http://" + h + "/")
			out[i] = res.Err == simnet.ErrDNSTimedOut
		}
		return out
	}
	a, b := outcomes(11), outcomes(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("host %s: timeout outcome differs between identical runs", hosts[i])
		}
	}
	c := outcomes(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seed change left every DNS-timeout outcome identical")
	}
	var timedOut int
	for _, v := range a {
		if v {
			timedOut++
		}
	}
	if timedOut == 0 || timedOut == len(hosts) {
		t.Errorf("timeout rate 0.4 produced %d/%d timeouts — expected a mix", timedOut, len(hosts))
	}
}

// TestLossDropsDial: a rate-1 loss stage turns an accepting listener
// into a connect timeout, honoring the chain's connect-timeout policy.
func TestLossDropsDial(t *testing.T) {
	page := &webdoc.Page{URL: "https://site.test/"}
	b := condBrowser(testWorld(page),
		simnet.Loss{Rate: 1, Scope: simnet.ScopePublic},
		simnet.ConnectTimeoutPolicy{Timeout: 3 * time.Second})
	res := b.Visit("https://site.test/")
	if res.Err != simnet.ErrConnectionTimedOut {
		t.Fatalf("err = %v, want ERR_CONNECTION_TIMED_OUT", res.Err)
	}
}
