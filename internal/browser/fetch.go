package browser

import (
	"net/netip"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
)

// The fetch pipeline mirrors Chrome's request lifecycle — resolve,
// connect, TLS, transaction (or WebSocket handshake), redirect — in
// continuation-passing style over the visit scheduler, so that virtual
// time advances through each stage and every event lands on the NetLog
// with a realistic timestamp.

// fetch runs one request and calls done exactly once with the outcome.
// A redirect chain reuses the same URL_REQUEST source, as Chrome does.
func (v *visit) fetch(req request, done func(fetchOutcome)) {
	fail := func(src netlog.Source, u string, err simnet.NetError) {
		v.rec.Point(v.sched.Now(), netlog.TypeURLRequestError, src, map[string]any{
			"url": u, "net_error": string(err),
		})
		v.rec.End(v.sched.Now(), netlog.TypeRequestAlive, src, nil)
		done(fetchOutcome{err: err, finalURL: u})
	}

	target, err := parseURL(req.rawURL)
	if err != nil {
		src := req.source
		if src == (netlog.Source{}) {
			src = v.rec.NewSource(netlog.SourceURLRequest)
			v.rec.Begin(v.sched.Now(), netlog.TypeRequestAlive, src, map[string]any{
				"url": req.rawURL, "initiator": req.initiator,
			})
		}
		fail(src, req.rawURL, simnet.ErrAborted)
		return
	}

	src := req.source
	if src == (netlog.Source{}) {
		srcType := netlog.SourceURLRequest
		if target.scheme.WebSocket() {
			srcType = netlog.SourceWebSocket
		}
		src = v.rec.NewSource(srcType)
		v.rec.Begin(v.sched.Now(), netlog.TypeRequestAlive, src, map[string]any{
			"url":        req.rawURL,
			"initiator":  req.initiator,
			"method":     "GET",
			"sop_exempt": target.scheme.WebSocket(),
		})
	}

	if PortRestricted(target.port) {
		// Chrome rejects unsafe ports before touching the network; the
		// attempt is still visible in the log (and to the detector).
		fail(src, req.rawURL, simnet.ErrUnsafePort)
		return
	}

	v.resolve(target, func(addr netip.Addr, resErr simnet.NetError) {
		if resErr.IsFailure() {
			fail(src, req.rawURL, resErr)
			return
		}
		path := v.path(addr, target.port)
		v.connect(src, target, addr, path, func(ep simnet.Endpoint, connErr simnet.NetError) {
			if connErr.IsFailure() {
				fail(src, req.rawURL, connErr)
				return
			}
			v.transact(src, req, target, addr, ep, path, func(resp *simnet.Response, txErr simnet.NetError) {
				if txErr.IsFailure() {
					fail(src, req.rawURL, txErr)
					return
				}
				if resp.Status >= 300 && resp.Status < 400 && resp.Location != "" {
					if req.redirects >= v.b.Opts.MaxRedirects {
						fail(src, req.rawURL, simnet.ErrTooManyRedirects)
						return
					}
					v.rec.Point(v.sched.Now(), netlog.TypeURLRequestRedirect, src, map[string]any{
						"url": req.rawURL, "location": resp.Location,
					})
					v.fetch(request{
						rawURL:     resp.Location,
						initiator:  req.initiator,
						navigation: req.navigation,
						redirects:  req.redirects + 1,
						source:     src,
					}, done)
					return
				}
				v.rec.End(v.sched.Now(), netlog.TypeRequestAlive, src, map[string]any{
					"status_code": resp.Status,
				})
				done(fetchOutcome{
					status:   resp.Status,
					finalURL: req.rawURL,
					document: resp.Document,
				})
			})
		})
	})
}

// path applies the active network conditions to one flow. DNS lookups
// pass the zero address (the destination is not known yet).
func (v *visit) path(addr netip.Addr, port uint16) simnet.Path {
	return v.b.cond.Path(v.b.Net.Seed, simnet.Flow{
		Vantage: v.b.flowVantage, Dst: addr, Port: port,
	})
}

// resolve performs name resolution. Loopback names and IP literals
// resolve synchronously (Chrome special-cases localhost); everything
// else goes through the stub resolver with the active conditions'
// lookup latency. Under DNS impairment a lookup can die at the resolver
// (ERR_DNS_TIMED_OUT), a failure mode distinct from NXDOMAIN.
func (v *visit) resolve(target parsedURL, done func(netip.Addr, simnet.NetError)) {
	if ip, err := netip.ParseAddr(target.host); err == nil {
		done(ip, simnet.OK)
		return
	}
	if target.host == "localhost" {
		done(netip.MustParseAddr("127.0.0.1"), simnet.OK)
		return
	}
	dns := v.b.cond.Path(v.b.Net.Seed, simnet.Flow{Vantage: v.b.flowVantage, Host: target.host})
	dnsSrc := v.rec.NewSource(netlog.SourceHostResolver)
	v.rec.Begin(v.sched.Now(), netlog.TypeHostResolverJob, dnsSrc, map[string]any{"host": target.host})
	if dns.DNSTimeout {
		v.sched.After(dns.DNSTimeoutAfter, func() {
			v.rec.End(v.sched.Now(), netlog.TypeHostResolverJob, dnsSrc, map[string]any{
				"host": target.host, "net_error": string(simnet.ErrDNSTimedOut),
			})
			done(netip.Addr{}, simnet.ErrDNSTimedOut)
		})
		return
	}
	addrs, nerr := v.b.Net.Resolver.Resolve(target.host)
	delay := dns.DNSResolve
	if nerr.IsFailure() {
		delay = dns.DNSFailure
	}
	v.sched.After(delay, func() {
		params := map[string]any{"host": target.host}
		if nerr.IsFailure() {
			params["net_error"] = string(nerr)
			v.rec.End(v.sched.Now(), netlog.TypeHostResolverJob, dnsSrc, params)
			done(netip.Addr{}, nerr)
			return
		}
		params["address"] = addrs[0].String()
		v.rec.End(v.sched.Now(), netlog.TypeHostResolverJob, dnsSrc, params)
		done(addrs[0], simnet.OK)
	})
}

// locate routes the destination: loopback and RFC1918 addresses are
// answered by the visiting machine's own environment, everything else by
// the public network.
func (v *visit) locate(addr netip.Addr, port uint16) simnet.Endpoint {
	if hostenv.IsLocalDestination(addr) {
		return v.b.Profile.Locate(addr, port)
	}
	return v.b.Net.Locate(addr, port)
}

// connect establishes the transport (TCP, then TLS for secure schemes),
// reusing a kept-alive connection to the same origin when one exists —
// WebSockets always open a fresh socket, as Chrome does. A connection
// the link drops (path.Drop) times out like an unroutable destination,
// even on a listening port.
func (v *visit) connect(src netlog.Source, target parsedURL, addr netip.Addr, path simnet.Path, done func(simnet.Endpoint, simnet.NetError)) {
	ep := v.locate(addr, target.port)
	outcome := ep.Outcome
	if path.Drop {
		outcome = simnet.DialTimeout
	}
	hostport := netip.AddrPortFrom(addr, target.port).String()
	key := poolKey(target.scheme, hostport)
	if !target.scheme.WebSocket() && outcome == simnet.DialAccepted {
		if v.pool == nil {
			v.pool = map[string]netlog.Source{}
		}
		if sock, ok := v.pool[key]; ok {
			v.rec.Point(v.sched.Now(), netlog.TypeSocketInUse, sock, map[string]any{"address": hostport})
			done(ep, simnet.OK)
			return
		}
	}
	rtt := path.RTT
	sockSrc := v.rec.NewSource(netlog.SourceSocket)
	v.rec.Begin(v.sched.Now(), netlog.TypeTCPConnect, sockSrc, map[string]any{
		"address": netip.AddrPortFrom(addr, target.port).String(),
	})
	var wait time.Duration
	switch outcome {
	case simnet.DialAccepted, simnet.DialRefused:
		wait = rtt // SYN → SYN-ACK or RST
	case simnet.DialReset:
		wait = rtt + rtt/2
	default: // timeout
		wait = path.ConnectTimeout
	}
	v.sched.After(wait, func() {
		if nerr := outcome.NetError(); nerr.IsFailure() {
			v.rec.Point(v.sched.Now(), netlog.TypeSocketError, sockSrc, map[string]any{"net_error": string(nerr)})
			done(ep, nerr)
			return
		}
		v.rec.End(v.sched.Now(), netlog.TypeTCPConnect, sockSrc, nil)
		if !target.scheme.Secure() {
			if !target.scheme.WebSocket() && v.pool != nil {
				v.pool[key] = sockSrc
			}
			done(ep, simnet.OK)
			return
		}
		v.rec.Begin(v.sched.Now(), netlog.TypeSSLConnect, sockSrc, nil)
		var tlsErr simnet.NetError
		switch {
		case ep.TLS == nil || ep.TLS.Broken:
			tlsErr = simnet.ErrSSLProtocolError
		case !ep.TLS.ValidFor(target.host) && !addrIsLocal(addr):
			// Chrome still flags bad local certs, but the localhost
			// services the study saw use self-signed certs users have
			// trusted; the simulation accepts them so that the probe
			// traffic (the observable we measure) proceeds as observed.
			tlsErr = simnet.ErrCertCommonNameBad
		}
		v.sched.After(2*rtt, func() {
			if tlsErr.IsFailure() {
				v.rec.Point(v.sched.Now(), netlog.TypeSocketError, sockSrc, map[string]any{"net_error": string(tlsErr)})
				done(ep, tlsErr)
				return
			}
			v.rec.End(v.sched.Now(), netlog.TypeSSLConnect, sockSrc, nil)
			if !target.scheme.WebSocket() && v.pool != nil {
				v.pool[key] = sockSrc
			}
			done(ep, simnet.OK)
		})
	})
}

func addrIsLocal(addr netip.Addr) bool { return hostenv.IsLocalDestination(addr) }

// transact performs the HTTP exchange or WebSocket handshake on an
// established connection.
func (v *visit) transact(src netlog.Source, req request, target parsedURL, addr netip.Addr, ep simnet.Endpoint, path simnet.Path, done func(*simnet.Response, simnet.NetError)) {
	rtt := path.RTT
	sreq := &simnet.Request{
		Method:    "GET",
		Scheme:    target.scheme,
		Host:      target.host,
		Addr:      addr,
		Port:      target.port,
		Path:      target.path,
		UserAgent: v.b.Profile.OS.UserAgent(),
		Origin:    v.res.URL,
	}
	if req.navigation && v.b.Opts.ParseHTML {
		sreq.Header = map[string]string{rawHTMLHeader: "1"}
	}
	ws := target.scheme.WebSocket()
	if ws {
		v.rec.Begin(v.sched.Now(), netlog.TypeWebSocketSendHandshakeRequest, src, map[string]any{"url": req.rawURL})
	} else {
		v.rec.Begin(v.sched.Now(), netlog.TypeHTTPTransactionSendRequest, src, nil)
		v.rec.Point(v.sched.Now(), netlog.TypeHTTPTransactionSendRequestHeaders, src, map[string]any{
			"method": "GET", "path": target.path, "user_agent": sreq.UserAgent,
		})
	}
	resp := serve(ep.Service, sreq)
	wait := rtt
	if resp != nil {
		wait += resp.ServeDelay
	}
	v.sched.After(wait, func() {
		if resp == nil || resp.Status == 0 {
			if ws {
				v.rec.Point(v.sched.Now(), netlog.TypeWebSocketInvalidHandshake, src, nil)
				done(nil, simnet.ErrInvalidHTTPResponse)
				return
			}
			done(nil, simnet.ErrEmptyResponse)
			return
		}
		if resp.ResetAfterHeaders {
			done(nil, simnet.ErrConnectionReset)
			return
		}
		if ws {
			// A WebSocket upgrade succeeds only if the service accepted
			// it; an HTTP service answering 200 is an invalid handshake.
			if resp.WebSocketAccept || resp.Status == 101 {
				v.rec.Point(v.sched.Now(), netlog.TypeWebSocketReadHandshakeResponse, src, map[string]any{"status_code": 101})
				v.rec.Point(v.sched.Now(), netlog.TypeWebSocketSendFrame, src, map[string]any{"op": "text"})
				done(fetchOK(101), simnet.OK)
				return
			}
			v.rec.Point(v.sched.Now(), netlog.TypeWebSocketInvalidHandshake, src, map[string]any{"status_code": resp.Status})
			done(fetchOK(resp.Status), simnet.OK)
			return
		}
		v.rec.Point(v.sched.Now(), netlog.TypeHTTPTransactionReadHeaders, src, map[string]any{
			"status_code": resp.Status,
		})
		if resp.Status >= 300 && resp.Status < 400 && resp.Location != "" {
			done(resp, simnet.OK)
			return
		}
		// Body read time scales with size, plus any serialization delay
		// the active conditions' bandwidth cap imposes.
		bodyWait := path.TransferDelay(resp.BodySize)
		v.sched.After(bodyWait, func() {
			v.rec.Point(v.sched.Now(), netlog.TypeHTTPTransactionReadBody, src, map[string]any{"bytes": resp.BodySize})
			done(resp, simnet.OK)
		})
	})
}

// rawHTMLHeader mirrors websim.RawHTMLHeader without importing websim
// (the browser must not depend on the content layer).
const rawHTMLHeader = "X-Knockandtalk-Raw-HTML"

// fetchOK wraps a bare status into a response for WebSocket outcomes.
func fetchOK(status int) *simnet.Response { return &simnet.Response{Status: status} }

// serve invokes a service defensively: a panicking endpoint behaves
// like a crashed server (connection torn down), not a crashed crawl —
// one misbehaving site must never take down the measurement.
func serve(svc simnet.Service, req *simnet.Request) (resp *simnet.Response) {
	if svc == nil {
		return nil
	}
	defer func() {
		if recover() != nil {
			resp = nil
		}
	}()
	return svc.Serve(req)
}
